// Benchmarks regenerating every table and figure of the paper's
// evaluation (§5), one benchmark per artifact (see DESIGN.md §3), plus
// micro-benchmarks of the core operators. The experiment benchmarks run
// at a reduced scale controlled by the GUMBO_BENCH_SCALE environment
// variable (default 0.0002); per-iteration simulated results are
// identical, so b.N loops measure harness wall-clock cost while the
// reported custom metrics carry the paper-equivalent simulated times.
package gumbo

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/experiments"
	"repro/internal/mr"
	"repro/internal/relation"
	"repro/internal/sgf"
	"repro/internal/workload"
)

func benchScale() float64 {
	if s := os.Getenv("GUMBO_BENCH_SCALE"); s != "" {
		if f, err := strconv.ParseFloat(s, 64); err == nil && f > 0 {
			return f
		}
	}
	return 0.0002
}

func benchConfig() experiments.Config {
	cfg := experiments.At(benchScale())
	cfg.Verify = false
	return cfg
}

// runExperiment runs one experiment per iteration and reports a couple
// of its headline numbers as custom benchmark metrics.
func runExperiment(b *testing.B, run func(experiments.Config) (*experiments.Table, error), metric func(*experiments.Table) map[string]float64) {
	b.Helper()
	cfg := benchConfig()
	var tbl *experiments.Table
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		tbl, err = run(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if metric != nil && tbl != nil {
		for name, v := range metric(tbl) {
			b.ReportMetric(v, name)
		}
	}
	tbl.Render(io.Discard)
}

// findCell returns the numeric value of column col in the first row
// whose leading cells match keys.
func findCell(tbl *experiments.Table, col int, keys ...string) float64 {
	for _, row := range tbl.Rows {
		ok := true
		for i, k := range keys {
			if row[i] != k {
				ok = false
				break
			}
		}
		if ok {
			s := row[col]
			for len(s) > 0 && (s[len(s)-1] < '0' || s[len(s)-1] > '9') {
				s = s[:len(s)-1]
			}
			v, err := strconv.ParseFloat(s, 64)
			if err == nil {
				return v
			}
		}
	}
	return -1
}

// BenchmarkFigure3_BSGFStrategies regenerates Figure 3 (E1).
func BenchmarkFigure3_BSGFStrategies(b *testing.B) {
	runExperiment(b, experiments.Figure3, func(t *experiments.Table) map[string]float64 {
		return map[string]float64{
			"A1-SEQ-net-s":    findCell(t, 2, "A1", "SEQ"),
			"A1-PAR-net-s":    findCell(t, 2, "A1", "PAR"),
			"A1-GREEDY-net-s": findCell(t, 2, "A1", "GREEDY"),
		}
	})
}

// BenchmarkFigure4_LargeQueries regenerates Figure 4 (E2).
func BenchmarkFigure4_LargeQueries(b *testing.B) {
	runExperiment(b, experiments.Figure4, func(t *experiments.Table) map[string]float64 {
		return map[string]float64{
			"B1-SEQ-net-s": findCell(t, 2, "B1", "SEQ"),
			"B1-PAR-net-s": findCell(t, 2, "B1", "PAR"),
			"B2-1RD-net-s": findCell(t, 2, "B2", "1-ROUND"),
		}
	})
}

// BenchmarkFigure5_SGFStrategies regenerates Figure 5 (E3).
func BenchmarkFigure5_SGFStrategies(b *testing.B) {
	runExperiment(b, experiments.Figure5, func(t *experiments.Table) map[string]float64 {
		return map[string]float64{
			"C1-PARUNIT-netpct":   findCell(t, 2, "C1", "PARUNIT"),
			"C1-GREEDYSGF-totpct": findCell(t, 3, "C1", "GREEDY-SGF"),
		}
	})
}

// BenchmarkFigure7a_DataSize regenerates Figure 7a (E4).
func BenchmarkFigure7a_DataSize(b *testing.B) {
	runExperiment(b, experiments.Figure7a, func(t *experiments.Table) map[string]float64 {
		return map[string]float64{
			"1600M-PAR-net-s":    findCell(t, 2, "1600M", "PAR"),
			"1600M-GREEDY-net-s": findCell(t, 2, "1600M", "GREEDY"),
		}
	})
}

// BenchmarkFigure7b_ClusterSize regenerates Figure 7b (E5).
func BenchmarkFigure7b_ClusterSize(b *testing.B) {
	runExperiment(b, experiments.Figure7b, func(t *experiments.Table) map[string]float64 {
		return map[string]float64{
			"5n-PAR-net-s":  findCell(t, 2, "5", "PAR"),
			"20n-PAR-net-s": findCell(t, 2, "20", "PAR"),
		}
	})
}

// BenchmarkFigure7c_DataAndCluster regenerates Figure 7c (E6).
func BenchmarkFigure7c_DataAndCluster(b *testing.B) {
	runExperiment(b, experiments.Figure7c, nil)
}

// BenchmarkFigure8_QuerySize regenerates Figure 8 (E7).
func BenchmarkFigure8_QuerySize(b *testing.B) {
	runExperiment(b, experiments.Figure8, func(t *experiments.Table) map[string]float64 {
		return map[string]float64{
			"16at-SEQ-net-s": findCell(t, 2, "16", "SEQ"),
			"16at-1RD-net-s": findCell(t, 2, "16", "1-ROUND"),
		}
	})
}

// BenchmarkTable3_Selectivity regenerates Table 3 (E8).
func BenchmarkTable3_Selectivity(b *testing.B) {
	runExperiment(b, experiments.Table3, nil)
}

// BenchmarkCostModel_GumboVsWang regenerates the §5.2 cost-model
// comparison (E9).
func BenchmarkCostModel_GumboVsWang(b *testing.B) {
	runExperiment(b, experiments.CostModelExperiment, func(t *experiments.Table) map[string]float64 {
		return map[string]float64{
			"gumbo-plan-net-s": findCell(t, 2, "gumbo"),
			"wang-plan-net-s":  findCell(t, 2, "wang"),
		}
	})
}

// BenchmarkRankingAccuracy regenerates the §5.2 ranking accuracy
// comparison (E9b).
func BenchmarkRankingAccuracy(b *testing.B) {
	runExperiment(b, func(c experiments.Config) (*experiments.Table, error) {
		return experiments.RankingAccuracy(c, 12)
	}, func(t *experiments.Table) map[string]float64 {
		return map[string]float64{
			"gumbo-acc-pct": findCell(t, 2, "cost_gumbo"),
			"wang-acc-pct":  findCell(t, 2, "cost_wang"),
		}
	})
}

// BenchmarkOptimal_VsGreedy regenerates the greedy-vs-optimal check
// (E10).
func BenchmarkOptimal_VsGreedy(b *testing.B) {
	runExperiment(b, experiments.OptimalVsGreedy, nil)
}

// ---- Micro-benchmarks of the core machinery ----

func benchDB(tuples int) *relation.Database {
	wl := workload.A1()
	return wl.Build(float64(tuples) / float64(workload.PaperGuardTuples))
}

// BenchmarkMSJJob measures the multi-semi-join job on A1 (4 semi-joins,
// one guard, 50k-tuple relations).
func BenchmarkMSJJob(b *testing.B) {
	db := benchDB(50000)
	wl := workload.A1()
	eqs := core.ExtractEquations(wl.Program.Queries)
	job, err := core.NewMSJJob("bench", eqs)
	if err != nil {
		b.Fatal(err)
	}
	engine := mr.NewEngine(cost.Default().Scaled(0.0005))
	b.ReportAllocs() // tracks mapper-side key building + engine record flow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := engine.RunJob(job, db); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(5 * 50000 * 10)
}

// BenchmarkOneRoundJob measures the fused MSJ+EVAL job on A3.
func BenchmarkOneRoundJob(b *testing.B) {
	wl := workload.A3()
	db := wl.Build(0.0005)
	job, err := core.NewOneRoundJob("bench", wl.Program.Queries)
	if err != nil {
		b.Fatal(err)
	}
	engine := mr.NewEngine(cost.Default().Scaled(0.0005))
	b.ReportAllocs() // tracks mapper-side key building + engine record flow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := engine.RunJob(job, db); err != nil {
			b.Fatal(err)
		}
	}
}

// schedulerWorkload builds k independent subqueries over disjoint
// relations: Greedy-SGF compiles them into a multi-job plan whose MR
// dependency graph is k parallel two-job chains, a shape with ample
// independent work for the task pool.
func schedulerWorkload(k int, guardTuples int64) (*Query, *Database) {
	var src strings.Builder
	db := NewDatabase()
	for i := 0; i < k; i++ {
		fmt.Fprintf(&src, "Z%d := SELECT x, y FROM R%d(x, y) WHERE S%d(x) AND T%d(y);\n", i, i, i, i)
		g := NewRelation(fmt.Sprintf("R%d", i), 2)
		s := NewRelation(fmt.Sprintf("S%d", i), 1)
		u := NewRelation(fmt.Sprintf("T%d", i), 1)
		for j := int64(0); j < guardTuples; j++ {
			g.Add(Tuple{Int(j), Int(j % 997)})
		}
		for j := int64(0); j < guardTuples/2; j++ {
			s.Add(Tuple{Int(j * 2)})
		}
		for j := int64(0); j < 499; j++ {
			u.Add(Tuple{Int(j)})
		}
		db.Put(g)
		db.Put(s)
		db.Put(u)
	}
	return MustParse(src.String()), db
}

// benchProgramPool runs a Greedy-SGF plan of independent subqueries at
// the given unified-pool width. Compare the two widths for the task
// scheduler's wall-clock scaling; simulated metrics are identical in
// both.
func benchProgramPool(b *testing.B, workers int) {
	q, db := schedulerWorkload(6, 20000)
	s := New(WithScale(0.001), WithHostWorkers(workers))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Run(q, db, GreedySGF); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProgramPoolSequential runs every task on one worker.
func BenchmarkProgramPoolSequential(b *testing.B) { benchProgramPool(b, 1) }

// BenchmarkProgramPoolParallel runs the same plan on a GOMAXPROCS-wide
// pool.
func BenchmarkProgramPoolParallel(b *testing.B) { benchProgramPool(b, 0) }

// pipelineWorkload builds a deep nested SGF program — a `levels`-long
// chain where each subquery's guard is the previous subquery's output
// and each level filters by its own large base conditional relation:
//
//	Z1 := SELECT x, y FROM R(x, y) WHERE S1(x);
//	Zk := SELECT x, y FROM Z(k-1)(x, y) WHERE Sk(x);
//
// Under GreedySGF this compiles to a 2·levels-job MR program whose
// dependency graph is one long chain (MSJ_k → EVAL_k → MSJ_k+1 → ...),
// the worst case for whole-job barriers: the only work a barriered
// scheduler can ever overlap is within one job, while the base
// conditionals S1..Sk — the bulk of the map input — are all readable
// from the start.
func pipelineWorkload(levels int, guardTuples int64) (*Query, *Database) {
	var src strings.Builder
	db := NewDatabase()
	g := NewRelation("R", 2)
	for j := int64(0); j < guardTuples; j++ {
		g.Add(Tuple{Int(j), Int(j % 997)})
	}
	db.Put(g)
	prev := "R"
	for k := 1; k <= levels; k++ {
		fmt.Fprintf(&src, "Z%d := SELECT x, y FROM %s(x, y) WHERE S%d(x);\n", k, prev, k)
		s := NewRelation(fmt.Sprintf("S%d", k), 1)
		// ~97% of guard ids survive each level: every level keeps
		// substantial map/shuffle work while the chain output shrinks.
		for j := int64(0); j < guardTuples; j++ {
			if j%32 != int64(k%32) {
				s.Add(Tuple{Int(j)})
			}
		}
		db.Put(s)
		prev = fmt.Sprintf("Z%d", k)
	}
	return MustParse(src.String()), db
}

// BenchmarkProgramPipelined measures wall-clock time of a deep-DAG
// nested program end to end (GreedySGF planning + execution) at full
// host parallelism. This is the benchmark behind the partition-level
// pipelined scheduler: a dependent job's map tasks over base relations
// start while upstream jobs are still reducing, so the chain's job
// barriers stop costing idle workers. Compare against the same
// benchmark at the pre-pipelining commit (BENCH_pr5.json records both).
func BenchmarkProgramPipelined(b *testing.B) {
	q, db := pipelineWorkload(8, 30000)
	s := New(WithScale(0.001))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Run(q, db, GreedySGF); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGreedyBSGFQuery drives the full public pipeline — parse,
// Greedy-BSGF planning (with sampling), MSJ+EVAL execution, output
// merge — on the A1 workload (4 semi-joins over one guard, ~50k guard
// tuples at this scale): the end-to-end number the engine hot-path
// micro-benchmarks roll up into.
func BenchmarkGreedyBSGFQuery(b *testing.B) {
	wl := workload.A1()
	db := wl.Build(0.0005)
	q := MustParse(wl.Program.String())
	s := New(WithScale(0.0005))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Run(q, db, Greedy); err != nil {
			b.Fatal(err)
		}
	}
}

// skewedWorkload builds the adaptive-skew benchmark input: a semi-join
// whose guard's join column follows a harmonic (zipf-like) frequency
// law over `keys` distinct values — value k carries ~1/k of the hot
// mass. The handful of heavy values land in whichever reduce
// partitions their hashes pick, making those partitions cross the
// split threshold while still holding many separable key groups (the
// shape runtime splitting exists for: a single dominant key is one
// atomic group and can only be isolated, not divided).
func skewedWorkload(tuples, keys int64) (*Query, *Database) {
	q := MustParse("Z := SELECT x, y FROM R(x, y) WHERE S(x);")
	db := NewDatabase()
	g := NewRelation("R", 2)
	j := int64(0)
	for j < tuples {
		for k := int64(1); k <= keys && j < tuples; k++ {
			n := tuples / (k * 6)
			if n == 0 {
				n = 1
			}
			for i := int64(0); i < n && j < tuples; i++ {
				g.Add(Tuple{Int(k), Int(j)})
				j++
			}
		}
	}
	s := NewRelation("S", 1)
	for k := int64(0); k <= keys; k++ {
		s.Add(Tuple{Int(k)})
	}
	db.Put(g)
	db.Put(s)
	return q, db
}

// benchSkewedQuery runs the skewed semi-join end to end on a 4-wide
// pool with runtime skew splitting at the given threshold ratio
// (negative = off). One untimed warm-up run asserts the configuration
// actually does what the sub-benchmark name claims — the on-run must
// split the hot partition, the off-run must not split anything — and
// feeds the balance metrics: max-task-mb is the heaviest single reduce
// task the pool had to schedule (with splitting off this equals the
// heaviest partition), split-tasks the number of sub-range reduce
// tasks.
func benchSkewedQuery(b *testing.B, ratio float64) {
	q, db := skewedWorkload(120000, 32)
	s := New(WithScale(0.001), WithHostWorkers(4), WithSkewSplit(ratio))
	res, err := s.Run(q, db, Greedy)
	if err != nil {
		b.Fatal(err)
	}
	split := 0
	var maxTask float64
	for i := range res.JobStats {
		split += res.JobStats[i].SplitReduceTasks
		if m := res.JobStats[i].MaxReduceTaskMB; m > maxTask {
			maxTask = m
		}
	}
	if ratio > 0 && split == 0 {
		b.Fatal("splitting on but no reduce partition split")
	}
	if ratio <= 0 && split != 0 {
		b.Fatalf("splitting off but %d split tasks reported", split)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Run(q, db, Greedy); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(maxTask, "max-task-mb")
	b.ReportMetric(float64(split), "split-tasks")
}

// BenchmarkSkewedQuery measures what the runtime reduce-partition
// splitter buys on a hot-key workload: with splitting off the dominant
// key's partition reduces as one serial task the rest of the job waits
// behind; with it on, the partition splits at sketch-derived key
// boundaries into independently scheduled sub-tasks and the heaviest
// schedulable unit (the max-task-mb metric) shrinks by the skew
// factor. The ns/op comparison doubles as the overhead gate: on a
// single-CPU host the scheduling win cannot show up in wall-clock, so
// off vs on must be parity — the sampled sketch feed and split
// bookkeeping are free — while multi-core hosts convert the balance
// into wall-clock directly. BENCH_pr10.json records both.
func BenchmarkSkewedQuery(b *testing.B) {
	b.Run("split=off", func(b *testing.B) { benchSkewedQuery(b, -1) })
	b.Run("split=on", func(b *testing.B) { benchSkewedQuery(b, 1.5) })
}

// BenchmarkParser measures SGF parsing+validation throughput.
func BenchmarkParser(b *testing.B) {
	src := workload.C3().Program.String()
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		if _, err := sgf.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGreedyBSGF measures the planner on B1's 16 equations.
func BenchmarkGreedyBSGF(b *testing.B) {
	wl := workload.B1()
	db := wl.Build(0.0002)
	eqs := core.ExtractEquations(wl.Program.Queries)
	for i := 0; i < b.N; i++ {
		est := core.NewEstimator(cost.Default().Scaled(0.0002), cost.Gumbo, db, wl.Program)
		est.GreedyBSGF(eqs)
	}
}

// BenchmarkGreedySGF measures the multiway-sort heuristic on C3.
func BenchmarkGreedySGF(b *testing.B) {
	prog := workload.C3().Program
	for i := 0; i < b.N; i++ {
		core.GreedySGF(prog)
	}
}

// BenchmarkConformance measures the compiled conformance matcher.
func BenchmarkConformance(b *testing.B) {
	atom := sgf.NewAtom("R", sgf.V("x"), sgf.CInt(4), sgf.V("x"), sgf.V("y"))
	m := sgf.NewMatcher(atom)
	t := relation.Tuple{relation.Value(1), relation.Value(4), relation.Value(1), relation.Value(3)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !m.Matches(t) {
			b.Fatal("no match")
		}
	}
}

// BenchmarkReferenceEvaluator measures direct evaluation of A1.
func BenchmarkReferenceEvaluator(b *testing.B) {
	wl := workload.A1()
	db := wl.Build(0.0005)
	q := MustParse(wl.Program.String())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Eval(q, db); err != nil {
			b.Fatal(err)
		}
	}
}
