// Multiquery: §4.7 — evaluating a collection of SGF queries together.
// Two analysts submit independent queries over the same catalogue; the
// merged program lets Greedy-BSGF share the guard scan and the common
// conditional atoms across both queries, cutting total cost versus
// running them separately.
package main

import (
	"fmt"
	"log"

	gumbo "repro"
	"repro/internal/sgf"
	"repro/internal/workload"
)

func main() {
	// Query 1: orders fully covered by stock and couriers.
	q1, err := gumbo.Parse(`
		Covered := SELECT ord, item FROM Orders(ord, item, dst)
		           WHERE Stock(item) AND Couriers(dst);`)
	if err != nil {
		log.Fatal(err)
	}
	// Query 2: orders needing escalation — same guard and one shared
	// conditional atom, so evaluation can share work.
	q2, err := gumbo.Parse(`
		Escalate := SELECT ord FROM Orders(ord, item, dst)
		            WHERE NOT Stock(item) OR NOT Couriers(dst);`)
	if err != nil {
		log.Fatal(err)
	}
	merged, err := gumbo.Merge(q1, q2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(merged.Describe())

	db := buildOrders()
	sys := gumbo.New()

	// Separate evaluation: plan and run each query on its own.
	var sepJobs int
	var sepTotal float64
	for _, q := range []*gumbo.Query{q1, q2} {
		res, err := sys.Run(q, db, gumbo.Greedy)
		if err != nil {
			log.Fatal(err)
		}
		sepJobs += res.Plan.Jobs()
		sepTotal += res.Metrics.TotalTime
	}

	// Merged evaluation: one program, shared scans and assert streams.
	res, err := sys.Run(merged, db, gumbo.Greedy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nseparate: %d jobs, total %.0fs\n", sepJobs, sepTotal)
	fmt.Printf("merged:   %d jobs, total %.0fs (%s)\n",
		res.Plan.Jobs(), res.Metrics.TotalTime, res.Plan)
	fmt.Printf("\nCovered: %d orders, Escalate: %d orders\n",
		res.Outputs.Relation("Covered").Size(),
		res.Outputs.Relation("Escalate").Size())
}

func buildOrders() *gumbo.Database {
	// Reuse the workload generator machinery for a realistic skew-free
	// dataset: 30k orders, 60% stocked items, 70% served destinations.
	wl := workload.Workload{
		Name: "orders",
		// The generator only needs the program's atom structure.
		Program: sgf.MustParse(`
			Covered := SELECT ord, item FROM Orders(ord, item, dst)
			           WHERE Stock(item) AND Couriers(dst);`),
		GuardTuples: 30000,
		CondTuples:  10000,
		MatchFrac:   0.6,
		Seed:        7,
	}
	return wl.Build(1.0)
}
