// Costmodel: the §5.2 "Cost Model" walkthrough. The adversarial query
// semi-joins a 12-ary guard against four relations on all twelve keys
// with a constant that filters out every conditional tuple: the guard's
// map output explodes (48 requests per fact) while the conditional
// relations contribute nothing. The paper's per-partition cost model
// (cost_gumbo, Eq. 2) prices the guard's map-side merges correctly; the
// aggregate model of Wang et al. (cost_wang, Eq. 3) averages them away
// and groups too aggressively.
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/workload"
)

func main() {
	const scale = 0.001
	wl := workload.CostModel()
	fmt.Printf("query: %d semi-join equations over guard R12\n\n",
		len(core.ExtractEquations(wl.Program.Queries)))
	db := wl.Build(scale)
	costCfg := cost.Default().Scaled(scale)
	runner := exec.NewRunner(costCfg, cluster.DefaultConfig())

	for _, model := range []cost.Model{cost.Gumbo, cost.Wang} {
		est := core.NewEstimator(costCfg, model, db, wl.Program)
		eqs := core.ExtractEquations(wl.Program.Queries)
		partition := est.GreedyBSGF(eqs)
		plan, err := core.BasicPlan(fmt.Sprintf("cm-%v", model), core.StrategyGreedy,
			wl.Program.Queries, eqs, partition)
		if err != nil {
			log.Fatal(err)
		}
		res, err := runner.Run(plan, db)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("planned under cost_%v:\n", model)
		fmt.Printf("  Greedy-BSGF partition: %d MSJ job(s) %s\n",
			len(partition), core.PartitionString(partition))
		fmt.Printf("  measured: %s\n\n", res.Metrics)
	}
	fmt.Println("cost_gumbo isolates the guard's per-mapper intermediate volume and")
	fmt.Println("stops merging before map-side external sorts dominate; cost_wang")
	fmt.Println("averages intermediate data over all mappers (including the filtered")
	fmt.Println("conditionals) and under-prices the grouped job.")
}
