// Quickstart: parse an SGF query, build a small database with the
// public API, compare the evaluation strategies, and print the result.
//
// The query is the running example of the paper's introduction:
//
//	SELECT (x, y) FROM R(x, y)
//	WHERE (S(x, y) OR S(y, x)) AND T(x, z)
//
// which asks for the pairs (x, y) in R such that (x,y) or (y,x) occurs
// in S and x has at least one T-partner.
package main

import (
	"fmt"
	"log"

	gumbo "repro"
)

func main() {
	q, err := gumbo.Parse(`
		Z := SELECT x, y FROM R(x, y)
		     WHERE (S(x, y) OR S(y, x)) AND T(x, z);`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(q.Describe())

	db := gumbo.NewDatabase()
	db.Put(gumbo.FromTuples("R", 2, []gumbo.Tuple{
		{gumbo.Int(1), gumbo.Int(2)},
		{gumbo.Int(2), gumbo.Int(3)},
		{gumbo.Int(4), gumbo.Int(5)},
		{gumbo.Int(6), gumbo.Int(7)},
	}))
	db.Put(gumbo.FromTuples("S", 2, []gumbo.Tuple{
		{gumbo.Int(1), gumbo.Int(2)}, // matches R(1,2) directly
		{gumbo.Int(3), gumbo.Int(2)}, // matches R(2,3) flipped
		{gumbo.Int(5), gumbo.Int(4)}, // matches R(4,5) flipped
	}))
	db.Put(gumbo.FromTuples("T", 2, []gumbo.Tuple{
		{gumbo.Int(1), gumbo.Int(100)},
		{gumbo.Int(2), gumbo.Int(200)},
		{gumbo.Int(6), gumbo.Int(300)},
	}))

	// Direct in-memory evaluation (the reference semantics).
	ref, err := gumbo.Eval(q, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reference result: %d tuples\n", ref.Size())

	// MapReduce evaluation under each strategy; all agree on the output
	// but differ in job structure and simulated cost.
	sys := gumbo.New() // the paper's 10-node cluster, Table 5 constants
	for _, strat := range []gumbo.Strategy{gumbo.SEQ, gumbo.PAR, gumbo.Greedy} {
		res, err := sys.Run(q, db, strat)
		if err != nil {
			log.Fatal(err)
		}
		if !res.Relation.Equal(ref) {
			log.Fatalf("%s: output deviates from reference", strat)
		}
		fmt.Printf("%-7s %-24s %s\n", strat, res.Plan, res.Metrics)
	}

	res, err := sys.Run(q, db, sys.Auto(q))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\noutput tuples (auto strategy):")
	for _, t := range res.Relation.Sorted() {
		fmt.Println(" ", t)
	}
}
