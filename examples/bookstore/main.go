// Bookstore: the paper's Example 2 — a nested SGF program with string
// constants and negation, evaluated over synthetic book-catalogue data.
//
// Amaz, BN and BD hold (title, author, rating) rows for three book
// retailers; Upcoming holds (newtitle, author) announcements. The query
// lists upcoming books by authors who do NOT have a title rated "bad"
// at all three retailers simultaneously.
package main

import (
	"fmt"
	"log"
	"math/rand"

	gumbo "repro"
)

const authors = 200

func main() {
	q, err := gumbo.Parse(`
		Z1 := SELECT aut FROM Amaz(ttl, aut, "bad")
		      WHERE BN(ttl, aut, "bad") AND BD(ttl, aut, "bad");
		Z2 := SELECT new, aut FROM Upcoming(new, aut) WHERE NOT Z1(aut);`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(q.Describe())

	db := buildCatalogue(42)

	// The program is nested (Z2 depends on Z1): SGF-level strategies
	// apply. Greedy-SGF groups the two subqueries into an efficient
	// multiway topological sort.
	sys := gumbo.New()
	ref, err := gumbo.Eval(q, db)
	if err != nil {
		log.Fatal(err)
	}
	for _, strat := range []gumbo.Strategy{gumbo.SeqUnit, gumbo.ParUnit, gumbo.GreedySGF} {
		res, err := sys.Run(q, db, strat)
		if err != nil {
			log.Fatal(err)
		}
		if !res.Relation.Equal(ref) {
			log.Fatalf("%s deviates from reference", strat)
		}
		fmt.Printf("%-11s %-26s %s\n", strat, res.Plan, res.Metrics)
	}

	res, err := sys.Run(q, db, gumbo.GreedySGF)
	if err != nil {
		log.Fatal(err)
	}
	blocked := db.Relation("Upcoming").Size() - res.Relation.Size()
	fmt.Printf("\n%d upcoming books, %d filtered out (author has a universally bad-rated title)\n",
		db.Relation("Upcoming").Size(), blocked)
	for i, t := range res.Relation.Sorted() {
		if i >= 5 {
			fmt.Printf("  ... (%d more)\n", res.Relation.Size()-5)
			break
		}
		fmt.Printf("  upcoming title %s by author %s\n", t[0].Text(), t[1].Text())
	}
}

// buildCatalogue synthesizes three retailer catalogues with overlapping
// titles and a shared rating vocabulary, plus upcoming announcements.
func buildCatalogue(seed int64) *gumbo.Database {
	rng := rand.New(rand.NewSource(seed))
	bad, good := gumbo.Str("bad"), gumbo.Str("good")
	rate := func() gumbo.Value {
		if rng.Intn(3) == 0 {
			return bad
		}
		return good
	}
	amaz := gumbo.NewRelation("Amaz", 3)
	bn := gumbo.NewRelation("BN", 3)
	bd := gumbo.NewRelation("BD", 3)
	for title := int64(0); title < 600; title++ {
		aut := gumbo.Int(int64(rng.Intn(authors)))
		t := gumbo.Int(title)
		// Every retailer stocks most titles, each rating independently.
		if rng.Intn(10) > 0 {
			amaz.Add(gumbo.Tuple{t, aut, rate()})
		}
		if rng.Intn(10) > 0 {
			bn.Add(gumbo.Tuple{t, aut, rate()})
		}
		if rng.Intn(10) > 0 {
			bd.Add(gumbo.Tuple{t, aut, rate()})
		}
	}
	upcoming := gumbo.NewRelation("Upcoming", 2)
	for n := int64(0); n < 150; n++ {
		upcoming.Add(gumbo.Tuple{gumbo.Int(10_000 + n), gumbo.Int(int64(rng.Intn(authors)))})
	}
	db := gumbo.NewDatabase()
	db.Put(amaz)
	db.Put(bn)
	db.Put(bd)
	db.Put(upcoming)
	return db
}
