// Uniqueness: the paper's query B2 — tuples connected to exactly one of
// four conditional relations through attribute x — over generated data,
// comparing the 2-round strategies with the fused 1-ROUND evaluation
// that the shared join key makes possible (§5.1 optimization (4)).
package main

import (
	"fmt"
	"log"

	gumbo "repro"
	"repro/internal/workload"
)

func main() {
	// B2's condition is a disjunction of four conjunctions over the
	// same key, so the whole query runs in a single MapReduce job.
	wl := workload.B2()
	q, err := gumbo.Parse(wl.Program.String())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(q.Describe())

	// 50k-tuple relations (1/2000 of the paper's setup).
	db := wl.Build(0.0005)
	sys := gumbo.New(gumbo.WithScale(0.0005))

	ref, err := gumbo.Eval(q, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nguard tuples: %d; uniquely-connected: %d\n\n",
		db.Relation("R").Size(), ref.Size())

	fmt.Printf("%-8s  %-7s %-7s %-9s %s\n", "strategy", "jobs", "rounds", "net", "total")
	for _, strat := range []gumbo.Strategy{gumbo.SEQ, gumbo.PAR, gumbo.Greedy, gumbo.OneRound} {
		res, err := sys.Run(q, db, strat)
		if err != nil {
			log.Fatal(err)
		}
		if !res.Relation.Equal(ref) {
			log.Fatalf("%s deviates from reference", strat)
		}
		fmt.Printf("%-8s  %-7d %-7d %-9.0f %.0f\n",
			strat, res.Plan.Jobs(), res.Plan.Rounds(),
			res.Metrics.NetTime, res.Metrics.TotalTime)
	}
	fmt.Println("\n1-ROUND evaluates the whole Boolean combination in one job:")
	fmt.Println("every verdict for a guard tuple meets at the same reducer because")
	fmt.Println("all four conditional atoms share the join key x.")
}
