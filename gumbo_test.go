package gumbo

import (
	"strings"
	"testing"
)

func apiDB() *Database {
	db := NewDatabase()
	r := NewRelation("R", 2)
	r.Add(Tuple{Int(1), Int(10)})
	r.Add(Tuple{Int(2), Int(20)})
	r.Add(Tuple{Int(3), Int(10)})
	db.Put(r)
	db.Put(FromTuples("S", 1, []Tuple{{Int(1)}, {Int(3)}}))
	db.Put(FromTuples("T", 1, []Tuple{{Int(10)}}))
	return db
}

func TestParseAndDescribe(t *testing.T) {
	q := MustParse(`Z := SELECT x, y FROM R(x, y) WHERE S(x) AND T(y);`)
	if q.Name() != "Z" || q.Subqueries() != 1 || q.SemiJoins() != 2 || q.Nested() {
		t.Errorf("query introspection wrong: %s", q.Describe())
	}
	d := q.Describe()
	for _, want := range []string{"level 0", "R/2", "S/1", "T/1", "2 semi-joins"} {
		if !strings.Contains(d, want) {
			t.Errorf("Describe missing %q:\n%s", want, d)
		}
	}
	if _, err := Parse(`Z := SELECT q FROM R(x);`); err == nil {
		t.Error("invalid query accepted")
	}
}

func TestRunAllPublicStrategies(t *testing.T) {
	q := MustParse(`Z := SELECT x, y FROM R(x, y) WHERE S(x) AND T(y);`)
	db := apiDB()
	want, err := Eval(q, db)
	if err != nil {
		t.Fatal(err)
	}
	sys := New()
	for _, strat := range []Strategy{SEQ, PAR, Greedy, Opt, HPAR, HPARS, PPAR} {
		res, err := sys.Run(q, db, strat)
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if !res.Relation.Equal(want) {
			t.Errorf("%s: wrong output", strat)
		}
		if res.Metrics.NetTime <= 0 {
			t.Errorf("%s: empty metrics", strat)
		}
	}
}

func TestRunNestedProgram(t *testing.T) {
	q := MustParse(`
		Z1 := SELECT x, y FROM R(x, y) WHERE S(x);
		Z2 := SELECT x FROM Z1(x, y) WHERE T(y);`)
	if !q.Nested() {
		t.Error("Nested() = false")
	}
	db := apiDB()
	want, err := Eval(q, db)
	if err != nil {
		t.Fatal(err)
	}
	sys := New()
	for _, strat := range []Strategy{SeqUnit, ParUnit, GreedySGF} {
		res, err := sys.Run(q, db, strat)
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if !res.Relation.Equal(want) {
			t.Errorf("%s: wrong output", strat)
		}
	}
	// Flat strategies must refuse nested programs.
	if _, err := sys.Run(q, db, PAR); err == nil {
		t.Error("PAR accepted a nested program")
	}
}

func TestOneRoundViaPublicAPI(t *testing.T) {
	q := MustParse(`Z := SELECT x, y FROM R(x, y) WHERE S(x) AND NOT S(x) OR S(x);`)
	db := apiDB()
	sys := New()
	res, err := sys.Run(q, db, OneRound)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := Eval(q, db)
	if !res.Relation.Equal(want) {
		t.Error("1-round output wrong")
	}
	if res.Plan.Rounds() != 1 {
		t.Errorf("rounds = %d", res.Plan.Rounds())
	}
}

func TestAutoStrategy(t *testing.T) {
	sys := New()
	if got := sys.Auto(MustParse(`Z := SELECT x FROM R(x, y) WHERE S(x) AND T(x);`)); got != OneRound {
		t.Errorf("Auto shared-key = %v", got)
	}
	if got := sys.Auto(MustParse(`Z := SELECT x FROM R(x, y) WHERE S(x) AND T(y);`)); got != Greedy {
		t.Errorf("Auto flat = %v", got)
	}
	if got := sys.Auto(MustParse(`Z1 := SELECT x, y FROM R(x, y) WHERE S(x); Z2 := SELECT x FROM Z1(x, y);`)); got != GreedySGF {
		t.Errorf("Auto nested = %v", got)
	}
}

func TestPlanIntrospection(t *testing.T) {
	q := MustParse(`Z := SELECT x, y FROM R(x, y) WHERE S(x) AND T(y);`)
	sys := New()
	plan, err := sys.Plan(q, apiDB(), PAR)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Jobs() != 3 || plan.Rounds() != 2 || plan.Strategy() != PAR {
		t.Errorf("plan = %s", plan)
	}
	if !strings.Contains(plan.String(), "3 jobs") {
		t.Errorf("String = %q", plan)
	}
}

func TestSystemOptions(t *testing.T) {
	cfg := DefaultCostConfig()
	cfg.JobOverhead = 0
	sys := New(WithCostConfig(cfg), WithCluster(2, 4), WithScale(0.5))
	if sys.costCfg.JobOverhead != 0 {
		t.Error("WithCostConfig not applied")
	}
	if sys.clusterCfg.Nodes != 2 || sys.clusterCfg.SlotsPerNode != 4 {
		t.Error("WithCluster not applied")
	}
	if sys.costCfg.BufMapMB != cfg.BufMapMB*0.5 {
		t.Error("WithScale not applied")
	}
}

func TestValuesAndStrings(t *testing.T) {
	if Str("bad") != Str("bad") || Str("bad") == Str("good") {
		t.Error("string interning broken via facade")
	}
	if Int(7).Text() != "7" || Str("x").Text() != "x" {
		t.Error("Text broken")
	}
}

func TestBaseRelationArities(t *testing.T) {
	q := MustParse(`
		Z1 := SELECT aut FROM Amaz(ttl, aut, "bad") WHERE BN(ttl, aut, "bad");
		Z2 := SELECT new, aut FROM Upcoming(new, aut) WHERE NOT Z1(aut);`)
	got := q.BaseRelationArities()
	want := map[string]int{"Amaz": 3, "BN": 3, "Upcoming": 2}
	if len(got) != len(want) {
		t.Fatalf("arities = %v", got)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s arity = %d, want %d", k, got[k], v)
		}
	}
}
