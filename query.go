package gumbo

import (
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/sgf"
)

// Query is a parsed and validated SGF program: a sequence of basic
// (BSGF) queries Z_i := SELECT x̄ FROM R(t̄) WHERE C, where later queries
// may reference earlier outputs.
type Query struct {
	prog *sgf.Program
}

// Parse parses and validates an SGF program in the paper's SQL-like
// syntax, e.g.
//
//	Z1 := SELECT aut FROM Amaz(ttl, aut, "bad")
//	      WHERE BN(ttl, aut, "bad") AND BD(ttl, aut, "bad");
//	Z2 := SELECT new, aut FROM Upcoming(new, aut) WHERE NOT Z1(aut);
func Parse(src string) (*Query, error) {
	p, err := sgf.Parse(src)
	if err != nil {
		return nil, err
	}
	return &Query{prog: p}, nil
}

// MustParse is Parse that panics on error.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

// Name returns the final output relation's name.
func (q *Query) Name() string { return q.prog.OutputName() }

// Fingerprint returns a 64-bit FNV-1a hash of the program's canonical
// rendering (String): two Querys with the same canonical text always
// have the same fingerprint, so it — combined with a strategy and a
// Database.Generation — makes a compact plan-cache key. The converse
// does not hold (64-bit hashes can collide): services that cannot
// tolerate collisions should key on String() itself; internal/server
// does, and uses Fingerprint only for log correlation.
func (q *Query) Fingerprint() uint64 {
	h := fnv.New64a()
	io.WriteString(h, q.prog.String())
	return h.Sum64()
}

// OutputNames returns the names of every output relation the program
// defines, in definition order.
func (q *Query) OutputNames() []string {
	out := make([]string, len(q.prog.Queries))
	for i, bq := range q.prog.Queries {
		out[i] = bq.Name
	}
	return out
}

// String renders the program in canonical syntax.
func (q *Query) String() string { return q.prog.String() }

// Subqueries returns the number of basic queries in the program.
func (q *Query) Subqueries() int { return len(q.prog.Queries) }

// SemiJoins returns the number of semi-join equations the program
// induces (one per distinct conditional atom per query).
func (q *Query) SemiJoins() int {
	return len(core.ExtractEquations(q.prog.Queries))
}

// BaseRelations returns the sorted names of the input relations the
// query expects in the database.
func (q *Query) BaseRelations() []string { return q.prog.BaseRelations() }

// BaseRelationArities maps each base relation to its arity as used by
// the query.
func (q *Query) BaseRelationArities() map[string]int {
	out := make(map[string]int)
	defined := q.prog.Defined()
	record := func(a sgf.Atom) {
		if !defined[a.Rel] {
			out[a.Rel] = a.Arity()
		}
	}
	for _, bq := range q.prog.Queries {
		record(bq.Guard)
		for _, a := range bq.CondAtoms() {
			record(a)
		}
	}
	return out
}

// Nested reports whether any subquery depends on another's output.
func (q *Query) Nested() bool {
	g := sgf.BuildDepGraph(q.prog)
	for i := 0; i < g.N; i++ {
		if len(g.Pred[i]) > 0 {
			return true
		}
	}
	return false
}

// Describe renders a human-readable summary of the query structure:
// subqueries, dependency levels, semi-joins and 1-round applicability.
func (q *Query) Describe() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "SGF program, %d subquer%s, output %s\n",
		q.Subqueries(), plural(q.Subqueries(), "y", "ies"), q.Name())
	g := sgf.BuildDepGraph(q.prog)
	levels := g.Levels()
	for i, bq := range q.prog.Queries {
		mode := core.OneRoundApplicable(bq)
		fmt.Fprintf(&sb, "  [level %d] %s  (%d semi-joins, 1-round: %s)\n",
			levels[i], bq.String(), len(bq.CondAtoms()), mode)
	}
	base := q.BaseRelationArities()
	names := make([]string, 0, len(base))
	for n := range base {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(&sb, "  base relations:")
	for _, n := range names {
		fmt.Fprintf(&sb, " %s/%d", n, base[n])
	}
	sb.WriteByte('\n')
	return sb.String()
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// Merge combines several SGF programs into one, per §4.7: "evaluating a
// collection of SGF queries can be done in the same way as evaluating
// one SGF query — we simply consider the union of all BSGF subqueries".
// Output relation names must be pairwise distinct across the inputs;
// evaluation of the merged query exploits overlap between the programs'
// atoms (Greedy-SGF groups overlapping subqueries from different
// programs into shared jobs).
func Merge(queries ...*Query) (*Query, error) {
	merged := &sgf.Program{}
	seen := make(map[string]bool)
	for _, q := range queries {
		for _, bq := range q.prog.Queries {
			if seen[bq.Name] {
				return nil, fmt.Errorf("gumbo: merge: output relation %s defined by more than one query", bq.Name)
			}
			seen[bq.Name] = true
			merged.Queries = append(merged.Queries, bq.Clone())
		}
	}
	// A base relation of one program must not collide with another
	// program's output name: after merging, the reference would silently
	// rebind to the derived relation.
	for _, q := range queries {
		for _, base := range q.prog.BaseRelations() {
			if seen[base] && !q.prog.Defined()[base] {
				return nil, fmt.Errorf("gumbo: merge: base relation %s of one query is an output of another", base)
			}
		}
	}
	if err := sgf.Validate(merged); err != nil {
		return nil, err
	}
	return &Query{prog: merged}, nil
}
