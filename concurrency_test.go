package gumbo_test

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	gumbo "repro"
)

func concurrencyDB() *gumbo.Database {
	db := gumbo.NewDatabase()
	r := gumbo.NewRelation("R", 2)
	s := gumbo.NewRelation("S", 2)
	tt := gumbo.NewRelation("T", 1)
	for i := int64(0); i < 200; i++ {
		r.Add(gumbo.Tuple{gumbo.Int(i), gumbo.Int((i * 7) % 200)})
		if i%3 == 0 {
			s.Add(gumbo.Tuple{gumbo.Int(i), gumbo.Int((i * 7) % 200)})
		}
		if i%5 == 0 {
			tt.Add(gumbo.Tuple{gumbo.Int(i)})
		}
	}
	db.Put(r)
	db.Put(s)
	db.Put(tt)
	return db
}

var concurrencyQueries = []struct {
	src      string
	strategy gumbo.Strategy
}{
	{`Z := SELECT x, y FROM R(x, y) WHERE S(x, y) AND T(x);`, gumbo.Greedy},
	{`Z := SELECT x, y FROM R(x, y) WHERE S(x, y) AND T(x);`, gumbo.SEQ},
	{`Z := SELECT x FROM R(x, y) WHERE T(x) OR S(y, x);`, gumbo.PAR},
	{`Z1 := SELECT x FROM R(x, y) WHERE S(x, y);
	  Z2 := SELECT x FROM T(x) WHERE NOT Z1(x);`, gumbo.GreedySGF},
}

// TestSystemRunConcurrent exercises the System re-entrancy contract: many
// goroutines call Run on one System (sharing one exec.Runner and engine)
// and every Result — output relation, metrics, per-job stats — must be
// identical to a sequential run of the same query. Run under -race this
// is the service-layer safety net.
func TestSystemRunConcurrent(t *testing.T) {
	sys := gumbo.New(gumbo.WithHostWorkers(2))
	db := concurrencyDB()

	type expect struct {
		rel     *gumbo.Relation
		metrics gumbo.Metrics
		stats   []gumbo.JobStats
	}
	want := make([]expect, len(concurrencyQueries))
	for i, cq := range concurrencyQueries {
		res, err := sys.Run(gumbo.MustParse(cq.src), db, cq.strategy)
		if err != nil {
			t.Fatalf("sequential run %d: %v", i, err)
		}
		want[i] = expect{rel: res.Relation, metrics: res.Metrics, stats: res.JobStats}
	}

	const goroutines = 8
	const iters = 4
	var wg sync.WaitGroup
	errc := make(chan error, goroutines*iters)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				i := (g + it) % len(concurrencyQueries)
				cq := concurrencyQueries[i]
				res, err := sys.Run(gumbo.MustParse(cq.src), db, cq.strategy)
				if err != nil {
					errc <- fmt.Errorf("goroutine %d run %d: %v", g, i, err)
					return
				}
				if !res.Relation.Equal(want[i].rel) {
					errc <- fmt.Errorf("goroutine %d run %d: output differs from sequential run", g, i)
					return
				}
				if res.Metrics != want[i].metrics {
					errc <- fmt.Errorf("goroutine %d run %d: metrics %+v != %+v", g, i, res.Metrics, want[i].metrics)
					return
				}
				if !reflect.DeepEqual(res.JobStats, want[i].stats) {
					errc <- fmt.Errorf("goroutine %d run %d: job stats differ", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestRunPlanMatchesRun pins the plan-cache hook: planning once and
// executing the plan repeatedly (concurrently) is equivalent to Run.
func TestRunPlanMatchesRun(t *testing.T) {
	sys := gumbo.New()
	db := concurrencyDB()
	q := gumbo.MustParse(`Z := SELECT x, y FROM R(x, y) WHERE S(x, y) AND T(x);`)

	direct, err := sys.Run(q, db, gumbo.Greedy)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := sys.Plan(q, db, gumbo.Greedy)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := sys.RunPlan(plan, db)
			if err != nil {
				t.Errorf("RunPlan: %v", err)
				return
			}
			if !res.Relation.Equal(direct.Relation) {
				t.Error("RunPlan output differs from Run")
			}
			if res.Metrics != direct.Metrics {
				t.Errorf("RunPlan metrics %+v != Run metrics %+v", res.Metrics, direct.Metrics)
			}
		}()
	}
	wg.Wait()
}

// TestRunPlanFinalOutputNested guards the Plan wrapper's output-name
// tracking: for unit-based plans the inner plan's output list is in
// level order, which may differ from declaration order.
func TestRunPlanFinalOutputNested(t *testing.T) {
	sys := gumbo.New()
	db := concurrencyDB()
	// Z2 depends on Z1; Z3 is independent and declared last, so a
	// level-ordered plan lists Z3 before Z2 — yet the program's output
	// is Z3.
	q := gumbo.MustParse(`
		Z1 := SELECT x FROM R(x, y) WHERE S(x, y);
		Z2 := SELECT x FROM T(x) WHERE NOT Z1(x);
		Z3 := SELECT y FROM R(x, y) WHERE T(y);`)
	for _, strat := range []gumbo.Strategy{gumbo.SeqUnit, gumbo.ParUnit, gumbo.GreedySGF} {
		direct, err := sys.Run(q, db, strat)
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		plan, err := sys.Plan(q, db, strat)
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		res, err := sys.RunPlan(plan, db)
		if err != nil {
			t.Fatalf("%s: RunPlan: %v", strat, err)
		}
		if res.Relation.Name() != "Z3" {
			t.Errorf("%s: RunPlan final relation %q, want Z3", strat, res.Relation.Name())
		}
		if !res.Relation.Equal(direct.Relation) {
			t.Errorf("%s: RunPlan output differs from Run", strat)
		}
	}
}
