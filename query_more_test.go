package gumbo

import "testing"

func TestOutputNames(t *testing.T) {
	q := MustParse(`
		Z1 := SELECT x, y FROM R(x, y) WHERE S(x);
		Z2 := SELECT x FROM Z1(x, y) WHERE T(y);`)
	got := q.OutputNames()
	if len(got) != 2 || got[0] != "Z1" || got[1] != "Z2" {
		t.Errorf("OutputNames = %v", got)
	}
}
