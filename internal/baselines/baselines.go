// Package baselines emulates the comparison systems of §5.2 — Pig 0.15
// and Hive 1.2.1 — as plan shapes on the same MapReduce engine. The
// emulations reproduce the plan-level causes the paper identifies for
// their behaviour:
//
//   - HPAR (Hive outer joins): one outer-join stage per conditional
//     atom, stages forcibly sequential (Hive executes such join chains
//     sequentially even with parallel execution enabled), except that
//     consecutive joins on the same key collapse into one stage (which
//     is why A3 drops to two jobs in the paper); full tuples plus
//     null-flags are shuffled at every stage.
//   - HPARS (Hive semi-joins): one semi-join job per atom, runnable in
//     parallel but without any grouping or tuple-id reduction: the X
//     relations hold full guard tuples.
//   - PPAR (Pig COGROUP): like HPARS, plus Pig's input-based reducer
//     allocation (one reducer per GB of map input) and no intermediate
//     reduction.
//
// None of the baselines use message packing, and their serialization
// overhead is modelled with an intermediate-data inflation factor.
package baselines

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mr"
	"repro/internal/relation"
	"repro/internal/sgf"
)

// Strategy labels for the baselines.
const (
	StrategyHPAR  core.Strategy = "HPAR"
	StrategyHPARS core.Strategy = "HPARS"
	StrategyPPAR  core.Strategy = "PPAR"
)

// Knobs models the systemic overheads of the emulated engines.
type Knobs struct {
	// Inflate multiplies modelled intermediate sizes (serialization
	// overhead of Hive/Pig record formats vs Gumbo's compact encoding).
	Inflate float64
	// TimeFactor slows task execution relative to Gumbo's jobs (JVM
	// per-record costs, deserialization; the paper attributes HPARS's
	// slowness to "higher average map and reduce input sizes").
	TimeFactor float64
	// ExtraOverheadSec is the per-job startup latency beyond plain MR
	// (Hive query compilation/launch, Pig script compilation), in
	// full-scale seconds.
	ExtraOverheadSec float64
	// ReducerInputMB, when > 0, switches reducer allocation to Pig's
	// input-based policy with this much (full-scale) map input per
	// reducer.
	ReducerInputMB float64
}

// HiveKnobs reflects Hive's per-job compilation latency and its higher
// per-task processing times observed in §5.2.
func HiveKnobs() Knobs { return Knobs{Inflate: 1.05, TimeFactor: 1.35, ExtraOverheadSec: 20} }

// PigKnobs reflects Pig's bag serialization plus its 1 GB-of-input-per-
// reducer allocation.
func PigKnobs() Knobs {
	return Knobs{Inflate: 1.1, TimeFactor: 1.25, ExtraOverheadSec: 15, ReducerInputMB: 1024}
}

func (k Knobs) apply(j *mr.Job) {
	j.Packing = false
	j.InflateIntermediate = k.Inflate
	j.TimeFactor = k.TimeFactor
	j.ExtraOverheadSec = k.ExtraOverheadSec
	if k.ReducerInputMB > 0 {
		j.ReducersFromInput = true
		j.ReducerInputMB = k.ReducerInputMB
	}
}

// hxName is the intermediate relation name for query q's atom ai.
func hxName(prefix, qname string, ai int) string {
	return fmt.Sprintf("%s_%s_%d", prefix, qname, ai)
}

// newSemiJoinFullJob builds a per-atom semi-join job that outputs the
// full matching guard tuples (no tuple-id optimization): the HPARS /
// PPAR building block.
func newSemiJoinFullJob(name, out string, q *sgf.BSGF, atom sgf.Atom, k Knobs) *mr.Job {
	joinVars := sgf.SharedVars(q.Guard, atom)
	guardMatcher := sgf.NewMatcher(q.Guard)
	guardProj := sgf.NewProjector(q.Guard, joinVars)
	condMatcher := sgf.NewMatcher(atom)
	condProj := sgf.NewProjector(atom, joinVars)
	inputs := []string{q.Guard.Rel}
	if atom.Rel != q.Guard.Rel {
		inputs = append(inputs, atom.Rel)
	}
	job := &mr.Job{
		Name:    name,
		Inputs:  inputs,
		Outputs: map[string]int{out: q.Guard.Arity()},
		Mapper: mr.MapperFunc(func(input string, id int, t relation.Tuple, emit mr.Emit) {
			var kb [48]byte // append-style shuffle keys, see core.NewMSJJob
			if input == q.Guard.Rel && guardMatcher.Matches(t) {
				emit(guardProj.AppendKey(kb[:0], t), core.TupleVal{T: t})
			}
			if input == atom.Rel && condMatcher.Matches(t) {
				emit(condProj.AppendKey(kb[:0], t), core.Assert{Class: 0})
			}
		}),
		Reducer: mr.ReducerFunc(func(key []byte, msgs []mr.Message, o *mr.Output) {
			asserted := false
			for _, m := range msgs {
				if _, ok := m.(core.Assert); ok {
					asserted = true
					break
				}
			}
			if !asserted {
				return
			}
			for _, m := range msgs {
				if tv, ok := m.(core.TupleVal); ok {
					o.Add(out, tv.T)
				}
			}
		}),
	}
	k.apply(job)
	return job
}

// newCombineFullJob joins the guard with the full-tuple X relations on
// the whole guard tuple, evaluates the Boolean condition, projects, and
// deduplicates: the final job of HPARS / PPAR plans.
func newCombineFullJob(name string, q *sgf.BSGF, xNames []string, k Knobs) *mr.Job {
	atoms := q.CondAtoms()
	atomKeys := make([]string, len(atoms))
	for i, a := range atoms {
		atomKeys[i] = a.Key()
	}
	guardMatcher := sgf.NewMatcher(q.Guard)
	project := sgf.NewProjector(q.Guard, q.Select)
	inputs := []string{q.Guard.Rel}
	roleOf := make(map[string]int32, len(xNames))
	for i, xn := range xNames {
		roleOf[xn] = int32(i)
		inputs = append(inputs, xn)
	}
	job := &mr.Job{
		Name:    name,
		Inputs:  inputs,
		Outputs: map[string]int{q.Name: q.OutArity()},
		Mapper: mr.MapperFunc(func(input string, id int, t relation.Tuple, emit mr.Emit) {
			var kb [48]byte // whole-tuple join keys, built append-style
			if input == q.Guard.Rel {
				if guardMatcher.Matches(t) {
					emit(t.AppendKey(kb[:0]), core.XIndex{Atom: -1})
				}
				return
			}
			emit(t.AppendKey(kb[:0]), core.XIndex{Atom: roleOf[input]})
		}),
		Reducer: mr.ReducerFunc(func(key []byte, msgs []mr.Message, o *mr.Output) {
			truth := make(map[string]bool, len(atomKeys))
			guardPresent := false
			for _, m := range msgs {
				x := m.(core.XIndex)
				if x.Atom < 0 {
					guardPresent = true
				} else {
					truth[atomKeys[x.Atom]] = true
				}
			}
			if !guardPresent {
				return
			}
			if sgf.EvalCondition(q.Where, truth) {
				o.Add(q.Name, project.Apply(relation.TupleFromKeyBytes(key)))
			}
		}),
	}
	k.apply(job)
	return job
}

// parallelSemiJoinPlan builds the HPARS / PPAR plan for one query: one
// full-tuple semi-join job per atom (parallel) plus the combine job.
func parallelSemiJoinPlan(name string, strategy core.Strategy, q *sgf.BSGF, prefix string, k Knobs) (*core.Plan, error) {
	atoms := q.CondAtoms()
	plan := &core.Plan{Name: name, Strategy: strategy, Outputs: []string{q.Name}}
	var xNames []string
	var deps []int
	for ai, atom := range atoms {
		out := hxName(prefix, q.Name, ai)
		xNames = append(xNames, out)
		job := newSemiJoinFullJob(fmt.Sprintf("%s/sj%d", name, ai), out, q, atom, k)
		deps = append(deps, plan.AddJob(job))
	}
	plan.AddJob(newCombineFullJob(name+"/combine", q, xNames, k), deps...)
	return plan, nil
}

// HParSPlan builds Hive's semi-join strategy plan for the queries.
func HParSPlan(name string, queries []*sgf.BSGF) (*core.Plan, error) {
	return mergeIndependent(name, StrategyHPARS, queries, func(n string, q *sgf.BSGF) (*core.Plan, error) {
		return parallelSemiJoinPlan(n, StrategyHPARS, q, "HXS", HiveKnobs())
	})
}

// PParPlan builds Pig's COGROUP strategy plan for the queries.
func PParPlan(name string, queries []*sgf.BSGF) (*core.Plan, error) {
	return mergeIndependent(name, StrategyPPAR, queries, func(n string, q *sgf.BSGF) (*core.Plan, error) {
		return parallelSemiJoinPlan(n, StrategyPPAR, q, "PX", PigKnobs())
	})
}

// FullTuplePlan builds the PAR-shaped plan without the tuple-id
// optimization but with every other Gumbo optimization enabled (message
// packing, no engine handicaps): per-atom semi-join jobs output full
// guard tuples and the combine job joins on whole tuples. Used by the
// tuple-id ablation (DESIGN.md, optimization (2)).
func FullTuplePlan(name string, queries []*sgf.BSGF) (*core.Plan, error) {
	plan, err := mergeIndependent(name, "FULL-TUPLE", queries, func(n string, q *sgf.BSGF) (*core.Plan, error) {
		return parallelSemiJoinPlan(n, "FULL-TUPLE", q, "FX", Knobs{Inflate: 1, TimeFactor: 1})
	})
	if err != nil {
		return nil, err
	}
	for _, j := range plan.Jobs {
		j.Packing = true
	}
	return plan, nil
}

// mergeIndependent concatenates per-query plans without cross barriers.
func mergeIndependent(name string, strategy core.Strategy, queries []*sgf.BSGF, build func(string, *sgf.BSGF) (*core.Plan, error)) (*core.Plan, error) {
	subs := make([]*core.Plan, len(queries))
	for qi, q := range queries {
		sub, err := build(fmt.Sprintf("%s/q%d", name, qi), q)
		if err != nil {
			return nil, err
		}
		subs[qi] = sub
	}
	return core.MergePlans(name, strategy, subs), nil
}
