package baselines

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/data"
	"repro/internal/exec"
	"repro/internal/refeval"
	"repro/internal/relation"
	"repro/internal/sgf"
)

func tup(vals ...int64) relation.Tuple {
	t := make(relation.Tuple, len(vals))
	for i, v := range vals {
		t[i] = relation.Value(v)
	}
	return t
}

func smallDB() *relation.Database {
	db := relation.NewDatabase()
	db.Put(relation.FromTuples("R", 2, []relation.Tuple{
		tup(1, 10), tup(2, 20), tup(3, 10), tup(4, 30), tup(5, 40),
	}))
	db.Put(relation.FromTuples("S", 1, []relation.Tuple{tup(1), tup(3), tup(5)}))
	db.Put(relation.FromTuples("T", 1, []relation.Tuple{tup(10), tup(30)}))
	db.Put(relation.FromTuples("U", 1, []relation.Tuple{tup(2), tup(3)}))
	return db
}

type builder func(string, []*sgf.BSGF) (*core.Plan, error)

func allBaselines() map[string]builder {
	return map[string]builder{
		"HPAR":  HParPlan,
		"HPARS": HParSPlan,
		"PPAR":  PParPlan,
	}
}

func checkBaselines(t *testing.T, src string, db *relation.Database) {
	t.Helper()
	prog := sgf.MustParse(src)
	want, err := refeval.EvalProgram(prog, db)
	if err != nil {
		t.Fatal(err)
	}
	runner := exec.NewRunner(cost.Default(), cluster.DefaultConfig())
	for name, build := range allBaselines() {
		plan, err := build(name, prog.Queries)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res, err := runner.Run(plan, db)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, q := range prog.Queries {
			got := res.Outputs.Relation(q.Name)
			if got == nil || !got.Equal(want.Relation(q.Name)) {
				t.Errorf("%s/%s mismatch:\ngot:\n%s\nwant:\n%s",
					name, q.Name, got.Dump(), want.Relation(q.Name).Dump())
			}
		}
	}
}

func TestBaselinesSimple(t *testing.T) {
	checkBaselines(t, `Z := SELECT x, y FROM R(x, y) WHERE S(x) AND T(y);`, smallDB())
}

func TestBaselinesNegationAndDisjunction(t *testing.T) {
	checkBaselines(t, `Z := SELECT x, y FROM R(x, y) WHERE NOT S(x);`, smallDB())
	checkBaselines(t, `Z := SELECT x, y FROM R(x, y) WHERE S(x) OR NOT T(y);`, smallDB())
	checkBaselines(t, `Z := SELECT x, y FROM R(x, y) WHERE S(x) AND (T(y) OR NOT U(x));`, smallDB())
}

func TestBaselinesSharedKey(t *testing.T) {
	checkBaselines(t, `Z := SELECT x, y FROM R(x, y) WHERE S(x) AND U(x);`, smallDB())
}

func TestBaselinesMultiQuery(t *testing.T) {
	db := smallDB()
	db.Put(relation.FromTuples("G", 2, []relation.Tuple{tup(1, 10), tup(9, 20)}))
	checkBaselines(t, `
		Z1 := SELECT x, y FROM R(x, y) WHERE S(x) AND T(y);
		Z2 := SELECT x, y FROM G(x, y) WHERE S(x);`, db)
}

func TestBaselinesNoWhere(t *testing.T) {
	checkBaselines(t, `Z := SELECT x FROM R(x, y);`, smallDB())
}

func TestHParMergesSameKeyJoins(t *testing.T) {
	// A3 shape: all atoms on one key -> one join stage + filter = 2 jobs
	// (the paper's observed Hive behaviour for A3).
	prog := sgf.MustParse(`Z := SELECT x, y FROM R(x, y) WHERE S(x) AND U(x);`)
	plan, err := HParPlan("hpar", prog.Queries)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Jobs) != 2 || plan.Rounds() != 2 {
		t.Errorf("A3-shaped HPAR: %d jobs, %d rounds; want 2, 2", len(plan.Jobs), plan.Rounds())
	}
	// A1 shape: distinct keys -> one stage per atom, sequential.
	prog2 := sgf.MustParse(`Z := SELECT x, y FROM R(x, y) WHERE S(x) AND T(y);`)
	plan2, err := HParPlan("hpar", prog2.Queries)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan2.Jobs) != 3 || plan2.Rounds() != 3 {
		t.Errorf("A1-shaped HPAR: %d jobs, %d rounds; want 3, 3", len(plan2.Jobs), plan2.Rounds())
	}
}

func TestBaselinesCostlierThanGumbo(t *testing.T) {
	// At realistic sizes the baselines must show the paper's relative
	// behaviour vs Gumbo's PAR: more communication (full tuples, no
	// packing, inflation) and, for HPAR, more rounds.
	db := relation.NewDatabase()
	guard := data.GuardSpec{Name: "R", Arity: 4, Tuples: 20000, Seed: 1}.Generate()
	db.Put(guard)
	for i, n := range []string{"S", "T", "U", "V"} {
		db.Put(data.CondSpec{Name: n, Arity: 1, Tuples: 20000, Guard: guard, Col: i, MatchFrac: 0.5, Seed: int64(i + 2)}.Generate())
	}
	prog := sgf.MustParse(`Z := SELECT x, y, z, w FROM R(x, y, z, w)
		WHERE S(x) AND T(y) AND U(z) AND V(w);`)
	runner := exec.NewRunner(cost.Default().Scaled(0.001), cluster.DefaultConfig())
	parPlan, err := core.ParPlan("par", prog.Queries)
	if err != nil {
		t.Fatal(err)
	}
	parRes, err := runner.Run(parPlan, db)
	if err != nil {
		t.Fatal(err)
	}
	want, err := refeval.EvalOutput(prog, db)
	if err != nil {
		t.Fatal(err)
	}
	if !parRes.Output().Equal(want) {
		t.Fatal("PAR output wrong")
	}
	for name, build := range allBaselines() {
		plan, err := build(name, prog.Queries)
		if err != nil {
			t.Fatal(err)
		}
		res, err := runner.Run(plan, db)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Output().Equal(want) {
			t.Fatalf("%s output wrong", name)
		}
		if res.Metrics.CommMB <= parRes.Metrics.CommMB {
			t.Errorf("%s comm %.2fMB should exceed PAR %.2fMB",
				name, res.Metrics.CommMB, parRes.Metrics.CommMB)
		}
		if res.Metrics.NetTime <= parRes.Metrics.NetTime {
			t.Errorf("%s net %.1fs should exceed PAR %.1fs",
				name, res.Metrics.NetTime, parRes.Metrics.NetTime)
		}
	}
	hpar, _ := HParPlan("hpar", prog.Queries)
	if hpar.Rounds() <= parPlan.Rounds() {
		t.Errorf("HPAR rounds %d should exceed PAR rounds %d", hpar.Rounds(), parPlan.Rounds())
	}
}
