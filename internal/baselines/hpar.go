package baselines

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mr"
	"repro/internal/relation"
	"repro/internal/sgf"
)

// HParPlan builds Hive's outer-join strategy (HPAR) for the queries:
// the query is rewritten as a chain of left-outer-join stages — one per
// conditional atom, with consecutive atoms on the same join key merged
// into a single stage, as Hive's multi-way join does (this is why A3
// collapses to two jobs in §5.2) — followed by a filter/project/distinct
// job. Stages run strictly sequentially and shuffle the full (guard +
// null-flag) tuples, which is exactly what makes HPAR lose in the paper.
func HParPlan(name string, queries []*sgf.BSGF) (*core.Plan, error) {
	return mergeIndependent(name, StrategyHPAR, queries, hparSingle)
}

func hparSingle(name string, q *sgf.BSGF) (*core.Plan, error) {
	atoms := q.CondAtoms()
	k := HiveKnobs()
	plan := &core.Plan{Name: name, Strategy: StrategyHPAR, Outputs: []string{q.Name}}
	guardArity := q.Guard.Arity()

	// Stage grouping: consecutive atoms with the same join signature.
	type stage struct {
		atoms   []sgf.Atom
		atomIdx []int // index within the query's distinct atom list
	}
	var stages []stage
	sigOf := func(a sgf.Atom) string {
		vars := sgf.SharedVars(q.Guard, a)
		sig := ""
		for _, v := range vars {
			sig += v + "\x00"
		}
		return sig
	}
	for ai, a := range atoms {
		sig := sigOf(a)
		if len(stages) > 0 && sigOf(stages[len(stages)-1].atoms[0]) == sig {
			last := &stages[len(stages)-1]
			last.atoms = append(last.atoms, a)
			last.atomIdx = append(last.atomIdx, ai)
		} else {
			stages = append(stages, stage{atoms: []sgf.Atom{a}, atomIdx: []int{ai}})
		}
	}

	prevRel := q.Guard.Rel
	prevJob := -1
	flagsSoFar := 0
	for si, st := range stages {
		out := fmt.Sprintf("HJ_%s_%d", q.Name, si)
		job := hparStageJob(fmt.Sprintf("%s/join%d", name, si), q, st.atoms, prevRel, out,
			si == 0, guardArity+flagsSoFar, k)
		deps := []int{}
		if prevJob >= 0 {
			deps = append(deps, prevJob)
		}
		prevJob = plan.AddJob(job, deps...)
		prevRel = out
		flagsSoFar += len(st.atoms)
	}

	// Final filter + project + distinct job. Flag order follows stage
	// grouping; flagPos maps the query's atom index to its flag column.
	flagPos := make([]int, len(atoms))
	col := guardArity
	for _, st := range stages {
		for _, ai := range st.atomIdx {
			flagPos[ai] = col
			col++
		}
	}
	filter := hparFilterJob(name+"/filter", q, prevRel, guardArity+len(atoms), flagPos, k)
	if prevJob >= 0 {
		plan.AddJob(filter, prevJob)
	} else {
		plan.AddJob(filter)
	}
	return plan, nil
}

// hparStageJob joins the current intermediate (guard tuple + flags) with
// the stage's conditional relations on their shared join key, appending
// one 0/1 flag per atom. Left-outer semantics: every intermediate tuple
// survives.
func hparStageJob(name string, q *sgf.BSGF, stageAtoms []sgf.Atom, inRel, outRel string, first bool, inArity int, k Knobs) *mr.Job {
	joinVars := sgf.SharedVars(q.Guard, stageAtoms[0])
	guardMatcher := sgf.NewMatcher(q.Guard)
	keyPositions := q.Guard.VarPositions(joinVars)
	inputs := []string{inRel}
	type condRole struct {
		class   int32
		matcher sgf.Matcher
		proj    sgf.Projector
	}
	condRoles := make(map[string][]condRole)
	for ci, a := range stageAtoms {
		if _, seen := condRoles[a.Rel]; !seen && a.Rel != inRel {
			inputs = append(inputs, a.Rel)
		}
		condRoles[a.Rel] = append(condRoles[a.Rel], condRole{
			class:   int32(ci),
			matcher: sgf.NewMatcher(a),
			proj:    sgf.NewProjector(a, sgf.SharedVars(q.Guard, a)),
		})
	}
	outArity := inArity + len(stageAtoms)
	job := &mr.Job{
		Name:    name,
		Inputs:  inputs,
		Outputs: map[string]int{outRel: outArity},
		Mapper: mr.MapperFunc(func(input string, id int, t relation.Tuple, emit mr.Emit) {
			var kb [48]byte // append-style shuffle keys, see core.NewMSJJob
			if input == inRel && len(t) == inArity {
				if first && !guardMatcher.Matches(t) {
					return
				}
				key := t.Project(keyPositions)
				emit(key.AppendKey(kb[:0]), core.TupleVal{T: t})
			}
			for _, cr := range condRoles[input] {
				if cr.matcher.Matches(t) {
					emit(cr.proj.AppendKey(kb[:0], t), core.Assert{Class: cr.class})
				}
			}
		}),
		Reducer: mr.ReducerFunc(func(key []byte, msgs []mr.Message, o *mr.Output) {
			flags := make([]relation.Value, len(stageAtoms))
			for _, m := range msgs {
				if a, ok := m.(core.Assert); ok {
					flags[a.Class] = relation.Value(1)
				}
			}
			for _, m := range msgs {
				tv, ok := m.(core.TupleVal)
				if !ok {
					continue
				}
				out := make(relation.Tuple, 0, len(tv.T)+len(flags))
				out = append(out, tv.T...)
				out = append(out, flags...)
				o.Add(outRel, out)
			}
		}),
	}
	k.apply(job)
	return job
}

// hparFilterJob evaluates the Boolean condition on the flag columns,
// projects onto the select variables, and deduplicates.
func hparFilterJob(name string, q *sgf.BSGF, inRel string, inArity int, flagPos []int, k Knobs) *mr.Job {
	atoms := q.CondAtoms()
	atomKeys := make([]string, len(atoms))
	for i, a := range atoms {
		atomKeys[i] = a.Key()
	}
	project := sgf.NewProjector(q.Guard, q.Select)
	// When the query has no conditional atoms, the filter reads the raw
	// guard relation and must still apply the guard pattern.
	guardMatcher := sgf.NewMatcher(q.Guard)
	rawGuard := inRel == q.Guard.Rel
	job := &mr.Job{
		Name:    name,
		Inputs:  []string{inRel},
		Outputs: map[string]int{q.Name: q.OutArity()},
		Mapper: mr.MapperFunc(func(input string, id int, t relation.Tuple, emit mr.Emit) {
			if len(t) != inArity {
				return
			}
			if rawGuard && !guardMatcher.Matches(t) {
				return
			}
			truth := make(map[string]bool, len(atoms))
			for ai, pos := range flagPos {
				truth[atomKeys[ai]] = t[pos] == relation.Value(1)
			}
			if !sgf.EvalCondition(q.Where, truth) {
				return
			}
			p := project.Apply(t)
			var kb [48]byte
			emit(p.AppendKey(kb[:0]), core.TupleVal{T: p})
		}),
		Reducer: mr.ReducerFunc(func(key []byte, msgs []mr.Message, o *mr.Output) {
			if len(msgs) > 0 {
				o.Add(q.Name, msgs[0].(core.TupleVal).T)
			}
		}),
	}
	k.apply(job)
	return job
}
