package exec

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/data"
	"repro/internal/refeval"
	"repro/internal/relation"
	"repro/internal/sgf"
)

func testSetup(t *testing.T) (*Runner, *relation.Database, *sgf.Program) {
	t.Helper()
	db := relation.NewDatabase()
	guard := data.GuardSpec{Name: "R", Arity: 4, Tuples: 2000, Seed: 1}.Generate()
	db.Put(guard)
	for i, name := range []string{"S", "T"} {
		db.Put(data.CondSpec{
			Name: name, Arity: 1, Tuples: 2000,
			Guard: guard, Col: i, MatchFrac: 0.5, Seed: int64(i + 2),
		}.Generate())
	}
	prog := sgf.MustParse(`Z := SELECT x, y FROM R(x, y, z, w) WHERE S(x) AND T(y);`)
	runner := NewRunner(cost.Default().Scaled(0.001), cluster.DefaultConfig())
	return runner, db, prog
}

func TestRunProducesCorrectOutputAndMetrics(t *testing.T) {
	runner, db, prog := testSetup(t)
	want, err := refeval.EvalOutput(prog, db)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := core.ParPlan("par", prog.Queries)
	if err != nil {
		t.Fatal(err)
	}
	res, err := runner.Run(plan, db)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Output().Equal(want) {
		t.Errorf("output mismatch:\n%s\nvs\n%s", res.Output().Dump(), want.Dump())
	}
	m := res.Metrics
	if m.NetTime <= 0 || m.TotalTime <= 0 || m.InputMB <= 0 || m.CommMB <= 0 {
		t.Errorf("metrics not populated: %+v", m)
	}
	if m.TotalTime < m.NetTime {
		t.Errorf("total %v < net %v", m.TotalTime, m.NetTime)
	}
	if m.Jobs != 3 || m.Rounds != 2 {
		t.Errorf("jobs=%d rounds=%d", m.Jobs, m.Rounds)
	}
}

func TestSeqVsParShape(t *testing.T) {
	// The paper's core observation: PAR lowers net time but raises
	// total time relative to SEQ (for chains long enough to matter).
	runner, db, _ := testSetup(t)
	prog := sgf.MustParse(`Z := SELECT x, y, z, w FROM R(x, y, z, w) WHERE S(x) AND T(y) AND S(z) AND T(w);`)
	want, err := refeval.EvalOutput(prog, db)
	if err != nil {
		t.Fatal(err)
	}
	seqPlan, err := core.SeqPlan("seq", prog.Queries[0])
	if err != nil {
		t.Fatal(err)
	}
	parPlan, err := core.ParPlan("par", prog.Queries)
	if err != nil {
		t.Fatal(err)
	}
	seqRes, err := runner.Run(seqPlan, db)
	if err != nil {
		t.Fatal(err)
	}
	parRes, err := runner.Run(parPlan, db)
	if err != nil {
		t.Fatal(err)
	}
	if !seqRes.Output().Equal(want) || !parRes.Output().Equal(want) {
		t.Fatal("outputs wrong")
	}
	if parRes.Metrics.NetTime >= seqRes.Metrics.NetTime {
		t.Errorf("PAR net %v should beat SEQ net %v",
			parRes.Metrics.NetTime, seqRes.Metrics.NetTime)
	}
	if parRes.Metrics.Rounds >= seqRes.Metrics.Rounds {
		t.Errorf("PAR rounds %d vs SEQ rounds %d", parRes.Metrics.Rounds, seqRes.Metrics.Rounds)
	}
}

func TestModelledPlanCost(t *testing.T) {
	runner, db, prog := testSetup(t)
	plan, err := core.ParPlan("par", prog.Queries)
	if err != nil {
		t.Fatal(err)
	}
	res, err := runner.Run(plan, db)
	if err != nil {
		t.Fatal(err)
	}
	gumbo := runner.ModelledPlanCost(cost.Gumbo, res)
	wang := runner.ModelledPlanCost(cost.Wang, res)
	if gumbo <= 0 || wang <= 0 {
		t.Errorf("plan costs: gumbo=%v wang=%v", gumbo, wang)
	}
}

func TestRunErrorOnBrokenPlan(t *testing.T) {
	runner, db, prog := testSetup(t)
	plan, err := core.ParPlan("par", prog.Queries)
	if err != nil {
		t.Fatal(err)
	}
	plan.Jobs[0].Inputs = append(plan.Jobs[0].Inputs, "NoSuchRelation")
	if _, err := runner.Run(plan, db); err == nil {
		t.Error("broken plan accepted")
	}
}
