package exec

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/data"
	"repro/internal/refeval"
	"repro/internal/relation"
	"repro/internal/sgf"
)

func dynamicSetup(t *testing.T) (*Runner, *relation.Database, *sgf.Program) {
	t.Helper()
	db := relation.NewDatabase()
	for _, g := range []string{"R", "G", "H"} {
		db.Put(data.GuardSpec{Name: g, Arity: 4, Tuples: 3000, Seed: int64(len(g))}.Generate())
	}
	guard := db.Relation("R")
	for i, c := range []string{"S", "T", "U"} {
		db.Put(data.CondSpec{Name: c, Arity: 1, Tuples: 1500, Guard: guard, Col: i, MatchFrac: 0.5, Seed: int64(i + 9)}.Generate())
	}
	prog := sgf.MustParse(`
		Z1 := SELECT x FROM R(x, y, z, w) WHERE S(x) AND S(y);
		Z2 := SELECT x FROM G(x, y, z, w) WHERE T(x) AND T(y);
		Z3 := SELECT x FROM G(x, y, z, w) WHERE Z1(x) AND Z1(y);
		Z4 := SELECT x FROM H(x, y, z, w) WHERE Z2(x) AND U(y);`)
	return NewRunner(cost.Default().Scaled(0.001), cluster.DefaultConfig()), db, prog
}

func TestRunDynamicSGFCorrect(t *testing.T) {
	runner, db, prog := dynamicSetup(t)
	want, err := refeval.EvalProgram(prog, db)
	if err != nil {
		t.Fatal(err)
	}
	res, err := runner.RunDynamicSGF(prog, db)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range prog.Queries {
		got := res.Outputs.Relation(q.Name)
		if got == nil || !got.Equal(want.Relation(q.Name)) {
			t.Errorf("dynamic output %s wrong", q.Name)
		}
	}
	if res.Metrics.NetTime <= 0 || res.Metrics.TotalTime < res.Metrics.NetTime {
		t.Errorf("metrics wrong: %+v", res.Metrics)
	}
	if res.Plan.Strategy != StrategyDynamic {
		t.Errorf("strategy = %v", res.Plan.Strategy)
	}
}

func TestRunDynamicUsesMaterializedSizes(t *testing.T) {
	// After round one, Z1 exists in the working database, so the
	// estimator sees its true (small) size rather than the guard-size
	// upper bound. The run must complete and produce multiple rounds.
	runner, db, prog := dynamicSetup(t)
	res, err := runner.RunDynamicSGF(prog, db)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Rounds < 3 {
		t.Errorf("rounds = %d, want >= 3 (two planning rounds + EVALs)", res.Metrics.Rounds)
	}
	if len(res.JobStats) < 4 {
		t.Errorf("jobs = %d", len(res.JobStats))
	}
}

func TestRunDynamicVsStaticComparable(t *testing.T) {
	// The dynamic strategy should never be wildly worse than static
	// Greedy-SGF (same building blocks, better information).
	runner, db, prog := dynamicSetup(t)
	dyn, err := runner.RunDynamicSGF(prog, db)
	if err != nil {
		t.Fatal(err)
	}
	est := core.NewEstimator(runner.CostCfg, cost.Gumbo, db, prog)
	static, err := est.GreedySGFPlan("static", prog)
	if err != nil {
		t.Fatal(err)
	}
	sres, err := runner.Run(static, db)
	if err != nil {
		t.Fatal(err)
	}
	if dyn.Metrics.TotalTime > 1.5*sres.Metrics.TotalTime {
		t.Errorf("dynamic total %.0f far above static %.0f",
			dyn.Metrics.TotalTime, sres.Metrics.TotalTime)
	}
}

func TestRunDynamicRejectsInvalidProgram(t *testing.T) {
	runner, db, _ := dynamicSetup(t)
	bad := &sgf.Program{Queries: []*sgf.BSGF{{
		Name:   "Z",
		Select: []string{"q"},
		Guard:  sgf.NewAtom("R", sgf.V("x")),
	}}}
	if _, err := runner.RunDynamicSGF(bad, db); err == nil {
		t.Error("invalid program accepted")
	}
}
