package exec

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/mr"
	"repro/internal/relation"
	"repro/internal/sgf"
)

// StrategyDynamic labels the dynamic evaluation strategy of §4.6's
// closing note: "a naive dynamic evaluation strategy may consist of
// re-running Greedy-SGF after each BSGF evaluation in order to obtain an
// updated MR query plan". RunDynamicSGF implements it at group
// granularity: after each executed group the remaining program is
// re-planned against the *materialized* intermediate relations, so the
// estimator works from real sizes instead of upper bounds.
const StrategyDynamic core.Strategy = "DYNAMIC"

// RunDynamicSGF evaluates prog with iterative re-planning. Each
// iteration runs Greedy-SGF on the not-yet-evaluated queries (whose
// dependencies are now materialized), executes the first group with a
// Greedy-BSGF plan, and folds the outputs back into the database.
func (r *Runner) RunDynamicSGF(prog *sgf.Program, db *relation.Database) (*Result, error) {
	if err := sgf.Validate(prog); err != nil {
		return nil, err
	}
	working := relation.NewDatabase()
	for _, rel := range db.Relations() {
		working.Put(rel)
	}
	outputs := relation.NewDatabase()
	var allStats []mr.JobStats
	var simJobs []cluster.Job
	var metrics mr.Metrics
	prevGroupEnd := -1 // index of the last job of the previous group in simJobs

	remaining := append([]*sgf.BSGF(nil), prog.Queries...)
	round := 0
	resultPlan := &core.Plan{Name: "dynamic", Strategy: StrategyDynamic}
	for len(remaining) > 0 {
		round++
		sub := &sgf.Program{Queries: remaining}
		// Re-plan against current materialized state.
		est := core.NewEstimator(r.CostCfg, cost.Gumbo, working, sub)
		sort := core.GreedySGF(sub)
		if len(sort) == 0 {
			return nil, fmt.Errorf("exec: dynamic planning produced no groups")
		}
		group := sort[0]
		queries := make([]*sgf.BSGF, len(group))
		for i, qi := range group {
			queries[i] = remaining[qi]
		}
		plan, err := est.GreedyPlan(fmt.Sprintf("dynamic/r%d", round), queries)
		if err != nil {
			return nil, err
		}
		outs, stats, err := r.Engine.RunProgram(plan.Program(), working)
		if err != nil {
			return nil, err
		}
		for _, rel := range outs.Relations() {
			working.Put(rel)
			outputs.Put(rel)
		}
		// Stitch this group's jobs into the global simulated schedule:
		// intra-group deps shift by the current offset; the whole group
		// waits for the previous group (re-planning is a barrier).
		offset := len(simJobs)
		for ji, st := range stats {
			deps := make([]int, 0, len(plan.Deps[ji])+1)
			for _, d := range plan.Deps[ji] {
				deps = append(deps, d+offset)
			}
			if prevGroupEnd >= 0 {
				deps = append(deps, prevGroupEnd)
			}
			simJobs = append(simJobs, cluster.Job{
				Name: st.Name,
				Plan: r.CostCfg.TasksLoaded(st.CostSpec(), st.ReduceLoadMB),
				Deps: deps,
			})
			resultPlan.AddJob(plan.Jobs[ji], deps...)
			metrics.Add(st)
			allStats = append(allStats, st)
		}
		prevGroupEnd = len(simJobs) - 1
		resultPlan.Outputs = append(resultPlan.Outputs, plan.Outputs...)

		// Drop the executed queries.
		executed := make(map[int]bool, len(group))
		for _, qi := range group {
			executed[qi] = true
		}
		var next []*sgf.BSGF
		for qi, q := range remaining {
			if !executed[qi] {
				next = append(next, q)
			}
		}
		remaining = next
	}
	sim := cluster.Simulate(r.Cluster, simJobs)
	metrics.NetTime = sim.NetTime
	metrics.TotalTime = sim.TotalTime
	metrics.Rounds = resultPlan.Rounds()
	return &Result{
		Plan:     resultPlan,
		Outputs:  outputs,
		JobStats: allStats,
		Metrics:  metrics,
		Sim:      sim,
	}, nil
}
