// Package exec runs core.Plans: it executes the plan's MapReduce jobs on
// the in-process engine (producing exact outputs and measured byte
// counts), then replays the measured per-task costs through the cluster
// simulator to obtain the paper's net-time and total-time metrics.
package exec

import (
	"context"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/mr"
	"repro/internal/relation"
)

// Runner executes plans under one configuration.
//
// A Runner is safe for concurrent use once configured: Run keeps all
// per-run state on its own stack (the engine copies the input database
// into a private working database, and jobs/stats/simulation are local),
// so any number of goroutines may call Run on one Runner simultaneously.
// The configuration fields and WithHostWorkers must not be modified
// after the Runner is shared. gumbo.System relies on this to serve
// concurrent System.Run calls over a single shared Runner.
type Runner struct {
	Engine  *mr.Engine
	CostCfg cost.Config
	Cluster cluster.Config
}

// NewRunner wires an engine, cost model constants and a simulated
// cluster together. costCfg is used both by the engine (splits, reducer
// allocation) and for task-time derivation.
func NewRunner(costCfg cost.Config, clusterCfg cluster.Config) *Runner {
	return &Runner{
		Engine:  mr.NewEngine(costCfg),
		CostCfg: costCfg,
		Cluster: clusterCfg,
	}
}

// WithHostWorkers sizes the engine's unified worker pool: every task of
// a plan — map tasks, shuffle partitions, reduce partitions, output
// merge shards, across all of the plan's jobs — shares these `workers`
// goroutines (0 = GOMAXPROCS, 1 = strictly sequential). This replaces
// the earlier two-knob split of per-phase workers × concurrent jobs:
// the partition-level scheduler has no job level to bound separately.
// Outputs, stats and simulated metrics are identical at every setting;
// only wall-clock time changes. Returns r. Must be called before the
// Runner is shared between goroutines.
func (r *Runner) WithHostWorkers(workers int) *Runner {
	r.Engine.Parallelism = workers
	return r
}

// WithSpill configures shuffle spill-to-disk on the underlying engine:
// shuffle partitions whose modelled bytes reach threshold are written
// to temp files under dir ("" = os.TempDir) and streamed back by the
// reduce stage; outputs and stats are bit-for-bit unchanged (see
// mr.Engine.SpillThreshold for the 0 / negative conventions). Returns
// r. Must be called before the Runner is shared between goroutines.
func (r *Runner) WithSpill(threshold int64, dir string) *Runner {
	r.Engine.SpillThreshold = threshold
	r.Engine.SpillDir = dir
	return r
}

// WithSkewSplit configures runtime skew splitting on the underlying
// engine: after shuffle, reduce partitions heavier than ratio × the
// mean are split at heavy-key boundaries into independently scheduled
// sub-tasks; outputs and stats are bit-for-bit unchanged (see
// mr.Engine.SplitThreshold for the 0 / negative conventions). Returns
// r. Must be called before the Runner is shared between goroutines.
func (r *Runner) WithSkewSplit(ratio float64) *Runner {
	r.Engine.SplitThreshold = ratio
	return r
}

// Result is the outcome of running one plan.
type Result struct {
	Plan     *core.Plan
	Outputs  *relation.Database // every relation the plan produced
	JobStats []mr.JobStats
	// Timings holds the measured per-job task wall-clock, aligned with
	// JobStats. Host measurements, not modelled quantities: they vary run
	// to run and are excluded from the determinism contract (see
	// mr.JobTiming).
	Timings []mr.JobTiming
	// Mem is the run's memory accounting: bytes charged against the
	// query budget at the engine's accounted allocation sites, and spill
	// activity. Charged/Spilled totals are modelled quantities —
	// schedule-independent like JobStats (see mr.Budget).
	Mem     mr.MemStats
	Metrics mr.Metrics
	Sim     cluster.Result
}

// Output returns the relation for the plan's final SGF output (the last
// declared output), or nil.
func (r *Result) Output() *relation.Relation {
	if len(r.Plan.Outputs) == 0 {
		return nil
	}
	return r.Outputs.Relation(r.Plan.Outputs[len(r.Plan.Outputs)-1])
}

// Run executes the plan against db.
func (r *Runner) Run(plan *core.Plan, db *relation.Database) (*Result, error) {
	//lint:ignore ctxpass Run is the documented no-cancellation entry point; callers below the API layer use RunCtx
	return r.RunObserved(context.Background(), plan, db, nil)
}

// RunCtx is Run honoring ctx: the engine stops at the next task
// boundary after cancellation and the returned error wraps ctx.Err()
// (errors.Is-compatible with context.Canceled / DeadlineExceeded).
func (r *Runner) RunCtx(ctx context.Context, plan *core.Plan, db *relation.Database) (*Result, error) {
	return r.RunObserved(ctx, plan, db, nil)
}

// RunObserved is RunCtx additionally mirroring live task-completion
// counters into prog when non-nil (one fresh mr.Progress per run; see
// mr.RunProgramObserved for the cancellation contract).
func (r *Runner) RunObserved(ctx context.Context, plan *core.Plan, db *relation.Database, prog *mr.Progress) (*Result, error) {
	return r.RunGoverned(ctx, plan, db, prog, nil)
}

// RunGoverned is RunObserved charging the run's bulk allocations to
// budget. A nil budget runs unlimited but still accounted, so
// Result.Mem is always populated. When the run charges past the
// budget's limit it aborts with an error matching mr.ErrBudgetExceeded
// (errors.Is), nil Result, and the input database untouched.
func (r *Runner) RunGoverned(ctx context.Context, plan *core.Plan, db *relation.Database, prog *mr.Progress, budget *mr.Budget) (*Result, error) {
	if budget == nil {
		budget = mr.NewBudget(0)
	}
	outputs, stats, timings, err := r.Engine.RunProgramGoverned(ctx, plan.Program(), db, prog, budget)
	if err != nil {
		return nil, fmt.Errorf("exec: plan %s: %w", plan.Name, err)
	}
	if len(stats) != len(plan.Jobs) {
		return nil, fmt.Errorf("exec: plan %s: %d jobs but %d stats", plan.Name, len(plan.Jobs), len(stats))
	}
	jobs := make([]cluster.Job, len(stats))
	scale := r.CostCfg.Scale
	if scale <= 0 {
		scale = 1
	}
	for i, st := range stats {
		taskPlan := r.CostCfg.TasksLoaded(st.CostSpec(), st.ReduceLoadMB)
		// Baseline engine handicaps: slower tasks and extra per-job
		// startup latency (mr.Job.TimeFactor / ExtraOverheadSec).
		if f := plan.Jobs[i].TimeFactor; f > 0 && f != 1 {
			for ti := range taskPlan.MapTasks {
				taskPlan.MapTasks[ti] *= f
			}
			for ti := range taskPlan.ReduceTasks {
				taskPlan.ReduceTasks[ti] *= f
			}
		}
		taskPlan.Overhead += plan.Jobs[i].ExtraOverheadSec * scale
		jobs[i] = cluster.Job{
			Name: st.Name,
			Plan: taskPlan,
			Deps: plan.Deps[i],
		}
	}
	sim := cluster.Simulate(r.Cluster, jobs)
	var m mr.Metrics
	for _, st := range stats {
		m.Add(st)
	}
	m.NetTime = sim.NetTime
	m.TotalTime = sim.TotalTime
	m.Rounds = plan.Rounds()
	return &Result{
		Plan:     plan,
		Outputs:  outputs,
		JobStats: stats,
		Timings:  timings,
		Mem:      budget.Stats(),
		Metrics:  m,
		Sim:      sim,
	}, nil
}

// PredictPlanBytes estimates, before running, how many bytes a plan's
// execution will charge against its budget: the deduplicated base-input
// bytes (shuffle partitions hold roughly what the mappers read) plus
// the sampled intermediate sizes of every job whose inputs all exist in
// db (later-round jobs read produced relations, unknowable before the
// run; the admission ladder only needs a same-order figure, not a
// bound). Used by the server to size a query's initial reservation
// against the global memory budget.
func (r *Runner) PredictPlanBytes(plan *core.Plan, db *relation.Database) int64 {
	var total int64
	seen := make(map[string]bool)
	for _, job := range plan.Jobs {
		known := true
		for _, name := range job.Inputs {
			rel := db.Relation(name)
			if rel == nil {
				known = false
				continue
			}
			if !seen[name] {
				seen[name] = true
				total += rel.Bytes()
			}
		}
		if !known {
			continue
		}
		if parts, err := r.Engine.Sample(job, db); err == nil {
			for _, p := range parts {
				total += int64(p.InterMB * (1 << 20))
			}
		}
	}
	return total
}

// ModelledPlanCost prices an executed plan after the fact with measured
// sizes under the chosen cost model (used by the §5.2 cost-model
// comparison to rank jobs).
func (r *Runner) ModelledPlanCost(model cost.Model, res *Result) float64 {
	total := 0.0
	for _, st := range res.JobStats {
		total += r.CostCfg.JobCost(model, st.CostSpec())
	}
	return total
}
