// Package exec runs core.Plans: it executes the plan's MapReduce jobs on
// the in-process engine (producing exact outputs and measured byte
// counts), then replays the measured per-task costs through the cluster
// simulator to obtain the paper's net-time and total-time metrics.
package exec

import (
	"context"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/mr"
	"repro/internal/relation"
)

// Runner executes plans under one configuration.
//
// A Runner is safe for concurrent use once configured: Run keeps all
// per-run state on its own stack (the engine copies the input database
// into a private working database, and jobs/stats/simulation are local),
// so any number of goroutines may call Run on one Runner simultaneously.
// The configuration fields and WithHostWorkers must not be modified
// after the Runner is shared. gumbo.System relies on this to serve
// concurrent System.Run calls over a single shared Runner.
type Runner struct {
	Engine  *mr.Engine
	CostCfg cost.Config
	Cluster cluster.Config
}

// NewRunner wires an engine, cost model constants and a simulated
// cluster together. costCfg is used both by the engine (splits, reducer
// allocation) and for task-time derivation.
func NewRunner(costCfg cost.Config, clusterCfg cluster.Config) *Runner {
	return &Runner{
		Engine:  mr.NewEngine(costCfg),
		CostCfg: costCfg,
		Cluster: clusterCfg,
	}
}

// WithHostWorkers sizes the engine's unified worker pool: every task of
// a plan — map tasks, shuffle partitions, reduce partitions, output
// merge shards, across all of the plan's jobs — shares these `workers`
// goroutines (0 = GOMAXPROCS, 1 = strictly sequential). This replaces
// the earlier two-knob split of per-phase workers × concurrent jobs:
// the partition-level scheduler has no job level to bound separately.
// Outputs, stats and simulated metrics are identical at every setting;
// only wall-clock time changes. Returns r. Must be called before the
// Runner is shared between goroutines.
func (r *Runner) WithHostWorkers(workers int) *Runner {
	r.Engine.Parallelism = workers
	return r
}

// Result is the outcome of running one plan.
type Result struct {
	Plan     *core.Plan
	Outputs  *relation.Database // every relation the plan produced
	JobStats []mr.JobStats
	// Timings holds the measured per-job task wall-clock, aligned with
	// JobStats. Host measurements, not modelled quantities: they vary run
	// to run and are excluded from the determinism contract (see
	// mr.JobTiming).
	Timings []mr.JobTiming
	Metrics mr.Metrics
	Sim     cluster.Result
}

// Output returns the relation for the plan's final SGF output (the last
// declared output), or nil.
func (r *Result) Output() *relation.Relation {
	if len(r.Plan.Outputs) == 0 {
		return nil
	}
	return r.Outputs.Relation(r.Plan.Outputs[len(r.Plan.Outputs)-1])
}

// Run executes the plan against db.
func (r *Runner) Run(plan *core.Plan, db *relation.Database) (*Result, error) {
	//lint:ignore ctxpass Run is the documented no-cancellation entry point; callers below the API layer use RunCtx
	return r.RunObserved(context.Background(), plan, db, nil)
}

// RunCtx is Run honoring ctx: the engine stops at the next task
// boundary after cancellation and the returned error wraps ctx.Err()
// (errors.Is-compatible with context.Canceled / DeadlineExceeded).
func (r *Runner) RunCtx(ctx context.Context, plan *core.Plan, db *relation.Database) (*Result, error) {
	return r.RunObserved(ctx, plan, db, nil)
}

// RunObserved is RunCtx additionally mirroring live task-completion
// counters into prog when non-nil (one fresh mr.Progress per run; see
// mr.RunProgramObserved for the cancellation contract).
func (r *Runner) RunObserved(ctx context.Context, plan *core.Plan, db *relation.Database, prog *mr.Progress) (*Result, error) {
	outputs, stats, timings, err := r.Engine.RunProgramObserved(ctx, plan.Program(), db, prog)
	if err != nil {
		return nil, fmt.Errorf("exec: plan %s: %w", plan.Name, err)
	}
	if len(stats) != len(plan.Jobs) {
		return nil, fmt.Errorf("exec: plan %s: %d jobs but %d stats", plan.Name, len(plan.Jobs), len(stats))
	}
	jobs := make([]cluster.Job, len(stats))
	scale := r.CostCfg.Scale
	if scale <= 0 {
		scale = 1
	}
	for i, st := range stats {
		taskPlan := r.CostCfg.TasksLoaded(st.CostSpec(), st.ReduceLoadMB)
		// Baseline engine handicaps: slower tasks and extra per-job
		// startup latency (mr.Job.TimeFactor / ExtraOverheadSec).
		if f := plan.Jobs[i].TimeFactor; f > 0 && f != 1 {
			for ti := range taskPlan.MapTasks {
				taskPlan.MapTasks[ti] *= f
			}
			for ti := range taskPlan.ReduceTasks {
				taskPlan.ReduceTasks[ti] *= f
			}
		}
		taskPlan.Overhead += plan.Jobs[i].ExtraOverheadSec * scale
		jobs[i] = cluster.Job{
			Name: st.Name,
			Plan: taskPlan,
			Deps: plan.Deps[i],
		}
	}
	sim := cluster.Simulate(r.Cluster, jobs)
	var m mr.Metrics
	for _, st := range stats {
		m.Add(st)
	}
	m.NetTime = sim.NetTime
	m.TotalTime = sim.TotalTime
	m.Rounds = plan.Rounds()
	return &Result{
		Plan:     plan,
		Outputs:  outputs,
		JobStats: stats,
		Timings:  timings,
		Metrics:  m,
		Sim:      sim,
	}, nil
}

// ModelledPlanCost prices an executed plan after the fact with measured
// sizes under the chosen cost model (used by the §5.2 cost-model
// comparison to rank jobs).
func (r *Runner) ModelledPlanCost(model cost.Model, res *Result) float64 {
	total := 0.0
	for _, st := range res.JobStats {
		total += r.CostCfg.JobCost(model, st.CostSpec())
	}
	return total
}
