package core

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sgf"
)

func atomC(rel, v string) sgf.Condition {
	return sgf.AtomCond{Atom: sgf.NewAtom(rel, sgf.V(v))}
}

func TestToDNFSimple(t *testing.T) {
	// S(x) AND (T(y) OR NOT U(x)) -> (S∧T) ∨ (S∧¬U)
	c := sgf.AndOf(atomC("S", "x"), sgf.OrOf(atomC("T", "y"), sgf.Not{C: atomC("U", "x")}))
	d, err := ToDNF(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 2 {
		t.Fatalf("DNF = %v", d)
	}
	if len(d[0]) != 2 || d[0][0].Atom.Rel != "S" || d[0][1].Atom.Rel != "T" {
		t.Errorf("first disjunct = %v", d[0])
	}
	if !d[1][1].Negated || d[1][1].Atom.Rel != "U" {
		t.Errorf("second disjunct = %v", d[1])
	}
}

func TestToDNFDeMorgan(t *testing.T) {
	// NOT (S(x) OR T(x)) -> ¬S ∧ ¬T (single disjunct).
	c := sgf.Not{C: sgf.OrOf(atomC("S", "x"), atomC("T", "x"))}
	d, err := ToDNF(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 1 || len(d[0]) != 2 || !d[0][0].Negated || !d[0][1].Negated {
		t.Errorf("DNF = %v", d)
	}
}

func TestToDNFNil(t *testing.T) {
	d, err := ToDNF(nil)
	if err != nil || len(d) != 1 || len(d[0]) != 0 {
		t.Errorf("DNF(nil) = %v, %v", d, err)
	}
}

func TestToDNFExplosionGuard(t *testing.T) {
	// (a1∨b1) ∧ (a2∨b2) ∧ ... doubles each step; 8 clauses = 256 > cap.
	var clauses []sgf.Condition
	for i := 0; i < 8; i++ {
		clauses = append(clauses, sgf.OrOf(
			atomC("A"+strings.Repeat("x", i+1), "x"),
			atomC("B"+strings.Repeat("x", i+1), "x"),
		))
	}
	if _, err := ToDNF(sgf.AndOf(clauses...)); err == nil {
		t.Error("DNF explosion not detected")
	}
}

func TestDNFPreservesSemantics(t *testing.T) {
	// Random conditions over 3 atoms: the DNF evaluates identically on
	// all 8 truth assignments.
	atoms := []sgf.Atom{
		sgf.NewAtom("S", sgf.V("x")),
		sgf.NewAtom("T", sgf.V("x")),
		sgf.NewAtom("U", sgf.V("x")),
	}
	var build func(depth int, seed *uint64) sgf.Condition
	next := func(seed *uint64) uint64 {
		*seed = *seed*6364136223846793005 + 1442695040888963407
		return *seed >> 33
	}
	build = func(depth int, seed *uint64) sgf.Condition {
		if depth == 0 || next(seed)%3 == 0 {
			return sgf.AtomCond{Atom: atoms[next(seed)%3]}
		}
		switch next(seed) % 3 {
		case 0:
			return sgf.Not{C: build(depth-1, seed)}
		case 1:
			return sgf.AndOf(build(depth-1, seed), build(depth-1, seed))
		default:
			return sgf.OrOf(build(depth-1, seed), build(depth-1, seed))
		}
	}
	f := func(seedRaw uint64) bool {
		seed := seedRaw
		c := build(3, &seed)
		d, err := ToDNF(c)
		if err != nil {
			return true // explosion guard is allowed to fire
		}
		back := ConditionOfDNF(d)
		for mask := 0; mask < 8; mask++ {
			truth := map[string]bool{}
			for i, a := range atoms {
				truth[a.Key()] = mask&(1<<i) != 0
			}
			if sgf.EvalCondition(c, truth) != sgf.EvalCondition(back, truth) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDedupeLiterals(t *testing.T) {
	s := Literal{Atom: sgf.NewAtom("S", sgf.V("x"))}
	notS := Literal{Atom: sgf.NewAtom("S", sgf.V("x")), Negated: true}
	tt := Literal{Atom: sgf.NewAtom("T", sgf.V("x"))}
	if got, sat := dedupeLiterals([]Literal{s, tt, s}); !sat || len(got) != 2 {
		t.Errorf("dedupe = %v %v", got, sat)
	}
	if _, sat := dedupeLiterals([]Literal{s, notS}); sat {
		t.Error("contradiction not detected")
	}
}
