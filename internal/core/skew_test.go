package core

import (
	"math/rand"
	"testing"

	"repro/internal/cost"
	"repro/internal/refeval"
	"repro/internal/relation"
	"repro/internal/sgf"
)

// skewedDB builds a guard whose join column has one dominant value
// ("heavy hitter") plus a uniform tail, and a matching conditional.
func skewedDB(n int, heavyShare float64, seed int64) *relation.Database {
	rng := rand.New(rand.NewSource(seed))
	guard := relation.New("R", 2)
	hot := relation.Value(7)
	id := int64(0)
	for guard.Size() < n {
		id++
		var x relation.Value
		if rng.Float64() < heavyShare {
			x = hot
		} else {
			x = relation.Value(100 + rng.Int63n(int64(n)*4))
		}
		guard.Add(relation.Tuple{x, relation.Value(id)})
	}
	cond := relation.New("S", 1)
	cond.Add(relation.Tuple{hot})
	for cond.Size() < n/10 {
		cond.Add(relation.Tuple{relation.Value(100 + rng.Int63n(int64(n)*4))})
	}
	db := relation.NewDatabase()
	db.Put(guard)
	db.Put(cond)
	return db
}

func skewQuery() *sgf.Program {
	return sgf.MustParse(`Z := SELECT x, y FROM R(x, y) WHERE S(x);`)
}

func TestDetectHeavyKeys(t *testing.T) {
	db := skewedDB(20000, 0.3, 1)
	prog := skewQuery()
	eqs := ExtractEquations(prog.Queries)
	heavy := DetectHeavyKeys(DefaultSkewConfig(), eqs, db)
	hotKey := relation.Tuple{relation.Value(7)}.Key()
	if !heavy[hotKey] {
		t.Fatalf("hot key not detected; heavy set size %d", len(heavy))
	}
	// The uniform tail must not be flagged (allow a couple of sampling
	// artifacts).
	if len(heavy) > 3 {
		t.Errorf("too many heavy keys: %d", len(heavy))
	}
	// Uniform data: nothing heavy.
	uniform := skewedDB(20000, 0, 2)
	if got := DetectHeavyKeys(DefaultSkewConfig(), eqs, uniform); len(got) != 0 {
		t.Errorf("uniform data produced heavy keys: %d", len(got))
	}
}

func TestSkewMitigationPreservesOutput(t *testing.T) {
	db := skewedDB(20000, 0.3, 3)
	prog := skewQuery()
	eqs := ExtractEquations(prog.Queries)
	want, err := refeval.EvalOutput(prog, db)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := SkewAwareBasicPlan("skew", StrategyGreedy, prog.Queries, eqs,
		OneGroup(len(eqs)), db, DefaultSkewConfig())
	if err != nil {
		t.Fatal(err)
	}
	got := runPlan(t, plan, db)
	if !got.Equal(want) {
		t.Errorf("skew-aware plan output wrong:\n%s\nvs\n%s", got.Dump(), want.Dump())
	}
}

func TestSkewMitigationBalancesReducers(t *testing.T) {
	db := skewedDB(40000, 0.4, 4)
	prog := skewQuery()
	eqs := ExtractEquations(prog.Queries)
	engine := newTestEngine()
	engine.Cost = cost.Default().Scaled(0.0002) // many reducers

	plain, err := NewMSJJob("plain", eqs)
	if err != nil {
		t.Fatal(err)
	}
	_, plainStats, err := engine.RunJob(plain, db)
	if err != nil {
		t.Fatal(err)
	}
	heavy := DetectHeavyKeys(DefaultSkewConfig(), eqs, db)
	if len(heavy) == 0 {
		t.Fatal("no heavy keys detected")
	}
	salted, err := NewMSJJobSkew("salted", eqs, heavy, DefaultSkewConfig())
	if err != nil {
		t.Fatal(err)
	}
	_, saltedStats, err := engine.RunJob(salted, db)
	if err != nil {
		t.Fatal(err)
	}
	if plainStats.Reducers < 4 {
		t.Skipf("only %d reducers; skew not observable", plainStats.Reducers)
	}
	pi, si := plainStats.ReduceImbalance(), saltedStats.ReduceImbalance()
	if pi < 1.5 {
		t.Fatalf("test data not skewed enough: plain imbalance %.2f", pi)
	}
	if si > pi*0.7 {
		t.Errorf("salting did not balance reducers: %.2f -> %.2f", pi, si)
	}
}

func TestSkewJobNoHeavyKeysIsPlainMSJ(t *testing.T) {
	db := skewedDB(1000, 0, 5)
	prog := skewQuery()
	eqs := ExtractEquations(prog.Queries)
	job, err := NewMSJJobSkew("x", eqs, nil, DefaultSkewConfig())
	if err != nil {
		t.Fatal(err)
	}
	if job.Name != "x" {
		t.Errorf("no-op skew job renamed: %s", job.Name)
	}
	_ = db
}

// TestSkewRuntimeSplitDefersSalting: with RuntimeSplit set the static
// mitigation stands down — jobs come back unsalted (plain MSJ name and
// mapper) even with heavy keys in hand, and SkewAwareBasicPlan still
// produces the correct output (the engine's runtime splitter owns skew
// then; its own differential lives in internal/mr).
func TestSkewRuntimeSplitDefersSalting(t *testing.T) {
	db := skewedDB(20000, 0.3, 6)
	prog := skewQuery()
	eqs := ExtractEquations(prog.Queries)
	cfg := DefaultSkewConfig()
	cfg.RuntimeSplit = true
	job, err := NewMSJJobSkew("x", eqs, map[string]bool{"k": true}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if job.Name != "x" {
		t.Errorf("RuntimeSplit job still salted: %s", job.Name)
	}
	want, err := refeval.EvalOutput(prog, db)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := SkewAwareBasicPlan("defer", StrategyGreedy, prog.Queries, eqs,
		OneGroup(len(eqs)), db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := runPlan(t, plan, db)
	if !got.Equal(want) {
		t.Errorf("deferred plan output wrong:\n%s\nvs\n%s", got.Dump(), want.Dump())
	}
	for _, j := range plan.Jobs {
		if j.Name == "defer/msj0+skew" {
			t.Errorf("plan salted job %s despite RuntimeSplit", j.Name)
		}
	}
}

func TestSaltKeyDistinctness(t *testing.T) {
	base := relation.Tuple{relation.Value(7)}.Key()
	seen := map[string]bool{base: true}
	for s := 0; s < 32; s++ {
		k := string(appendSalt(append([]byte(nil), base...), s))
		if seen[k] {
			t.Fatalf("salt collision at %d", s)
		}
		seen[k] = true
	}
}

func TestSaltOfDeterministicAndSpread(t *testing.T) {
	counts := make([]int, 8)
	for id := int64(0); id < 8000; id++ {
		s := saltOf(id, 8)
		if s != saltOf(id, 8) {
			t.Fatal("saltOf not deterministic")
		}
		counts[s]++
	}
	for s, c := range counts {
		if c < 500 || c > 1500 {
			t.Errorf("salt %d count %d far from uniform", s, c)
		}
	}
}
