package core

import (
	"fmt"

	"repro/internal/mr"
	"repro/internal/relation"
	"repro/internal/sgf"
)

// EvalSpec describes one Boolean combination Y ∧ φ inside an EVAL job
// (§4.3): re-evaluate the guard relation of one BSGF query against the
// per-tuple verdicts of its MSJ output relations, and write the
// projected output.
type EvalSpec struct {
	Query *sgf.BSGF
	// XNames[i] is the MSJ output relation holding ids of guard tuples
	// satisfying the query's i-th distinct conditional atom.
	XNames []string
}

// NewEvalJob builds the single MapReduce job EVAL(Y1, φ1, ..., Yn, φn):
// the guard relations are re-read (cheap, per optimization (2)) and keyed
// by (query, tuple id); the X relations contribute truth marks; the
// reducer evaluates each query's Boolean condition per guard tuple and
// writes the projection.
//
// Inputs is the job's complete read set: the guard relations (usually
// base relations) and the MSJ output X relations. Declaring them
// per-relation is what lets the pipelined scheduler re-read the guards
// while the MSJ jobs producing the X inputs are still running — the
// EVAL job's guard map tasks no longer wait behind the MSJ barrier.
func NewEvalJob(name string, specs []EvalSpec) (*mr.Job, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("core: EVAL job %s has no specs", name)
	}
	outs := make(map[string]int, len(specs))
	var inputs []string
	seen := make(map[string]bool)
	addInput := func(rel string) {
		if !seen[rel] {
			seen[rel] = true
			inputs = append(inputs, rel)
		}
	}

	type guardRole struct {
		q       int32
		matcher sgf.Matcher
	}
	guardRoles := make(map[string][]guardRole)
	type xRole struct {
		q    int32
		atom int32
	}
	xRoles := make(map[string]xRole)

	// Per-query compiled data for the reducer.
	type querySpec struct {
		cond sgf.Condition
		// condBits is the compiled allocation-free evaluator over the
		// atom-index truth mask (bit i = atom i of atomKeys matched);
		// nil for queries with more than 64 distinct atoms, which fall
		// back to the truth-map path.
		condBits func(mask uint64) bool
		atomKeys []string // canonical keys of the distinct atoms, by index
		project  sgf.Projector
		outName  string
	}
	qspecs := make([]querySpec, len(specs))

	for qi, spec := range specs {
		q := spec.Query
		if _, dup := outs[q.Name]; dup {
			return nil, fmt.Errorf("core: EVAL job %s: output %s defined twice", name, q.Name)
		}
		outs[q.Name] = q.OutArity()
		atoms := q.CondAtoms()
		if len(atoms) != len(spec.XNames) {
			return nil, fmt.Errorf("core: EVAL job %s: query %s has %d atoms but %d X relations",
				name, q.Name, len(atoms), len(spec.XNames))
		}
		addInput(q.Guard.Rel)
		guardRoles[q.Guard.Rel] = append(guardRoles[q.Guard.Rel], guardRole{
			q:       int32(qi),
			matcher: sgf.NewMatcher(q.Guard),
		})
		keys := make([]string, len(atoms))
		for ai, a := range atoms {
			keys[ai] = a.Key()
			xn := spec.XNames[ai]
			if _, dup := xRoles[xn]; dup {
				return nil, fmt.Errorf("core: EVAL job %s: X relation %s used twice", name, xn)
			}
			xRoles[xn] = xRole{q: int32(qi), atom: int32(ai)}
			addInput(xn)
		}
		spec := querySpec{
			cond:     q.Where,
			atomKeys: keys,
			project:  sgf.NewProjector(q.Guard, q.Select),
			outName:  q.Name,
		}
		if len(keys) <= 64 {
			bitIdx := make(map[string]int, len(keys))
			for i, k := range keys {
				bitIdx[k] = i
			}
			spec.condBits = sgf.CompileCondition(q.Where, func(k string) (int, bool) {
				i, ok := bitIdx[k]
				return i, ok
			})
		}
		qspecs[qi] = spec
	}

	mapper := mr.MapperFunc(func(input string, id int, t relation.Tuple, emit mr.Emit) {
		var kb [24]byte // append-style shuffle keys, see NewMSJJob
		for _, g := range guardRoles[input] {
			if g.matcher.Matches(t) {
				emit(appendEvalKey(kb[:0], g.q, int64(id)), TupleVal{T: t})
			}
		}
		if xr, ok := xRoles[input]; ok {
			emit(appendEvalKey(kb[:0], xr.q, int64(t[0])), XIndex{Atom: xr.atom})
		}
	})

	reducer := mr.ReducerFunc(func(key []byte, msgs []mr.Message, out *mr.Output) {
		q, _ := parseEvalKey(key)
		spec := &qspecs[q]
		var guard relation.Tuple
		if spec.condBits != nil {
			// Hot path: collect verdicts as an atom-index bitmask and
			// evaluate the compiled condition — no per-key allocations.
			var mask uint64
			for _, m := range msgs {
				switch v := m.(type) {
				case TupleVal:
					guard = v.T
				case XIndex:
					mask |= uint64(1) << uint(v.Atom)
				}
			}
			if guard == nil {
				// An X record without its guard re-read cannot happen in
				// a well-formed plan; ignore defensively.
				return
			}
			if spec.condBits(mask) {
				out.Add(spec.outName, spec.project.Apply(guard))
			}
			return
		}
		truth := make(map[string]bool, len(spec.atomKeys))
		for _, m := range msgs {
			switch v := m.(type) {
			case TupleVal:
				guard = v.T
			case XIndex:
				truth[spec.atomKeys[v.Atom]] = true
			}
		}
		if guard == nil {
			return
		}
		if sgf.EvalCondition(spec.cond, truth) {
			out.Add(spec.outName, spec.project.Apply(guard))
		}
	})

	return &mr.Job{
		Name:    name,
		Inputs:  inputs,
		Outputs: outs,
		Mapper:  mapper,
		Reducer: reducer,
		Packing: true,
	}, nil
}
