package core

import (
	"fmt"

	"repro/internal/mr"
	"repro/internal/relation"
	"repro/internal/sgf"
)

// NewMSJJob builds the single MapReduce job MSJ(S) of Algorithm 1,
// evaluating every semi-join equation of eqs at once. The mapper emits,
// for each guard-conforming fact, one request message per equation
// (keyed by the equation's join-key projection) and, for each
// conditional-conforming fact, one assert message per distinct assert
// class. The reducer reconciles requests with asserts and writes guard
// tuple ids to the equations' output relations.
//
// Gumbo's optimizations are applied: message packing (opt 1), tuple-id
// references (opt 2), and intermediate-size-based reducer allocation
// (opt 3, inside the engine). Shared conditional atoms across equations
// produce one assert stream instead of several.
//
// The job's Inputs list is its complete read set — every guard and
// conditional relation, deduplicated, and nothing else (the mapper's
// per-input roles are compiled from the equations, never from database
// contents). The engine's pipelined scheduler relies on that to start
// map tasks over each input relation independently (Plan.InputDeps).
func NewMSJJob(name string, eqs []Equation) (*mr.Job, error) {
	if len(eqs) == 0 {
		return nil, fmt.Errorf("core: MSJ job %s has no equations", name)
	}
	outs := make(map[string]int, len(eqs))
	for _, e := range eqs {
		if _, dup := outs[e.Out]; dup {
			return nil, fmt.Errorf("core: MSJ job %s: output %s defined twice", name, e.Out)
		}
		outs[e.Out] = 1
	}
	for _, e := range eqs {
		if e.Guard.Rel == e.Out || e.Cond.Rel == e.Out {
			return nil, fmt.Errorf("core: MSJ job %s: output %s occurs in a right-hand side", name, e.Out)
		}
	}

	// Assert classes: distinct (conditional atom, join projection) pairs.
	classOf := make([]int32, len(eqs)) // equation -> assert class
	classKeys := make(map[string]int32)
	type assertClass struct {
		rel     string
		matcher sgf.Matcher
		proj    sgf.Projector
	}
	var classes []assertClass
	for i, e := range eqs {
		ck := e.AssertClassKey()
		ci, ok := classKeys[ck]
		if !ok {
			ci = int32(len(classes))
			classKeys[ck] = ci
			classes = append(classes, assertClass{
				rel:     e.Cond.Rel,
				matcher: sgf.NewMatcher(e.Cond),
				proj:    sgf.NewProjector(e.Cond, e.JoinVars),
			})
		}
		classOf[i] = ci
	}

	// Per-input roles, precompiled.
	type guardRole struct {
		eq      int32
		matcher sgf.Matcher
		proj    sgf.Projector
	}
	guardRoles := make(map[string][]guardRole)
	assertRoles := make(map[string][]int32) // input -> class indices
	var inputs []string
	seen := make(map[string]bool)
	addInput := func(rel string) {
		if !seen[rel] {
			seen[rel] = true
			inputs = append(inputs, rel)
		}
	}
	for i, e := range eqs {
		addInput(e.Guard.Rel)
		guardRoles[e.Guard.Rel] = append(guardRoles[e.Guard.Rel], guardRole{
			eq:      int32(i),
			matcher: sgf.NewMatcher(e.Guard),
			proj:    sgf.NewProjector(e.Guard, e.JoinVars),
		})
	}
	for ci, c := range classes {
		addInput(c.rel)
		assertRoles[c.rel] = append(assertRoles[c.rel], int32(ci))
	}

	mapper := mr.MapperFunc(func(input string, id int, t relation.Tuple, emit mr.Emit) {
		// Shuffle keys are built append-style into one stack buffer,
		// skipping the projected tuple and builder allocations of
		// proj.Apply(t).Key(); the engine copies the key into its arena
		// at emit, so the buffer is reusable immediately.
		var kb [32]byte
		for _, g := range guardRoles[input] {
			if g.matcher.Matches(t) {
				emit(g.proj.AppendKey(kb[:0], t), ReqID{Eq: g.eq, ID: int64(id)})
			}
		}
		for _, ci := range assertRoles[input] {
			c := classes[ci]
			if c.matcher.Matches(t) {
				emit(c.proj.AppendKey(kb[:0], t), Assert{Class: ci})
			}
		}
	})

	// classBit[eq] = 1 << classOf[eq]: with at most 64 assert classes
	// (always, in practice — one class per distinct conditional atom) the
	// reducer reconciles through a bitmask instead of allocating a map
	// per key group.
	var classBit []uint64
	if len(classes) <= 64 {
		classBit = make([]uint64, len(eqs))
		for i := range eqs {
			classBit[i] = uint64(1) << uint(classOf[i])
		}
	}

	reducer := mr.ReducerFunc(func(key []byte, msgs []mr.Message, out *mr.Output) {
		if classBit != nil {
			var asserted uint64
			seen := false
			for _, m := range msgs {
				if a, ok := m.(Assert); ok {
					asserted |= uint64(1) << uint(a.Class)
					seen = true
				}
			}
			if !seen {
				return
			}
			for _, m := range msgs {
				if r, ok := m.(ReqID); ok && asserted&classBit[r.Eq] != 0 {
					out.Add(eqs[r.Eq].Out, idTuple(r.ID))
				}
			}
			return
		}
		var asserted map[int32]bool
		for _, m := range msgs {
			if a, ok := m.(Assert); ok {
				if asserted == nil {
					asserted = make(map[int32]bool, 4)
				}
				asserted[a.Class] = true
			}
		}
		if asserted == nil {
			return
		}
		for _, m := range msgs {
			if r, ok := m.(ReqID); ok && asserted[classOf[r.Eq]] {
				out.Add(eqs[r.Eq].Out, idTuple(r.ID))
			}
		}
	})

	return &mr.Job{
		Name:    name,
		Inputs:  inputs,
		Outputs: outs,
		Mapper:  mapper,
		Reducer: reducer,
		Packing: true,
	}, nil
}
