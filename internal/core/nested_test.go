package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cost"
	"repro/internal/mr"
	"repro/internal/refeval"
	"repro/internal/relation"
	"repro/internal/sgf"
)

// randomNestedProgram builds a random valid SGF program of `depth`
// levels: level-0 queries read base relations; deeper queries may use
// earlier outputs as guards or conditionals.
func randomNestedProgram(rng *rand.Rand, depth int) *sgf.Program {
	prog := &sgf.Program{}
	baseGuards := []string{"R", "G"}
	conds := []string{"S", "T"}
	var prior []string // earlier outputs, all binary
	qn := 0
	for lvl := 0; lvl < depth; lvl++ {
		width := 1 + rng.Intn(2)
		var thisLevel []string
		for w := 0; w < width; w++ {
			qn++
			name := fmt.Sprintf("Z%d", qn)
			guard := baseGuards[rng.Intn(len(baseGuards))]
			if lvl > 0 && rng.Intn(2) == 0 {
				guard = prior[rng.Intn(len(prior))]
			}
			// Condition: 1-2 literals over base conds or prior outputs.
			var cs []sgf.Condition
			for li := 0; li < 1+rng.Intn(2); li++ {
				var atom sgf.Atom
				if lvl > 0 && rng.Intn(3) == 0 {
					atom = sgf.NewAtom(prior[rng.Intn(len(prior))], sgf.V("x"), sgf.V("y"))
				} else {
					atom = sgf.NewAtom(conds[rng.Intn(len(conds))], sgf.V([]string{"x", "y"}[rng.Intn(2)]))
				}
				var c sgf.Condition = sgf.AtomCond{Atom: atom}
				if rng.Intn(4) == 0 {
					c = sgf.Not{C: c}
				}
				cs = append(cs, c)
			}
			var where sgf.Condition
			if rng.Intn(2) == 0 {
				where = sgf.AndOf(cs...)
			} else {
				where = sgf.OrOf(cs...)
			}
			prog.Queries = append(prog.Queries, &sgf.BSGF{
				Name:   name,
				Select: []string{"x", "y"},
				Guard:  sgf.NewAtom(guard, sgf.V("x"), sgf.V("y")),
				Where:  where,
			})
			thisLevel = append(thisLevel, name)
		}
		prior = append(prior, thisLevel...)
	}
	return prog
}

func nestedTestDB(rng *rand.Rand) *relation.Database {
	db := relation.NewDatabase()
	for _, g := range []string{"R", "G"} {
		r := relation.New(g, 2)
		for r.Size() < 40 {
			r.Add(relation.Tuple{relation.Value(rng.Int63n(10)), relation.Value(rng.Int63n(10))})
		}
		db.Put(r)
	}
	for _, c := range []string{"S", "T"} {
		r := relation.New(c, 1)
		for r.Size() < 5 {
			r.Add(relation.Tuple{relation.Value(rng.Int63n(12))})
		}
		db.Put(r)
	}
	return db
}

// TestRandomNestedPrograms checks all SGF-level strategies against the
// reference evaluator on randomly generated nested programs.
func TestRandomNestedPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	engine := mr.NewEngine(cost.Default())
	for trial := 0; trial < 25; trial++ {
		prog := randomNestedProgram(rng, 1+rng.Intn(3))
		if err := sgf.Validate(prog); err != nil {
			t.Fatalf("trial %d: generated invalid program: %v\n%s", trial, err, prog)
		}
		db := nestedTestDB(rng)
		want, err := refeval.EvalProgram(prog, db)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		est := NewEstimator(cost.Default(), cost.Gumbo, db, prog)
		builders := map[string]func() (*Plan, error){
			"sequnit":   func() (*Plan, error) { return SeqUnitPlan("su", prog) },
			"parunit":   func() (*Plan, error) { return ParUnitPlan("pu", prog) },
			"greedysgf": func() (*Plan, error) { return est.GreedySGFPlan("gs", prog) },
		}
		for name, build := range builders {
			plan, err := build()
			if err != nil {
				t.Fatalf("trial %d %s: %v\n%s", trial, name, err, prog)
			}
			outs, _, err := engine.RunProgram(plan.Program(), db)
			if err != nil {
				t.Fatalf("trial %d %s: %v\n%s", trial, name, err, prog)
			}
			for _, q := range prog.Queries {
				got := outs.Relation(q.Name)
				if got == nil || !got.Equal(want.Relation(q.Name)) {
					t.Fatalf("trial %d %s: output %s wrong\nprogram:\n%s", trial, name, q.Name, prog)
				}
			}
		}
	}
}

// TestRandomNestedOneRoundGroups exercises the 1-round fusion inside
// SGF plans when a whole group is applicable.
func TestNestedSharedKeyProgram(t *testing.T) {
	prog := sgf.MustParse(`
		Z1 := SELECT x, y FROM R(x, y) WHERE S(x) AND T(x);
		Z2 := SELECT x, y FROM Z1(x, y) WHERE S(y) OR T(y);`)
	rng := rand.New(rand.NewSource(5))
	db := nestedTestDB(rng)
	want, err := refeval.EvalProgram(prog, db)
	if err != nil {
		t.Fatal(err)
	}
	// Plan each group as a 1-round job via a custom group planner.
	plan, err := SGFPlan("or", StrategyOneRound, prog, SeqUnitSort(prog),
		func(name string, queries []*sgf.BSGF) (*Plan, error) {
			return OneRoundPlan(name, queries)
		})
	if err != nil {
		t.Fatal(err)
	}
	engine := mr.NewEngine(cost.Default())
	outs, _, err := engine.RunProgram(plan.Program(), db)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range prog.Queries {
		if !outs.Relation(q.Name).Equal(want.Relation(q.Name)) {
			t.Errorf("1-round group output %s wrong", q.Name)
		}
	}
	if len(plan.Jobs) != 2 {
		t.Errorf("jobs = %d, want 2 (one fused job per level)", len(plan.Jobs))
	}
}
