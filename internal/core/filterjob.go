package core

import (
	"fmt"

	"repro/internal/mr"
	"repro/internal/relation"
	"repro/internal/sgf"
)

// FilterStep describes one sequential semi-join (or anti-join) step, the
// building block of the SEQ strategy (§5.2): filter the facts of a guard
// relation by the existence (or absence) of a matching conditional fact.
// Unlike MSJ, the output contains the surviving guard tuples themselves
// (optionally projected), so steps chain: the output feeds the next
// step's guard.
type FilterStep struct {
	Out      string   // output relation name
	GuardRel string   // relation to filter (a base relation or a previous step's output)
	Guard    sgf.Atom // conformance pattern for guard facts (relation symbol ignored)
	Cond     sgf.Atom // conditional atom κ
	Negated  bool     // anti-join: keep guard facts with no matching conditional fact
	// Project lists the variables to project the surviving tuples onto;
	// nil passes the full tuple through (chaining mode).
	Project []string
}

// NewFilterJob builds the one-round repartition (anti-)semi-join job of
// §4.1 for a single step.
func NewFilterJob(name string, step FilterStep) (*mr.Job, error) {
	if step.Out == step.GuardRel || step.Out == step.Cond.Rel {
		return nil, fmt.Errorf("core: filter job %s: output %s occurs in a right-hand side", name, step.Out)
	}
	joinVars := sgf.SharedVars(step.Guard, step.Cond)
	guardMatcher := sgf.NewMatcher(step.Guard)
	guardProj := sgf.NewProjector(step.Guard, joinVars)
	condMatcher := sgf.NewMatcher(step.Cond)
	condProj := sgf.NewProjector(step.Cond, joinVars)

	outArity := step.Guard.Arity()
	var project sgf.Projector
	projectSet := step.Project != nil
	if projectSet {
		project = sgf.NewProjector(step.Guard, step.Project)
		outArity = len(step.Project)
	}

	inputs := []string{step.GuardRel}
	if step.Cond.Rel != step.GuardRel {
		inputs = append(inputs, step.Cond.Rel)
	}

	mapper := mr.MapperFunc(func(input string, id int, t relation.Tuple, emit mr.Emit) {
		var kb [32]byte // append-style shuffle keys, see NewMSJJob
		if input == step.GuardRel && guardMatcher.Matches(t) {
			out := t
			if projectSet {
				out = project.Apply(t)
			}
			emit(guardProj.AppendKey(kb[:0], t), ReqTuple{Q: 0, Disjunct: -1, Out: out})
		}
		if input == step.Cond.Rel && condMatcher.Matches(t) {
			emit(condProj.AppendKey(kb[:0], t), Assert{Class: 0})
		}
	})

	reducer := mr.ReducerFunc(func(key []byte, msgs []mr.Message, out *mr.Output) {
		asserted := false
		for _, m := range msgs {
			if _, ok := m.(Assert); ok {
				asserted = true
				break
			}
		}
		if asserted == step.Negated {
			return
		}
		for _, m := range msgs {
			if r, ok := m.(ReqTuple); ok {
				out.Add(step.Out, r.Out)
			}
		}
	})

	return &mr.Job{
		Name:    name,
		Inputs:  inputs,
		Outputs: map[string]int{step.Out: outArity},
		Mapper:  mapper,
		Reducer: reducer,
		Packing: true,
	}, nil
}

// NewUnionProjectJob builds the final job of a disjunctive SEQ plan: the
// union of several filtered branches, each projected onto the query's
// select variables and deduplicated.
func NewUnionProjectJob(name, out string, guard sgf.Atom, selectVars []string, branchRels []string) (*mr.Job, error) {
	if len(branchRels) == 0 {
		return nil, fmt.Errorf("core: union job %s has no branches", name)
	}
	project := sgf.NewProjector(guard, selectVars)
	matcher := sgf.NewMatcher(guard)
	inputs := append([]string(nil), branchRels...)
	mapper := mr.MapperFunc(func(input string, id int, t relation.Tuple, emit mr.Emit) {
		// Branches produced by filter chains always conform; the guard
		// relation itself (a TRUE disjunct) may not.
		if !matcher.Matches(t) {
			return
		}
		var kb [32]byte
		p := project.Apply(t)
		emit(p.AppendKey(kb[:0]), TupleVal{T: p})
	})
	reducer := mr.ReducerFunc(func(key []byte, msgs []mr.Message, o *mr.Output) {
		if len(msgs) > 0 {
			o.Add(out, msgs[0].(TupleVal).T)
		}
	})
	return &mr.Job{
		Name:    name,
		Inputs:  inputs,
		Outputs: map[string]int{out: len(selectVars)},
		Mapper:  mapper,
		Reducer: reducer,
		Packing: true,
	}, nil
}
