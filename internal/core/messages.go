// Package core implements the paper's primary contribution: the
// multi-semi-join operator MSJ (Algorithm 1) and the EVAL operator for
// Boolean combinations (§4.3), their fused 1-ROUND form (§5.1,
// optimization (4)), the plan space for BSGF and SGF queries, the cost
// estimation that drives plan choice (Eq. 5–10), and the greedy
// optimizers Greedy-BSGF (§4.4) and Greedy-SGF (§4.6) with brute-force
// optimal baselines.
package core

import (
	"encoding/binary"
	"strings"

	"repro/internal/mr"
	"repro/internal/relation"
)

// Modelled message sizes in bytes. Requests in tuple-id mode carry a
// 4-byte equation tag and an 8-byte guard tuple reference — this is the
// paper's optimization (2): shuffling a reference instead of the tuple.
const (
	assertBytes  = 4
	reqIDBytes   = 12
	xIndexBytes  = 4
	tupleTagByte = 2
)

// ReqID is the MSJ request message ("Req (κ_i, i); Out <ref>") in
// tuple-id mode: it asks whether a conditional fact matching equation Eq
// exists and, if so, marks guard tuple ID as satisfying that equation.
type ReqID struct {
	Eq int32
	ID int64
}

// SizeBytes implements mr.Message.
func (m ReqID) SizeBytes() int64 { return reqIDBytes }

// Assert is the MSJ assert message ("Assert κ"): a conditional fact of
// assert class Class exists with the record's join key.
type Assert struct {
	Class int32
}

// SizeBytes implements mr.Message.
func (m Assert) SizeBytes() int64 { return assertBytes }

// ReqTuple is the 1-ROUND request: it carries the projected output tuple
// directly, since the fused job has no EVAL stage to re-read the guard.
// Q identifies the query within the job; Disjunct identifies the literal
// group the key belongs to (used by the disjunctive 1-round variant; -1
// for the shared-key variant).
type ReqTuple struct {
	Q        int32
	Disjunct int32
	Out      relation.Tuple
}

// SizeBytes implements mr.Message.
func (m ReqTuple) SizeBytes() int64 {
	return tupleTagByte + 4 + int64(len(m.Out))*relation.BytesPerField
}

// TupleVal carries a full guard tuple into an EVAL reducer (the guard
// re-read of optimization (2)).
type TupleVal struct {
	T relation.Tuple
}

// SizeBytes implements mr.Message.
func (m TupleVal) SizeBytes() int64 {
	return tupleTagByte + int64(len(m.T))*relation.BytesPerField
}

// XIndex marks, in an EVAL job, that the key's guard tuple satisfies
// conditional atom Atom of its query.
type XIndex struct {
	Atom int32
}

// SizeBytes implements mr.Message.
func (m XIndex) SizeBytes() int64 { return xIndexBytes }

// appendEvalKey appends the EVAL shuffle key (query index, guard tuple
// id) to dst, so mappers build it in a reused stack buffer.
func appendEvalKey(dst []byte, q int32, id int64) []byte {
	var b [2 * binary.MaxVarintLen64]byte
	n := binary.PutVarint(b[:], int64(q))
	n += binary.PutVarint(b[n:], id)
	return append(dst, b[:n]...)
}

// parseEvalKey decodes an EVAL shuffle key.
func parseEvalKey(key []byte) (q int32, id int64) {
	qv, n := binary.Varint(key)
	idv, _ := binary.Varint(key[n:])
	return int32(qv), idv
}

// idTuple wraps a guard tuple id as a unary relation tuple: the X_i
// output relations of an MSJ job hold these references.
func idTuple(id int64) relation.Tuple { return relation.Tuple{relation.Value(id)} }

// sanitizeName makes a string usable inside generated relation names.
func sanitizeName(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		default:
			return '_'
		}
	}, s)
}

var (
	_ mr.Message = ReqID{}
	_ mr.Message = Assert{}
	_ mr.Message = ReqTuple{}
	_ mr.Message = TupleVal{}
	_ mr.Message = XIndex{}
)
