package core

import (
	"fmt"

	"repro/internal/mr"
	"repro/internal/sgf"
)

// Strategy names the evaluation strategies compared in §5.
type Strategy string

const (
	// StrategySEQ evaluates semi-joins sequentially, each applied to the
	// output of the previous step (the paper's SEQ / SEQUNIT bases).
	StrategySEQ Strategy = "SEQ"
	// StrategyPAR evaluates every semi-join as its own parallel MSJ job
	// followed by EVAL (parallelization without grouping).
	StrategyPAR Strategy = "PAR"
	// StrategyGreedy groups semi-joins with Greedy-BSGF, then EVAL.
	StrategyGreedy Strategy = "GREEDY"
	// StrategyOpt uses the brute-force optimal grouping (small queries).
	StrategyOpt Strategy = "OPT"
	// StrategyOneRound fuses MSJ and EVAL into a single job when the
	// query shape allows it (§5.1 optimization (4)).
	StrategyOneRound Strategy = "1-ROUND"
	// StrategySeqUnit evaluates an SGF program one BSGF at a time.
	StrategySeqUnit Strategy = "SEQUNIT"
	// StrategyParUnit evaluates an SGF program level by level.
	StrategyParUnit Strategy = "PARUNIT"
	// StrategyGreedySGF uses the Greedy-SGF multiway topological sort
	// with Greedy-BSGF per group.
	StrategyGreedySGF Strategy = "GREEDY-SGF"
)

// Plan is an executable MR program together with explicit scheduling
// dependencies (a superset of the data dependencies, so that strategy
// barriers such as SEQUNIT's query ordering reach the cluster
// simulator).
type Plan struct {
	Name     string
	Strategy Strategy
	Jobs     []*mr.Job
	Deps     [][]int
	// Outputs lists the SGF output relations the plan produces.
	Outputs []string
}

// InputDeps derives the relation-granular read structure of the plan:
// for each job, one entry per declared input (in Job.Inputs order)
// holding the plan job index producing that relation, or -1 for a base
// relation. These are exactly the producer→consumer edges the engine's
// pipelined task scheduler wires at execution time
// (mr.Program.ReadSets over the same jobs): map tasks over input k of
// job i are released by job InputDeps()[i][k]'s merge of that relation,
// or run immediately when the entry is -1.
//
// This is why every job constructor in this package must declare its
// read set completely and exactly — a mapper or reducer that consulted
// a relation outside Job.Inputs (say, an index captured from the
// database at plan time) could observe it before its producer ran.
// Plan.Deps always covers these data edges and may add strategy
// barriers on top (e.g. SEQUNIT's query ordering) for the cluster
// simulation; TestPlanDepsCoverInputDeps asserts the containment for
// every strategy.
func (p *Plan) InputDeps() [][]int {
	return (&mr.Program{Jobs: p.Jobs}).ReadSets()
}

// Rounds returns the longest dependency chain.
func (p *Plan) Rounds() int {
	depth := make([]int, len(p.Jobs))
	max := 0
	for i := range p.Jobs {
		d := 1
		for _, pi := range p.Deps[i] {
			if depth[pi]+1 > d {
				d = depth[pi] + 1
			}
		}
		depth[i] = d
		if d > max {
			max = d
		}
	}
	return max
}

// Program converts the plan to an mr.Program.
func (p *Plan) Program() *mr.Program { return &mr.Program{Jobs: p.Jobs} }

// AddJob appends a job with explicit dependencies, returning its index.
func (p *Plan) AddJob(j *mr.Job, deps ...int) int {
	p.Jobs = append(p.Jobs, j)
	p.Deps = append(p.Deps, append([]int(nil), deps...))
	return len(p.Jobs) - 1
}

// MergePlans concatenates independent sub-plans (no cross-plan
// barriers; data dependencies, if any, remain name-based only).
func MergePlans(name string, strategy Strategy, subs []*Plan) *Plan {
	plan := &Plan{Name: name, Strategy: strategy}
	for _, sub := range subs {
		offset := len(plan.Jobs)
		for ji, job := range sub.Jobs {
			deps := make([]int, len(sub.Deps[ji]))
			for di, d := range sub.Deps[ji] {
				deps[di] = d + offset
			}
			plan.AddJob(job, deps...)
		}
		plan.Outputs = append(plan.Outputs, sub.Outputs...)
	}
	return plan
}

// SeqPlanMulti builds the SEQ strategy for several independent queries:
// each query's sequential chain runs in parallel with the others (each
// chain is internally sequential).
func SeqPlanMulti(name string, queries []*sgf.BSGF) (*Plan, error) {
	subs := make([]*Plan, len(queries))
	for i, q := range queries {
		sub, err := SeqPlan(fmt.Sprintf("%s/q%d", name, i), q)
		if err != nil {
			return nil, err
		}
		subs[i] = sub
	}
	return MergePlans(name, StrategySEQ, subs), nil
}

// BasicPlan builds the basic MR program of §4.4/§4.5 for a set of
// independent BSGF queries: one MSJ job per partition group of the
// semi-join set, plus a single EVAL job computing every query's Boolean
// combination. The partition groups index into eqs (ExtractEquations
// order).
func BasicPlan(name string, strategy Strategy, queries []*sgf.BSGF, eqs []Equation, partition [][]int) (*Plan, error) {
	if !ValidPartition(partition, len(eqs)) {
		return nil, fmt.Errorf("core: %s: invalid partition %s over %d equations", name, PartitionString(partition), len(eqs))
	}
	plan := &Plan{Name: name, Strategy: strategy}
	var msjIdxs []int
	for gi, group := range partition {
		if len(group) == 0 {
			continue
		}
		sub := make([]Equation, len(group))
		for k, i := range group {
			sub[k] = eqs[i]
		}
		job, err := NewMSJJob(fmt.Sprintf("%s/msj%d", name, gi), sub)
		if err != nil {
			return nil, err
		}
		msjIdxs = append(msjIdxs, plan.AddJob(job))
	}
	specs := make([]EvalSpec, len(queries))
	for qi, q := range queries {
		atoms := q.CondAtoms()
		xnames := make([]string, len(atoms))
		for ai := range atoms {
			xnames[ai] = XName(q.Name, ai)
		}
		specs[qi] = EvalSpec{Query: q, XNames: xnames}
		plan.Outputs = append(plan.Outputs, q.Name)
	}
	eval, err := NewEvalJob(name+"/eval", specs)
	if err != nil {
		return nil, err
	}
	plan.AddJob(eval, msjIdxs...)
	return plan, nil
}

// ParPlan is BasicPlan with singleton groups: every semi-join in its own
// job (the PAR strategy).
func ParPlan(name string, queries []*sgf.BSGF) (*Plan, error) {
	eqs := ExtractEquations(queries)
	return BasicPlan(name, StrategyPAR, queries, eqs, Singletons(len(eqs)))
}

// GreedyPlan is BasicPlan with the Greedy-BSGF partition (the GREEDY
// strategy / GOPT of §4.4).
func (e *Estimator) GreedyPlan(name string, queries []*sgf.BSGF) (*Plan, error) {
	eqs := ExtractEquations(queries)
	return BasicPlan(name, StrategyGreedy, queries, eqs, e.GreedyBSGF(eqs))
}

// OptPlan is BasicPlan with the brute-force optimal partition (OPT).
func (e *Estimator) OptPlan(name string, queries []*sgf.BSGF) (*Plan, error) {
	eqs := ExtractEquations(queries)
	part, _ := e.BruteForceBSGF(eqs)
	return BasicPlan(name, StrategyOpt, queries, eqs, part)
}

// OneRoundPlan builds the fused single-job plan for the queries; every
// query must be 1-round applicable.
func OneRoundPlan(name string, queries []*sgf.BSGF) (*Plan, error) {
	job, err := NewOneRoundJob(name+"/1round", queries)
	if err != nil {
		return nil, err
	}
	plan := &Plan{Name: name, Strategy: StrategyOneRound}
	plan.AddJob(job)
	for _, q := range queries {
		plan.Outputs = append(plan.Outputs, q.Name)
	}
	return plan, nil
}

// SeqPlan builds the sequential plan for one BSGF query: the condition
// is normalized to DNF; each disjunct becomes a chain of semi-join /
// anti-join filter steps applied to the output of the previous step, and
// a final union job projects and deduplicates (chains of different
// disjuncts run in parallel, as the paper notes for B2). Queries whose
// DNF explodes are rejected.
func SeqPlan(name string, q *sgf.BSGF) (*Plan, error) {
	dnfForm, err := ToDNF(q.Where)
	if err != nil {
		return nil, fmt.Errorf("core: SEQ plan for %s: %w", q.Name, err)
	}
	plan := &Plan{Name: name, Strategy: StrategySEQ, Outputs: []string{q.Name}}
	var branchRels []string // final relation of each disjunct chain
	var branchEnds []int    // job index producing it
	var satDisjuncts [][]Literal
	for _, disjunct := range dnfForm {
		lits, sat := dedupeLiterals(disjunct)
		if sat {
			satDisjuncts = append(satDisjuncts, lits)
		}
	}
	if len(satDisjuncts) == 0 {
		return nil, fmt.Errorf("core: SEQ plan for %s: condition is unsatisfiable", q.Name)
	}
	// A single TRUE disjunct (no WHERE clause) reduces to a plain
	// project-and-deduplicate job over the guard.
	singleDisjunct := len(satDisjuncts) == 1 && len(satDisjuncts[0]) > 0

	for di, lits := range satDisjuncts {
		prevRel := q.Guard.Rel
		prevJob := -1
		if len(lits) == 0 {
			// TRUE disjunct: the branch is the guard relation itself.
			branchRels = append(branchRels, q.Guard.Rel)
			branchEnds = append(branchEnds, -1)
			continue
		}
		for li, lit := range lits {
			last := li == len(lits)-1
			out := fmt.Sprintf("SEQ_%s_d%d_s%d", sanitizeName(q.Name), di, li)
			var project []string
			if last && singleDisjunct {
				out = q.Name
				project = q.Select
			}
			step := FilterStep{
				Out:      out,
				GuardRel: prevRel,
				Guard:    q.Guard,
				Cond:     lit.Atom,
				Negated:  lit.Negated,
				Project:  project,
			}
			job, err := NewFilterJob(fmt.Sprintf("%s/d%d-s%d", name, di, li), step)
			if err != nil {
				return nil, err
			}
			deps := []int{}
			if prevJob >= 0 {
				deps = append(deps, prevJob)
			}
			prevJob = plan.AddJob(job, deps...)
			prevRel = out
		}
		branchRels = append(branchRels, prevRel)
		branchEnds = append(branchEnds, prevJob)
	}
	if !singleDisjunct {
		union, err := NewUnionProjectJob(name+"/union", q.Name, q.Guard, q.Select, branchRels)
		if err != nil {
			return nil, err
		}
		var deps []int
		for _, b := range branchEnds {
			if b >= 0 {
				deps = append(deps, b)
			}
		}
		plan.AddJob(union, deps...)
	}
	return plan, nil
}
