package core

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/mr"
	"repro/internal/relation"
	"repro/internal/sgf"
)

// Estimator predicts MR job costs for candidate plans before execution,
// the way Gumbo does (§5.1 optimization (3)): map output sizes M_i are
// estimated by simulating the map function on a sample of the input
// relations, and job costs follow Eq. 5 (grouped MSJ), Eq. 6 (separate
// MSJ jobs, as the degenerate case of singleton groups), Eq. 7 (EVAL)
// and Eq. 9/10 (plans).
//
// Relations produced by earlier subqueries of an SGF program do not
// exist at planning time; their cardinality is bounded by the (possibly
// recursive) cardinality of their defining query's guard — the same
// upper-bound reasoning the paper applies to output sizes ("K can be
// approximated by its upper bound N1").
type Estimator struct {
	CostCfg     cost.Config
	Model       cost.Model
	DB          *relation.Database
	Program     *sgf.Program // optional: provides bounds for derived relations
	SampleEvery int          // sampling stride; 0 = 100

	emitCache map[string]emitStat
	relCache  map[string]relInfo
}

// emitStat is a sampled (extrapolated) map-output contribution.
type emitStat struct {
	records float64
	mb      float64
}

type relInfo struct {
	count float64
	mb    float64
	arity int
	known bool // false for derived relations bounded via the program
}

// NewEstimator builds an estimator over db; prog may be nil when only
// base relations are referenced.
func NewEstimator(cfg cost.Config, model cost.Model, db *relation.Database, prog *sgf.Program) *Estimator {
	return &Estimator{
		CostCfg:   cfg,
		Model:     model,
		DB:        db,
		Program:   prog,
		emitCache: make(map[string]emitStat),
		relCache:  make(map[string]relInfo),
	}
}

func (e *Estimator) stride() int {
	if e.SampleEvery > 0 {
		return e.SampleEvery
	}
	return 100
}

// relInfo resolves a relation's cardinality and size, falling back to
// program-derived upper bounds for not-yet-materialized outputs.
func (e *Estimator) rel(name string) relInfo {
	if info, ok := e.relCache[name]; ok {
		return info
	}
	// Break potential cycles defensively while recursing.
	e.relCache[name] = relInfo{}
	info := relInfo{}
	if r := e.DB.Relation(name); r != nil {
		info = relInfo{
			count: float64(r.Size()),
			mb:    float64(r.Bytes()) / mr.MB,
			arity: r.Arity(),
			known: true,
		}
	} else if e.Program != nil {
		if q := e.Program.QueryByName(name); q != nil {
			g := e.rel(q.Guard.Rel)
			info = relInfo{
				count: g.count,
				mb:    g.count * float64(q.OutArity()) * relation.BytesPerField / mr.MB,
				arity: q.OutArity(),
			}
		}
	}
	e.relCache[name] = info
	return info
}

// sampleEmit estimates the records and bytes emitted for facts of rel
// conforming to matcher, where each emission costs keyOf+payload bytes.
func (e *Estimator) sampleEmit(cacheKey, relName string, atom sgf.Atom, joinVars []string, payload int64) emitStat {
	if s, ok := e.emitCache[cacheKey]; ok {
		return s
	}
	var s emitStat
	r := e.DB.Relation(relName)
	if r == nil || r.Size() == 0 {
		// Derived or empty relation: assume full conformance with an
		// analytic key size.
		info := e.rel(relName)
		keyBytes := float64(2 + 3*len(joinVars))
		s = emitStat{records: info.count, mb: info.count * (keyBytes + float64(payload)) / mr.MB}
		e.emitCache[cacheKey] = s
		return s
	}
	matcher := sgf.NewMatcher(atom)
	proj := sgf.NewProjector(atom, joinVars)
	stride := e.stride()
	sampled, conforming := 0, 0
	var bytes int64
	var kb [32]byte
	for i := 0; i < r.Size(); i += stride {
		sampled++
		t := r.Tuple(i)
		if matcher.Matches(t) {
			conforming++
			bytes += mr.KeyBytes(proj.AppendKey(kb[:0], t)) + payload
		}
	}
	if sampled > 0 {
		scale := float64(r.Size()) / float64(sampled)
		s = emitStat{records: float64(conforming) * scale, mb: float64(bytes) / mr.MB * scale}
	}
	e.emitCache[cacheKey] = s
	return s
}

// reqStat estimates the request stream of one equation: one ReqID per
// conforming guard fact.
func (e *Estimator) reqStat(eq Equation) emitStat {
	return e.sampleEmit("req:"+eq.Key(), eq.Guard.Rel, eq.Guard, eq.JoinVars, reqIDBytes)
}

// packKey identifies the packing group of an equation's requests: all
// equations with the same guard pattern and join-key projection emit
// records under identical keys, which the message-packing optimization
// collapses into one record per fact (§5.1 opt (1)).
func (eq Equation) packKey() string {
	k := eq.Guard.Key() + "@"
	for _, p := range eq.Guard.VarPositions(eq.JoinVars) {
		k += fmt.Sprintf("%d,", p)
	}
	return k
}

// reqKeyStat estimates the key-only stream of a packing group: one
// record (and one key) per conforming guard fact.
func (e *Estimator) reqKeyStat(eq Equation) emitStat {
	return e.sampleEmit("reqkey:"+eq.packKey(), eq.Guard.Rel, eq.Guard, eq.JoinVars, 0)
}

// assertStat estimates the assert stream of one equation's assert class:
// one Assert per conforming conditional fact.
func (e *Estimator) assertStat(eq Equation) emitStat {
	return e.sampleEmit("assert:"+eq.AssertClassKey(), eq.Cond.Rel, eq.Cond, eq.JoinVars, assertBytes)
}

// guardConform estimates the number of facts of the guard relation
// conforming to the guard atom.
func (e *Estimator) guardConform(a sgf.Atom) float64 {
	s := e.sampleEmit("conform:"+a.Key(), a.Rel, a, nil, 0)
	return s.records
}

// MSJSpec builds the cost.JobSpec estimate for MSJ over the selected
// equations (by index into eqs). Shared input relations contribute one
// partition; shared assert classes contribute one assert stream; and
// equations sharing a join key pack their requests into one record per
// fact, paying the key and record metadata once (§5.1 opt (1)). These
// are exactly the commonalities that make grouping pay off in Eq. 5 vs
// Eq. 6.
func (e *Estimator) MSJSpec(eqs []Equation, idxs []int) cost.JobSpec {
	type acc struct {
		inter   float64
		records float64
	}
	parts := make(map[string]*acc)
	var order []string
	touch := func(rel string) *acc {
		a, ok := parts[rel]
		if !ok {
			a = &acc{}
			parts[rel] = a
			order = append(order, rel)
		}
		return a
	}
	var outMB float64
	seenClass := make(map[string]bool)
	seenPack := make(map[string]bool)
	for _, i := range idxs {
		eq := eqs[i]
		rs := e.reqStat(eq)
		g := touch(eq.Guard.Rel)
		// Request payload per equation; key bytes and record count once
		// per packing group.
		g.inter += rs.records * reqIDBytes / mr.MB
		if pk := eq.packKey(); !seenPack[pk] {
			seenPack[pk] = true
			ks := e.reqKeyStat(eq)
			g.inter += ks.mb
			g.records += ks.records
		}
		// Output X_i: one id tuple per matching guard fact (upper bound:
		// all requests match).
		outMB += rs.records * relation.BytesPerField / mr.MB
		ck := eq.AssertClassKey()
		if !seenClass[ck] {
			seenClass[ck] = true
			as := e.assertStat(eq)
			c := touch(eq.Cond.Rel)
			c.inter += as.mb
			c.records += as.records
		}
	}
	spec := cost.JobSpec{OutputMB: outMB}
	for _, rel := range order {
		a := parts[rel]
		spec.Partitions = append(spec.Partitions, cost.Partition{
			Name:    rel,
			InputMB: e.rel(rel).mb,
			InterMB: a.inter,
			Records: int64(a.records),
		})
	}
	return spec
}

// MSJCost prices MSJ over the selected equations (Eq. 5; singleton
// groups reproduce Eq. 6 term-wise).
func (e *Estimator) MSJCost(eqs []Equation, idxs []int) float64 {
	return e.CostCfg.JobCost(e.Model, e.MSJSpec(eqs, idxs))
}

// EvalSpec builds the cost.JobSpec estimate for EVAL over the queries
// (Eq. 7): guards are re-read and emit (key, tuple) records; each X
// relation is read and forwarded.
func (e *Estimator) EvalSpec(queries []*sgf.BSGF) cost.JobSpec {
	spec := cost.JobSpec{}
	seen := make(map[string]*cost.Partition)
	var order []string
	touch := func(rel string, inputMB float64) *cost.Partition {
		if p, ok := seen[rel]; ok {
			return p
		}
		seen[rel] = &cost.Partition{Name: rel, InputMB: inputMB}
		order = append(order, rel)
		return seen[rel]
	}
	const evalKeyBytes = 8
	for _, q := range queries {
		conform := e.guardConform(q.Guard)
		info := e.rel(q.Guard.Rel)
		tupleMB := float64(tupleTagByte+info.arity*relation.BytesPerField+evalKeyBytes) / mr.MB
		p := touch(q.Guard.Rel, info.mb)
		p.InterMB += conform * tupleMB
		p.Records += int64(conform)
		for ai := range q.CondAtoms() {
			eq := Equation{Guard: q.Guard, Cond: q.CondAtoms()[ai], JoinVars: sgf.SharedVars(q.Guard, q.CondAtoms()[ai])}
			rs := e.reqStat(eq)
			xMB := rs.records * relation.BytesPerField / mr.MB
			xp := touch(XName(q.Name, ai), xMB)
			xp.InterMB += rs.records * float64(evalKeyBytes+xIndexBytes) / mr.MB
			xp.Records += int64(rs.records)
		}
		spec.OutputMB += conform * float64(q.OutArity()) * relation.BytesPerField / mr.MB
	}
	for _, rel := range order {
		spec.Partitions = append(spec.Partitions, *seen[rel])
	}
	return spec
}

// EvalCost prices the EVAL job for the queries.
func (e *Estimator) EvalCost(queries []*sgf.BSGF) float64 {
	return e.CostCfg.JobCost(e.Model, e.EvalSpec(queries))
}

// BasicCost prices a basic MR program (Eq. 9): the EVAL job plus one MSJ
// job per partition group.
func (e *Estimator) BasicCost(queries []*sgf.BSGF, eqs []Equation, partition [][]int) float64 {
	total := e.EvalCost(queries)
	for _, group := range partition {
		if len(group) > 0 {
			total += e.MSJCost(eqs, group)
		}
	}
	return total
}
