package core

import (
	"math"
	"testing"

	"repro/internal/sgf"
)

func TestGadgetPerQueryCosts(t *testing.T) {
	// Appendix A: with all constants zero except hr = 1, the plan cost
	// of each f_i alone equals a_i (in gadget units).
	a := []int{2, 5, 9}
	g := SubsetSumGadget(a)
	est := g.Estimator()
	for i, ai := range a {
		q := g.Program.Queries[i]
		eqs := ExtractEquations([]*sgf.BSGF{q})
		partition := est.GreedyBSGF(eqs)
		got := est.BasicCost([]*sgf.BSGF{q}, eqs, partition) / g.Unit
		if math.Abs(got-float64(ai)) > 1e-6 {
			t.Errorf("cost(GOPT({f%d})) = %v units, want %d", i+1, got, ai)
		}
	}
}

func TestGadgetPairCosts(t *testing.T) {
	// cost(GOPT({f_i, f_j})) = a_i + a_j: no sharing between distinct
	// f_i, f_j.
	a := []int{3, 4}
	g := SubsetSumGadget(a)
	est := g.Estimator()
	queries := g.Program.Queries[:2]
	eqs := ExtractEquations(queries)
	partition := est.GreedyBSGF(eqs)
	got := est.BasicCost(queries, eqs, partition) / g.Unit
	if math.Abs(got-7) > 1e-6 {
		t.Errorf("cost(GOPT({f1,f2})) = %v units, want 7", got)
	}
}

func TestGadgetGroupingWithFo(t *testing.T) {
	// GOPT always groups f_i with f◦ because every relation of f_i
	// appears in f◦: the grouped cost is γ.
	a := []int{2, 5}
	g := SubsetSumGadget(a)
	est := g.Estimator()
	fo := g.Program.Queries[len(g.Program.Queries)-1]
	for i, ai := range a {
		queries := []*sgf.BSGF{g.Program.Queries[i], fo}
		eqs := ExtractEquations(queries)
		partition := est.GreedyBSGF(eqs)
		got := est.BasicCost(queries, eqs, partition) / g.Unit
		if math.Abs(got-float64(g.Gamma)) > 1e-6 {
			t.Errorf("cost(GOPT({f%d, fo})) = %v units, want γ=%d (a_i=%d)", i+1, got, g.Gamma, ai)
		}
	}
}

func TestGadgetSortCostsRealizeSubsetSums(t *testing.T) {
	// The achievable multiway-sort costs are exactly {γ + s : s a
	// subset sum of A}: the reduction of Theorem 2/4.
	a := []int{1, 2}
	g := SubsetSumGadget(a)
	est := g.Estimator()
	depGraph := sgf.BuildDepGraph(g.Program)
	achieved := make(map[int]bool)
	sgf.EnumerateMultiwayPartitions(depGraph, func(s sgf.MultiwaySort) bool {
		c := est.SortCost(g.Program, s) / g.Unit
		rounded := int(math.Round(c))
		if math.Abs(c-float64(rounded)) > 1e-6 {
			t.Errorf("non-integral sort cost %v for %v", c, s)
		}
		achieved[rounded] = true
		return true
	})
	want := make(map[int]bool)
	for s := range SubsetSums(a) {
		want[g.Gamma+s] = true
	}
	for w := range want {
		if !achieved[w] {
			t.Errorf("cost %d (γ+s) not achieved; achieved set: %v", w, achieved)
		}
	}
	for got := range achieved {
		if !want[got] {
			t.Errorf("achieved cost %d is not of the form γ+s; want set: %v", got, want)
		}
	}
}

func TestGadgetBruteForceOptimum(t *testing.T) {
	// The minimum sort cost is γ (B = ∅: group everything with f◦).
	a := []int{2, 3, 4}
	g := SubsetSumGadget(a)
	est := g.Estimator()
	_, best := est.BruteForceSGF(g.Program)
	if math.Abs(best/g.Unit-float64(g.Gamma)) > 1e-6 {
		t.Errorf("optimal sort cost = %v units, want γ=%d", best/g.Unit, g.Gamma)
	}
}

func TestSubsetSums(t *testing.T) {
	sums := SubsetSums([]int{1, 3})
	for _, want := range []int{0, 1, 3, 4} {
		if !sums[want] {
			t.Errorf("missing subset sum %d", want)
		}
	}
	if len(sums) != 4 {
		t.Errorf("sums = %v", sums)
	}
}
