package core

import (
	"fmt"

	"repro/internal/sgf"
)

// Literal is an atom or its negation.
type Literal struct {
	Atom    sgf.Atom
	Negated bool
}

func (l Literal) String() string {
	if l.Negated {
		return "NOT " + l.Atom.String()
	}
	return l.Atom.String()
}

// maxDNFDisjuncts bounds DNF expansion; sequential plans are only built
// for conditions whose DNF stays small (the paper's SEQ baseline is
// applied to conjunctive queries and small disjunctions like B2).
const maxDNFDisjuncts = 64

// ToDNF converts a condition into disjunctive normal form: a list of
// disjuncts, each a conjunction of literals. A nil condition yields one
// empty disjunct (always true). It fails when the expansion exceeds
// maxDNFDisjuncts.
func ToDNF(c sgf.Condition) ([][]Literal, error) {
	if c == nil {
		return [][]Literal{nil}, nil
	}
	d, err := dnf(c, false)
	if err != nil {
		return nil, err
	}
	return d, nil
}

func dnf(c sgf.Condition, negate bool) ([][]Literal, error) {
	switch x := c.(type) {
	case sgf.AtomCond:
		return [][]Literal{{Literal{Atom: x.Atom, Negated: negate}}}, nil
	case sgf.Not:
		return dnf(x.C, !negate)
	case sgf.And:
		if negate {
			return dnfDisjunction(x.Cs, true)
		}
		return dnfConjunction(x.Cs, false)
	case sgf.Or:
		if negate {
			return dnfConjunction(x.Cs, true)
		}
		return dnfDisjunction(x.Cs, false)
	default:
		return nil, fmt.Errorf("core: unknown condition type %T", c)
	}
}

// dnfDisjunction concatenates the DNFs of the children.
func dnfDisjunction(cs []sgf.Condition, negate bool) ([][]Literal, error) {
	var out [][]Literal
	for _, c := range cs {
		d, err := dnf(c, negate)
		if err != nil {
			return nil, err
		}
		out = append(out, d...)
		if len(out) > maxDNFDisjuncts {
			return nil, fmt.Errorf("core: DNF expansion exceeds %d disjuncts", maxDNFDisjuncts)
		}
	}
	return out, nil
}

// dnfConjunction distributes conjunction over the children's DNFs.
func dnfConjunction(cs []sgf.Condition, negate bool) ([][]Literal, error) {
	out := [][]Literal{nil}
	for _, c := range cs {
		d, err := dnf(c, negate)
		if err != nil {
			return nil, err
		}
		var next [][]Literal
		for _, partial := range out {
			for _, disjunct := range d {
				merged := make([]Literal, 0, len(partial)+len(disjunct))
				merged = append(merged, partial...)
				merged = append(merged, disjunct...)
				next = append(next, merged)
				if len(next) > maxDNFDisjuncts {
					return nil, fmt.Errorf("core: DNF expansion exceeds %d disjuncts", maxDNFDisjuncts)
				}
			}
		}
		out = next
	}
	return out, nil
}

// dedupeLiterals removes duplicate literals in a disjunct, preserving
// order; contradictory pairs (κ and NOT κ) make the disjunct
// unsatisfiable, reported via the bool.
func dedupeLiterals(lits []Literal) ([]Literal, bool) {
	seen := make(map[string]bool, len(lits))
	var out []Literal
	for _, l := range lits {
		k := l.Atom.Key()
		if l.Negated {
			k = "!" + k
		}
		opposite := l.Atom.Key()
		if !l.Negated {
			opposite = "!" + opposite
		}
		if seen[opposite] {
			return nil, false
		}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, l)
	}
	return out, true
}

// ConditionOfDNF rebuilds a condition from DNF form (used in tests to
// verify the transformation preserves semantics).
func ConditionOfDNF(d [][]Literal) sgf.Condition {
	var ors []sgf.Condition
	for _, disjunct := range d {
		var ands []sgf.Condition
		for _, l := range disjunct {
			var c sgf.Condition = sgf.AtomCond{Atom: l.Atom}
			if l.Negated {
				c = sgf.Not{C: c}
			}
			ands = append(ands, c)
		}
		if len(ands) == 0 {
			// Empty conjunction is TRUE; representable only trivially.
			return nil
		}
		ors = append(ors, sgf.AndOf(ands...))
	}
	if len(ors) == 0 {
		return nil
	}
	return sgf.OrOf(ors...)
}
