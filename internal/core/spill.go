package core

import (
	"encoding/binary"

	"repro/internal/mr"
	"repro/internal/relation"
)

// Spill codecs for the engine's shuffle spill-to-disk (mr.SpillMessage):
// every message type core shuffles can round-trip through a spill file,
// so any Gumbo query's shuffle partitions are spillable. The encodings
// only need in-process fidelity — spill files never outlive the run —
// so interned string handles travel as their raw int64 values.

// Spill tags of core's message types. Tag 0 is reserved by mr for
// Packed; core claims 1–5.
const (
	spillTagReqID    = 1
	spillTagAssert   = 2
	spillTagReqTuple = 3
	spillTagTupleVal = 4
	spillTagXIndex   = 5
)

func appendSpillTuple(dst []byte, t relation.Tuple) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(t)))
	for _, v := range t {
		dst = binary.AppendVarint(dst, int64(v))
	}
	return dst
}

func decodeSpillTuple(b []byte) (relation.Tuple, []byte, bool) {
	n, w := binary.Uvarint(b)
	if w <= 0 {
		return nil, nil, false
	}
	b = b[w:]
	t := make(relation.Tuple, 0, n)
	for i := uint64(0); i < n; i++ {
		v, w := binary.Varint(b)
		if w <= 0 {
			return nil, nil, false
		}
		t = append(t, relation.Value(v))
		b = b[w:]
	}
	return t, b, true
}

// SpillTag implements mr.SpillMessage.
func (m ReqID) SpillTag() byte { return spillTagReqID }

// AppendSpill implements mr.SpillMessage.
func (m ReqID) AppendSpill(dst []byte) []byte {
	dst = binary.AppendVarint(dst, int64(m.Eq))
	return binary.AppendVarint(dst, m.ID)
}

// SpillTag implements mr.SpillMessage.
func (m Assert) SpillTag() byte { return spillTagAssert }

// AppendSpill implements mr.SpillMessage.
func (m Assert) AppendSpill(dst []byte) []byte {
	return binary.AppendVarint(dst, int64(m.Class))
}

// SpillTag implements mr.SpillMessage.
func (m ReqTuple) SpillTag() byte { return spillTagReqTuple }

// AppendSpill implements mr.SpillMessage.
func (m ReqTuple) AppendSpill(dst []byte) []byte {
	dst = binary.AppendVarint(dst, int64(m.Q))
	dst = binary.AppendVarint(dst, int64(m.Disjunct))
	return appendSpillTuple(dst, m.Out)
}

// SpillTag implements mr.SpillMessage.
func (m TupleVal) SpillTag() byte { return spillTagTupleVal }

// AppendSpill implements mr.SpillMessage.
func (m TupleVal) AppendSpill(dst []byte) []byte {
	return appendSpillTuple(dst, m.T)
}

// SpillTag implements mr.SpillMessage.
func (m XIndex) SpillTag() byte { return spillTagXIndex }

// AppendSpill implements mr.SpillMessage.
func (m XIndex) AppendSpill(dst []byte) []byte {
	return binary.AppendVarint(dst, int64(m.Atom))
}

func init() {
	mr.RegisterSpillDecoder(spillTagReqID, func(b []byte) (mr.Message, []byte, error) {
		eq, w := binary.Varint(b)
		if w <= 0 {
			return nil, nil, errSpillDecode
		}
		b = b[w:]
		id, w := binary.Varint(b)
		if w <= 0 {
			return nil, nil, errSpillDecode
		}
		return ReqID{Eq: int32(eq), ID: id}, b[w:], nil
	})
	mr.RegisterSpillDecoder(spillTagAssert, func(b []byte) (mr.Message, []byte, error) {
		class, w := binary.Varint(b)
		if w <= 0 {
			return nil, nil, errSpillDecode
		}
		return Assert{Class: int32(class)}, b[w:], nil
	})
	mr.RegisterSpillDecoder(spillTagReqTuple, func(b []byte) (mr.Message, []byte, error) {
		q, w := binary.Varint(b)
		if w <= 0 {
			return nil, nil, errSpillDecode
		}
		b = b[w:]
		d, w := binary.Varint(b)
		if w <= 0 {
			return nil, nil, errSpillDecode
		}
		out, rest, ok := decodeSpillTuple(b[w:])
		if !ok {
			return nil, nil, errSpillDecode
		}
		return ReqTuple{Q: int32(q), Disjunct: int32(d), Out: out}, rest, nil
	})
	mr.RegisterSpillDecoder(spillTagTupleVal, func(b []byte) (mr.Message, []byte, error) {
		t, rest, ok := decodeSpillTuple(b)
		if !ok {
			return nil, nil, errSpillDecode
		}
		return TupleVal{T: t}, rest, nil
	})
	mr.RegisterSpillDecoder(spillTagXIndex, func(b []byte) (mr.Message, []byte, error) {
		atom, w := binary.Varint(b)
		if w <= 0 {
			return nil, nil, errSpillDecode
		}
		return XIndex{Atom: int32(atom)}, b[w:], nil
	})
}

var errSpillDecode = errSpill("core: spill: corrupt message encoding")

type errSpill string

func (e errSpill) Error() string { return string(e) }

var (
	_ mr.SpillMessage = ReqID{}
	_ mr.SpillMessage = Assert{}
	_ mr.SpillMessage = ReqTuple{}
	_ mr.SpillMessage = TupleVal{}
	_ mr.SpillMessage = XIndex{}
)
