package core

import (
	"fmt"

	"repro/internal/sgf"
)

// Equation is one semi-join equation X := π_x̄(α ⋉ κ) (§4.2). In
// tuple-id mode (the default, optimization (2)) the output relation X
// holds references (ids) of qualifying guard tuples rather than the
// projection, and the projection is applied by the EVAL job.
type Equation struct {
	Out      string   // output relation name X
	Guard    sgf.Atom // α
	Cond     sgf.Atom // κ
	JoinVars []string // z̄: variables shared by α and κ, ordered by α
	QueryIdx int      // index of the owning BSGF query within the plan
	AtomIdx  int      // index of κ among the query's distinct atoms
}

// Key identifies the semantics of the equation's semi-join: guard atom,
// conditional atom and join key.
func (e Equation) Key() string {
	return e.Guard.Key() + "⋉" + e.Cond.Key()
}

// AssertClassKey identifies the assert message stream this equation
// consumes: conditional facts of atom κ projected on z̄ (as ordered by
// κ's positions). Two equations with equal class keys share assert
// messages in a combined MSJ job — the "conditional name sharing"
// commonality of Table 2.
func (e Equation) AssertClassKey() string {
	k := e.Cond.Key() + "@"
	for _, p := range e.Cond.VarPositions(e.JoinVars) {
		k += fmt.Sprintf("%d,", p)
	}
	return k
}

func (e Equation) String() string {
	return fmt.Sprintf("%s := %s ⋉ %s", e.Out, e.Guard, e.Cond)
}

// ExtractEquations derives the semi-join set S of §4.4 for a list of
// BSGF queries: one equation per (query, distinct conditional atom).
// Queries without a WHERE clause contribute no equations. queryIdx
// offsets follow the slice order.
func ExtractEquations(queries []*sgf.BSGF) []Equation {
	var eqs []Equation
	for qi, q := range queries {
		for ai, atom := range q.CondAtoms() {
			eqs = append(eqs, Equation{
				Out:      XName(q.Name, ai),
				Guard:    q.Guard,
				Cond:     atom,
				JoinVars: sgf.SharedVars(q.Guard, atom),
				QueryIdx: qi,
				AtomIdx:  ai,
			})
		}
	}
	return eqs
}

// XName is the generated name of the MSJ output relation for conditional
// atom ai of query qname.
func XName(qname string, ai int) string {
	return fmt.Sprintf("X_%s_%d", sanitizeName(qname), ai)
}
