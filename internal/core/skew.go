package core

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"repro/internal/mr"
	"repro/internal/relation"
	"repro/internal/sgf"
)

// Skew handling (§6): "the presented framework can readily be adapted
// [to skew] when information on so-called heavy hitters is available or
// can be computed at the expense of an additional round." This file
// implements that adaptation for MSJ jobs: heavy join keys are detected
// by sampling the guard relations; requests on a heavy key are salted
// across SaltFactor sub-keys (spreading the hot reducer's load), and the
// small assert messages are replicated to every salt — semantics are
// unchanged, reduce-side balance improves.

// SkewConfig parameterizes heavy-hitter detection and mitigation.
type SkewConfig struct {
	// HeavyFraction marks a join key heavy when it covers more than
	// this fraction of its guard relation's facts (default 0.01).
	HeavyFraction float64
	// SaltFactor is the number of sub-keys a heavy key is spread over
	// (default 16).
	SaltFactor int
	// SampleEvery is the detection sampling stride (default 100).
	SampleEvery int
	// RuntimeSplit declares that the executing engine performs runtime
	// skew splitting (mr.Engine.SplitThreshold / gumbo.WithSkewSplit).
	// Static salting then stands down: detection is skipped and jobs are
	// built unsalted, leaving skew to the engine's sub-partition tasks —
	// salting the same hot keys twice would only inflate key bytes and
	// assert replication without improving balance further.
	RuntimeSplit bool
}

// DefaultSkewConfig returns the default mitigation parameters.
func DefaultSkewConfig() SkewConfig {
	return SkewConfig{HeavyFraction: 0.01, SaltFactor: 16, SampleEvery: 100}
}

func (c SkewConfig) normalized() SkewConfig {
	if c.HeavyFraction <= 0 {
		c.HeavyFraction = 0.01
	}
	if c.SaltFactor < 2 {
		c.SaltFactor = 16
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 100
	}
	return c
}

// DetectHeavyKeys samples the guard relations of eqs and returns the
// set of join-key strings whose frequency exceeds HeavyFraction of
// their relation ("heavy hitters"). This is the paper's extra sampling
// pass; it costs one scan of a sample per distinct (guard, join key)
// projection.
func DetectHeavyKeys(cfg SkewConfig, eqs []Equation, db *relation.Database) map[string]bool {
	cfg = cfg.normalized()
	heavy := make(map[string]bool)
	seen := make(map[string]bool) // packing groups already sampled
	for _, eq := range eqs {
		pk := eq.packKey()
		if seen[pk] {
			continue
		}
		seen[pk] = true
		rel := db.Relation(eq.Guard.Rel)
		if rel == nil || rel.Size() == 0 {
			continue
		}
		matcher := sgf.NewMatcher(eq.Guard)
		proj := sgf.NewProjector(eq.Guard, eq.JoinVars)
		counts := make(map[string]int)
		sampled := 0
		for i := 0; i < rel.Size(); i += cfg.SampleEvery {
			sampled++
			t := rel.Tuple(i)
			if matcher.Matches(t) {
				counts[proj.Apply(t).Key()]++
			}
		}
		if sampled == 0 {
			continue
		}
		threshold := cfg.HeavyFraction * float64(sampled)
		for k, n := range counts {
			if float64(n) > threshold {
				heavy[k] = true
			}
		}
	}
	return heavy
}

// appendSalt appends a salt byte pair to a shuffle key. Salted keys
// never collide with unsalted ones because Tuple keys are varint
// sequences and the suffix changes the length.
func appendSalt(key []byte, salt int) []byte {
	var b [4]byte
	n := binary.PutUvarint(b[:], uint64(salt))
	key = append(key, 0xff)
	return append(key, b[:n]...)
}

// saltOf deterministically spreads a guard tuple id over salts.
func saltOf(id int64, factor int) int {
	h := fnv.New32a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(id))
	h.Write(b[:])
	return int(h.Sum32() % uint32(factor))
}

// NewMSJJobSkew builds an MSJ job with heavy-hitter mitigation: for
// requests whose join key is heavy, the key is salted by the guard
// tuple id; asserts on a heavy key are replicated to every salt. Keys
// outside the heavy set behave exactly as in NewMSJJob.
func NewMSJJobSkew(name string, eqs []Equation, heavy map[string]bool, cfg SkewConfig) (*mr.Job, error) {
	cfg = cfg.normalized()
	base, err := NewMSJJob(name, eqs)
	if err != nil {
		return nil, err
	}
	if cfg.RuntimeSplit || len(heavy) == 0 {
		return base, nil
	}
	inner := base.Mapper
	base.Mapper = mr.MapperFunc(func(input string, id int, t relation.Tuple, emit mr.Emit) {
		// sb holds the salted key; the inner mapper's key buffer must not
		// be appended to in place (the engine only copies keys at emit,
		// and the replicated-assert loop reuses the same base key).
		var sb [48]byte
		inner.Map(input, id, t, func(key []byte, msg mr.Message) {
			if !heavy[string(key)] { // map lookup, no allocation
				emit(key, msg)
				return
			}
			switch m := msg.(type) {
			case ReqID:
				emit(appendSalt(append(sb[:0], key...), saltOf(m.ID, cfg.SaltFactor)), msg)
			case Assert:
				for s := 0; s < cfg.SaltFactor; s++ {
					emit(appendSalt(append(sb[:0], key...), s), msg)
				}
			default:
				emit(key, msg)
			}
		})
	})
	base.Name = name + "+skew"
	return base, nil
}

// SkewAwareBasicPlan is BasicPlan with skew mitigation applied to every
// MSJ job (the EVAL job's keys are guard-tuple ids and are skew-free by
// construction).
func SkewAwareBasicPlan(name string, strategy Strategy, queries []*sgf.BSGF, eqs []Equation, partition [][]int, db *relation.Database, cfg SkewConfig) (*Plan, error) {
	if !ValidPartition(partition, len(eqs)) {
		return nil, fmt.Errorf("core: %s: invalid partition over %d equations", name, len(eqs))
	}
	var heavy map[string]bool
	if !cfg.RuntimeSplit {
		// With runtime splitting on, skip the sampling pass entirely —
		// its result would be discarded by NewMSJJobSkew anyway.
		heavy = DetectHeavyKeys(cfg, eqs, db)
	}
	plan := &Plan{Name: name, Strategy: strategy}
	var msjIdxs []int
	for gi, group := range partition {
		if len(group) == 0 {
			continue
		}
		sub := make([]Equation, len(group))
		for k, i := range group {
			sub[k] = eqs[i]
		}
		job, err := NewMSJJobSkew(fmt.Sprintf("%s/msj%d", name, gi), sub, heavy, cfg)
		if err != nil {
			return nil, err
		}
		msjIdxs = append(msjIdxs, plan.AddJob(job))
	}
	specs := make([]EvalSpec, len(queries))
	for qi, q := range queries {
		atoms := q.CondAtoms()
		xnames := make([]string, len(atoms))
		for ai := range atoms {
			xnames[ai] = XName(q.Name, ai)
		}
		specs[qi] = EvalSpec{Query: q, XNames: xnames}
		plan.Outputs = append(plan.Outputs, q.Name)
	}
	eval, err := NewEvalJob(name+"/eval", specs)
	if err != nil {
		return nil, err
	}
	plan.AddJob(eval, msjIdxs...)
	return plan, nil
}
