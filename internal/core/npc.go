package core

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/mr"
	"repro/internal/relation"
	"repro/internal/sgf"
)

// Gadget is the Appendix A reduction from Subset Sum to SGF(-Opt): an
// SGF program and database whose multiway-topological-sort costs realize
// exactly the values γ + Σ_{b ∈ B} b over subsets B of the Subset Sum
// instance.
//
// The instance has empty binary relations R_1..R_n and R◦, relations
// S_i of |S_i| = a_i tuples whose second field never matches the
// constant 1, queries f_i = R_i(x_i, y_i) ⋉ S_i(x_i, 1), and
// f◦ = R◦(x,1) ⋉ R_1(x_1,y_1) ∧ ... ∧ S_1(x_1,1) ∧ ... ∧ S_n(x_1,1).
// The cost configuration zeroes every constant except hr.
//
// Note: f◦ as written in the paper is not guarded (x_1 is shared between
// conditional atoms without occurring in the guard); the gadget drives
// the *cost model* only and is never evaluated, so the program is built
// without validation.
type Gadget struct {
	Program *sgf.Program
	DB      *relation.Database
	Cost    cost.Config
	// Unit is the cost of one Subset Sum unit: hr × (bytes of one S_i
	// tuple) in MB. Dividing sort costs by Unit recovers γ + Σ_B b.
	Unit float64
	// Gamma is Σ a_i.
	Gamma int
}

// SubsetSumGadget builds the reduction instance for the positive
// integers a.
func SubsetSumGadget(a []int) *Gadget {
	db := relation.NewDatabase()
	prog := &sgf.Program{}
	gamma := 0

	// f◦'s condition: conjunction over all R_i and S_i atoms.
	var foAtoms []sgf.Condition

	for i, ai := range a {
		gamma += ai
		ri := fmt.Sprintf("R%d", i+1)
		si := fmt.Sprintf("S%d", i+1)
		db.Put(relation.New(ri, 2))
		sRel := relation.New(si, 2)
		for t := 0; t < ai; t++ {
			// Second field 0: never matches the constant 1 in the atoms.
			sRel.Add(relation.Tuple{relation.Value(1000*i + t), relation.Value(0)})
		}
		db.Put(sRel)
		xi, yi := fmt.Sprintf("x%d", i+1), fmt.Sprintf("y%d", i+1)
		prog.Queries = append(prog.Queries, &sgf.BSGF{
			Name:   fmt.Sprintf("f%d", i+1),
			Select: []string{xi, yi},
			Guard:  sgf.NewAtom(ri, sgf.V(xi), sgf.V(yi)),
			Where:  sgf.AtomCond{Atom: sgf.NewAtom(si, sgf.V(xi), sgf.CInt(1))},
		})
		foAtoms = append(foAtoms, sgf.AtomCond{Atom: sgf.NewAtom(ri, sgf.V(xi), sgf.V(yi))})
	}
	for i := range a {
		si := fmt.Sprintf("S%d", i+1)
		foAtoms = append(foAtoms, sgf.AtomCond{Atom: sgf.NewAtom(si, sgf.V("x1"), sgf.CInt(1))})
	}
	db.Put(relation.New("Rc", 2))
	prog.Queries = append(prog.Queries, &sgf.BSGF{
		Name:   "fo",
		Select: []string{"x"},
		Guard:  sgf.NewAtom("Rc", sgf.V("x"), sgf.CInt(1)),
		Where:  sgf.AndOf(foAtoms...),
	})

	cfg := cost.Zero()
	cfg.HDFSRead = 1
	// One S_i tuple is 2 fields × BytesPerField.
	unit := 1.0 * float64(2*relation.BytesPerField) / mr.MB
	return &Gadget{Program: prog, DB: db, Cost: cfg, Unit: unit, Gamma: gamma}
}

// Estimator returns a gadget-configured estimator (exact sampling).
func (g *Gadget) Estimator() *Estimator {
	e := NewEstimator(g.Cost, cost.Gumbo, g.DB, g.Program)
	e.SampleEvery = 1
	return e
}

// SubsetSums returns the set of achievable Σ_B b values for all subsets
// B of a (for verifying the reduction on small instances).
func SubsetSums(a []int) map[int]bool {
	sums := map[int]bool{0: true}
	for _, ai := range a {
		next := make(map[int]bool, 2*len(sums))
		for s := range sums {
			next[s] = true
			next[s+ai] = true
		}
		sums = next
	}
	return sums
}
