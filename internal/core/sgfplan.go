package core

import (
	"fmt"
	"sort"

	"repro/internal/sgf"
)

// GreedySGF computes a multiway topological sort of the program's
// dependency graph using the overlap heuristic of §4.6: vertices whose
// predecessors are all placed are inserted, one per iteration, into the
// existing group with maximal non-zero relation overlap that keeps the
// sort topological; otherwise they open a new group. Runs in O(n³).
func GreedySGF(p *sgf.Program) sgf.MultiwaySort {
	g := sgf.BuildDepGraph(p)
	n := g.N
	placed := make([]bool, n)       // red vertices
	groupOf := make(map[int]int, n) // vertex -> group index
	var groups sgf.MultiwaySort     // X = (F_1, ..., F_m)
	for done := 0; done < n; done++ {
		// D: blue vertices with no blue predecessors.
		var ready []int
		for v := 0; v < n; v++ {
			if placed[v] {
				continue
			}
			ok := true
			for _, pr := range g.Pred[v] {
				if !placed[pr] {
					ok = false
					break
				}
			}
			if ok {
				ready = append(ready, v)
			}
		}
		sort.Ints(ready)
		// minGroup(v): the earliest group index v may join: strictly
		// after every placed predecessor's group.
		minGroup := func(v int) int {
			m := 0
			for _, pr := range g.Pred[v] {
				if gi, ok := groupOf[pr]; ok && gi+1 > m {
					m = gi + 1
				}
			}
			return m
		}
		bestV, bestG, bestOverlap := -1, -1, 0
		for _, v := range ready {
			for gi := minGroup(v); gi < len(groups); gi++ {
				ov := sgf.Overlap(p, v, groups[gi])
				if ov > bestOverlap {
					bestOverlap = ov
					bestV, bestG = v, gi
				}
			}
		}
		var v int
		if bestV >= 0 {
			v = bestV
			groups[bestG] = append(groups[bestG], v)
			groupOf[v] = bestG
		} else {
			v = ready[0]
			groups = append(groups, []int{v})
			groupOf[v] = len(groups) - 1
		}
		placed[v] = true
	}
	for _, f := range groups {
		sort.Ints(f)
	}
	return groups
}

// SortCost prices a multiway topological sort per Eq. 10:
// cost(F) = Σ_i cost(GOPT(F_i)), with GOPT the Greedy-BSGF plan of each
// group (its MSJ partition cost plus its EVAL job).
func (e *Estimator) SortCost(p *sgf.Program, s sgf.MultiwaySort) float64 {
	total := 0.0
	for _, group := range s {
		queries := make([]*sgf.BSGF, len(group))
		for i, qi := range group {
			queries[i] = p.Queries[qi]
		}
		eqs := ExtractEquations(queries)
		partition := e.GreedyBSGF(eqs)
		total += e.BasicCost(queries, eqs, partition)
	}
	return total
}

// BruteForceSGF solves SGF-Opt exactly: it enumerates every multiway
// topological sort (as partitions; Theorem 2 shows the decision problem
// is NP-complete) and returns one with minimal cost. Intended for small
// programs.
func (e *Estimator) BruteForceSGF(p *sgf.Program) (sgf.MultiwaySort, float64) {
	g := sgf.BuildDepGraph(p)
	if g.N > 10 {
		panic(fmt.Sprintf("core: BruteForceSGF on %d queries would enumerate too many sorts", g.N))
	}
	var best sgf.MultiwaySort
	bestCost := 0.0
	sgf.EnumerateMultiwayPartitions(g, func(s sgf.MultiwaySort) bool {
		c := e.SortCost(p, s)
		if best == nil || c < bestCost-1e-12 {
			best = s.Clone()
			bestCost = c
		}
		return true
	})
	return best, bestCost
}

// SeqUnitSort places every query in its own group, in definition order
// (the SEQUNIT strategy of §5.3).
func SeqUnitSort(p *sgf.Program) sgf.MultiwaySort {
	s := make(sgf.MultiwaySort, len(p.Queries))
	for i := range p.Queries {
		s[i] = []int{i}
	}
	return s
}

// ParUnitSort groups queries by dependency level (the PARUNIT strategy):
// queries on the same level run in parallel, levels run in sequence.
func ParUnitSort(p *sgf.Program) sgf.MultiwaySort {
	g := sgf.BuildDepGraph(p)
	return sgf.MultiwaySort(g.LevelGroups())
}

// GroupPlanner builds the plan for one group of independent queries.
type GroupPlanner func(name string, queries []*sgf.BSGF) (*Plan, error)

// SGFPlan assembles the full plan for an SGF program given a multiway
// topological sort: each group is planned by groupPlan, groups are
// sequenced with explicit barriers (every job of group i+1 depends on
// every job of group i), and job indices are stitched into one Plan.
func SGFPlan(name string, strategy Strategy, p *sgf.Program, s sgf.MultiwaySort, groupPlan GroupPlanner) (*Plan, error) {
	g := sgf.BuildDepGraph(p)
	if !s.Valid(g) {
		return nil, fmt.Errorf("core: %s: invalid multiway topological sort %v", name, s)
	}
	plan := &Plan{Name: name, Strategy: strategy}
	var prevGroup []int
	for gi, group := range s {
		queries := make([]*sgf.BSGF, len(group))
		for i, qi := range group {
			queries[i] = p.Queries[qi]
		}
		sub, err := groupPlan(fmt.Sprintf("%s/g%d", name, gi), queries)
		if err != nil {
			return nil, err
		}
		offset := len(plan.Jobs)
		var thisGroup []int
		for ji, job := range sub.Jobs {
			deps := make([]int, 0, len(sub.Deps[ji])+len(prevGroup))
			for _, d := range sub.Deps[ji] {
				deps = append(deps, d+offset)
			}
			deps = append(deps, prevGroup...)
			thisGroup = append(thisGroup, plan.AddJob(job, deps...))
		}
		plan.Outputs = append(plan.Outputs, sub.Outputs...)
		prevGroup = thisGroup
	}
	return plan, nil
}

// SeqUnitPlan evaluates the program one query at a time, each query with
// separate per-semi-join jobs (PAR-style within the query).
func SeqUnitPlan(name string, p *sgf.Program) (*Plan, error) {
	return SGFPlan(name, StrategySeqUnit, p, SeqUnitSort(p), ParPlan)
}

// ParUnitPlan evaluates the program level by level, queries on the same
// level in parallel, each semi-join in a separate job.
func ParUnitPlan(name string, p *sgf.Program) (*Plan, error) {
	return SGFPlan(name, StrategyParUnit, p, ParUnitSort(p), ParPlan)
}

// GreedySGFPlan evaluates the program along the Greedy-SGF sort with
// Greedy-BSGF grouping inside each group.
func (e *Estimator) GreedySGFPlan(name string, p *sgf.Program) (*Plan, error) {
	return SGFPlan(name, StrategyGreedySGF, p, GreedySGF(p), e.GreedyPlan)
}
