package core

import (
	"fmt"
	"sort"
	"strings"
)

// Gain computes gain(S_i, S_j) = cost(S_i) + cost(S_j) − cost(S_i ∪ S_j):
// the total cost saved by evaluating both equation groups in one MSJ job
// (§4.4).
func (e *Estimator) Gain(eqs []Equation, si, sj []int) float64 {
	union := append(append([]int(nil), si...), sj...)
	return e.MSJCost(eqs, si) + e.MSJCost(eqs, sj) - e.MSJCost(eqs, union)
}

// GreedyBSGF computes a partition of the equation set by greedy gain
// merging (the Greedy-BSGF algorithm of §4.4, after Wang et al.):
// starting from singletons, repeatedly merge the pair of groups with the
// largest positive gain until no merge helps. The result lists equation
// indices per group, in deterministic order.
func (e *Estimator) GreedyBSGF(eqs []Equation) [][]int {
	groups := make([][]int, len(eqs))
	for i := range eqs {
		groups[i] = []int{i}
	}
	costs := make([]float64, len(groups))
	for i := range groups {
		costs[i] = e.MSJCost(eqs, groups[i])
	}
	for len(groups) > 1 {
		bestI, bestJ := -1, -1
		bestGain := 0.0
		for i := 0; i < len(groups); i++ {
			for j := i + 1; j < len(groups); j++ {
				union := append(append([]int(nil), groups[i]...), groups[j]...)
				g := costs[i] + costs[j] - e.MSJCost(eqs, union)
				if g > bestGain+1e-12 {
					bestGain = g
					bestI, bestJ = i, j
				}
			}
		}
		if bestI < 0 {
			break
		}
		merged := append(append([]int(nil), groups[bestI]...), groups[bestJ]...)
		sort.Ints(merged)
		mergedCost := e.MSJCost(eqs, merged)
		groups = append(groups[:bestJ], groups[bestJ+1:]...)
		costs = append(costs[:bestJ], costs[bestJ+1:]...)
		groups[bestI] = merged
		costs[bestI] = mergedCost
	}
	sortPartition(groups)
	return groups
}

// Singletons returns the no-grouping partition (the PAR strategy).
func Singletons(n int) [][]int {
	out := make([][]int, n)
	for i := range out {
		out[i] = []int{i}
	}
	return out
}

// OneGroup returns the everything-in-one-job partition.
func OneGroup(n int) [][]int {
	if n == 0 {
		return nil
	}
	g := make([]int, n)
	for i := range g {
		g[i] = i
	}
	return [][]int{g}
}

// BruteForceBSGF solves BSGF-Opt exactly by enumerating every set
// partition of the equations (Bell-number many; the decision problem is
// NP-complete, Theorem 1) and returning a minimum-cost partition. It is
// intended for small n (tests and the optimal baselines of §5).
func (e *Estimator) BruteForceBSGF(eqs []Equation) ([][]int, float64) {
	n := len(eqs)
	if n == 0 {
		return nil, 0
	}
	if n > 12 {
		panic(fmt.Sprintf("core: BruteForceBSGF on %d equations would enumerate too many partitions", n))
	}
	var best [][]int
	bestCost := 0.0
	assign := make([]int, n) // equation -> group id
	var rec func(i, groups int)
	costOf := func(groups int) float64 {
		parts := make([][]int, groups)
		for eq, g := range assign {
			parts[g] = append(parts[g], eq)
		}
		total := 0.0
		for _, p := range parts {
			total += e.MSJCost(eqs, p)
		}
		return total
	}
	rec = func(i, groups int) {
		if i == n {
			c := costOf(groups)
			if best == nil || c < bestCost-1e-12 {
				parts := make([][]int, groups)
				for eq, g := range assign {
					parts[g] = append(parts[g], eq)
				}
				best = parts
				bestCost = c
			}
			return
		}
		for g := 0; g <= groups; g++ {
			assign[i] = g
			next := groups
			if g == groups {
				next++
			}
			rec(i+1, next)
		}
	}
	rec(0, 0)
	sortPartition(best)
	return best, bestCost
}

// PartitionCost prices a partition: Σ over groups of the MSJ job cost.
func (e *Estimator) PartitionCost(eqs []Equation, partition [][]int) float64 {
	total := 0.0
	for _, g := range partition {
		if len(g) > 0 {
			total += e.MSJCost(eqs, g)
		}
	}
	return total
}

// ValidPartition checks that partition is a partition of 0..n-1.
func ValidPartition(partition [][]int, n int) bool {
	seen := make([]bool, n)
	count := 0
	for _, g := range partition {
		for _, i := range g {
			if i < 0 || i >= n || seen[i] {
				return false
			}
			seen[i] = true
			count++
		}
	}
	return count == n
}

// sortPartition orders groups internally and by first element, for
// deterministic output.
func sortPartition(p [][]int) {
	for _, g := range p {
		sort.Ints(g)
	}
	sort.Slice(p, func(i, j int) bool {
		if len(p[i]) == 0 || len(p[j]) == 0 {
			return len(p[i]) > len(p[j])
		}
		return p[i][0] < p[j][0]
	})
}

// PartitionString renders a partition as "{0,1}{2}" for logs and tests.
func PartitionString(p [][]int) string {
	var sb strings.Builder
	for _, g := range p {
		sb.WriteByte('{')
		for i, x := range g {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%d", x)
		}
		sb.WriteByte('}')
	}
	return sb.String()
}
