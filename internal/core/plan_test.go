package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/cost"
	"repro/internal/data"
	"repro/internal/mr"
	"repro/internal/refeval"
	"repro/internal/relation"
	"repro/internal/sgf"
)

func tup(vals ...int64) relation.Tuple {
	t := make(relation.Tuple, len(vals))
	for i, v := range vals {
		t[i] = relation.Value(v)
	}
	return t
}

// runPlan executes a plan and returns the final output relation.
func runPlan(t *testing.T, plan *Plan, db *relation.Database) *relation.Relation {
	t.Helper()
	engine := mr.NewEngine(cost.Default())
	outs, stats, err := engine.RunProgram(plan.Program(), db)
	if err != nil {
		t.Fatalf("plan %s: %v", plan.Name, err)
	}
	if len(stats) != len(plan.Jobs) {
		t.Fatalf("plan %s: stats mismatch", plan.Name)
	}
	out := outs.Relation(plan.Outputs[len(plan.Outputs)-1])
	if out == nil {
		t.Fatalf("plan %s: output relation missing", plan.Name)
	}
	return out
}

// wantSame asserts a plan output matches the reference evaluation.
func wantSame(t *testing.T, name string, got, want *relation.Relation) {
	t.Helper()
	if !got.Equal(want) {
		t.Errorf("%s: output mismatch\ngot:\n%s\nwant:\n%s", name, got.Dump(), want.Dump())
	}
}

// allStrategyPlans builds every applicable strategy plan for one query.
func allStrategyPlans(t *testing.T, q *sgf.BSGF, db *relation.Database, prog *sgf.Program) []*Plan {
	t.Helper()
	est := NewEstimator(cost.Default(), cost.Gumbo, db, prog)
	var plans []*Plan
	queries := []*sgf.BSGF{q}
	if p, err := ParPlan("par", queries); err == nil {
		plans = append(plans, p)
	} else {
		t.Fatalf("ParPlan: %v", err)
	}
	if p, err := est.GreedyPlan("greedy", queries); err != nil {
		t.Fatalf("GreedyPlan: %v", err)
	} else {
		plans = append(plans, p)
	}
	eqs := ExtractEquations(queries)
	if len(eqs) <= 6 {
		if p, err := est.OptPlan("opt", queries); err != nil {
			t.Fatalf("OptPlan: %v", err)
		} else {
			plans = append(plans, p)
		}
	}
	if p, err := BasicPlan("onejob", StrategyGreedy, queries, eqs, OneGroup(len(eqs))); err == nil {
		plans = append(plans, p)
	}
	if p, err := SeqPlan("seq", q); err == nil {
		plans = append(plans, p)
	}
	if OneRoundApplicable(q) != OneRoundInapplicable {
		if p, err := OneRoundPlan("oneround", queries); err != nil {
			t.Fatalf("OneRoundPlan: %v", err)
		} else {
			plans = append(plans, p)
		}
	}
	return plans
}

func checkAllStrategies(t *testing.T, src string, db *relation.Database) {
	t.Helper()
	prog := sgf.MustParse(src)
	q := prog.Queries[len(prog.Queries)-1]
	want, err := refeval.EvalOutput(prog, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Queries) != 1 {
		t.Fatal("checkAllStrategies expects a single-query program")
	}
	for _, plan := range allStrategyPlans(t, q, db, prog) {
		got := runPlan(t, plan, db)
		wantSame(t, fmt.Sprintf("%s[%s]", q.Name, plan.Strategy), got, want)
	}
}

func paperDB() *relation.Database {
	db := relation.NewDatabase()
	db.Put(relation.FromTuples("R", 2, []relation.Tuple{
		tup(1, 10), tup(2, 20), tup(3, 10), tup(4, 30), tup(5, 40),
	}))
	db.Put(relation.FromTuples("S", 1, []relation.Tuple{tup(1), tup(3), tup(5)}))
	db.Put(relation.FromTuples("T", 1, []relation.Tuple{tup(10), tup(30)}))
	db.Put(relation.FromTuples("U", 1, []relation.Tuple{tup(2), tup(3)}))
	return db
}

func TestStrategiesSimpleSemiJoin(t *testing.T) {
	checkAllStrategies(t, `Z := SELECT x, y FROM R(x, y) WHERE S(x);`, paperDB())
}

func TestStrategiesConjunction(t *testing.T) {
	checkAllStrategies(t, `Z := SELECT x, y FROM R(x, y) WHERE S(x) AND T(y);`, paperDB())
}

func TestStrategiesNegation(t *testing.T) {
	checkAllStrategies(t, `Z := SELECT x, y FROM R(x, y) WHERE NOT S(x);`, paperDB())
	checkAllStrategies(t, `Z := SELECT x, y FROM R(x, y) WHERE S(x) AND NOT U(x);`, paperDB())
}

func TestStrategiesDisjunction(t *testing.T) {
	checkAllStrategies(t, `Z := SELECT x, y FROM R(x, y) WHERE S(x) OR T(y);`, paperDB())
	checkAllStrategies(t, `Z := SELECT x, y FROM R(x, y) WHERE S(x) OR NOT T(y);`, paperDB())
}

func TestStrategiesMixedBoolean(t *testing.T) {
	// The running example of §1 / Example 4 shape.
	checkAllStrategies(t, `Z := SELECT x, y FROM R(x, y) WHERE S(x) AND (T(y) OR NOT U(x));`, paperDB())
}

func TestStrategiesSharedKey(t *testing.T) {
	// A3 shape: all atoms on the same key; 1-round shared applies.
	q := sgf.MustParse(`Z := SELECT x, y FROM R(x, y) WHERE S(x) AND T(x) AND U(x);`)
	if OneRoundApplicable(q.Queries[0]) != OneRoundShared {
		t.Fatal("A3 shape should be shared-key 1-round applicable")
	}
	checkAllStrategies(t, `Z := SELECT x, y FROM R(x, y) WHERE S(x) AND T(x) AND U(x);`, paperDB())
}

func TestStrategiesUniquenessB2Shape(t *testing.T) {
	checkAllStrategies(t, `Z := SELECT x, y FROM R(x, y) WHERE
		(S(x) AND NOT T(x) AND NOT U(x)) OR
		(NOT S(x) AND T(x) AND NOT U(x)) OR
		(NOT S(x) AND NOT T(x) AND U(x));`, paperDB())
}

func TestStrategiesGuardConstants(t *testing.T) {
	db := paperDB()
	db.Put(relation.FromTuples("G", 3, []relation.Tuple{
		tup(1, 10, 4), tup(2, 20, 4), tup(3, 30, 7),
	}))
	checkAllStrategies(t, `Z := SELECT x FROM G(x, y, 4) WHERE S(x);`, db)
}

func TestStrategiesCondConstants(t *testing.T) {
	db := paperDB()
	db.Put(relation.FromTuples("P", 2, []relation.Tuple{
		tup(1, 1), tup(2, 10), tup(7, 3),
	}))
	checkAllStrategies(t, `Z := SELECT x, y FROM R(x, y) WHERE P(x, 1) OR P(7, x);`, db)
}

func TestStrategiesRepeatedGuardVar(t *testing.T) {
	db := relation.NewDatabase()
	db.Put(relation.FromTuples("R", 2, []relation.Tuple{tup(1, 1), tup(1, 2), tup(3, 3)}))
	db.Put(relation.FromTuples("S", 1, []relation.Tuple{tup(1)}))
	checkAllStrategies(t, `Z := SELECT x FROM R(x, x) WHERE S(x);`, db)
	checkAllStrategies(t, `Z := SELECT x FROM R(x, x) WHERE NOT S(x);`, db)
}

func TestStrategiesEmptyJoinKey(t *testing.T) {
	// Conditional shares no variable with the guard.
	checkAllStrategies(t, `Z := SELECT x, y FROM R(x, y) WHERE S(q) AND T(y);`, paperDB())
}

func TestStrategiesProjectionSensitive(t *testing.T) {
	// Two guard facts with equal projections but different verdicts: the
	// tuple-id mode must keep them apart (DESIGN.md semantics note).
	db := relation.NewDatabase()
	db.Put(relation.FromTuples("R", 2, []relation.Tuple{tup(1, 2), tup(1, 3)}))
	db.Put(relation.FromTuples("S", 1, []relation.Tuple{tup(2)}))
	checkAllStrategies(t, `Z := SELECT x FROM R(x, y) WHERE NOT S(y);`, db)
	checkAllStrategies(t, `Z := SELECT x FROM R(x, y) WHERE S(y);`, db)
}

func TestStrategiesGuardAlsoConditional(t *testing.T) {
	// A2 shape reuses one conditional relation; also use R on both sides.
	checkAllStrategies(t, `Z := SELECT x, y FROM R(x, y) WHERE R(y, z) AND S(x);`, paperDB())
}

func TestMultiQueryBasicPlan(t *testing.T) {
	// Two independent queries in one basic program (§4.5) sharing a
	// conditional relation.
	db := paperDB()
	db.Put(relation.FromTuples("G", 2, []relation.Tuple{tup(1, 10), tup(9, 20)}))
	prog := sgf.MustParse(`
		Z1 := SELECT x, y FROM R(x, y) WHERE S(x) AND T(y);
		Z2 := SELECT x, y FROM G(x, y) WHERE S(x);`)
	want, err := refeval.EvalProgram(prog, db)
	if err != nil {
		t.Fatal(err)
	}
	est := NewEstimator(cost.Default(), cost.Gumbo, db, prog)
	for _, build := range []func() (*Plan, error){
		func() (*Plan, error) { return ParPlan("par", prog.Queries) },
		func() (*Plan, error) { return est.GreedyPlan("greedy", prog.Queries) },
		func() (*Plan, error) {
			eqs := ExtractEquations(prog.Queries)
			return BasicPlan("onejob", StrategyGreedy, prog.Queries, eqs, OneGroup(len(eqs)))
		},
	} {
		plan, err := build()
		if err != nil {
			t.Fatal(err)
		}
		engine := mr.NewEngine(cost.Default())
		outs, _, err := engine.RunProgram(plan.Program(), db)
		if err != nil {
			t.Fatal(err)
		}
		for _, z := range []string{"Z1", "Z2"} {
			wantSame(t, plan.Name+"/"+z, outs.Relation(z), want.Relation(z))
		}
	}
}

func TestSGFProgramStrategies(t *testing.T) {
	// Nested program with dependencies (Example 5 shape, small data).
	db := relation.NewDatabase()
	db.Put(relation.FromTuples("R1", 2, []relation.Tuple{tup(1, 2), tup(3, 4), tup(5, 6)}))
	db.Put(relation.FromTuples("R2", 2, []relation.Tuple{tup(1, 1), tup(3, 3), tup(9, 9)}))
	db.Put(relation.FromTuples("S", 1, []relation.Tuple{tup(1), tup(3), tup(5)}))
	db.Put(relation.FromTuples("T", 1, []relation.Tuple{tup(1), tup(3)}))
	db.Put(relation.FromTuples("U", 1, []relation.Tuple{tup(3)}))
	prog := sgf.MustParse(`
		Q1 := SELECT x, y FROM R1(x, y) WHERE S(x);
		Q2 := SELECT x, y FROM Q1(x, y) WHERE T(x);
		Q3 := SELECT x, y FROM Q2(x, y) WHERE U(x);
		Q4 := SELECT x, y FROM R2(x, y) WHERE T(x);
		Q5 := SELECT x, y FROM Q3(x, y) WHERE Q4(x, x);`)
	want, err := refeval.EvalProgram(prog, db)
	if err != nil {
		t.Fatal(err)
	}
	est := NewEstimator(cost.Default(), cost.Gumbo, db, prog)
	builders := map[string]func() (*Plan, error){
		"sequnit": func() (*Plan, error) { return SeqUnitPlan("sequnit", prog) },
		"parunit": func() (*Plan, error) { return ParUnitPlan("parunit", prog) },
		"greedy":  func() (*Plan, error) { return est.GreedySGFPlan("greedysgf", prog) },
	}
	for name, build := range builders {
		plan, err := build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		engine := mr.NewEngine(cost.Default())
		outs, _, err := engine.RunProgram(plan.Program(), db)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, q := range prog.Queries {
			wantSame(t, name+"/"+q.Name, outs.Relation(q.Name), want.Relation(q.Name))
		}
	}
}

// TestRandomQueriesAllStrategies is the central property test: random
// BSGF queries over random databases evaluate identically under the
// reference evaluator and every MR strategy.
func TestRandomQueriesAllStrategies(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	condRels := []string{"S", "T", "U"}
	guardVars := []string{"x", "y", "z"}
	for trial := 0; trial < 40; trial++ {
		db := relation.NewDatabase()
		db.Put(data.GuardSpec{Name: "R", Arity: 3, Tuples: 60, Domain: 12, Seed: int64(trial)}.Generate())
		for _, c := range condRels {
			r := relation.New(c, 1)
			for r.Size() < 6 {
				r.Add(tup(rng.Int63n(16)))
			}
			db.Put(r)
		}
		// Random condition over up to 4 literals.
		nLits := 1 + rng.Intn(4)
		var cond sgf.Condition
		for li := 0; li < nLits; li++ {
			var leaf sgf.Condition = sgf.AtomCond{Atom: sgf.NewAtom(
				condRels[rng.Intn(len(condRels))],
				sgf.V(guardVars[rng.Intn(len(guardVars))]),
			)}
			if rng.Intn(3) == 0 {
				leaf = sgf.Not{C: leaf}
			}
			if cond == nil {
				cond = leaf
			} else if rng.Intn(2) == 0 {
				cond = sgf.AndOf(cond, leaf)
			} else {
				cond = sgf.OrOf(cond, leaf)
			}
		}
		q := &sgf.BSGF{
			Name:   "Z",
			Select: []string{"x", "y"},
			Guard:  sgf.NewAtom("R", sgf.V("x"), sgf.V("y"), sgf.V("z")),
			Where:  cond,
		}
		prog := &sgf.Program{Queries: []*sgf.BSGF{q}}
		if err := sgf.Validate(prog); err != nil {
			t.Fatalf("trial %d: generated invalid query: %v", trial, err)
		}
		want, err := refeval.EvalOutput(prog, db)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, plan := range allStrategyPlans(t, q, db, prog) {
			got := runPlan(t, plan, db)
			if !got.Equal(want) {
				t.Fatalf("trial %d strategy %s query %s: mismatch\ngot:\n%s\nwant:\n%s",
					trial, plan.Strategy, q, got.Dump(), want.Dump())
			}
		}
	}
}

func TestPlanRoundsAndDeps(t *testing.T) {
	prog := sgf.MustParse(`Z := SELECT x, y FROM R(x, y) WHERE S(x) AND T(y);`)
	plan, err := ParPlan("par", prog.Queries)
	if err != nil {
		t.Fatal(err)
	}
	// 2 MSJ jobs + 1 EVAL = 3 jobs, 2 rounds.
	if len(plan.Jobs) != 3 {
		t.Errorf("jobs = %d", len(plan.Jobs))
	}
	if plan.Rounds() != 2 {
		t.Errorf("rounds = %d", plan.Rounds())
	}
	if len(plan.Deps[2]) != 2 {
		t.Errorf("eval deps = %v", plan.Deps[2])
	}
	seq, err := SeqPlan("seq", prog.Queries[0])
	if err != nil {
		t.Fatal(err)
	}
	if seq.Rounds() != 2 || len(seq.Jobs) != 2 {
		t.Errorf("seq: %d jobs %d rounds", len(seq.Jobs), seq.Rounds())
	}
	oneround := sgf.MustParse(`Z := SELECT x FROM R(x, y) WHERE S(x) AND T(x);`)
	orPlan, err := OneRoundPlan("or", oneround.Queries)
	if err != nil {
		t.Fatal(err)
	}
	if orPlan.Rounds() != 1 || len(orPlan.Jobs) != 1 {
		t.Errorf("1-round: %d jobs %d rounds", len(orPlan.Jobs), orPlan.Rounds())
	}
}

func TestExecRunnerMetrics(t *testing.T) {
	db := paperDB()
	prog := sgf.MustParse(`Z := SELECT x, y FROM R(x, y) WHERE S(x) AND T(y);`)
	plan, err := ParPlan("par", prog.Queries)
	if err != nil {
		t.Fatal(err)
	}
	engine := mr.NewEngine(cost.Default())
	_, stats, err := engine.RunProgram(plan.Program(), db)
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]cluster.Job, len(stats))
	cfg := cost.Default()
	for i, st := range stats {
		jobs[i] = cluster.Job{Name: st.Name, Plan: cfg.Tasks(st.CostSpec()), Deps: plan.Deps[i]}
	}
	res := cluster.Simulate(cluster.DefaultConfig(), jobs)
	if res.NetTime <= 0 || res.TotalTime < res.NetTime {
		t.Errorf("sim times: net=%v total=%v", res.NetTime, res.TotalTime)
	}
}

// TestPlanDepsCoverInputDeps pins the contract the engine's pipelined
// task scheduler relies on: every plan's explicit Deps (which may add
// strategy barriers, and may express a data edge through a chain of
// barriers) transitively cover all relation-granular data edges derived
// from the jobs' declared read sets (InputDeps). A constructor that
// under-declared Job.Inputs — or wired Deps below the data edges —
// would let the cluster simulation schedule a consumer before its
// producer.
func TestPlanDepsCoverInputDeps(t *testing.T) {
	check := func(plan *Plan) {
		t.Helper()
		// ancestors[i] = jobs reachable from i through Deps edges.
		ancestors := make([]map[int]bool, len(plan.Jobs))
		for i := range plan.Jobs { // Deps point to earlier jobs only
			anc := make(map[int]bool)
			for _, d := range plan.Deps[i] {
				anc[d] = true
				for a := range ancestors[d] {
					anc[a] = true
				}
			}
			ancestors[i] = anc
		}
		inputDeps := plan.InputDeps()
		for i := range plan.Jobs {
			for k, prod := range inputDeps[i] {
				if prod >= 0 && !ancestors[i][prod] {
					t.Errorf("plan %s [%s]: job %d (%s) reads %q from job %d, not covered by Deps %v",
						plan.Name, plan.Strategy, i, plan.Jobs[i].Name,
						plan.Jobs[i].Inputs[k], prod, plan.Deps[i])
				}
			}
		}
	}

	// Flat strategies over the mixed-boolean running example.
	prog := sgf.MustParse(`Z := SELECT x, y FROM R(x, y) WHERE S(x) AND (T(y) OR NOT U(x));`)
	for _, plan := range allStrategyPlans(t, prog.Queries[0], paperDB(), prog) {
		check(plan)
	}

	// Program strategies over random nested programs.
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 10; iter++ {
		nested := randomNestedProgram(rng, 3)
		db := nestedTestDB(rng)
		est := NewEstimator(cost.Default(), cost.Gumbo, db, nested)
		builders := map[string]func() (*Plan, error){
			"sequnit":   func() (*Plan, error) { return SeqUnitPlan("su", nested) },
			"parunit":   func() (*Plan, error) { return ParUnitPlan("pu", nested) },
			"greedysgf": func() (*Plan, error) { return est.GreedySGFPlan("gs", nested) },
		}
		for name, build := range builders {
			plan, err := build()
			if err != nil {
				t.Fatalf("iter %d %s: %v", iter, name, err)
			}
			check(plan)
		}
	}
}
