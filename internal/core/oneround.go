package core

import (
	"fmt"
	"strings"

	"repro/internal/mr"
	"repro/internal/relation"
	"repro/internal/sgf"
)

// OneRoundMode classifies whether a BSGF query can be evaluated in a
// single fused MSJ+EVAL job (§5.1 optimization (4)).
type OneRoundMode int

const (
	// OneRoundInapplicable: the query needs the 2-round MSJ+EVAL plan.
	OneRoundInapplicable OneRoundMode = iota
	// OneRoundShared: all conditional atoms share one join key, so every
	// verdict for a guard fact lands on the same reducer and the full
	// Boolean condition is evaluated there (queries like A3 and B2).
	OneRoundShared
	// OneRoundDisjunctive: the condition is a pure disjunction of
	// (possibly negated) atoms; each literal is decidable at its own
	// join key and the union of per-key emissions realizes the OR.
	OneRoundDisjunctive
)

func (m OneRoundMode) String() string {
	switch m {
	case OneRoundShared:
		return "shared-key"
	case OneRoundDisjunctive:
		return "disjunctive"
	default:
		return "inapplicable"
	}
}

// joinSig is the ordered join-variable signature of an atom w.r.t. a
// guard.
func joinSig(guard, atom sgf.Atom) string {
	return strings.Join(sgf.SharedVars(guard, atom), "\x00")
}

// OneRoundApplicable reports how (and whether) q can run as one job.
func OneRoundApplicable(q *sgf.BSGF) OneRoundMode {
	atoms := q.CondAtoms()
	if len(atoms) == 0 {
		return OneRoundInapplicable
	}
	sig := joinSig(q.Guard, atoms[0])
	shared := sig != ""
	for _, a := range atoms[1:] {
		if joinSig(q.Guard, a) != sig {
			shared = false
			break
		}
	}
	if shared {
		return OneRoundShared
	}
	if isLiteralDisjunction(q.Where) {
		return OneRoundDisjunctive
	}
	return OneRoundInapplicable
}

// isLiteralDisjunction reports whether c is a single literal or a
// disjunction of literals (atoms or negated atoms).
func isLiteralDisjunction(c sgf.Condition) bool {
	isLiteral := func(x sgf.Condition) bool {
		switch v := x.(type) {
		case sgf.AtomCond:
			return true
		case sgf.Not:
			_, ok := v.C.(sgf.AtomCond)
			return ok
		default:
			return false
		}
	}
	switch v := c.(type) {
	case sgf.Or:
		for _, x := range v.Cs {
			if !isLiteral(x) {
				return false
			}
		}
		return true
	default:
		return isLiteral(c)
	}
}

// literalsOf extracts the literals of a literal disjunction.
func literalsOf(c sgf.Condition) []Literal {
	switch v := c.(type) {
	case sgf.Or:
		var out []Literal
		for _, x := range v.Cs {
			out = append(out, literalsOf(x)...)
		}
		return out
	case sgf.Not:
		return []Literal{{Atom: v.C.(sgf.AtomCond).Atom, Negated: true}}
	case sgf.AtomCond:
		return []Literal{{Atom: v.Atom}}
	default:
		panic(fmt.Sprintf("core: not a literal disjunction: %T", c))
	}
}

// NewOneRoundJob builds the fused single-round job evaluating every
// query in one MapReduce job. Every query must be 1-round applicable.
func NewOneRoundJob(name string, queries []*sgf.BSGF) (*mr.Job, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("core: 1-round job %s has no queries", name)
	}
	outs := make(map[string]int, len(queries))
	var inputs []string
	seenInput := make(map[string]bool)
	addInput := func(rel string) {
		if !seenInput[rel] {
			seenInput[rel] = true
			inputs = append(inputs, rel)
		}
	}

	// Shared assert classes across all queries.
	type assertClass struct {
		rel     string
		matcher sgf.Matcher
		proj    sgf.Projector
	}
	var classes []assertClass
	classKeys := make(map[string]int32)
	classFor := func(guard, atom sgf.Atom) int32 {
		joinVars := sgf.SharedVars(guard, atom)
		ck := sgf.Atom.Key(atom) + "@"
		for _, p := range atom.VarPositions(joinVars) {
			ck += fmt.Sprintf("%d,", p)
		}
		if ci, ok := classKeys[ck]; ok {
			return ci
		}
		ci := int32(len(classes))
		classKeys[ck] = ci
		classes = append(classes, assertClass{
			rel:     atom.Rel,
			matcher: sgf.NewMatcher(atom),
			proj:    sgf.NewProjector(atom, joinVars),
		})
		return ci
	}

	// Per-query request groups: guard emissions keyed per distinct join
	// signature; in shared mode there is exactly one group.
	type reqGroup struct {
		proj     sgf.Projector // guard join-key projection
		literals []struct {
			class   int32
			negated bool
			atomKey string
		}
	}
	type querySpec struct {
		mode    OneRoundMode
		matcher sgf.Matcher
		project sgf.Projector
		groups  []reqGroup
		cond    sgf.Condition
		// condBits is the shared-mode condition compiled over the
		// class-index truth mask (bit = assert class); nil when the job
		// exceeds 64 classes and the reducer uses the truth-map path.
		condBits func(mask uint64) bool
		classOf  map[string]int32 // atom key -> class (shared mode truth lookup)
		outName  string
	}
	qspecs := make([]querySpec, len(queries))

	for qi, q := range queries {
		mode := OneRoundApplicable(q)
		if mode == OneRoundInapplicable {
			return nil, fmt.Errorf("core: query %s is not 1-round applicable", q.Name)
		}
		if _, dup := outs[q.Name]; dup {
			return nil, fmt.Errorf("core: 1-round job %s: output %s defined twice", name, q.Name)
		}
		outs[q.Name] = q.OutArity()
		addInput(q.Guard.Rel)
		spec := querySpec{
			mode:    mode,
			matcher: sgf.NewMatcher(q.Guard),
			project: sgf.NewProjector(q.Guard, q.Select),
			cond:    q.Where,
			classOf: make(map[string]int32),
			outName: q.Name,
		}
		if mode == OneRoundShared {
			atoms := q.CondAtoms()
			g := reqGroup{proj: sgf.NewProjector(q.Guard, sgf.SharedVars(q.Guard, atoms[0]))}
			for _, a := range atoms {
				ci := classFor(q.Guard, a)
				spec.classOf[a.Key()] = ci
				addInput(a.Rel)
			}
			spec.groups = []reqGroup{g}
		} else {
			bySig := make(map[string]int)
			for _, l := range literalsOf(q.Where) {
				sig := joinSig(q.Guard, l.Atom)
				gi, ok := bySig[sig]
				if !ok {
					gi = len(spec.groups)
					bySig[sig] = gi
					spec.groups = append(spec.groups, reqGroup{
						proj: sgf.NewProjector(q.Guard, sgf.SharedVars(q.Guard, l.Atom)),
					})
				}
				ci := classFor(q.Guard, l.Atom)
				spec.groups[gi].literals = append(spec.groups[gi].literals, struct {
					class   int32
					negated bool
					atomKey string
				}{class: ci, negated: l.Negated, atomKey: l.Atom.Key()})
				addInput(l.Atom.Rel)
			}
		}
		qspecs[qi] = spec
	}

	// Precompile mapper roles per input.
	type guardRole struct {
		q int32
	}
	guardRoles := make(map[string][]guardRole)
	for qi, q := range queries {
		guardRoles[q.Guard.Rel] = append(guardRoles[q.Guard.Rel], guardRole{q: int32(qi)})
	}
	assertRoles := make(map[string][]int32)
	for ci, c := range classes {
		assertRoles[c.rel] = append(assertRoles[c.rel], int32(ci))
	}

	mapper := mr.MapperFunc(func(input string, id int, t relation.Tuple, emit mr.Emit) {
		var kb [32]byte // append-style shuffle keys, see NewMSJJob
		for _, gr := range guardRoles[input] {
			spec := &qspecs[gr.q]
			if !spec.matcher.Matches(t) {
				continue
			}
			out := spec.project.Apply(t)
			for di := range spec.groups {
				emit(spec.groups[di].proj.AppendKey(kb[:0], t),
					ReqTuple{Q: gr.q, Disjunct: int32(di), Out: out})
			}
		}
		for _, ci := range assertRoles[input] {
			c := classes[ci]
			if c.matcher.Matches(t) {
				emit(c.proj.AppendKey(kb[:0], t), Assert{Class: ci})
			}
		}
	})

	// Compile shared-mode conditions over the class-index bitmask; with
	// at most 64 assert classes the reducer reconciles without a map (or
	// the per-request truth map truthOf used to build).
	useBits := len(classes) <= 64
	if useBits {
		for qi := range qspecs {
			spec := &qspecs[qi]
			if spec.mode != OneRoundShared {
				continue
			}
			spec.condBits = sgf.CompileCondition(spec.cond, func(k string) (int, bool) {
				ci, ok := spec.classOf[k]
				return int(ci), ok
			})
			if spec.condBits == nil {
				useBits = false
				break
			}
		}
	}

	reducer := mr.ReducerFunc(func(key []byte, msgs []mr.Message, out *mr.Output) {
		if useBits {
			var asserted uint64
			for _, m := range msgs {
				if a, ok := m.(Assert); ok {
					asserted |= uint64(1) << uint(a.Class)
				}
			}
			for _, m := range msgs {
				r, ok := m.(ReqTuple)
				if !ok {
					continue
				}
				spec := &qspecs[r.Q]
				if spec.mode == OneRoundShared {
					if spec.condBits(asserted) {
						out.Add(spec.outName, r.Out)
					}
					continue
				}
				// Disjunctive: emit if any literal of this key group holds.
				for _, l := range spec.groups[r.Disjunct].literals {
					if (asserted&(uint64(1)<<uint(l.class)) != 0) != l.negated {
						out.Add(spec.outName, r.Out)
						break
					}
				}
			}
			return
		}
		var asserted map[int32]bool
		for _, m := range msgs {
			if a, ok := m.(Assert); ok {
				if asserted == nil {
					asserted = make(map[int32]bool, 4)
				}
				asserted[a.Class] = true
			}
		}
		for _, m := range msgs {
			r, ok := m.(ReqTuple)
			if !ok {
				continue
			}
			spec := &qspecs[r.Q]
			if spec.mode == OneRoundShared {
				ok := sgf.EvalCondition(spec.cond, truthOf(spec.classOf, asserted))
				if ok {
					out.Add(spec.outName, r.Out)
				}
				continue
			}
			// Disjunctive: emit if any literal of this key group holds.
			for _, l := range spec.groups[r.Disjunct].literals {
				if asserted[l.class] != l.negated {
					out.Add(spec.outName, r.Out)
					break
				}
			}
		}
	})

	return &mr.Job{
		Name:    name,
		Inputs:  inputs,
		Outputs: outs,
		Mapper:  mapper,
		Reducer: reducer,
		Packing: true,
	}, nil
}

// truthOf adapts the asserted-class set to the atom-key truth map that
// sgf.EvalCondition consumes.
func truthOf(classOf map[string]int32, asserted map[int32]bool) map[string]bool {
	truth := make(map[string]bool, len(classOf))
	for k, ci := range classOf {
		truth[k] = asserted[ci]
	}
	return truth
}
