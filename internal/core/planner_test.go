package core

import (
	"math/rand"
	"testing"

	"repro/internal/cost"
	"repro/internal/data"
	"repro/internal/relation"
	"repro/internal/sgf"
)

// benchDB builds a mid-sized database for planner tests: a 4-ary guard R
// and unary conditionals S, T, U, V with 50% matching tuples.
func benchDB(tuples int, seed int64) *relation.Database {
	db := relation.NewDatabase()
	guard := data.GuardSpec{Name: "R", Arity: 4, Tuples: tuples, Seed: seed}.Generate()
	db.Put(guard)
	for i, name := range []string{"S", "T", "U", "V"} {
		db.Put(data.CondSpec{
			Name: name, Arity: 1, Tuples: tuples,
			Guard: guard, Col: i % 4, MatchFrac: 0.5, Seed: seed + int64(i) + 1,
		}.Generate())
	}
	return db
}

func TestOneRoundApplicability(t *testing.T) {
	cases := []struct {
		src  string
		want OneRoundMode
	}{
		{`Z := SELECT x FROM R(x, y) WHERE S(x) AND T(x) AND U(x);`, OneRoundShared},
		{`Z := SELECT x FROM R(x, y) WHERE S(x) OR (T(x) AND U(x));`, OneRoundShared},
		{`Z := SELECT x FROM R(x, y) WHERE S(x) AND T(y);`, OneRoundInapplicable},
		{`Z := SELECT x FROM R(x, y) WHERE S(x) OR T(y);`, OneRoundDisjunctive},
		{`Z := SELECT x FROM R(x, y) WHERE S(x) OR NOT T(y);`, OneRoundDisjunctive},
		{`Z := SELECT x FROM R(x, y) WHERE NOT (S(x) OR T(y));`, OneRoundInapplicable},
		{`Z := SELECT x FROM R(x, y) WHERE S(x);`, OneRoundShared},
		{`Z := SELECT x FROM R(x, y);`, OneRoundInapplicable},
		// Same variable set but different order: not a shared key; it is
		// a single literal, hence disjunctive.
		{`Z := SELECT x FROM R(x, y) WHERE P(q) AND S(x, y) AND T(y, x);`, OneRoundInapplicable},
	}
	for _, c := range cases {
		q := sgf.MustParse(c.src).Queries[0]
		if got := OneRoundApplicable(q); got != c.want {
			t.Errorf("%s: mode = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestGreedyGroupsSharedGuard(t *testing.T) {
	// A1: four semi-joins over one guard. Reading R once instead of four
	// times is a clear gain, so Greedy-BSGF should produce one group.
	db := benchDB(3000, 1)
	prog := sgf.MustParse(`Z := SELECT x, y, z, w FROM R(x, y, z, w)
		WHERE S(x) AND T(y) AND U(z) AND V(w);`)
	est := NewEstimator(cost.Default(), cost.Gumbo, db, prog)
	eqs := ExtractEquations(prog.Queries)
	part := est.GreedyBSGF(eqs)
	if len(part) != 1 || len(part[0]) != 4 {
		t.Errorf("Greedy-BSGF partition = %s, want one group of 4", PartitionString(part))
	}
}

func TestGreedyKeepsDisjointQueriesApart(t *testing.T) {
	// A4: two guards with disjoint conditionals; with the default
	// overhead, grouping across guards has no sharing gain, so the
	// partition should not mix guards... unless job overhead dominates.
	// With zero job overhead there is no cross-guard gain at all.
	db := benchDB(3000, 2)
	guard2 := data.GuardSpec{Name: "G", Arity: 4, Tuples: 3000, Seed: 77}.Generate()
	db.Put(guard2)
	for i, name := range []string{"W", "X", "Y", "Q"} {
		db.Put(data.CondSpec{Name: name, Arity: 1, Tuples: 3000, Guard: guard2, Col: i, MatchFrac: 0.5, Seed: int64(90 + i)}.Generate())
	}
	prog := sgf.MustParse(`
		Z1 := SELECT x, y, z, w FROM R(x, y, z, w) WHERE S(x) AND T(y) AND U(z) AND V(w);
		Z2 := SELECT x, y, z, w FROM G(x, y, z, w) WHERE W(x) AND X(y) AND Y(z) AND Q(w);`)
	cfg := cost.Default()
	cfg.JobOverhead = 0
	est := NewEstimator(cfg, cost.Gumbo, db, prog)
	eqs := ExtractEquations(prog.Queries)
	part := est.GreedyBSGF(eqs)
	for _, group := range part {
		guards := map[string]bool{}
		for _, i := range group {
			guards[eqs[i].Guard.Rel] = true
		}
		if len(guards) > 1 {
			t.Errorf("group %v mixes guards %v", group, guards)
		}
	}
}

func TestGreedyNeverWorseThanSingletonsOrOneGroup(t *testing.T) {
	db := benchDB(2000, 3)
	prog := sgf.MustParse(`Z := SELECT x, y, z, w FROM R(x, y, z, w)
		WHERE S(x) AND T(x) AND U(x) AND V(x);`)
	est := NewEstimator(cost.Default(), cost.Gumbo, db, prog)
	eqs := ExtractEquations(prog.Queries)
	greedy := est.PartitionCost(eqs, est.GreedyBSGF(eqs))
	single := est.PartitionCost(eqs, Singletons(len(eqs)))
	one := est.PartitionCost(eqs, OneGroup(len(eqs)))
	if greedy > single+1e-9 {
		t.Errorf("greedy %v worse than singletons %v", greedy, single)
	}
	if greedy > one+1e-9 {
		t.Errorf("greedy %v worse than one group %v", greedy, one)
	}
}

func TestGreedyVsBruteForce(t *testing.T) {
	// On small random instances, greedy must be within a small factor of
	// the optimum, and brute force is never beaten.
	rng := rand.New(rand.NewSource(5))
	names := []string{"S", "T", "U", "V"}
	for trial := 0; trial < 8; trial++ {
		db := benchDB(800, int64(trial+10))
		vars := []string{"x", "y", "z", "w"}
		var conds []sgf.Condition
		n := 3 + rng.Intn(3)
		for i := 0; i < n; i++ {
			conds = append(conds, sgf.AtomCond{Atom: sgf.NewAtom(
				names[rng.Intn(len(names))], sgf.V(vars[rng.Intn(len(vars))]))})
		}
		q := &sgf.BSGF{
			Name:   "Z",
			Select: vars,
			Guard:  sgf.NewAtom("R", sgf.V("x"), sgf.V("y"), sgf.V("z"), sgf.V("w")),
			Where:  sgf.AndOf(conds...),
		}
		est := NewEstimator(cost.Default(), cost.Gumbo, db, nil)
		eqs := ExtractEquations([]*sgf.BSGF{q})
		greedyPart := est.GreedyBSGF(eqs)
		if !ValidPartition(greedyPart, len(eqs)) {
			t.Fatalf("trial %d: invalid greedy partition %s", trial, PartitionString(greedyPart))
		}
		optPart, optCost := est.BruteForceBSGF(eqs)
		if !ValidPartition(optPart, len(eqs)) {
			t.Fatalf("trial %d: invalid opt partition", trial)
		}
		greedyCost := est.PartitionCost(eqs, greedyPart)
		if optCost > greedyCost+1e-9 {
			t.Errorf("trial %d: brute force %v worse than greedy %v", trial, optCost, greedyCost)
		}
		if greedyCost > 1.5*optCost+1e-9 {
			t.Errorf("trial %d: greedy %v far from optimal %v", trial, greedyCost, optCost)
		}
	}
}

func TestGainIdentity(t *testing.T) {
	db := benchDB(1000, 9)
	prog := sgf.MustParse(`Z := SELECT x, y, z, w FROM R(x, y, z, w) WHERE S(x) AND T(y);`)
	est := NewEstimator(cost.Default(), cost.Gumbo, db, prog)
	eqs := ExtractEquations(prog.Queries)
	g := est.Gain(eqs, []int{0}, []int{1})
	manual := est.MSJCost(eqs, []int{0}) + est.MSJCost(eqs, []int{1}) - est.MSJCost(eqs, []int{0, 1})
	if g != manual {
		t.Errorf("Gain = %v, manual = %v", g, manual)
	}
	if g <= 0 {
		t.Errorf("shared-guard gain should be positive, got %v", g)
	}
}

func TestEstimatorSampledVsMeasured(t *testing.T) {
	// The sampled MSJ spec should be close to the engine's measured
	// stats for a uniform mapper (within sampling error).
	db := benchDB(5000, 11)
	prog := sgf.MustParse(`Z := SELECT x, y, z, w FROM R(x, y, z, w) WHERE S(x) AND T(y);`)
	est := NewEstimator(cost.Default(), cost.Gumbo, db, prog)
	eqs := ExtractEquations(prog.Queries)
	spec := est.MSJSpec(eqs, []int{0, 1})

	job, err := NewMSJJob("measure", eqs)
	if err != nil {
		t.Fatal(err)
	}
	// Disable packing for the comparison: the estimator predicts raw
	// map output, before packing.
	job.Packing = false
	engine := newTestEngine()
	_, stats, err := engine.RunJob(job, db)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range spec.Partitions {
		var measured float64
		for _, mp := range stats.Parts {
			if mp.Input == p.Name {
				measured = mp.InterMB
			}
		}
		if measured == 0 {
			t.Fatalf("no measured part for %s", p.Name)
		}
		ratio := p.InterMB / measured
		if ratio < 0.85 || ratio > 1.15 {
			t.Errorf("estimate for %s off: est %v measured %v", p.Name, p.InterMB, measured)
		}
	}
}

func TestEstimatorDerivedRelationBounds(t *testing.T) {
	db := relation.NewDatabase()
	db.Put(relation.FromTuples("R", 2, []relation.Tuple{tup(1, 2), tup(3, 4)}))
	db.Put(relation.FromTuples("S", 1, []relation.Tuple{tup(1)}))
	prog := sgf.MustParse(`
		Z1 := SELECT x, y FROM R(x, y) WHERE S(x);
		Z2 := SELECT x FROM Z1(x, y) WHERE S(y);`)
	est := NewEstimator(cost.Default(), cost.Gumbo, db, prog)
	// Z1 is not materialized: its bound follows R's cardinality.
	info := est.rel("Z1")
	if info.count != 2 {
		t.Errorf("derived bound = %v, want 2", info.count)
	}
	// Cost of the dependent query must be finite and positive.
	eqs := ExtractEquations(prog.Queries[1:])
	if c := est.MSJCost(eqs, []int{0}); c <= 0 {
		t.Errorf("MSJCost over derived relation = %v", c)
	}
}

func TestGreedySGFPaperExample(t *testing.T) {
	// Example 5: Greedy-SGF should find a sort that groups Q4 with an
	// overlapping group (T overlaps Q2, R2 nothing, Z3... Q4 shares T
	// with Q2), giving ({Q1},{Q2,Q4},{Q3},{Q5}) — sort 2 of the paper.
	prog := sgf.MustParse(`
		Q1 := SELECT x, y FROM R1(x, y) WHERE S(x);
		Q2 := SELECT x, y FROM Q1(x, y) WHERE T(x);
		Q3 := SELECT x, y FROM Q2(x, y) WHERE U(x);
		Q4 := SELECT x, y FROM R2(x, y) WHERE T(x);
		Q5 := SELECT x, y FROM Q3(x, y) WHERE Q4(x, x);`)
	s := GreedySGF(prog)
	g := sgf.BuildDepGraph(prog)
	if !s.Valid(g) {
		t.Fatalf("Greedy-SGF produced invalid sort %v", s)
	}
	// Q4 (index 3) should share a group with Q2 (index 1).
	foundTogether := false
	for _, f := range s {
		has1, has3 := false, false
		for _, v := range f {
			if v == 1 {
				has1 = true
			}
			if v == 3 {
				has3 = true
			}
		}
		if has1 && has3 {
			foundTogether = true
		}
	}
	if !foundTogether {
		t.Errorf("Greedy-SGF sort %v does not group Q2 with Q4", s)
	}
}

func TestGreedySGFMatchesBruteForceOnSmallPrograms(t *testing.T) {
	// §5.3: "Greedy-SGF yields multiway topological sorts identical to
	// the optimal topological sort" for the tested queries. Check cost
	// equality (the sort itself may differ in irrelevant ways).
	db := relation.NewDatabase()
	seedRel := func(name string, arity, n int) {
		db.Put(data.GuardSpec{Name: name, Arity: arity, Tuples: n, Seed: int64(len(name))}.Generate())
	}
	seedRel("R", 4, 800)
	seedRel("G", 4, 800)
	seedRel("H", 4, 800)
	seedRel("S", 1, 200)
	seedRel("T", 1, 200)
	seedRel("U", 1, 200)
	prog := sgf.MustParse(`
		Z1 := SELECT x FROM R(x, y, z, w) WHERE S(x) AND S(y);
		Z2 := SELECT x FROM G(x, y, z, w) WHERE T(x) AND T(y);
		Z3 := SELECT x FROM H(x, y, z, w) WHERE U(x) AND U(y);
		Z4 := SELECT x FROM G(x, y, z, w) WHERE Z1(x) AND Z1(y);
		Z5 := SELECT x FROM H(x, y, z, w) WHERE Z2(x) AND Z2(y);
		Z6 := SELECT x FROM R(x, y, z, w) WHERE Z3(x) AND Z3(y);`)
	est := NewEstimator(cost.Default(), cost.Gumbo, db, prog)
	greedySort := GreedySGF(prog)
	if !greedySort.Valid(sgf.BuildDepGraph(prog)) {
		t.Fatal("invalid greedy sort")
	}
	greedyCost := est.SortCost(prog, greedySort)
	_, optCost := est.BruteForceSGF(prog)
	if optCost > greedyCost+1e-9 {
		t.Errorf("brute force %v worse than greedy %v", optCost, greedyCost)
	}
	// Greedy-SGF merges overlapping queries, so it is never worse than
	// the all-singletons (SEQUNIT) sort under the cost model. (It can
	// miss the optimum: the overlap heuristic is cost-blind, which is
	// most visible at small scale where job overhead dominates.)
	seqUnitCost := est.SortCost(prog, SeqUnitSort(prog))
	if greedyCost > seqUnitCost+1e-9 {
		t.Errorf("greedy sort cost %v worse than SEQUNIT %v", greedyCost, seqUnitCost)
	}
	// The expected grouping: Z4 with Z2 (shared G), Z5 with Z3 (shared
	// H); so the sort has at most 4 groups.
	if len(greedySort) > 4 {
		t.Errorf("greedy sort %v did not merge overlapping queries", greedySort)
	}
}
