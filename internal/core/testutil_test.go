package core

import (
	"repro/internal/cost"
	"repro/internal/mr"
)

// newTestEngine returns an engine with default constants for tests.
func newTestEngine() *mr.Engine { return mr.NewEngine(cost.Default()) }
