package relation

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// BytesPerField is the assumed serialized size of one tuple field, chosen
// to match the paper's data ratios: a 4-ary guard relation of 100M tuples
// occupies 4 GB (40 bytes/tuple) and a unary conditional relation of 100M
// tuples occupies 1 GB (10 bytes/tuple).
const BytesPerField = 10

// Relation is a named, fixed-arity set of tuples. Relations have set
// semantics: Add ignores duplicates. Iteration order is insertion order,
// which keeps runs deterministic.
type Relation struct {
	name   string
	arity  int
	tuples []Tuple
	index  map[string]int // Tuple.Key() -> position in tuples
}

// New returns an empty relation with the given name and arity.
// Arity must be positive.
func New(name string, arity int) *Relation {
	if arity <= 0 {
		panic(fmt.Sprintf("relation.New: non-positive arity %d for %s", arity, name))
	}
	return &Relation{name: name, arity: arity, index: make(map[string]int)}
}

// FromTuples builds a relation from the given tuples (duplicates removed).
func FromTuples(name string, arity int, tuples []Tuple) *Relation {
	r := New(name, arity)
	for _, t := range tuples {
		r.Add(t)
	}
	return r
}

// Name returns the relation symbol.
func (r *Relation) Name() string { return r.name }

// Arity returns the number of fields per tuple.
func (r *Relation) Arity() int { return r.arity }

// Size returns the number of tuples.
func (r *Relation) Size() int { return len(r.tuples) }

// Bytes returns the modelled serialized size of the relation in bytes
// (Size × arity × BytesPerField). This drives the cost model's N_i values.
func (r *Relation) Bytes() int64 {
	return int64(len(r.tuples)) * int64(r.arity) * BytesPerField
}

// TupleBytes returns the modelled serialized size of one tuple of this
// relation's arity.
func (r *Relation) TupleBytes() int64 { return int64(r.arity) * BytesPerField }

// Add inserts t, returning true if it was not already present.
// It panics if the arity does not match. The duplicate check is
// allocation-free: the key is built in a stack buffer and looked up
// without a string conversion, so re-adding existing tuples (the common
// case in reducer outputs with heavy overlap) costs no garbage; only an
// actual insert materializes the key string.
func (r *Relation) Add(t Tuple) bool {
	if len(t) != r.arity {
		panic(fmt.Sprintf("relation %s: adding tuple of arity %d to relation of arity %d", r.name, len(t), r.arity))
	}
	var kb [32]byte
	k := t.AppendKey(kb[:0])
	if _, dup := r.index[string(k)]; dup { // no-alloc map lookup
		return false
	}
	r.index[string(k)] = len(r.tuples)
	r.tuples = append(r.tuples, t)
	return true
}

// Contains reports whether t is present. Like Add's duplicate check it
// allocates nothing.
func (r *Relation) Contains(t Tuple) bool {
	var kb [32]byte
	_, ok := r.index[string(t.AppendKey(kb[:0]))]
	return ok
}

// Tuple returns the i-th tuple in insertion order.
func (r *Relation) Tuple(i int) Tuple { return r.tuples[i] }

// Tuples returns the underlying tuple slice in insertion order. The caller
// must not mutate it.
func (r *Relation) Tuples() []Tuple { return r.tuples }

// Each calls fn for every tuple with its stable id (insertion position).
func (r *Relation) Each(fn func(id int, t Tuple)) {
	for i, t := range r.tuples {
		fn(i, t)
	}
}

// Clone returns a deep copy of r. Both the tuple slice and the index
// map are allocated at their final size up front — cloning never
// re-grows through incremental Add — and the index is copied entry for
// entry (positions are identical in a clone) rather than re-encoding
// every tuple's key.
func (r *Relation) Clone() *Relation {
	c := &Relation{
		name:   r.name,
		arity:  r.arity,
		tuples: make([]Tuple, len(r.tuples)),
		index:  make(map[string]int, len(r.index)),
	}
	for i, t := range r.tuples {
		c.tuples[i] = t.Clone()
	}
	for k, pos := range r.index {
		c.index[k] = pos
	}
	return c
}

// Grow pre-sizes r's internal storage for n additional tuples, so a
// bulk load of n tuples performs no incremental slice growth and no
// map rehashing. It never changes the relation's contents. A Go map
// cannot be grown in place, so the index is rebuilt with the target
// size hint when the pending bulk dominates the existing entries
// (copying the existing entries once is cheaper than rehashing them
// repeatedly during the load).
func (r *Relation) Grow(n int) {
	if n <= 0 {
		return
	}
	if cap(r.tuples)-len(r.tuples) < n {
		grown := make([]Tuple, len(r.tuples), len(r.tuples)+n)
		copy(grown, r.tuples)
		r.tuples = grown
	}
	if n > len(r.index) {
		idx := make(map[string]int, len(r.index)+n)
		for k, pos := range r.index {
			idx[k] = pos
		}
		r.index = idx
	}
}

// AddAll inserts every tuple of ts in order (set semantics, like Add)
// and returns the number of tuples actually added. Storage is pre-sized
// once via Grow. It panics if any tuple's arity does not match.
func (r *Relation) AddAll(ts []Tuple) int {
	r.Grow(len(ts))
	added := 0
	for _, t := range ts {
		if r.Add(t) {
			added++
		}
	}
	return added
}

// Rename returns a shallow view of r under a different name, sharing
// tuple storage.
func (r *Relation) Rename(name string) *Relation {
	return &Relation{name: name, arity: r.arity, tuples: r.tuples, index: r.index}
}

// Equal reports whether r and o contain exactly the same tuple set
// (names may differ).
func (r *Relation) Equal(o *Relation) bool {
	if r.arity != o.arity || len(r.tuples) != len(o.tuples) {
		return false
	}
	for _, t := range r.tuples {
		if !o.Contains(t) {
			return false
		}
	}
	return true
}

// Sorted returns the tuples in lexicographic order (a fresh slice).
func (r *Relation) Sorted() []Tuple {
	out := make([]Tuple, len(r.tuples))
	copy(out, r.tuples)
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// String renders the relation as "Name/arity{n tuples}".
func (r *Relation) String() string {
	return fmt.Sprintf("%s/%d{%d tuples}", r.name, r.arity, len(r.tuples))
}

// Dump renders the full contents, sorted, for debugging and golden tests.
func (r *Relation) Dump() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s/%d:\n", r.name, r.arity)
	for _, t := range r.Sorted() {
		sb.WriteString("  ")
		sb.WriteString(t.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Database is a named collection of relations: the paper's DB, a finite
// set of facts grouped by relation symbol.
//
// A Database is safe for concurrent use: Put and the read accessors may
// be called from multiple goroutines (the mr package's DAG scheduler
// publishes job outputs into a shared working database while dependent
// jobs read their inputs from it). Individual Relations are not locked;
// callers must not mutate a relation after publishing it with Put.
type Database struct {
	mu    sync.RWMutex
	rels  map[string]*Relation
	order []string // deterministic iteration order (insertion order)
	gen   uint64   // bumped by every Put/Drop; see Generation
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{rels: make(map[string]*Relation)}
}

// Put registers rel under its name, replacing any existing relation with
// the same name.
func (db *Database) Put(rel *Relation) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, exists := db.rels[rel.Name()]; !exists {
		db.order = append(db.order, rel.Name())
	}
	db.rels[rel.Name()] = rel
	db.gen++
}

// Drop removes the relation with the given name, reporting whether it
// existed. Like Put it bumps the database generation.
func (db *Database) Drop(name string) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.rels[name]; !ok {
		return false
	}
	delete(db.rels, name)
	for i, n := range db.order {
		if n == name {
			db.order = append(db.order[:i], db.order[i+1:]...)
			break
		}
	}
	db.gen++
	return true
}

// Generation returns a counter that increases on every mutation of the
// database's relation mapping (Put or Drop). Two reads of the same
// database returning the same generation are guaranteed to have observed
// the same set of relations (individual relations must not be mutated
// after publication, per the concurrency contract above). Plan caches use
// the generation as a cheap schema-and-content fingerprint: any load or
// drop invalidates entries keyed under the previous generation.
func (db *Database) Generation() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.gen
}

// Relation returns the relation with the given name, or nil.
func (db *Database) Relation(name string) *Relation {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.rels[name]
}

// Has reports whether a relation with the given name exists.
func (db *Database) Has(name string) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	_, ok := db.rels[name]
	return ok
}

// Names returns relation names in insertion order.
func (db *Database) Names() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, len(db.order))
	copy(out, db.order)
	return out
}

// Relations returns all relations in insertion order.
func (db *Database) Relations() []*Relation {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]*Relation, 0, len(db.order))
	for _, n := range db.order {
		out = append(out, db.rels[n])
	}
	return out
}

// Bytes returns the total modelled size of all relations.
func (db *Database) Bytes() int64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var total int64
	for _, r := range db.rels {
		total += r.Bytes()
	}
	return total
}

// Clone returns a deep copy of the database.
func (db *Database) Clone() *Database {
	db.mu.RLock()
	defer db.mu.RUnlock()
	c := NewDatabase()
	for _, n := range db.order {
		c.Put(db.rels[n].Clone())
	}
	return c
}

// String summarizes the database contents.
func (db *Database) String() string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var sb strings.Builder
	sb.WriteString("DB{")
	for i, n := range db.order {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(db.rels[n].String())
	}
	sb.WriteString("}")
	return sb.String()
}
