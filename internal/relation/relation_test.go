package relation

import (
	"bytes"
	"strings"
	"testing"
)

func TestRelationSetSemantics(t *testing.T) {
	r := New("R", 2)
	if !r.Add(mkTuple(1, 2)) {
		t.Error("first Add returned false")
	}
	if r.Add(mkTuple(1, 2)) {
		t.Error("duplicate Add returned true")
	}
	if r.Size() != 1 {
		t.Errorf("Size = %d, want 1", r.Size())
	}
	if !r.Contains(mkTuple(1, 2)) || r.Contains(mkTuple(2, 1)) {
		t.Error("Contains wrong")
	}
}

func TestRelationArityPanic(t *testing.T) {
	r := New("R", 2)
	defer func() {
		if recover() == nil {
			t.Fatal("arity mismatch did not panic")
		}
	}()
	r.Add(mkTuple(1))
}

func TestNewZeroArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with arity 0 did not panic")
		}
	}()
	New("R", 0)
}

func TestRelationBytes(t *testing.T) {
	r := New("R", 4)
	r.Add(mkTuple(1, 2, 3, 4))
	r.Add(mkTuple(5, 6, 7, 8))
	if got := r.Bytes(); got != 2*4*BytesPerField {
		t.Errorf("Bytes = %d", got)
	}
	if got := r.TupleBytes(); got != 4*BytesPerField {
		t.Errorf("TupleBytes = %d", got)
	}
}

func TestRelationEqualIgnoresOrderAndName(t *testing.T) {
	a := FromTuples("A", 2, []Tuple{mkTuple(1, 2), mkTuple(3, 4)})
	b := FromTuples("B", 2, []Tuple{mkTuple(3, 4), mkTuple(1, 2)})
	if !a.Equal(b) {
		t.Error("same tuple sets reported unequal")
	}
	b.Add(mkTuple(5, 6))
	if a.Equal(b) {
		t.Error("different tuple sets reported equal")
	}
}

func TestRelationCloneIndependent(t *testing.T) {
	a := FromTuples("A", 1, []Tuple{mkTuple(1)})
	b := a.Clone()
	b.Add(mkTuple(2))
	if a.Size() != 1 || b.Size() != 2 {
		t.Errorf("clone not independent: %d %d", a.Size(), b.Size())
	}
}

func TestRelationRenameSharesData(t *testing.T) {
	a := FromTuples("A", 1, []Tuple{mkTuple(1)})
	b := a.Rename("B")
	if b.Name() != "B" || b.Size() != 1 {
		t.Errorf("rename wrong: %s %d", b.Name(), b.Size())
	}
}

func TestRelationSortedAndDump(t *testing.T) {
	r := FromTuples("R", 2, []Tuple{mkTuple(3, 1), mkTuple(1, 2), mkTuple(1, 1)})
	s := r.Sorted()
	if !s[0].Equal(mkTuple(1, 1)) || !s[2].Equal(mkTuple(3, 1)) {
		t.Errorf("Sorted = %v", s)
	}
	d := r.Dump()
	if !strings.Contains(d, "R/2") || !strings.Contains(d, "(1, 2)") {
		t.Errorf("Dump = %q", d)
	}
}

func TestDatabaseBasics(t *testing.T) {
	db := NewDatabase()
	db.Put(FromTuples("R", 2, []Tuple{mkTuple(1, 2)}))
	db.Put(FromTuples("S", 1, []Tuple{mkTuple(1)}))
	if !db.Has("R") || db.Has("T") {
		t.Error("Has wrong")
	}
	if db.Relation("S").Size() != 1 {
		t.Error("Relation lookup wrong")
	}
	if got := db.Names(); len(got) != 2 || got[0] != "R" || got[1] != "S" {
		t.Errorf("Names = %v", got)
	}
	if got := db.Bytes(); got != 2*BytesPerField+1*BytesPerField {
		t.Errorf("Bytes = %d", got)
	}
	// Replacing keeps order stable.
	db.Put(FromTuples("R", 2, []Tuple{mkTuple(9, 9), mkTuple(8, 8)}))
	if db.Relation("R").Size() != 2 {
		t.Error("replacement not applied")
	}
	if got := db.Names(); got[0] != "R" {
		t.Errorf("order changed after replace: %v", got)
	}
}

func TestDatabaseCloneIndependent(t *testing.T) {
	db := NewDatabase()
	db.Put(FromTuples("R", 1, []Tuple{mkTuple(1)}))
	c := db.Clone()
	c.Relation("R").Add(mkTuple(2))
	if db.Relation("R").Size() != 1 {
		t.Error("clone shares relations")
	}
}

func TestTSVRoundTrip(t *testing.T) {
	r := FromTuples("R", 3, []Tuple{
		{Int(1), String("bad"), Int(3)},
		{Int(4), String("good stuff"), Int(6)},
	})
	var buf bytes.Buffer
	if err := r.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTSV("R", 3, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Equal(back) {
		t.Errorf("round trip mismatch:\n%s\nvs\n%s", r.Dump(), back.Dump())
	}
}

func TestReadTSVErrors(t *testing.T) {
	_, err := ReadTSV("R", 2, strings.NewReader("1\t2\n3\n"))
	if err == nil {
		t.Error("short line accepted")
	}
	r, err := ReadTSV("R", 2, strings.NewReader("\n1\t2\n\n"))
	if err != nil || r.Size() != 1 {
		t.Errorf("blank lines mishandled: %v %v", r, err)
	}
}
