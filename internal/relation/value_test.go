package relation

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestIntRoundTrip(t *testing.T) {
	for _, n := range []int64{0, 1, 42, 1 << 40} {
		v := Int(n)
		if v.IsString() {
			t.Errorf("Int(%d) classified as string", n)
		}
		if got := v.Text(); got != fmt.Sprint(n) {
			t.Errorf("Int(%d).Text() = %q", n, got)
		}
	}
}

func TestIntPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Int(-1) did not panic")
		}
	}()
	Int(-1)
}

func TestStringInterning(t *testing.T) {
	a := String("bad")
	b := String("bad")
	c := String("good")
	if a != b {
		t.Errorf("same string interned twice: %d vs %d", a, b)
	}
	if a == c {
		t.Errorf("distinct strings share handle %d", a)
	}
	if !a.IsString() {
		t.Error("interned string not classified as string")
	}
	if a.Text() != "bad" || c.Text() != "good" {
		t.Errorf("Text round trip failed: %q %q", a.Text(), c.Text())
	}
}

func TestStringDistinctFromIntText(t *testing.T) {
	// The string "7" and the integer 7 are distinct domain values here;
	// ParseValue resolves bare decimal text to the integer.
	s := String("7")
	i := Int(7)
	if s == i {
		t.Error(`String("7") == Int(7)`)
	}
	if ParseValue("7") != i {
		t.Error(`ParseValue("7") != Int(7)`)
	}
}

func TestIntSigned(t *testing.T) {
	if IntSigned(5) != Int(5) {
		t.Error("IntSigned(5) != Int(5)")
	}
	v := IntSigned(-12)
	if !v.IsString() || v.Text() != "-12" {
		t.Errorf("IntSigned(-12) = %v (%q)", v, v.Text())
	}
}

func TestParseValue(t *testing.T) {
	cases := []struct {
		in       string
		isString bool
	}{
		{"0", false},
		{"123456789", false},
		{"-3", true},
		{"bad", true},
		{"3.5", true},
		{"", true},
	}
	for _, c := range cases {
		v := ParseValue(c.in)
		if v.IsString() != c.isString {
			t.Errorf("ParseValue(%q).IsString() = %v, want %v", c.in, v.IsString(), c.isString)
		}
		if v.Text() != c.in {
			t.Errorf("ParseValue(%q).Text() = %q", c.in, v.Text())
		}
	}
}

func TestInternConcurrency(t *testing.T) {
	const workers = 8
	var wg sync.WaitGroup
	results := make([][]Value, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			vals := make([]Value, 100)
			for i := range vals {
				vals[i] = String(fmt.Sprintf("conc-%d", i))
			}
			results[w] = vals
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		for i := range results[0] {
			if results[w][i] != results[0][i] {
				t.Fatalf("worker %d got different handle for conc-%d", w, i)
			}
		}
	}
}

func TestQuickParseValueTextRoundTrip(t *testing.T) {
	f := func(s string) bool {
		// Tab and newline are TSV delimiters and excluded from the domain.
		for _, r := range s {
			if r == '\t' || r == '\n' {
				return true
			}
		}
		return ParseValue(s).Text() == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickIntIdentity(t *testing.T) {
	f := func(n uint32) bool {
		return Int(int64(n)) == ParseValue(fmt.Sprint(n))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
