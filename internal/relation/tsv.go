package relation

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteTSV serializes the relation as tab-separated values, one tuple per
// line, in insertion order.
func (r *Relation) WriteTSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, t := range r.tuples {
		for i, v := range t {
			if i > 0 {
				if err := bw.WriteByte('\t'); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(v.Text()); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTSV parses tab-separated tuples into a new relation with the given
// name and arity. Blank lines are skipped. Lines with the wrong number of
// fields are an error.
func ReadTSV(name string, arity int, rd io.Reader) (*Relation, error) {
	r := New(name, arity)
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) != arity {
			return nil, fmt.Errorf("relation %s line %d: got %d fields, want %d", name, lineNo, len(fields), arity)
		}
		t := make(Tuple, arity)
		for i, f := range fields {
			t[i] = ParseValue(f)
		}
		r.Add(t)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("relation %s: %w", name, err)
	}
	return r, nil
}
