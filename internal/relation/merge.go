package relation

import "sync"

// Merge returns a relation of the given name and arity containing the
// union of srcs' tuples with first-occurrence dedup in source order:
// the result is bit-for-bit identical — tuple order included — to
// adding every tuple of every source, in order, to a fresh relation
// with Add. It is the job-output merge of the MapReduce engine (reduce
// tasks each produce a private output relation; the job's result is
// their ordered union), built to not be the serial tail of a job:
//
//   - keys are not recomputed: each source's key→position index is
//     inverted (in parallel across sources) to recover its keys in
//     insertion order;
//   - cross-source dedup runs in parallel over hash shards of the key
//     space, each shard scanning the precomputed hashes in global
//     order so a key's first occurrence wins regardless of scheduling;
//   - the surviving tuples and the result's index are assembled with
//     exact pre-sizing (see Grow for why that matters).
//
// Sources must not be mutated afterwards: with a single non-empty
// source the result shares its storage (as Rename does), and in
// general the result shares tuple and key storage with the sources.
// Empty or nil sources are skipped; non-empty sources of a different
// arity panic, as Add would. workers bounds the goroutines used
// (values below 2 merge serially).
func Merge(name string, arity int, srcs []*Relation, workers int) *Relation {
	live := make([]*Relation, 0, len(srcs))
	total := 0
	for _, s := range srcs {
		if s == nil || len(s.tuples) == 0 {
			continue
		}
		if s.arity != arity {
			panic("relation.Merge: source arity mismatch")
		}
		live = append(live, s)
		total += len(s.tuples)
	}
	if total == 0 {
		return New(name, arity)
	}
	if len(live) == 1 {
		return live[0].Rename(name)
	}

	offs := make([]int, len(live)+1)
	for i, s := range live {
		offs[i+1] = offs[i] + len(s.tuples)
	}
	// Recover each source's keys in insertion order by inverting its
	// index, and hash them for sharding. Sources write disjoint ranges.
	keys := make([]string, total)
	hashes := make([]uint32, total)
	runParallel(workers, len(live), func(i int) {
		base := offs[i]
		for k, pos := range live[i].index {
			keys[base+pos] = k
			hashes[base+pos] = fnv32a(k)
		}
	})

	// Shard-parallel first-occurrence dedup: shard s owns the keys whose
	// hash lands on it and scans them in global (source, position) order.
	shards := workers
	if shards > 16 {
		shards = 16
	}
	if shards < 1 {
		shards = 1
	}
	keep := make([]bool, total)
	counts := make([]int, shards)
	runParallel(shards, shards, func(s int) {
		seen := make(map[string]struct{}, total/shards+1)
		kept := 0
		for g, h := range hashes {
			if int(h%uint32(shards)) != s {
				continue
			}
			k := keys[g]
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			keep[g] = true
			kept++
		}
		counts[s] = kept
	})
	kept := 0
	for _, c := range counts {
		kept += c
	}

	// Assemble with exact pre-sizing, reusing the sources' key strings.
	out := &Relation{
		name:   name,
		arity:  arity,
		tuples: make([]Tuple, 0, kept),
		index:  make(map[string]int, kept),
	}
	for i, s := range live {
		base := offs[i]
		for j, t := range s.tuples {
			if keep[base+j] {
				out.index[keys[base+j]] = len(out.tuples)
				out.tuples = append(out.tuples, t)
			}
		}
	}
	return out
}

// fnv32a is FNV-1a over the key bytes: the same hash the MR engine
// shuffles with, reused here only to shard the dedup (any fixed hash
// would preserve the merge's determinism).
func fnv32a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// runParallel runs fn(0..n-1) on up to `workers` goroutines; with one
// worker (or one item) it runs inline. Used by Merge, whose work items
// are few and coarse (sources, shards).
func runParallel(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	ch := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range ch {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		ch <- i
	}
	close(ch)
	wg.Wait()
}
