// Package relation provides the relational substrate used throughout the
// repository: data values, tuples, set-semantics relations, and databases.
//
// Values are compact int64 handles. Non-negative handles denote integer
// data values directly; negative handles denote interned strings (see
// String and ValueText). This keeps tuples flat and hashable while still
// supporting the string constants that appear in SGF queries (e.g. the
// rating "bad" in the paper's Example 2).
package relation

import (
	"fmt"
	"strconv"
	"sync"
)

// Value is a single data value: a member of the paper's infinite domain D.
// Non-negative values are integers; negative values are handles of interned
// strings.
type Value int64

// internTable maps strings to negative Value handles, process-wide.
// Interning is global (rather than per-database) so that values remain
// comparable across databases, relations, and parsed queries.
type internTable struct {
	mu      sync.RWMutex
	byText  map[string]Value
	byValue []string // index i holds text for Value(-(i + 1))
}

var interned = &internTable{byText: make(map[string]Value)}

// String interns s and returns its Value handle. Repeated calls with the
// same string return the same handle.
func String(s string) Value {
	interned.mu.RLock()
	v, ok := interned.byText[s]
	interned.mu.RUnlock()
	if ok {
		return v
	}
	interned.mu.Lock()
	defer interned.mu.Unlock()
	if v, ok := interned.byText[s]; ok {
		return v
	}
	v = Value(-(len(interned.byValue) + 1))
	interned.byText[s] = v
	interned.byValue = append(interned.byValue, s)
	return v
}

// Int returns the Value for integer i. It panics if i is negative, since
// negative handles are reserved for interned strings; use String for
// arbitrary text or IntSigned for signed integer data.
func Int(i int64) Value {
	if i < 0 {
		panic(fmt.Sprintf("relation.Int: negative integer %d (reserved for interned strings); use relation.IntSigned", i))
	}
	return Value(i)
}

// IntSigned maps an arbitrary signed integer onto a Value by interning the
// decimal text of negative numbers. Non-negative numbers map directly.
func IntSigned(i int64) Value {
	if i >= 0 {
		return Value(i)
	}
	return String(strconv.FormatInt(i, 10))
}

// IsString reports whether v is an interned-string handle.
func (v Value) IsString() bool { return v < 0 }

// Text returns the human-readable form of v: the decimal representation
// for integers, or the interned string.
func (v Value) Text() string {
	if v >= 0 {
		return strconv.FormatInt(int64(v), 10)
	}
	interned.mu.RLock()
	defer interned.mu.RUnlock()
	idx := int(-v) - 1
	if idx >= len(interned.byValue) {
		return fmt.Sprintf("<bad-handle:%d>", int64(v))
	}
	return interned.byValue[idx]
}

// String implements fmt.Stringer.
func (v Value) String() string { return v.Text() }

// ParseValue parses text into a Value: decimal non-negative integers map
// to integer values; everything else (including negative numbers and
// quoted text) is interned as a string.
func ParseValue(text string) Value {
	if n, err := strconv.ParseInt(text, 10, 64); err == nil && n >= 0 {
		return Value(n)
	}
	return String(text)
}
