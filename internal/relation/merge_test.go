package relation

import (
	"fmt"
	"math/rand"
	"testing"
)

// refMerge is the serial merge Merge must reproduce bit for bit: every
// source's tuples added in order to a fresh relation (the MR engine's
// pre-parallel job epilogue).
func refMerge(name string, arity int, srcs []*Relation) *Relation {
	out := New(name, arity)
	for _, s := range srcs {
		if s == nil {
			continue
		}
		for _, t := range s.Tuples() {
			out.Add(t)
		}
	}
	return out
}

// sameOrdered compares name, arity, and exact tuple iteration order.
func sameOrdered(a, b *Relation) error {
	if a.Name() != b.Name() || a.Arity() != b.Arity() {
		return fmt.Errorf("header %s/%d vs %s/%d", a.Name(), a.Arity(), b.Name(), b.Arity())
	}
	if a.Size() != b.Size() {
		return fmt.Errorf("size %d vs %d", a.Size(), b.Size())
	}
	for i := 0; i < a.Size(); i++ {
		if !a.Tuple(i).Equal(b.Tuple(i)) {
			return fmt.Errorf("tuple %d: %v vs %v", i, a.Tuple(i), b.Tuple(i))
		}
	}
	return nil
}

// TestMergeMatchesSerialAdd drives Merge over randomized source sets —
// overlapping tuple sets, empty and nil sources, skewed sizes — at
// several worker counts and requires the exact tuple order and index
// behaviour of the serial Add loop.
func TestMergeMatchesSerialAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 40; trial++ {
		nsrc := rng.Intn(7)
		srcs := make([]*Relation, nsrc)
		universe := rng.Intn(300) + 1
		for i := range srcs {
			switch rng.Intn(8) {
			case 0:
				srcs[i] = nil
				continue
			case 1:
				srcs[i] = New("part", 2) // empty
				continue
			}
			r := New("part", 2)
			n := rng.Intn(400)
			for j := 0; j < n; j++ {
				v := int64(rng.Intn(universe))
				r.Add(Tuple{Value(v), Value(v % 17)})
			}
			srcs[i] = r
		}
		want := refMerge("Z", 2, srcs)
		for _, workers := range []int{0, 1, 2, 8} {
			got := Merge("Z", 2, srcs, workers)
			if err := sameOrdered(got, want); err != nil {
				t.Fatalf("trial %d workers %d: %v", trial, workers, err)
			}
			// The index must agree too: membership and positions.
			for i := 0; i < want.Size(); i++ {
				if !got.Contains(want.Tuple(i)) {
					t.Fatalf("trial %d workers %d: merged relation lost %v", trial, workers, want.Tuple(i))
				}
			}
		}
	}
}

func TestMergeEmptyAndSingle(t *testing.T) {
	if m := Merge("Z", 3, nil, 4); m.Size() != 0 || m.Arity() != 3 || m.Name() != "Z" {
		t.Errorf("empty merge = %s", m)
	}
	src := FromTuples("part", 1, []Tuple{{Value(1)}, {Value(2)}})
	m := Merge("Z", 1, []*Relation{nil, New("e", 1), src}, 4)
	if m.Name() != "Z" || m.Size() != 2 || !m.Tuple(0).Equal(src.Tuple(0)) {
		t.Errorf("single-source merge = %s", m)
	}
	// Adding to the merged relation must not be visible through src's
	// name change only — storage sharing is allowed, divergence is not
	// required; this just pins that the rename fast path keeps contents.
	if !m.Equal(src) {
		t.Error("single-source merge diverged from its source")
	}
}

func TestMergeArityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("arity mismatch did not panic")
		}
	}()
	Merge("Z", 2, []*Relation{FromTuples("p", 1, []Tuple{{Value(1)}})}, 1)
}

func TestClonePresizedAndDeep(t *testing.T) {
	r := New("R", 2)
	for i := int64(0); i < 100; i++ {
		r.Add(Tuple{Value(i), Value(i % 7)})
	}
	c := r.Clone()
	if !c.Equal(r) || c.Name() != r.Name() || c.Arity() != r.Arity() {
		t.Fatal("clone differs")
	}
	for i := 0; i < r.Size(); i++ {
		if !c.Tuple(i).Equal(r.Tuple(i)) {
			t.Fatalf("clone order differs at %d", i)
		}
	}
	// Deep: mutating an original tuple's values must not leak into the
	// clone, and growing the clone must not touch the original.
	r.Tuple(0)[0] = Value(999)
	if c.Tuple(0)[0] == Value(999) {
		t.Error("clone shares tuple storage")
	}
	c.Add(Tuple{Value(-1), Value(-2)})
	if r.Size() != 100 || c.Size() != 101 {
		t.Errorf("sizes: orig %d clone %d", r.Size(), c.Size())
	}
}

func TestAddAllAndGrow(t *testing.T) {
	r := New("R", 1)
	r.Add(Tuple{Value(1)})
	bulk := []Tuple{{Value(1)}, {Value(2)}, {Value(3)}, {Value(2)}}
	if added := r.AddAll(bulk); added != 2 {
		t.Errorf("AddAll added %d, want 2", added)
	}
	if r.Size() != 3 || !r.Contains(Tuple{Value(3)}) {
		t.Errorf("after AddAll: %s", r)
	}
	// Grow must be content-neutral and idempotent.
	r.Grow(1000)
	r.Grow(0)
	r.Grow(-5)
	if r.Size() != 3 || !r.Contains(Tuple{Value(1)}) || r.Contains(Tuple{Value(9)}) {
		t.Errorf("Grow changed contents: %s", r)
	}
	if r.Tuple(0)[0] != Value(1) || r.Tuple(2)[0] != Value(3) {
		t.Error("Grow changed tuple order")
	}
	// Growing then bulk-loading keeps set semantics.
	if added := r.AddAll([]Tuple{{Value(3)}, {Value(4)}}); added != 1 {
		t.Errorf("second AddAll added %d, want 1", added)
	}
}

func TestAddAllArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("arity mismatch did not panic")
		}
	}()
	New("R", 2).AddAll([]Tuple{{Value(1)}})
}
