package relation

import (
	"encoding/binary"
	"strings"
)

// Tuple is an ordered sequence of data values: the ā in a fact R(ā).
type Tuple []Value

// Equal reports whether t and u have the same length and values.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// Compare orders tuples lexicographically, shorter tuples first on ties.
func (t Tuple) Compare(u Tuple) int {
	n := len(t)
	if len(u) < n {
		n = len(u)
	}
	for i := 0; i < n; i++ {
		if t[i] != u[i] {
			if t[i] < u[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(t) < len(u):
		return -1
	case len(t) > len(u):
		return 1
	}
	return 0
}

// Clone returns an independent copy of t.
func (t Tuple) Clone() Tuple {
	u := make(Tuple, len(t))
	copy(u, t)
	return u
}

// Key returns a compact byte-string key identifying t, suitable for use as
// a map key or MapReduce shuffle key. Distinct tuples of the same arity
// produce distinct keys.
func (t Tuple) Key() string {
	var b [10]byte
	var sb strings.Builder
	sb.Grow(len(t) * 3)
	for _, v := range t {
		n := binary.PutVarint(b[:], int64(v))
		sb.Write(b[:n])
	}
	return sb.String()
}

// TupleFromKey decodes a key produced by Tuple.Key. It returns nil if the
// key is malformed.
func TupleFromKey(key string) Tuple {
	var t Tuple
	for len(key) > 0 {
		v, n := binary.Varint([]byte(key))
		if n <= 0 {
			return nil
		}
		t = append(t, Value(v))
		key = key[n:]
	}
	return t
}

// String renders the tuple as "(v1, v2, ...)".
func (t Tuple) String() string {
	var sb strings.Builder
	sb.WriteByte('(')
	for i, v := range t {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(v.Text())
	}
	sb.WriteByte(')')
	return sb.String()
}

// Project returns the tuple consisting of t's values at the given
// positions, in order. It panics on out-of-range positions.
func (t Tuple) Project(positions []int) Tuple {
	out := make(Tuple, len(positions))
	for i, p := range positions {
		out[i] = t[p]
	}
	return out
}
