package relation

import (
	"encoding/binary"
	"strings"
)

// Tuple is an ordered sequence of data values: the ā in a fact R(ā).
type Tuple []Value

// Equal reports whether t and u have the same length and values.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// Compare orders tuples lexicographically, shorter tuples first on ties.
func (t Tuple) Compare(u Tuple) int {
	n := len(t)
	if len(u) < n {
		n = len(u)
	}
	for i := 0; i < n; i++ {
		if t[i] != u[i] {
			if t[i] < u[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(t) < len(u):
		return -1
	case len(t) > len(u):
		return 1
	}
	return 0
}

// Clone returns an independent copy of t.
func (t Tuple) Clone() Tuple {
	u := make(Tuple, len(t))
	copy(u, t)
	return u
}

// AppendKey appends v's key encoding (a signed varint) to dst and
// returns the extended slice.
func (v Value) AppendKey(dst []byte) []byte {
	var b [binary.MaxVarintLen64]byte
	n := binary.PutVarint(b[:], int64(v))
	return append(dst, b[:n]...)
}

// AppendKey appends t's Key encoding to dst and returns the extended
// slice: the append-style form of Key for callers that build shuffle
// keys per tuple into a reused scratch buffer (see sgf.Projector's
// AppendKey for the mapper fast path that also skips materializing the
// projected tuple).
func (t Tuple) AppendKey(dst []byte) []byte {
	for _, v := range t {
		dst = v.AppendKey(dst)
	}
	return dst
}

// Key returns a compact byte-string key identifying t, suitable for use as
// a map key or MapReduce shuffle key. Distinct tuples of the same arity
// produce distinct keys.
func (t Tuple) Key() string {
	var buf [32]byte
	return string(t.AppendKey(buf[:0]))
}

// TupleFromKey decodes a key produced by Tuple.Key. It returns nil if the
// key is malformed.
func TupleFromKey(key string) Tuple { return tupleFromKey(key) }

// TupleFromKeyBytes is TupleFromKey over a byte-slice key — the form the
// MR engine hands reducers — without a string conversion. The key is
// only read during the call.
func TupleFromKeyBytes(key []byte) Tuple { return tupleFromKey(key) }

// tupleFromKey decodes a varint-sequence key from either representation
// without copying it.
func tupleFromKey[T ~string | ~[]byte](key T) Tuple {
	var t Tuple
	for i := 0; i < len(key); {
		v, n := varintAt(key, i)
		if n <= 0 {
			return nil
		}
		t = append(t, Value(v))
		i += n
	}
	return t
}

// varintAt decodes a signed varint starting at offset off of s, like
// binary.Varint but over a string or byte slice without copying. It
// returns the value and the number of bytes read (0 for truncated
// input, negative for overflow).
func varintAt[T ~string | ~[]byte](s T, off int) (int64, int) {
	var ux uint64
	var shift uint
	for i := 0; off+i < len(s); i++ {
		b := s[off+i]
		if i == binary.MaxVarintLen64 {
			return 0, -(i + 1) // overflow
		}
		if b < 0x80 {
			if i == binary.MaxVarintLen64-1 && b > 1 {
				return 0, -(i + 1) // overflow
			}
			ux |= uint64(b) << shift
			x := int64(ux >> 1)
			if ux&1 != 0 {
				x = ^x
			}
			return x, i + 1
		}
		ux |= uint64(b&0x7f) << shift
		shift += 7
	}
	return 0, 0 // truncated
}

// String renders the tuple as "(v1, v2, ...)".
func (t Tuple) String() string {
	var sb strings.Builder
	sb.WriteByte('(')
	for i, v := range t {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(v.Text())
	}
	sb.WriteByte(')')
	return sb.String()
}

// Project returns the tuple consisting of t's values at the given
// positions, in order. It panics on out-of-range positions.
func (t Tuple) Project(positions []int) Tuple {
	out := make(Tuple, len(positions))
	for i, p := range positions {
		out[i] = t[p]
	}
	return out
}
