package relation

import (
	"encoding/binary"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func mkTuple(vals ...int64) Tuple {
	t := make(Tuple, len(vals))
	for i, v := range vals {
		t[i] = Value(v)
	}
	return t
}

func TestTupleEqual(t *testing.T) {
	a := mkTuple(1, 2, 3)
	b := mkTuple(1, 2, 3)
	c := mkTuple(1, 2, 4)
	d := mkTuple(1, 2)
	if !a.Equal(b) {
		t.Error("equal tuples reported unequal")
	}
	if a.Equal(c) || a.Equal(d) {
		t.Error("unequal tuples reported equal")
	}
}

func TestTupleCompare(t *testing.T) {
	cases := []struct {
		a, b Tuple
		want int
	}{
		{mkTuple(1, 2), mkTuple(1, 2), 0},
		{mkTuple(1, 2), mkTuple(1, 3), -1},
		{mkTuple(2), mkTuple(1, 9), 1},
		{mkTuple(1), mkTuple(1, 0), -1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("%v.Compare(%v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := c.b.Compare(c.a); got != -c.want {
			t.Errorf("%v.Compare(%v) = %d, want %d", c.b, c.a, got, -c.want)
		}
	}
}

func TestTupleKeyRoundTrip(t *testing.T) {
	tuples := []Tuple{
		mkTuple(),
		mkTuple(0),
		mkTuple(1, 2, 3),
		{String("bad"), Int(4)},
		mkTuple(1 << 50),
	}
	for _, tp := range tuples {
		got := TupleFromKey(tp.Key())
		if len(tp) == 0 {
			if len(got) != 0 {
				t.Errorf("empty tuple round trip gave %v", got)
			}
			continue
		}
		if !got.Equal(tp) {
			t.Errorf("round trip %v -> %v", tp, got)
		}
	}
}

func TestTupleKeyInjective(t *testing.T) {
	// Distinct same-arity tuples must have distinct keys.
	seen := make(map[string]Tuple)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		tp := mkTuple(int64(rng.Intn(50)), int64(rng.Intn(50)))
		k := tp.Key()
		if prev, ok := seen[k]; ok && !prev.Equal(tp) {
			t.Fatalf("key collision: %v and %v -> %q", prev, tp, k)
		}
		seen[k] = tp
	}
}

func TestTupleProject(t *testing.T) {
	tp := mkTuple(10, 20, 30, 40)
	got := tp.Project([]int{3, 0, 0})
	if !got.Equal(mkTuple(40, 10, 10)) {
		t.Errorf("Project = %v", got)
	}
	if len(tp.Project(nil)) != 0 {
		t.Error("empty projection not empty")
	}
}

func TestTupleClone(t *testing.T) {
	a := mkTuple(1, 2)
	b := a.Clone()
	b[0] = Value(9)
	if a[0] != Value(1) {
		t.Error("Clone shares storage")
	}
}

func TestQuickTupleKeyRoundTrip(t *testing.T) {
	f := func(raw []int64) bool {
		tp := make(Tuple, len(raw))
		for i, v := range raw {
			tp[i] = Value(v)
		}
		back := TupleFromKey(tp.Key())
		if len(tp) == 0 {
			return len(back) == 0
		}
		return back.Equal(tp)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickCompareAntisymmetric(t *testing.T) {
	f := func(a, b []int64) bool {
		ta := make(Tuple, len(a))
		for i, v := range a {
			ta[i] = Value(v)
		}
		tb := make(Tuple, len(b))
		for i, v := range b {
			tb[i] = Value(v)
		}
		return ta.Compare(tb) == -tb.Compare(ta)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAppendKeyMatchesKey(t *testing.T) {
	f := func(raw []int64, prefix []byte) bool {
		tp := make(Tuple, len(raw))
		for i, v := range raw {
			tp[i] = Value(v)
		}
		got := tp.AppendKey(append([]byte(nil), prefix...))
		return string(got) == string(prefix)+tp.Key()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestValueAppendKeyMatchesVarint(t *testing.T) {
	f := func(v int64) bool {
		var b [binary.MaxVarintLen64]byte
		n := binary.PutVarint(b[:], v)
		return string(Value(v).AppendKey(nil)) == string(b[:n])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestVarintAtMatchesBinaryVarint(t *testing.T) {
	f := func(v int64, trailing []byte) bool {
		key := string(Value(v).AppendKey(nil)) + string(trailing)
		want, wantN := binary.Varint([]byte(key))
		got, gotN := varintAt(key, 0)
		gotB, gotBN := varintAt([]byte(key), 0)
		return got == want && gotN == wantN && gotB == want && gotBN == wantN
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestVarintAtMalformed(t *testing.T) {
	// Truncated: continuation bit set but string ends.
	if _, n := varintAt("\xff", 0); n != 0 {
		t.Errorf("truncated varint: n = %d, want 0", n)
	}
	if tp := TupleFromKey("\xff"); tp != nil {
		t.Errorf("TupleFromKey accepted truncated key: %v", tp)
	}
	if tp := TupleFromKeyBytes([]byte("\xff")); tp != nil {
		t.Errorf("TupleFromKeyBytes accepted truncated key: %v", tp)
	}
	// Overflow: 11 continuation bytes exceed MaxVarintLen64.
	over := strings.Repeat("\x80", 11) + "\x01"
	if _, n := varintAt(over, 0); n >= 0 {
		t.Errorf("overflowing varint: n = %d, want negative", n)
	}
	if tp := TupleFromKey(over); tp != nil {
		t.Errorf("TupleFromKey accepted overflowing key: %v", tp)
	}
}

func TestTupleFromKeyBytesMatchesString(t *testing.T) {
	f := func(raw []int64) bool {
		tp := make(Tuple, len(raw))
		for i, v := range raw {
			tp[i] = Value(v)
		}
		key := tp.Key()
		return TupleFromKeyBytes([]byte(key)).Equal(TupleFromKey(key))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
