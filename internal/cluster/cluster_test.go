package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cost"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func planOf(overhead float64, maps, reds []float64) cost.TaskPlan {
	return cost.TaskPlan{Overhead: overhead, MapTasks: maps, ReduceTasks: reds}
}

func TestSingleJobSingleTask(t *testing.T) {
	res := Simulate(Config{Nodes: 1, SlotsPerNode: 1}, []Job{
		{Name: "j", Plan: planOf(2, []float64{3}, []float64{4})},
	})
	// overhead 2 gates start; map 3; reduce 4 -> net 9.
	if !almostEq(res.NetTime, 9) {
		t.Errorf("NetTime = %v, want 9", res.NetTime)
	}
	if !almostEq(res.TotalTime, 2+3+4) {
		t.Errorf("TotalTime = %v", res.TotalTime)
	}
}

func TestMapWavesRespectSlots(t *testing.T) {
	// 4 maps of 1s on 2 slots: two waves -> maps end at 2, reduce at 3.
	res := Simulate(Config{Nodes: 1, SlotsPerNode: 2}, []Job{
		{Name: "j", Plan: planOf(0, []float64{1, 1, 1, 1}, []float64{1})},
	})
	if !almostEq(res.NetTime, 3) {
		t.Errorf("NetTime = %v, want 3", res.NetTime)
	}
}

func TestReducersWaitForAllMaps(t *testing.T) {
	// slowstart=1: even with free slots, the reduce cannot overlap maps.
	res := Simulate(Config{Nodes: 1, SlotsPerNode: 10}, []Job{
		{Name: "j", Plan: planOf(0, []float64{5, 1}, []float64{1})},
	})
	if !almostEq(res.NetTime, 6) {
		t.Errorf("NetTime = %v, want 6", res.NetTime)
	}
}

func TestIndependentJobsRunConcurrently(t *testing.T) {
	jobs := []Job{
		{Name: "a", Plan: planOf(0, []float64{4}, nil)},
		{Name: "b", Plan: planOf(0, []float64{4}, nil)},
	}
	res := Simulate(Config{Nodes: 1, SlotsPerNode: 2}, jobs)
	if !almostEq(res.NetTime, 4) {
		t.Errorf("concurrent NetTime = %v, want 4", res.NetTime)
	}
	res1 := Simulate(Config{Nodes: 1, SlotsPerNode: 1}, jobs)
	if !almostEq(res1.NetTime, 8) {
		t.Errorf("serialized NetTime = %v, want 8", res1.NetTime)
	}
	// Total time is slot-independent.
	if !almostEq(res.TotalTime, res1.TotalTime) {
		t.Errorf("TotalTime differs: %v vs %v", res.TotalTime, res1.TotalTime)
	}
}

func TestDependencyGating(t *testing.T) {
	jobs := []Job{
		{Name: "a", Plan: planOf(0, []float64{2}, []float64{2})},
		{Name: "b", Plan: planOf(0, []float64{3}, nil), Deps: []int{0}},
	}
	res := Simulate(Config{Nodes: 1, SlotsPerNode: 4}, jobs)
	if !almostEq(res.NetTime, 7) {
		t.Errorf("NetTime = %v, want 7", res.NetTime)
	}
	if !almostEq(res.Jobs[1].Start, 4) {
		t.Errorf("dependent job started at %v, want 4", res.Jobs[1].Start)
	}
}

func TestDiamondDependencies(t *testing.T) {
	jobs := []Job{
		{Name: "src", Plan: planOf(0, []float64{1}, nil)},
		{Name: "l", Plan: planOf(0, []float64{2}, nil), Deps: []int{0}},
		{Name: "r", Plan: planOf(0, []float64{5}, nil), Deps: []int{0}},
		{Name: "sink", Plan: planOf(0, []float64{1}, nil), Deps: []int{1, 2}},
	}
	res := Simulate(Config{Nodes: 1, SlotsPerNode: 4}, jobs)
	if !almostEq(res.NetTime, 7) {
		t.Errorf("NetTime = %v, want 7", res.NetTime)
	}
}

func TestOverheadDelaysDependentJobs(t *testing.T) {
	jobs := []Job{
		{Name: "a", Plan: planOf(1, []float64{1}, nil)},
		{Name: "b", Plan: planOf(1, []float64{1}, nil), Deps: []int{0}},
	}
	res := Simulate(Config{Nodes: 1, SlotsPerNode: 1}, jobs)
	// a: gate 1, map to 2. b: gate to 3, map to 4.
	if !almostEq(res.NetTime, 4) {
		t.Errorf("NetTime = %v, want 4", res.NetTime)
	}
	// Overheads count toward total time.
	if !almostEq(res.TotalTime, 1+1+1+1) {
		t.Errorf("TotalTime = %v, want 4", res.TotalTime)
	}
}

func TestEmptyJobCompletes(t *testing.T) {
	jobs := []Job{
		{Name: "empty", Plan: planOf(2, nil, nil)},
		{Name: "after", Plan: planOf(0, []float64{1}, nil), Deps: []int{0}},
	}
	res := Simulate(DefaultConfig(), jobs)
	if !almostEq(res.NetTime, 3) {
		t.Errorf("NetTime = %v, want 3", res.NetTime)
	}
}

func TestNoJobs(t *testing.T) {
	res := Simulate(DefaultConfig(), nil)
	if res.NetTime != 0 || res.TotalTime != 0 {
		t.Errorf("empty simulation: %+v", res)
	}
}

func TestCapacityWallEffect(t *testing.T) {
	// The Figure 7a effect: when one strategy's map demand exceeds the
	// slot pool, its net time jumps while a grouped strategy with fewer
	// tasks is unaffected.
	mapsFor := func(n int) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = 1
		}
		return out
	}
	cfg := Config{Nodes: 2, SlotsPerNode: 5} // 10 slots
	within := Simulate(cfg, []Job{{Name: "j", Plan: planOf(0, mapsFor(10), nil)}})
	over := Simulate(cfg, []Job{{Name: "j", Plan: planOf(0, mapsFor(11), nil)}})
	if !almostEq(within.NetTime, 1) || !almostEq(over.NetTime, 2) {
		t.Errorf("wave wall: within=%v over=%v", within.NetTime, over.NetTime)
	}
}

func TestSimulatePanicsOnSelfDep(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("self-dependency did not panic")
		}
	}()
	Simulate(DefaultConfig(), []Job{{Name: "x", Deps: []int{0}}})
}

func TestQuickTotalTimeInvariant(t *testing.T) {
	// Total time equals the sum of all durations + overheads regardless
	// of slot count; net time is monotone non-increasing in slots.
	f := func(durRaw []uint8, slots1, slots2 uint8) bool {
		if len(durRaw) == 0 {
			return true
		}
		if len(durRaw) > 12 {
			durRaw = durRaw[:12]
		}
		var maps []float64
		var want float64
		for _, d := range durRaw {
			v := float64(d%7) + 1
			maps = append(maps, v)
			want += v
		}
		s1 := int(slots1%8) + 1
		s2 := s1 + int(slots2%8) + 1
		job := []Job{{Name: "j", Plan: planOf(0, maps, nil)}}
		r1 := Simulate(Config{Nodes: 1, SlotsPerNode: s1}, job)
		r2 := Simulate(Config{Nodes: 1, SlotsPerNode: s2}, job)
		return almostEq(r1.TotalTime, want) && almostEq(r2.TotalTime, want) &&
			r2.NetTime <= r1.NetTime+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
