// Package cluster simulates the execution of a DAG of MapReduce jobs on a
// Hadoop/YARN cluster with a bounded pool of container slots, producing
// the two time metrics of §5.1:
//
//   - net time: elapsed (makespan) time from program start to the last
//     task finishing, with jobs gated by their dependencies and reducers
//     gated by the job's last map task (slowstart = 1 as in Appendix B);
//   - total time: the aggregate sum of time spent by all map and reduce
//     tasks (plus per-job overhead, modelling the application master).
//
// The simulator is a deterministic discrete-event list scheduler: ready
// tasks are assigned to free slots in job-index order (maps before the
// owning job's reduces). This reproduces the paper's wave effects — e.g.
// PAR's map demand exceeding cluster capacity at large data sizes
// (Figure 7a) shows up as extra waves and a net-time jump.
package cluster

import (
	"container/heap"
	"fmt"

	"repro/internal/cost"
)

// Config describes the simulated cluster. The paper's testbed is 10
// nodes with 10 YARN vcores each (Appendix B), giving 100 container
// slots shared by map and reduce tasks.
type Config struct {
	Nodes        int
	SlotsPerNode int
}

// DefaultConfig is the paper's 10-node cluster.
func DefaultConfig() Config { return Config{Nodes: 10, SlotsPerNode: 10} }

// Slots returns the total container pool size.
func (c Config) Slots() int {
	s := c.Nodes * c.SlotsPerNode
	if s < 1 {
		return 1
	}
	return s
}

// Job is one MR job to schedule: its per-task durations plus its
// dependencies (indices of jobs that must fully finish first).
type Job struct {
	Name string
	Plan cost.TaskPlan
	Deps []int
}

// JobTimes reports the simulated schedule of one job.
type JobTimes struct {
	Name       string
	Start, End float64
}

// Result is the outcome of a simulation.
type Result struct {
	NetTime   float64 // makespan in simulated seconds
	TotalTime float64 // Σ task durations + Σ job overheads
	Jobs      []JobTimes
}

// jobState tracks scheduling progress for one job.
type jobState struct {
	readyAt     float64 // when dependencies are done + overhead elapsed
	depsLeft    int
	nextMap     int
	mapsRunning int
	mapsDone    bool
	nextRed     int
	redsRunning int
	done        bool
	start, end  float64
	started     bool
}

// event is a running task completion.
type event struct {
	time float64
	job  int
	kind int // 0 = map, 1 = reduce
	seq  int // tiebreaker for determinism
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	if q[i].job != q[j].job {
		return q[i].job < q[j].job
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}
func (q *eventQueue) popMin() event  { return heap.Pop(q).(event) }
func (q *eventQueue) pushEv(e event) { heap.Push(q, e) }
func newEventQueue() *eventQueue     { q := &eventQueue{}; heap.Init(q); return q }
func (q eventQueue) empty() bool     { return len(q) == 0 }

// Simulate schedules jobs on the cluster and returns the time metrics.
// Dependencies must be acyclic and refer to smaller or larger indices
// freely; a job's reduce tasks start only after its own maps finish and
// its maps start only after all dependency jobs fully finish plus the
// job overhead (startup).
func Simulate(cfg Config, jobs []Job) Result {
	n := len(jobs)
	states := make([]*jobState, n)
	succ := make([][]int, n)
	for i, j := range jobs {
		states[i] = &jobState{depsLeft: len(j.Deps)}
		for _, d := range j.Deps {
			if d < 0 || d >= n {
				panic(fmt.Sprintf("cluster: job %d has out-of-range dep %d", i, d))
			}
			if d == i {
				panic(fmt.Sprintf("cluster: job %d depends on itself", i))
			}
			succ[d] = append(succ[d], i)
		}
	}
	now := 0.0
	for i, s := range states {
		if s.depsLeft == 0 {
			s.readyAt = now + jobs[i].Plan.Overhead
		}
	}

	slotsFree := cfg.Slots()
	events := newEventQueue()
	seq := 0
	totalTime := 0.0
	for _, j := range jobs {
		totalTime += j.Plan.Overhead
	}

	// launch assigns as many ready tasks as slots allow at time `now`.
	launch := func(now float64) {
		for slotsFree > 0 {
			scheduled := false
			for ji := range jobs {
				s := states[ji]
				if s.done || s.depsLeft > 0 || s.readyAt > now {
					continue
				}
				plan := &jobs[ji].Plan
				if s.nextMap < len(plan.MapTasks) {
					d := plan.MapTasks[s.nextMap]
					s.nextMap++
					s.mapsRunning++
					if !s.started {
						s.started = true
						s.start = now
					}
					totalTime += d
					events.pushEv(event{time: now + d, job: ji, kind: 0, seq: seq})
					seq++
					slotsFree--
					scheduled = true
					break
				}
				if s.mapsDone && s.nextRed < len(plan.ReduceTasks) {
					d := plan.ReduceTasks[s.nextRed]
					s.nextRed++
					s.redsRunning++
					if !s.started {
						s.started = true
						s.start = now
					}
					totalTime += d
					events.pushEv(event{time: now + d, job: ji, kind: 1, seq: seq})
					seq++
					slotsFree--
					scheduled = true
					break
				}
			}
			if !scheduled {
				return
			}
		}
	}

	// finishJob marks a job complete and releases dependents.
	var lastEnd float64
	finishJob := func(ji int, now float64) {
		s := states[ji]
		s.done = true
		s.end = now
		if now > lastEnd {
			lastEnd = now
		}
		for _, si := range succ[ji] {
			states[si].depsLeft--
			if states[si].depsLeft == 0 {
				states[si].readyAt = now + jobs[si].Plan.Overhead
			}
		}
	}

	// Zero-task jobs complete immediately when ready.
	completeEmpty := func(now float64) {
		for ji := range jobs {
			s := states[ji]
			plan := &jobs[ji].Plan
			if !s.done && s.depsLeft == 0 && s.readyAt <= now &&
				len(plan.MapTasks) == 0 && len(plan.ReduceTasks) == 0 {
				s.started = true
				s.start = now
				finishJob(ji, now)
			}
		}
	}

	for {
		completeEmpty(now)
		launch(now)
		if events.empty() {
			// Nothing running: either jump time forward to the next
			// overhead gate, or we are done.
			next := nextReadyAt(states, jobs, now)
			if next > now {
				now = next
				continue
			}
			break
		}
		e := events.popMin()
		now = e.time
		slotsFree++
		s := states[e.job]
		plan := &jobs[e.job].Plan
		if e.kind == 0 {
			s.mapsRunning--
			if s.nextMap == len(plan.MapTasks) && s.mapsRunning == 0 {
				s.mapsDone = true
				if len(plan.ReduceTasks) == 0 {
					finishJob(e.job, now)
				}
			}
		} else {
			s.redsRunning--
			if s.nextRed == len(plan.ReduceTasks) && s.redsRunning == 0 {
				finishJob(e.job, now)
			}
		}
	}

	res := Result{NetTime: lastEnd, TotalTime: totalTime}
	for i, s := range states {
		if !s.done {
			panic(fmt.Sprintf("cluster: job %d (%s) never completed; dependency cycle?", i, jobs[i].Name))
		}
		res.Jobs = append(res.Jobs, JobTimes{Name: jobs[i].Name, Start: s.start, End: s.end})
	}
	return res
}

func nextReadyAt(states []*jobState, jobs []Job, now float64) float64 {
	next := now
	for i, s := range states {
		if s.done || s.depsLeft > 0 {
			continue
		}
		plan := &jobs[i].Plan
		pending := s.nextMap < len(plan.MapTasks) || (s.mapsDone && s.nextRed < len(plan.ReduceTasks)) ||
			(len(plan.MapTasks) == 0 && len(plan.ReduceTasks) == 0)
		if pending && s.readyAt > now {
			if next == now || s.readyAt < next {
				next = s.readyAt
			}
		}
	}
	return next
}
