package cluster

import (
	"math/rand"
	"testing"

	"repro/internal/cost"
)

// randomDAG builds a random job DAG with random task durations.
func randomDAG(rng *rand.Rand, n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		var maps, reds []float64
		for m := 0; m < 1+rng.Intn(5); m++ {
			maps = append(maps, float64(1+rng.Intn(5)))
		}
		for r := 0; r < rng.Intn(3); r++ {
			reds = append(reds, float64(1+rng.Intn(5)))
		}
		var deps []int
		for d := 0; d < i; d++ {
			if rng.Intn(4) == 0 {
				deps = append(deps, d)
			}
		}
		jobs[i] = Job{
			Name: "j",
			Plan: cost.TaskPlan{MapTasks: maps, ReduceTasks: reds, Overhead: float64(rng.Intn(3))},
			Deps: deps,
		}
	}
	return jobs
}

// TestRandomDAGInvariants checks the scheduler's core invariants on
// random DAGs: every job completes; total time equals the sum of all
// durations plus overheads; net time is bounded below by the critical
// path of any single chain and above by full serialization; more slots
// never increase net time; net time never exceeds total time.
func TestRandomDAGInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(8)
		jobs := randomDAG(rng, n)
		var wantTotal float64
		for _, j := range jobs {
			wantTotal += j.Plan.Overhead
			for _, d := range j.Plan.MapTasks {
				wantTotal += d
			}
			for _, d := range j.Plan.ReduceTasks {
				wantTotal += d
			}
		}
		small := Simulate(Config{Nodes: 1, SlotsPerNode: 1}, jobs)
		big := Simulate(Config{Nodes: 4, SlotsPerNode: 8}, jobs)
		for _, res := range []Result{small, big} {
			if len(res.Jobs) != n {
				t.Fatalf("trial %d: %d jobs finished, want %d", trial, len(res.Jobs), n)
			}
			if !almostEq(res.TotalTime, wantTotal) {
				t.Fatalf("trial %d: total %v, want %v", trial, res.TotalTime, wantTotal)
			}
			if res.NetTime > res.TotalTime+1e-9 {
				t.Fatalf("trial %d: net %v > total %v", trial, res.NetTime, res.TotalTime)
			}
		}
		if big.NetTime > small.NetTime+1e-9 {
			t.Fatalf("trial %d: more slots increased net time (%v -> %v)",
				trial, small.NetTime, big.NetTime)
		}
		// Single-slot run serializes all tasks; job-start overheads may
		// overlap other jobs' running tasks (the AM gate is not
		// slot-bound), so net lies between Σ task durations and total.
		var taskSum float64
		for _, j := range jobs {
			for _, d := range j.Plan.MapTasks {
				taskSum += d
			}
			for _, d := range j.Plan.ReduceTasks {
				taskSum += d
			}
		}
		if small.NetTime < taskSum-1e-9 {
			t.Fatalf("trial %d: single slot net %v below task sum %v",
				trial, small.NetTime, taskSum)
		}
		// Job end times respect dependencies.
		for i, j := range jobs {
			for _, d := range j.Deps {
				if big.Jobs[d].End > big.Jobs[i].Start+1e-9 {
					t.Fatalf("trial %d: job %d started before dep %d ended", trial, i, d)
				}
			}
		}
	}
}
