package lab

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"time"

	gumbo "repro"

	"repro/internal/mr"
)

// The cancellation sweep: where sweep.go checks that every strategy
// and width computes the same thing, the cancel sweep checks that
// stopping a run mid-flight is clean. Each scenario is run once to
// count its task grants, then canceled at a seeded random grant index
// and checked for the engine's cancellation contract: the run returns
// context.Canceled within a bounded number of further grants, the
// input database is untouched, no goroutines leak, and a clean re-run
// afterwards reproduces the golden result bit for bit (no pollution of
// process or plan state). Scenarios run serially — the fault-injection
// seam (mr.SetFaultHooks) is process-wide.

// CancelFailure is one scenario that violated the contract.
type CancelFailure struct {
	Scenario string
	Boundary int // grant index the run was canceled at
	Detail   string
}

// CancelReport aggregates a cancellation sweep.
type CancelReport struct {
	Scenarios int
	Failures  []CancelFailure
}

// RunCancelSweep runs the cancellation check for every scenario at the
// widest configured pool width (the most scheduling interleavings).
func RunCancelSweep(scenarios []Scenario, cfg SweepConfig) *CancelReport {
	cfg = cfg.normalized()
	width := cfg.Widths[len(cfg.Widths)-1]
	sys := gumbo.New(gumbo.WithHostWorkers(width), gumbo.WithScale(cfg.Scale))
	rep := &CancelReport{Scenarios: len(scenarios)}
	for _, sc := range scenarios {
		if boundary, detail := cancelScenario(sys, sc, width); detail != "" {
			rep.Failures = append(rep.Failures, CancelFailure{Scenario: sc.Name, Boundary: boundary, Detail: detail})
		}
	}
	return rep
}

// cancelScenario checks one scenario; returns the chosen boundary and
// a non-empty detail on violation.
func cancelScenario(sys *gumbo.System, sc Scenario, width int) (int, string) {
	q, err := gumbo.Parse(sc.Source())
	if err != nil {
		return 0, "parse: " + err.Error()
	}
	db := sc.Build()
	plan, err := sys.Plan(q, db, sys.Auto(q))
	if err != nil {
		return 0, "plan: " + err.Error()
	}
	baseline := runtime.NumGoroutine()

	// Golden run, counting task grants (deterministic per plan+data).
	var grants atomic.Int64
	restore := mr.SetFaultHooks(mr.FaultHooks{Grant: func(int) { grants.Add(1) }})
	golden, err := sys.RunPlan(plan, db)
	restore()
	if err != nil {
		return 0, "golden run: " + err.Error()
	}
	total := int(grants.Load())
	if total == 0 {
		return 0, "golden run granted no tasks"
	}

	// Cancel at a seeded random task boundary.
	k := rand.New(rand.NewSource(sc.Seed ^ 0xcab005e)).Intn(total)
	gen := db.Generation()
	//lint:ignore ctxpass the cancel sweep owns the lifetime of the run it cancels; it manufactures the very context under test
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var n atomic.Int64
	restore = mr.SetFaultHooks(mr.FaultHooks{Grant: func(i int) {
		n.Add(1)
		if i == k {
			cancel()
		}
	}})
	_, err = sys.RunPlanCtx(ctx, plan, db)
	restore()
	if !errors.Is(err, context.Canceled) {
		return k, fmt.Sprintf("canceled run returned %v, want context.Canceled", err)
	}
	if got := int(n.Load()); got > k+width {
		return k, fmt.Sprintf("%d grants after cancel at %d, want <= %d", got, k, k+width)
	}
	if db.Generation() != gen {
		return k, "canceled run mutated the input database"
	}
	settleBy := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(settleBy) {
		time.Sleep(time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > baseline {
		return k, fmt.Sprintf("goroutines did not settle: %d, baseline %d", got, baseline)
	}

	// Clean re-run: bit-for-bit against the golden result.
	again, err := sys.RunPlan(plan, db)
	if err != nil {
		return k, "post-cancel re-run: " + err.Error()
	}
	if d := diffBitForBit(golden, again); d != "" {
		return k, "post-cancel re-run diverges from golden: " + d
	}
	return k, ""
}
