package lab

import (
	"math/rand"

	gumbo "repro"

	"repro/internal/relation"
	"repro/internal/sgf"
)

// Chain correlation: the workload builder draws every base relation's
// values independently, so a conditional atom over an earlier query's
// output — the defining construct of the chain and multi shapes —
// almost never matches: the output holds values projected from one
// guard's columns, the next guard's columns are drawn from a different
// stream, and the chain runs dry after its first link (the frozen
// chain goldens used to read {163, 0, 0}). correlateOutputRefs repairs
// this after the base build: for a fraction of each affected guard's
// tuples it copies column values from actual output tuples (computed
// by the reference evaluator on the data built so far) into the guard
// positions the output-referencing atom reads, and seeds the query's
// positive base atoms with tuples matching the rewritten guard row, so
// downstream outputs are selective but nonempty. Deterministic in the
// scenario seed.

// correlateFrac is the fraction of guard tuples rewritten to flow
// through output-referencing atoms: high enough that conjunctions with
// ~0.5-selective base atoms keep a visible population, low enough that
// the output stays a strict subset of the guard.
const correlateFrac = 0.45

// polarity-aware leaf walk: positive atoms are collected, atoms under
// an odd number of negations are ignored (forcing a match there would
// shrink the output, not grow it).
func positiveAtoms(c sgf.Condition, neg bool, out *[]sgf.Atom) {
	switch x := c.(type) {
	case sgf.AtomCond:
		if !neg {
			*out = append(*out, x.Atom)
		}
	case sgf.Not:
		positiveAtoms(x.C, !neg, out)
	case sgf.And:
		for _, cc := range x.Cs {
			positiveAtoms(cc, neg, out)
		}
	case sgf.Or:
		for _, cc := range x.Cs {
			positiveAtoms(cc, neg, out)
		}
	}
}

// correlateOutputRefs rewrites db in place. Queries whose conditions
// never reference earlier outputs (and queries guarded by an output,
// which cannot be rewritten) are left untouched, so star- and
// union-shaped scenarios keep their pristine distributions.
func correlateOutputRefs(p *sgf.Program, db *relation.Database, seed int64) {
	defined := map[string]bool{}
	for qi, q := range p.Queries {
		var refs, bases []sgf.Atom
		var leaves []sgf.Atom
		positiveAtoms(q.Where, false, &leaves)
		for _, a := range leaves {
			if defined[a.Rel] {
				refs = append(refs, a)
			} else {
				bases = append(bases, a)
			}
		}
		defined[q.Name] = true
		if len(refs) == 0 || defined[q.Guard.Rel] {
			continue
		}
		guard := db.Relation(q.Guard.Rel)
		if guard == nil || guard.Size() == 0 {
			continue
		}
		// Positions of the guard's variables (guard atoms bind fresh
		// distinct variables, one per column).
		varPos := map[string]int{}
		for i, t := range q.Guard.Args {
			if t.IsVar() {
				varPos[t.Var] = i
			}
		}
		// The referenced outputs' actual contents, on the data correlated
		// so far (earlier chain links are already flowing when this query
		// is processed).
		gq, err := gumbo.Parse(p.String())
		if err != nil {
			return // generated programs always parse; bail rather than guess
		}
		outs, err := gumbo.EvalAll(gq, db)
		if err != nil {
			return
		}
		rng := rand.New(rand.NewSource(seed ^ 0x7ca1ee ^ int64(qi)*0x9e3779b9))
		rebuilt := relation.New(guard.Name(), guard.Arity())
		grown := map[string]*relation.Relation{} // cond relations gaining match tuples
		for _, t := range guard.Tuples() {
			nt := append(relation.Tuple(nil), t...)
			if rng.Float64() < correlateFrac {
				copied := false
				for _, a := range refs {
					src := outs.Relation(a.Rel)
					if src == nil || src.Size() == 0 {
						continue
					}
					o := src.Tuples()[rng.Intn(src.Size())]
					for j, arg := range a.Args {
						if pos, ok := varPos[arg.Var]; arg.IsVar() && ok {
							nt[pos] = o[j]
							copied = true
						}
					}
				}
				if copied {
					// The rewritten row must also pass the query's positive
					// base atoms, or a conjunction would drop it again: seed
					// each with the matching tuple.
					for _, a := range bases {
						rel := grown[a.Rel]
						if rel == nil {
							base := db.Relation(a.Rel)
							if base == nil {
								continue
							}
							rel = relation.New(base.Name(), base.Arity())
							for _, bt := range base.Tuples() {
								rel.Add(bt)
							}
							grown[a.Rel] = rel
						}
						match := make(relation.Tuple, len(a.Args))
						ok := true
						for j, arg := range a.Args {
							if arg.IsVar() {
								pos, bound := varPos[arg.Var]
								if !bound {
									ok = false
									break
								}
								match[j] = nt[pos]
							} else {
								match[j] = arg.Const
							}
						}
						if ok {
							rel.Add(match)
						}
					}
				}
			}
			rebuilt.Add(nt)
		}
		db.Put(rebuilt)
		for _, rel := range grown {
			db.Put(rel)
		}
	}
}
