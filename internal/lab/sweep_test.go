package lab

import (
	"strings"
	"testing"

	"repro/internal/sgf"
)

func smallSweepConfig() SweepConfig {
	cfg := DefaultSweepConfig()
	cfg.Widths = []int{1, 2}
	cfg.Shrink = false
	return cfg
}

// TestSweepSmallSeeds runs the full differential oracle over a handful
// of generated scenarios: every strategy and width must agree, with no
// divergences.
func TestSweepSmallSeeds(t *testing.T) {
	n := 6
	if testing.Short() {
		n = 2
	}
	scfg := DefaultScenarioConfig()
	scfg.GuardTuples, scfg.CondTuples = 300, 300
	res := RunSweep(GenScenarios(n, scfg), smallSweepConfig())
	for _, d := range res.Divergences {
		t.Errorf("divergence: %s/%s width %d: %s", d.Scenario, d.Strategy, d.Width, d.Detail)
	}
	if len(res.Runs) == 0 {
		t.Fatal("no runs recorded")
	}
	// Every scenario must execute under at least the three any-program
	// strategies (they never plan-reject).
	byScenario := map[string]int{}
	for _, r := range res.Runs {
		byScenario[r.Scenario]++
	}
	if len(byScenario) != n {
		t.Errorf("runs recorded for %d scenarios, want %d", len(byScenario), n)
	}
	for sc, count := range byScenario {
		if count < 3*2 {
			t.Errorf("scenario %s has only %d runs", sc, count)
		}
	}
}

// TestSweepCalibrates: calibration over sweep records fits constants
// and reports errors no worse than the defaults on its own data.
func TestSweepCalibrates(t *testing.T) {
	scfg := DefaultScenarioConfig()
	scfg.GuardTuples, scfg.CondTuples = 300, 300
	swcfg := smallSweepConfig()
	res := RunSweep(GenScenarios(3, scfg), swcfg)
	base := swcfg.BaseCostConfig()
	cal, err := Calibrate(res.Runs, base)
	if err != nil {
		t.Fatal(err)
	}
	if cal.Observations == 0 {
		t.Fatal("no observations")
	}
	if cal.FittedErr > cal.DefaultErr {
		t.Errorf("fitted error %.4f worse than default %.4f", cal.FittedErr, cal.DefaultErr)
	}
	if len(cal.Rows) == 0 {
		t.Error("no per-scenario rows")
	}
}

// TestShrinkMinimizes: the shrinker reduces a failing scenario to a
// minimal one under a synthetic predicate (failure = the program still
// mentions relation S0 and the guard data is above the floor).
func TestShrinkMinimizes(t *testing.T) {
	sc := GenScenario(1, DefaultScenarioConfig())
	fails := func(c Scenario) bool {
		return strings.Contains(c.Program.String(), "S0(") && c.GuardTuples >= 8
	}
	if !fails(sc) {
		t.Skip("seed 1 scenario no longer mentions S0")
	}
	min := Shrink(sc, fails)
	if !fails(min) {
		t.Fatal("shrunk scenario no longer fails")
	}
	// Halving from 2000 bottoms out at 15: one more halving gives 7,
	// which passes the predicate, so 15 is the 1-minimal size.
	if min.GuardTuples != 15 {
		t.Errorf("guard tuples not minimized: %d, want 15", min.GuardTuples)
	}
	if err := sgf.Validate(min.Program); err != nil {
		t.Errorf("shrunk program invalid: %v", err)
	}
	// 1-minimality: no single candidate reduction still fails.
	for _, cand := range shrinkCandidates(min) {
		if sgf.Validate(cand.Program) == nil && fails(cand) {
			t.Errorf("not minimal: candidate still fails:\n%s", cand.Program)
		}
	}
}

// TestReportWriters exercises the TSV/JSON writers on a real sweep.
func TestReportWriters(t *testing.T) {
	scfg := DefaultScenarioConfig()
	scfg.GuardTuples, scfg.CondTuples = 200, 200
	swcfg := smallSweepConfig()
	swcfg.Widths = []int{1}
	res := RunSweep(GenScenarios(2, scfg), swcfg)
	cal, err := Calibrate(res.Runs, swcfg.BaseCostConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep := NewReport(res, cal)
	var tsv, ctsv, js strings.Builder
	if err := rep.WriteRunsTSV(&tsv); err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteCalibrationTSV(&ctsv); err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(tsv.String(), "scenario\tshape\tprofile\tstrategy\twidth") {
		t.Error("runs TSV missing header")
	}
	if !strings.Contains(ctsv.String(), "TOTAL") {
		t.Error("calibration TSV missing TOTAL row")
	}
	if !strings.Contains(js.String(), "\"Calibration\"") {
		t.Error("JSON missing calibration")
	}
	if rep.Summary() == "" {
		t.Error("empty summary")
	}
}
