// Package lab is the generative workload laboratory: seeded random SGF
// programs over a shape grammar, composed with seeded data scenarios,
// swept under every evaluation strategy at several pool widths with a
// differential output oracle, and mined for cost-model calibration
// (docs/LAB.md). The paper's §5 evaluation fixes a handful of
// hand-written queries; the lab exercises query shapes and data
// distributions no one wrote by hand.
package lab

import (
	"fmt"
	"math/rand"

	"repro/internal/sgf"
)

// Shape names a family of generated program skeletons.
type Shape int

const (
	// ShapeStar: flat queries, each a conjunction of conditional atoms
	// over one guard — the paper's A-query family (shared keys, shared
	// relations, or neither).
	ShapeStar Shape = iota
	// ShapeUnion: flat queries with disjunctive (and partially negated)
	// conditions — the B2 family.
	ShapeUnion
	// ShapeChain: each query's condition references the previous query's
	// output, forming a dependency chain (C2 family).
	ShapeChain
	// ShapeNestedGuard: a later query uses an earlier query's output as
	// its guard relation.
	ShapeNestedGuard
	// ShapeMulti: a multi-output mix — flat, chained and nested-guard
	// queries with general condition trees and several sinks.
	ShapeMulti
	numShapes
)

// AllShapes lists every shape in declaration order.
func AllShapes() []Shape {
	out := make([]Shape, numShapes)
	for i := range out {
		out[i] = Shape(i)
	}
	return out
}

// String returns the shape's report name.
func (s Shape) String() string {
	switch s {
	case ShapeStar:
		return "star"
	case ShapeUnion:
		return "union"
	case ShapeChain:
		return "chain"
	case ShapeNestedGuard:
		return "nested"
	case ShapeMulti:
		return "multi"
	}
	return fmt.Sprintf("Shape(%d)", int(s))
}

// GenConfig bounds the program generator.
type GenConfig struct {
	MaxQueries int // queries per program (≥2; chains/multi use up to this)
	MaxArity   int // guard arity is drawn from [2, MaxArity]
	MaxAtoms   int // conditional atom leaves per query (≥2)
	MaxDepth   int // condition tree nesting depth (0 = single leaf)
}

// DefaultGenConfig returns the bounds used by the sweep: programs of up
// to four queries over guards of arity ≤ 4, conditions of up to five
// atoms nested two deep.
func DefaultGenConfig() GenConfig {
	return GenConfig{MaxQueries: 4, MaxArity: 4, MaxAtoms: 5, MaxDepth: 2}
}

// normalized clamps the config into its documented ranges.
func (c GenConfig) normalized() GenConfig {
	if c.MaxQueries < 2 {
		c.MaxQueries = 2
	}
	if c.MaxArity < 2 {
		c.MaxArity = 2
	}
	if c.MaxAtoms < 2 {
		c.MaxAtoms = 2
	}
	if c.MaxDepth < 0 {
		c.MaxDepth = 0
	}
	return c
}

// GenProgram generates a well-formed SGF program for the seed: the
// shape is drawn from the seed, then the skeleton is filled in. The
// result always passes sgf.Validate and round-trips through sgf.Parse
// (pinned by TestGenProgramValid and FuzzGenProgram): conditional atoms
// take only guard variables and constants as arguments, so guardedness
// holds by construction; relation arities are tracked program-wide; and
// queries reference only earlier outputs.
func GenProgram(seed int64, cfg GenConfig) (*sgf.Program, Shape) {
	rng := rand.New(rand.NewSource(seed))
	shape := Shape(rng.Intn(int(numShapes)))
	return genShaped(rng, shape, cfg), shape
}

// GenShapedProgram generates a program of the given shape.
func GenShapedProgram(seed int64, shape Shape, cfg GenConfig) *sgf.Program {
	rng := rand.New(rand.NewSource(seed))
	return genShaped(rng, shape, cfg)
}

type outRef struct {
	name  string
	arity int
}

// gen carries generator state: the RNG, the program-wide arity table
// (sgf.Validate requires each symbol to keep one arity), fresh-name
// counters and the outputs defined so far.
type gen struct {
	rng      *rand.Rand
	cfg      GenConfig
	relArity map[string]int
	guards   []string // base guard relations created so far
	conds    []string // base conditional relations created so far
	outputs  []outRef
	nGuard   int
	nCond    int
	nOut     int
}

func newGen(rng *rand.Rand, cfg GenConfig) *gen {
	return &gen{rng: rng, cfg: cfg.normalized(), relArity: map[string]int{}}
}

func genShaped(rng *rand.Rand, shape Shape, cfg GenConfig) *sgf.Program {
	g := newGen(rng, cfg)
	var p *sgf.Program
	switch shape {
	case ShapeStar:
		p = g.genStar()
	case ShapeUnion:
		p = g.genUnion()
	case ShapeChain:
		p = g.genChain()
	case ShapeNestedGuard:
		p = g.genNested()
	default:
		p = g.genMulti()
	}
	if err := sgf.Validate(p); err != nil {
		// Validity is by construction; a failure here is a generator bug.
		panic(fmt.Sprintf("lab: generated invalid program (seed state lost): %v\n%s", err, p))
	}
	return p
}

// vars returns a-many fresh variable names x0..x{a-1}.
func queryVars(a int) []string {
	vs := make([]string, a)
	for i := range vs {
		vs[i] = fmt.Sprintf("x%d", i)
	}
	return vs
}

// guardAtom returns a guard atom over fresh distinct variables, reusing
// an earlier guard relation about a third of the time (the paper's
// guard-sharing workloads) and minting a fresh one otherwise.
func (g *gen) guardAtom() (sgf.Atom, []string) {
	var name string
	if len(g.guards) > 0 && g.rng.Intn(3) == 0 {
		name = g.guards[g.rng.Intn(len(g.guards))]
	} else {
		name = fmt.Sprintf("R%d", g.nGuard)
		g.nGuard++
		g.relArity[name] = 2 + g.rng.Intn(g.cfg.MaxArity-1)
		g.guards = append(g.guards, name)
	}
	vs := queryVars(g.relArity[name])
	args := make([]sgf.Term, len(vs))
	for i, v := range vs {
		args[i] = sgf.V(v)
	}
	return sgf.NewAtom(name, args...), vs
}

// outputGuardAtom returns a guard atom over an earlier output (the
// nested-guard form), or ok=false when no output exists.
func (g *gen) outputGuardAtom() (sgf.Atom, []string, bool) {
	if len(g.outputs) == 0 {
		return sgf.Atom{}, nil, false
	}
	o := g.outputs[g.rng.Intn(len(g.outputs))]
	vs := queryVars(o.arity)
	args := make([]sgf.Term, len(vs))
	for i, v := range vs {
		args[i] = sgf.V(v)
	}
	return sgf.NewAtom(o.name, args...), vs, true
}

// baseCondAtom returns a conditional atom over a base relation: every
// argument is a guard variable or a constant, and at least one is a
// variable, so guardedness and non-emptiness hold by construction.
// Existing conditional relations are reused about half the time.
func (g *gen) baseCondAtom(guardVars []string) sgf.Atom {
	var name string
	if len(g.conds) > 0 && g.rng.Intn(2) == 0 {
		name = g.conds[g.rng.Intn(len(g.conds))]
	} else {
		name = fmt.Sprintf("S%d", g.nCond)
		g.nCond++
		g.relArity[name] = 1 + g.rng.Intn(2)
		g.conds = append(g.conds, name)
	}
	a := g.relArity[name]
	args := make([]sgf.Term, a)
	varAt := g.rng.Intn(a) // at least this position holds a variable
	for i := range args {
		if i == varAt || g.rng.Float64() < 0.8 {
			args[i] = sgf.V(guardVars[g.rng.Intn(len(guardVars))])
		} else {
			args[i] = sgf.CInt(int64(g.rng.Intn(8)))
		}
	}
	return sgf.NewAtom(name, args...)
}

// outputCondAtom returns a conditional atom over an earlier output
// whose arity fits into the guard variables, or ok=false.
func (g *gen) outputCondAtom(guardVars []string) (sgf.Atom, bool) {
	var fits []outRef
	for _, o := range g.outputs {
		if o.arity <= len(guardVars) {
			fits = append(fits, o)
		}
	}
	if len(fits) == 0 {
		return sgf.Atom{}, false
	}
	o := fits[g.rng.Intn(len(fits))]
	// Distinct guard variables, sampled without replacement.
	perm := g.rng.Perm(len(guardVars))
	args := make([]sgf.Term, o.arity)
	for i := range args {
		args[i] = sgf.V(guardVars[perm[i]])
	}
	return sgf.NewAtom(o.name, args...), true
}

// leaf returns one condition leaf: a conditional atom, negated with
// probability 1/5, over an earlier output (when allowed and available)
// a quarter of the time.
func (g *gen) leaf(guardVars []string, useOutputs bool) sgf.Condition {
	var atom sgf.Atom
	if useOutputs && g.rng.Intn(4) == 0 {
		if a, ok := g.outputCondAtom(guardVars); ok {
			atom = a
		} else {
			atom = g.baseCondAtom(guardVars)
		}
	} else {
		atom = g.baseCondAtom(guardVars)
	}
	var c sgf.Condition = sgf.AtomCond{Atom: atom}
	if g.rng.Intn(5) == 0 {
		c = sgf.Not{C: c}
	}
	return c
}

// genCond builds a condition tree of at most depth levels and *budget
// atom leaves (decremented per leaf).
func (g *gen) genCond(guardVars []string, depth int, budget *int, useOutputs bool) sgf.Condition {
	*budget--
	if depth <= 0 || *budget <= 0 || g.rng.Intn(3) == 0 {
		return g.leaf(guardVars, useOutputs)
	}
	n := 2 + g.rng.Intn(2)
	cs := make([]sgf.Condition, 0, n)
	for i := 0; i < n && (i == 0 || *budget > 0); i++ {
		cs = append(cs, g.genCond(guardVars, depth-1, budget, useOutputs))
	}
	if g.rng.Intn(2) == 0 {
		return sgf.AndOf(cs...)
	}
	return sgf.OrOf(cs...)
}

// selectVars picks a nonempty subset of the guard variables, in guard
// order.
func (g *gen) selectVars(guardVars []string) []string {
	var sel []string
	for _, v := range guardVars {
		if g.rng.Intn(2) == 0 {
			sel = append(sel, v)
		}
	}
	if len(sel) == 0 {
		sel = append(sel, guardVars[g.rng.Intn(len(guardVars))])
	}
	return sel
}

// define appends a finished query to the program and records its output.
func (g *gen) define(p *sgf.Program, guard sgf.Atom, sel []string, where sgf.Condition) *sgf.BSGF {
	g.nOut++
	q := &sgf.BSGF{
		Name:   fmt.Sprintf("Z%d", g.nOut),
		Select: sel,
		Guard:  guard,
		Where:  where,
	}
	p.Queries = append(p.Queries, q)
	g.relArity[q.Name] = len(sel)
	g.outputs = append(g.outputs, outRef{name: q.Name, arity: len(sel)})
	return q
}

// genStar: flat conjunctive queries. Each query AND-joins k atoms; with
// probability 1/3 all atoms share one key (the A3 pattern), otherwise
// keys are drawn independently (A1).
func (g *gen) genStar() *sgf.Program {
	p := &sgf.Program{}
	nq := 1 + g.rng.Intn(2)
	for i := 0; i < nq; i++ {
		guard, vars := g.guardAtom()
		k := 1 + g.rng.Intn(g.cfg.MaxAtoms)
		shared := g.rng.Intn(3) == 0
		key := vars[g.rng.Intn(len(vars))]
		cs := make([]sgf.Condition, k)
		for j := range cs {
			v := key
			if !shared {
				v = vars[g.rng.Intn(len(vars))]
			}
			cs[j] = sgf.AtomCond{Atom: g.baseCondAtom([]string{v})}
		}
		g.define(p, guard, g.selectVars(vars), sgf.AndOf(cs...))
	}
	return p
}

// genUnion: flat queries with disjunctive conditions, some leaves
// negated.
func (g *gen) genUnion() *sgf.Program {
	p := &sgf.Program{}
	nq := 1 + g.rng.Intn(2)
	for i := 0; i < nq; i++ {
		guard, vars := g.guardAtom()
		k := 2 + g.rng.Intn(g.cfg.MaxAtoms-1)
		cs := make([]sgf.Condition, k)
		for j := range cs {
			cs[j] = g.leaf(vars, false)
		}
		g.define(p, guard, g.selectVars(vars), sgf.OrOf(cs...))
	}
	return p
}

// genChain: query i's condition references query i−1's output.
func (g *gen) genChain() *sgf.Program {
	p := &sgf.Program{}
	depth := 2 + g.rng.Intn(g.cfg.MaxQueries-1)
	for i := 0; i < depth; i++ {
		guard, vars := g.guardAtom()
		var cs []sgf.Condition
		if i > 0 {
			prev := g.outputs[len(g.outputs)-1]
			if prev.arity <= len(vars) {
				perm := g.rng.Perm(len(vars))
				args := make([]sgf.Term, prev.arity)
				for j := range args {
					args[j] = sgf.V(vars[perm[j]])
				}
				cs = append(cs, sgf.AtomCond{Atom: sgf.NewAtom(prev.name, args...)})
			}
		}
		cs = append(cs, sgf.AtomCond{Atom: g.baseCondAtom(vars)})
		g.define(p, guard, g.selectVars(vars), sgf.AndOf(cs...))
	}
	return p
}

// genNested: a flat opener, then queries guarded by earlier outputs.
func (g *gen) genNested() *sgf.Program {
	p := &sgf.Program{}
	guard, vars := g.guardAtom()
	// The opener keeps at least two columns so the nested guard has keys
	// to join on.
	sel := vars[:2+g.rng.Intn(len(vars)-1)]
	budget := g.cfg.MaxAtoms
	g.define(p, guard, sel, g.genCond(vars, 1, &budget, false))
	levels := 1 + g.rng.Intn(2)
	for i := 0; i < levels; i++ {
		og, ovars, ok := g.outputGuardAtom()
		if !ok {
			break
		}
		b := g.cfg.MaxAtoms
		g.define(p, og, g.selectVars(ovars), g.genCond(ovars, 1, &b, false))
	}
	return p
}

// genMulti: a multi-output mix of flat, chained and nested queries with
// general condition trees.
func (g *gen) genMulti() *sgf.Program {
	p := &sgf.Program{}
	nq := 2 + g.rng.Intn(g.cfg.MaxQueries-1)
	for i := 0; i < nq; i++ {
		var guard sgf.Atom
		var vars []string
		if i > 0 && g.rng.Intn(4) == 0 {
			if og, ovars, ok := g.outputGuardAtom(); ok && len(ovars) >= 2 {
				guard, vars = og, ovars
			}
		}
		if vars == nil {
			guard, vars = g.guardAtom()
		}
		budget := g.cfg.MaxAtoms
		where := g.genCond(vars, g.cfg.MaxDepth, &budget, i > 0)
		g.define(p, guard, g.selectVars(vars), where)
	}
	return p
}
