package lab

import (
	"fmt"
	"reflect"
	"runtime"
	"sort"
	"time"

	gumbo "repro"

	"repro/internal/relation"
)

// AllStrategies returns every evaluation strategy the sweep exercises:
// the paper's flat strategies, the unit/program strategies, and the
// Hive/Pig baselines.
func AllStrategies() []gumbo.Strategy {
	return []gumbo.Strategy{
		gumbo.SEQ, gumbo.PAR, gumbo.Greedy, gumbo.Opt, gumbo.OneRound,
		gumbo.SeqUnit, gumbo.ParUnit, gumbo.GreedySGF,
		gumbo.HPAR, gumbo.HPARS, gumbo.PPAR,
	}
}

// SweepConfig configures a sweep run.
type SweepConfig struct {
	Widths       []int            // pool widths; default {1, 4, GOMAXPROCS}, deduped
	Strategies   []gumbo.Strategy // default AllStrategies
	Scale        float64          // cost-config scale (default 1e-4: makes lab-sized data cross split/buffer boundaries)
	OptAtomLimit int              // skip OPT above this many conditional atoms (default 6; Bell-number blowup)
	Shrink       bool             // shrink failing scenarios to a minimal reproduction
}

// DefaultSweepConfig returns the standard sweep settings.
func DefaultSweepConfig() SweepConfig {
	return SweepConfig{Scale: 1e-4, OptAtomLimit: 6, Shrink: true}
}

func (c SweepConfig) normalized() SweepConfig {
	if len(c.Widths) == 0 {
		c.Widths = []int{1, 4, runtime.GOMAXPROCS(0)}
	}
	seen := map[int]bool{}
	var widths []int
	for _, w := range c.Widths {
		if w < 1 {
			w = 1
		}
		if !seen[w] {
			seen[w] = true
			widths = append(widths, w)
		}
	}
	sort.Ints(widths)
	c.Widths = widths
	if len(c.Strategies) == 0 {
		c.Strategies = AllStrategies()
	}
	if c.Scale <= 0 {
		c.Scale = 1e-4
	}
	if c.OptAtomLimit <= 0 {
		c.OptAtomLimit = 6
	}
	return c
}

// RunRecord is one (scenario, strategy, width) execution.
type RunRecord struct {
	Scenario string
	Shape    string
	Profile  string
	Strategy string
	Width    int
	Jobs     int
	Rounds   int
	Seconds  float64           // measured wall-clock of the run
	Stats    []gumbo.JobStats  `json:"-"` // per-job measured sizes (calibration input)
	Timings  []gumbo.JobTiming `json:"-"` // per-job task seconds (calibration target)
}

// Skip records a strategy that does not apply to a scenario (a
// deterministic plan-time rejection, e.g. a flat-only strategy on a
// nested program, or OPT gated by the atom limit).
type Skip struct {
	Scenario string
	Strategy string
	Reason   string
}

// Divergence is an output mismatch the differential oracle found: the
// hard failure the sweep exists to catch.
type Divergence struct {
	Scenario string
	Strategy string
	Width    int
	Detail   string
	// MinimalSource/MinimalSeed describe the shrunken reproduction when
	// shrinking is enabled.
	MinimalSource string
	MinimalSeed   int64
}

// SweepResult aggregates a sweep.
type SweepResult struct {
	Scenarios   int
	Runs        []RunRecord
	Skips       []Skip
	Divergences []Divergence
}

// sweeper caches the per-width systems (a gumbo.System pins its pool
// width at construction).
type sweeper struct {
	cfg     SweepConfig
	systems map[int]*gumbo.System
}

func newSweeper(cfg SweepConfig) *sweeper {
	s := &sweeper{cfg: cfg, systems: map[int]*gumbo.System{}}
	for _, w := range cfg.Widths {
		s.systems[w] = gumbo.New(gumbo.WithHostWorkers(w), gumbo.WithScale(cfg.Scale))
	}
	return s
}

// RunSweep executes every scenario under every strategy and width,
// checking the differential oracle, and returns all records, skips and
// divergences. When cfg.Shrink is set, each divergent scenario is
// shrunk to a minimal failing reproduction (re-running the oracle on
// candidates).
func RunSweep(scenarios []Scenario, cfg SweepConfig) *SweepResult {
	cfg = cfg.normalized()
	sw := newSweeper(cfg)
	res := &SweepResult{Scenarios: len(scenarios)}
	for _, sc := range scenarios {
		runs, skips, divs := sw.runScenario(sc, true)
		res.Runs = append(res.Runs, runs...)
		res.Skips = append(res.Skips, skips...)
		if len(divs) > 0 && cfg.Shrink {
			min := Shrink(sc, func(cand Scenario) bool {
				_, _, d := sw.runScenario(cand, false)
				return len(d) > 0
			})
			for i := range divs {
				divs[i].MinimalSource = min.Source()
				divs[i].MinimalSeed = min.Seed
			}
		}
		res.Divergences = append(res.Divergences, divs...)
	}
	return res
}

// runScenario runs the full strategy × width matrix for one scenario
// and applies the differential oracle:
//
//   - same strategy across widths: bit-for-bit — identical relation
//     lists, identical tuple order within each relation, identical
//     per-job stats (the engine's determinism contract);
//   - across strategies: the program's defined outputs must agree as
//     tuple sets with the reference evaluator (strategies differ in
//     which intermediate X relations they materialize, so only defined
//     outputs are comparable, in canonical sorted order).
//
// record=false skips bookkeeping of run records (used while shrinking).
func (s *sweeper) runScenario(sc Scenario, record bool) (runs []RunRecord, skips []Skip, divs []Divergence) {
	q, err := gumbo.Parse(sc.Source())
	if err != nil {
		// Generated programs always parse (FuzzGenProgram pins this); a
		// failure here is itself a finding.
		divs = append(divs, Divergence{Scenario: sc.Name, Strategy: "parse", Detail: err.Error()})
		return
	}
	db := sc.Build()
	want, err := gumbo.EvalAll(q, db)
	if err != nil {
		divs = append(divs, Divergence{Scenario: sc.Name, Strategy: "refeval", Detail: err.Error()})
		return
	}
	for _, strat := range s.cfg.Strategies {
		if strat == gumbo.Opt && sc.CondAtomCount() > s.cfg.OptAtomLimit {
			skips = append(skips, Skip{Scenario: sc.Name, Strategy: string(strat),
				Reason: fmt.Sprintf("gated: %d conditional atoms > %d", sc.CondAtomCount(), s.cfg.OptAtomLimit)})
			continue
		}
		var base *gumbo.Result
		for _, w := range s.cfg.Widths {
			sys := s.systems[w]
			plan, err := sys.Plan(q, db, strat)
			if err != nil {
				// Plan-time rejection is deterministic across widths:
				// record once and move on.
				skips = append(skips, Skip{Scenario: sc.Name, Strategy: string(strat), Reason: err.Error()})
				break
			}
			start := time.Now()
			res, err := sys.RunPlan(plan, db)
			elapsed := time.Since(start).Seconds()
			if err != nil {
				divs = append(divs, Divergence{Scenario: sc.Name, Strategy: string(strat), Width: w,
					Detail: "run failed: " + err.Error()})
				break
			}
			if record {
				runs = append(runs, RunRecord{
					Scenario: sc.Name, Shape: sc.Shape.String(), Profile: sc.Profile.Name,
					Strategy: string(strat), Width: w,
					Jobs: res.Plan.Jobs(), Rounds: res.Plan.Rounds(), Seconds: elapsed,
					Stats: res.JobStats, Timings: res.JobTimings,
				})
			}
			if base == nil {
				base = res
				if d := diffOutputsVsReference(sc, res, want); d != "" {
					divs = append(divs, Divergence{Scenario: sc.Name, Strategy: string(strat), Width: w, Detail: d})
					break
				}
				continue
			}
			if d := diffBitForBit(base, res); d != "" {
				divs = append(divs, Divergence{Scenario: sc.Name, Strategy: string(strat), Width: w,
					Detail: fmt.Sprintf("width %d vs %d: %s", w, s.cfg.Widths[0], d)})
				break
			}
		}
	}
	return
}

// diffOutputsVsReference compares the run's program-defined outputs to
// the reference evaluator's, as tuple sets. Returns "" on agreement.
func diffOutputsVsReference(sc Scenario, res *gumbo.Result, want *gumbo.Database) string {
	for _, q := range sc.Program.Queries {
		got := res.Outputs.Relation(q.Name)
		ref := want.Relation(q.Name)
		if got == nil || ref == nil {
			if got == nil && ref == nil {
				continue
			}
			return fmt.Sprintf("output %s: present=%v in run, present=%v in reference", q.Name, got != nil, ref != nil)
		}
		if !got.Equal(ref) {
			return fmt.Sprintf("output %s: %d tuples vs reference %d (set mismatch)", q.Name, got.Size(), ref.Size())
		}
	}
	return ""
}

// diffBitForBit compares two runs of the same plan at different widths:
// every produced relation (including intermediates) must match in name,
// arity, and exact tuple order, and the per-job stats must be
// identical. Returns "" on agreement.
func diffBitForBit(a, b *gumbo.Result) string {
	if d := diffRelationList(a, b); d != "" {
		return d
	}
	if len(a.JobStats) != len(b.JobStats) {
		return fmt.Sprintf("%d job stats vs %d", len(a.JobStats), len(b.JobStats))
	}
	for i := range a.JobStats {
		if !reflect.DeepEqual(a.JobStats[i], b.JobStats[i]) {
			return fmt.Sprintf("job %d (%s): stats differ", i, a.JobStats[i].Name)
		}
	}
	return ""
}

// diffRelationList compares two runs' produced relations (including
// intermediates) in name, order and exact tuple sequence.
func diffRelationList(a, b *gumbo.Result) string {
	ar, br := a.Outputs.Relations(), b.Outputs.Relations()
	if len(ar) != len(br) {
		return fmt.Sprintf("%d relations vs %d", len(ar), len(br))
	}
	for i := range ar {
		if ar[i].Name() != br[i].Name() {
			return fmt.Sprintf("relation order: %s vs %s at %d", ar[i].Name(), br[i].Name(), i)
		}
		if d := diffTupleOrder(ar[i], br[i]); d != "" {
			return fmt.Sprintf("relation %s: %s", ar[i].Name(), d)
		}
	}
	return ""
}

// diffTupleOrder compares two relations tuple-for-tuple in iteration
// order (the bit-for-bit contract, stricter than set equality).
func diffTupleOrder(a, b *relation.Relation) string {
	if a.Arity() != b.Arity() {
		return fmt.Sprintf("arity %d vs %d", a.Arity(), b.Arity())
	}
	at, bt := a.Tuples(), b.Tuples()
	if len(at) != len(bt) {
		return fmt.Sprintf("%d tuples vs %d", len(at), len(bt))
	}
	for i := range at {
		if at[i].Compare(bt[i]) != 0 {
			return fmt.Sprintf("tuple %d: %s vs %s", i, at[i], bt[i])
		}
	}
	return ""
}
