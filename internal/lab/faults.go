package lab

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"time"

	gumbo "repro"

	"repro/internal/mr"
)

// The fault sweep: where the cancel sweep checks clean teardown under
// external cancellation, the fault sweep checks the memory-governance
// and panic-containment contracts under injected failures. Each
// scenario first runs clean — with spill forced on by a tiny threshold,
// so the sweep also exercises the spill read/write path — to record its
// golden result, task-grant count and charged-byte total. Then two
// faults are injected and, after each, the full teardown contract is
// re-checked (typed error, untouched input data, goroutines settled, no
// spill temp files left) and a clean re-run must reproduce the golden
// result bit for bit:
//
//   - panic: a task granted at a seeded random index panics with a
//     sentinel value; the engine must re-raise exactly that value on
//     the caller (the seam the server's query-boundary recover pins).
//   - budget exhaustion: the run repeats under a budget seeded strictly
//     below the golden charged total; it must abort with an error
//     matching gumbo.ErrBudgetExceeded.
//
// Scenarios run serially — the fault-injection seam (mr.SetFaultHooks)
// is process-wide.

// faultSpillThreshold forces lab-sized shuffle partitions to spill, so
// the leak check actually has temp files to observe in flight.
const faultSpillThreshold = 256

// FaultFailure is one violated check.
type FaultFailure struct {
	Scenario string
	Mode     string // "panic" | "budget"
	Boundary int    // grant index (panic) or budget limit in bytes (budget)
	Detail   string
}

// FaultReport aggregates a fault sweep.
type FaultReport struct {
	Scenarios int
	Checks    int // fault injections performed
	Failures  []FaultFailure
}

// RunFaultSweep runs the fault checks for every scenario at the widest
// configured pool width (the most scheduling interleavings).
func RunFaultSweep(scenarios []Scenario, cfg SweepConfig) *FaultReport {
	cfg = cfg.normalized()
	width := cfg.Widths[len(cfg.Widths)-1]
	rep := &FaultReport{Scenarios: len(scenarios)}
	spillDir, err := os.MkdirTemp("", "gumbo-lab-faults-")
	if err != nil {
		rep.Failures = append(rep.Failures, FaultFailure{Mode: "setup", Detail: "spill dir: " + err.Error()})
		return rep
	}
	defer os.RemoveAll(spillDir)
	sys := gumbo.New(
		gumbo.WithHostWorkers(width),
		gumbo.WithScale(cfg.Scale),
		gumbo.WithSpill(faultSpillThreshold, spillDir),
	)
	for _, sc := range scenarios {
		checks, fails := faultScenario(sys, sc, spillDir)
		rep.Checks += checks
		rep.Failures = append(rep.Failures, fails...)
	}
	return rep
}

// faultScenario injects both fault modes into one scenario.
func faultScenario(sys *gumbo.System, sc Scenario, spillDir string) (checks int, fails []FaultFailure) {
	fail := func(mode string, boundary int, format string, args ...any) {
		fails = append(fails, FaultFailure{Scenario: sc.Name, Mode: mode, Boundary: boundary,
			Detail: fmt.Sprintf(format, args...)})
	}
	q, err := gumbo.Parse(sc.Source())
	if err != nil {
		fail("setup", 0, "parse: %v", err)
		return
	}
	db := sc.Build()
	plan, err := sys.Plan(q, db, sys.Auto(q))
	if err != nil {
		fail("setup", 0, "plan: %v", err)
		return
	}
	baseline := runtime.NumGoroutine()

	// Golden run: grant count, charged total, reference result.
	var grants atomic.Int64
	restore := mr.SetFaultHooks(mr.FaultHooks{Grant: func(int) { grants.Add(1) }})
	golden, err := sys.RunPlan(plan, db)
	restore()
	if err != nil {
		fail("setup", 0, "golden run: %v", err)
		return
	}
	total := int(grants.Load())
	if total == 0 {
		fail("setup", 0, "golden run granted no tasks")
		return
	}
	gen := db.Generation()
	rnd := rand.New(rand.NewSource(sc.Seed ^ 0xfa017))

	// aftermath re-checks the teardown contract after one injected
	// fault: goroutines settled, input data untouched, no spill temp
	// files left, and a clean re-run bit-for-bit against golden.
	aftermath := func(mode string, boundary int) {
		settleBy := time.Now().Add(5 * time.Second)
		for runtime.NumGoroutine() > baseline && time.Now().Before(settleBy) {
			time.Sleep(time.Millisecond)
		}
		if got := runtime.NumGoroutine(); got > baseline {
			fail(mode, boundary, "goroutines did not settle: %d, baseline %d", got, baseline)
		}
		if db.Generation() != gen {
			fail(mode, boundary, "faulted run mutated the input database")
		}
		if leaked := spillFiles(spillDir); len(leaked) > 0 {
			fail(mode, boundary, "spill temp files leaked: %v", leaked)
		}
		again, err := sys.RunPlan(plan, db)
		if err != nil {
			fail(mode, boundary, "post-fault re-run: %v", err)
			return
		}
		if d := diffBitForBit(golden, again); d != "" {
			fail(mode, boundary, "post-fault re-run diverges from golden: %s", d)
		}
	}

	// Mode 1: a task panics at a seeded random grant index.
	checks++
	k := rnd.Intn(total)
	sentinel := fmt.Sprintf("lab: injected fault %s@%d", sc.Name, k)
	restore = mr.SetFaultHooks(mr.FaultHooks{Grant: func(i int) {
		if i == k {
			panic(sentinel)
		}
	}})
	var runErr error
	v := capturePanic(func() { _, runErr = sys.RunPlan(plan, db) })
	restore()
	if v == nil {
		fail("panic", k, "injected panic was not re-raised (err=%v)", runErr)
	} else if v != sentinel {
		fail("panic", k, "re-raised panic %v, want injected sentinel", v)
	}
	aftermath("panic", k)

	// Mode 2: a budget seeded strictly below the golden charged total.
	charged := golden.Mem.ChargedBytes
	if charged < 2 {
		// Degenerate scenario with no accounted allocations: nothing to
		// exhaust.
		return
	}
	checks++
	limit := 1 + rnd.Int63n(charged-1)
	//lint:ignore ctxpass the fault sweep owns the run it aborts; there is no caller context to thread
	_, err = sys.RunPlanGoverned(context.Background(), plan, db, nil, gumbo.NewBudget(limit))
	if !errors.Is(err, gumbo.ErrBudgetExceeded) {
		fail("budget", int(limit), "over-budget run returned %v, want ErrBudgetExceeded", err)
	}
	aftermath("budget", int(limit))
	return
}

// capturePanic runs fn and returns the value it panicked with (nil if
// it returned normally).
func capturePanic(fn func()) (v any) {
	defer func() { v = recover() }()
	fn()
	return nil
}

// spillFiles lists the engine spill files present under dir.
func spillFiles(dir string) []string {
	matches, _ := filepath.Glob(filepath.Join(dir, "gumbo-spill-*"))
	for i, m := range matches {
		matches[i] = filepath.Base(m)
	}
	return matches
}
