package lab

import (
	"testing"

	"repro/internal/sgf"
)

// FuzzGenProgram drives the program generator across its whole
// seed/config space: for any seed and any (clamped) bounds, the
// generated program must validate, parse, and print→reparse
// round-trip — the same contract FuzzParse pins for hand-written
// sources, here pinned for generated ones. The generator panics on
// internal inconsistency, so this also proves absence of generator
// crashes over the input space.
func FuzzGenProgram(f *testing.F) {
	f.Add(int64(1), 4, 4, 5, 2)
	f.Add(int64(42), 2, 2, 2, 0)
	f.Add(int64(-7), 8, 6, 9, 4)
	f.Add(int64(1<<40), 0, 0, 0, -1) // degenerate bounds exercise clamping
	f.Fuzz(func(t *testing.T, seed int64, maxQueries, maxArity, maxAtoms, maxDepth int) {
		// Wild bounds are clamped rather than rejected, but cap them here
		// so a fuzzer-found giant config cannot OOM the harness.
		cfg := GenConfig{
			MaxQueries: maxQueries % 8,
			MaxArity:   maxArity % 8,
			MaxAtoms:   maxAtoms % 12,
			MaxDepth:   maxDepth % 5,
		}
		p, _ := GenProgram(seed, cfg)
		if err := sgf.Validate(p); err != nil {
			t.Fatalf("invalid program for seed %d cfg %+v: %v\n%s", seed, cfg, err, p)
		}
		printed := p.String()
		p2, err := sgf.Parse(printed)
		if err != nil {
			t.Fatalf("reparse failed for seed %d cfg %+v: %v\n%s", seed, cfg, err, printed)
		}
		if got := p2.String(); got != printed {
			t.Fatalf("round trip unstable for seed %d cfg %+v:\n%s\n->\n%s", seed, cfg, printed, got)
		}
	})
}
