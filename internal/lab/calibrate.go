package lab

import (
	"fmt"

	"repro/internal/cost"
)

// CalibrationRow is the estimation-vs-actual error of one scenario.
type CalibrationRow struct {
	Scenario   string
	Jobs       int     // observations (jobs) from this scenario
	Seconds    float64 // total measured task seconds
	DefaultErr float64 // mean |predicted−measured|/measured under the base config
	FittedErr  float64 // same under the fitted config
}

// Calibration is the result of fitting cost.Config constants to the
// sweep's measurements.
type Calibration struct {
	Base         cost.Config
	Fit          cost.FitResult
	Rows         []CalibrationRow
	Observations int
	DefaultErr   float64 // mean error across all observations, base config
	FittedErr    float64 // same, fitted config
}

// BaseCostConfig returns the cost configuration the sweep's systems run
// under (the defaults at the sweep's scale) — the base config to pass to
// Calibrate.
func (c SweepConfig) BaseCostConfig() cost.Config {
	return cost.Default().Scaled(c.normalized().Scale)
}

// Calibrate fits the cost model's linear constants to the sweep's
// width-1 runs: each executed job contributes one observation pairing
// its measured size spec (JobStats.CostSpec) with its measured summed
// task wall-clock (JobTiming.TotalSeconds). Width-1 runs are used
// because a single worker executes tasks back to back — summed task
// time is undiluted by scheduling overlap. The base config must be the
// one the sweep ran under (it supplies split/buffer settings for the
// feature computation).
func Calibrate(runs []RunRecord, base cost.Config) (*Calibration, error) {
	var all []cost.Observation
	byScenario := map[string][]cost.Observation{}
	var order []string
	for _, r := range runs {
		if r.Width != 1 {
			continue
		}
		if len(r.Timings) != len(r.Stats) {
			return nil, fmt.Errorf("lab: run %s/%s: %d timings for %d stats", r.Scenario, r.Strategy, len(r.Timings), len(r.Stats))
		}
		for i, st := range r.Stats {
			o := cost.Observation{Spec: st.CostSpec(), Seconds: r.Timings[i].TotalSeconds()}
			all = append(all, o)
			if _, ok := byScenario[r.Scenario]; !ok {
				order = append(order, r.Scenario)
			}
			byScenario[r.Scenario] = append(byScenario[r.Scenario], o)
		}
	}
	if len(all) == 0 {
		return nil, fmt.Errorf("lab: no width-1 runs to calibrate from")
	}
	fit, err := cost.Fit(base, all)
	if err != nil {
		return nil, err
	}
	cal := &Calibration{
		Base:         base,
		Fit:          fit,
		Observations: len(all),
		DefaultErr:   base.MeanAbsRelError(all),
		FittedErr:    fit.Config.MeanAbsRelError(all),
	}
	for _, name := range order {
		obs := byScenario[name]
		row := CalibrationRow{
			Scenario:   name,
			Jobs:       len(obs),
			DefaultErr: base.MeanAbsRelError(obs),
			FittedErr:  fit.Config.MeanAbsRelError(obs),
		}
		for _, o := range obs {
			row.Seconds += o.Seconds
		}
		cal.Rows = append(cal.Rows, row)
	}
	return cal, nil
}
