package lab

import (
	"encoding/json"
	"fmt"
	"io"
)

// Report bundles everything one sweep produced, for serialization.
type Report struct {
	Scenarios   int
	Runs        []RunRecord
	Skips       []Skip
	Divergences []Divergence
	Calibration *Calibration `json:",omitempty"`
}

// NewReport assembles a report from a sweep and an optional
// calibration.
func NewReport(res *SweepResult, cal *Calibration) *Report {
	return &Report{
		Scenarios:   res.Scenarios,
		Runs:        res.Runs,
		Skips:       res.Skips,
		Divergences: res.Divergences,
		Calibration: cal,
	}
}

// WriteJSON writes the full report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteRunsTSV writes the per-run table: one row per
// (scenario, strategy, width) execution.
func (r *Report) WriteRunsTSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "scenario\tshape\tprofile\tstrategy\twidth\tjobs\trounds\tseconds"); err != nil {
		return err
	}
	for _, run := range r.Runs {
		if _, err := fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%d\t%d\t%d\t%.6f\n",
			run.Scenario, run.Shape, run.Profile, run.Strategy, run.Width,
			run.Jobs, run.Rounds, run.Seconds); err != nil {
			return err
		}
	}
	return nil
}

// WriteCalibrationTSV writes the per-scenario estimation-error table.
// No-op when the report carries no calibration.
func (r *Report) WriteCalibrationTSV(w io.Writer) error {
	if r.Calibration == nil {
		return nil
	}
	if _, err := fmt.Fprintln(w, "scenario\tjobs\tseconds\tdefault_err\tfitted_err"); err != nil {
		return err
	}
	for _, row := range r.Calibration.Rows {
		if _, err := fmt.Fprintf(w, "%s\t%d\t%.6f\t%.4f\t%.4f\n",
			row.Scenario, row.Jobs, row.Seconds, row.DefaultErr, row.FittedErr); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "TOTAL\t%d\t\t%.4f\t%.4f\n",
		r.Calibration.Observations, r.Calibration.DefaultErr, r.Calibration.FittedErr)
	return err
}

// Summary renders a short human-readable outcome line.
func (r *Report) Summary() string {
	s := fmt.Sprintf("%d scenarios, %d runs, %d skips, %d divergences",
		r.Scenarios, len(r.Runs), len(r.Skips), len(r.Divergences))
	if r.Calibration != nil {
		s += fmt.Sprintf("; calibration over %d jobs: mean error %.3f (default) -> %.3f (fitted)",
			r.Calibration.Observations, r.Calibration.DefaultErr, r.Calibration.FittedErr)
	}
	return s
}
