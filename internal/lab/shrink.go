package lab

import (
	"repro/internal/sgf"
)

// maxShrinkSteps bounds the greedy descent; each accepted step strictly
// reduces the scenario, so the bound only guards against a pathological
// fails predicate.
const maxShrinkSteps = 200

// Shrink greedily minimizes a failing scenario: it tries candidate
// reductions in a deterministic order — halving the data, dropping
// unreferenced queries, replacing a query's condition by one of its
// direct sub-conditions — and keeps any candidate for which fails still
// returns true, iterating to a fixpoint. The result is 1-minimal with
// respect to the candidate moves: no single further reduction still
// fails. Deterministic given a deterministic predicate.
func Shrink(s Scenario, fails func(Scenario) bool) Scenario {
	cur := s
	for step := 0; step < maxShrinkSteps; step++ {
		reduced := false
		for _, cand := range shrinkCandidates(cur) {
			if sgf.Validate(cand.Program) != nil {
				continue
			}
			if fails(cand) {
				cur = cand
				reduced = true
				break
			}
		}
		if !reduced {
			return cur
		}
	}
	return cur
}

// shrinkCandidates enumerates the single-step reductions of a scenario,
// cheapest first.
func shrinkCandidates(s Scenario) []Scenario {
	var out []Scenario
	// 1. Halve the data (floor 8 tuples, the smallest size that still
	// exercises matching).
	if s.GuardTuples > 8 {
		c := s
		c.GuardTuples /= 2
		out = append(out, c)
	}
	if s.CondTuples > 8 {
		c := s
		c.CondTuples /= 2
		out = append(out, c)
	}
	// 2. Drop an unreferenced query (a sink), keeping at least one.
	if len(s.Program.Queries) > 1 {
		referenced := make(map[string]bool)
		for _, q := range s.Program.Queries {
			for _, rel := range q.RelationNames() {
				referenced[rel] = true
			}
		}
		for i, q := range s.Program.Queries {
			if referenced[q.Name] {
				continue
			}
			c := s
			c.Program = s.Program.Clone()
			c.Program.Queries = append(c.Program.Queries[:i:i], c.Program.Queries[i+1:]...)
			out = append(out, c)
		}
	}
	// 3. Replace a query's condition by one of its direct
	// sub-conditions.
	for i, q := range s.Program.Queries {
		for _, sub := range subConditions(q.Where) {
			c := s
			c.Program = s.Program.Clone()
			c.Program.Queries[i].Where = sub
			out = append(out, c)
		}
	}
	return out
}

// subConditions returns the direct reductions of a condition: each
// operand of an And/Or, and the operand of a Not. Atoms (and nil) have
// none.
func subConditions(c sgf.Condition) []sgf.Condition {
	switch x := c.(type) {
	case sgf.And:
		return append([]sgf.Condition(nil), x.Cs...)
	case sgf.Or:
		return append([]sgf.Condition(nil), x.Cs...)
	case sgf.Not:
		return []sgf.Condition{x.C}
	}
	return nil
}
