package lab

import (
	"fmt"
	"math/rand"

	"repro/internal/relation"
	"repro/internal/sgf"
	"repro/internal/workload"
)

// DataProfile names one data-distribution configuration the scenario
// generator composes with generated programs: the knobs map onto
// data.GuardSpec/CondSpec via workload.Workload.
type DataProfile struct {
	Name      string
	MatchFrac float64 // fraction of conditional tuples matching the guard
	CoverSel  float64 // with CoverSet: fraction of guard tuples matched (§5.4)
	CoverSet  bool
	Zipf      float64 // >0: skew guard column 0 and join values (arity ≥ 2)
}

// Profiles returns the sweep's data profiles: the paper's uniform 50%
// setting, a zipf-skewed variant, and the adversarial ends of the
// selectivity axis (§5.4) — almost nothing matches, or everything does.
func Profiles() []DataProfile {
	return []DataProfile{
		{Name: "uniform", MatchFrac: 0.5},
		{Name: "zipf", MatchFrac: 0.5, Zipf: 0.8},
		{Name: "sparse", CoverSel: 0.05, CoverSet: true},
		{Name: "dense", CoverSel: 1.0, CoverSet: true},
		{Name: "nomatch", MatchFrac: 0},
	}
}

// Scenario is one generated experiment: a program plus the data
// configuration to run it against. Scenarios are value types; the same
// scenario always builds the same database and programs (generators are
// seeded).
type Scenario struct {
	Name        string
	Seed        int64
	Shape       Shape
	Profile     DataProfile
	Program     *sgf.Program
	GuardTuples int
	CondTuples  int
}

// ScenarioConfig bounds the scenario generator.
type ScenarioConfig struct {
	Gen         GenConfig
	GuardTuples int // tuples per guard relation (default 2000)
	CondTuples  int // tuples per conditional relation (default 2000)
}

// DefaultScenarioConfig returns the sweep defaults: small relations —
// big enough to exercise multi-mapper splits under the lab's scaled
// cost config, small enough that a full sweep stays fast.
func DefaultScenarioConfig() ScenarioConfig {
	return ScenarioConfig{Gen: DefaultGenConfig(), GuardTuples: 2000, CondTuples: 2000}
}

func (c ScenarioConfig) normalized() ScenarioConfig {
	if c.GuardTuples <= 0 {
		c.GuardTuples = 2000
	}
	if c.CondTuples <= 0 {
		c.CondTuples = 2000
	}
	c.Gen = c.Gen.normalized()
	return c
}

// GenScenario generates the scenario for one seed: the program shape
// and the data profile are both drawn from the seed.
func GenScenario(seed int64, cfg ScenarioConfig) Scenario {
	cfg = cfg.normalized()
	prog, shape := GenProgram(seed, cfg.Gen)
	profiles := Profiles()
	rng := rand.New(rand.NewSource(seed ^ 0x5ab0))
	prof := profiles[rng.Intn(len(profiles))]
	return Scenario{
		Name:        fmt.Sprintf("s%d-%s-%s", seed, shape, prof.Name),
		Seed:        seed,
		Shape:       shape,
		Profile:     prof,
		Program:     prog,
		GuardTuples: cfg.GuardTuples,
		CondTuples:  cfg.CondTuples,
	}
}

// GenScenarios generates scenarios for seeds 1..n.
func GenScenarios(n int, cfg ScenarioConfig) []Scenario {
	out := make([]Scenario, 0, n)
	for seed := int64(1); seed <= int64(n); seed++ {
		out = append(out, GenScenario(seed, cfg))
	}
	return out
}

// Source returns the scenario's SGF program text.
func (s Scenario) Source() string { return s.Program.String() }

// Build generates the scenario's database: every base relation of the
// program, guards at GuardTuples and conditionals at CondTuples, under
// the profile's distribution, then correlated so atoms referencing
// earlier outputs stay selective but nonempty (correlate.go — without
// this, chain-shaped scenarios run dry after their first query).
// Deterministic in the scenario.
func (s Scenario) Build() *relation.Database {
	w := workload.Workload{
		Name:        s.Name,
		Program:     s.Program,
		GuardTuples: s.GuardTuples,
		CondTuples:  s.CondTuples,
		MatchFrac:   s.Profile.MatchFrac,
		CoverSel:    s.Profile.CoverSel,
		CoverSet:    s.Profile.CoverSet,
		Zipf:        s.Profile.Zipf,
		Seed:        s.Seed,
	}
	db := w.Build(1.0)
	correlateOutputRefs(s.Program, db, s.Seed)
	return db
}

// CondAtomCount returns the total number of conditional atoms across
// the program's queries: the size measure that gates the brute-force
// OPT strategy (Bell-number blowup in the equation count).
func (s Scenario) CondAtomCount() int {
	n := 0
	for _, q := range s.Program.Queries {
		n += len(q.CondAtoms())
	}
	return n
}
