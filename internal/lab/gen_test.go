package lab

import (
	"strings"
	"testing"

	"repro/internal/sgf"
)

// TestGenProgramValid: every generated program validates, parses, and
// print→reparse round-trips, across many seeds and every shape.
func TestGenProgramValid(t *testing.T) {
	cfg := DefaultGenConfig()
	for seed := int64(1); seed <= 300; seed++ {
		p, shape := GenProgram(seed, cfg)
		if err := sgf.Validate(p); err != nil {
			t.Fatalf("seed %d (%s): invalid: %v\n%s", seed, shape, err, p)
		}
		printed := p.String()
		p2, err := sgf.Parse(printed)
		if err != nil {
			t.Fatalf("seed %d (%s): reparse failed: %v\n%s", seed, shape, err, printed)
		}
		if got := p2.String(); got != printed {
			t.Fatalf("seed %d (%s): round trip unstable:\n%s\n->\n%s", seed, shape, printed, got)
		}
	}
}

func TestGenProgramDeterministic(t *testing.T) {
	cfg := DefaultGenConfig()
	for seed := int64(1); seed <= 20; seed++ {
		a, sa := GenProgram(seed, cfg)
		b, sb := GenProgram(seed, cfg)
		if sa != sb || a.String() != b.String() {
			t.Fatalf("seed %d: non-deterministic generation", seed)
		}
	}
}

// TestGenShapes: each shape generator produces its structural
// signature.
func TestGenShapes(t *testing.T) {
	cfg := DefaultGenConfig()
	for seed := int64(1); seed <= 40; seed++ {
		// Chain: some query's condition references the previous output.
		chain := GenShapedProgram(seed, ShapeChain, cfg)
		if len(chain.Queries) < 2 {
			t.Fatalf("seed %d: chain has %d queries", seed, len(chain.Queries))
		}
		found := false
		for i := 1; i < len(chain.Queries); i++ {
			prev := chain.Queries[i-1].Name
			for _, a := range chain.Queries[i].CondAtoms() {
				if a.Rel == prev {
					found = true
				}
			}
		}
		if !found {
			t.Fatalf("seed %d: chain without chained reference:\n%s", seed, chain)
		}
		// Nested guard: some query's guard is an earlier output.
		nested := GenShapedProgram(seed, ShapeNestedGuard, cfg)
		defined := map[string]bool{}
		found = false
		for _, q := range nested.Queries {
			if defined[q.Guard.Rel] {
				found = true
			}
			defined[q.Name] = true
		}
		if !found {
			t.Fatalf("seed %d: nested-guard program without output guard:\n%s", seed, nested)
		}
		// Union: at least one query has a disjunctive condition.
		union := GenShapedProgram(seed, ShapeUnion, cfg)
		if !strings.Contains(union.String(), " OR ") {
			t.Fatalf("seed %d: union without OR:\n%s", seed, union)
		}
	}
}

// TestGenScenarioBuild: scenarios build deterministic databases with
// every base relation present at the configured sizes.
func TestGenScenarioBuild(t *testing.T) {
	cfg := DefaultScenarioConfig()
	cfg.GuardTuples, cfg.CondTuples = 100, 100
	for seed := int64(1); seed <= 10; seed++ {
		sc := GenScenario(seed, cfg)
		db := sc.Build()
		for _, name := range sc.Program.BaseRelations() {
			r := db.Relation(name)
			if r == nil {
				t.Fatalf("seed %d: base relation %s missing", seed, name)
			}
			if r.Size() == 0 {
				t.Fatalf("seed %d: base relation %s empty", seed, name)
			}
		}
		if !db.Relation(sc.Program.BaseRelations()[0]).Equal(sc.Build().Relation(sc.Program.BaseRelations()[0])) {
			t.Fatalf("seed %d: Build not deterministic", seed)
		}
	}
}

// TestShapeCoverage: the seed-driven shape draw reaches every shape
// within a modest seed range (so a sweep over tens of seeds exercises
// the whole grammar).
func TestShapeCoverage(t *testing.T) {
	seen := map[Shape]bool{}
	for seed := int64(1); seed <= 50; seed++ {
		_, shape := GenProgram(seed, DefaultGenConfig())
		seen[shape] = true
	}
	for _, s := range AllShapes() {
		if !seen[s] {
			t.Errorf("shape %s never generated in 50 seeds", s)
		}
	}
}
