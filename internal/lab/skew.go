package lab

import (
	"fmt"
	"reflect"
	"time"

	gumbo "repro"
)

// The skew sweep: where sweep.go checks that every strategy computes
// the same thing, the skew sweep checks the runtime skew splitter
// (gumbo.WithSkewSplit) against its two contracts on skewed data. For
// every scenario seed it builds zipf- and dense-profiled variants —
// the distributions where heavy reduce partitions actually arise —
// and runs each at widths {1, 4, GOMAXPROCS} with splitting off and
// on:
//
//   - correctness: outputs (every relation, exact tuple order) and
//     JobStats are bit-for-bit identical off vs on, up to the split
//     observability fields (JobStats.StripSplitInfo), and the split
//     runs are bit-for-bit identical to each other across widths —
//     including SplitReduceTasks, since the split plan is part of the
//     determinism contract;
//   - effect: when a job split, its heaviest single reduce task
//     (MaxReduceTaskMB) must come out at or below the heaviest
//     partition (MaxReduceLoadMB) — the load the hot reducer would
//     have carried serially.

// skewSplitRatio is the split threshold the sweep runs with: the
// knob's documented starting point.
const skewSplitRatio = 1.5

// SkewRecord is one (scenario, width) off/on comparison.
type SkewRecord struct {
	Scenario   string
	Width      int
	Jobs       int
	SplitTasks int     // total sub-range reduce tasks across jobs (on-run)
	MaxLoadMB  float64 // heaviest reduce partition across jobs (off-run)
	MaxTaskMB  float64 // heaviest reduce task across jobs (on-run)
	OffSeconds float64 // measured wall-clock, splitting off
	OnSeconds  float64 // measured wall-clock, splitting on
}

// Improvement returns the heaviest-task shrink factor (1.0 = nothing
// split or nothing gained).
func (r SkewRecord) Improvement() float64 {
	if r.MaxTaskMB <= 0 || r.MaxLoadMB <= 0 {
		return 1
	}
	return r.MaxLoadMB / r.MaxTaskMB
}

// SkewFailure is one contract violation.
type SkewFailure struct {
	Scenario string
	Width    int
	Detail   string
}

// SkewReport aggregates a skew sweep.
type SkewReport struct {
	Scenarios int
	Records   []SkewRecord
	Failures  []SkewFailure
}

// MaxImprovement returns the largest heaviest-task shrink across all
// records (1.0 when nothing split).
func (r *SkewReport) MaxImprovement() float64 {
	best := 1.0
	for _, rec := range r.Records {
		if f := rec.Improvement(); f > best {
			best = f
		}
	}
	return best
}

// MeanImprovement returns the mean heaviest-task shrink over records
// that actually split.
func (r *SkewReport) MeanImprovement() float64 {
	var sum float64
	n := 0
	for _, rec := range r.Records {
		if rec.SplitTasks > 0 {
			sum += rec.Improvement()
			n++
		}
	}
	if n == 0 {
		return 1
	}
	return sum / float64(n)
}

// SplitRuns returns how many records actually split at least one
// partition.
func (r *SkewReport) SplitRuns() int {
	n := 0
	for _, rec := range r.Records {
		if rec.SplitTasks > 0 {
			n++
		}
	}
	return n
}

// skewScenarios derives the sweep's scenario set: each seed's
// generated program under the zipf and dense data profiles.
func skewScenarios(scenarios []Scenario) []Scenario {
	var profs []DataProfile
	for _, p := range Profiles() {
		if p.Name == "zipf" || p.Name == "dense" {
			profs = append(profs, p)
		}
	}
	out := make([]Scenario, 0, len(scenarios)*len(profs))
	for _, sc := range scenarios {
		for _, p := range profs {
			v := sc
			v.Profile = p
			v.Name = fmt.Sprintf("s%d-%s-%s", sc.Seed, sc.Shape, p.Name)
			out = append(out, v)
		}
	}
	return out
}

// RunSkewSweep runs the off/on differential for every scenario's zipf
// and dense variants at every configured width.
func RunSkewSweep(scenarios []Scenario, cfg SweepConfig) *SkewReport {
	cfg = cfg.normalized()
	offSys, onSys := map[int]*gumbo.System{}, map[int]*gumbo.System{}
	for _, w := range cfg.Widths {
		offSys[w] = gumbo.New(gumbo.WithHostWorkers(w), gumbo.WithScale(cfg.Scale),
			gumbo.WithSkewSplit(-1))
		onSys[w] = gumbo.New(gumbo.WithHostWorkers(w), gumbo.WithScale(cfg.Scale),
			gumbo.WithSkewSplit(skewSplitRatio))
	}
	set := skewScenarios(scenarios)
	rep := &SkewReport{Scenarios: len(set)}
	for _, sc := range set {
		recs, fails := skewScenario(sc, cfg.Widths, offSys, onSys)
		rep.Records = append(rep.Records, recs...)
		rep.Failures = append(rep.Failures, fails...)
	}
	return rep
}

// skewScenario runs one scenario's off/on matrix.
func skewScenario(sc Scenario, widths []int, offSys, onSys map[int]*gumbo.System) (recs []SkewRecord, fails []SkewFailure) {
	q, err := gumbo.Parse(sc.Source())
	if err != nil {
		fails = append(fails, SkewFailure{Scenario: sc.Name, Detail: "parse: " + err.Error()})
		return
	}
	db := sc.Build()
	var baseOn *gumbo.Result
	baseWidth := 0
	for _, w := range widths {
		run := func(sys *gumbo.System) (*gumbo.Result, float64, string) {
			plan, err := sys.Plan(q, db, sys.Auto(q))
			if err != nil {
				return nil, 0, "plan: " + err.Error()
			}
			start := time.Now()
			res, err := sys.RunPlan(plan, db)
			if err != nil {
				return nil, 0, "run: " + err.Error()
			}
			return res, time.Since(start).Seconds(), ""
		}
		off, offSecs, detail := run(offSys[w])
		if detail == "" {
			var on *gumbo.Result
			var onSecs float64
			on, onSecs, detail = run(onSys[w])
			if detail == "" {
				detail = diffSplitOffOn(off, on)
			}
			if detail == "" {
				if baseOn == nil {
					baseOn, baseWidth = on, w
				} else if d := diffBitForBit(baseOn, on); d != "" {
					detail = fmt.Sprintf("split run width %d vs %d: %s", w, baseWidth, d)
				}
			}
			if detail == "" {
				rec := SkewRecord{Scenario: sc.Name, Width: w, Jobs: len(on.JobStats),
					OffSeconds: offSecs, OnSeconds: onSecs}
				for i := range on.JobStats {
					rec.SplitTasks += on.JobStats[i].SplitReduceTasks
					if m := off.JobStats[i].MaxReduceLoadMB(); m > rec.MaxLoadMB {
						rec.MaxLoadMB = m
					}
					if m := on.JobStats[i].MaxReduceTaskMB; m > rec.MaxTaskMB {
						rec.MaxTaskMB = m
					}
				}
				recs = append(recs, rec)
				continue
			}
		}
		fails = append(fails, SkewFailure{Scenario: sc.Name, Width: w, Detail: detail})
	}
	return
}

// diffSplitOffOn compares a splitting-off run against a splitting-on
// run of the same plan: relations bit-for-bit, stats bit-for-bit up to
// the split observability fields — and the on-run's heaviest task must
// not exceed the off-run's heaviest partition.
func diffSplitOffOn(off, on *gumbo.Result) string {
	if d := diffRelationList(off, on); d != "" {
		return "off vs on: " + d
	}
	if len(off.JobStats) != len(on.JobStats) {
		return fmt.Sprintf("off vs on: %d job stats vs %d", len(off.JobStats), len(on.JobStats))
	}
	for i := range off.JobStats {
		if n := off.JobStats[i].SplitReduceTasks; n != 0 {
			return fmt.Sprintf("job %d (%s): splitting-off run reported %d split tasks", i, off.JobStats[i].Name, n)
		}
		if !reflect.DeepEqual(off.JobStats[i].StripSplitInfo(), on.JobStats[i].StripSplitInfo()) {
			return fmt.Sprintf("off vs on: job %d (%s): stats differ", i, off.JobStats[i].Name)
		}
		const eps = 1e-9 // float MB derived from the same int64 loads
		if on.JobStats[i].MaxReduceTaskMB > off.JobStats[i].MaxReduceLoadMB()+eps {
			return fmt.Sprintf("job %d (%s): split max task %.4fMB exceeds unsplit max partition %.4fMB",
				i, on.JobStats[i].Name, on.JobStats[i].MaxReduceTaskMB, off.JobStats[i].MaxReduceLoadMB())
		}
	}
	return ""
}
