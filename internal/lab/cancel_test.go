package lab

import "testing"

// TestCancelSweepClean runs the cancellation sweep over a handful of
// generated scenarios: every one must tear down cleanly. Not parallel —
// the sweep owns the process-wide fault-injection seam.
func TestCancelSweepClean(t *testing.T) {
	scfg := DefaultScenarioConfig()
	scfg.GuardTuples, scfg.CondTuples = 300, 300
	swcfg := DefaultSweepConfig()
	swcfg.Widths = []int{1, 2}
	rep := RunCancelSweep(GenScenarios(3, scfg), swcfg)
	if rep.Scenarios != 3 {
		t.Fatalf("swept %d scenarios, want 3", rep.Scenarios)
	}
	for _, f := range rep.Failures {
		t.Errorf("%s at boundary %d: %s", f.Scenario, f.Boundary, f.Detail)
	}
}
