package lab

import (
	"runtime"
	"testing"

	gumbo "repro"

	"repro/internal/sgf"
)

// frozenScenarios are the highest-value generated scenarios, frozen
// as literal SGF so the tier-1 suite exercises them deterministically
// even if the generator's seed stream changes. They were produced by
// GenScenario at the recorded seeds and chosen to cover every shape and
// every data profile, with emphasis on the constructs that historically
// separate strategies: nested output guards, disjunction with negation,
// output relations as (possibly negated) conditional atoms, constants
// in atoms, skewed join columns, and an unsatisfiable conjunction.
var frozenScenarios = []struct {
	name    string
	seed    int64
	shape   Shape
	profile string
	src     string
}{
	{"union-negation-nomatch", 1, ShapeUnion, "nomatch", `
Z1 := SELECT x1, x3 FROM R0(x0, x1, x2, x3) WHERE NOT S0(x1, x0) OR S0(x1, x2) OR S1(x3, x0) OR S2(x2, x3) OR S2(4, x1);
Z2 := SELECT x1 FROM R1(x0, x1) WHERE S3(x1) OR S4(x0, x1) OR NOT S3(x1);`},
	{"multi-output-atoms", 4, ShapeMulti, "uniform", `
Z1 := SELECT x0, x1, x2 FROM R0(x0, x1, x2) WHERE NOT S0(x2, x0) AND S1(x2) AND S1(x1);
Z2 := SELECT x0, x1 FROM R1(x0, x1, x2) WHERE Z1(x0, x2, x1);
Z3 := SELECT x1, x2 FROM R2(x0, x1, x2, x3) WHERE Z1(x3, x0, x1) AND S2(x0, x0) AND S1(x3);`},
	{"nested-two-level-dense", 6, ShapeNestedGuard, "dense", `
Z1 := SELECT x0, x1, x2, x3 FROM R0(x0, x1, x2, x3) WHERE NOT S0(x2, x3) AND S1(x3);
Z2 := SELECT x1, x3 FROM Z1(x0, x1, x2, x3) WHERE S0(x2, x2);
Z3 := SELECT x1 FROM Z1(x0, x1, x2, x3) WHERE NOT S0(x3, x0) OR S1(x0) OR S1(x2);`},
	{"star-zipf", 21, ShapeStar, "zipf", `
Z1 := SELECT x0 FROM R0(x0, x1) WHERE S0(x0, 5);
Z2 := SELECT x0 FROM R1(x0, x1, x2) WHERE S0(x1, x1) AND S1(x1) AND S0(6, x1) AND S1(x1) AND S2(x1);`},
	{"chain-three-deep", 23, ShapeChain, "uniform", `
Z1 := SELECT x0 FROM R0(x0, x1, x2, x3) WHERE S0(x3);
Z2 := SELECT x0 FROM R1(x0, x1, x2, x3) WHERE Z1(x1) AND S1(x1, x1);
Z3 := SELECT x0, x1 FROM R1(x0, x1, x2, x3) WHERE Z2(x0) AND S2(x3, x1);`},
	{"union-wide-zipf", 25, ShapeUnion, "zipf", `
Z1 := SELECT x0, x1, x2 FROM R0(x0, x1, x2, x3) WHERE S0(x0) OR NOT S1(x0, x1) OR S2(x2) OR S3(x0, x3) OR NOT S4(x1, x2);`},
	{"chain-sparse-flowing", 45, ShapeChain, "sparse", `
Z1 := SELECT x1 FROM R0(x0, x1) WHERE S0(x1);
Z2 := SELECT x2 FROM R1(x0, x1, x2) WHERE Z1(x2) AND S0(x2);
Z3 := SELECT x0, x1 FROM R2(x0, x1) WHERE Z2(x1) AND S0(x0);`},
	{"nested-contradiction", 36, ShapeNestedGuard, "sparse", `
Z1 := SELECT x0, x1 FROM R0(x0, x1) WHERE S0(x0) AND NOT S0(x0) AND S0(x0);
Z2 := SELECT x0 FROM Z1(x0, x1) WHERE S0(x1) AND S0(x0);
Z3 := SELECT x0 FROM Z2(x0) WHERE NOT S1(x0, 7) AND S0(x0) AND S2(1, x0);`},
	{"multi-negated-output", 38, ShapeMulti, "zipf", `
Z1 := SELECT x3 FROM R0(x0, x1, x2, x3) WHERE S0(x2, x0);
Z2 := SELECT x1, x2, x3 FROM R0(x0, x1, x2, x3) WHERE NOT S1(x0) AND Z1(x3) AND S0(6, x2);
Z3 := SELECT x0, x1, x2, x3 FROM R0(x0, x1, x2, x3) WHERE S2(x1, x1);
Z4 := SELECT x0, x1 FROM R0(x0, x1, x2, x3) WHERE NOT Z2(x0, x2, x1);`},
	{"multi-mixed-boolean", 39, ShapeMulti, "nomatch", `
Z1 := SELECT x0, x1 FROM R0(x0, x1) WHERE S0(x1, x0) OR S0(x1, x0) OR S0(3, x1);
Z2 := SELECT x0, x1, x2 FROM R1(x0, x1, x2) WHERE (NOT S1(x2, x0) AND Z1(x2, x1)) OR S2(x0);
Z3 := SELECT x0 FROM R2(x0, x1) WHERE S3(x1) OR NOT S4(x1, x0) OR S5(x0);
Z4 := SELECT x0 FROM Z1(x0, x1) WHERE Z3(x1);`},
	// The skew fixture: under the zipf profile this scenario's join
	// column concentrates on a handful of hot values, and at full lab
	// scale (2000 tuples) its MSJ job crosses Engine.SplitThreshold and
	// exercises the runtime reduce-partition splitter —
	// TestFrozenSkewScenarioSplits pins that. At the 300-tuple sweep
	// scale it stays below the threshold and just rides the oracle.
	{"skew-hot-union-zipf", 2, ShapeUnion, "zipf", `
Z1 := SELECT x0, x1 FROM R0(x0, x1) WHERE S0(x0) OR NOT S1(x1);`},
}

func profileByName(t *testing.T, name string) DataProfile {
	t.Helper()
	for _, p := range Profiles() {
		if p.Name == name {
			return p
		}
	}
	t.Fatalf("unknown profile %q", name)
	return DataProfile{}
}

// TestFrozenScenarioSweep runs the full differential oracle over the
// frozen scenario table at widths {1, GOMAXPROCS}: every applicable
// strategy must agree with the reference evaluator, and every width
// must reproduce width 1 bit for bit.
func TestFrozenScenarioSweep(t *testing.T) {
	cfg := DefaultSweepConfig()
	// Width 2 is explicit so single-CPU machines still cross-check two
	// pool widths (pool width is logical, not physical).
	cfg.Widths = []int{1, 2, runtime.GOMAXPROCS(0)}
	cfg.Shrink = false
	var scenarios []Scenario
	for _, f := range frozenScenarios {
		scenarios = append(scenarios, Scenario{
			Name:        f.name,
			Seed:        f.seed,
			Shape:       f.shape,
			Profile:     profileByName(t, f.profile),
			Program:     sgf.MustParse(f.src),
			GuardTuples: 300,
			CondTuples:  300,
		})
	}
	res := RunSweep(scenarios, cfg)
	for _, d := range res.Divergences {
		t.Errorf("divergence: %s/%s width %d: %s", d.Scenario, d.Strategy, d.Width, d.Detail)
	}
	if res.Scenarios != len(frozenScenarios) {
		t.Fatalf("swept %d scenarios, want %d", res.Scenarios, len(frozenScenarios))
	}
	for _, s := range res.Skips {
		if s.Reason == "" {
			t.Errorf("skip without reason: %s/%s", s.Scenario, s.Strategy)
		}
	}
	// The any-program strategies never plan-reject: every scenario runs
	// under at least 3 strategies × 2 widths.
	byScenario := map[string]int{}
	for _, r := range res.Runs {
		byScenario[r.Scenario]++
	}
	for _, f := range frozenScenarios {
		if byScenario[f.name] < 6 {
			t.Errorf("scenario %s has only %d runs", f.name, byScenario[f.name])
		}
	}
}

// TestChainCorrelationSelective pins the point of correlate.go: in the
// chain-shaped frozen scenarios every query downstream of an output
// reference must produce something (the chain flows) without producing
// everything (the reference stays selective). Before correlation these
// outputs were empty from the second link on.
func TestChainCorrelationSelective(t *testing.T) {
	for _, f := range frozenScenarios {
		if f.shape != ShapeChain {
			continue
		}
		sc := Scenario{
			Name:        f.name,
			Seed:        f.seed,
			Shape:       f.shape,
			Profile:     profileByName(t, f.profile),
			Program:     sgf.MustParse(f.src),
			GuardTuples: 300,
			CondTuples:  300,
		}
		q, err := gumbo.Parse(sc.Source())
		if err != nil {
			t.Fatalf("%s: parse: %v", f.name, err)
		}
		db := sc.Build()
		out, err := gumbo.EvalAll(q, db)
		if err != nil {
			t.Fatalf("%s: refeval: %v", f.name, err)
		}
		for _, query := range sc.Program.Queries {
			guard := db.Relation(query.Guard.Rel)
			if guard == nil {
				continue // output-guarded query; bounded by its producer instead
			}
			r := out.Relation(query.Name)
			if r == nil {
				t.Fatalf("%s: output %s missing", f.name, query.Name)
			}
			if r.Size() == 0 {
				t.Errorf("%s: output %s is empty; the chain ran dry", f.name, query.Name)
			}
			if r.Size() >= guard.Size() {
				t.Errorf("%s: output %s has %d tuples of a %d-tuple guard; reference not selective",
					f.name, query.Name, r.Size(), guard.Size())
			}
		}
	}
}

// TestFrozenSkewScenarioSplits pins the skew fixture's reason for
// existing: at full lab scale its zipf-hot reduce partition must
// actually cross the split threshold, and the split run must match the
// unsplit run bit for bit (up to the split observability fields) at
// every width.
func TestFrozenSkewScenarioSplits(t *testing.T) {
	var fixture Scenario
	for _, f := range frozenScenarios {
		if f.name != "skew-hot-union-zipf" {
			continue
		}
		fixture = Scenario{
			Name:        f.name,
			Seed:        f.seed,
			Shape:       f.shape,
			Profile:     profileByName(t, f.profile),
			Program:     sgf.MustParse(f.src),
			GuardTuples: 2000,
			CondTuples:  2000,
		}
	}
	if fixture.Name == "" {
		t.Fatal("skew-hot-union-zipf missing from the frozen table")
	}
	q, err := gumbo.Parse(fixture.Source())
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	db := fixture.Build()
	widths := []int{1, 2, runtime.GOMAXPROCS(0)}
	var base *gumbo.Result
	for _, w := range widths {
		run := func(ratio float64) *gumbo.Result {
			sys := gumbo.New(gumbo.WithHostWorkers(w), gumbo.WithScale(1e-4),
				gumbo.WithSkewSplit(ratio))
			plan, err := sys.Plan(q, db, sys.Auto(q))
			if err != nil {
				t.Fatalf("width %d: plan: %v", w, err)
			}
			res, err := sys.RunPlan(plan, db)
			if err != nil {
				t.Fatalf("width %d: run: %v", w, err)
			}
			return res
		}
		off, on := run(-1), run(skewSplitRatio)
		split := 0
		for i := range on.JobStats {
			split += on.JobStats[i].SplitReduceTasks
		}
		if split == 0 {
			t.Errorf("width %d: fixture did not split; threshold or data drifted", w)
		}
		if d := diffSplitOffOn(off, on); d != "" {
			t.Errorf("width %d: %s", w, d)
		}
		if base == nil {
			base = on
		} else if d := diffBitForBit(base, on); d != "" {
			t.Errorf("width %d vs %d: %s", w, widths[0], d)
		}
	}
}

// TestFrozenScenarioGoldenSizes pins each frozen scenario's reference
// output cardinalities. These golden numbers pin three layers at once:
// the data generator's seed streams, the workload builder's relation
// classification, and the reference evaluator's semantics. A diff here
// means generated inputs or evaluation changed, not merely a test
// artifact — investigate before updating the numbers.
func TestFrozenScenarioGoldenSizes(t *testing.T) {
	golden := map[string][]int{
		"union-negation-nomatch": {299, 243},
		"multi-output-atoms":     {58, 41, 131},
		"nested-two-level-dense": {300, 0, 239},
		"star-zipf":              {1, 1},
		"chain-three-deep":       {163, 104, 126},
		"union-wide-zipf":        {300},
		"chain-sparse-flowing":   {62, 29, 153},
		"nested-contradiction":   {0, 0, 0},
		"multi-negated-output":   {0, 0, 0, 272},
		"multi-mixed-boolean":    {0, 0, 238, 0},
		"skew-hot-union-zipf":    {300},
	}
	for _, f := range frozenScenarios {
		sc := Scenario{
			Name:        f.name,
			Seed:        f.seed,
			Shape:       f.shape,
			Profile:     profileByName(t, f.profile),
			Program:     sgf.MustParse(f.src),
			GuardTuples: 300,
			CondTuples:  300,
		}
		q, err := gumbo.Parse(sc.Source())
		if err != nil {
			t.Fatalf("%s: parse: %v", f.name, err)
		}
		out, err := gumbo.EvalAll(q, sc.Build())
		if err != nil {
			t.Fatalf("%s: refeval: %v", f.name, err)
		}
		want := golden[f.name]
		if len(want) != len(sc.Program.Queries) {
			t.Fatalf("%s: golden has %d entries for %d queries", f.name, len(want), len(sc.Program.Queries))
		}
		for i, query := range sc.Program.Queries {
			r := out.Relation(query.Name)
			if r == nil {
				t.Fatalf("%s: output %s missing", f.name, query.Name)
			}
			if r.Size() != want[i] {
				t.Errorf("%s: output %s has %d tuples, want %d", f.name, query.Name, r.Size(), want[i])
			}
		}
	}
}
