// Package refeval provides a direct in-memory reference evaluator for SGF
// queries, implementing the paper's semantics (§3.1) without MapReduce.
// It serves as the oracle that all MapReduce evaluation paths are tested
// against, and as a convenient way to evaluate small queries.
package refeval

import (
	"fmt"

	"repro/internal/relation"
	"repro/internal/sgf"
)

// EvalBSGF evaluates a single basic query against db, which must contain
// every relation mentioned by the query (including any outputs of earlier
// queries in a program). The result has name q.Name and arity
// len(q.Select).
func EvalBSGF(q *sgf.BSGF, db *relation.Database) (*relation.Relation, error) {
	guardRel := db.Relation(q.Guard.Rel)
	if guardRel == nil {
		return nil, fmt.Errorf("refeval: %s: unknown relation %s", q.Name, q.Guard.Rel)
	}
	if guardRel.Arity() != q.Guard.Arity() {
		return nil, fmt.Errorf("refeval: %s: guard %s has arity %d but relation has arity %d",
			q.Name, q.Guard, q.Guard.Arity(), guardRel.Arity())
	}
	atoms := q.CondAtoms()
	indexes := make([]*condIndex, len(atoms))
	for i, a := range atoms {
		idx, err := buildCondIndex(q, a, db)
		if err != nil {
			return nil, err
		}
		indexes[i] = idx
	}
	out := relation.New(q.Name, len(q.Select))
	guardMatcher := sgf.NewMatcher(q.Guard)
	project := sgf.NewProjector(q.Guard, q.Select)
	truth := make(map[string]bool, len(atoms))
	for _, f := range guardRel.Tuples() {
		if !guardMatcher.Matches(f) {
			continue
		}
		for i, a := range atoms {
			truth[a.Key()] = indexes[i].holds(f)
		}
		if sgf.EvalCondition(q.Where, truth) {
			out.Add(project.Apply(f))
		}
	}
	return out, nil
}

// condIndex answers, for one conditional atom κ, whether a guard fact's
// join-key projection has a matching conforming κ-fact: the semi-join
// membership test guard(σ(t̄)) ∈ R(t̄) ⋉ κ.
type condIndex struct {
	guardProj sgf.Projector // π_{guard;z̄}
	keys      map[string]bool
	anyFact   bool // used when the join key z̄ is empty
	emptyKey  bool
}

func buildCondIndex(q *sgf.BSGF, atom sgf.Atom, db *relation.Database) (*condIndex, error) {
	rel := db.Relation(atom.Rel)
	if rel == nil {
		return nil, fmt.Errorf("refeval: %s: unknown relation %s", q.Name, atom.Rel)
	}
	if rel.Arity() != atom.Arity() {
		return nil, fmt.Errorf("refeval: %s: atom %s has arity %d but relation has arity %d",
			q.Name, atom, atom.Arity(), rel.Arity())
	}
	shared := sgf.SharedVars(q.Guard, atom)
	idx := &condIndex{emptyKey: len(shared) == 0}
	matcher := sgf.NewMatcher(atom)
	if idx.emptyKey {
		for _, g := range rel.Tuples() {
			if matcher.Matches(g) {
				idx.anyFact = true
				break
			}
		}
		return idx, nil
	}
	idx.guardProj = sgf.NewProjector(q.Guard, shared)
	condProj := sgf.NewProjector(atom, shared)
	idx.keys = make(map[string]bool)
	for _, g := range rel.Tuples() {
		if matcher.Matches(g) {
			idx.keys[condProj.Apply(g).Key()] = true
		}
	}
	return idx, nil
}

func (ci *condIndex) holds(guardFact relation.Tuple) bool {
	if ci.emptyKey {
		return ci.anyFact
	}
	return ci.keys[ci.guardProj.Apply(guardFact).Key()]
}

// EvalProgram evaluates an SGF program bottom-up in definition order,
// returning a database containing every output relation Z1..Zn. The input
// database is not modified.
func EvalProgram(p *sgf.Program, db *relation.Database) (*relation.Database, error) {
	working := relation.NewDatabase()
	for _, r := range db.Relations() {
		working.Put(r)
	}
	outputs := relation.NewDatabase()
	for _, q := range p.Queries {
		res, err := EvalBSGF(q, working)
		if err != nil {
			return nil, err
		}
		working.Put(res)
		outputs.Put(res)
	}
	return outputs, nil
}

// EvalOutput evaluates the program and returns just the final output
// relation.
func EvalOutput(p *sgf.Program, db *relation.Database) (*relation.Relation, error) {
	outs, err := EvalProgram(p, db)
	if err != nil {
		return nil, err
	}
	return outs.Relation(p.OutputName()), nil
}

// SemiJoin computes π_vars(guard ⋉ cond) directly: the set of projections
// of guard-conforming facts that have a matching cond-conforming fact on
// the shared variables. It is the reference semantics for a single
// semi-join equation (§4.1).
func SemiJoin(guard, cond sgf.Atom, vars []string, db *relation.Database) (*relation.Relation, error) {
	q := &sgf.BSGF{Name: "semijoin", Select: vars, Guard: guard, Where: sgf.AtomCond{Atom: cond}}
	return EvalBSGF(q, db)
}
