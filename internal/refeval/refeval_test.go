package refeval

import (
	"testing"

	"repro/internal/relation"
	"repro/internal/sgf"
)

func tup(vals ...int64) relation.Tuple {
	t := make(relation.Tuple, len(vals))
	for i, v := range vals {
		t[i] = relation.Value(v)
	}
	return t
}

func db(rels ...*relation.Relation) *relation.Database {
	d := relation.NewDatabase()
	for _, r := range rels {
		d.Put(r)
	}
	return d
}

func evalOne(t *testing.T, src string, d *relation.Database) *relation.Relation {
	t.Helper()
	p := sgf.MustParse(src)
	out, err := EvalOutput(p, d)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func wantTuples(t *testing.T, got *relation.Relation, want ...relation.Tuple) {
	t.Helper()
	if got.Size() != len(want) {
		t.Fatalf("got %d tuples, want %d:\n%s", got.Size(), len(want), got.Dump())
	}
	for _, w := range want {
		if !got.Contains(w) {
			t.Errorf("missing tuple %v:\n%s", w, got.Dump())
		}
	}
}

func TestPaperExample3(t *testing.T) {
	// Z := π_x(R(x,z) ⋉ S(z,y)) on I = {R(1,2), R(4,5), S(2,3)} gives Z(1).
	d := db(
		relation.FromTuples("R", 2, []relation.Tuple{tup(1, 2), tup(4, 5)}),
		relation.FromTuples("S", 2, []relation.Tuple{tup(2, 3)}),
	)
	out := evalOne(t, `Z := SELECT x FROM R(x, z) WHERE S(z, y);`, d)
	wantTuples(t, out, tup(1))
}

func TestIntersectionAndDifference(t *testing.T) {
	d := db(
		relation.FromTuples("R", 1, []relation.Tuple{tup(1), tup(2), tup(3)}),
		relation.FromTuples("S", 1, []relation.Tuple{tup(2), tup(3), tup(4)}),
	)
	wantTuples(t, evalOne(t, `Z := SELECT x FROM R(x) WHERE S(x);`, d), tup(2), tup(3))
	wantTuples(t, evalOne(t, `Z := SELECT x FROM R(x) WHERE NOT S(x);`, d), tup(1))
}

func TestSemiAndAntiJoin(t *testing.T) {
	d := db(
		relation.FromTuples("R", 2, []relation.Tuple{tup(1, 10), tup(2, 20), tup(3, 10)}),
		relation.FromTuples("S", 2, []relation.Tuple{tup(10, 7)}),
	)
	wantTuples(t, evalOne(t, `Z := SELECT x, y FROM R(x, y) WHERE S(y, z);`, d),
		tup(1, 10), tup(3, 10))
	wantTuples(t, evalOne(t, `Z := SELECT x, y FROM R(x, y) WHERE NOT S(y, z);`, d),
		tup(2, 20))
}

func TestXorQueryZ5(t *testing.T) {
	// Z5 from Example 1: pairs (x,y) with R(x,y,4) where exactly one of
	// S(1,x), S(y,10) holds.
	d := db(
		relation.FromTuples("R", 3, []relation.Tuple{
			tup(5, 6, 4),  // S(1,5) yes, S(6,10) no -> out
			tup(7, 8, 4),  // S(1,7) no, S(8,10) yes -> out
			tup(5, 8, 4),  // both -> not out
			tup(9, 9, 4),  // neither -> not out
			tup(5, 6, 99), // wrong constant -> not a guard fact
		}),
		relation.FromTuples("S", 2, []relation.Tuple{tup(1, 5), tup(8, 10)}),
	)
	out := evalOne(t, `Z5 := SELECT x, y FROM R(x, y, 4)
		WHERE (S(1, x) AND NOT S(y, 10)) OR (NOT S(1, x) AND S(y, 10));`, d)
	wantTuples(t, out, tup(5, 6), tup(7, 8))
}

func TestProjectionDoesNotMergeGuardFacts(t *testing.T) {
	// Two guard facts project to the same output tuple but satisfy
	// different conditionals; the per-substitution semantics must see
	// them separately. R(1,3) has no S(3) fact, so NOT S(y) holds via
	// y=3 even though S(2) exists for the sibling fact R(1,2).
	d := db(
		relation.FromTuples("R", 2, []relation.Tuple{tup(1, 2), tup(1, 3)}),
		relation.FromTuples("S", 1, []relation.Tuple{tup(2)}),
	)
	wantTuples(t, evalOne(t, `Z := SELECT x FROM R(x, y) WHERE NOT S(y);`, d), tup(1))
	wantTuples(t, evalOne(t, `Z := SELECT x FROM R(x, y) WHERE S(y);`, d), tup(1))
}

func TestEmptyJoinKeyConditional(t *testing.T) {
	// Conditional atom shares no variables with the guard: it is true iff
	// any conforming fact exists.
	d := db(
		relation.FromTuples("R", 1, []relation.Tuple{tup(1), tup(2)}),
		relation.FromTuples("S", 1, []relation.Tuple{tup(99)}),
	)
	wantTuples(t, evalOne(t, `Z := SELECT x FROM R(x) WHERE S(q);`, d), tup(1), tup(2))
	empty := db(
		relation.FromTuples("R", 1, []relation.Tuple{tup(1)}),
		relation.New("S", 1),
	)
	wantTuples(t, evalOne(t, `Z := SELECT x FROM R(x) WHERE S(q);`, empty))
}

func TestGuardWithRepeatedVariable(t *testing.T) {
	d := db(
		relation.FromTuples("R", 2, []relation.Tuple{tup(1, 1), tup(1, 2), tup(3, 3)}),
	)
	wantTuples(t, evalOne(t, `Z := SELECT x FROM R(x, x);`, d), tup(1), tup(3))
}

func TestConditionalWithRepeatedVariable(t *testing.T) {
	// T(y, y) requires a T-fact with equal fields matching y.
	d := db(
		relation.FromTuples("R", 2, []relation.Tuple{tup(1, 5), tup(2, 6)}),
		relation.FromTuples("T", 2, []relation.Tuple{tup(5, 5), tup(6, 7)}),
	)
	wantTuples(t, evalOne(t, `Z := SELECT x FROM R(x, y) WHERE T(y, y);`, d), tup(1))
}

func TestConditionalConstantsFilter(t *testing.T) {
	d := db(
		relation.FromTuples("R", 1, []relation.Tuple{tup(5), tup(7)}),
		relation.FromTuples("S", 2, []relation.Tuple{tup(1, 5), tup(2, 7)}),
	)
	wantTuples(t, evalOne(t, `Z := SELECT x FROM R(x) WHERE S(1, x);`, d), tup(5))
}

func TestBookstoreExample2(t *testing.T) {
	bad := relation.String("bad")
	good := relation.String("good")
	row := func(ttl, aut int64, rating relation.Value) relation.Tuple {
		return relation.Tuple{relation.Value(ttl), relation.Value(aut), rating}
	}
	d := db(
		relation.FromTuples("Amaz", 3, []relation.Tuple{row(1, 100, bad), row(2, 200, bad), row(3, 300, good)}),
		relation.FromTuples("BN", 3, []relation.Tuple{row(1, 100, bad), row(2, 200, good)}),
		relation.FromTuples("BD", 3, []relation.Tuple{row(1, 100, bad)}),
		relation.FromTuples("Upcoming", 2, []relation.Tuple{tup(10, 100), tup(20, 200), tup(30, 300)}),
	)
	// Author 100 has a universally bad-rated title; 200 and 300 do not.
	out := evalOne(t, `
		Z1 := SELECT aut FROM Amaz(ttl, aut, "bad")
			WHERE BN(ttl, aut, "bad") AND BD(ttl, aut, "bad");
		Z2 := SELECT new, aut FROM Upcoming(new, aut) WHERE NOT Z1(aut);`, d)
	wantTuples(t, out, tup(20, 200), tup(30, 300))
}

func TestProgramChaining(t *testing.T) {
	d := db(
		relation.FromTuples("R", 2, []relation.Tuple{tup(1, 2), tup(3, 4), tup(5, 6)}),
		relation.FromTuples("S", 1, []relation.Tuple{tup(1), tup(3)}),
		relation.FromTuples("T", 1, []relation.Tuple{tup(3)}),
	)
	p := sgf.MustParse(`
		Z1 := SELECT x, y FROM R(x, y) WHERE S(x);
		Z2 := SELECT x, y FROM Z1(x, y) WHERE T(x);`)
	outs, err := EvalProgram(p, d)
	if err != nil {
		t.Fatal(err)
	}
	wantTuples(t, outs.Relation("Z1"), tup(1, 2), tup(3, 4))
	wantTuples(t, outs.Relation("Z2"), tup(3, 4))
	if d.Has("Z1") {
		t.Error("EvalProgram mutated the input database")
	}
}

func TestErrors(t *testing.T) {
	d := db(relation.FromTuples("R", 2, []relation.Tuple{tup(1, 2)}))
	p := sgf.MustParse(`Z := SELECT x FROM Missing(x);`)
	if _, err := EvalOutput(p, d); err == nil {
		t.Error("missing guard relation accepted")
	}
	p2 := sgf.MustParse(`Z := SELECT x FROM R(x, y) WHERE Q(x);`)
	if _, err := EvalOutput(p2, d); err == nil {
		t.Error("missing conditional relation accepted")
	}
	p3 := sgf.MustParse(`Z := SELECT x FROM R(x);`)
	if _, err := EvalOutput(p3, d); err == nil {
		t.Error("guard arity mismatch accepted")
	}
	if _, err := sgf.Parse(`Z := SELECT x FROM R(x, y) WHERE R(x);`); err == nil {
		t.Error("parser should reject inconsistent arity")
	}
}

func TestSemiJoinHelper(t *testing.T) {
	d := db(
		relation.FromTuples("R", 2, []relation.Tuple{tup(1, 2), tup(4, 5)}),
		relation.FromTuples("S", 2, []relation.Tuple{tup(2, 3)}),
	)
	out, err := SemiJoin(
		sgf.NewAtom("R", sgf.V("x"), sgf.V("z")),
		sgf.NewAtom("S", sgf.V("z"), sgf.V("y")),
		[]string{"x"}, d)
	if err != nil {
		t.Fatal(err)
	}
	wantTuples(t, out, tup(1))
}

func TestStarSemiJoinZ6(t *testing.T) {
	d := db(
		relation.FromTuples("R", 2, []relation.Tuple{tup(1, 2), tup(1, 9), tup(9, 2)}),
		relation.FromTuples("S", 2, []relation.Tuple{tup(1, 7), tup(2, 8)}),
	)
	out := evalOne(t, `Z6 := SELECT x1, x2 FROM R(x1, x2) WHERE S(x1, y1) AND S(x2, y2);`, d)
	wantTuples(t, out, tup(1, 2))
}
