package refeval

import (
	"math/rand"
	"testing"

	"repro/internal/relation"
	"repro/internal/sgf"
)

// naiveEvalBSGF is a deliberately simple quadratic implementation of the
// paper's §3.1 semantics, written directly from the definition (per
// guard fact, per conditional atom, scan the whole conditional relation
// for a fact agreeing on the shared variables). It cross-validates the
// indexed evaluator.
func naiveEvalBSGF(q *sgf.BSGF, db *relation.Database) *relation.Relation {
	out := relation.New(q.Name, len(q.Select))
	guard := db.Relation(q.Guard.Rel)
	atoms := q.CondAtoms()
	for _, f := range guard.Tuples() {
		if !sgf.ConformsTuple(f, q.Guard) {
			continue
		}
		sigma := sgf.Binding(f, q.Guard)
		truth := make(map[string]bool, len(atoms))
		for _, atom := range atoms {
			rel := db.Relation(atom.Rel)
			holds := false
			for _, g := range rel.Tuples() {
				if !sgf.ConformsTuple(g, atom) {
					continue
				}
				agree := true
				for i, term := range atom.Args {
					if term.IsVar() {
						if v, bound := sigma[term.Var]; bound && g[i] != v {
							agree = false
							break
						}
					}
				}
				if agree {
					holds = true
					break
				}
			}
			truth[atom.Key()] = holds
		}
		if sgf.EvalCondition(q.Where, truth) {
			out.Add(sgf.Project(f, q.Guard, q.Select))
		}
	}
	return out
}

func naiveEvalProgram(p *sgf.Program, db *relation.Database) *relation.Database {
	working := relation.NewDatabase()
	for _, r := range db.Relations() {
		working.Put(r)
	}
	outs := relation.NewDatabase()
	for _, q := range p.Queries {
		res := naiveEvalBSGF(q, working)
		working.Put(res)
		outs.Put(res)
	}
	return outs
}

// TestIndexedMatchesNaive cross-checks the indexed evaluator against the
// from-the-definition implementation on random queries and databases,
// including constants and repeated variables.
func TestIndexedMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	vars := []string{"x", "y", "z"}
	for trial := 0; trial < 60; trial++ {
		db := relation.NewDatabase()
		guard := relation.New("R", 3)
		for guard.Size() < 30 {
			guard.Add(relation.Tuple{
				relation.Value(rng.Int63n(6)), relation.Value(rng.Int63n(6)), relation.Value(rng.Int63n(6)),
			})
		}
		db.Put(guard)
		for _, c := range []string{"S", "T"} {
			r := relation.New(c, 2)
			for r.Size() < 8 {
				r.Add(relation.Tuple{relation.Value(rng.Int63n(8)), relation.Value(rng.Int63n(8))})
			}
			db.Put(r)
		}
		// Random atoms: variables, repeated variables, constants.
		randTerm := func() sgf.Term {
			switch rng.Intn(4) {
			case 0:
				return sgf.CInt(int64(rng.Intn(6)))
			default:
				return sgf.V(vars[rng.Intn(len(vars))])
			}
		}
		randAtom := func() sgf.Atom {
			rel := []string{"S", "T"}[rng.Intn(2)]
			return sgf.NewAtom(rel, randTerm(), randTerm())
		}
		var cond sgf.Condition
		for li := 0; li < 1+rng.Intn(3); li++ {
			var leaf sgf.Condition = sgf.AtomCond{Atom: randAtom()}
			if rng.Intn(3) == 0 {
				leaf = sgf.Not{C: leaf}
			}
			if cond == nil {
				cond = leaf
			} else if rng.Intn(2) == 0 {
				cond = sgf.AndOf(cond, leaf)
			} else {
				cond = sgf.OrOf(cond, leaf)
			}
		}
		q := &sgf.BSGF{
			Name:   "Z",
			Select: []string{"x", "y"},
			Guard:  sgf.NewAtom("R", sgf.V("x"), sgf.V("y"), randTerm()),
			Where:  cond,
		}
		prog := &sgf.Program{Queries: []*sgf.BSGF{q}}
		if err := sgf.Validate(prog); err != nil {
			// Random constants can make the guard lose x or y; skip
			// those (the generator does not aim for validity).
			continue
		}
		indexed, err := EvalBSGF(q, db)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		naive := naiveEvalBSGF(q, db)
		if !indexed.Equal(naive) {
			t.Fatalf("trial %d: evaluators disagree on %s\nindexed:\n%s\nnaive:\n%s",
				trial, q, indexed.Dump(), naive.Dump())
		}
	}
}

// TestProgramMatchesNaive cross-checks nested program evaluation.
func TestProgramMatchesNaive(t *testing.T) {
	db := relation.NewDatabase()
	db.Put(relation.FromTuples("R", 2, []relation.Tuple{tup(1, 2), tup(2, 3), tup(3, 1), tup(4, 4)}))
	db.Put(relation.FromTuples("S", 1, []relation.Tuple{tup(1), tup(2)}))
	prog := sgf.MustParse(`
		Z1 := SELECT x, y FROM R(x, y) WHERE S(x);
		Z2 := SELECT x FROM Z1(x, y) WHERE NOT S(y);
		Z3 := SELECT x, y FROM R(x, y) WHERE Z2(x) OR Z1(y, x);`)
	indexed, err := EvalProgram(prog, db)
	if err != nil {
		t.Fatal(err)
	}
	naive := naiveEvalProgram(prog, db)
	for _, q := range prog.Queries {
		if !indexed.Relation(q.Name).Equal(naive.Relation(q.Name)) {
			t.Errorf("%s: evaluators disagree", q.Name)
		}
	}
}
