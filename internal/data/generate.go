// Package data provides seeded synthetic data generators matching the
// paper's experimental setup (§5.1): guard relations of n-ary tuples and
// conditional relations with controlled match rates against a guard
// column. Two notions of matching are supported:
//
//   - MatchFrac: the fraction of conditional tuples whose join value
//     occurs in the guard ("50% of the conditional tuples match those of
//     the guard relation", used in the main experiments);
//   - CoverFrac: the fraction of guard tuples matched by the conditional
//     relation (the "selectivity rate" of §5.4's selectivity experiment).
//
// All generators are deterministic given their seed.
package data

import (
	"fmt"
	"math/rand"

	"repro/internal/relation"
)

// missBase is the base of the value range used for deliberately
// non-matching join values. Guard domains must stay below it.
const missBase int64 = 1 << 40

// GuardSpec describes a synthetic guard relation.
type GuardSpec struct {
	Name   string
	Arity  int
	Tuples int
	Domain int64 // values are drawn uniformly from [0, Domain); 0 means 2×Tuples
	// Zipf, when positive, skews column 0: values are drawn from a Zipf
	// distribution with exponent 1+Zipf over [0, Domain) instead of
	// uniformly, so a few low values carry most of the tuples. Requires
	// Arity ≥ 2 — relations are tuple sets, so skewing a unary relation
	// could only shrink its distinct-value set, not repeat values.
	Zipf float64
	Seed int64
}

// tupleCapacity returns min(domain^arity, MaxInt64): the number of
// distinct tuples a relation over the domain can hold.
func tupleCapacity(domain int64, arity int) int64 {
	cap := int64(1)
	for i := 0; i < arity; i++ {
		if domain == 0 || cap > maxInt64/domain {
			return maxInt64
		}
		cap *= domain
	}
	return cap
}

const maxInt64 = int64(^uint64(0) >> 1)

// Generate builds the guard relation: exactly Tuples distinct tuples.
// Duplicate draws are re-drawn, so the spec must be satisfiable —
// Generate panics up front when Tuples exceeds Domain^Arity (the loop
// would spin forever), and panics after a bounded number of duplicate
// redraws when the spec is satisfiable but the distribution leaves too
// few likely combinations (e.g. extreme Zipf skew over a small domain).
func (s GuardSpec) Generate() *relation.Relation {
	r := relation.New(s.Name, s.Arity)
	if s.Tuples <= 0 {
		return r
	}
	domain := s.Domain
	if domain == 0 {
		domain = 2 * int64(s.Tuples)
	}
	if domain >= missBase {
		panic(fmt.Sprintf("data: guard domain %d exceeds missBase", domain))
	}
	if s.Zipf > 0 && s.Arity < 2 {
		panic(fmt.Sprintf("data: guard %s: Zipf skew requires Arity ≥ 2 (a unary relation is a distinct-value set)", s.Name))
	}
	if c := tupleCapacity(domain, s.Arity); int64(s.Tuples) > c {
		panic(fmt.Sprintf("data: guard %s cannot hold %d distinct tuples: Domain^Arity = %d^%d allows only %d",
			s.Name, s.Tuples, domain, s.Arity, c))
	}
	rng := rand.New(rand.NewSource(mix(s.Seed, s.Name)))
	var zipf *rand.Zipf
	if s.Zipf > 0 {
		zipf = rand.NewZipf(rng, 1+s.Zipf, 1, uint64(domain-1))
	}
	dups := 0
	for r.Size() < s.Tuples {
		t := make(relation.Tuple, s.Arity)
		for i := range t {
			if i == 0 && zipf != nil {
				t[i] = relation.Value(zipf.Uint64())
			} else {
				t[i] = relation.Value(rng.Int63n(domain))
			}
		}
		if !r.Add(t) {
			dups++
			if dups > 100*s.Tuples+1000 {
				panic(fmt.Sprintf("data: guard %s: %d duplicate redraws without reaching %d distinct tuples (Domain %d, Zipf %.2f leave too few likely combinations)",
					s.Name, dups, s.Tuples, domain, s.Zipf))
			}
		}
	}
	return r
}

// CondSpec describes a synthetic conditional relation whose join column
// relates to one column of a guard relation.
type CondSpec struct {
	Name   string
	Arity  int
	Tuples int
	Guard  *relation.Relation // the guard to match against
	Col    int                // guard column supplying join values
	JoinAt int                // column of this relation holding the join value

	// Exactly one of MatchFrac/CoverFrac modes applies. If CoverSet is
	// false, MatchFrac mode is used.
	MatchFrac float64 // fraction of conditional tuples with a guard-matching join value
	CoverFrac float64 // fraction of guard tuples this relation matches
	CoverSet  bool    // selects CoverFrac mode

	// OtherDomain is the domain for non-join columns (default: 2×Tuples).
	OtherDomain int64
	// Zipf, when positive, skews which guard values the matching tuples
	// join with: matching join values are picked by a Zipf(1+Zipf) index
	// into the shuffled distinct guard-column values instead of
	// uniformly, so a few guard values attract most of the matching
	// tuples. Requires Arity ≥ 2 — a unary conditional relation is a
	// distinct-value set and cannot repeat join values.
	Zipf float64
	Seed int64
}

// Generate builds the conditional relation.
func (s CondSpec) Generate() *relation.Relation {
	if s.Zipf > 0 && s.Arity < 2 {
		panic(fmt.Sprintf("data: conditional %s: Zipf skew requires Arity ≥ 2 (a unary relation is a distinct-value set)", s.Name))
	}
	rng := rand.New(rand.NewSource(mix(s.Seed, s.Name)))
	other := s.OtherDomain
	if other == 0 {
		other = 2 * int64(s.Tuples)
	}
	r := relation.New(s.Name, s.Arity)
	if s.CoverSet {
		s.generateCovering(r, rng, other)
	} else {
		s.generateMatching(r, rng, other)
	}
	return r
}

// guardColumnValues returns the distinct values of the guard column, in
// first-occurrence order.
func (s CondSpec) guardColumnValues() []relation.Value {
	seen := make(map[relation.Value]bool)
	var vals []relation.Value
	for _, t := range s.Guard.Tuples() {
		v := t[s.Col]
		if !seen[v] {
			seen[v] = true
			vals = append(vals, v)
		}
	}
	return vals
}

// addWithJoin inserts one tuple with the given join value, re-drawing the
// non-join columns on duplicate collisions. For unary relations a
// collision means the join value is already present, in which case the
// tuple is skipped and false is returned.
func (s CondSpec) addWithJoin(r *relation.Relation, rng *rand.Rand, other int64, join relation.Value) bool {
	for attempt := 0; attempt < 64; attempt++ {
		t := make(relation.Tuple, s.Arity)
		for i := range t {
			if i == s.JoinAt {
				t[i] = join
			} else {
				t[i] = relation.Value(rng.Int63n(other))
			}
		}
		if r.Add(t) {
			return true
		}
		if s.Arity == 1 {
			return false
		}
	}
	return false
}

func (s CondSpec) miss(rng *rand.Rand) relation.Value {
	return relation.Value(missBase + rng.Int63n(int64(s.Tuples)*8+16))
}

// padMisses fills the relation up to Tuples with non-matching tuples.
func (s CondSpec) padMisses(r *relation.Relation, rng *rand.Rand, other int64) {
	guardTries := 0
	for r.Size() < s.Tuples {
		if !s.addWithJoin(r, rng, other, s.miss(rng)) {
			guardTries++
			if guardTries > 100*s.Tuples+1000 {
				panic(fmt.Sprintf("data: cannot fill %s to %d distinct tuples", s.Name, s.Tuples))
			}
		}
	}
}

// generateMatching builds the relation so that an exact MatchFrac fraction
// of its tuples carries a join value present in the guard column (capped,
// for unary relations, by the number of distinct guard values).
func (s CondSpec) generateMatching(r *relation.Relation, rng *rand.Rand, other int64) {
	vals := s.guardColumnValues()
	rng.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	nMatch := int(s.MatchFrac*float64(s.Tuples) + 0.5)
	if nMatch > s.Tuples {
		nMatch = s.Tuples
	}
	if len(vals) == 0 {
		nMatch = 0
	}
	if s.Arity == 1 && nMatch > len(vals) {
		// A unary set relation cannot contain more matching tuples than
		// the guard column has distinct values. Preserve the requested
		// match *rate* by shrinking the relation proportionally.
		nMatch = len(vals)
		if s.MatchFrac > 0 {
			s.Tuples = int(float64(nMatch)/s.MatchFrac + 0.5)
		}
	}
	var zipf *rand.Zipf
	if s.Zipf > 0 && len(vals) > 0 {
		zipf = rand.NewZipf(rng, 1+s.Zipf, 1, uint64(len(vals)-1))
	}
	tries := 0
	for i := 0; i < nMatch; {
		var v relation.Value
		switch {
		case s.Arity == 1:
			v = vals[i]
		case zipf != nil:
			v = vals[zipf.Uint64()]
		default:
			v = vals[rng.Intn(len(vals))]
		}
		if s.addWithJoin(r, rng, other, v) {
			i++
		} else {
			tries++
			if tries > 100*s.Tuples+1000 {
				panic(fmt.Sprintf("data: cannot place %d matching tuples in %s (OtherDomain %d too small for the join-value distribution)",
					nMatch, s.Name, other))
			}
		}
	}
	s.padMisses(r, rng, other)
}

// generateCovering builds the relation so that it matches a CoverFrac
// fraction of the distinct guard column values (the selectivity rate of
// §5.4), padding with non-matching tuples up to Tuples.
func (s CondSpec) generateCovering(r *relation.Relation, rng *rand.Rand, other int64) {
	vals := s.guardColumnValues()
	rng.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	nCover := int(s.CoverFrac*float64(len(vals)) + 0.5)
	if nCover > len(vals) {
		nCover = len(vals)
	}
	if nCover > s.Tuples {
		nCover = s.Tuples
	}
	for _, v := range vals[:nCover] {
		s.addWithJoin(r, rng, other, v)
	}
	s.padMisses(r, rng, other)
}

// mix derives a seed from a base seed and a name, so that sibling
// relations generated from one configuration seed differ.
func mix(seed int64, name string) int64 {
	h := uint64(seed) * 0x9E3779B97F4A7C15
	for _, c := range name {
		h ^= uint64(c)
		h *= 0x100000001B3
	}
	return int64(h & 0x7FFFFFFFFFFFFFFF)
}

// MatchRate measures the fraction of guard tuples whose Col value occurs
// at cond's JoinAt column: the realized selectivity rate.
func MatchRate(guard *relation.Relation, col int, cond *relation.Relation, joinAt int) float64 {
	if guard.Size() == 0 {
		return 0
	}
	present := make(map[relation.Value]bool)
	for _, t := range cond.Tuples() {
		present[t[joinAt]] = true
	}
	n := 0
	for _, t := range guard.Tuples() {
		if present[t[col]] {
			n++
		}
	}
	return float64(n) / float64(guard.Size())
}

// CondMatchRate measures the fraction of conditional tuples whose JoinAt
// value occurs in the guard column.
func CondMatchRate(guard *relation.Relation, col int, cond *relation.Relation, joinAt int) float64 {
	if cond.Size() == 0 {
		return 0
	}
	present := make(map[relation.Value]bool)
	for _, t := range guard.Tuples() {
		present[t[col]] = true
	}
	n := 0
	for _, t := range cond.Tuples() {
		if present[t[joinAt]] {
			n++
		}
	}
	return float64(n) / float64(cond.Size())
}
