package data

import (
	"math"
	"testing"

	"repro/internal/relation"
)

func TestGuardSpecDeterministic(t *testing.T) {
	a := GuardSpec{Name: "R", Arity: 4, Tuples: 500, Seed: 1}.Generate()
	b := GuardSpec{Name: "R", Arity: 4, Tuples: 500, Seed: 1}.Generate()
	if !a.Equal(b) {
		t.Error("same seed produced different relations")
	}
	c := GuardSpec{Name: "R", Arity: 4, Tuples: 500, Seed: 2}.Generate()
	if a.Equal(c) {
		t.Error("different seeds produced identical relations")
	}
}

func TestGuardSpecSizeAndArity(t *testing.T) {
	r := GuardSpec{Name: "R", Arity: 3, Tuples: 1000, Seed: 7}.Generate()
	if r.Size() != 1000 {
		t.Errorf("Size = %d", r.Size())
	}
	if r.Arity() != 3 {
		t.Errorf("Arity = %d", r.Arity())
	}
}

func TestGuardNameAffectsContent(t *testing.T) {
	a := GuardSpec{Name: "R", Arity: 2, Tuples: 200, Seed: 1}.Generate()
	b := GuardSpec{Name: "S", Arity: 2, Tuples: 200, Seed: 1}.Generate()
	if a.Equal(b) {
		t.Error("sibling relations with same seed are identical")
	}
}

func TestCondMatchFrac(t *testing.T) {
	guard := GuardSpec{Name: "R", Arity: 4, Tuples: 2000, Domain: 100000, Seed: 3}.Generate()
	for _, frac := range []float64{0.0, 0.5, 1.0} {
		cond := CondSpec{
			Name: "S", Arity: 1, Tuples: 2000,
			Guard: guard, Col: 0, MatchFrac: frac, Seed: 11,
		}.Generate()
		got := CondMatchRate(guard, 0, cond, 0)
		if math.Abs(got-frac) > 0.06 {
			t.Errorf("MatchFrac %.1f: realized cond match rate %.3f", frac, got)
		}
	}
}

func TestCondMatchFracCappedUnaryKeepsRate(t *testing.T) {
	// Guard column with few distinct values: a unary conditional cannot
	// hold 2000 matching tuples, so the generator shrinks while keeping
	// the match rate.
	guard := GuardSpec{Name: "R", Arity: 1, Tuples: 500, Domain: 600, Seed: 3}.Generate()
	cond := CondSpec{
		Name: "S", Arity: 1, Tuples: 2000,
		Guard: guard, Col: 0, MatchFrac: 1.0, Seed: 11,
	}.Generate()
	if got := CondMatchRate(guard, 0, cond, 0); got < 0.99 {
		t.Errorf("capped match rate = %.3f, want 1.0", got)
	}
	if cond.Size() > 600 {
		t.Errorf("capped relation has %d tuples", cond.Size())
	}
}

func TestCondCoverFrac(t *testing.T) {
	guard := GuardSpec{Name: "R", Arity: 4, Tuples: 3000, Seed: 5}.Generate()
	for _, sel := range []float64{0.1, 0.5, 0.9} {
		cond := CondSpec{
			Name: "S", Arity: 1, Tuples: 3000,
			Guard: guard, Col: 1, CoverFrac: sel, CoverSet: true, Seed: 13,
		}.Generate()
		got := MatchRate(guard, 1, cond, 0)
		if math.Abs(got-sel) > 0.05 {
			t.Errorf("CoverFrac %.1f: realized guard match rate %.3f", sel, got)
		}
	}
}

func TestCondJoinAtColumn(t *testing.T) {
	guard := GuardSpec{Name: "R", Arity: 2, Tuples: 500, Seed: 5}.Generate()
	cond := CondSpec{
		Name: "S", Arity: 2, Tuples: 500,
		Guard: guard, Col: 0, JoinAt: 1, MatchFrac: 1.0, Seed: 17,
	}.Generate()
	if got := CondMatchRate(guard, 0, cond, 1); got < 0.95 {
		t.Errorf("JoinAt=1 match rate %.3f", got)
	}
}

func TestMatchRateHelpers(t *testing.T) {
	guard := relation.FromTuples("R", 1, []relation.Tuple{
		{relation.Value(1)}, {relation.Value(2)}, {relation.Value(3)}, {relation.Value(4)},
	})
	cond := relation.FromTuples("S", 1, []relation.Tuple{
		{relation.Value(1)}, {relation.Value(2)}, {relation.Value(99)},
	})
	if got := MatchRate(guard, 0, cond, 0); got != 0.5 {
		t.Errorf("MatchRate = %v", got)
	}
	if got := CondMatchRate(guard, 0, cond, 0); math.Abs(got-2.0/3.0) > 1e-9 {
		t.Errorf("CondMatchRate = %v", got)
	}
	if MatchRate(relation.New("E", 1), 0, cond, 0) != 0 {
		t.Error("empty guard MatchRate != 0")
	}
	if CondMatchRate(guard, 0, relation.New("E", 1), 0) != 0 {
		t.Error("empty cond CondMatchRate != 0")
	}
}

func TestMissValuesDisjointFromGuardDomain(t *testing.T) {
	guard := GuardSpec{Name: "R", Arity: 1, Tuples: 100, Seed: 1}.Generate()
	cond := CondSpec{
		Name: "S", Arity: 1, Tuples: 100,
		Guard: guard, Col: 0, MatchFrac: 0, Seed: 2,
	}.Generate()
	if got := CondMatchRate(guard, 0, cond, 0); got != 0 {
		t.Errorf("MatchFrac 0 produced matches: %v", got)
	}
}
