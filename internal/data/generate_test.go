package data

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/relation"
)

func TestGuardSpecDeterministic(t *testing.T) {
	a := GuardSpec{Name: "R", Arity: 4, Tuples: 500, Seed: 1}.Generate()
	b := GuardSpec{Name: "R", Arity: 4, Tuples: 500, Seed: 1}.Generate()
	if !a.Equal(b) {
		t.Error("same seed produced different relations")
	}
	c := GuardSpec{Name: "R", Arity: 4, Tuples: 500, Seed: 2}.Generate()
	if a.Equal(c) {
		t.Error("different seeds produced identical relations")
	}
}

func TestGuardSpecSizeAndArity(t *testing.T) {
	r := GuardSpec{Name: "R", Arity: 3, Tuples: 1000, Seed: 7}.Generate()
	if r.Size() != 1000 {
		t.Errorf("Size = %d", r.Size())
	}
	if r.Arity() != 3 {
		t.Errorf("Arity = %d", r.Arity())
	}
}

func TestGuardNameAffectsContent(t *testing.T) {
	a := GuardSpec{Name: "R", Arity: 2, Tuples: 200, Seed: 1}.Generate()
	b := GuardSpec{Name: "S", Arity: 2, Tuples: 200, Seed: 1}.Generate()
	if a.Equal(b) {
		t.Error("sibling relations with same seed are identical")
	}
}

func TestCondMatchFrac(t *testing.T) {
	guard := GuardSpec{Name: "R", Arity: 4, Tuples: 2000, Domain: 100000, Seed: 3}.Generate()
	for _, frac := range []float64{0.0, 0.5, 1.0} {
		cond := CondSpec{
			Name: "S", Arity: 1, Tuples: 2000,
			Guard: guard, Col: 0, MatchFrac: frac, Seed: 11,
		}.Generate()
		got := CondMatchRate(guard, 0, cond, 0)
		if math.Abs(got-frac) > 0.06 {
			t.Errorf("MatchFrac %.1f: realized cond match rate %.3f", frac, got)
		}
	}
}

func TestCondMatchFracCappedUnaryKeepsRate(t *testing.T) {
	// Guard column with few distinct values: a unary conditional cannot
	// hold 2000 matching tuples, so the generator shrinks while keeping
	// the match rate.
	guard := GuardSpec{Name: "R", Arity: 1, Tuples: 500, Domain: 600, Seed: 3}.Generate()
	cond := CondSpec{
		Name: "S", Arity: 1, Tuples: 2000,
		Guard: guard, Col: 0, MatchFrac: 1.0, Seed: 11,
	}.Generate()
	if got := CondMatchRate(guard, 0, cond, 0); got < 0.99 {
		t.Errorf("capped match rate = %.3f, want 1.0", got)
	}
	if cond.Size() > 600 {
		t.Errorf("capped relation has %d tuples", cond.Size())
	}
}

func TestCondCoverFrac(t *testing.T) {
	guard := GuardSpec{Name: "R", Arity: 4, Tuples: 3000, Seed: 5}.Generate()
	for _, sel := range []float64{0.1, 0.5, 0.9} {
		cond := CondSpec{
			Name: "S", Arity: 1, Tuples: 3000,
			Guard: guard, Col: 1, CoverFrac: sel, CoverSet: true, Seed: 13,
		}.Generate()
		got := MatchRate(guard, 1, cond, 0)
		if math.Abs(got-sel) > 0.05 {
			t.Errorf("CoverFrac %.1f: realized guard match rate %.3f", sel, got)
		}
	}
}

func TestCondJoinAtColumn(t *testing.T) {
	guard := GuardSpec{Name: "R", Arity: 2, Tuples: 500, Seed: 5}.Generate()
	cond := CondSpec{
		Name: "S", Arity: 2, Tuples: 500,
		Guard: guard, Col: 0, JoinAt: 1, MatchFrac: 1.0, Seed: 17,
	}.Generate()
	if got := CondMatchRate(guard, 0, cond, 1); got < 0.95 {
		t.Errorf("JoinAt=1 match rate %.3f", got)
	}
}

func TestMatchRateHelpers(t *testing.T) {
	guard := relation.FromTuples("R", 1, []relation.Tuple{
		{relation.Value(1)}, {relation.Value(2)}, {relation.Value(3)}, {relation.Value(4)},
	})
	cond := relation.FromTuples("S", 1, []relation.Tuple{
		{relation.Value(1)}, {relation.Value(2)}, {relation.Value(99)},
	})
	if got := MatchRate(guard, 0, cond, 0); got != 0.5 {
		t.Errorf("MatchRate = %v", got)
	}
	if got := CondMatchRate(guard, 0, cond, 0); math.Abs(got-2.0/3.0) > 1e-9 {
		t.Errorf("CondMatchRate = %v", got)
	}
	if MatchRate(relation.New("E", 1), 0, cond, 0) != 0 {
		t.Error("empty guard MatchRate != 0")
	}
	if CondMatchRate(guard, 0, relation.New("E", 1), 0) != 0 {
		t.Error("empty cond CondMatchRate != 0")
	}
}

func mustPanic(t *testing.T, want string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic (want one mentioning %q)", want)
		}
		if msg := fmt.Sprint(r); !strings.Contains(msg, want) {
			t.Fatalf("panic %q does not mention %q", msg, want)
		}
	}()
	f()
}

func TestGuardInfeasibleTuplesPanics(t *testing.T) {
	// Regression: Tuples > Domain^Arity used to spin in the redraw loop
	// forever; it must fail fast with a clear error instead.
	mustPanic(t, "cannot hold", func() {
		GuardSpec{Name: "R", Arity: 1, Tuples: 10, Domain: 5, Seed: 1}.Generate()
	})
	mustPanic(t, "cannot hold", func() {
		GuardSpec{Name: "R", Arity: 2, Tuples: 10, Domain: 3, Seed: 1}.Generate()
	})
}

func TestGuardExactCapacityTerminates(t *testing.T) {
	// Tuples == Domain^Arity is the slowest satisfiable spec (full coupon
	// collection); it must terminate and enumerate the whole domain.
	r := GuardSpec{Name: "R", Arity: 1, Tuples: 64, Domain: 64, Seed: 9}.Generate()
	if r.Size() != 64 {
		t.Errorf("Size = %d, want 64", r.Size())
	}
}

func TestGuardZipfRequiresArity2(t *testing.T) {
	mustPanic(t, "Zipf", func() {
		GuardSpec{Name: "R", Arity: 1, Tuples: 10, Zipf: 1, Seed: 1}.Generate()
	})
	mustPanic(t, "Zipf", func() {
		CondSpec{Name: "S", Arity: 1, Tuples: 10, Zipf: 1, Seed: 1}.Generate()
	})
}

func TestGuardZipfSkewsColumn0(t *testing.T) {
	const tuples = 4000
	spec := GuardSpec{Name: "R", Arity: 2, Tuples: tuples, Domain: 1 << 30, Zipf: 0.8, Seed: 21}
	r := spec.Generate()
	if r.Size() != tuples {
		t.Fatalf("Size = %d", r.Size())
	}
	if !r.Equal(spec.Generate()) {
		t.Error("zipf generation is not deterministic")
	}
	counts := make(map[relation.Value]int)
	top := 0
	for _, tp := range r.Tuples() {
		counts[tp[0]]++
		if counts[tp[0]] > top {
			top = counts[tp[0]]
		}
	}
	// Under the uniform draw every value appears ~once (domain 2^30 ≫
	// tuples); under Zipf(1.8) the hottest value carries a large share.
	if top < tuples/20 {
		t.Errorf("hottest column-0 value appears %d times out of %d; expected heavy skew", top, tuples)
	}
	uniform := GuardSpec{Name: "R", Arity: 2, Tuples: tuples, Domain: 1 << 30, Seed: 21}.Generate()
	if r.Equal(uniform) {
		t.Error("zipf output identical to uniform output")
	}
}

func TestCondZipfSkewsJoinValues(t *testing.T) {
	guard := GuardSpec{Name: "R", Arity: 2, Tuples: 1000, Domain: 1 << 30, Seed: 3}.Generate()
	cond := CondSpec{
		Name: "S", Arity: 2, Tuples: 4000,
		Guard: guard, Col: 0, MatchFrac: 1.0, Zipf: 0.8, Seed: 11,
	}.Generate()
	if got := CondMatchRate(guard, 0, cond, 0); got < 0.95 {
		t.Fatalf("zipf cond match rate %.3f, want ~1", got)
	}
	counts := make(map[relation.Value]int)
	top := 0
	for _, tp := range cond.Tuples() {
		counts[tp[0]]++
		if counts[tp[0]] > top {
			top = counts[tp[0]]
		}
	}
	// Uniform picks over 1000 distinct guard values put ~4 tuples on
	// each; the Zipf head must be far above that.
	if top < 200 {
		t.Errorf("hottest join value carries %d of 4000 tuples; expected heavy skew", top)
	}
}

func TestMissValuesDisjointFromGuardDomain(t *testing.T) {
	guard := GuardSpec{Name: "R", Arity: 1, Tuples: 100, Seed: 1}.Generate()
	cond := CondSpec{
		Name: "S", Arity: 1, Tuples: 100,
		Guard: guard, Col: 0, MatchFrac: 0, Seed: 2,
	}.Generate()
	if got := CondMatchRate(guard, 0, cond, 0); got != 0 {
		t.Errorf("MatchFrac 0 produced matches: %v", got)
	}
}
