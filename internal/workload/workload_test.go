package workload

import (
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/refeval"
	"repro/internal/sgf"
)

func TestAllWorkloadsParseAndValidate(t *testing.T) {
	all := append(append(AQueries(), BQueries()...), CQueries()...)
	all = append(all, CostModel(), A3K(2), A3K(16))
	for _, w := range all {
		if err := sgf.Validate(w.Program); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
	}
}

func TestWorkloadShapes(t *testing.T) {
	if got := len(core.ExtractEquations(A1().Program.Queries)); got != 4 {
		t.Errorf("A1 equations = %d", got)
	}
	if got := len(core.ExtractEquations(B1().Program.Queries)); got != 16 {
		t.Errorf("B1 equations = %d", got)
	}
	if got := len(core.ExtractEquations(B2().Program.Queries)); got != 4 {
		t.Errorf("B2 equations = %d (distinct atoms)", got)
	}
	if got := len(core.ExtractEquations(CostModel().Program.Queries)); got != 48 {
		t.Errorf("COSTMODEL equations = %d", got)
	}
	if got := len(core.ExtractEquations(A3K(7).Program.Queries)); got != 7 {
		t.Errorf("A3K(7) equations = %d", got)
	}
	// A3 and B2 are 1-round applicable; A1 is not.
	if core.OneRoundApplicable(A3().Program.Queries[0]) != core.OneRoundShared {
		t.Error("A3 should be shared-key 1-round")
	}
	if core.OneRoundApplicable(B2().Program.Queries[0]) != core.OneRoundShared {
		t.Error("B2 should be shared-key 1-round")
	}
	if core.OneRoundApplicable(A1().Program.Queries[0]) != core.OneRoundInapplicable {
		t.Error("A1 should not be 1-round applicable")
	}
}

func TestWorkloadLevels(t *testing.T) {
	for _, c := range []struct {
		w      Workload
		levels int
	}{
		{C1(), 2}, {C2(), 2}, {C3(), 3}, {C4(), 2},
	} {
		g := sgf.BuildDepGraph(c.w.Program)
		if got := len(g.LevelGroups()); got != c.levels {
			t.Errorf("%s levels = %d, want %d", c.w.Name, got, c.levels)
		}
	}
}

func TestBuildGeneratesAllBaseRelations(t *testing.T) {
	for _, w := range []Workload{A1(), A4(), B2(), C3(), CostModel()} {
		db := w.Build(0.0001)
		for _, name := range w.Program.BaseRelations() {
			if !db.Has(name) {
				t.Errorf("%s: missing base relation %s", w.Name, name)
			}
		}
		// Every workload must evaluate without error at tiny scale.
		if _, err := refeval.EvalProgram(w.Program, db); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
	}
}

func TestBuildScale(t *testing.T) {
	w := A1()
	db := w.Build(0.00002) // 2000 guard tuples
	if got := db.Relation("R").Size(); got != 2000 {
		t.Errorf("guard size = %d", got)
	}
	if got := db.Relation("S").Size(); got != 2000 {
		t.Errorf("cond size = %d", got)
	}
}

func TestBuildMatchFrac(t *testing.T) {
	w := A1()
	db := w.Build(0.00005) // 5000 tuples
	rate := data.CondMatchRate(db.Relation("R"), 0, db.Relation("S"), 0)
	if rate < 0.44 || rate > 0.56 {
		t.Errorf("S match rate = %v, want ~0.5", rate)
	}
	// T joins guard column 1.
	rate = data.CondMatchRate(db.Relation("R"), 1, db.Relation("T"), 0)
	if rate < 0.44 || rate > 0.56 {
		t.Errorf("T match rate = %v, want ~0.5", rate)
	}
}

func TestBuildSelectivity(t *testing.T) {
	w := A1().WithSelectivity(0.3)
	db := w.Build(0.00005)
	rate := data.MatchRate(db.Relation("R"), 0, db.Relation("S"), 0)
	if rate < 0.25 || rate > 0.35 {
		t.Errorf("selectivity = %v, want ~0.3", rate)
	}
}

func TestCostModelFiltersEverything(t *testing.T) {
	w := CostModel()
	db := w.Build(0.00002)
	out, err := refeval.EvalOutput(w.Program, db)
	if err != nil {
		t.Fatal(err)
	}
	if out.Size() != 0 {
		t.Errorf("cost-model query output = %d tuples, want 0 (constant filters all)", out.Size())
	}
}

func TestDeterministicBuild(t *testing.T) {
	a := A2().Build(0.00002)
	b := A2().Build(0.00002)
	for _, name := range a.Names() {
		if !a.Relation(name).Equal(b.Relation(name)) {
			t.Errorf("relation %s differs between builds", name)
		}
	}
}
