// Package workload defines the paper's experimental queries (Table 2 and
// Figure 6) and generates their synthetic datasets at a configurable
// scale. The paper's full-scale setup uses 100M-tuple guard relations
// (4 GB at 4-ary, 10 bytes/field) and equally many conditional tuples
// (1 GB at unary) with 50% of conditional tuples matching the guard; a
// Scale of 1.0 reproduces those cardinalities, and experiments default
// to Scale 1/1000 with cost-model buffers scaled alike (DESIGN.md §1).
package workload

import (
	"fmt"
	"strings"

	"repro/internal/data"
	"repro/internal/relation"
	"repro/internal/sgf"
)

// PaperGuardTuples is the paper's guard relation cardinality.
const PaperGuardTuples = 100_000_000

// Workload is a named SGF program plus its data-generation parameters.
type Workload struct {
	Name        string
	Description string
	Program     *sgf.Program
	// GuardTuples / CondTuples at scale 1.0 (defaults: paper sizes).
	GuardTuples int
	CondTuples  int
	// MatchFrac is the fraction of conditional tuples matching the guard
	// (§5.1: 50%). Ignored when CoverSet is set.
	MatchFrac float64
	// CoverSel, with CoverSet, fixes the selectivity rate: the fraction
	// of guard tuples each conditional relation matches (§5.4).
	CoverSel float64
	CoverSet bool
	// Zipf, when positive, skews the generated data (data.GuardSpec.Zipf /
	// data.CondSpec.Zipf): guard column 0 and the conditionals' matching
	// join values follow a Zipf(1+Zipf) distribution. Applied only to
	// relations of arity ≥ 2 — unary relations are distinct-value sets
	// that skew cannot change.
	Zipf float64
	Seed int64
}

func mustParse(name, src string) *sgf.Program {
	p, err := sgf.Parse(src)
	if err != nil {
		panic(fmt.Sprintf("workload %s: %v", name, err))
	}
	return p
}

func std(name, desc, src string) Workload {
	return Workload{
		Name:        name,
		Description: desc,
		Program:     mustParse(name, src),
		GuardTuples: PaperGuardTuples,
		CondTuples:  PaperGuardTuples,
		MatchFrac:   0.5,
		Seed:        1,
	}
}

// A1 — guard sharing: four semi-joins over one guard, distinct
// conditionals on distinct keys.
func A1() Workload {
	return std("A1", "guard sharing",
		`Z := SELECT x, y, z, w FROM R(x, y, z, w) WHERE S(x) AND T(y) AND U(z) AND V(w);`)
}

// A2 — guard & conditional name sharing: one conditional relation on
// four distinct keys.
func A2() Workload {
	return std("A2", "guard & conditional name sharing",
		`Z := SELECT x, y, z, w FROM R(x, y, z, w) WHERE S(x) AND S(y) AND S(z) AND S(w);`)
}

// A3 — guard & conditional key sharing: four conditionals on one key.
func A3() Workload {
	return std("A3", "guard & conditional key sharing",
		`Z := SELECT x, y, z, w FROM R(x, y, z, w) WHERE S(x) AND T(x) AND U(x) AND V(x);`)
}

// A4 — no sharing: two queries over different guards with disjoint
// conditional relations.
func A4() Workload {
	return std("A4", "no sharing", `
		Z1 := SELECT x, y, z, w FROM R(x, y, z, w) WHERE S(x) AND T(y) AND U(z) AND V(w);
		Z2 := SELECT x, y, z, w FROM G(x, y, z, w) WHERE W(x) AND X(y) AND Y(z) AND Q(w);`)
}

// A5 — conditional name sharing: two guards sharing all conditionals.
func A5() Workload {
	return std("A5", "conditional name sharing", `
		Z1 := SELECT x, y, z, w FROM R(x, y, z, w) WHERE S(x) AND T(y) AND U(z) AND V(w);
		Z2 := SELECT x, y, z, w FROM G(x, y, z, w) WHERE S(x) AND T(y) AND U(z) AND V(w);`)
}

// B1 — large conjunctive query: 16 atoms (4 relations × 4 keys).
func B1() Workload {
	var atoms []string
	for _, rel := range []string{"S", "T", "U", "V"} {
		for _, v := range []string{"x", "y", "z", "w"} {
			atoms = append(atoms, fmt.Sprintf("%s(%s)", rel, v))
		}
	}
	return std("B1", "large conjunctive query",
		fmt.Sprintf(`Z := SELECT x, y, z, w FROM R(x, y, z, w) WHERE %s;`,
			strings.Join(atoms, " AND ")))
}

// B2 — the uniqueness query: tuples connected to exactly one of the
// conditional relations through x.
func B2() Workload {
	return std("B2", "uniqueness query", `
		Z := SELECT x, y, z, w FROM R(x, y, z, w) WHERE
			(S(x) AND NOT T(x) AND NOT U(x) AND NOT V(x)) OR
			(NOT S(x) AND T(x) AND NOT U(x) AND NOT V(x)) OR
			(S(x) AND NOT T(x) AND U(x) AND NOT V(x)) OR
			(NOT S(x) AND NOT T(x) AND NOT U(x) AND V(x));`)
}

// A3K generalizes A3 to k conditional atoms on one key (Figure 8).
func A3K(k int) Workload {
	var atoms []string
	for i := 1; i <= k; i++ {
		atoms = append(atoms, fmt.Sprintf("C%d(x)", i))
	}
	w := std(fmt.Sprintf("A3(%d)", k), "key sharing, variable width",
		fmt.Sprintf(`Z := SELECT x, y, z, w FROM R(x, y, z, w) WHERE %s;`,
			strings.Join(atoms, " AND ")))
	return w
}

// CostModelConstant is the filtering constant of the §5.2 cost-model
// query: no conditional tuple's second field ever equals it.
const CostModelConstant = 999_999_999

// CostModel is the adversarial query of §5.2 ("Cost Model"): a 12-ary
// guard semi-joined with four conditional relations on all twelve keys,
// with a constant that filters out every conditional tuple. The guard's
// map output is huge (48 requests per fact) while the large conditional
// inputs emit nothing — exactly the non-proportional input/output mix
// where the per-partition model (Eq. 2) and the aggregate model (Eq. 3)
// diverge: the aggregate model spreads the guard's intermediate data
// over the conditionals' many mappers and misses the map-side merges.
func CostModel() Workload {
	// The twelve distinct keys x̄1..x̄12 over the 4-ary guard are the
	// twelve ordered pairs of distinct guard variables; every fact of R
	// therefore produces 48 composite-key requests — the "many
	// key-value pairs for each tuple in R" of §3.3 — while the constant
	// filters every tuple of S1..S4, whose map output is empty.
	guardVars := []string{"x", "y", "z", "w"}
	var keys [][2]string
	for _, a := range guardVars {
		for _, b := range guardVars {
			if a != b {
				keys = append(keys, [2]string{a, b})
			}
		}
	}
	var atoms []string
	for s := 1; s <= 4; s++ {
		for _, k := range keys {
			atoms = append(atoms, fmt.Sprintf("S%d(%s, %s, %d)", s, k[0], k[1], CostModelConstant))
		}
	}
	w := std("COSTMODEL", "map-expansion vs filtering inputs",
		fmt.Sprintf(`Z := SELECT x, y, z, w FROM R(x, y, z, w) WHERE %s;`,
			strings.Join(atoms, " AND ")))
	// Conditional relations contribute many map tasks but no map
	// output: the non-proportional mix that separates the two models.
	w.CondTuples = 5 * PaperGuardTuples
	return w
}

// C1 — two-level SGF query set with disjunctive upper levels and shared
// guards (Figure 6a; the figure's duplicated Z3 label is disambiguated).
func C1() Workload {
	return std("C1", "two-level query set, shared guards", `
		ZA := SELECT x FROM R(x, y, z, w) WHERE S(x) AND S(y);
		ZB := SELECT x FROM G(x, y, z, w) WHERE T(x) AND T(y);
		ZC := SELECT x FROM H(x, y, z, w) WHERE U(x) AND U(y);
		ZD := SELECT x FROM G(x, y, z, w) WHERE ZA(z) OR ZA(w);
		ZE := SELECT x FROM H(x, y, z, w) WHERE ZC(z) OR ZC(w);`)
}

// C2 — three chains with crossing guard reuse (Figure 6b).
func C2() Workload {
	return std("C2", "crossed chains, guard reuse", `
		Z1 := SELECT x FROM R(x, y, z, w) WHERE S(x) AND S(y);
		Z2 := SELECT x FROM G(x, y, z, w) WHERE T(x) AND T(y);
		Z3 := SELECT x FROM H(x, y, z, w) WHERE U(x) AND U(y);
		Z4 := SELECT x FROM G(x, y, z, w) WHERE Z1(x) AND Z1(y);
		Z5 := SELECT x FROM H(x, y, z, w) WHERE Z2(x) AND Z2(y);
		Z6 := SELECT x FROM R(x, y, z, w) WHERE Z3(x) AND Z3(y);`)
}

// C3 — a complex three-level query with many distinct atoms
// (Figure 6c).
func C3() Workload {
	return std("C3", "complex multi-level query", `
		Z11 := SELECT z FROM R(x, y, z, w) WHERE S(x) AND T(y);
		Z12 := SELECT z FROM R(x, y, z, w) WHERE T(y);
		Z13 := SELECT z FROM I(x, y, z, w) WHERE NOT S(w);
		Z21 := SELECT z FROM G(x, y, z, w) WHERE Z11(x) AND U(y);
		Z22 := SELECT z FROM H(x, y, z, w) WHERE U(y) OR V(y) AND Z12(x);
		Z23 := SELECT z FROM R(x, y, z, w) WHERE U(x) AND T(y) AND V(z) AND Z13(w);
		Z31 := SELECT z FROM I(x, y, z, w) WHERE Z22(x) AND T(x) AND V(y);`)
}

// C4 — two levels with many overlapping atoms (Figure 6d; the figure's
// Z23/Z24 references are read as Z13/Z14).
func C4() Workload {
	return std("C4", "two levels, many overlapping atoms", `
		Z11 := SELECT y FROM R(x, y, z, w) WHERE S(x) OR T(y);
		Z12 := SELECT y FROM R(x, y, z, w) WHERE U(z) OR S(x);
		Z13 := SELECT y FROM G(x, y, z, w) WHERE U(x) OR V(y);
		Z14 := SELECT y FROM G(x, y, z, w) WHERE S(z) OR U(x);
		Z21 := SELECT x, y, z, w FROM H(x, y, z, w) WHERE Z11(x) OR Z12(y) OR Z13(z) OR Z14(w);`)
}

// AQueries returns A1–A5 in order.
func AQueries() []Workload {
	return []Workload{A1(), A2(), A3(), A4(), A5()}
}

// BQueries returns B1–B2.
func BQueries() []Workload { return []Workload{B1(), B2()} }

// CQueries returns C1–C4.
func CQueries() []Workload { return []Workload{C1(), C2(), C3(), C4()} }

// Build generates the workload's database at the given scale (1.0 =
// paper size). Guard relations (any base relation used as a guard) get
// ⌈GuardTuples×scale⌉ tuples; conditional-only base relations get
// ⌈CondTuples×scale⌉ tuples matched against the first guard column they
// join with.
func (w Workload) Build(scale float64) *relation.Database {
	db := relation.NewDatabase()
	defined := w.Program.Defined()

	// Classify base relations: guard vs conditional-only, with arity.
	type relUse struct {
		arity   int
		isGuard bool
		// first conditional pairing: guard relation, guard column, and
		// the atom's join column.
		guardRel string
		guardCol int
		joinAt   int
		paired   bool
	}
	uses := make(map[string]*relUse)
	order := []string{}
	touch := func(name string, arity int) *relUse {
		u, ok := uses[name]
		if !ok {
			u = &relUse{arity: arity}
			uses[name] = u
			order = append(order, name)
		}
		return u
	}
	for _, q := range w.Program.Queries {
		if !defined[q.Guard.Rel] {
			touch(q.Guard.Rel, q.Guard.Arity()).isGuard = true
		}
		for _, atom := range q.CondAtoms() {
			if defined[atom.Rel] {
				continue
			}
			u := touch(atom.Rel, atom.Arity())
			if u.paired || defined[q.Guard.Rel] {
				continue
			}
			shared := sgf.SharedVars(q.Guard, atom)
			if len(shared) == 0 {
				continue
			}
			u.paired = true
			u.guardRel = q.Guard.Rel
			u.guardCol = q.Guard.VarPositions(shared[:1])[0]
			u.joinAt = atom.VarPositions(shared[:1])[0]
		}
	}

	guardN := scaled(w.GuardTuples, scale)
	condN := scaled(w.CondTuples, scale)

	// Guards first (conditionals sample their columns).
	for _, name := range order {
		u := uses[name]
		if !u.isGuard {
			continue
		}
		g := data.GuardSpec{
			Name:   name,
			Arity:  u.arity,
			Tuples: guardN,
			Seed:   w.Seed,
		}
		if u.arity >= 2 {
			g.Zipf = w.Zipf
		}
		db.Put(g.Generate())
	}
	for _, name := range order {
		u := uses[name]
		if u.isGuard {
			continue
		}
		spec := data.CondSpec{
			Name:      name,
			Arity:     u.arity,
			Tuples:    condN,
			MatchFrac: w.MatchFrac,
			CoverFrac: w.CoverSel,
			CoverSet:  w.CoverSet,
			Seed:      w.Seed,
		}
		if u.arity >= 2 {
			spec.Zipf = w.Zipf
		}
		if u.paired {
			spec.Guard = db.Relation(u.guardRel)
			spec.Col = u.guardCol
			spec.JoinAt = u.joinAt
		} else {
			// No join pairing: generate against a throwaway guard so the
			// value distribution is still well-defined.
			spec.Guard = data.GuardSpec{Name: name + "_aux", Arity: 1, Tuples: condN, Seed: w.Seed + 7}.Generate()
			spec.Col = 0
		}
		db.Put(spec.Generate())
	}
	return db
}

func scaled(n int, scale float64) int {
	s := int(float64(n)*scale + 0.5)
	if s < 1 {
		s = 1
	}
	return s
}

// WithScaleSeed returns a copy with a different seed (for repeated
// runs).
func (w Workload) WithSeed(seed int64) Workload {
	w.Seed = seed
	return w
}

// WithSelectivity returns a copy configured for the §5.4 selectivity
// experiment: each conditional relation matches `sel` of the guard.
func (w Workload) WithSelectivity(sel float64) Workload {
	w.CoverSet = true
	w.CoverSel = sel
	return w
}
