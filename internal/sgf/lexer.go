package sgf

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokInt
	tokString // quoted string constant
	tokAssign // :=
	tokLParen
	tokRParen
	tokComma
	tokSemi
	tokSelect
	tokFrom
	tokWhere
	tokAnd
	tokOr
	tokNot
)

// String names the token kind as it should read in a syntax-error
// message ("identifier", "':='", "keyword SELECT", ...).
func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokInt:
		return "integer"
	case tokString:
		return "string"
	case tokAssign:
		return "':='"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokSemi:
		return "';'"
	case tokSelect:
		return "SELECT"
	case tokFrom:
		return "FROM"
	case tokWhere:
		return "WHERE"
	case tokAnd:
		return "AND"
	case tokOr:
		return "OR"
	case tokNot:
		return "NOT"
	}
	return "unknown token"
}

type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

var keywords = map[string]tokenKind{
	"SELECT": tokSelect,
	"FROM":   tokFrom,
	"WHERE":  tokWhere,
	"AND":    tokAnd,
	"OR":     tokOr,
	"NOT":    tokNot,
}

// lexer turns SGF query text into tokens. Keywords are case-insensitive;
// identifiers are case-sensitive. Comments run from "--" or "#" to end of
// line.
type lexer struct {
	src  []rune
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: []rune(src), line: 1, col: 1}
}

func (l *lexer) errorf(format string, args ...any) error {
	return fmt.Errorf("sgf: %d:%d: %s", l.line, l.col, fmt.Sprintf(format, args...))
}

func (l *lexer) peek() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) advance() rune {
	r := l.src[l.pos]
	l.pos++
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		r := l.peek()
		switch {
		case unicode.IsSpace(r):
			l.advance()
		case r == '#':
			l.skipLine()
		case r == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			l.skipLine()
		default:
			return
		}
	}
}

func (l *lexer) skipLine() {
	for l.pos < len(l.src) && l.peek() != '\n' {
		l.advance()
	}
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	line, col := l.line, l.col
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: line, col: col}, nil
	}
	r := l.peek()
	switch {
	case r == '(':
		l.advance()
		return token{kind: tokLParen, text: "(", line: line, col: col}, nil
	case r == ')':
		l.advance()
		return token{kind: tokRParen, text: ")", line: line, col: col}, nil
	case r == ',':
		l.advance()
		return token{kind: tokComma, text: ",", line: line, col: col}, nil
	case r == ';':
		l.advance()
		return token{kind: tokSemi, text: ";", line: line, col: col}, nil
	case r == ':':
		l.advance()
		if l.peek() != '=' {
			return token{}, l.errorf("expected '=' after ':'")
		}
		l.advance()
		return token{kind: tokAssign, text: ":=", line: line, col: col}, nil
	case r == '"' || r == '\'':
		quote := l.advance()
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, l.errorf("unterminated string literal")
			}
			c := l.advance()
			if c == quote {
				break
			}
			if c == '\\' && l.pos < len(l.src) {
				c = l.advance()
			}
			sb.WriteRune(c)
		}
		return token{kind: tokString, text: sb.String(), line: line, col: col}, nil
	case unicode.IsDigit(r):
		var sb strings.Builder
		for l.pos < len(l.src) && unicode.IsDigit(l.peek()) {
			sb.WriteRune(l.advance())
		}
		return token{kind: tokInt, text: sb.String(), line: line, col: col}, nil
	case isIdentStart(r):
		var sb strings.Builder
		for l.pos < len(l.src) && isIdentPart(l.peek()) {
			sb.WriteRune(l.advance())
		}
		text := sb.String()
		if kind, ok := keywords[strings.ToUpper(text)]; ok {
			return token{kind: kind, text: text, line: line, col: col}, nil
		}
		return token{kind: tokIdent, text: text, line: line, col: col}, nil
	default:
		return token{}, l.errorf("unexpected character %q", r)
	}
}
