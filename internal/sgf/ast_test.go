package sgf

import (
	"testing"

	"repro/internal/relation"
)

func TestAtomKeyDistinguishes(t *testing.T) {
	cases := []struct {
		a, b  Atom
		equal bool
	}{
		{NewAtom("S", V("x"), V("y")), NewAtom("S", V("x"), V("y")), true},
		{NewAtom("S", V("x"), V("y")), NewAtom("S", V("y"), V("x")), false},
		{NewAtom("S", V("x")), NewAtom("T", V("x")), false},
		{NewAtom("S", V("x"), V("x")), NewAtom("S", V("x"), V("y")), false},
		{NewAtom("S", CInt(1)), NewAtom("S", CStr("1")), false},
		{NewAtom("S", CStr("a")), NewAtom("S", CStr("a")), true},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.equal {
			t.Errorf("%v.Equal(%v) = %v, want %v (keys %q %q)", c.a, c.b, got, c.equal, c.a.Key(), c.b.Key())
		}
	}
}

func TestAtomVarsOrder(t *testing.T) {
	a := NewAtom("R", V("y"), CInt(4), V("x"), V("y"))
	vars := a.Vars()
	if len(vars) != 2 || vars[0] != "y" || vars[1] != "x" {
		t.Errorf("Vars = %v", vars)
	}
}

func TestSharedVarsOrderedByGuard(t *testing.T) {
	guard := NewAtom("R", V("x"), V("y"), V("z"))
	cond := NewAtom("S", V("z"), V("x"), V("w"))
	got := SharedVars(guard, cond)
	if len(got) != 2 || got[0] != "x" || got[1] != "z" {
		t.Errorf("SharedVars = %v", got)
	}
}

func TestVarPositionsFirstOccurrence(t *testing.T) {
	a := NewAtom("R", V("x"), V("y"), V("x"))
	pos := a.VarPositions([]string{"y", "x"})
	if pos[0] != 1 || pos[1] != 0 {
		t.Errorf("VarPositions = %v", pos)
	}
}

func TestCondEval(t *testing.T) {
	s := AtomCond{NewAtom("S", V("x"))}
	u := AtomCond{NewAtom("U", V("x"))}
	c := OrOf(AndOf(s, Not{u}), u)
	eval := func(sv, uv bool) bool {
		return EvalCondition(c, map[string]bool{
			s.Atom.Key(): sv,
			u.Atom.Key(): uv,
		})
	}
	// (S AND NOT U) OR U == S OR U
	if !eval(true, false) || !eval(false, true) || eval(false, false) || !eval(true, true) {
		t.Error("condition truth table wrong")
	}
}

func TestNilConditionIsTrue(t *testing.T) {
	if !EvalCondition(nil, nil) {
		t.Error("nil condition should be true")
	}
	if Atoms(nil) != nil {
		t.Error("Atoms(nil) should be nil")
	}
}

func TestAndOrFlattening(t *testing.T) {
	a := AtomCond{NewAtom("A", V("x"))}
	b := AtomCond{NewAtom("B", V("x"))}
	c := AtomCond{NewAtom("C", V("x"))}
	and := AndOf(AndOf(a, b), c)
	if got, ok := and.(And); !ok || len(got.Cs) != 3 {
		t.Errorf("AndOf did not flatten: %v", and)
	}
	or := OrOf(a, OrOf(b, c))
	if got, ok := or.(Or); !ok || len(got.Cs) != 3 {
		t.Errorf("OrOf did not flatten: %v", or)
	}
	if single, ok := AndOf(a).(AtomCond); !ok || !single.Atom.Equal(a.Atom) {
		t.Errorf("AndOf(single) = %v", AndOf(a))
	}
	// AND inside OR must not be flattened (different operators).
	mixed := OrOf(AndOf(a, b), c)
	if got, ok := mixed.(Or); !ok || len(got.Cs) != 2 {
		t.Errorf("OrOf flattened across operators: %v", mixed)
	}
}

func TestAtomsDeduplicates(t *testing.T) {
	s := AtomCond{NewAtom("S", V("x"))}
	c := OrOf(AndOf(s, Not{s}), s)
	if got := Atoms(c); len(got) != 1 {
		t.Errorf("Atoms = %v", got)
	}
}

func TestProgramCloneIndependent(t *testing.T) {
	p := MustParse(`Z := SELECT x FROM R(x, y) WHERE S(x) AND T(y);`)
	c := p.Clone()
	c.Queries[0].Select[0] = "y"
	c.Queries[0].Guard.Args[0] = V("q")
	if p.Queries[0].Select[0] != "x" || p.Queries[0].Guard.Args[0].Var != "x" {
		t.Error("Clone shares storage")
	}
}

func TestConformsTuple(t *testing.T) {
	mk := func(vals ...int64) relation.Tuple {
		tp := make(relation.Tuple, len(vals))
		for i, v := range vals {
			tp[i] = relation.Value(v)
		}
		return tp
	}
	cases := []struct {
		atom Atom
		tup  relation.Tuple
		want bool
	}{
		{NewAtom("R", V("x"), CInt(2), V("x"), V("y")), mk(1, 2, 1, 3), true},
		{NewAtom("R", V("x"), CInt(2), V("x"), V("y")), mk(1, 2, 2, 3), false},
		{NewAtom("R", V("x"), CInt(2), V("x"), V("y")), mk(1, 9, 1, 3), false},
		{NewAtom("R", V("x"), V("y")), mk(1), false},
		{NewAtom("R", V("x"), V("x")), mk(5, 5), true},
		{NewAtom("R", CStr("bad")), relation.Tuple{relation.String("bad")}, true},
		{NewAtom("R", CStr("bad")), relation.Tuple{relation.String("good")}, false},
	}
	for _, c := range cases {
		if got := ConformsTuple(c.tup, c.atom); got != c.want {
			t.Errorf("ConformsTuple(%v, %v) = %v, want %v", c.tup, c.atom, got, c.want)
		}
		m := NewMatcher(c.atom)
		if got := m.Matches(c.tup); got != c.want {
			t.Errorf("Matcher(%v).Matches(%v) = %v, want %v", c.atom, c.tup, got, c.want)
		}
	}
}

func TestProjectPaperExample(t *testing.T) {
	// From §4: f = R(1,2,1,3), α = R(x,y,x,z), π_{α;x,z}(f) = (1,3).
	f := relation.Tuple{relation.Value(1), relation.Value(2), relation.Value(1), relation.Value(3)}
	alpha := NewAtom("R", V("x"), V("y"), V("x"), V("z"))
	if !ConformsTuple(f, alpha) {
		t.Fatal("paper example fact does not conform")
	}
	got := Project(f, alpha, []string{"x", "z"})
	want := relation.Tuple{relation.Value(1), relation.Value(3)}
	if !got.Equal(want) {
		t.Errorf("Project = %v, want %v", got, want)
	}
}

func TestBinding(t *testing.T) {
	f := relation.Tuple{relation.Value(1), relation.Value(2)}
	a := NewAtom("R", V("x"), V("y"))
	b := Binding(f, a)
	if b["x"] != relation.Value(1) || b["y"] != relation.Value(2) {
		t.Errorf("Binding = %v", b)
	}
}

func TestMatcherTrivial(t *testing.T) {
	if !NewMatcher(NewAtom("R", V("x"), V("y"))).Trivial() {
		t.Error("plain atom should be trivial")
	}
	if NewMatcher(NewAtom("R", V("x"), V("x"))).Trivial() {
		t.Error("repeated-var atom should not be trivial")
	}
	if NewMatcher(NewAtom("R", CInt(1))).Trivial() {
		t.Error("constant atom should not be trivial")
	}
}

// TestCompileConditionMatchesEval checks the compiled bitmask evaluator
// agrees with EvalCondition on every truth assignment of a set of
// representative conditions (the reducer hot path must be a pure
// strength reduction).
func TestCompileConditionMatchesEval(t *testing.T) {
	conds := []string{
		`Z := SELECT x FROM R(x, y) WHERE S(x);`,
		`Z := SELECT x FROM R(x, y) WHERE NOT S(x);`,
		`Z := SELECT x FROM R(x, y) WHERE S(x) AND T(y);`,
		`Z := SELECT x FROM R(x, y) WHERE S(x) OR NOT T(y);`,
		`Z := SELECT x FROM R(x, y) WHERE S(x) AND (T(y) OR NOT U(x));`,
		`Z := SELECT x FROM R(x, y) WHERE (S(x) AND NOT T(x) AND NOT U(x)) OR (NOT S(x) AND T(x) AND NOT U(x)) OR (NOT S(x) AND NOT T(x) AND U(x));`,
		`Z := SELECT x FROM R(x, y) WHERE S(x) AND S(y) AND NOT (T(x) OR U(y));`,
	}
	for _, src := range conds {
		q := MustParse(src).Queries[0]
		atoms := q.CondAtoms()
		bitIdx := make(map[string]int, len(atoms))
		keys := make([]string, len(atoms))
		for i, a := range atoms {
			bitIdx[a.Key()] = i
			keys[i] = a.Key()
		}
		compiled := CompileCondition(q.Where, func(k string) (int, bool) {
			i, ok := bitIdx[k]
			return i, ok
		})
		if compiled == nil {
			t.Fatalf("%s: CompileCondition returned nil", src)
		}
		for mask := uint64(0); mask < 1<<len(atoms); mask++ {
			truth := make(map[string]bool, len(atoms))
			for i, k := range keys {
				truth[k] = mask&(1<<i) != 0
			}
			if got, want := compiled(mask), EvalCondition(q.Where, truth); got != want {
				t.Errorf("%s: mask %b: compiled=%v eval=%v", src, mask, got, want)
			}
		}
	}
	// Nil condition (absent WHERE) is constantly true.
	if f := CompileCondition(nil, func(string) (int, bool) { return 0, false }); !f(0) {
		t.Error("nil condition should compile to true")
	}
	// Unmapped atoms refuse to compile (callers fall back).
	q := MustParse(`Z := SELECT x FROM R(x, y) WHERE S(x);`).Queries[0]
	if f := CompileCondition(q.Where, func(string) (int, bool) { return 0, false }); f != nil {
		t.Error("unmapped atom should fail compilation")
	}
	if f := CompileCondition(q.Where, func(string) (int, bool) { return 64, true }); f != nil {
		t.Error("out-of-range bit should fail compilation")
	}
}
