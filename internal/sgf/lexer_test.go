package sgf

import (
	"strings"
	"testing"
)

func lexAll(t *testing.T, src string) []token {
	t.Helper()
	l := newLexer(src)
	var out []token
	for {
		tok, err := l.next()
		if err != nil {
			t.Fatalf("lex %q: %v", src, err)
		}
		if tok.kind == tokEOF {
			return out
		}
		out = append(out, tok)
	}
}

func TestLexerTokens(t *testing.T) {
	toks := lexAll(t, `Z := SELECT x FROM R(x, 42) WHERE NOT S("a b");`)
	kinds := []tokenKind{
		tokIdent, tokAssign, tokSelect, tokIdent, tokFrom, tokIdent,
		tokLParen, tokIdent, tokComma, tokInt, tokRParen, tokWhere,
		tokNot, tokIdent, tokLParen, tokString, tokRParen, tokSemi,
	}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d", len(toks), len(kinds))
	}
	for i, k := range kinds {
		if toks[i].kind != k {
			t.Errorf("token %d: kind %v, want %v (%q)", i, toks[i].kind, k, toks[i].text)
		}
	}
}

func TestLexerPositions(t *testing.T) {
	toks := lexAll(t, "Z :=\n  SELECT x FROM R(x);")
	if toks[0].line != 1 || toks[0].col != 1 {
		t.Errorf("first token at %d:%d", toks[0].line, toks[0].col)
	}
	if toks[2].line != 2 {
		t.Errorf("SELECT at line %d, want 2", toks[2].line)
	}
}

func TestLexerStringEscapes(t *testing.T) {
	toks := lexAll(t, `Z := SELECT x FROM R(x, "a\"b");`)
	var str *token
	for i := range toks {
		if toks[i].kind == tokString {
			str = &toks[i]
		}
	}
	if str == nil || str.text != `a"b` {
		t.Fatalf("escaped string = %v", str)
	}
}

func TestLexerUnicodeIdent(t *testing.T) {
	toks := lexAll(t, `Zé := SELECT π FROM Rel_1(π);`)
	if toks[0].text != "Zé" || toks[3].text != "π" {
		t.Errorf("unicode identifiers mishandled: %q %q", toks[0].text, toks[3].text)
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{"Z : x", "@", `"unterminated`} {
		l := newLexer(src)
		ok := true
		for i := 0; i < 10 && ok; i++ {
			tok, err := l.next()
			if err != nil {
				ok = false
				if !strings.Contains(err.Error(), "sgf:") {
					t.Errorf("error %q lacks prefix", err)
				}
			}
			if tok.kind == tokEOF {
				break
			}
		}
		if ok {
			t.Errorf("no lex error for %q", src)
		}
	}
}

func TestConditionPrinterNesting(t *testing.T) {
	// NOT over a compound needs parentheses; AND inside OR does not add
	// extra parens beyond what precedence requires.
	s := AtomCond{NewAtom("S", V("x"))}
	u := AtomCond{NewAtom("U", V("x"))}
	v := AtomCond{NewAtom("V", V("x"))}
	cases := []struct {
		c    Condition
		want string
	}{
		{Not{C: OrOf(s, u)}, "NOT (S(x) OR U(x))"},
		{Not{C: s}, "NOT S(x)"},
		{AndOf(OrOf(s, u), v), "(S(x) OR U(x)) AND V(x)"},
		// The printer parenthesizes AND under OR explicitly (redundant
		// under precedence, but unambiguous to read).
		{OrOf(AndOf(s, u), v), "(S(x) AND U(x)) OR V(x)"},
	}
	for _, c := range cases {
		if got := c.c.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
		// Round trip: reparse inside a query and compare semantics on
		// all truth assignments.
		src := "Z := SELECT x FROM R(x) WHERE " + c.c.String() + ";"
		p, err := Parse(src)
		if err != nil {
			t.Fatalf("reparse %q: %v", src, err)
		}
		back := p.Queries[0].Where
		for mask := 0; mask < 8; mask++ {
			truth := map[string]bool{
				s.Atom.Key(): mask&1 != 0,
				u.Atom.Key(): mask&2 != 0,
				v.Atom.Key(): mask&4 != 0,
			}
			if EvalCondition(c.c, truth) != EvalCondition(back, truth) {
				t.Errorf("round trip changed semantics of %q", c.want)
			}
		}
	}
}
