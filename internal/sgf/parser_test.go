package sgf

import (
	"strings"
	"testing"
)

func TestParseSimpleQuery(t *testing.T) {
	p := MustParse(`Z := SELECT x, y FROM R(x, y) WHERE S(x, z) AND (T(y) OR NOT U(x));`)
	if len(p.Queries) != 1 {
		t.Fatalf("got %d queries", len(p.Queries))
	}
	q := p.Queries[0]
	if q.Name != "Z" {
		t.Errorf("Name = %q", q.Name)
	}
	if len(q.Select) != 2 || q.Select[0] != "x" || q.Select[1] != "y" {
		t.Errorf("Select = %v", q.Select)
	}
	if q.Guard.Rel != "R" || q.Guard.Arity() != 2 {
		t.Errorf("Guard = %v", q.Guard)
	}
	atoms := q.CondAtoms()
	if len(atoms) != 3 {
		t.Fatalf("CondAtoms = %v", atoms)
	}
	if atoms[0].Rel != "S" || atoms[1].Rel != "T" || atoms[2].Rel != "U" {
		t.Errorf("atom order = %v", atoms)
	}
}

func TestParseParenthesizedSelect(t *testing.T) {
	p := MustParse(`Z := SELECT (x, y) FROM R(x, y, 4) WHERE S(1, x);`)
	q := p.Queries[0]
	if len(q.Select) != 2 {
		t.Errorf("Select = %v", q.Select)
	}
	if q.Guard.Args[2].IsVar() || q.Guard.Args[2].Const.Text() != "4" {
		t.Errorf("guard constant = %v", q.Guard.Args[2])
	}
	a := q.CondAtoms()[0]
	if a.Args[0].IsVar() || a.Args[0].Const.Text() != "1" {
		t.Errorf("conditional constant = %v", a.Args[0])
	}
}

func TestParseStringConstants(t *testing.T) {
	p := MustParse(`Z1 := SELECT aut FROM Amaz(ttl, aut, "bad")
		WHERE BN(ttl, aut, "bad") AND BD(ttl, aut, 'bad');
		Z2 := SELECT new, aut FROM Upcoming(new, aut) WHERE NOT Z1(aut);`)
	if len(p.Queries) != 2 {
		t.Fatalf("got %d queries", len(p.Queries))
	}
	g := p.Queries[0].Guard
	if g.Args[2].IsVar() || !g.Args[2].Const.IsString() || g.Args[2].Const.Text() != "bad" {
		t.Errorf("string constant = %v", g.Args[2])
	}
	// Single- and double-quoted forms intern to the same value.
	atoms := p.Queries[0].CondAtoms()
	if atoms[0].Args[2].Const != atoms[1].Args[2].Const {
		t.Error("quote styles intern differently")
	}
}

func TestParsePrecedence(t *testing.T) {
	// NOT binds tighter than AND, AND tighter than OR.
	p := MustParse(`Z := SELECT x FROM R(x) WHERE NOT S(x) AND T(x) OR U(x);`)
	c, ok := p.Queries[0].Where.(Or)
	if !ok {
		t.Fatalf("top level is %T, want Or", p.Queries[0].Where)
	}
	if len(c.Cs) != 2 {
		t.Fatalf("Or arity = %d", len(c.Cs))
	}
	if _, ok := c.Cs[0].(And); !ok {
		t.Errorf("left of OR is %T, want And", c.Cs[0])
	}
}

func TestParseUniquenessQueryShape(t *testing.T) {
	// Paper query B2.
	src := `Z := SELECT x, y, z, w FROM R(x, y, z, w) WHERE
		(S(x) AND NOT T(x) AND NOT U(x) AND NOT V(x)) OR
		(NOT S(x) AND T(x) AND NOT U(x) AND NOT V(x)) OR
		(S(x) AND NOT T(x) AND U(x) AND NOT V(x)) OR
		(NOT S(x) AND NOT T(x) AND NOT U(x) AND V(x));`
	p := MustParse(src)
	or, ok := p.Queries[0].Where.(Or)
	if !ok || len(or.Cs) != 4 {
		t.Fatalf("B2 shape wrong: %T", p.Queries[0].Where)
	}
	if got := len(p.Queries[0].CondAtoms()); got != 4 {
		t.Errorf("distinct atoms = %d, want 4", got)
	}
}

func TestParseComments(t *testing.T) {
	p := MustParse(`
		-- line comment
		# another comment
		Z := SELECT x FROM R(x); -- trailing
	`)
	if len(p.Queries) != 1 || p.Queries[0].Name != "Z" {
		t.Errorf("comments mishandled: %v", p)
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	p := MustParse(`Z := select x from R(x) where not S(x);`)
	if _, ok := p.Queries[0].Where.(Not); !ok {
		t.Errorf("Where = %T", p.Queries[0].Where)
	}
}

func TestPrintParseRoundTrip(t *testing.T) {
	srcs := []string{
		`Z := SELECT x, y FROM R(x, y) WHERE S(x, z) AND (T(y) OR NOT U(x));`,
		`Z := SELECT x FROM R(x, y, 4) WHERE (S(1, x) AND NOT S(y, 10)) OR (NOT S(1, x) AND S(y, 10));`,
		`Z1 := SELECT x FROM R(x) WHERE S(x);
		 Z2 := SELECT x FROM T(x, y) WHERE NOT Z1(x) OR S(y);`,
		`Z := SELECT a FROM Books(a, b) WHERE Ratings(a, "bad");`,
	}
	for _, src := range srcs {
		p1 := MustParse(src)
		p2, err := Parse(p1.String())
		if err != nil {
			t.Fatalf("reparsing %q: %v", p1.String(), err)
		}
		if p1.String() != p2.String() {
			t.Errorf("round trip changed:\n%s\nvs\n%s", p1, p2)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"empty", ``, "empty program"},
		{"missing semi", `Z := SELECT x FROM R(x)`, "expected ';'"},
		{"missing assign", `Z SELECT x FROM R(x);`, "expected ':='"},
		{"bad char", `Z := SELECT x FROM R(x) WHERE S(x) @;`, "unexpected character"},
		{"unterminated string", `Z := SELECT x FROM R(x, ");`, "unterminated string"},
		{"missing from", `Z := SELECT x R(x);`, "expected FROM"},
		{"empty parens", `Z := SELECT x FROM R();`, "expected term"},
		{"keyword as name", `SELECT := SELECT x FROM R(x);`, "expected identifier"},
		{"dangling not", `Z := SELECT x FROM R(x) WHERE NOT;`, "expected NOT, '(' or atom"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatalf("parse succeeded for %q", c.src)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestParseExample5Program(t *testing.T) {
	// Paper Example 5: five queries with a chain + one independent query.
	src := `
	Q1 := SELECT x, y FROM R1(x, y) WHERE S(x);
	Q2 := SELECT x, y FROM Q1(x, y) WHERE T(x);
	Q3 := SELECT x, y FROM Q2(x, y) WHERE U(x);
	Q4 := SELECT x, y FROM R2(x, y) WHERE T(x);
	Q5 := SELECT x, y FROM Q3(x, y) WHERE Q4(x, x);`
	p := MustParse(src)
	if len(p.Queries) != 5 {
		t.Fatalf("got %d queries", len(p.Queries))
	}
	base := p.BaseRelations()
	want := []string{"R1", "R2", "S", "T", "U"}
	if len(base) != len(want) {
		t.Fatalf("BaseRelations = %v", base)
	}
	for i := range want {
		if base[i] != want[i] {
			t.Fatalf("BaseRelations = %v, want %v", base, want)
		}
	}
}
