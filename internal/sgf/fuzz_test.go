package sgf

import "testing"

// FuzzParse drives the SGF lexer/parser (and, on success, the
// printer/re-parse round trip) with arbitrary input. The parser is the
// service's network-facing surface — cmd/gumbo-serve feeds it raw HTTP
// request bodies — so it must reject any input with an error, never a
// panic, and printing a parsed program must yield a program that parses
// to the same rendering.
func FuzzParse(f *testing.F) {
	seeds := []string{
		// Shapes from the parser tests.
		`Z := SELECT x, y FROM R(x, y) WHERE S(x, z) AND (T(y) OR NOT U(x));`,
		`Z := SELECT (x, y) FROM R(x, y, 4) WHERE S(1, x);`,
		`Z1 := SELECT aut FROM Amaz(ttl, aut, "bad")
			WHERE BN(ttl, aut, "bad") AND BD(ttl, aut, 'bad');
			Z2 := SELECT new, aut FROM Upcoming(new, aut) WHERE NOT Z1(aut);`,
		`Z := SELECT x FROM R(x) WHERE NOT S(x) AND T(x) OR U(x);`,
		`Z := select x from R(x) where not S(x);`,
		"-- line comment\n# another\nZ := SELECT x FROM R(x); -- trailing",
		`Q1 := SELECT x, y FROM R1(x, y) WHERE S(x);
		Q2 := SELECT x, y FROM Q1(x, y) WHERE T(x);`,
		// Error-shaped seeds.
		``,
		`Z := SELECT x FROM R(x)`,
		`Z SELECT x FROM R(x);`,
		`Z := SELECT x FROM R(x) WHERE S(x) @;`,
		`Z := SELECT x FROM R(x, ");`,
		`Z := SELECT x FROM R();`,
		`SELECT := SELECT x FROM R(x);`,
		`Z := SELECT x FROM R(x) WHERE NOT;`,
		"Z := SELECT x FROM R(x) WHERE S(x\x00y);",
		`Z := SELECT x FROM R(x) WHERE (S(x);`,
		`:=;`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		// Printing any syntactically valid program must not panic, even
		// when it fails semantic validation.
		if up, err := ParseUnvalidated(src); err == nil {
			_ = up.String()
		}
		p, err := Parse(src)
		if err != nil {
			return // rejected inputs only need to not panic
		}
		// Accepted programs must round-trip: printing and re-parsing
		// reproduces the same rendering.
		printed := p.String()
		p2, err := Parse(printed)
		if err != nil {
			t.Fatalf("round trip failed to parse %q (from %q): %v", printed, src, err)
		}
		if got := p2.String(); got != printed {
			t.Fatalf("round trip not stable: %q -> %q", printed, got)
		}
	})
}
