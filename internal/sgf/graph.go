package sgf

import (
	"fmt"
	"sort"
	"strings"
)

// DepGraph is the dependency graph G_Q of an SGF program: one node per
// BSGF query, with an edge from Q_i to Q_j whenever the output relation
// Z_i is mentioned in ξ_j. Node identifiers are query indices within the
// program.
type DepGraph struct {
	N     int
	Succ  [][]int // Succ[i] = nodes j with an edge i -> j
	Pred  [][]int // Pred[j] = nodes i with an edge i -> j
	Names []string
}

// BuildDepGraph constructs the dependency graph of a validated program.
func BuildDepGraph(p *Program) *DepGraph {
	n := len(p.Queries)
	g := &DepGraph{
		N:     n,
		Succ:  make([][]int, n),
		Pred:  make([][]int, n),
		Names: make([]string, n),
	}
	byName := make(map[string]int, n)
	for i, q := range p.Queries {
		byName[q.Name] = i
		g.Names[i] = q.Name
	}
	for j, q := range p.Queries {
		seen := make(map[int]bool)
		for _, rel := range q.RelationNames() {
			if i, ok := byName[rel]; ok && i != j && !seen[i] {
				seen[i] = true
				g.Succ[i] = append(g.Succ[i], j)
				g.Pred[j] = append(g.Pred[j], i)
			}
		}
	}
	for i := range g.Succ {
		sort.Ints(g.Succ[i])
		sort.Ints(g.Pred[i])
	}
	return g
}

// Levels assigns each node its longest-path depth from the sources:
// level(v) = 0 if v has no predecessors, else 1 + max(level(pred)).
// Queries on the same level are independent and can run in parallel
// (the PARUNIT strategy of §5.3).
func (g *DepGraph) Levels() []int {
	level := make([]int, g.N)
	order := g.TopoOrder()
	for _, v := range order {
		for _, p := range g.Pred[v] {
			if level[p]+1 > level[v] {
				level[v] = level[p] + 1
			}
		}
	}
	return level
}

// LevelGroups returns the nodes grouped by level, in increasing level
// order; each group is sorted by node index.
func (g *DepGraph) LevelGroups() [][]int {
	levels := g.Levels()
	maxL := 0
	for _, l := range levels {
		if l > maxL {
			maxL = l
		}
	}
	groups := make([][]int, maxL+1)
	for v, l := range levels {
		groups[l] = append(groups[l], v)
	}
	return groups
}

// TopoOrder returns a deterministic topological order of the nodes
// (smallest index first among ready nodes). It panics on cyclic graphs;
// validated programs are always acyclic.
func (g *DepGraph) TopoOrder() []int {
	indeg := make([]int, g.N)
	for v := 0; v < g.N; v++ {
		indeg[v] = len(g.Pred[v])
	}
	var ready []int
	for v := 0; v < g.N; v++ {
		if indeg[v] == 0 {
			ready = append(ready, v)
		}
	}
	var order []int
	for len(ready) > 0 {
		sort.Ints(ready)
		v := ready[0]
		ready = ready[1:]
		order = append(order, v)
		for _, s := range g.Succ[v] {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	if len(order) != g.N {
		panic("sgf: dependency graph is cyclic")
	}
	return order
}

// MultiwaySort is an ordered partition (F_1, ..., F_k) of the program's
// query indices. It is a valid multiway topological sort when every edge
// u -> v of the dependency graph has u in an earlier group than v.
type MultiwaySort [][]int

// Valid reports whether s is a multiway topological sort of g: the groups
// partition [0, g.N) and respect every edge.
func (s MultiwaySort) Valid(g *DepGraph) bool {
	group := make([]int, g.N)
	for i := range group {
		group[i] = -1
	}
	count := 0
	for gi, f := range s {
		for _, v := range f {
			if v < 0 || v >= g.N || group[v] != -1 {
				return false
			}
			group[v] = gi
			count++
		}
	}
	if count != g.N {
		return false
	}
	for u := 0; u < g.N; u++ {
		for _, v := range g.Succ[u] {
			if group[u] >= group[v] {
				return false
			}
		}
	}
	return true
}

// String renders the sort as ({Q1,Q4},{Q2},...) using node names when
// available.
func (s MultiwaySort) String() string {
	var sb strings.Builder
	sb.WriteByte('(')
	for i, f := range s {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteByte('{')
		for j, v := range f {
			if j > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%d", v)
		}
		sb.WriteByte('}')
	}
	sb.WriteByte(')')
	return sb.String()
}

// Clone deep-copies the sort.
func (s MultiwaySort) Clone() MultiwaySort {
	out := make(MultiwaySort, len(s))
	for i, f := range s {
		out[i] = append([]int(nil), f...)
	}
	return out
}

// EnumerateMultiwaySorts generates every multiway topological sort of g
// and calls fn on each; fn must not retain its argument. Enumeration
// stops early if fn returns false. The number of sorts grows extremely
// quickly; callers should restrict to small graphs (the brute-force
// SGF-Opt baseline).
func EnumerateMultiwaySorts(g *DepGraph, fn func(MultiwaySort) bool) {
	placed := make([]bool, g.N)
	var cur MultiwaySort
	var rec func() bool
	// ready returns unplaced nodes whose predecessors are all placed.
	ready := func() []int {
		var out []int
		for v := 0; v < g.N; v++ {
			if placed[v] {
				continue
			}
			ok := true
			for _, p := range g.Pred[v] {
				if !placed[p] {
					ok = false
					break
				}
			}
			if ok {
				out = append(out, v)
			}
		}
		return out
	}
	var placeGroup func(candidates []int, idx int, group []int) bool
	placeGroup = func(candidates []int, idx int, group []int) bool {
		if idx == len(candidates) {
			if len(group) == 0 {
				return true
			}
			g2 := append([]int(nil), group...)
			cur = append(cur, g2)
			for _, v := range g2 {
				placed[v] = true
			}
			ok := rec()
			for _, v := range g2 {
				placed[v] = false
			}
			cur = cur[:len(cur)-1]
			return ok
		}
		// Exclude candidates[idx] from the group.
		if !placeGroup(candidates, idx+1, group) {
			return false
		}
		// Include candidates[idx] in the group.
		return placeGroup(candidates, idx+1, append(group, candidates[idx]))
	}
	rec = func() bool {
		r := ready()
		if len(r) == 0 {
			return fn(cur)
		}
		// The next group is any non-empty subset of the ready set.
		return placeGroup(r, 0, nil)
	}
	if g.N == 0 {
		fn(MultiwaySort{})
		return
	}
	rec()
}

// PartitionKey returns a canonical identity for the underlying unordered
// partition of s: two multiway sorts with the same groups (in any order)
// have equal keys. The evaluation cost (Eq. 10) depends only on the
// partition, so plan search deduplicates by this key.
func (s MultiwaySort) PartitionKey() string {
	groups := make([]string, len(s))
	for i, f := range s {
		g := append([]int(nil), f...)
		sort.Ints(g)
		var sb strings.Builder
		for j, v := range g {
			if j > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%d", v)
		}
		groups[i] = sb.String()
	}
	sort.Strings(groups)
	return strings.Join(groups, "|")
}

// EnumerateMultiwayPartitions enumerates multiway topological sorts
// deduplicated by their underlying partition (the paper's Example 5
// counts four such sorts). fn receives one representative ordering per
// distinct partition; enumeration stops early if fn returns false.
func EnumerateMultiwayPartitions(g *DepGraph, fn func(MultiwaySort) bool) {
	seen := make(map[string]bool)
	EnumerateMultiwaySorts(g, func(s MultiwaySort) bool {
		k := s.PartitionKey()
		if seen[k] {
			return true
		}
		seen[k] = true
		return fn(s.Clone())
	})
}

// Overlap counts the number of relation symbols occurring both in query q
// and in at least one of the queries in group (by index), per the
// definition used by Greedy-SGF (§4.6).
func Overlap(p *Program, q int, group []int) int {
	qRels := make(map[string]bool)
	for _, r := range p.Queries[q].RelationNames() {
		qRels[r] = true
	}
	groupRels := make(map[string]bool)
	for _, gi := range group {
		for _, r := range p.Queries[gi].RelationNames() {
			groupRels[r] = true
		}
	}
	n := 0
	for r := range qRels {
		if groupRels[r] {
			n++
		}
	}
	return n
}
