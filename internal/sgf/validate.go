package sgf

import (
	"fmt"
)

// Validate checks the semantic well-formedness of an SGF program:
//
//  1. output relation names are pairwise distinct;
//  2. a query may reference previously defined outputs only (no forward
//     or self references), so the induced dependency graph is acyclic;
//  3. every select variable occurs in the guard;
//  4. guardedness: variables shared by two distinct conditional atoms
//     must occur in the guard;
//  5. relation symbols are used with a consistent arity throughout the
//     program, and references to defined outputs match their select arity;
//  6. an output relation may not be used as the guard of a conditional
//     atom inside the query that defines it (implied by 2).
func Validate(p *Program) error {
	if len(p.Queries) == 0 {
		return fmt.Errorf("sgf: empty program")
	}
	outArity := make(map[string]int) // defined outputs so far
	relArity := make(map[string]int) // every symbol seen so far
	for i, q := range p.Queries {
		if q.Name == "" {
			return fmt.Errorf("sgf: query %d has empty output name", i+1)
		}
		if _, dup := outArity[q.Name]; dup {
			return fmt.Errorf("sgf: output relation %s defined twice", q.Name)
		}
		if err := validateBSGF(q, relArity); err != nil {
			return err
		}
		outArity[q.Name] = q.OutArity()
		if prev, ok := relArity[q.Name]; ok && prev != q.OutArity() {
			return fmt.Errorf("sgf: %s: output arity %d conflicts with earlier use of %s with arity %d",
				q.Name, q.OutArity(), q.Name, prev)
		}
		relArity[q.Name] = q.OutArity()
	}
	return CheckForwardRefs(p)
}

// ValidateBSGF validates a single basic query in isolation (no defined
// outputs in scope).
func ValidateBSGF(q *BSGF) error {
	return validateBSGF(q, map[string]int{})
}

func validateBSGF(q *BSGF, relArity map[string]int) error {
	if len(q.Select) == 0 {
		return fmt.Errorf("sgf: %s: empty select list", q.Name)
	}
	if len(q.Guard.Args) == 0 {
		return fmt.Errorf("sgf: %s: guard %s has no arguments", q.Name, q.Guard.Rel)
	}
	if q.Guard.Rel == q.Name {
		return fmt.Errorf("sgf: %s: query references its own output in the guard", q.Name)
	}
	// Rule 3: select variables occur in the guard.
	for _, v := range q.Select {
		if !q.Guard.HasVar(v) {
			return fmt.Errorf("sgf: %s: select variable %s does not occur in guard %s", q.Name, v, q.Guard)
		}
	}
	// Arity consistency for the guard.
	if err := checkArity(q.Name, q.Guard, relArity); err != nil {
		return err
	}
	guardVars := make(map[string]bool)
	for _, v := range q.Guard.Vars() {
		guardVars[v] = true
	}
	atoms := q.CondAtoms()
	for _, a := range atoms {
		if len(a.Args) == 0 {
			return fmt.Errorf("sgf: %s: conditional atom %s has no arguments", q.Name, a.Rel)
		}
		if a.Rel == q.Name {
			return fmt.Errorf("sgf: %s: query references its own output in the condition", q.Name)
		}
		if err := checkArity(q.Name, a, relArity); err != nil {
			return err
		}
	}
	// Rule 4: guardedness across pairs of distinct conditional atoms.
	// (Rule 2, forward references, is checked program-wide by
	// CheckForwardRefs.)
	for i := 0; i < len(atoms); i++ {
		for j := i + 1; j < len(atoms); j++ {
			for _, v := range SharedVars(atoms[i], atoms[j]) {
				if !guardVars[v] {
					return fmt.Errorf("sgf: %s: variable %s is shared by conditional atoms %s and %s but does not occur in the guard %s (query is not guarded)",
						q.Name, v, atoms[i], atoms[j], q.Guard)
				}
			}
		}
	}
	return nil
}

func checkArity(qname string, a Atom, relArity map[string]int) error {
	if prev, ok := relArity[a.Rel]; ok {
		if prev != len(a.Args) {
			return fmt.Errorf("sgf: %s: relation %s used with arity %d but previously with arity %d",
				qname, a.Rel, len(a.Args), prev)
		}
	} else {
		relArity[a.Rel] = len(a.Args)
	}
	return nil
}

// CheckForwardRefs verifies rule 2 explicitly: every reference to a name
// defined by the program must point to an earlier query. Validate performs
// the equivalent check implicitly through definition ordering; this
// function gives a precise diagnostic and is used by the planner.
func CheckForwardRefs(p *Program) error {
	definedAt := make(map[string]int)
	for i, q := range p.Queries {
		definedAt[q.Name] = i
	}
	for i, q := range p.Queries {
		for _, rel := range q.RelationNames() {
			j, isOutput := definedAt[rel]
			if isOutput && j >= i {
				if j == i {
					return fmt.Errorf("sgf: %s references itself", q.Name)
				}
				return fmt.Errorf("sgf: %s references %s, which is defined later", q.Name, rel)
			}
		}
	}
	return nil
}
