package sgf

import (
	"testing"
)

// example5 is the paper's Example 5 program.
const example5 = `
	Q1 := SELECT x, y FROM R1(x, y) WHERE S(x);
	Q2 := SELECT x, y FROM Q1(x, y) WHERE T(x);
	Q3 := SELECT x, y FROM Q2(x, y) WHERE U(x);
	Q4 := SELECT x, y FROM R2(x, y) WHERE T(x);
	Q5 := SELECT x, y FROM Q3(x, y) WHERE Q4(x, x);`

func TestDepGraphExample5(t *testing.T) {
	p := MustParse(example5)
	g := BuildDepGraph(p)
	// Expected edges: Q1->Q2, Q2->Q3, Q3->Q5, Q4->Q5 (0-indexed).
	wantSucc := [][]int{{1}, {2}, {4}, {4}, nil}
	for i, want := range wantSucc {
		got := g.Succ[i]
		if len(got) != len(want) {
			t.Fatalf("Succ[%d] = %v, want %v", i, got, want)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("Succ[%d] = %v, want %v", i, got, want)
			}
		}
	}
}

func TestDepGraphLevels(t *testing.T) {
	p := MustParse(example5)
	g := BuildDepGraph(p)
	levels := g.Levels()
	want := []int{0, 1, 2, 0, 3}
	for i := range want {
		if levels[i] != want[i] {
			t.Errorf("level[%d] = %d, want %d", i, levels[i], want[i])
		}
	}
	groups := g.LevelGroups()
	if len(groups) != 4 {
		t.Fatalf("LevelGroups = %v", groups)
	}
	if len(groups[0]) != 2 || groups[0][0] != 0 || groups[0][1] != 3 {
		t.Errorf("level 0 = %v", groups[0])
	}
}

func TestTopoOrderDeterministic(t *testing.T) {
	p := MustParse(example5)
	g := BuildDepGraph(p)
	o1 := g.TopoOrder()
	o2 := g.TopoOrder()
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatal("TopoOrder not deterministic")
		}
	}
	pos := make([]int, g.N)
	for i, v := range o1 {
		pos[v] = i
	}
	for u := 0; u < g.N; u++ {
		for _, v := range g.Succ[u] {
			if pos[u] >= pos[v] {
				t.Errorf("edge %d->%d violated in order %v", u, v, o1)
			}
		}
	}
}

func TestEnumerateMultiwayPartitionsExample5(t *testing.T) {
	// The paper states there are exactly four possible multiway
	// topological sorts of Example 5's dependency graph (counted as
	// partitions; the cost of Eq. 10 is order-insensitive).
	p := MustParse(example5)
	g := BuildDepGraph(p)
	count := 0
	EnumerateMultiwayPartitions(g, func(s MultiwaySort) bool {
		count++
		if !s.Valid(g) {
			t.Errorf("enumerated invalid sort %v", s)
		}
		return true
	})
	if count != 4 {
		t.Errorf("enumerated %d partitions, want 4", count)
	}
}

func TestEnumerateMultiwaySortsIndependent(t *testing.T) {
	// Two independent queries: ordered sorts are ({a,b}), ({a},{b}),
	// ({b},{a}); as partitions there are two.
	p := MustParse(`A := SELECT x FROM R(x); B := SELECT x FROM S(x);`)
	g := BuildDepGraph(p)
	count := 0
	EnumerateMultiwaySorts(g, func(s MultiwaySort) bool {
		count++
		return true
	})
	if count != 3 {
		t.Errorf("enumerated %d sorts, want 3", count)
	}
	parts := 0
	EnumerateMultiwayPartitions(g, func(s MultiwaySort) bool {
		parts++
		return true
	})
	if parts != 2 {
		t.Errorf("enumerated %d partitions, want 2", parts)
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	p := MustParse(`A := SELECT x FROM R(x); B := SELECT x FROM S(x);`)
	g := BuildDepGraph(p)
	count := 0
	EnumerateMultiwaySorts(g, func(s MultiwaySort) bool {
		count++
		return false
	})
	if count != 1 {
		t.Errorf("early stop failed: %d calls", count)
	}
}

func TestMultiwaySortValid(t *testing.T) {
	p := MustParse(example5)
	g := BuildDepGraph(p)
	valid := MultiwaySort{{0, 3}, {1}, {2}, {4}}
	if !valid.Valid(g) {
		t.Error("paper sort 1 rejected")
	}
	// Q2 before Q1 violates Q1->Q2.
	invalid := MultiwaySort{{1, 3}, {0}, {2}, {4}}
	if invalid.Valid(g) {
		t.Error("invalid sort accepted")
	}
	// Same group containing an edge.
	invalid2 := MultiwaySort{{0, 1, 3}, {2}, {4}}
	if invalid2.Valid(g) {
		t.Error("sort with intra-group edge accepted")
	}
	// Missing node.
	invalid3 := MultiwaySort{{0, 3}, {1}, {2}}
	if invalid3.Valid(g) {
		t.Error("non-covering sort accepted")
	}
	// Duplicate node.
	invalid4 := MultiwaySort{{0, 3}, {1, 1}, {2}, {4}}
	if invalid4.Valid(g) {
		t.Error("duplicated node accepted")
	}
}

func TestOverlapPaperExample(t *testing.T) {
	// "the overlap between Q2 and {Q1, Q3, Q4, Q5} is 1 as they share
	// only relation T".
	p := MustParse(example5)
	if got := Overlap(p, 1, []int{0, 2, 3, 4}); got != 1 {
		t.Errorf("Overlap = %d, want 1", got)
	}
	// Q1 and {Q4}: no shared body relations (R1,S vs R2,T).
	if got := Overlap(p, 0, []int{3}); got != 0 {
		t.Errorf("Overlap(Q1,{Q4}) = %d, want 0", got)
	}
}
