package sgf

import (
	"strings"
	"testing"
)

func expectInvalid(t *testing.T, src, wantErr string) {
	t.Helper()
	p, err := ParseUnvalidated(src)
	if err != nil {
		t.Fatalf("parse error (want validation error): %v", err)
	}
	err = Validate(p)
	if err == nil {
		t.Fatalf("Validate accepted %q", src)
	}
	if !strings.Contains(err.Error(), wantErr) {
		t.Errorf("error %q does not contain %q", err, wantErr)
	}
}

func TestValidateSelectVarNotInGuard(t *testing.T) {
	expectInvalid(t, `Z := SELECT q FROM R(x, y);`, "select variable q")
}

func TestValidateUnguardedSharedVariable(t *testing.T) {
	// ttl is shared by the two conditional atoms but absent from the
	// guard: the motivating non-example from the paper's Example 2.
	expectInvalid(t,
		`Z := SELECT new FROM Upcoming(new, aut) WHERE BN(ttl, aut) AND BD(ttl, aut);`,
		"not guarded")
}

func TestValidateGuardedSharedVariableOK(t *testing.T) {
	// aut is shared but occurs in the guard: fine.
	if _, err := Parse(`Z := SELECT new FROM Upcoming(new, aut) WHERE BN(ttl, aut) AND BD(ttl2, aut);`); err != nil {
		t.Errorf("valid query rejected: %v", err)
	}
}

func TestValidateSharedOnlyWithGuardOK(t *testing.T) {
	// Conditional atoms may freely share variables with the guard, and may
	// have private existential variables.
	if _, err := Parse(`Z := SELECT x FROM R(x, y) WHERE S(x, z1) AND NOT S(y, z2);`); err != nil {
		t.Errorf("valid query rejected: %v", err)
	}
}

func TestValidateDuplicateOutput(t *testing.T) {
	expectInvalid(t, `Z := SELECT x FROM R(x); Z := SELECT x FROM S(x);`, "defined twice")
}

func TestValidateForwardReference(t *testing.T) {
	expectInvalid(t,
		`Z1 := SELECT x FROM R(x) WHERE Z2(x); Z2 := SELECT x FROM S(x);`,
		"defined later")
}

func TestValidateSelfReference(t *testing.T) {
	expectInvalid(t, `Z := SELECT x FROM R(x) WHERE Z(x);`, "own output")
	expectInvalid(t, `Z := SELECT x FROM Z(x);`, "own output")
}

func TestValidateArityConflict(t *testing.T) {
	expectInvalid(t, `Z := SELECT x FROM R(x, y) WHERE R(x);`, "arity")
	expectInvalid(t,
		`Z1 := SELECT x, y FROM R(x, y); Z2 := SELECT x FROM S(x) WHERE Z1(x);`,
		"arity")
}

func TestValidateArityOfOutputUse(t *testing.T) {
	// Z1 has output arity 1; using it with arity 1 later is fine.
	if _, err := Parse(`Z1 := SELECT x FROM R(x, y); Z2 := SELECT a FROM S(a) WHERE Z1(a);`); err != nil {
		t.Errorf("valid program rejected: %v", err)
	}
}

func TestValidateRepeatedVarsAndConstantsOK(t *testing.T) {
	if _, err := Parse(`Z := SELECT x FROM R(x, x, 3) WHERE S(x, x) AND T("q", x);`); err != nil {
		t.Errorf("valid query rejected: %v", err)
	}
}

func TestValidateExampleQueriesFromPaper(t *testing.T) {
	srcs := []string{
		// Example 1.
		`Z1 := SELECT x FROM R(x) WHERE S(x);`,
		`Z2 := SELECT x FROM R(x) WHERE NOT S(x);`,
		`Z3 := SELECT x, y FROM R(x, y) WHERE S(y, z);`,
		`Z4 := SELECT x, y FROM R(x, y) WHERE NOT S(y, z);`,
		`Z5 := SELECT x, y FROM R(x, y, 4)
			WHERE (S(1, x) AND NOT S(y, 10)) OR (NOT S(1, x) AND S(y, 10));`,
		`Z6 := SELECT x1, x2 FROM R(x1, x2) WHERE S(x1, y1) AND S(x2, y2);`,
		// Example 2.
		`Z1 := SELECT aut FROM Amaz(ttl, aut, "bad")
			WHERE BN(ttl, aut, "bad") AND BD(ttl, aut, "bad");
		 Z2 := SELECT new, aut FROM Upcoming(new, aut) WHERE NOT Z1(aut);`,
	}
	for _, src := range srcs {
		if _, err := Parse(src); err != nil {
			t.Errorf("paper query rejected: %v\n%s", err, src)
		}
	}
}
