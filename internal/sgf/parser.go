package sgf

import (
	"fmt"
	"strconv"

	"repro/internal/relation"
)

// Parse parses an SGF program: a semicolon-terminated sequence of basic
// queries in the paper's syntax, e.g.
//
//	Z1 := SELECT aut FROM Amaz(ttl, aut, "bad")
//	      WHERE BN(ttl, aut, "bad") AND BD(ttl, aut, "bad");
//	Z2 := SELECT new, aut FROM Upcoming(new, aut) WHERE NOT Z1(aut);
//
// Keywords are case-insensitive. The select list may optionally be
// wrapped in parentheses: SELECT (x, y) FROM ... . Boolean operator
// precedence is NOT > AND > OR. The parsed program is validated (see
// Validate) before being returned.
func Parse(src string) (*Program, error) {
	p, err := ParseUnvalidated(src)
	if err != nil {
		return nil, err
	}
	if err := Validate(p); err != nil {
		return nil, err
	}
	return p, nil
}

// ParseBSGF parses a single basic query (with or without trailing ';')
// and validates it as a one-query program.
func ParseBSGF(src string) (*BSGF, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(prog.Queries) != 1 {
		return nil, fmt.Errorf("sgf: expected exactly one query, got %d", len(prog.Queries))
	}
	return prog.Queries[0], nil
}

// MustParse is Parse that panics on error, for tests and examples.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

// ParseUnvalidated parses without semantic validation. Useful to test the
// validator itself.
func ParseUnvalidated(src string) (*Program, error) {
	pr := &parser{lex: newLexer(src)}
	if err := pr.advance(); err != nil {
		return nil, err
	}
	prog := &Program{}
	for pr.tok.kind != tokEOF {
		q, err := pr.parseQuery()
		if err != nil {
			return nil, err
		}
		prog.Queries = append(prog.Queries, q)
	}
	if len(prog.Queries) == 0 {
		return nil, fmt.Errorf("sgf: empty program")
	}
	return prog, nil
}

type parser struct {
	lex *lexer
	tok token
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sgf: %d:%d: %s", p.tok.line, p.tok.col, fmt.Sprintf(format, args...))
}

func (p *parser) expect(kind tokenKind) (token, error) {
	if p.tok.kind != kind {
		return token{}, p.errorf("expected %s, got %s %q", kind, p.tok.kind, p.tok.text)
	}
	t := p.tok
	if err := p.advance(); err != nil {
		return token{}, err
	}
	return t, nil
}

// parseQuery parses: Name := SELECT list FROM atom [WHERE cond] ;
func (p *parser) parseQuery() (*BSGF, error) {
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokAssign); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSelect); err != nil {
		return nil, err
	}
	sel, err := p.parseSelectList()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokFrom); err != nil {
		return nil, err
	}
	guard, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	q := &BSGF{Name: name.text, Select: sel, Guard: guard}
	if p.tok.kind == tokWhere {
		if err := p.advance(); err != nil {
			return nil, err
		}
		cond, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		q.Where = cond
	}
	if _, err := p.expect(tokSemi); err != nil {
		return nil, err
	}
	return q, nil
}

// parseSelectList parses "x, y" or "(x, y)".
func (p *parser) parseSelectList() ([]string, error) {
	paren := false
	if p.tok.kind == tokLParen {
		paren = true
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	var out []string
	for {
		id, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		out = append(out, id.text)
		if p.tok.kind != tokComma {
			break
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if paren {
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// parseOr parses or-expr := and-expr (OR and-expr)*.
func (p *parser) parseOr() (Condition, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	parts := []Condition{left}
	for p.tok.kind == tokOr {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		parts = append(parts, right)
	}
	return OrOf(parts...), nil
}

// parseAnd parses and-expr := unary (AND unary)*.
func (p *parser) parseAnd() (Condition, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	parts := []Condition{left}
	for p.tok.kind == tokAnd {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		parts = append(parts, right)
	}
	return AndOf(parts...), nil
}

// parseUnary parses NOT unary | ( or-expr ) | atom.
func (p *parser) parseUnary() (Condition, error) {
	switch p.tok.kind {
	case tokNot:
		if err := p.advance(); err != nil {
			return nil, err
		}
		c, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Not{C: c}, nil
	case tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		c, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return c, nil
	case tokIdent:
		a, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		return AtomCond{Atom: a}, nil
	default:
		return nil, p.errorf("expected NOT, '(' or atom, got %s %q", p.tok.kind, p.tok.text)
	}
}

// parseAtom parses Rel(term, term, ...).
func (p *parser) parseAtom() (Atom, error) {
	rel, err := p.expect(tokIdent)
	if err != nil {
		return Atom{}, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return Atom{}, err
	}
	var args []Term
	for {
		t, err := p.parseTerm()
		if err != nil {
			return Atom{}, err
		}
		args = append(args, t)
		if p.tok.kind != tokComma {
			break
		}
		if err := p.advance(); err != nil {
			return Atom{}, err
		}
	}
	if _, err := p.expect(tokRParen); err != nil {
		return Atom{}, err
	}
	return Atom{Rel: rel.text, Args: args}, nil
}

// parseTerm parses a variable, an integer constant, or a quoted string
// constant.
func (p *parser) parseTerm() (Term, error) {
	switch p.tok.kind {
	case tokIdent:
		t := V(p.tok.text)
		if err := p.advance(); err != nil {
			return Term{}, err
		}
		return t, nil
	case tokInt:
		n, err := strconv.ParseInt(p.tok.text, 10, 64)
		if err != nil {
			return Term{}, p.errorf("bad integer %q: %v", p.tok.text, err)
		}
		if err := p.advance(); err != nil {
			return Term{}, err
		}
		return C(relation.Int(n)), nil
	case tokString:
		t := CStr(p.tok.text)
		if err := p.advance(); err != nil {
			return Term{}, err
		}
		return t, nil
	default:
		return Term{}, p.errorf("expected term, got %s %q", p.tok.kind, p.tok.text)
	}
}
