// Package sgf implements the Strictly Guarded Fragment query language of
// the paper: terms, atoms, Boolean conditions, basic (BSGF) queries, and
// SGF programs (sequences of BSGF queries), together with a parser for the
// paper's SQL-like syntax, a validator, conformance/projection semantics,
// and dependency graphs.
//
// A basic query has the form
//
//	Z := SELECT x̄ FROM R(t̄) [WHERE C];
//
// where C is a Boolean combination of atoms such that any variable shared
// by two distinct conditional atoms also occurs in the guard R(t̄).
package sgf

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/relation"
)

// Term is a variable or a constant data value.
type Term struct {
	Var   string         // variable name; empty when the term is a constant
	Const relation.Value // constant value, meaningful when Var == ""
}

// V returns a variable term.
func V(name string) Term { return Term{Var: name} }

// C returns a constant term.
func C(v relation.Value) Term { return Term{Const: v} }

// CInt returns a constant term holding a non-negative integer.
func CInt(n int64) Term { return Term{Const: relation.Int(n)} }

// CStr returns a constant term holding an interned string.
func CStr(s string) Term { return Term{Const: relation.String(s)} }

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return t.Var != "" }

// String renders the term: the variable name, a bare integer, or a quoted
// string constant.
func (t Term) String() string {
	if t.IsVar() {
		return t.Var
	}
	if t.Const.IsString() {
		return fmt.Sprintf("%q", t.Const.Text())
	}
	return t.Const.Text()
}

// Atom is R(t1, ..., tn) for a relation symbol R and terms ti.
type Atom struct {
	Rel  string
	Args []Term
}

// NewAtom builds an atom.
func NewAtom(rel string, args ...Term) Atom { return Atom{Rel: rel, Args: args} }

// Arity returns the number of argument terms.
func (a Atom) Arity() int { return len(a.Args) }

// String renders the atom in query syntax.
func (a Atom) String() string {
	var sb strings.Builder
	sb.WriteString(a.Rel)
	sb.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(t.String())
	}
	sb.WriteByte(')')
	return sb.String()
}

// Key returns a canonical identity string for the atom. Two atoms are "the
// same atom" in the paper's sense (for MSJ deduplication and for the
// distinctness requirement in §4.4) iff their keys are equal.
func (a Atom) Key() string {
	var sb strings.Builder
	sb.WriteString(a.Rel)
	sb.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			sb.WriteByte(',')
		}
		if t.IsVar() {
			sb.WriteByte('$')
			sb.WriteString(t.Var)
		} else {
			sb.WriteByte('=')
			sb.WriteString(t.Const.Text())
			if t.Const.IsString() {
				sb.WriteByte('"')
			}
		}
	}
	sb.WriteByte(')')
	return sb.String()
}

// Vars returns the distinct variables of the atom in order of first
// occurrence.
func (a Atom) Vars() []string {
	var out []string
	seen := make(map[string]bool)
	for _, t := range a.Args {
		if t.IsVar() && !seen[t.Var] {
			seen[t.Var] = true
			out = append(out, t.Var)
		}
	}
	return out
}

// HasVar reports whether v occurs in the atom.
func (a Atom) HasVar(v string) bool {
	for _, t := range a.Args {
		if t.Var == v {
			return true
		}
	}
	return false
}

// VarPositions returns, for each variable in vars, the position of its
// first occurrence in the atom. It panics if a variable does not occur.
func (a Atom) VarPositions(vars []string) []int {
	out := make([]int, len(vars))
	for i, v := range vars {
		pos := -1
		for j, t := range a.Args {
			if t.Var == v {
				pos = j
				break
			}
		}
		if pos < 0 {
			panic(fmt.Sprintf("sgf: variable %s not in atom %s", v, a))
		}
		out[i] = pos
	}
	return out
}

// SharedVars returns the variables occurring in both a and b, ordered by
// first occurrence in a. This is the join key z̄ of a semi-join a ⋉ b when
// a is the guard.
func SharedVars(a, b Atom) []string {
	var out []string
	for _, v := range a.Vars() {
		if b.HasVar(v) {
			out = append(out, v)
		}
	}
	return out
}

// Equal reports structural equality of atoms.
func (a Atom) Equal(b Atom) bool { return a.Key() == b.Key() }

// Rename returns a copy of the atom with the relation symbol replaced.
func (a Atom) Rename(rel string) Atom {
	return Atom{Rel: rel, Args: append([]Term(nil), a.Args...)}
}

// Condition is a Boolean combination of atoms: the WHERE clause C of a
// basic SGF query. The concrete types are AtomCond, Not, And and Or; a
// nil Condition means an absent WHERE clause (always true). String
// renders the condition in the paper's syntax, re-parseable by Parse.
type Condition interface {
	fmt.Stringer
	// walk visits every atom leaf in left-to-right order.
	walk(func(Atom))
	// eval computes the truth value given per-atom verdicts. truth is
	// called with the canonical Key of each atom leaf.
	eval(truth func(atomKey string) bool) bool
}

// AtomCond is an atom used as a Boolean leaf: true under substitution σ
// iff a conforming fact with matching shared-variable values exists.
type AtomCond struct{ Atom Atom }

// Not negates a condition.
type Not struct{ C Condition }

// And is an n-ary conjunction (len >= 2 after parsing).
type And struct{ Cs []Condition }

// Or is an n-ary disjunction (len >= 2 after parsing).
type Or struct{ Cs []Condition }

func (c AtomCond) walk(f func(Atom)) { f(c.Atom) }
func (c Not) walk(f func(Atom))      { c.C.walk(f) }
func (c And) walk(f func(Atom)) {
	for _, x := range c.Cs {
		x.walk(f)
	}
}
func (c Or) walk(f func(Atom)) {
	for _, x := range c.Cs {
		x.walk(f)
	}
}

func (c AtomCond) eval(truth func(string) bool) bool { return truth(c.Atom.Key()) }
func (c Not) eval(truth func(string) bool) bool      { return !c.C.eval(truth) }
func (c And) eval(truth func(string) bool) bool {
	for _, x := range c.Cs {
		if !x.eval(truth) {
			return false
		}
	}
	return true
}
func (c Or) eval(truth func(string) bool) bool {
	for _, x := range c.Cs {
		if x.eval(truth) {
			return true
		}
	}
	return false
}

// String renders the atom in the paper's syntax, e.g. S(x, "bad").
func (c AtomCond) String() string { return c.Atom.String() }

// String renders the negation, parenthesizing non-atom operands:
// NOT S(x) but NOT (S(x) AND T(x)).
func (c Not) String() string {
	switch c.C.(type) {
	case AtomCond:
		return "NOT " + c.C.String()
	default:
		return "NOT (" + c.C.String() + ")"
	}
}

func condChild(parent string, child Condition) string {
	switch child.(type) {
	case And:
		if parent == "OR" {
			return "(" + child.String() + ")"
		}
		return child.String()
	case Or:
		return "(" + child.String() + ")"
	default:
		return child.String()
	}
}

// String joins the operands with AND, parenthesizing nested Ors (AND
// binds tighter than OR; see the parser's precedence).
func (c And) String() string {
	parts := make([]string, len(c.Cs))
	for i, x := range c.Cs {
		parts[i] = condChild("AND", x)
	}
	return strings.Join(parts, " AND ")
}

// String joins the operands with OR, parenthesizing nested mixed
// conjunctions where required for re-parseability.
func (c Or) String() string {
	parts := make([]string, len(c.Cs))
	for i, x := range c.Cs {
		parts[i] = condChild("OR", x)
	}
	return strings.Join(parts, " OR ")
}

// AndOf builds a conjunction, flattening nested Ands and collapsing the
// single-element case.
func AndOf(cs ...Condition) Condition { return nary(cs, true) }

// OrOf builds a disjunction, flattening nested Ors and collapsing the
// single-element case.
func OrOf(cs ...Condition) Condition { return nary(cs, false) }

func nary(cs []Condition, isAnd bool) Condition {
	var flat []Condition
	for _, c := range cs {
		switch x := c.(type) {
		case And:
			if isAnd {
				flat = append(flat, x.Cs...)
				continue
			}
		case Or:
			if !isAnd {
				flat = append(flat, x.Cs...)
				continue
			}
		}
		flat = append(flat, c)
	}
	if len(flat) == 1 {
		return flat[0]
	}
	if isAnd {
		return And{Cs: flat}
	}
	return Or{Cs: flat}
}

// Atoms returns the distinct atoms of the condition in left-to-right order
// of first occurrence. nil conditions yield nil.
func Atoms(c Condition) []Atom {
	if c == nil {
		return nil
	}
	var out []Atom
	seen := make(map[string]bool)
	c.walk(func(a Atom) {
		k := a.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, a)
		}
	})
	return out
}

// EvalCondition computes the truth value of c given per-atom verdicts
// keyed by Atom.Key(). A nil condition is true (absent WHERE clause).
func EvalCondition(c Condition, truth map[string]bool) bool {
	if c == nil {
		return true
	}
	return c.eval(func(k string) bool { return truth[k] })
}

// CompileCondition compiles c into an allocation-free evaluator over a
// uint64 truth mask: bit positions are assigned by bitOf, which maps an
// atom's canonical Key to its position (0–63). This is the reducer-side
// hot path of the EVAL and one-round jobs — EvalCondition allocates a
// truth map per key group, the compiled closure tree allocates nothing
// per call. Returns nil (callers fall back to EvalCondition) when any
// atom is unmapped or a position falls outside the mask; a nil
// condition compiles to constantly true. The two evaluators agree on
// every condition and mask (TestCompileConditionMatchesEval).
func CompileCondition(c Condition, bitOf func(atomKey string) (int, bool)) func(mask uint64) bool {
	if c == nil {
		return func(uint64) bool { return true }
	}
	return compileCond(c, bitOf)
}

func compileCond(c Condition, bitOf func(string) (int, bool)) func(uint64) bool {
	switch x := c.(type) {
	case AtomCond:
		pos, ok := bitOf(x.Atom.Key())
		if !ok || pos < 0 || pos > 63 {
			return nil
		}
		m := uint64(1) << uint(pos)
		return func(mask uint64) bool { return mask&m != 0 }
	case Not:
		inner := compileCond(x.C, bitOf)
		if inner == nil {
			return nil
		}
		return func(mask uint64) bool { return !inner(mask) }
	case And:
		subs := make([]func(uint64) bool, len(x.Cs))
		for i, sc := range x.Cs {
			if subs[i] = compileCond(sc, bitOf); subs[i] == nil {
				return nil
			}
		}
		return func(mask uint64) bool {
			for _, s := range subs {
				if !s(mask) {
					return false
				}
			}
			return true
		}
	case Or:
		subs := make([]func(uint64) bool, len(x.Cs))
		for i, sc := range x.Cs {
			if subs[i] = compileCond(sc, bitOf); subs[i] == nil {
				return nil
			}
		}
		return func(mask uint64) bool {
			for _, s := range subs {
				if s(mask) {
					return true
				}
			}
			return false
		}
	}
	return nil
}

// Relations returns the distinct relation symbols mentioned in c.
func Relations(c Condition) []string {
	var out []string
	seen := make(map[string]bool)
	for _, a := range Atoms(c) {
		if !seen[a.Rel] {
			seen[a.Rel] = true
			out = append(out, a.Rel)
		}
	}
	return out
}

// BSGF is a basic strictly guarded fragment query
// Name := SELECT Select FROM Guard [WHERE Where].
type BSGF struct {
	Name   string   // output relation Z
	Select []string // projection variables x̄, all occurring in the guard
	Guard  Atom     // guard atom R(t̄)
	Where  Condition
}

// OutArity returns the arity of the output relation.
func (q *BSGF) OutArity() int { return len(q.Select) }

// CondAtoms returns the distinct conditional atoms of the query.
func (q *BSGF) CondAtoms() []Atom { return Atoms(q.Where) }

// RelationNames returns the distinct relation symbols mentioned by the
// query (guard first).
func (q *BSGF) RelationNames() []string {
	out := []string{q.Guard.Rel}
	seen := map[string]bool{q.Guard.Rel: true}
	for _, r := range Relations(q.Where) {
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	return out
}

// String renders the query in the paper's syntax, terminated by ";".
func (q *BSGF) String() string {
	var sb strings.Builder
	sb.WriteString(q.Name)
	sb.WriteString(" := SELECT ")
	sb.WriteString(strings.Join(q.Select, ", "))
	sb.WriteString(" FROM ")
	sb.WriteString(q.Guard.String())
	if q.Where != nil {
		sb.WriteString(" WHERE ")
		sb.WriteString(q.Where.String())
	}
	sb.WriteByte(';')
	return sb.String()
}

// Clone returns a deep copy of the query.
func (q *BSGF) Clone() *BSGF {
	c := &BSGF{
		Name:   q.Name,
		Select: append([]string(nil), q.Select...),
		Guard:  Atom{Rel: q.Guard.Rel, Args: append([]Term(nil), q.Guard.Args...)},
		Where:  cloneCond(q.Where),
	}
	return c
}

func cloneCond(c Condition) Condition {
	switch x := c.(type) {
	case nil:
		return nil
	case AtomCond:
		return AtomCond{Atom: Atom{Rel: x.Atom.Rel, Args: append([]Term(nil), x.Atom.Args...)}}
	case Not:
		return Not{C: cloneCond(x.C)}
	case And:
		cs := make([]Condition, len(x.Cs))
		for i, y := range x.Cs {
			cs[i] = cloneCond(y)
		}
		return And{Cs: cs}
	case Or:
		cs := make([]Condition, len(x.Cs))
		for i, y := range x.Cs {
			cs[i] = cloneCond(y)
		}
		return Or{Cs: cs}
	default:
		panic(fmt.Sprintf("sgf: unknown condition type %T", c))
	}
}

// Program is an SGF query: a sequence Z1 := ξ1; ...; Zn := ξn where each
// ξi may mention the output relations Zj with j < i. The result of the
// program is the relation defined by the last query.
type Program struct {
	Queries []*BSGF
}

// OutputName returns the name of the final output relation, or "" for an
// empty program.
func (p *Program) OutputName() string {
	if len(p.Queries) == 0 {
		return ""
	}
	return p.Queries[len(p.Queries)-1].Name
}

// QueryByName returns the BSGF with the given output name, or nil.
func (p *Program) QueryByName(name string) *BSGF {
	for _, q := range p.Queries {
		if q.Name == name {
			return q
		}
	}
	return nil
}

// Defined returns the set of output relation names defined by the program.
func (p *Program) Defined() map[string]bool {
	out := make(map[string]bool, len(p.Queries))
	for _, q := range p.Queries {
		out[q.Name] = true
	}
	return out
}

// BaseRelations returns the sorted names of relations mentioned but not
// defined by the program: the inputs it expects from the database.
func (p *Program) BaseRelations() []string {
	defined := p.Defined()
	seen := make(map[string]bool)
	var out []string
	for _, q := range p.Queries {
		for _, r := range q.RelationNames() {
			if !defined[r] && !seen[r] {
				seen[r] = true
				out = append(out, r)
			}
		}
	}
	sort.Strings(out)
	return out
}

// String renders the whole program, one query per line.
func (p *Program) String() string {
	lines := make([]string, len(p.Queries))
	for i, q := range p.Queries {
		lines[i] = q.String()
	}
	return strings.Join(lines, "\n")
}

// Clone returns a deep copy of the program.
func (p *Program) Clone() *Program {
	c := &Program{Queries: make([]*BSGF, len(p.Queries))}
	for i, q := range p.Queries {
		c.Queries[i] = q.Clone()
	}
	return c
}
