package sgf

import "repro/internal/relation"

// Conforms reports whether the fact rel(t) conforms to atom a (written
// rel(t) ⊨ a in the paper): the relation symbols and arities match,
// repeated variables bind equal values, and constant positions match
// exactly.
func Conforms(rel string, t relation.Tuple, a Atom) bool {
	if rel != a.Rel || len(t) != len(a.Args) {
		return false
	}
	return ConformsTuple(t, a)
}

// ConformsTuple checks conformance of a tuple against an atom's argument
// pattern, ignoring the relation symbol (the caller has already matched
// it). Tuples of the wrong arity do not conform.
func ConformsTuple(t relation.Tuple, a Atom) bool {
	if len(t) != len(a.Args) {
		return false
	}
	for i, term := range a.Args {
		if !term.IsVar() {
			if t[i] != term.Const {
				return false
			}
			continue
		}
		// A repeated variable must bind the same value at every
		// occurrence; compare against its first occurrence.
		for j := 0; j < i; j++ {
			if a.Args[j].Var == term.Var {
				if t[j] != t[i] {
					return false
				}
				break
			}
		}
	}
	return true
}

// Project computes π_{a;vars}(t): the projection of a tuple conforming to
// atom a onto the listed variables (first-occurrence positions). The
// caller must have checked conformance.
func Project(t relation.Tuple, a Atom, vars []string) relation.Tuple {
	return t.Project(a.VarPositions(vars))
}

// Binding extracts the substitution σ mapping each variable of a to its
// value in the conforming tuple t.
func Binding(t relation.Tuple, a Atom) map[string]relation.Value {
	out := make(map[string]relation.Value)
	for i, term := range a.Args {
		if term.IsVar() {
			out[term.Var] = t[i]
		}
	}
	return out
}

// Matcher is a compiled conformance test for one atom, avoiding repeated
// pattern analysis in per-tuple inner loops.
type Matcher struct {
	arity  int
	consts []constCheck
	eqs    [][2]int // pairs of positions that must hold equal values
}

type constCheck struct {
	pos int
	val relation.Value
}

// NewMatcher compiles atom a into a Matcher.
func NewMatcher(a Atom) Matcher {
	m := Matcher{arity: len(a.Args)}
	first := make(map[string]int, len(a.Args))
	for i, term := range a.Args {
		if !term.IsVar() {
			m.consts = append(m.consts, constCheck{pos: i, val: term.Const})
			continue
		}
		if j, ok := first[term.Var]; ok {
			m.eqs = append(m.eqs, [2]int{j, i})
		} else {
			first[term.Var] = i
		}
	}
	return m
}

// Matches reports whether t conforms to the compiled atom pattern.
func (m Matcher) Matches(t relation.Tuple) bool {
	if len(t) != m.arity {
		return false
	}
	for _, c := range m.consts {
		if t[c.pos] != c.val {
			return false
		}
	}
	for _, e := range m.eqs {
		if t[e[0]] != t[e[1]] {
			return false
		}
	}
	return true
}

// Trivial reports whether every same-arity tuple matches (no constants, no
// repeated variables).
func (m Matcher) Trivial() bool { return len(m.consts) == 0 && len(m.eqs) == 0 }

// Projector is a precompiled projection π_{a;vars}, avoiding repeated
// position lookups in inner loops.
type Projector struct{ positions []int }

// NewProjector compiles the projection of atom a onto vars.
func NewProjector(a Atom, vars []string) Projector {
	return Projector{positions: a.VarPositions(vars)}
}

// Apply projects t. The result is a fresh tuple.
func (p Projector) Apply(t relation.Tuple) relation.Tuple { return t.Project(p.positions) }

// AppendKey appends the shuffle key of t's projection to dst and returns
// the extended slice. It is the mapper fast path equivalent to
// p.Apply(t).Key(): the projected tuple is never materialized and the
// caller controls the key buffer, so building a shuffle key costs no
// intermediate allocation.
func (p Projector) AppendKey(dst []byte, t relation.Tuple) []byte {
	for _, pos := range p.positions {
		dst = t[pos].AppendKey(dst)
	}
	return dst
}

// Arity returns the arity of projected tuples.
func (p Projector) Arity() int { return len(p.positions) }
