package mr

import (
	"fmt"
	"testing"

	"repro/internal/cost"
	"repro/internal/relation"
)

// TestDeterminismAcrossParallelism verifies that outputs and every
// measured statistic are identical whatever the host parallelism: the
// simulated metrics must not depend on how the engine happens to
// schedule goroutines.
func TestDeterminismAcrossParallelism(t *testing.T) {
	var tuples []relation.Tuple
	for i := int64(0); i < 3000; i++ {
		tuples = append(tuples, tup(i, i%17))
	}
	db := relation.NewDatabase()
	db.Put(relation.FromTuples("R", 2, tuples))
	db.Put(relation.FromTuples("S", 1, []relation.Tuple{tup(0), tup(3), tup(9)}))

	var baseline string
	var baseOut *relation.Relation
	for _, workers := range []int{1, 2, 8} {
		e := NewEngine(cost.Default().Scaled(0.001))
		e.Parallelism = workers
		out, stats, err := e.RunJob(semijoinJob(true), db)
		if err != nil {
			t.Fatal(err)
		}
		sig := fmt.Sprintf("%s|loads=%v", stats, stats.ReduceLoadMB)
		if baseline == "" {
			baseline = sig
			baseOut = out.Relation("Z")
			continue
		}
		if sig != baseline {
			t.Errorf("workers=%d: stats differ:\n%s\nvs\n%s", workers, sig, baseline)
		}
		if !out.Relation("Z").Equal(baseOut) {
			t.Errorf("workers=%d: output differs", workers)
		}
	}
}

// TestReduceLoadAccounting checks that per-reducer loads sum to the
// intermediate volume and that a skewed key concentrates load.
func TestReduceLoadAccounting(t *testing.T) {
	var tuples []relation.Tuple
	for i := int64(0); i < 5000; i++ {
		key := i % 50
		if i%2 == 0 {
			key = 7 // heavy key
		}
		tuples = append(tuples, tup(i, key))
	}
	db := relation.NewDatabase()
	db.Put(relation.FromTuples("R", 2, tuples))
	db.Put(relation.FromTuples("S", 1, []relation.Tuple{tup(7)}))
	e := NewEngine(cost.Default().Scaled(0.0002))
	_, stats, err := e.RunJob(semijoinJob(false), db)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, l := range stats.ReduceLoadMB {
		sum += l
	}
	if diff := sum - stats.InterMB(); diff > 1e-9 || diff < -1e-9 {
		t.Errorf("reduce loads sum %v != intermediate %v", sum, stats.InterMB())
	}
	if stats.Reducers > 2 && stats.ReduceImbalance() < 1.5 {
		t.Errorf("expected skewed loads, imbalance = %v (r=%d)", stats.ReduceImbalance(), stats.Reducers)
	}
}

// TestKeyBytesMinimum covers the KeyBytes floor.
func TestKeyBytesMinimum(t *testing.T) {
	if KeyBytes("") != 2 || KeyBytes("a") != 2 || KeyBytes("abc") != 3 {
		t.Errorf("KeyBytes floor wrong: %d %d %d", KeyBytes(""), KeyBytes("a"), KeyBytes("abc"))
	}
}
