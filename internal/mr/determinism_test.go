package mr

import (
	"fmt"
	"hash/fnv"
	"testing"

	"repro/internal/cost"
	"repro/internal/relation"
)

// TestDeterminismAcrossParallelism verifies that outputs and every
// measured statistic are identical whatever the host parallelism: the
// simulated metrics must not depend on how the engine happens to
// schedule goroutines.
func TestDeterminismAcrossParallelism(t *testing.T) {
	var tuples []relation.Tuple
	for i := int64(0); i < 3000; i++ {
		tuples = append(tuples, tup(i, i%17))
	}
	db := relation.NewDatabase()
	db.Put(relation.FromTuples("R", 2, tuples))
	db.Put(relation.FromTuples("S", 1, []relation.Tuple{tup(0), tup(3), tup(9)}))

	var baseline string
	var baseOut *relation.Relation
	for _, workers := range []int{1, 2, 8} {
		e := NewEngine(cost.Default().Scaled(0.001))
		e.Parallelism = workers
		out, stats, err := e.RunJob(semijoinJob(true), db)
		if err != nil {
			t.Fatal(err)
		}
		sig := fmt.Sprintf("%s|loads=%v", stats, stats.ReduceLoadMB)
		if baseline == "" {
			baseline = sig
			baseOut = out.Relation("Z")
			continue
		}
		if sig != baseline {
			t.Errorf("workers=%d: stats differ:\n%s\nvs\n%s", workers, sig, baseline)
		}
		if !out.Relation("Z").Equal(baseOut) {
			t.Errorf("workers=%d: output differs", workers)
		}
	}
}

// TestReduceLoadAccounting checks that per-reducer loads sum to the
// intermediate volume and that a skewed key concentrates load.
func TestReduceLoadAccounting(t *testing.T) {
	var tuples []relation.Tuple
	for i := int64(0); i < 5000; i++ {
		key := i % 50
		if i%2 == 0 {
			key = 7 // heavy key
		}
		tuples = append(tuples, tup(i, key))
	}
	db := relation.NewDatabase()
	db.Put(relation.FromTuples("R", 2, tuples))
	db.Put(relation.FromTuples("S", 1, []relation.Tuple{tup(7)}))
	e := NewEngine(cost.Default().Scaled(0.0002))
	_, stats, err := e.RunJob(semijoinJob(false), db)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, l := range stats.ReduceLoadMB {
		sum += l
	}
	if diff := sum - stats.InterMB(); diff > 1e-9 || diff < -1e-9 {
		t.Errorf("reduce loads sum %v != intermediate %v", sum, stats.InterMB())
	}
	if stats.Reducers > 2 && stats.ReduceImbalance() < 1.5 {
		t.Errorf("expected skewed loads, imbalance = %v (r=%d)", stats.ReduceImbalance(), stats.Reducers)
	}
}

// TestGoldenStatsUnchanged pins outputs and JobStats to exact values
// captured from the pre-sort-based engine (hash/fnv hasher, map-based
// reduce grouping, first-occurrence packing): the engine refactor must
// be bit-for-bit invisible in everything it measures. Floats are
// compared through %v, which round-trips float64 exactly.
func TestGoldenStatsUnchanged(t *testing.T) {
	var tuples []relation.Tuple
	for i := int64(0); i < 5000; i++ {
		key := i % 50
		if i%2 == 0 {
			key = 7 // heavy key
		}
		tuples = append(tuples, tup(i, key))
	}
	db := relation.NewDatabase()
	db.Put(relation.FromTuples("R", 2, tuples))
	db.Put(relation.FromTuples("S", 1, []relation.Tuple{tup(7), tup(13)}))

	golden := map[bool]string{
		false: "[{Input:R InputMB:0.095367431640625 InterMB:0.0476837158203125 Records:5000 Mappers:4} {Input:S InputMB:1.9073486328125e-05 InterMB:1.9073486328125e-05 Records:2 Mappers:1}]|reducers=7,7|maps=5|out=0.0514984130859375|loads=[0.026712417602539062 0.00476837158203125 0.0038242340087890625 0.00286102294921875 0.00286102294921875 0.00286102294921875 0.003814697265625]",
		true:  "[{Input:R InputMB:0.095367431640625 InterMB:0.03833770751953125 Records:100 Mappers:4} {Input:S InputMB:1.9073486328125e-05 InterMB:1.9073486328125e-05 Records:2 Mappers:1}]|reducers=7,7|maps=5|out=0.0514984130859375|loads=[0.021394729614257812 0.00385284423828125 0.0030918121337890625 0.00231170654296875 0.00231170654296875 0.00231170654296875 0.003082275390625]",
	}
	const goldenZSize = 2700
	const goldenZHash = uint32(3135509740)

	for _, packing := range []bool{false, true} {
		for _, workers := range []int{1, 0} { // sequential and GOMAXPROCS
			e := NewEngine(cost.Default().Scaled(0.0002))
			e.Parallelism = workers
			job := semijoinJob(packing)
			job.Reducers = 7
			out, stats, err := e.RunJob(job, db)
			if err != nil {
				t.Fatal(err)
			}
			sig := fmt.Sprintf("%+v|reducers=%d,%d|maps=%d|out=%v|loads=%v",
				stats.Parts, stats.Reducers, stats.ReduceTasks, stats.MapTasks, stats.OutputMB, stats.ReduceLoadMB)
			if sig != golden[packing] {
				t.Errorf("packing=%v workers=%d: stats drifted from pre-refactor golden:\n got %s\nwant %s",
					packing, workers, sig, golden[packing])
			}
			z := out.Relation("Z")
			if z.Size() != goldenZSize || orderedTupleHash(z) != goldenZHash {
				t.Errorf("packing=%v workers=%d: output drifted: size=%d hash=%d",
					packing, workers, z.Size(), orderedTupleHash(z))
			}
		}
	}
}

// orderedTupleHash hashes a relation's tuples in iteration order, so the
// golden test also pins the merged output's tuple order.
func orderedTupleHash(r *relation.Relation) uint32 {
	h := uint32(2166136261)
	for _, t := range r.Tuples() {
		key := t.Key()
		for i := 0; i < len(key); i++ {
			h ^= uint32(key[i])
			h *= 16777619
		}
		h ^= 0xff
		h *= 16777619
	}
	return h
}

// TestHashKeyMatchesFNV pins the inlined shuffle hash to hash/fnv's
// FNV-1a, which the engine used via fnv.New32a before inlining: a drift
// would silently re-partition every shuffle.
func TestHashKeyMatchesFNV(t *testing.T) {
	keys := []string{"", "a", "abc", tup(7).Key(), tup(123456, -42).Key(), "\x00\xff\x80"}
	for _, k := range keys {
		h := fnv.New32a()
		h.Write([]byte(k))
		if want := h.Sum32(); hashKey([]byte(k)) != want {
			t.Errorf("hashKey(%q) = %d, want %d", k, hashKey([]byte(k)), want)
		}
	}
}

// TestKeyBytesMinimum covers the KeyBytes floor.
func TestKeyBytesMinimum(t *testing.T) {
	if KeyBytes(nil) != 2 || KeyBytes([]byte("a")) != 2 || KeyBytes([]byte("abc")) != 3 {
		t.Errorf("KeyBytes floor wrong: %d %d %d",
			KeyBytes(nil), KeyBytes([]byte("a")), KeyBytes([]byte("abc")))
	}
}
