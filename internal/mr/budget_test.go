package mr

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/cost"
)

// chargedBytes runs the golden diamond program to completion under a
// count-only budget and returns its cumulative charge. spillThreshold
// -1 keeps spill off regardless of the CI gate's environment override.
func chargedBytes(t *testing.T, width int, spillThreshold int64, spillDir string) int64 {
	t.Helper()
	p, db := diamondProgram()
	e := NewEngine(cost.Default().Scaled(0.001))
	e.Parallelism = width
	e.SpillThreshold = spillThreshold
	e.SpillDir = spillDir
	budget := NewBudget(0)
	if _, _, _, err := e.RunProgramGoverned(context.Background(), p, db, nil, budget); err != nil {
		t.Fatalf("width %d: clean governed run failed: %v", width, err)
	}
	return budget.Stats().ChargedBytes
}

// TestBudgetChargedDeterministicAcrossWidths pins the accounting
// contract's core property: the total charged over a clean run is a
// function of the plan and the data alone — identical at every pool
// width, with spill off and with every partition spilling. (This is
// what makes the over-budget trip deterministic rather than a
// high-water-mark race.)
func TestBudgetChargedDeterministicAcrossWidths(t *testing.T) {
	for _, spill := range []struct {
		name      string
		threshold int64
	}{{"nospill", -1}, {"spill", 1}} {
		t.Run(spill.name, func(t *testing.T) {
			dir := ""
			if spill.threshold > 0 {
				dir = t.TempDir()
			}
			base := chargedBytes(t, 1, spill.threshold, dir)
			if base <= 0 {
				t.Fatalf("sequential run charged %d bytes", base)
			}
			for _, width := range []int{4, runtime.GOMAXPROCS(0)} {
				if got := chargedBytes(t, width, spill.threshold, dir); got != base {
					t.Errorf("width %d charged %d bytes, width 1 charged %d", width, got, base)
				}
			}
		})
	}
}

// TestBudgetExceeded is the over-budget differential: a limit below a
// clean run's total charge aborts the run at every pool width with an
// error matching ErrBudgetExceeded, a nil outputs database, completed
// jobs' stats bit-for-bit identical to the sequential oracle, and the
// input database untouched. A clean re-run afterwards and a settled
// goroutine count pin that nothing leaks across the aborts.
func TestBudgetExceeded(t *testing.T) {
	oracle := oracleStats(t)
	baseline := runtime.NumGoroutine()
	charged := chargedBytes(t, 4, -1, "")
	if charged < 2 {
		t.Fatalf("clean run charged only %d bytes", charged)
	}
	limit := charged / 2

	seen := map[int]bool{}
	for _, width := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		if width < 1 || seen[width] {
			continue
		}
		seen[width] = true
		p, db := diamondProgram()
		before := dbSignature(db)
		e := NewEngine(cost.Default().Scaled(0.001))
		e.Parallelism = width
		e.SpillThreshold = -1
		budget := NewBudget(limit)
		outs, stats, _, err := e.RunProgramGoverned(context.Background(), p, db, nil, budget)
		if !errors.Is(err, ErrBudgetExceeded) {
			t.Fatalf("width %d: err = %v, want ErrBudgetExceeded", width, err)
		}
		var be *BudgetExceededError
		if !errors.As(err, &be) {
			t.Fatalf("width %d: err %v does not unwrap to *BudgetExceededError", width, err)
		}
		if be.Limit != limit || be.Charged <= be.Limit || be.Requested <= 0 {
			t.Errorf("width %d: implausible abort detail %+v (limit %d)", width, be, limit)
		}
		if outs != nil {
			t.Fatalf("width %d: over-budget run returned an outputs database", width)
		}
		for _, st := range stats {
			want, ok := oracle[st.Name]
			if !ok {
				t.Fatalf("width %d: completed job %q unknown to the oracle", width, st.Name)
			}
			if !statsEqual(st, want) {
				t.Errorf("width %d: job %s stats diverge from oracle:\n%+v\nvs\n%+v",
					width, st.Name, st, want)
			}
		}
		if dbSignature(db) != before {
			t.Fatalf("width %d: over-budget run mutated the input database", width)
		}
	}

	// Clean re-run: the aborts polluted no process-global state.
	p, db := diamondProgram()
	e := NewEngine(cost.Default().Scaled(0.001))
	e.Parallelism = 4
	e.SpillThreshold = -1
	_, stats, err := e.RunProgram(p, db)
	if err != nil {
		t.Fatalf("clean re-run failed: %v", err)
	}
	if len(stats) != len(oracle) {
		t.Fatalf("clean re-run completed %d jobs, oracle has %d", len(stats), len(oracle))
	}
	waitGoroutinesSettle(t, baseline)
}

// TestBudgetNilAndUnlimited: a nil *Budget is inert everywhere, and a
// zero-limit budget counts without ever aborting.
func TestBudgetNilAndUnlimited(t *testing.T) {
	var b *Budget
	b.charge(1 << 30) // must not panic
	b.noteSpill(42)
	if got := b.Stats(); got != (MemStats{}) {
		t.Errorf("nil budget stats = %+v, want zero", got)
	}
	u := NewBudget(0)
	u.charge(1 << 40) // unlimited: counts, never aborts
	u.charge(1 << 40)
	u.noteSpill(7)
	got := u.Stats()
	if got.ChargedBytes != 2<<40 || got.LimitBytes != 0 || got.SpilledBytes != 7 || got.SpilledParts != 1 {
		t.Errorf("unlimited budget stats = %+v", got)
	}
	if n := NewBudget(-5); n.limit != 0 {
		t.Errorf("negative limit normalized to %d, want 0 (count-only)", n.limit)
	}
}

// TestBudgetErrorIs pins the errors.Is contract through wrapping: the
// typed error matches the sentinel bare and however many fmt layers the
// engine and API stack add.
func TestBudgetErrorIs(t *testing.T) {
	be := &BudgetExceededError{Limit: 10, Charged: 12, Requested: 4}
	if !errors.Is(be, ErrBudgetExceeded) {
		t.Fatalf("bare BudgetExceededError does not match the sentinel")
	}
	wrapped := fmt.Errorf("mr: program aborted: %w", fmt.Errorf("mr: job x: %w", be))
	if !errors.Is(wrapped, ErrBudgetExceeded) {
		t.Fatalf("wrapped BudgetExceededError does not match the sentinel")
	}
	var out *BudgetExceededError
	if !errors.As(wrapped, &out) || out.Charged != 12 {
		t.Fatalf("wrapped error does not unwrap to the typed value")
	}
}

// TestPoolTaskAbort drives the pool seam the budget rides on directly:
// a task panicking with taskAbort fails the run — runTasks returns the
// carried error instead of re-raising — while a genuine task panic
// still propagates to the caller with its original payload.
func TestPoolTaskAbort(t *testing.T) {
	sentinel := errors.New("boom")
	err := runTasks(context.Background(), 4, func(c *poolCtx) {
		for i := 0; i < 8; i++ {
			c.spawn(func(c *poolCtx) {})
		}
		c.spawn(func(c *poolCtx) { panic(taskAbort{err: sentinel}) })
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("runTasks err = %v, want the taskAbort payload", err)
	}

	var recovered any
	func() {
		defer func() { recovered = recover() }()
		_ = runTasks(context.Background(), 4, func(c *poolCtx) {
			c.spawn(func(c *poolCtx) { panic("kaboom") })
		})
	}()
	if recovered != "kaboom" {
		t.Fatalf("real task panic surfaced as %v, want the original payload", recovered)
	}
}

// TestBudgetChargeAbortsFromTask: Budget.charge is only legal inside a
// pool task — crossing the limit panics taskAbort, which the pool
// converts into a run failure matching the sentinel.
func TestBudgetChargeAbortsFromTask(t *testing.T) {
	b := NewBudget(1)
	err := runTasks(context.Background(), 2, func(c *poolCtx) {
		c.spawn(func(c *poolCtx) { b.charge(100) })
	})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("charge past limit inside a task: err = %v, want ErrBudgetExceeded", err)
	}
}
