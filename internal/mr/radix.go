package mr

import (
	"bytes"
	"slices"
)

// MSD radix sort over shuffle-key bytes, used by sortIndexByKey for
// large partitions. Shuffle keys are short byte-encoded tuples with
// heavy duplication — exactly the shape where a byte-histogram radix
// pass beats comparison sorting: one pass buckets the whole partition by
// its leading key byte, long duplicate-key runs collapse into single
// buckets after a few levels, and the top-level pass parallelizes
// cleanly across the pool's spare workers.
//
// Both the radix path and the comparison fallback realize the same total
// order — plain lexicographic byte order on keys. The comparison
// fallback resolves on the packed 8-byte key prefix whenever it can:
// unequal prefixes order as uint64s (big-endian packing makes that
// lexicographic), equal prefixes with both keys within eight bytes order
// by length (the shorter key is a zero-padded prefix of the longer), and
// only longer keys fall back to a full byte compare. The radix path
// buckets on one prefix byte per level and finishes every small or
// prefix-exhausted bucket with the same comparison fallback, so the two
// paths are interchangeable (pinned by TestRadixMatchesComparisonSort).
const (
	// radixMinLen is the whole-partition cutoff below which
	// sortIndexByKey uses the comparison sort outright.
	radixMinLen = 512
	// radixBucketCutoff is the bucket size below which a radix level
	// hands off to the comparison sort.
	radixBucketCutoff = 96
)

// cmpRef compares two keyRefs in lexicographic key-byte order, prefix
// first.
func cmpRef(recs []record, a, b keyRef) int {
	if a.prefix != b.prefix {
		if a.prefix < b.prefix {
			return -1
		}
		return 1
	}
	ka, kb := recs[a.idx].key, recs[b.idx].key
	if len(ka) <= 8 && len(kb) <= 8 {
		return len(ka) - len(kb)
	}
	return bytes.Compare(ka, kb)
}

// sortRefs is the comparison sort over refs (pdqsort; its equal-element
// handling collapses the long duplicate-key runs a shuffle partition is
// made of).
func sortRefs(recs []record, refs []keyRef) {
	slices.SortFunc(refs, func(a, b keyRef) int { return cmpRef(recs, a, b) })
}

// msdRadix sorts refs in place by the key-prefix byte at the given level
// (0–7, most significant first), recursing into each bucket. tmp is
// scratch of the same length as refs. Buckets below radixBucketCutoff —
// and buckets whose 8-byte prefix is exhausted at level 8, where only
// same-prefix stragglers longer than eight bytes remain — finish with
// the comparison sort.
func msdRadix(recs []record, refs, tmp []keyRef, level int) {
	if len(refs) < radixBucketCutoff || level == 8 {
		sortRefs(recs, refs)
		return
	}
	shift := uint(56 - 8*level)
	var counts [256]int
	for _, r := range refs {
		counts[byte(r.prefix>>shift)]++
	}
	var offs [257]int
	for b := 0; b < 256; b++ {
		offs[b+1] = offs[b] + counts[b]
	}
	pos := offs
	for _, r := range refs {
		b := byte(r.prefix >> shift)
		tmp[pos[b]] = r
		pos[b]++
	}
	copy(refs, tmp)
	for b := 0; b < 256; b++ {
		lo, hi := offs[b], offs[b+1]
		if hi-lo > 1 {
			msdRadix(recs, refs[lo:hi], tmp[lo:hi], level+1)
		}
	}
}

// msdRadixParallel is msdRadix with the top level fanned out across up
// to `workers` goroutines: per-chunk histograms, a deterministic
// partitioned scatter (chunk c's share of bucket b lands at a
// precomputed offset, so the layout is independent of goroutine
// scheduling), then one goroutine per non-trivial bucket for the
// remaining levels. tmp is scratch of the same length as refs.
func msdRadixParallel(recs []record, refs, tmp []keyRef, workers int) {
	n := len(refs)
	nchunks := workers
	if nchunks > n {
		nchunks = n
	}
	chunk := (n + nchunks - 1) / nchunks
	// Rounding chunk up can make trailing chunks empty (workers² > n);
	// drop them so every chunk's lower bound stays inside refs.
	nchunks = (n + chunk - 1) / chunk
	bounds := func(c int) (int, int) {
		lo := c * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		return lo, hi
	}
	hist := make([][256]int, nchunks)
	parallelFor(workers, nchunks, func(c int) error {
		lo, hi := bounds(c)
		h := &hist[c]
		for _, r := range refs[lo:hi] {
			h[byte(r.prefix>>56)]++
		}
		return nil
	})
	var bucketLo [257]int
	starts := make([][256]int, nchunks)
	off := 0
	for b := 0; b < 256; b++ {
		bucketLo[b] = off
		for c := 0; c < nchunks; c++ {
			starts[c][b] = off
			off += hist[c][b]
		}
	}
	bucketLo[256] = off
	parallelFor(workers, nchunks, func(c int) error {
		lo, hi := bounds(c)
		pos := &starts[c]
		for _, r := range refs[lo:hi] {
			b := byte(r.prefix >> 56)
			tmp[pos[b]] = r
			pos[b]++
		}
		return nil
	})
	parallelFor(workers, 256, func(b int) error {
		lo, hi := bucketLo[b], bucketLo[b+1]
		if lo == hi {
			return nil
		}
		copy(refs[lo:hi], tmp[lo:hi])
		if hi-lo > 1 {
			msdRadix(recs, refs[lo:hi], tmp[lo:hi], 1)
		}
		return nil
	})
}
