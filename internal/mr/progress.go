package mr

import "sync/atomic"

// Progress accumulates live task-completion counters for one program
// run: the counters jobrun.go already maintains for its stage joins,
// mirrored into atomics so they can be read without touching the run.
// Totals grow as stages are planned (a job's shuffle-task total is only
// known once its maps finish), so Done can briefly equal Total for a
// stage that will still grow; JobsDone == JobsTotal is the reliable
// completion signal. A Progress observes exactly one run — pass a fresh
// value to each RunProgramObserved call.
//
// All methods are safe for concurrent use; a nil *Progress is a valid
// no-op observer, which is how unobserved runs skip the bookkeeping.
type Progress struct {
	mapDone, mapTotal     atomic.Int64
	shufDone, shufTotal   atomic.Int64
	redDone, redTotal     atomic.Int64
	mergeDone, mergeTotal atomic.Int64
	jobsDone, jobsTotal   atomic.Int64
}

// ProgressSnapshot is a point-in-time copy of a run's task counters.
// Totals for later stages appear as their jobs plan them (see
// Progress); Done never exceeds Total within a stage.
type ProgressSnapshot struct {
	MapTasksDone, MapTasksTotal         int
	ShuffleTasksDone, ShuffleTasksTotal int
	ReduceTasksDone, ReduceTasksTotal   int
	MergeShardsDone, MergeShardsTotal   int
	JobsDone, JobsTotal                 int
}

// Snapshot returns a point-in-time copy of the counters. Each field is
// read atomically; the snapshot as a whole is not a single atomic cut,
// which is fine for its purpose (monotonic progress display).
func (p *Progress) Snapshot() ProgressSnapshot {
	if p == nil {
		return ProgressSnapshot{}
	}
	return ProgressSnapshot{
		MapTasksDone: int(p.mapDone.Load()), MapTasksTotal: int(p.mapTotal.Load()),
		ShuffleTasksDone: int(p.shufDone.Load()), ShuffleTasksTotal: int(p.shufTotal.Load()),
		ReduceTasksDone: int(p.redDone.Load()), ReduceTasksTotal: int(p.redTotal.Load()),
		MergeShardsDone: int(p.mergeDone.Load()), MergeShardsTotal: int(p.mergeTotal.Load()),
		JobsDone: int(p.jobsDone.Load()), JobsTotal: int(p.jobsTotal.Load()),
	}
}

// The increment hooks below are called from jobrun.go's stage
// transitions; each is a no-op on a nil receiver so the unobserved
// path pays a single nil check per stage event.

func (p *Progress) addMapTotal(n int) {
	if p != nil {
		p.mapTotal.Add(int64(n))
	}
}

func (p *Progress) mapTaskDone() {
	if p != nil {
		p.mapDone.Add(1)
	}
}

func (p *Progress) addShuffleTotal(n int) {
	if p != nil {
		p.shufTotal.Add(int64(n))
	}
}

func (p *Progress) shuffleTaskDone() {
	if p != nil {
		p.shufDone.Add(1)
	}
}

func (p *Progress) addReduceTotal(n int) {
	if p != nil {
		p.redTotal.Add(int64(n))
	}
}

func (p *Progress) reduceTaskDone() {
	if p != nil {
		p.redDone.Add(1)
	}
}

func (p *Progress) addMergeTotal(n int) {
	if p != nil {
		p.mergeTotal.Add(int64(n))
	}
}

func (p *Progress) mergeShardDone() {
	if p != nil {
		p.mergeDone.Add(1)
	}
}

func (p *Progress) setJobsTotal(n int) {
	if p != nil {
		p.jobsTotal.Store(int64(n))
	}
}

func (p *Progress) jobDone() {
	if p != nil {
		p.jobsDone.Add(1)
	}
}
