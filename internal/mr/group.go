package mr

import (
	"slices"
)

// record is one map-output record: a key, a (possibly packed) message,
// and the record's modelled size in bytes (key + payload). The size is
// computed once when the record is emitted so that the later phases —
// per-part byte accounting, shuffle load measurement — sum a plain field
// instead of re-walking messages through the Message interface.
//
// The key is a byte slice carved from the map task's keyArena (see
// emitInto): emitting a record never allocates a key, and the arena
// chunks stay alive exactly as long as records reference them.
//
// A record produced by packRecords carries its same-key message run in
// packed rather than msg: keeping the run as a plain slice (sliced from
// a per-task arena) saves both the interface box a Packed message would
// cost and the per-key slice allocation. Mappers can still emit a Packed
// message themselves; both forms flatten identically at reduce time.
type record struct {
	key    []byte
	msg    Message   // single message; nil when packed is set
	packed []Message // packed same-key run (engine-internal transport)
	size   int64
}

// keyRef pairs a record index with the first eight bytes of its key,
// packed big-endian so uint64 order equals lexicographic order. Sorting
// keyRefs instead of records keeps the sort's data moves small and makes
// most comparisons (and every radix pass) operate on a register instead
// of the key bytes through a pointer.
type keyRef struct {
	prefix uint64
	idx    int32
}

// keyPrefix packs up to the first eight bytes of key big-endian,
// zero-padded on the right.
func keyPrefix(key []byte) uint64 {
	n := len(key)
	if n > 8 {
		n = 8
	}
	var p uint64
	for i := 0; i < n; i++ {
		p |= uint64(key[i]) << (56 - 8*uint(i))
	}
	return p
}

// sortIndexByKey returns record indices ordered so that walking them
// visits keys in ascending byte order and, within one key, records in
// arrival order. Large inputs are sorted by an MSD radix sort over the
// key bytes, parallelized across up to `workers` goroutines at the top
// radix level; small inputs (and small radix buckets) fall back to a
// comparison sort on the packed key prefix (see radix.go). Both paths
// produce the same total key order — plain lexicographic byte order —
// and both are unstable within one key (duplicate-key runs collapse);
// arrival order within each run is restored afterwards with a cheap
// integer sort by the callers.
func sortIndexByKey(recs []record, workers int) []int32 {
	n := len(recs)
	size := n
	if n >= radixMinLen {
		size = 2 * n // refs plus the radix scatter scratch, one allocation
	}
	buf := make([]keyRef, size)
	refs := buf[:n]
	for i := range recs {
		refs[i] = keyRef{prefix: keyPrefix(recs[i].key), idx: int32(i)}
	}
	switch {
	case n < radixMinLen:
		sortRefs(recs, refs)
	case workers > 1:
		msdRadixParallel(recs, refs, buf[n:], workers)
	default:
		msdRadix(recs, refs, buf[n:], 0)
	}
	idx := make([]int32, n)
	for i, r := range refs {
		idx[i] = r.idx
	}
	return idx
}

// runEnd returns the end of the key run starting at idx[i].
func runEnd(recs []record, idx []int32, i int) int {
	key := recs[idx[i]].key
	j := i + 1
	for j < len(idx) && string(recs[idx[j]].key) == string(key) {
		j++
	}
	return j
}

// forEachGroup groups one reduce partition's records by key and calls fn
// once per distinct key; it is forEachGroupIdx over a freshly computed
// serial sort index (a reduce partition task computes the index itself
// so the sort can borrow the pool's spare workers — see
// jobRun.reduceTask).
func forEachGroup(recs []record, fn func(key []byte, msgs []Message)) {
	if len(recs) == 0 {
		return
	}
	forEachGroupIdx(recs, sortIndexByKey(recs, 1), fn)
}

// forEachGroupIdx walks a sorted index (from sortIndexByKey) as key runs
// and calls fn once per distinct key, in ascending key order, with the
// key's messages in arrival order (Packed messages flattened). This is
// the sort-based replacement for hash grouping: grouping a whole
// partition allocates one index array and one message buffer rather
// than a map entry and slice per key. The message buffer is reused
// across calls — fn must not retain msgs after it returns (the engine's
// Reducer contract, see Reducer).
func forEachGroupIdx(recs []record, idx []int32, fn func(key []byte, msgs []Message)) {
	// Pre-size the shared message buffer: one key's flattened run is
	// almost always within the partition's record count (packed runs can
	// exceed it and grow the buffer; the cap bounds the upfront cost on
	// huge partitions with small groups).
	presize := len(idx)
	if presize > 4096 {
		presize = 4096
	}
	msgs := make([]Message, 0, presize)
	for i := 0; i < len(idx); {
		j := runEnd(recs, idx, i)
		run := idx[i:j]
		slices.Sort(run) // arrival order within the key
		msgs = msgs[:0]
		for _, id := range run {
			r := &recs[id]
			if r.packed != nil {
				// Engine-packed run; elements may still be Packed values
				// a mapper emitted, which flatten one level like
				// everywhere else.
				for _, m := range r.packed {
					if packed, ok := m.(Packed); ok {
						msgs = append(msgs, packed.Msgs...)
					} else {
						msgs = append(msgs, m)
					}
				}
			} else if packed, ok := r.msg.(Packed); ok {
				msgs = append(msgs, packed.Msgs...)
			} else {
				msgs = append(msgs, r.msg)
			}
		}
		fn(recs[run[0]].key, msgs)
		i = j
	}
}

// packRecords applies the message-packing optimization (§5.1 opt (1)) to
// one map task's output: all messages sharing a key collapse into a
// single Packed record whose key is charged once. Like forEachGroup it
// is sort-based (sorted index, key runs, arrival order within a run).
// Record keys come out in ascending order rather than first-occurrence
// order; the engine's accounting and the reduce phase are insensitive to
// record order (bytes are summed, reducers re-sort), so measured stats
// and outputs are unchanged. Sizes are maintained arithmetically from
// the constituent records: payload bytes are kept, duplicate key charges
// dropped.
func packRecords(recs []record) []record {
	if len(recs) == 0 {
		return recs
	}
	idx := sortIndexByKey(recs, 1)
	out := make([]record, 0, len(recs))
	// One message arena per task: every packed run is a sub-slice, so
	// packing costs two allocations per map task however many keys the
	// task emits.
	var arena []Message
	used := 0
	for i := 0; i < len(idx); {
		j := runEnd(recs, idx, i)
		if j == i+1 {
			out = append(out, recs[idx[i]])
			i = j
			continue
		}
		run := idx[i:j]
		slices.Sort(run) // arrival order within the key
		if arena == nil {
			arena = make([]Message, len(recs)) // upper bound on packed messages
		}
		msgs := arena[used : used : used+len(run)]
		used += len(run)
		first := &recs[run[0]]
		kb := KeyBytes(first.key)
		size := kb
		for _, id := range run {
			msgs = append(msgs, recs[id].msg)
			size += recs[id].size - kb // keep payload bytes, drop the duplicate key charge
		}
		out = append(out, record{key: first.key, packed: msgs, size: size})
		i = j
	}
	return out
}
