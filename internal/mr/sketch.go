package mr

import (
	"bytes"
	"sort"
)

// keySketch is the shuffle stage's heavy-key detector: a deterministic
// space-saving top-k counter over byte keys, weighted by modelled record
// bytes. Each shuffle task feeds its sketch from the counted two-pass
// placement loop (the target reducer and record size are already in
// hand there); shufflesDone merges the per-task sketches in declared
// (part, task) order, so the combined sketch — and every boundary
// derived from it — is identical at every pool width.
//
// The sketch is approximate twice over: the feed is a deterministic
// 1-in-sketchSampleEvery sample of each task's record stream (volumes
// scaled by the stride), and within the fed stream the counter is
// space-saving — an entry's volume never underestimates its key's fed
// volume, and a key covering more than 1/sketchEntries of the fed
// bytes is always present. That is exactly the fidelity splitting
// needs — boundaries only steer where a heavy partition is cut;
// correctness never depends on them (any byte-string boundary
// partitions the key space).
//
// Key storage is a fixed arena obtained through grabBytes, so the
// sketch's memory is charged to the run's budget like every other bulk
// engine buffer (the memcharge analyzer enforces the seam).
const (
	// sketchEntries is the number of tracked heavy-key candidates.
	sketchEntries = 16
	// sketchKeyBytes caps the stored bytes per key; longer keys are
	// tracked by prefix (full = false) and split only at the prefix.
	sketchKeyBytes = 48
	// splitMaxKeys caps how many heavy keys one split partition
	// isolates: each fully-stored key adds two boundaries, so a split
	// partition becomes at most 2·splitMaxKeys+1 sub-ranges — bounding
	// the redundant per-sub segment scans.
	splitMaxKeys = 4
	// sketchSampleEvery is the shuffle feed's sampling stride: the
	// placement loop observes every Nth record (by position in the
	// task's record stream, so the sample is schedule-independent) with
	// the record's size scaled by N. Sampling keeps the sketch off the
	// per-record hot path; a key heavy enough to split on is far too
	// frequent to hide from a 1-in-8 sample.
	sketchSampleEvery = 8
)

// sketchEntry is one tracked key: its stored length, whether the stored
// bytes are the whole key, the key's target reducer, and the byte
// volume attributed to it.
type sketchEntry struct {
	klen int32
	full bool
	red  int32
	vol  int64
}

type keySketch struct {
	n       int
	last    int // entry hit by the previous observe: skew's fast path
	entries [sketchEntries]sketchEntry
	keys    []byte // sketchEntries fixed slots of sketchKeyBytes
}

// newKeySketch allocates a sketch with budget-charged key storage.
func newKeySketch(b *Budget) *keySketch {
	return &keySketch{keys: grabBytes(b, sketchEntries*sketchKeyBytes)}
}

// slot returns entry i's stored key bytes.
func (s *keySketch) slot(i int) []byte {
	off := i * sketchKeyBytes
	return s.keys[off : off+int(s.entries[i].klen)]
}

// observe attributes size bytes to key, whose target reducer is red.
func (s *keySketch) observe(key []byte, red int32, size int64) {
	stored, full := key, true
	if len(stored) > sketchKeyBytes {
		stored, full = stored[:sketchKeyBytes], false
	}
	s.add(stored, full, red, size)
}

// add is observe after truncation; absorb reuses it for merging.
func (s *keySketch) add(stored []byte, full bool, red int32, size int64) {
	if s.n > 0 { // a heavy key hits the same entry run after run
		if e := &s.entries[s.last]; e.full == full && bytes.Equal(s.slot(s.last), stored) {
			e.vol += size
			return
		}
	}
	for i := 0; i < s.n; i++ {
		e := &s.entries[i]
		if e.full == full && bytes.Equal(s.slot(i), stored) {
			e.vol += size
			s.last = i
			return
		}
	}
	if s.n < sketchEntries {
		i := s.n
		s.n++
		copy(s.keys[i*sketchKeyBytes:], stored)
		s.entries[i] = sketchEntry{klen: int32(len(stored)), full: full, red: red, vol: size}
		s.last = i
		return
	}
	// Space-saving eviction: the smallest entry inherits the newcomer
	// and keeps its volume as the overestimate bound. The first minimum
	// in slot order wins, so eviction is deterministic.
	min := 0
	for i := 1; i < sketchEntries; i++ {
		if s.entries[i].vol < s.entries[min].vol {
			min = i
		}
	}
	copy(s.keys[min*sketchKeyBytes:], stored)
	e := &s.entries[min]
	e.klen, e.full, e.red = int32(len(stored)), full, red
	e.vol += size
	s.last = min
}

// absorb merges o's entries into s in o's slot order. Merging the
// per-task sketches in declared (part, task) order makes the combined
// sketch schedule-independent.
func (s *keySketch) absorb(o *keySketch) {
	for i := 0; i < o.n; i++ {
		e := &o.entries[i]
		s.add(o.slot(i), e.full, e.red, e.vol)
	}
}

// splitBoundaries derives the ascending key boundaries that isolate the
// sketch's heaviest keys targeting reducer ri: up to splitMaxKeys keys
// picked by volume (ties broken by slot order, so the pick is
// deterministic), each contributing the key itself and — when the key
// is stored in full — its immediate successor key·0x00, so the range
// [key, key·0x00) contains exactly that key's group. The returned
// boundaries are sorted, deduplicated, budget-charged copies that own
// their bytes (the per-task sketches die with taskParts; the boundaries
// outlive them in the reduce slots).
func (s *keySketch) splitBoundaries(ri int32, b *Budget) [][]byte {
	var taken [sketchEntries]bool
	var bounds [][]byte
	for picked := 0; picked < splitMaxKeys; picked++ {
		best := -1
		for i := 0; i < s.n; i++ {
			if taken[i] || s.entries[i].red != ri {
				continue
			}
			if best < 0 || s.entries[i].vol > s.entries[best].vol {
				best = i
			}
		}
		if best < 0 {
			break
		}
		taken[best] = true
		k := s.slot(best)
		kb := grabBytes(b, len(k))
		copy(kb, k)
		bounds = append(bounds, kb)
		if s.entries[best].full {
			succ := grabBytes(b, len(k)+1)
			copy(succ, k)
			succ[len(k)] = 0
			bounds = append(bounds, succ)
		}
	}
	sort.Slice(bounds, func(i, j int) bool { return bytes.Compare(bounds[i], bounds[j]) < 0 })
	out := bounds[:0]
	for _, kb := range bounds {
		if len(out) == 0 || !bytes.Equal(out[len(out)-1], kb) {
			out = append(out, kb)
		}
	}
	return out
}
