package mr

import "testing"

// Direct unit coverage for the reduce-load helpers (previously only
// exercised through whole-engine runs), with the degenerate shapes a
// consumer can hand them: no reducers at all, a single reducer, and
// all-empty loads.
func TestMaxReduceLoadMB(t *testing.T) {
	cases := []struct {
		name  string
		loads []float64
		want  float64
	}{
		{"nil", nil, 0},
		{"empty", []float64{}, 0},
		{"one", []float64{3.5}, 3.5},
		{"max-first", []float64{9, 1, 2}, 9},
		{"max-last", []float64{1, 2, 9}, 9},
		{"all-zero", []float64{0, 0, 0}, 0},
	}
	for _, c := range cases {
		s := JobStats{ReduceLoadMB: c.loads}
		if got := s.MaxReduceLoadMB(); got != c.want {
			t.Errorf("%s: MaxReduceLoadMB() = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestReduceImbalance(t *testing.T) {
	cases := []struct {
		name  string
		loads []float64
		want  float64
	}{
		{"nil", nil, 0},
		{"empty", []float64{}, 0},
		{"one-reducer", []float64{4}, 1}, // a single reducer is trivially balanced
		{"all-zero", []float64{0, 0}, 0}, // no load: imbalance undefined, reported 0
		{"even", []float64{2, 2, 2, 2}, 1},
		{"skewed", []float64{6, 1, 1}, 2.25}, // max 6 / mean 8/3
	}
	for _, c := range cases {
		s := JobStats{ReduceLoadMB: c.loads}
		if got := s.ReduceImbalance(); got != c.want {
			t.Errorf("%s: ReduceImbalance() = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestStatsStripSplitInfo: only the split observability fields are
// cleared; everything else survives untouched.
func TestStatsStripSplitInfo(t *testing.T) {
	s := JobStats{
		Name:             "j",
		OutputMB:         2,
		Reducers:         4,
		ReduceTasks:      4,
		ReduceLoadMB:     []float64{1, 2},
		SplitReduceTasks: 3,
		MaxReduceTaskMB:  1.5,
	}
	got := s.StripSplitInfo()
	if got.SplitReduceTasks != 0 || got.MaxReduceTaskMB != 0 {
		t.Errorf("split fields not cleared: %+v", got)
	}
	if got.Name != "j" || got.OutputMB != 2 || got.Reducers != 4 ||
		got.ReduceTasks != 4 || len(got.ReduceLoadMB) != 2 {
		t.Errorf("non-split fields changed: %+v", got)
	}
	if s.SplitReduceTasks != 3 {
		t.Errorf("StripSplitInfo mutated the receiver")
	}
}
