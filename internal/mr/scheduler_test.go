package mr

import (
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cost"
	"repro/internal/relation"
)

// identityJob copies relation in to relation out through a full
// map/shuffle/reduce pass.
func identityJob(name, in, out string, arity int) *Job {
	return &Job{
		Name:    name,
		Inputs:  []string{in},
		Outputs: map[string]int{out: arity},
		Mapper: MapperFunc(func(input string, id int, t relation.Tuple, emit Emit) {
			var kb [32]byte
			emit(t.AppendKey(kb[:0]), intMsg(int64(id)))
		}),
		Reducer: ReducerFunc(func(key []byte, msgs []Message, o *Output) {
			o.Add(out, relation.TupleFromKeyBytes(key))
		}),
	}
}

// unionJob unions the tuples of ins into out.
func unionJob(name string, ins []string, out string, arity int) *Job {
	return &Job{
		Name:    name,
		Inputs:  ins,
		Outputs: map[string]int{out: arity},
		Mapper: MapperFunc(func(input string, id int, t relation.Tuple, emit Emit) {
			var kb [32]byte
			emit(t.AppendKey(kb[:0]), intMsg(int64(id)))
		}),
		Reducer: ReducerFunc(func(key []byte, msgs []Message, o *Output) {
			o.Add(out, relation.TupleFromKeyBytes(key))
		}),
	}
}

// diamondProgram builds a 3-round program with parallelizable middles:
//
//	semijoin(R,S) → Z;  Z → W;  Z → V;  W ∪ V → F;  semijoin2(R2,S2) → Z2
//
// Jobs 1, 2 and 4 are pairwise independent once job 0 finishes.
func diamondProgram() (*Program, *relation.Database) {
	db := testDB()
	var tuples []relation.Tuple
	for i := int64(0); i < 300; i++ {
		tuples = append(tuples, tup(i, i%13))
	}
	db.Put(relation.FromTuples("R2", 2, tuples))
	db.Put(relation.FromTuples("S2", 1, []relation.Tuple{tup(0), tup(4), tup(7)}))

	sj2 := semijoinJob(true)
	sj2.Name = "semijoin2"
	sj2.Inputs = []string{"R2", "S2"}
	sj2.Outputs = map[string]int{"Z2": 2}

	p := &Program{Jobs: []*Job{
		semijoinJob(false),
		identityJob("left", "Z", "W", 2),
		identityJob("right", "Z", "V", 2),
		unionJob("join", []string{"W", "V"}, "F", 2),
		sj2,
	}}
	return p, db
}

// programSignature captures everything observable about a run: output
// database insertion order, full relation contents, and deep per-job
// stats.
func programSignature(t *testing.T, outs *relation.Database) string {
	t.Helper()
	var sb strings.Builder
	for _, name := range outs.Names() {
		sb.WriteString(outs.Relation(name).Dump())
	}
	return sb.String()
}

// TestRunProgramDeterminismAcrossWorkers is the scheduler's core
// contract: outputs and per-job stats of a multi-round plan are
// bit-for-bit identical at every width of the unified worker pool, from
// strictly sequential to all cores.
func TestRunProgramDeterminismAcrossWorkers(t *testing.T) {
	p, db := diamondProgram()
	if p.Rounds() != 3 {
		t.Fatalf("Rounds = %d, want 3", p.Rounds())
	}

	widths := []int{1, 2, 4, runtime.GOMAXPROCS(0), 0} // 0 = GOMAXPROCS
	var baseSig string
	var baseStats []JobStats
	for _, w := range widths {
		e := NewEngine(cost.Default().Scaled(0.001))
		e.Parallelism = w
		outs, stats, err := e.RunProgram(p, db)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if len(stats) != len(p.Jobs) {
			t.Fatalf("workers=%d: %d stats for %d jobs", w, len(stats), len(p.Jobs))
		}
		for i, st := range stats {
			if st.Name != p.Jobs[i].Name {
				t.Fatalf("workers=%d: stats[%d] = %s, want declared order %s",
					w, i, st.Name, p.Jobs[i].Name)
			}
		}
		sig := programSignature(t, outs)
		if baseSig == "" {
			baseSig, baseStats = sig, stats
			continue
		}
		if sig != baseSig {
			t.Errorf("workers=%d: outputs differ from base run", w)
		}
		if !reflect.DeepEqual(stats, baseStats) {
			t.Errorf("workers=%d: stats differ:\n%+v\nvs\n%+v", w, stats, baseStats)
		}
	}
}

// TestRunProgramMatchesSequentialOracle is the differential contract of
// the pipelined scheduler: outputs (content and iteration order) and
// deep per-job stats at several pool widths are bit-for-bit identical
// to runSequential, the whole-job-at-a-time reference schedule the old
// barriered scheduler matched.
func TestRunProgramMatchesSequentialOracle(t *testing.T) {
	for _, w := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		p, db := diamondProgram()
		e := NewEngine(cost.Default().Scaled(0.001))
		e.Parallelism = w

		working := relation.NewDatabase()
		for _, r := range db.Relations() {
			working.Put(r)
		}
		seqResults, err := e.runSequential(p, working)
		if err != nil {
			t.Fatal(err)
		}
		wantOuts := relation.NewDatabase()
		var wantStats []JobStats
		for _, res := range seqResults {
			for _, r := range res.outs.Relations() {
				wantOuts.Put(r)
			}
			wantStats = append(wantStats, res.stats)
		}

		outs, stats, err := e.RunProgram(p, db)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := programSignature(t, outs), programSignature(t, wantOuts); got != want {
			t.Errorf("workers=%d: pipelined outputs differ from sequential oracle", w)
		}
		if !reflect.DeepEqual(stats, wantStats) {
			t.Errorf("workers=%d: pipelined stats differ from sequential oracle:\n%+v\nvs\n%+v",
				w, stats, wantStats)
		}
		if !reflect.DeepEqual(outs.Names(), wantOuts.Names()) {
			t.Errorf("workers=%d: output database order differs: %v vs %v", w, outs.Names(), wantOuts.Names())
		}
	}
}

// TestRunProgramJobsOverlap proves dependency-independent jobs really
// run concurrently: two independent jobs whose mappers rendezvous can
// only both reach the barrier if the scheduler overlaps them.
func TestRunProgramJobsOverlap(t *testing.T) {
	db := relation.NewDatabase()
	db.Put(relation.FromTuples("A", 1, []relation.Tuple{tup(1)}))
	db.Put(relation.FromTuples("B", 1, []relation.Tuple{tup(2)}))

	started := make(chan string, 2)
	release := make(chan struct{})
	gated := func(name, in, out string) *Job {
		var once sync.Once
		j := identityJob(name, in, out, 1)
		inner := j.Mapper
		j.Mapper = MapperFunc(func(input string, id int, tp relation.Tuple, emit Emit) {
			once.Do(func() {
				started <- name
				select {
				case <-release:
				case <-time.After(10 * time.Second):
				}
			})
			inner.Map(input, id, tp, emit)
		})
		return j
	}
	p := &Program{Jobs: []*Job{gated("ja", "A", "OutA"), gated("jb", "B", "OutB")}}

	e := NewEngine(cost.Default())
	e.Parallelism = 2 // two pool workers: both jobs' map tasks can run at once
	done := make(chan error, 1)
	go func() {
		_, _, err := e.RunProgram(p, db)
		done <- err
	}()

	for i := 0; i < 2; i++ {
		select {
		case <-started:
		case <-time.After(5 * time.Second):
			t.Fatal("independent jobs did not overlap: scheduler is sequential")
		}
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestRunProgramRespectsDependencies checks a dependent job never starts
// before its producer publishes: the consumer reads the producer's
// output through the shared working database.
func TestRunProgramRespectsDependencies(t *testing.T) {
	for iter := 0; iter < 20; iter++ {
		p, db := diamondProgram()
		e := NewEngine(cost.Default().Scaled(0.001))
		e.Parallelism = 8
		outs, _, err := e.RunProgram(p, db)
		if err != nil {
			t.Fatal(err)
		}
		// F = W ∪ V = Z ∪ Z = Z.
		if !outs.Relation("F").Equal(outs.Relation("Z").Rename("F")) {
			t.Fatalf("iter %d: F != Z", iter)
		}
	}
}

// TestRunProgramErrorDeterministic: with several independently failing
// jobs the reported error belongs to the lowest-indexed one, regardless
// of goroutine scheduling, and completed jobs still report stats.
func TestRunProgramErrorDeterministic(t *testing.T) {
	broken := func(name, out string) *Job {
		return &Job{Name: name, Inputs: []string{"R"}, Outputs: map[string]int{out: 2}}
	}
	for iter := 0; iter < 20; iter++ {
		p := &Program{Jobs: []*Job{
			semijoinJob(false),
			broken("broken1", "B1"),
			broken("broken2", "B2"),
		}}
		e := NewEngine(cost.Default())
		e.Parallelism = 4
		_, stats, err := e.RunProgram(p, testDB())
		if err == nil {
			t.Fatal("broken program succeeded")
		}
		if !strings.Contains(err.Error(), "broken1") {
			t.Fatalf("iter %d: err = %v, want lowest-indexed job broken1", iter, err)
		}
		for _, st := range stats {
			if st.Name == "broken1" || st.Name == "broken2" {
				t.Fatalf("iter %d: failed job reported stats", iter)
			}
		}
	}
}

// TestConcurrentRunJobShared exercises the Engine doc-comment claim
// under the race detector: concurrent RunJob calls over one shared
// database are safe and produce the sequential results.
func TestConcurrentRunJobShared(t *testing.T) {
	db := testDB()
	e := NewEngine(cost.Default())
	want, wantStats, err := e.RunJob(semijoinJob(false), db)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 4
	var wg sync.WaitGroup
	outs := make([]*relation.Database, goroutines)
	stats := make([]JobStats, goroutines)
	errs := make([]error, goroutines)
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			outs[g], stats[g], errs[g] = e.RunJob(semijoinJob(false), db)
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatal(errs[g])
		}
		if !outs[g].Relation("Z").Equal(want.Relation("Z")) {
			t.Errorf("goroutine %d: output differs", g)
		}
		if !reflect.DeepEqual(stats[g], wantStats) {
			t.Errorf("goroutine %d: stats differ", g)
		}
	}
}

// TestConcurrentRunProgramShared runs two whole programs concurrently
// against one shared base database (race-detector coverage for the
// scheduler's own bookkeeping).
func TestConcurrentRunProgramShared(t *testing.T) {
	p1, db := diamondProgram()
	p2, _ := diamondProgram()
	e := NewEngine(cost.Default().Scaled(0.001))
	e.Parallelism = 4
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	for g, p := range []*Program{p1, p2} {
		go func(g int, p *Program) {
			defer wg.Done()
			_, _, errs[g] = e.RunProgram(p, db)
		}(g, p)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("program %d: %v", g, err)
		}
	}
}

// TestRunProgramEmpty covers the zero-job edge.
func TestRunProgramEmpty(t *testing.T) {
	e := NewEngine(cost.Default())
	e.Parallelism = 4
	outs, stats, err := e.RunProgram(&Program{}, testDB())
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 0 || len(outs.Names()) != 0 {
		t.Errorf("empty program produced %d stats, %d outputs", len(stats), len(outs.Names()))
	}
}

// TestRunProgramPipelinesAcrossJobBarrier proves scheduling is
// partition-granular, not job-granular: a downstream job's map tasks
// over a *base* input run while the upstream job producing its other
// input is still in its map phase. Under the whole-job barriered
// scheduler this program deadlocks until the 10s safety timeout (the
// downstream job would not start before the upstream finished); under
// the pipelined scheduler the base-input map task runs immediately and
// releases the upstream mapper.
func TestRunProgramPipelinesAcrossJobBarrier(t *testing.T) {
	db := relation.NewDatabase()
	db.Put(relation.FromTuples("A", 1, []relation.Tuple{tup(1), tup(2)}))
	db.Put(relation.FromTuples("B", 1, []relation.Tuple{tup(3), tup(4)}))

	bStarted := make(chan struct{})
	var bOnce sync.Once

	// Upstream: A → Z, but its mapper blocks until downstream's B map
	// task has demonstrably started.
	upstream := identityJob("up", "A", "Z", 1)
	innerUp := upstream.Mapper
	upstream.Mapper = MapperFunc(func(input string, id int, tp relation.Tuple, emit Emit) {
		select {
		case <-bStarted:
		case <-time.After(10 * time.Second):
			// Barrier scheduler would hang here; fall through so the
			// test fails on the elapsed-time assertion, not a deadlock.
		}
		innerUp.Map(input, id, tp, emit)
	})

	// Downstream: reads base B and produced Z.
	downstream := unionJob("down", []string{"B", "Z"}, "W", 1)
	innerDown := downstream.Mapper
	downstream.Mapper = MapperFunc(func(input string, id int, tp relation.Tuple, emit Emit) {
		if input == "B" {
			bOnce.Do(func() { close(bStarted) })
		}
		innerDown.Map(input, id, tp, emit)
	})

	p := &Program{Jobs: []*Job{upstream, downstream}}
	e := NewEngine(cost.Default())
	e.Parallelism = 2
	start := time.Now()
	outs, _, err := e.RunProgram(p, db)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("downstream base-input map did not overlap upstream (took %v): scheduling is job-granular", elapsed)
	}
	// W = B ∪ Z = {3,4} ∪ {1,2}.
	want := relation.FromTuples("W", 1, []relation.Tuple{tup(1), tup(2), tup(3), tup(4)})
	if !outs.Relation("W").Equal(want) {
		t.Errorf("W = %s, want %s", outs.Relation("W").Dump(), want.Dump())
	}
}

// TestProgramReadSets pins the relation-granular edges the scheduler
// wires: per job, per input, the producer index or -1 for base.
func TestProgramReadSets(t *testing.T) {
	p, _ := diamondProgram()
	got := p.ReadSets()
	want := [][]int{
		{-1, -1}, // semijoin: R, S base
		{0},      // left: Z from job 0
		{0},      // right: Z from job 0
		{1, 2},   // join: W from job 1, V from job 2
		{-1, -1}, // semijoin2: R2, S2 base
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ReadSets = %v, want %v", got, want)
	}
}
