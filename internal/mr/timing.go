package mr

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/relation"
)

// JobTiming aggregates the measured host wall-clock spent inside one
// job's task units, by task kind. Each field sums the durations of that
// kind's tasks (CPU-seconds of work, not the job's elapsed span: with a
// multi-worker pool, tasks overlap). The sums are what cost-model
// calibration consumes — the engine's per-task work is what the paper's
// per-MB constants price, and summed task time is close to invariant
// across pool widths while the elapsed span is not.
//
// Timings are measurements of the host, not modelled quantities: they
// vary run to run and are deliberately kept out of JobStats, whose
// bit-for-bit determinism contract (identical at every pool width) the
// golden and differential tests pin.
type JobTiming struct {
	Name           string
	MapSeconds     float64 // map tasks (mapper over one split, emit, packing)
	ShuffleSeconds float64 // shuffle partition tasks (counted two-pass placement)
	ReduceSeconds  float64 // reduce partition tasks (concatenate, sort, reduce)
	MergeSeconds   float64 // output merge shards (relation.Merge, publish)
	// SplitSeconds is the share of ReduceSeconds spent in sub-range
	// reduce tasks created by the runtime skew splitter — a subset, not
	// an additional kind, so TotalSeconds is unaffected by splitting.
	SplitSeconds float64
}

// TotalSeconds returns the summed task time of all four kinds.
func (t JobTiming) TotalSeconds() float64 {
	return t.MapSeconds + t.ShuffleSeconds + t.ReduceSeconds + t.MergeSeconds
}

// RunProgramTimed is RunProgram returning, additionally, the measured
// per-job task timings, aligned index-for-index with the returned stats
// (completed jobs in declared order). See JobTiming for what the
// numbers mean and why they are not part of JobStats.
func (e *Engine) RunProgramTimed(p *Program, db *relation.Database) (*relation.Database, []JobStats, []JobTiming, error) {
	//lint:ignore ctxpass RunProgramTimed is the documented no-cancellation entry point; callers below the API layer use RunProgramTimedCtx
	return e.RunProgramObserved(context.Background(), p, db, nil)
}

// RunProgramTimedCtx is RunProgramTimed honoring ctx: see
// RunProgramObserved for the cancellation contract.
func (e *Engine) RunProgramTimedCtx(ctx context.Context, p *Program, db *relation.Database) (*relation.Database, []JobStats, []JobTiming, error) {
	return e.RunProgramObserved(ctx, p, db, nil)
}

// RunProgramObserved is the engine's full program entry point: it runs
// the program honoring ctx and, when prog is non-nil, mirrors live
// task-completion counters into it (one fresh Progress per run; nil
// skips the bookkeeping).
//
// Cancellation semantics: the pool stops at the next task boundary —
// never mid-task, so no partially folded state is ever observable.
// Jobs that completed before the cancel report their stats and timings
// (bit-for-bit identical to an uncanceled run's), the outputs database
// is nil, and the returned error wraps ctx.Err(), so
// errors.Is(err, context.Canceled) (or DeadlineExceeded) holds. A
// canceled ctx always yields that error, even when the run raced to
// completion first. The input database is never modified, canceled or
// not: runs mutate only a private working copy.
func (e *Engine) RunProgramObserved(ctx context.Context, p *Program, db *relation.Database, prog *Progress) (*relation.Database, []JobStats, []JobTiming, error) {
	return e.RunProgramGoverned(ctx, p, db, prog, nil)
}

// RunProgramGoverned is RunProgramObserved charging the run's bulk
// allocations — arena chunks, shuffle partitions, merge shards, spill
// buffers — to budget (nil = unaccounted; see Budget). A run that
// charges past the budget's limit stops on the cancellation path with
// the same guarantees: nil outputs, completed jobs' stats bit-for-bit,
// the input database untouched, no goroutines or temp files left — and
// the returned error matches ErrBudgetExceeded via errors.Is.
func (e *Engine) RunProgramGoverned(ctx context.Context, p *Program, db *relation.Database, prog *Progress, budget *Budget) (*relation.Database, []JobStats, []JobTiming, error) {
	if err := p.Validate(db.Names()); err != nil {
		return nil, nil, nil, err
	}
	working := relation.NewDatabase()
	for _, r := range db.Relations() {
		working.Put(r)
	}
	limit := len(p.Jobs)
	var failErr error
	for i, job := range p.Jobs {
		if err := job.validate(); err != nil {
			limit, failErr = i, err
			break
		}
	}
	gov := e.newGovern(budget)
	// Sweep unconsumed spill files however the run ends — completion,
	// cancel, budget abort, or a task panic unwinding through us.
	defer gov.spill.cleanup()
	results, runErr := e.runPipelined(ctx, p, working, e.workers(), limit, prog, gov)
	// Fold completed jobs in declared order so the outputs database and
	// the stats slice are independent of the schedule.
	outputs := relation.NewDatabase()
	stats := make([]JobStats, 0, len(p.Jobs))
	timings := make([]JobTiming, 0, len(p.Jobs))
	for _, res := range results {
		if !res.done {
			continue
		}
		for _, r := range res.outs.Relations() {
			outputs.Put(r)
		}
		stats = append(stats, res.stats)
		timings = append(timings, res.timing)
	}
	if runErr != nil {
		if errors.Is(runErr, context.Canceled) || errors.Is(runErr, context.DeadlineExceeded) {
			return nil, stats, timings, fmt.Errorf("mr: program canceled: %w", runErr)
		}
		return nil, stats, timings, fmt.Errorf("mr: program aborted: %w", runErr)
	}
	if failErr != nil {
		return nil, stats, timings, fmt.Errorf("mr: job %s: %w", p.Jobs[limit].Name, failErr)
	}
	return outputs, stats, timings, nil
}
