// Package mr implements an in-process, deterministic MapReduce engine
// modelled on Hadoop MR (§3.2, Figure 1): read → map → (combine/pack) →
// sort → shuffle → merge → reduce → write. Jobs run for real over real
// relations — outputs are exact — while the engine measures the byte
// quantities the cost model needs (per-input N_i, M_i, record counts,
// output K) and the four paper metrics (input bytes, communication
// bytes; net/total time are derived by internal/cluster from the cost
// model applied to these measurements).
//
// This engine is the substitute for the paper's 10-node Hadoop cluster;
// see DESIGN.md §1 for the substitution argument.
package mr

import (
	"fmt"

	"repro/internal/relation"
)

// Message is a map-output value. Implementations must be immutable after
// emission and must report their modelled serialized size, which drives
// the intermediate-data accounting (M_i).
type Message interface {
	SizeBytes() int64
}

// Packed is a list of messages sharing one key: the wire form of the
// message-packing optimization (§5.1 optimization (1)), under which all
// request and assert messages with the same key emitted by one map task
// travel as a single record, saving per-record metadata and repeated
// keys. Mappers may emit a Packed value directly; the engine's own
// packing (Job.Packing) carries packed runs internally without
// materializing Packed values. Reducers see neither form: engine-packed
// runs and mapper-emitted Packed values (one level — Packed must not be
// nested inside Packed) are flattened before Reduce is called.
type Packed struct {
	Msgs []Message
}

// SizeBytes is the sum of the packed payloads (the key and the record
// metadata are accounted once at the record level).
func (p Packed) SizeBytes() int64 {
	var n int64
	for _, m := range p.Msgs {
		n += m.SizeBytes()
	}
	return n
}

// Emit is the map-side output function: key → message. Keys are byte
// slices so mappers can build them in a reused stack buffer (see
// Tuple.AppendKey / sgf.Projector.AppendKey) without converting to a
// string per record.
//
// Key ownership: the key is engine-owned after emit — the engine copies
// it into a per-map-task arena before Emit returns, so the mapper may
// (and should) reuse its key buffer for the next record. msg, by
// contrast, is retained by reference and must be immutable after
// emission (see Message). The mirror-image rule for emit-shaped
// wrappers — do not retain the caller's key buffer — is enforced by
// the keyretain analyzer (docs/INVARIANTS.md).
type Emit func(key []byte, msg Message)

// Mapper processes one input fact. The same Mapper instance is used
// concurrently by multiple map tasks and must be stateless or internally
// synchronized.
type Mapper interface {
	Map(input string, id int, t relation.Tuple, emit Emit)
}

// MapperFunc adapts a function to the Mapper interface.
type MapperFunc func(input string, id int, t relation.Tuple, emit Emit)

// Map implements Mapper.
func (f MapperFunc) Map(input string, id int, t relation.Tuple, emit Emit) { f(input, id, t, emit) }

// Reducer processes one key group. Reduce is called once per distinct
// key of a reduce partition, in ascending key order, with the key's
// messages in arrival order; Packed messages are transparently unpacked
// before Reduce is called. The same Reducer instance is used
// concurrently by multiple reduce tasks. Both key and msgs are owned by
// the engine: the msgs slice is reused across keys and the key bytes
// live in an engine arena, so implementations must not mutate the key
// or retain either slice after Reduce returns (copy the key if needed;
// individual messages are immutable after emission and may be
// retained). This contract is enforced by the keyretain analyzer —
// see docs/INVARIANTS.md for the catalog and fix recipes.
type Reducer interface {
	Reduce(key []byte, msgs []Message, out *Output)
}

// ReducerFunc adapts a function to the Reducer interface.
type ReducerFunc func(key []byte, msgs []Message, out *Output)

// Reduce implements Reducer.
func (f ReducerFunc) Reduce(key []byte, msgs []Message, out *Output) { f(key, msgs, out) }

// Output collects reducer output facts into named relations. One Output
// is private to each reduce task; task outputs are merged in task order
// after the job, keeping runs deterministic.
type Output struct {
	arities map[string]int
	rels    map[string]*relation.Relation
	order   []string
}

func newOutput(arities map[string]int) *Output {
	return &Output{arities: arities, rels: make(map[string]*relation.Relation)}
}

// Add appends a fact to the named output relation. The relation must be
// declared in the job's Outputs map.
func (o *Output) Add(name string, t relation.Tuple) {
	r, ok := o.rels[name]
	if !ok {
		arity, declared := o.arities[name]
		if !declared {
			panic(fmt.Sprintf("mr: output relation %q not declared by the job", name))
		}
		r = relation.New(name, arity)
		o.rels[name] = r
		o.order = append(o.order, name)
	}
	r.Add(t)
}

// Job describes one MapReduce job.
type Job struct {
	Name string
	// Inputs is the job's declared read set, one entry per input
	// relation. The declaration must be complete and exact: the engine
	// feeds the mapper only these relations, and the pipelined program
	// scheduler wires producer→consumer edges per input from it
	// (Program.ReadSets) — map tasks over input k start as soon as
	// relation Inputs[k] exists, possibly while the job's other inputs
	// are still being produced. A mapper or reducer must therefore
	// never consult relations outside the declared set (closures over
	// relation data captured at plan time would break the scheduling
	// contract).
	Inputs  []string
	Outputs map[string]int // declared output relations: name → arity

	Mapper  Mapper
	Reducer Reducer

	// Reducers fixes r; 0 derives it from sampled intermediate size per
	// §5.1 optimization (3).
	Reducers int

	// Packing enables the message-packing optimization (§5.1 opt (1)).
	Packing bool

	// ReducerInputMB overrides the per-reducer data allocation used when
	// deriving the reducer count (0 = engine config). Pig's input-based
	// allocation (1 GB of *map input* per reducer) is modelled by the
	// baselines with ReducersFromInput.
	ReducerInputMB float64

	// ReducersFromInput derives the reducer count from map input size
	// rather than intermediate size (Pig's allocation policy, §5.2).
	ReducersFromInput bool

	// InflateIntermediate multiplies modelled intermediate sizes
	// (serialization overhead of baseline systems; 1.0 = none, 0 = 1.0).
	InflateIntermediate float64

	// TimeFactor multiplies the derived task durations (execution-speed
	// handicap of baseline engines; 1.0 = none, 0 = 1.0). It does not
	// affect byte metrics.
	TimeFactor float64

	// ExtraOverheadSec adds per-job startup latency in full-scale
	// seconds (e.g. Hive query compilation); it is multiplied by the
	// cost configuration's Scale at simulation time.
	ExtraOverheadSec float64
}

// validate checks the job is runnable. The program scheduler validates
// every job before building the task graph, so failures are
// deterministic (lowest declared index) rather than schedule-dependent.
func (j *Job) validate() error {
	if j.Mapper == nil || j.Reducer == nil {
		return fmt.Errorf("mr: job %s lacks a mapper or reducer", j.Name)
	}
	return nil
}

// KeyBytes is the modelled size of a shuffle key. Keys are encoded
// tuples (relation.Tuple.Key), whose physical encoding is compact; the
// cost model charges the same 10 bytes/field the relations use, which we
// approximate by the actual encoded key length rounded up to at least
// 2 bytes.
func KeyBytes(key []byte) int64 {
	n := int64(len(key))
	if n < 2 {
		n = 2
	}
	return n
}
