package mr

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sync"
)

// Shuffle spill-to-disk: the out-of-core step of the ROADMAP, scoped to
// the shuffle stage. When a map task's shuffle partition crosses the
// run's spill threshold, shuffleTask serializes the partition's
// per-reducer runs into one temp file — reducer segments in reducer
// order — and drops the in-memory records; reduceTask streams each
// task's segment back in the same declared (part, task) order the
// in-memory path concatenates in, so the records a reducer sees — and
// therefore outputs and JobStats — are bit-for-bit identical to the
// in-memory run (pinned by the spill differential tests and the CI
// spill gate, which re-runs the whole mr suite with a tiny threshold).
//
// Spilling is opt-in per message type: the engine cannot serialize an
// arbitrary Message, so messages implement SpillMessage and register a
// decoder under their tag. A partition containing any non-spillable
// message simply stays in memory — correctness never depends on
// spilling. Spill files live in the run's spillSet and are removed the
// moment the reduce stage has consumed them (reducesDone); the run
// entry points defer spillSet.cleanup, so canceled, over-budget and
// panicked runs leave no temp files behind either.

// SpillMessage is a Message the engine can serialize into a shuffle
// spill file and decode back. Implementations append a self-delimiting
// encoding (the decoder returns the unconsumed rest) and register a
// SpillDecoder for their tag from an init function. Spill files never
// outlive the process, so the encoding only needs in-process fidelity
// (interned string handles, for example, round-trip as their int64
// values).
type SpillMessage interface {
	Message
	// SpillTag identifies the message's registered decoder. Tag 0 is
	// reserved for mr.Packed.
	SpillTag() byte
	// AppendSpill appends the message's encoding to dst and returns the
	// extended slice. The encoding must be self-delimiting.
	AppendSpill(dst []byte) []byte
}

// SpillDecoder decodes one message from the front of b, returning the
// message and the unconsumed rest.
type SpillDecoder func(b []byte) (Message, []byte, error)

// spillDecoders is the tag → decoder registry. Written only by
// RegisterSpillDecoder during package initialization, read by reduce
// tasks; init happens-before any run, so no locking is needed.
var spillDecoders [256]SpillDecoder

// RegisterSpillDecoder installs the decoder for a SpillMessage tag.
// Must be called from an init function (the registry is read without
// locks once runs start); registering a tag twice panics.
func RegisterSpillDecoder(tag byte, dec SpillDecoder) {
	if spillDecoders[tag] != nil {
		panic(fmt.Sprintf("mr: spill decoder tag %d registered twice", tag))
	}
	spillDecoders[tag] = dec
}

const spillTagPacked = 0

// SpillTag implements SpillMessage: Packed values travel under the
// reserved tag 0 as a counted run of tagged elements.
func (p Packed) SpillTag() byte { return spillTagPacked }

// AppendSpill implements SpillMessage.
func (p Packed) AppendSpill(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(p.Msgs)))
	for _, m := range p.Msgs {
		dst = appendSpillMessage(dst, m)
	}
	return dst
}

func init() {
	RegisterSpillDecoder(spillTagPacked, func(b []byte) (Message, []byte, error) {
		n, w := binary.Uvarint(b)
		if w <= 0 {
			return nil, nil, errSpillCorrupt
		}
		b = b[w:]
		msgs := make([]Message, 0, n)
		for i := uint64(0); i < n; i++ {
			m, rest, err := decodeSpillMessage(b)
			if err != nil {
				return nil, nil, err
			}
			msgs = append(msgs, m)
			b = rest
		}
		return Packed{Msgs: msgs}, b, nil
	})
}

var errSpillCorrupt = errors.New("mr: spill: corrupt record encoding")

// spillableLeaf reports whether one message can travel through a spill
// file: it implements SpillMessage and its tag has a decoder.
func spillableLeaf(m Message) bool {
	sm, ok := m.(SpillMessage)
	return ok && spillDecoders[sm.SpillTag()] != nil
}

// spillable reports whether m — including the elements of a Packed
// value — can spill.
func spillable(m Message) bool {
	if p, ok := m.(Packed); ok {
		for _, e := range p.Msgs {
			if !spillableLeaf(e) {
				return false
			}
		}
		return true
	}
	return spillableLeaf(m)
}

// partitionSpillable reports whether every message of a task partition
// can spill (engine-packed runs included).
func partitionSpillable(parts [][]record) bool {
	for _, recs := range parts {
		for i := range recs {
			r := &recs[i]
			if r.packed != nil {
				for _, m := range r.packed {
					if !spillable(m) {
						return false
					}
				}
			} else if !spillable(r.msg) {
				return false
			}
		}
	}
	return true
}

// Record wire form: uvarint key length, key bytes, varint modelled
// size, a form byte (0 = single message, 1 = engine-packed run), then
// the tagged message payload(s); packed runs carry a uvarint count.
const (
	spillFormSingle = 0
	spillFormPacked = 1
)

func appendSpillMessage(dst []byte, m Message) []byte {
	sm := m.(SpillMessage) // partitionSpillable vetted the whole partition
	dst = append(dst, sm.SpillTag())
	return sm.AppendSpill(dst)
}

func appendSpillRecord(dst []byte, r *record) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(r.key)))
	dst = append(dst, r.key...)
	dst = binary.AppendVarint(dst, r.size)
	if r.packed != nil {
		dst = append(dst, spillFormPacked)
		dst = binary.AppendUvarint(dst, uint64(len(r.packed)))
		for _, m := range r.packed {
			dst = appendSpillMessage(dst, m)
		}
		return dst
	}
	dst = append(dst, spillFormSingle)
	return appendSpillMessage(dst, r.msg)
}

func decodeSpillMessage(b []byte) (Message, []byte, error) {
	if len(b) == 0 {
		return nil, nil, errSpillCorrupt
	}
	dec := spillDecoders[b[0]]
	if dec == nil {
		return nil, nil, fmt.Errorf("mr: spill: no decoder for tag %d", b[0])
	}
	return dec(b[1:])
}

// decodeSpillRecord decodes one record from the front of b. The key
// aliases b (zero-copy, like arena-held keys): the read buffer stays
// alive exactly as long as records reference it.
func decodeSpillRecord(b []byte) (record, []byte, error) {
	kl, w := binary.Uvarint(b)
	if w <= 0 || uint64(len(b)-w) < kl {
		return record{}, nil, errSpillCorrupt
	}
	end := w + int(kl)
	key := b[w:end:end]
	b = b[end:]
	size, w := binary.Varint(b)
	if w <= 0 {
		return record{}, nil, errSpillCorrupt
	}
	b = b[w:]
	if len(b) == 0 {
		return record{}, nil, errSpillCorrupt
	}
	form := b[0]
	b = b[1:]
	switch form {
	case spillFormSingle:
		m, rest, err := decodeSpillMessage(b)
		if err != nil {
			return record{}, nil, err
		}
		return record{key: key, msg: m, size: size}, rest, nil
	case spillFormPacked:
		n, w := binary.Uvarint(b)
		if w <= 0 {
			return record{}, nil, errSpillCorrupt
		}
		b = b[w:]
		msgs := make([]Message, 0, n)
		for i := uint64(0); i < n; i++ {
			m, rest, err := decodeSpillMessage(b)
			if err != nil {
				return record{}, nil, err
			}
			msgs = append(msgs, m)
			b = rest
		}
		return record{key: key, packed: msgs, size: size}, b, nil
	default:
		return record{}, nil, errSpillCorrupt
	}
}

// spillSet owns one run's spill files. Files are registered at
// creation and deregistered when the reduce stage consumes them; the
// run entry points defer cleanup, which removes whatever is left — on
// the normal path nothing, on a canceled/over-budget/panicked run
// every file the aborted stages never consumed.
type spillSet struct {
	dir string // "" = os.TempDir

	mu    sync.Mutex
	files map[*os.File]struct{}
}

func newSpillSet(dir string) *spillSet {
	return &spillSet{dir: dir, files: make(map[*os.File]struct{})}
}

func (s *spillSet) create() (*os.File, error) {
	f, err := os.CreateTemp(s.dir, "gumbo-spill-*")
	if err != nil {
		return nil, fmt.Errorf("mr: spill: %w", err)
	}
	s.mu.Lock()
	s.files[f] = struct{}{}
	s.mu.Unlock()
	return f, nil
}

// drop closes and removes one spill file.
func (s *spillSet) drop(f *os.File) {
	s.mu.Lock()
	delete(s.files, f)
	s.mu.Unlock()
	name := f.Name()
	f.Close()
	os.Remove(name)
}

// cleanup removes every remaining file. Nil-safe and idempotent; runs
// after the pool is quiescent (runTasks joins its workers before
// returning), so no task can still be touching a file.
func (s *spillSet) cleanup() {
	if s == nil {
		return
	}
	s.mu.Lock()
	files := make([]*os.File, 0, len(s.files))
	for f := range s.files {
		files = append(files, f)
	}
	s.files = make(map[*os.File]struct{})
	s.mu.Unlock()
	for _, f := range files {
		name := f.Name()
		f.Close()
		os.Remove(name)
	}
}

// spillPartition is one spilled task partition: reducer segments laid
// out consecutively in one temp file.
type spillPartition struct {
	f    *os.File
	segs []spillSeg // per reducer
}

// spillSeg locates one reducer's records within the file.
type spillSeg struct {
	off, len int64
	count    int32
}

// writePartition serializes tp's per-reducer runs into a fresh spill
// file, reducer segments in reducer order, charging the encode scratch
// to the budget. The caller owns dropping tp.parts on success.
func (s *spillSet) writePartition(tp *taskPartition, b *Budget) (*spillPartition, error) {
	f, err := s.create()
	if err != nil {
		return nil, err
	}
	sp := &spillPartition{f: f, segs: make([]spillSeg, len(tp.parts))}
	var scratch []byte
	var off int64
	for p, recs := range tp.parts {
		grown := cap(scratch)
		scratch = scratch[:0]
		for i := range recs {
			scratch = appendSpillRecord(scratch, &recs[i])
		}
		// The scratch grows through append inside the encoders; charge
		// the growth once it is known (cumulative, so the total stays
		// schedule-independent).
		if cap(scratch) > grown {
			b.charge(int64(cap(scratch) - grown))
		}
		if _, err := f.Write(scratch); err != nil {
			s.drop(f)
			return nil, fmt.Errorf("mr: spill write: %w", err)
		}
		sp.segs[p] = spillSeg{off: off, len: int64(len(scratch)), count: int32(len(recs))}
		off += int64(len(scratch))
	}
	b.noteSpill(off)
	return sp, nil
}

// appendSegment reads reducer ri's segment back and decodes its
// records onto dst. The read buffer is charged to the budget; keys
// alias it. Concurrent reduce tasks may read different segments of one
// file (ReadAt is positional and thread-safe).
func (sp *spillPartition) appendSegment(dst []record, ri int, b *Budget) ([]record, error) {
	seg := sp.segs[ri]
	if seg.count == 0 {
		return dst, nil
	}
	buf := grabBytes(b, int(seg.len))
	if _, err := sp.f.ReadAt(buf, seg.off); err != nil {
		return dst, fmt.Errorf("mr: spill read: %w", err)
	}
	for i := 0; i < int(seg.count); i++ {
		r, rest, err := decodeSpillRecord(buf)
		if err != nil {
			return dst, err
		}
		dst = append(dst, r)
		buf = rest
	}
	if len(buf) != 0 {
		return dst, errSpillCorrupt
	}
	return dst, nil
}

// appendSegmentRange is appendSegment keeping only the records whose
// key falls in [lo, hi) — the spill path of a split sub-range reduce
// task (split.go). It also returns the modelled bytes of the kept
// records, the sub-task's share of the partition load. The whole
// segment is read and decoded per sub-task: redundant work, but
// deterministic and budget-charged per task, and bounded by the
// sub-range cap (splitMaxKeys) on how many sub-tasks one partition
// can become.
func (sp *spillPartition) appendSegmentRange(dst []record, ri int, lo, hi []byte, b *Budget) ([]record, int64, error) {
	seg := sp.segs[ri]
	if seg.count == 0 {
		return dst, 0, nil
	}
	buf := grabBytes(b, int(seg.len))
	if _, err := sp.f.ReadAt(buf, seg.off); err != nil {
		return dst, 0, fmt.Errorf("mr: spill read: %w", err)
	}
	var kept int64
	for i := 0; i < int(seg.count); i++ {
		r, rest, err := decodeSpillRecord(buf)
		if err != nil {
			return dst, kept, err
		}
		if keyInRange(r.key, lo, hi) {
			dst = append(dst, r)
			kept += r.size
		}
		buf = rest
	}
	if len(buf) != 0 {
		return dst, kept, errSpillCorrupt
	}
	return dst, kept, nil
}
