package mr

import "bytes"

// Adaptive skew handling: runtime splitting of heavy reduce partitions.
//
// After the shuffle stage the engine knows every reduce partition's
// modelled byte load (taskPartition.loads, summed in declared order).
// When Engine.SplitThreshold is active and a partition's load exceeds
// threshold × the mean partition load, the partition is split at key
// boundaries derived from the shuffle-time heavy-key sketch
// (sketch.go) into sub-partition reduce tasks that the work-stealing
// pool schedules independently — the hot partition's sort and the
// reduces of its non-dominant keys stop serializing the run.
//
// The bit-for-bit contract survives splitting because:
//
//   - boundaries partition the key space, so a key group (one
//     Reducer.Reduce call) can never straddle two sub-tasks;
//   - each sub-task scans the partition's record stream in the same
//     declared (part, task) order and keeps its [lo, hi) share, so the
//     concatenation of the sub-tasks' inputs in sub order is a
//     permutation-by-range of the unsplit sequence with arrival order
//     preserved inside every range;
//   - reducers emit keys in ascending order, so concatenating the
//     sub-outputs in ascending sub-range order (the ordered
//     sub-partition fold: reduce slots are laid out reducer-major,
//     sub-range-minor, and the merge stage walks them in slot order)
//     reproduces the exact serial Add sequence of the unsplit reducer;
//   - per-reducer loads are folded as int64 sums over slots in slot
//     order, bit-identical to the unsplit accumulation.
//
// The split plan itself is deterministic: it is computed once at
// shufflesDone from loads and sketches merged in declared order, so
// the same job over the same data splits identically at every pool
// width. The only JobStats fields that differ from an unsplit run are
// the split observability fields (SplitReduceTasks, MaxReduceTaskMB);
// JobStats.StripSplitInfo normalizes them for differential comparison.

// reduceSlot is one scheduled reduce task: a whole reduce partition
// (lo and hi nil, split false), or one key sub-range [lo, hi) of a
// split partition. Slots are ordered reducer-major, sub-range-minor —
// the order the output merge folds them in.
type reduceSlot struct {
	ri     int
	lo, hi []byte // key range [lo, hi); nil bound = unbounded
	split  bool
}

// singleKey reports whether the slot's range can contain at most one
// distinct key: hi is lo's immediate successor lo·0x00 — the range a
// fully-stored sketch key contributes — so every key in [lo, hi) is
// exactly lo. Such a slot's records are already one group in arrival
// order, and its reduce task skips the key sort: the serial work the
// dominant key would otherwise pay, on top of the scheduling benefit.
func (s reduceSlot) singleKey() bool {
	return s.split && s.lo != nil && len(s.hi) == len(s.lo)+1 &&
		s.hi[len(s.lo)] == 0 && bytes.HasPrefix(s.hi, s.lo)
}

// identityIndex is the sorted index of records already known to share
// one key (forEachGroupIdx then walks them as a single run in arrival
// order, exactly what sorting equal keys would produce).
func identityIndex(n int) []int32 {
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	return idx
}

// keyInRange reports whether key falls in [lo, hi); nil bounds are
// unbounded.
func keyInRange(key, lo, hi []byte) bool {
	if lo != nil && bytes.Compare(key, lo) < 0 {
		return false
	}
	if hi != nil && bytes.Compare(key, hi) >= 0 {
		return false
	}
	return true
}

// unsplitSlots is the slot layout with runtime splitting off: one
// full-range slot per reducer.
func unsplitSlots(r int) []reduceSlot {
	slots := make([]reduceSlot, r)
	for i := range slots {
		slots[i].ri = i
	}
	return slots
}

// planReduceSlots decides, once per job at shufflesDone, which reduce
// partitions split and at which boundaries. Every input — per-reducer
// loads and the merged sketch — is folded in declared (part, task)
// order, so the plan is a function of the job and the data alone.
func (jr *jobRun) planReduceSlots() []reduceSlot {
	r := jr.reducers
	if jr.gov.split <= 0 || r == 0 {
		return unsplitSlots(r)
	}
	loads := make([]int64, r)
	var total int64
	for part := range jr.taskParts {
		for ti := range jr.taskParts[part] {
			for ri, l := range jr.taskParts[part][ti].loads {
				loads[ri] += l
				total += l
			}
		}
	}
	if total == 0 {
		return unsplitSlots(r)
	}
	merged := newKeySketch(jr.gov.budget)
	for part := range jr.taskParts {
		for ti := range jr.taskParts[part] {
			if sk := jr.taskParts[part][ti].sketch; sk != nil {
				merged.absorb(sk)
			}
		}
	}
	mean := float64(total) / float64(r)
	slots := make([]reduceSlot, 0, r)
	for ri := 0; ri < r; ri++ {
		if float64(loads[ri]) <= jr.gov.split*mean {
			slots = append(slots, reduceSlot{ri: ri})
			continue
		}
		bounds := merged.splitBoundaries(int32(ri), jr.gov.budget)
		if len(bounds) == 0 {
			// The sketch saw no key of this reducer (possible when other
			// tasks' keys crowded it out): nothing to cut at.
			slots = append(slots, reduceSlot{ri: ri})
			continue
		}
		var lo []byte
		for _, b := range bounds {
			slots = append(slots, reduceSlot{ri: ri, lo: lo, hi: b, split: true})
			lo = b
		}
		slots = append(slots, reduceSlot{ri: ri, lo: lo, split: true})
	}
	return slots
}
