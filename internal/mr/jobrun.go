package mr

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/relation"
)

// jobRun is one job execution decomposed into the task units the
// unified pool schedules:
//
//	input ready ──▶ map tasks (one per split of that input)
//	all maps    ──▶ reducer count, then shuffle partition tasks
//	              (one per map task: counted two-pass placement)
//	all shuffles ─▶ reduce partition tasks (one per reducer:
//	              concatenate in task order, radix sort, walk key
//	              runs, Reducer.Reduce)
//	all reduces ──▶ output merge shards (one per declared output
//	              relation, relation.Merge inside)
//	all merges  ──▶ final stats fold, done callback
//
// Each input's map tasks are spawned independently the moment that
// input relation exists (inputReady), which is what lets the program
// scheduler start a downstream job's map work over base relations — or
// over an upstream output that merged early — while other producers are
// still running. Stage joins are plain counters under jr.mu; every task
// writes into a pre-indexed slot and all order-sensitive folds (float
// accumulation of per-part MB, OutputMB) walk those slots in declared
// part/task/name order, so outputs and stats are bit-for-bit identical
// to the barriered per-phase engine at every pool width (pinned by the
// golden and determinism tests).
type jobRun struct {
	e       *Engine
	job     *Job
	inflate float64
	// gov is the run's resource governance: budget charges at the arena
	// / shuffle-partition / merge-shard sites, and the shuffle spill
	// configuration (shared across all jobs of a program run).
	gov govern

	// progress, when set, mirrors the stage counters into the run's
	// live Progress observer (nil methods are no-ops, so the unobserved
	// path pays one nil check per stage event).
	progress *Progress

	// onOutput, when set, is invoked once per merged output relation,
	// from the merge task itself — the program scheduler's publish hook
	// (it releases dependent jobs' map tasks). done fires once when the
	// job's stats are final.
	onOutput func(c *poolCtx, name string, rel *relation.Relation)
	done     func(c *poolCtx, jr *jobRun)

	// Stage join state, guarded by mu. inputsLeft counts inputs whose
	// relation has not arrived yet; the remaining counters count
	// spawned-but-unfinished tasks of the current stage.
	mu         sync.Mutex
	inputsLeft int
	mapsLeft   int
	shufsLeft  int
	redsLeft   int
	mergesLeft int

	tasks   [][]mapTaskSpec   // per input part: that input's splits
	results [][]mapTaskResult // per input part, per map task
	// est[part] is the running map-output estimate (records per 1024
	// input tuples) published by finished tasks of the part and used to
	// pre-size later tasks' record buffers. Gumbo's mappers are near
	// uniform per input (the property Engine.Sample relies on), so the
	// estimate converges after the part's first task; it only sets
	// capacity — results never depend on it.
	est []atomic.Int64

	reducers  int
	taskParts [][]taskPartition // per input part, per map task
	// slots is the reduce-stage task layout, reducer-major and
	// sub-range-minor: one full-range slot per reducer normally; a heavy
	// partition under runtime splitting contributes one slot per key
	// sub-range (split.go). outs and slotLoads are indexed by slot, and
	// every order-sensitive fold over them walks slot order — the
	// ordered sub-partition fold that keeps split runs bit-for-bit
	// identical to unsplit ones.
	slots     []reduceSlot
	slotLoads []int64   // per slot: modelled bytes the task consumed
	outs      []*Output // per reduce slot
	outNames  []string  // declared outputs, sorted
	outMB     []float64 // per output, folded in name order
	merged    []*relation.Relation

	stats JobStats
	// timing accumulates measured per-task wall-clock by kind, under mu
	// (each task adds its duration in the same critical section that
	// decrements its stage counter). Unlike stats it is a host
	// measurement, excluded from the bit-for-bit determinism contract.
	timing JobTiming
}

// mapTaskSpec is one map task: a contiguous tuple range of one input.
type mapTaskSpec struct {
	rel      *relation.Relation
	from, to int
}

// taskPartition is one map task's output partitioned by reducer. A
// spilled partition has parts == nil and its records in spill; loads
// are computed before the spill decision and kept either way. sketch
// is the task's heavy-key sketch, collected only when runtime skew
// splitting is enabled (split.go).
type taskPartition struct {
	parts  [][]record
	loads  []int64
	spill  *spillPartition
	sketch *keySketch
}

// newJobRun prepares the task-graph state for one job. The job must
// already have passed (*Job).validate.
func (e *Engine) newJobRun(job *Job, gov govern,
	onOutput func(c *poolCtx, name string, rel *relation.Relation),
	done func(c *poolCtx, jr *jobRun)) *jobRun {
	inflate := job.InflateIntermediate
	if inflate <= 0 {
		inflate = 1.0
	}
	return &jobRun{
		e:          e,
		job:        job,
		inflate:    inflate,
		gov:        gov,
		onOutput:   onOutput,
		done:       done,
		inputsLeft: len(job.Inputs),
		tasks:      make([][]mapTaskSpec, len(job.Inputs)),
		results:    make([][]mapTaskResult, len(job.Inputs)),
		est:        make([]atomic.Int64, len(job.Inputs)),
		stats:      JobStats{Name: job.Name, Parts: make([]PartStats, len(job.Inputs))},
		timing:     JobTiming{Name: job.Name},
	}
}

// seed starts a job that has no inputs (its map phase is empty, so no
// inputReady call will ever fire). Jobs with inputs are driven entirely
// by inputReady.
func (jr *jobRun) seed(c *poolCtx) {
	if len(jr.job.Inputs) == 0 {
		jr.mapsDone(c)
	}
}

// inputReady is called exactly once per input part, as soon as that
// relation exists: immediately for base relations, from the producer's
// merge task for produced ones. It computes the input's splits (the
// same size-based policy as the barriered engine: Cost.Mappers of the
// input MB, clamped to the tuple count, one task for empty inputs) and
// spawns the map tasks.
func (jr *jobRun) inputReady(c *poolCtx, part int, rel *relation.Relation) {
	inputMB := mbOf(rel.Bytes())
	m := jr.e.Cost.Mappers(inputMB)
	if m > rel.Size() && rel.Size() > 0 {
		m = rel.Size()
	}
	if rel.Size() == 0 {
		m = 1
	}
	n := rel.Size()
	specs := make([]mapTaskSpec, m)
	for t := 0; t < m; t++ {
		specs[t] = mapTaskSpec{rel: rel, from: n * t / m, to: n * (t + 1) / m}
	}
	jr.mu.Lock()
	jr.stats.Parts[part] = PartStats{Input: jr.job.Inputs[part], InputMB: inputMB, Mappers: m}
	jr.tasks[part] = specs
	jr.results[part] = make([]mapTaskResult, m)
	jr.inputsLeft--
	jr.mapsLeft += m
	jr.mu.Unlock()
	jr.progress.addMapTotal(m)
	for ti := range specs {
		ti := ti
		c.spawn(func(c *poolCtx) { jr.mapTask(c, part, ti) })
	}
}

// mapTask runs the mapper over one split, with the allocation-lean emit
// path (arena-held keys, sizes computed once) and optional packing.
func (jr *jobRun) mapTask(c *poolCtx, part, ti int) {
	start := time.Now()
	job := jr.job
	input := job.Inputs[part]
	ts := jr.tasks[part][ti]
	n := ts.to - ts.from
	capHint := n
	if est := jr.est[part].Load(); est > 0 {
		capHint = int(est*int64(n)/1024) + 8
	}
	recs := make([]record, 0, capHint)
	arena := keyArena{budget: jr.gov.budget}
	emit := emitInto(&arena, &recs)
	for i := ts.from; i < ts.to; i++ {
		job.Mapper.Map(input, i, ts.rel.Tuple(i), emit)
	}
	if n > 0 {
		jr.est[part].Store(int64(len(recs)) * 1024 / int64(n))
	}
	if job.Packing {
		recs = packRecords(recs)
	}
	var bytes int64
	for _, r := range recs {
		bytes += r.size
	}
	jr.results[part][ti] = mapTaskResult{records: recs, bytes: bytes}
	jr.mu.Lock()
	jr.timing.MapSeconds += time.Since(start).Seconds()
	jr.mapsLeft--
	last := jr.mapsLeft == 0 && jr.inputsLeft == 0
	jr.mu.Unlock()
	jr.progress.mapTaskDone()
	if last {
		jr.mapsDone(c)
	}
}

// mapsDone (run by the last finishing map task) folds the per-task
// measurements in declared part/task order — float accumulation order
// is part of the bit-for-bit contract — derives the reducer count, and
// spawns one shuffle partition task per map task.
func (jr *jobRun) mapsDone(c *poolCtx) {
	total := 0
	for part := range jr.tasks {
		p := &jr.stats.Parts[part]
		for ti := range jr.tasks[part] {
			res := &jr.results[part][ti]
			p.InterMB += mbOf(res.bytes) * jr.inflate
			p.Records += int64(len(res.records))
			total++
		}
	}
	jr.stats.MapTasks = total
	jr.reducers = jr.computeReducers()
	jr.stats.Reducers = jr.reducers
	jr.stats.ReduceTasks = jr.reducers

	jr.taskParts = make([][]taskPartition, len(jr.tasks))
	for part := range jr.tasks {
		jr.taskParts[part] = make([]taskPartition, len(jr.tasks[part]))
	}
	jr.mu.Lock()
	jr.shufsLeft = total
	jr.mu.Unlock()
	jr.progress.addShuffleTotal(total)
	if total == 0 {
		jr.shufflesDone(c)
		return
	}
	for part := range jr.tasks {
		for ti := range jr.tasks[part] {
			part, ti := part, ti
			c.spawn(func(c *poolCtx) { jr.shuffleTask(c, part, ti) })
		}
	}
}

// computeReducers derives r per §5.1 optimization (3) (or honors the
// job's fixed count / Pig-style input-based allocation).
func (jr *jobRun) computeReducers() int {
	job, e := jr.job, jr.e
	reducers := job.Reducers
	if reducers <= 0 {
		perReducer := e.Cost.ReducerDataMB
		if job.ReducerInputMB > 0 {
			// ReducerInputMB is expressed at full scale (Pig's 1 GB of
			// map input per reducer); convert to the running scale.
			scale := e.Cost.Scale
			if scale <= 0 {
				scale = 1
			}
			perReducer = job.ReducerInputMB * scale
		}
		basis := jr.stats.InterMB()
		if job.ReducersFromInput {
			basis = jr.stats.InputMB()
		}
		if perReducer <= 0 {
			reducers = 1
		} else {
			tmp := e.Cost
			tmp.ReducerDataMB = perReducer
			reducers = tmp.Reducers(basis)
		}
	}
	if reducers < 1 {
		reducers = 1
	}
	return reducers
}

// shuffleTask partitions one map task's records by key hash with the
// counted two-pass placement: count each reducer's records, carve
// per-reducer sub-slices out of one backing array, then place — three
// allocations per task regardless of the reducer count. The
// partition's modelled bytes are charged to the run's budget (the
// shuffle-partition accounting site); a partition at or past the spill
// threshold is then serialized to a temp file and its in-memory
// records dropped, provided every message is spillable (see spill.go).
func (jr *jobRun) shuffleTask(c *poolCtx, part, ti int) {
	start := time.Now()
	recs := jr.results[part][ti].records
	taskBytes := jr.results[part][ti].bytes
	jr.gov.budget.charge(taskBytes)
	reducers := jr.reducers
	tp := taskPartition{
		parts: make([][]record, reducers),
		loads: make([]int64, reducers),
	}
	if len(recs) > 0 {
		var sk *keySketch
		if jr.gov.split > 0 {
			sk = newKeySketch(jr.gov.budget)
		}
		tc := make([]int32, len(recs)+reducers) // targets and counts, one allocation
		target, counts := tc[:len(recs)], tc[len(recs):]
		for i, r := range recs {
			p := int32(hashKey(r.key) % uint32(reducers))
			target[i] = p
			counts[p]++
			tp.loads[p] += r.size
			if sk != nil && i%sketchSampleEvery == 0 {
				sk.observe(r.key, p, r.size*sketchSampleEvery)
			}
		}
		tp.sketch = sk
		buf := make([]record, len(recs))
		off := 0
		for p := 0; p < reducers; p++ {
			cnt := int(counts[p])
			tp.parts[p] = buf[off : off : off+cnt]
			off += cnt
		}
		for i, r := range recs {
			p := target[i]
			tp.parts[p] = append(tp.parts[p], r)
		}
	}
	if jr.gov.spill != nil && taskBytes >= jr.gov.threshold && len(recs) > 0 && partitionSpillable(tp.parts) {
		sp, err := jr.gov.spill.writePartition(&tp, jr.gov.budget)
		if err != nil {
			panic(taskAbort{err: err})
		}
		tp.parts = nil // the spill file owns the records now
		tp.spill = sp
	}
	jr.taskParts[part][ti] = tp
	jr.results[part][ti].records = nil // the partitioned copies own the records now
	jr.mu.Lock()
	jr.timing.ShuffleSeconds += time.Since(start).Seconds()
	jr.shufsLeft--
	last := jr.shufsLeft == 0
	jr.mu.Unlock()
	jr.progress.shuffleTaskDone()
	if last {
		jr.shufflesDone(c)
	}
}

// shufflesDone plans the reduce slot layout — one full-range task per
// reducer, plus sub-range tasks for partitions the skew splitter cut
// (split.go) — and spawns one reduce task per slot.
func (jr *jobRun) shufflesDone(c *poolCtx) {
	// The map results are fully consumed (each task's records were
	// nil'ed as its shuffle partition copied them); drop the scaffolding
	// so a finished stage doesn't hold memory for the program's whole
	// duration — the per-job engine freed it when RunJob returned.
	jr.results = nil
	r := jr.reducers
	jr.stats.ReduceLoadMB = make([]float64, r)
	slots := jr.planReduceSlots()
	jr.slots = slots
	jr.slotLoads = make([]int64, len(slots))
	for _, s := range slots {
		if s.split {
			jr.stats.SplitReduceTasks++
		}
	}
	jr.outs = make([]*Output, len(slots))
	jr.mu.Lock()
	jr.redsLeft = len(slots)
	jr.mu.Unlock()
	jr.progress.addReduceTotal(len(slots))
	for si := range slots {
		si := si
		c.spawn(func(c *poolCtx) { jr.reduceTask(c, si) })
	}
}

// reduceTask concatenates its slot's share of every map task's
// partition in declared part/task order (so the records it sees — and
// the measured load — are identical to a serial pass over the tasks),
// sorts the records by key and walks key runs through the user
// Reducer. A full-range slot takes the whole partition; a split slot
// keeps only the records whose key falls in its [lo, hi) sub-range —
// the same declared-order scan, filtered, so concatenating the
// sub-slots' inputs in slot order reproduces the unsplit sequence.
// When the pool has parked workers (fewer runnable tasks than width),
// they parallelize the key sort's top radix level — sized from actual
// pool idleness, so overlapping jobs' reduce tasks don't each assume
// they own the machine; the sorted order is identical either way.
func (jr *jobRun) reduceTask(c *poolCtx, si int) {
	start := time.Now()
	slot := jr.slots[si]
	ri := slot.ri
	n := 0
	for part := range jr.taskParts {
		for ti := range jr.taskParts[part] {
			tp := &jr.taskParts[part][ti]
			switch {
			case tp.spill != nil:
				// Upper bound: spilled segments are range-filtered only
				// while decoding.
				n += int(tp.spill.segs[ri].count)
			case slot.split:
				// Exact count, so each sub-range task allocates its own
				// share rather than the whole partition's.
				for _, r := range tp.parts[ri] {
					if keyInRange(r.key, slot.lo, slot.hi) {
						n++
					}
				}
			default:
				n += len(tp.parts[ri])
			}
		}
	}
	partRecs := make([]record, 0, n)
	var load int64
	for part := range jr.taskParts {
		for ti := range jr.taskParts[part] {
			tp := &jr.taskParts[part][ti]
			switch {
			case tp.spill != nil && !slot.split:
				// Stream the spilled segment back in the same declared
				// (part, task) slot the in-memory path concatenates in:
				// the reducer sees an identical record sequence.
				var err error
				partRecs, err = tp.spill.appendSegment(partRecs, ri, jr.gov.budget)
				if err != nil {
					panic(taskAbort{err: err})
				}
				load += tp.loads[ri]
			case tp.spill != nil:
				var kept int64
				var err error
				partRecs, kept, err = tp.spill.appendSegmentRange(partRecs, ri, slot.lo, slot.hi, jr.gov.budget)
				if err != nil {
					panic(taskAbort{err: err})
				}
				load += kept
			case !slot.split:
				partRecs = append(partRecs, tp.parts[ri]...)
				load += tp.loads[ri]
			default:
				for _, r := range tp.parts[ri] {
					if keyInRange(r.key, slot.lo, slot.hi) {
						partRecs = append(partRecs, r)
						load += r.size
					}
				}
			}
		}
	}
	jr.slotLoads[si] = load
	out := newOutput(jr.job.Outputs)
	jr.outs[si] = out
	var idx []int32
	if slot.singleKey() {
		// The sub-range holds one key by construction: the records are
		// already a single group in arrival order, no sort needed.
		idx = identityIndex(len(partRecs))
	} else {
		idx = sortIndexByKey(partRecs, c.spare())
	}
	forEachGroupIdx(partRecs, idx, func(key []byte, msgs []Message) {
		jr.job.Reducer.Reduce(key, msgs, out)
	})
	dur := time.Since(start).Seconds()
	jr.mu.Lock()
	jr.timing.ReduceSeconds += dur
	if slot.split {
		jr.timing.SplitSeconds += dur
	}
	jr.redsLeft--
	last := jr.redsLeft == 0
	jr.mu.Unlock()
	jr.progress.reduceTaskDone()
	if last {
		jr.reducesDone(c)
	}
}

// reducesDone folds the per-slot loads into the per-reducer stats —
// int64 sums over slots in slot order, so a split partition's
// ReduceLoadMB is bit-identical to the unsplit accumulation — then
// spawns one output merge shard per declared output relation (sorted
// name order).
func (jr *jobRun) reducesDone(c *poolCtx) {
	loads := make([]int64, jr.reducers)
	var maxTask int64
	for si := range jr.slots {
		loads[jr.slots[si].ri] += jr.slotLoads[si]
		if jr.slotLoads[si] > maxTask {
			maxTask = jr.slotLoads[si]
		}
	}
	for ri, l := range loads {
		jr.stats.ReduceLoadMB[ri] = mbOf(l) * jr.inflate
	}
	jr.stats.MaxReduceTaskMB = mbOf(maxTask) * jr.inflate
	// Every reduce task has concatenated its share; release the whole
	// job's shuffle records now rather than when the program finishes
	// (the jobRun stays reachable through the scheduler's closures),
	// and retire the job's consumed spill files (aborted runs instead
	// sweep them in the entry points' deferred spillSet.cleanup).
	for part := range jr.taskParts {
		for ti := range jr.taskParts[part] {
			if sp := jr.taskParts[part][ti].spill; sp != nil {
				jr.gov.spill.drop(sp.f)
			}
		}
	}
	jr.taskParts = nil
	jr.outNames = outputOrder(jr.job.Outputs)
	jr.merged = make([]*relation.Relation, len(jr.outNames))
	jr.outMB = make([]float64, len(jr.outNames))
	jr.mu.Lock()
	jr.mergesLeft = len(jr.outNames)
	jr.mu.Unlock()
	jr.progress.addMergeTotal(len(jr.outNames))
	if len(jr.outNames) == 0 {
		jr.finishJob(c)
		return
	}
	for ni := range jr.outNames {
		ni := ni
		c.spawn(func(c *poolCtx) { jr.mergeTask(c, ni) })
	}
}

// mergeTask unions one output relation's reduce-task pieces in reduce
// slot order (reducer-major, ascending sub-range under splitting — the
// ordered sub-partition fold) with first-occurrence dedup
// (relation.Merge — bit-for-bit the order a serial Relation.Add loop
// over the unsplit reducers would produce) and publishes the
// merged relation through onOutput, releasing any map tasks of
// downstream jobs waiting on this relation.
func (jr *jobRun) mergeTask(c *poolCtx, ni int) {
	start := time.Now()
	name := jr.outNames[ni]
	srcs := make([]*relation.Relation, 0, len(jr.outs))
	for _, o := range jr.outs {
		if r := o.rels[name]; r != nil {
			srcs = append(srcs, r)
		}
	}
	// Shard the merge across the pool's parked workers only: under the
	// pipelined scheduler several jobs' merge tasks can run at once,
	// and each sizing itself at full pool width would oversubscribe the
	// host. Merge results are identical at every width.
	merged := relation.Merge(name, jr.job.Outputs[name], srcs, c.spare())
	// The merge-shard accounting site: the merged relation is charged
	// before it is published to downstream consumers.
	jr.gov.budget.charge(merged.Bytes())
	jr.merged[ni] = merged
	jr.outMB[ni] = mbOf(merged.Bytes())
	if jr.onOutput != nil {
		jr.onOutput(c, name, merged)
	}
	jr.mu.Lock()
	jr.timing.MergeSeconds += time.Since(start).Seconds()
	jr.mergesLeft--
	last := jr.mergesLeft == 0
	jr.mu.Unlock()
	jr.progress.mergeShardDone()
	if last {
		jr.finishJob(c)
	}
}

// finishJob folds the per-output sizes in sorted name order (the same
// accumulation order as the barriered epilogue) and reports completion.
func (jr *jobRun) finishJob(c *poolCtx) {
	// Merge shards have consumed the per-reducer outputs; keep only the
	// merged relations (which may alias their storage, exactly as the
	// per-job engine's results did).
	jr.outs = nil
	for _, mb := range jr.outMB {
		jr.stats.OutputMB += mb
	}
	jr.progress.jobDone()
	if jr.done != nil {
		jr.done(c, jr)
	}
}

// outputDB assembles the job's output database: merged relations in
// sorted output-name order.
func (jr *jobRun) outputDB() *relation.Database {
	db := relation.NewDatabase()
	for _, rel := range jr.merged {
		db.Put(rel)
	}
	return db
}
