package mr

import (
	"fmt"

	"repro/internal/relation"
)

// Program is a directed acyclic graph of MR jobs (§3.2): jobs are listed
// in execution order and an edge j → k exists when job k reads a relation
// that job j outputs. The number of rounds of the program is the length
// of the longest path.
type Program struct {
	Jobs []*Job
}

// Deps derives, for each job, the indices of the jobs it depends on: the
// latest earlier job writing each of its inputs.
func (p *Program) Deps() [][]int {
	producer := make(map[string]int) // relation name -> job index of latest producer
	deps := make([][]int, len(p.Jobs))
	for i, j := range p.Jobs {
		seen := make(map[int]bool)
		for _, in := range j.Inputs {
			if pi, ok := producer[in]; ok && !seen[pi] {
				seen[pi] = true
				deps[i] = append(deps[i], pi)
			}
		}
		for out := range j.Outputs {
			producer[out] = i
		}
	}
	return deps
}

// Rounds returns the length of the longest dependency chain (the number
// of rounds of the MR program).
func (p *Program) Rounds() int {
	deps := p.Deps()
	depth := make([]int, len(p.Jobs))
	max := 0
	for i := range p.Jobs {
		d := 1
		for _, pi := range deps[i] {
			if depth[pi]+1 > d {
				d = depth[pi] + 1
			}
		}
		depth[i] = d
		if d > max {
			max = d
		}
	}
	return max
}

// Validate checks that each job's inputs are satisfied by the base
// database names or earlier jobs, and that no job overwrites a base
// relation or an earlier job's output.
func (p *Program) Validate(base []string) error {
	avail := make(map[string]bool)
	for _, n := range base {
		avail[n] = true
	}
	for i, j := range p.Jobs {
		for _, in := range j.Inputs {
			if !avail[in] {
				return fmt.Errorf("mr: job %d (%s) reads %q, which no base relation or earlier job provides", i, j.Name, in)
			}
		}
		for out := range j.Outputs {
			if avail[out] {
				return fmt.Errorf("mr: job %d (%s) overwrites relation %q", i, j.Name, out)
			}
		}
		for out := range j.Outputs {
			avail[out] = true
		}
	}
	return nil
}

// RunProgram executes the program's jobs, feeding outputs forward, and
// returns the database of all job outputs together with per-job stats in
// declared job order. The input database is not modified.
//
// Jobs whose dependencies (per Deps) are satisfied run concurrently on
// up to Engine.JobParallelism goroutines; because each relation has a
// unique producer (Validate forbids overwrites), every job sees exactly
// the inputs it would see under sequential execution, so outputs and
// stats are identical at every parallelism level.
func (e *Engine) RunProgram(p *Program, db *relation.Database) (*relation.Database, []JobStats, error) {
	if err := p.Validate(db.Names()); err != nil {
		return nil, nil, err
	}
	working := relation.NewDatabase()
	for _, r := range db.Relations() {
		working.Put(r)
	}
	workers := e.jobWorkers()
	if workers > len(p.Jobs) {
		workers = len(p.Jobs)
	}
	var (
		results []progResult
		err     error
	)
	if workers <= 1 {
		results, err = e.runSequential(p, working)
	} else {
		results, err = e.runDAG(p, working, workers)
	}
	// Fold completed jobs in declared order so the outputs database and
	// the stats slice are independent of the schedule.
	outputs := relation.NewDatabase()
	stats := make([]JobStats, 0, len(p.Jobs))
	for _, res := range results {
		if !res.done {
			continue
		}
		for _, r := range res.outs.Relations() {
			outputs.Put(r)
		}
		stats = append(stats, res.stats)
	}
	if err != nil {
		return nil, stats, err
	}
	return outputs, stats, nil
}
