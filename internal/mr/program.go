package mr

import (
	"context"
	"fmt"

	"repro/internal/relation"
)

// Program is a directed acyclic graph of MR jobs (§3.2): jobs are listed
// in execution order and an edge j → k exists when job k reads a relation
// that job j outputs. The number of rounds of the program is the length
// of the longest path.
type Program struct {
	Jobs []*Job
}

// ReadSets derives the relation-granular dependency structure of the
// program from the jobs' declared per-input read sets (Job.Inputs): for
// each job, one entry per input — in Inputs order — holding the index
// of the earlier job producing that relation, or -1 for a base
// relation. Each relation has at most one producer (Validate forbids
// overwrites), so these entries are exactly the producer→consumer edges
// the pipelined scheduler wires: input k of job i becomes runnable when
// job ReadSets()[i][k]'s merge shard for that relation completes, or
// immediately when the entry is -1.
func (p *Program) ReadSets() [][]int {
	producer := make(map[string]int) // relation name -> job index of latest producer
	sets := make([][]int, len(p.Jobs))
	for i, j := range p.Jobs {
		set := make([]int, len(j.Inputs))
		for k, in := range j.Inputs {
			if pi, ok := producer[in]; ok {
				set[k] = pi
			} else {
				set[k] = -1
			}
		}
		sets[i] = set
		for out := range j.Outputs {
			producer[out] = i
		}
	}
	return sets
}

// Deps derives, for each job, the indices of the jobs it depends on: the
// job-granular projection of ReadSets (first occurrence order, deduped).
func (p *Program) Deps() [][]int {
	deps := make([][]int, len(p.Jobs))
	for i, set := range p.ReadSets() {
		seen := make(map[int]bool)
		for _, pi := range set {
			if pi >= 0 && !seen[pi] {
				seen[pi] = true
				deps[i] = append(deps[i], pi)
			}
		}
	}
	return deps
}

// Rounds returns the length of the longest dependency chain (the number
// of rounds of the MR program).
func (p *Program) Rounds() int {
	deps := p.Deps()
	depth := make([]int, len(p.Jobs))
	max := 0
	for i := range p.Jobs {
		d := 1
		for _, pi := range deps[i] {
			if depth[pi]+1 > d {
				d = depth[pi] + 1
			}
		}
		depth[i] = d
		if d > max {
			max = d
		}
	}
	return max
}

// Validate checks that each job's inputs are satisfied by the base
// database names or earlier jobs, and that no job overwrites a base
// relation or an earlier job's output.
func (p *Program) Validate(base []string) error {
	avail := make(map[string]bool)
	for _, n := range base {
		avail[n] = true
	}
	for i, j := range p.Jobs {
		for _, in := range j.Inputs {
			if !avail[in] {
				return fmt.Errorf("mr: job %d (%s) reads %q, which no base relation or earlier job provides", i, j.Name, in)
			}
		}
		for out := range j.Outputs {
			if avail[out] {
				return fmt.Errorf("mr: job %d (%s) overwrites relation %q", i, j.Name, out)
			}
		}
		for out := range j.Outputs {
			avail[out] = true
		}
	}
	return nil
}

// RunProgram executes the program as one unified task graph, feeding
// outputs forward, and returns the database of all job outputs together
// with per-job stats in declared job order. The input database is not
// modified.
//
// Scheduling is partition-granular on a single pool of
// Engine.Parallelism workers (see runPipelined): a job's map tasks over
// an input start as soon as that relation exists, so phases of
// dependent jobs overlap instead of meeting at per-job barriers.
// Because each relation has a unique producer (Validate forbids
// overwrites) and a consumer part waits for exactly that producer's
// merge, every job sees the inputs it would see under sequential
// execution — outputs and stats are bit-for-bit identical at every
// parallelism level.
//
// Failure semantics are deterministic: the only execution-time job
// failures are per-job validation failures (Validate above excludes
// unknown inputs), so jobs are validated up front. When the
// lowest-indexed broken job is f, jobs 0..f-1 run to completion and
// report stats, jobs from f on are not started, and the returned error
// names job f.
func (e *Engine) RunProgram(p *Program, db *relation.Database) (*relation.Database, []JobStats, error) {
	outputs, stats, _, err := e.RunProgramTimed(p, db)
	return outputs, stats, err
}

// RunProgramCtx is RunProgram honoring ctx: the run stops at the next
// task boundary after ctx is canceled, completed jobs report stats,
// and the returned error wraps ctx.Err(). See RunProgramObserved for
// the full cancellation contract.
func (e *Engine) RunProgramCtx(ctx context.Context, p *Program, db *relation.Database) (*relation.Database, []JobStats, error) {
	outputs, stats, _, err := e.RunProgramObserved(ctx, p, db, nil)
	return outputs, stats, err
}
