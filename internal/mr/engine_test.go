package mr

import (
	"strings"
	"testing"

	"repro/internal/cost"
	"repro/internal/relation"
)

// intMsg is a trivial message for tests.
type intMsg int64

func (m intMsg) SizeBytes() int64 { return 8 }

func tup(vals ...int64) relation.Tuple {
	t := make(relation.Tuple, len(vals))
	for i, v := range vals {
		t[i] = relation.Value(v)
	}
	return t
}

func testDB() *relation.Database {
	db := relation.NewDatabase()
	db.Put(relation.FromTuples("R", 2, []relation.Tuple{
		tup(1, 10), tup(2, 20), tup(3, 10), tup(4, 30),
	}))
	db.Put(relation.FromTuples("S", 1, []relation.Tuple{
		tup(10), tup(30), tup(99),
	}))
	return db
}

// semijoinJob builds a repartition semi-join R(x,y) ⋉ S(y) as in §4.1.
func semijoinJob(packing bool) *Job {
	return &Job{
		Name:    "semijoin",
		Inputs:  []string{"R", "S"},
		Outputs: map[string]int{"Z": 2},
		Packing: packing,
		Mapper: MapperFunc(func(input string, id int, t relation.Tuple, emit Emit) {
			var kb [12]byte
			switch input {
			case "R":
				emit(t[1].AppendKey(kb[:0]), intMsg(int64(id)+1000))
			case "S":
				emit(t[0].AppendKey(kb[:0]), intMsg(-1))
			}
		}),
		Reducer: ReducerFunc(func(key []byte, msgs []Message, out *Output) {
			hasAssert := false
			for _, m := range msgs {
				if m.(intMsg) == -1 {
					hasAssert = true
					break
				}
			}
			if !hasAssert {
				return
			}
			for _, m := range msgs {
				if v := m.(intMsg); v >= 1000 {
					out.Add("Z", tup(int64(v)-1000, 0))
				}
			}
		}),
	}
}

func TestRunJobSemiJoin(t *testing.T) {
	e := NewEngine(cost.Default())
	out, stats, err := e.RunJob(semijoinJob(false), testDB())
	if err != nil {
		t.Fatal(err)
	}
	z := out.Relation("Z")
	// R tuples with y ∈ S: ids 0 (y=10), 2 (y=10), 3 (y=30).
	want := relation.FromTuples("Z", 2, []relation.Tuple{tup(0, 0), tup(2, 0), tup(3, 0)})
	if !z.Equal(want) {
		t.Errorf("Z = %s, want %s", z.Dump(), want.Dump())
	}
	if len(stats.Parts) != 2 {
		t.Fatalf("parts = %d", len(stats.Parts))
	}
	if stats.Parts[0].Records != 4 || stats.Parts[1].Records != 3 {
		t.Errorf("record counts = %+v", stats.Parts)
	}
	if stats.InterMB() <= 0 || stats.InputMB() <= 0 {
		t.Errorf("byte accounting zero: %+v", stats)
	}
}

func TestRunJobDeterministic(t *testing.T) {
	e := NewEngine(cost.Default())
	db := testDB()
	_, s1, err := e.RunJob(semijoinJob(false), db)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		_, s2, err := e.RunJob(semijoinJob(false), db)
		if err != nil {
			t.Fatal(err)
		}
		if s1.String() != s2.String() {
			t.Fatalf("stats differ across runs:\n%s\n%s", s1, s2)
		}
	}
}

func TestPackingReducesRecordsAndBytes(t *testing.T) {
	// Many tuples share few keys: packing shrinks records and bytes but
	// must not change the output.
	var tuples []relation.Tuple
	for i := int64(0); i < 500; i++ {
		tuples = append(tuples, tup(i, i%5))
	}
	db := relation.NewDatabase()
	db.Put(relation.FromTuples("R", 2, tuples))
	db.Put(relation.FromTuples("S", 1, []relation.Tuple{tup(0), tup(1)}))

	e := NewEngine(cost.Default())
	e.Parallelism = 1 // one map task per split; splits are size-based
	outPlain, statsPlain, err := e.RunJob(semijoinJob(false), db)
	if err != nil {
		t.Fatal(err)
	}
	outPacked, statsPacked, err := e.RunJob(semijoinJob(true), db)
	if err != nil {
		t.Fatal(err)
	}
	if !outPlain.Relation("Z").Equal(outPacked.Relation("Z")) {
		t.Error("packing changed the job output")
	}
	if statsPacked.Records() >= statsPlain.Records() {
		t.Errorf("packing did not reduce records: %d vs %d", statsPacked.Records(), statsPlain.Records())
	}
	if statsPacked.InterMB() >= statsPlain.InterMB() {
		t.Errorf("packing did not reduce bytes: %v vs %v", statsPacked.InterMB(), statsPlain.InterMB())
	}
}

func TestReducerCountFromIntermediate(t *testing.T) {
	e := NewEngine(cost.Default().Scaled(0.0001)) // tiny buffers: forces multiple reducers
	_, stats, err := e.RunJob(semijoinJob(false), testDB())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Reducers < 1 {
		t.Errorf("Reducers = %d", stats.Reducers)
	}
	fixed := semijoinJob(false)
	fixed.Reducers = 7
	_, stats2, err := e.RunJob(fixed, testDB())
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Reducers != 7 {
		t.Errorf("fixed Reducers = %d, want 7", stats2.Reducers)
	}
}

func TestReducersFromInputPigPolicy(t *testing.T) {
	e := NewEngine(cost.Default())
	job := semijoinJob(false)
	job.ReducersFromInput = true
	job.ReducerInputMB = 0.00001 // absurdly small per-reducer input
	_, stats, err := e.RunJob(job, testDB())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Reducers < 2 {
		t.Errorf("input-based allocation gave %d reducers", stats.Reducers)
	}
}

func TestInflateIntermediate(t *testing.T) {
	e := NewEngine(cost.Default())
	plain, stats1, err := e.RunJob(semijoinJob(false), testDB())
	if err != nil {
		t.Fatal(err)
	}
	job := semijoinJob(false)
	job.InflateIntermediate = 2.0
	inflated, stats2, err := e.RunJob(job, testDB())
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Relation("Z").Equal(inflated.Relation("Z")) {
		t.Error("inflation changed output")
	}
	ratio := stats2.InterMB() / stats1.InterMB()
	if ratio < 1.99 || ratio > 2.01 {
		t.Errorf("inflation ratio = %v", ratio)
	}
}

func TestUnknownInputRelation(t *testing.T) {
	e := NewEngine(cost.Default())
	job := semijoinJob(false)
	job.Inputs = []string{"R", "Missing"}
	if _, _, err := e.RunJob(job, testDB()); err == nil || !strings.Contains(err.Error(), "Missing") {
		t.Errorf("err = %v", err)
	}
}

func TestUndeclaredOutputPanics(t *testing.T) {
	e := NewEngine(cost.Default())
	job := &Job{
		Name:    "bad",
		Inputs:  []string{"R"},
		Outputs: map[string]int{"Z": 1},
		Mapper: MapperFunc(func(input string, id int, t relation.Tuple, emit Emit) {
			emit([]byte("k"), intMsg(1))
		}),
		Reducer: ReducerFunc(func(key []byte, msgs []Message, out *Output) {
			out.Add("Undeclared", tup(1))
		}),
	}
	defer func() {
		if recover() == nil {
			t.Fatal("undeclared output did not panic")
		}
	}()
	e.RunJob(job, testDB())
}

func TestEmptyInputRelation(t *testing.T) {
	db := relation.NewDatabase()
	db.Put(relation.New("R", 2))
	db.Put(relation.New("S", 1))
	e := NewEngine(cost.Default())
	out, stats, err := e.RunJob(semijoinJob(false), db)
	if err != nil {
		t.Fatal(err)
	}
	if out.Relation("Z").Size() != 0 {
		t.Error("empty input produced output")
	}
	if stats.MapTasks < 2 {
		t.Errorf("MapTasks = %d", stats.MapTasks)
	}
}

func TestSampleEstimates(t *testing.T) {
	var tuples []relation.Tuple
	for i := int64(0); i < 10000; i++ {
		tuples = append(tuples, tup(i, i%7))
	}
	db := relation.NewDatabase()
	db.Put(relation.FromTuples("R", 2, tuples))
	db.Put(relation.FromTuples("S", 1, []relation.Tuple{tup(0)}))
	e := NewEngine(cost.Default())
	parts, err := e.Sample(semijoinJob(false), db)
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := e.RunJob(semijoinJob(false), db)
	if err != nil {
		t.Fatal(err)
	}
	// The mapper is perfectly uniform, so the estimate should be close.
	estimate := parts[0].InterMB
	actual := stats.Parts[0].InterMB
	if estimate < actual*0.9 || estimate > actual*1.1 {
		t.Errorf("sampled estimate %v vs actual %v", estimate, actual)
	}
}

// TestSamplePerInputIsolation guards against the sampling counters
// leaking across inputs: Sample shares one emit closure over all inputs,
// so a missing reset would fold every earlier input's records and bytes
// into each later input's PartStats.
func TestSamplePerInputIsolation(t *testing.T) {
	var tuples []relation.Tuple
	for i := int64(0); i < 400; i++ {
		tuples = append(tuples, tup(i, i%7))
	}
	db := relation.NewDatabase()
	db.Put(relation.FromTuples("R", 2, tuples)) // sampled first, 400 emits
	db.Put(relation.FromTuples("S", 1, []relation.Tuple{tup(0), tup(3), tup(6)}))
	e := NewEngine(cost.Default())
	e.SampleEvery = 1 // exact: every tuple sampled, scale 1
	parts, err := e.Sample(semijoinJob(false), db)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 2 {
		t.Fatalf("parts = %d", len(parts))
	}
	if parts[0].Records != 400 {
		t.Errorf("R records = %d, want 400", parts[0].Records)
	}
	// The semijoin mapper emits exactly one record per S tuple; if R's
	// 400 records leaked into S's counters this would be 403.
	if parts[1].Records != 3 {
		t.Errorf("S records = %d, want 3 (counter leaked across inputs?)", parts[1].Records)
	}
	wantMB := float64(3*(KeyBytes([]byte(tup(0).Key()))+8)) / MB
	if parts[1].InterMB != wantMB {
		t.Errorf("S InterMB = %v, want %v", parts[1].InterMB, wantMB)
	}
}

func TestProgramDepsAndRounds(t *testing.T) {
	j1 := semijoinJob(false) // outputs Z
	j2 := &Job{
		Name:    "consume",
		Inputs:  []string{"Z"},
		Outputs: map[string]int{"W": 2},
		Mapper: MapperFunc(func(input string, id int, t relation.Tuple, emit Emit) {
			var kb [32]byte
			emit(t.AppendKey(kb[:0]), intMsg(int64(id)))
		}),
		Reducer: ReducerFunc(func(key []byte, msgs []Message, out *Output) {
			out.Add("W", relation.TupleFromKeyBytes(key))
		}),
	}
	p := &Program{Jobs: []*Job{j1, j2}}
	deps := p.Deps()
	if len(deps[0]) != 0 || len(deps[1]) != 1 || deps[1][0] != 0 {
		t.Errorf("Deps = %v", deps)
	}
	if p.Rounds() != 2 {
		t.Errorf("Rounds = %d", p.Rounds())
	}
	e := NewEngine(cost.Default())
	outs, stats, err := e.RunProgram(p, testDB())
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 2 {
		t.Fatalf("stats = %d", len(stats))
	}
	if !outs.Relation("W").Equal(outs.Relation("Z").Rename("W")) {
		t.Error("W != Z")
	}
}

func TestProgramValidate(t *testing.T) {
	j := semijoinJob(false)
	p := &Program{Jobs: []*Job{j}}
	if err := p.Validate([]string{"R"}); err == nil {
		t.Error("missing input S accepted")
	}
	if err := p.Validate([]string{"R", "S", "Z"}); err == nil {
		t.Error("overwriting base relation accepted")
	}
	if err := p.Validate([]string{"R", "S"}); err != nil {
		t.Errorf("valid program rejected: %v", err)
	}
}

func TestMetricsAccumulate(t *testing.T) {
	e := NewEngine(cost.Default())
	_, stats, err := e.RunJob(semijoinJob(false), testDB())
	if err != nil {
		t.Fatal(err)
	}
	var m Metrics
	m.Add(stats)
	m.Add(stats)
	if m.Jobs != 2 || m.InputMB != 2*stats.InputMB() {
		t.Errorf("Metrics = %+v", m)
	}
}

func TestCostSpecConversion(t *testing.T) {
	e := NewEngine(cost.Default())
	_, stats, err := e.RunJob(semijoinJob(false), testDB())
	if err != nil {
		t.Fatal(err)
	}
	spec := stats.CostSpec()
	if len(spec.Partitions) != 2 || spec.Reducers != stats.Reducers {
		t.Errorf("CostSpec = %+v", spec)
	}
	c := cost.Default()
	if c.JobCost(cost.Gumbo, spec) <= 0 {
		t.Error("job cost not positive")
	}
}

func TestParallelFor(t *testing.T) {
	seen := make([]bool, 100)
	err := parallelFor(8, 100, func(i int) error {
		seen[i] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("index %d not visited", i)
		}
	}
}

func TestPackedSizeBytes(t *testing.T) {
	p := Packed{Msgs: []Message{intMsg(1), intMsg(2), intMsg(3)}}
	if p.SizeBytes() != 24 {
		t.Errorf("SizeBytes = %d", p.SizeBytes())
	}
}
