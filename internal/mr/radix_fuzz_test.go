package mr

import (
	"bytes"
	"slices"
	"testing"
)

// FuzzRadixSort differentially checks the MSD radix sort (serial and
// parallel top level) and the comparison fallback against a stdlib
// oracle: all three must realize plain lexicographic byte order on keys
// and permute the record indices. Fuzz data decodes into
// length-prefixed keys, which are then tiled to duplicate-heavy inputs
// at the sizes where the sort changes regime: radixBucketCutoff (96)
// ±1, where a radix level hands buckets to the comparison sort, and
// radixMinLen (512) ±1, the whole-partition cutoff in sortIndexByKey.
func FuzzRadixSort(f *testing.F) {
	seeds := [][]byte{
		{},        // no keys
		{0, 0, 0}, // three empty keys
		// Shared 'a'-prefixes straddling the packed 8-byte boundary:
		// lengths 7, 8 and 9 with equal leading bytes exercise the
		// prefix-equal branches of cmpRef and radix level 8.
		{7, 'a', 'a', 'a', 'a', 'a', 'a', 'a',
			8, 'a', 'a', 'a', 'a', 'a', 'a', 'a', 'a',
			9, 'a', 'a', 'a', 'a', 'a', 'a', 'a', 'a', 'b',
			8, 'a', 'a', 'a', 'a', 'a', 'a', 'a', 'b'},
		// Keys longer than the prefix with equal first eight bytes:
		// order is decided by the full byte compare past the prefix.
		{12, 'p', 'p', 'p', 'p', 'p', 'p', 'p', 'p', 'q', 'r', 's', 't',
			12, 'p', 'p', 'p', 'p', 'p', 'p', 'p', 'p', 'a', 'b', 'c', 'd',
			9, 'p', 'p', 'p', 'p', 'p', 'p', 'p', 'p', 0},
		// Distinct leading bytes, including the histogram extremes.
		{1, 'z', 1, 'a', 1, 'm', 1, 0x00, 1, 0xff, 2, 0xff, 0x00},
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		keys := decodeFuzzKeys(data)
		if len(keys) == 0 {
			keys = [][]byte{nil}
		}
		for _, n := range []int{len(keys), 95, 97, 511, 513} {
			recs := make([]record, n)
			for i := range recs {
				recs[i] = record{key: keys[i%len(keys)]}
			}
			checkRadixAgainstOracle(t, recs)
		}
	})
}

// decodeFuzzKeys reads length-prefixed keys: one length byte (mod 13,
// so keys cross the 8-byte packed-prefix boundary) then that many key
// bytes, truncated at end of data. Capped at 64 distinct decodes so the
// tiled inputs stay duplicate-heavy, like real shuffle partitions.
func decodeFuzzKeys(data []byte) [][]byte {
	var keys [][]byte
	for len(data) > 0 && len(keys) < 64 {
		l := int(data[0]) % 13
		data = data[1:]
		if l > len(data) {
			l = len(data)
		}
		keys = append(keys, data[:l:l])
		data = data[l:]
	}
	return keys
}

// checkRadixAgainstOracle runs sortRefs, msdRadix and msdRadixParallel
// over the same records and verifies each against slices.SortStableFunc
// with bytes.Compare: the key sequence must match the oracle's exactly
// (the paths are unstable within one key, so indices are checked only
// for being a permutation — position-wise key equality plus a
// permutation forces the per-key index multisets to agree).
func checkRadixAgainstOracle(t *testing.T, recs []record) {
	t.Helper()
	n := len(recs)
	want := make([][]byte, n)
	for i := range recs {
		want[i] = recs[i].key
	}
	slices.SortStableFunc(want, bytes.Compare)

	check := func(name string, sort func(refs, tmp []keyRef)) {
		refs := make([]keyRef, n)
		tmp := make([]keyRef, n)
		for i := range recs {
			refs[i] = keyRef{prefix: keyPrefix(recs[i].key), idx: int32(i)}
		}
		sort(refs, tmp)
		seen := make([]bool, n)
		for i, r := range refs {
			if r.idx < 0 || int(r.idx) >= n || seen[r.idx] {
				t.Fatalf("%s (n=%d): position %d holds invalid or duplicate index %d", name, n, i, r.idx)
			}
			seen[r.idx] = true
			if !bytes.Equal(recs[r.idx].key, want[i]) {
				t.Fatalf("%s (n=%d): position %d has key %q, oracle wants %q", name, n, i, recs[r.idx].key, want[i])
			}
			if r.prefix != keyPrefix(recs[r.idx].key) {
				t.Fatalf("%s (n=%d): position %d prefix %#x does not match its key %q", name, n, i, r.prefix, recs[r.idx].key)
			}
		}
	}
	check("sortRefs", func(refs, tmp []keyRef) { sortRefs(recs, refs) })
	check("msdRadix", func(refs, tmp []keyRef) { msdRadix(recs, refs, tmp, 0) })
	check("msdRadixParallel", func(refs, tmp []keyRef) { msdRadixParallel(recs, refs, tmp, 3) })
}
