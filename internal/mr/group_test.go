package mr

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// mkrec builds a record the way the engine's emit does, with the size
// computed up front.
func mkrec(key string, msg Message) record {
	k := []byte(key)
	return record{key: k, msg: msg, size: KeyBytes(k) + msg.SizeBytes()}
}

// refGroup is the engine's pre-sort-based reduce grouping (hash map +
// sorted key list), kept as the oracle the sort-based grouping must
// reproduce byte for byte. It works on string keys — the engine's
// original key representation — so it also serves as the string-keyed
// oracle for the byte-slice key differential tests in radix_test.go.
func refGroup(recs []record, fn func(key []byte, msgs []Message)) {
	groups := make(map[string][]Message)
	var keys []string
	for _, r := range recs {
		msgs, seen := groups[string(r.key)]
		if !seen {
			keys = append(keys, string(r.key))
		}
		if packed, ok := r.msg.(Packed); ok {
			msgs = append(msgs, packed.Msgs...)
		} else {
			msgs = append(msgs, r.msg)
		}
		groups[string(r.key)] = msgs
	}
	sort.Strings(keys)
	for _, k := range keys {
		fn([]byte(k), groups[k])
	}
}

// groupTrace renders a grouping pass as one string: key, then each
// message in delivery order. Comparing traces compares key order, group
// boundaries and message order at once.
func groupTrace(group func([]record, func([]byte, []Message)), recs []record) string {
	var out string
	group(recs, func(key []byte, msgs []Message) {
		out += fmt.Sprintf("%q:", key)
		for _, m := range msgs {
			out += fmt.Sprintf("%v,", m)
		}
		out += ";"
	})
	return out
}

func TestForEachGroupEmptyPartition(t *testing.T) {
	called := false
	forEachGroup(nil, func([]byte, []Message) { called = true })
	forEachGroup([]record{}, func([]byte, []Message) { called = true })
	if called {
		t.Error("forEachGroup called fn on an empty partition")
	}
}

func TestForEachGroupSingleKeyRun(t *testing.T) {
	recs := []record{
		mkrec("k", intMsg(1)),
		mkrec("k", intMsg(2)),
		mkrec("k", intMsg(3)),
	}
	got := groupTrace(forEachGroup, recs)
	if want := `"k":1,2,3,;`; got != want {
		t.Errorf("trace = %s, want %s", got, want)
	}
}

func TestForEachGroupFlattensPacked(t *testing.T) {
	recs := []record{
		mkrec("b", Packed{Msgs: []Message{intMsg(10), intMsg(11)}}),
		mkrec("a", intMsg(1)),
		mkrec("b", intMsg(12)),
		mkrec("a", Packed{Msgs: []Message{intMsg(2)}}),
	}
	got := groupTrace(forEachGroup, recs)
	if want := `"a":1,2,;"b":10,11,12,;`; got != want {
		t.Errorf("trace = %s, want %s", got, want)
	}
}

// TestForEachGroupMatchesMapGrouping drives both groupings over
// randomized partitions — skewed keys, packed and plain messages — and
// requires identical traces: same key order, same group boundaries,
// same message order.
func TestForEachGroupMatchesMapGrouping(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(400)
		keys := rng.Intn(20) + 1
		recs := make([]record, 0, n)
		for i := 0; i < n; i++ {
			key := fmt.Sprintf("k%03d", rng.Intn(keys))
			var msg Message = intMsg(i)
			if rng.Intn(4) == 0 {
				packed := make([]Message, rng.Intn(3)+1)
				for j := range packed {
					packed[j] = intMsg(1000*i + j)
				}
				msg = Packed{Msgs: packed}
			}
			recs = append(recs, mkrec(key, msg))
		}
		// forEachGroup sorts in place; hand each grouping its own copy.
		mine := make([]record, len(recs))
		copy(mine, recs)
		got := groupTrace(forEachGroup, mine)
		want := groupTrace(refGroup, recs)
		if got != want {
			t.Fatalf("trial %d: sort-based grouping diverged:\n got %s\nwant %s", trial, got, want)
		}
	}
}

// refPack is the engine's pre-sort-based packing (first-occurrence key
// order). packRecords now emits ascending key order, so the comparison
// normalizes both sides through a grouping pass.
func refPack(recs []record) []record {
	groups := make(map[string][]Message, len(recs))
	var order []string
	for _, r := range recs {
		if _, seen := groups[string(r.key)]; !seen {
			order = append(order, string(r.key))
		}
		groups[string(r.key)] = append(groups[string(r.key)], r.msg)
	}
	out := make([]record, 0, len(order))
	for _, k := range order {
		msgs := groups[k]
		if len(msgs) == 1 {
			out = append(out, mkrec(k, msgs[0]))
		} else {
			out = append(out, mkrec(k, Packed{Msgs: msgs}))
		}
	}
	return out
}

func TestPackRecordsMatchesMapPacking(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(300)
		keys := rng.Intn(15) + 1
		recs := make([]record, 0, n)
		for i := 0; i < n; i++ {
			recs = append(recs, mkrec(fmt.Sprintf("k%03d", rng.Intn(keys)), intMsg(i)))
		}
		want := refPack(append([]record(nil), recs...))
		got := packRecords(append([]record(nil), recs...))

		// Same packed bytes and record count.
		var wantBytes, gotBytes int64
		for _, r := range want {
			wantBytes += KeyBytes(r.key) + r.msg.SizeBytes()
		}
		for _, r := range got {
			gotBytes += r.size
			recomputed := KeyBytes(r.key)
			if r.packed != nil {
				for _, m := range r.packed {
					recomputed += m.SizeBytes()
				}
			} else {
				recomputed += r.msg.SizeBytes()
			}
			if r.size != recomputed {
				t.Fatalf("trial %d: key %q: stored size %d != recomputed %d",
					trial, r.key, r.size, recomputed)
			}
		}
		if len(got) != len(want) || gotBytes != wantBytes {
			t.Fatalf("trial %d: packed %d records/%d bytes, want %d/%d",
				trial, len(got), gotBytes, len(want), wantBytes)
		}
		// Same groups in the same per-key message order once grouped —
		// the only property the reduce phase observes.
		gt := groupTrace(forEachGroup, got)
		wt := groupTrace(forEachGroup, want)
		if gt != wt {
			t.Fatalf("trial %d: packing diverged after grouping:\n got %s\nwant %s", trial, gt, wt)
		}
	}
}

// TestPackedFlattensInsidePackedRun pins the flattening contract of
// types.go (Reducer/Packed docs): a mapper-emitted Packed message is
// flattened for the reducer whether its record stays a singleton or is
// folded into an engine-packed run with other same-key records.
func TestPackedFlattensInsidePackedRun(t *testing.T) {
	recs := []record{
		mkrec("k", Packed{Msgs: []Message{intMsg(1), intMsg(2)}}),
		mkrec("k", intMsg(3)),
		mkrec("solo", Packed{Msgs: []Message{intMsg(7), intMsg(8)}}),
	}
	packed := packRecords(append([]record(nil), recs...))
	got := groupTrace(forEachGroup, packed)
	if want := `"k":1,2,3,;"solo":7,8,;`; got != want {
		t.Errorf("trace = %s, want %s", got, want)
	}
}

func TestPackRecordsEmptyAndSingle(t *testing.T) {
	if out := packRecords(nil); len(out) != 0 {
		t.Errorf("packRecords(nil) = %v", out)
	}
	one := []record{mkrec("k", intMsg(1))}
	out := packRecords(append([]record(nil), one...))
	if len(out) != 1 || string(out[0].key) != "k" || out[0].msg.(intMsg) != 1 {
		t.Errorf("packRecords(single) = %+v", out)
	}
	if out[0].packed != nil {
		t.Error("single record was packed")
	}
}
