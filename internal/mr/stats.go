package mr

import (
	"fmt"
	"strings"

	"repro/internal/cost"
)

// MB is 2^20 bytes.
const MB = float64(1 << 20)

// mbOf converts modelled byte counts (record sizes, relation sizes) to
// the cost model's MB unit.
func mbOf(bytes int64) float64 { return float64(bytes) / MB }

// PartStats are the measured quantities of one uniform input part I_i
// (one input relation): exactly the N_i, M_i and record count the cost
// model consumes.
type PartStats struct {
	Input   string
	InputMB float64 // N_i
	InterMB float64 // M_i: map output bytes (keys + payloads), after packing
	Records int64   // map output records after packing (drives M̂_i)
	Mappers int     // m_i: map tasks run for this part
}

// JobStats are the measured quantities of one executed job.
type JobStats struct {
	Name        string
	Parts       []PartStats
	OutputMB    float64 // K
	Reducers    int     // r actually used
	MapTasks    int
	ReduceTasks int
	// ReduceLoadMB holds the shuffled bytes received by each reduce
	// partition. Uneven loads (key skew) stretch the reduce wave's
	// makespan in the cluster simulation. Under runtime skew splitting
	// the per-partition loads are folded from the sub-task loads in
	// slot order, so the values match the unsplit run bit for bit.
	ReduceLoadMB []float64
	// SplitReduceTasks counts the sub-range reduce tasks the runtime
	// skew splitter scheduled (0 when splitting is off or nothing was
	// heavy). The split plan is computed from declared-order folds, so
	// the count is identical at every pool width.
	SplitReduceTasks int
	// MaxReduceTaskMB is the heaviest single reduce task's input. With
	// splitting off it equals MaxReduceLoadMB(); with splitting on it
	// drops below it when a heavy partition was cut.
	MaxReduceTaskMB float64
}

// StripSplitInfo returns a copy with the split observability fields
// zeroed — the only JobStats fields allowed to differ between a split
// and an unsplit run of the same job. Differential tests normalize
// both sides with it before demanding deep equality.
func (s JobStats) StripSplitInfo() JobStats {
	s.SplitReduceTasks = 0
	s.MaxReduceTaskMB = 0
	return s
}

// MaxReduceLoadMB returns the heaviest reducer's input.
func (s JobStats) MaxReduceLoadMB() float64 {
	var max float64
	for _, l := range s.ReduceLoadMB {
		if l > max {
			max = l
		}
	}
	return max
}

// ReduceImbalance returns max load / mean load (1.0 = perfectly even;
// 0 when there is no load).
func (s JobStats) ReduceImbalance() float64 {
	if len(s.ReduceLoadMB) == 0 {
		return 0
	}
	var sum float64
	for _, l := range s.ReduceLoadMB {
		sum += l
	}
	if sum == 0 {
		return 0
	}
	mean := sum / float64(len(s.ReduceLoadMB))
	return s.MaxReduceLoadMB() / mean
}

// InputMB returns Σ N_i: the job's HDFS read volume.
func (s JobStats) InputMB() float64 {
	var n float64
	for _, p := range s.Parts {
		n += p.InputMB
	}
	return n
}

// InterMB returns M = Σ M_i: the job's map→reduce communication volume.
func (s JobStats) InterMB() float64 {
	var m float64
	for _, p := range s.Parts {
		m += p.InterMB
	}
	return m
}

// Records returns the total map output record count.
func (s JobStats) Records() int64 {
	var n int64
	for _, p := range s.Parts {
		n += p.Records
	}
	return n
}

// CostSpec converts measured stats into the cost model's job spec.
func (s JobStats) CostSpec() cost.JobSpec {
	spec := cost.JobSpec{OutputMB: s.OutputMB, Reducers: s.Reducers}
	for _, p := range s.Parts {
		spec.Partitions = append(spec.Partitions, cost.Partition{
			Name:    p.Input,
			InputMB: p.InputMB,
			InterMB: p.InterMB,
			Records: p.Records,
			Mappers: p.Mappers,
		})
	}
	return spec
}

// String gives a compact one-line summary.
func (s JobStats) String() string {
	var parts []string
	for _, p := range s.Parts {
		parts = append(parts, fmt.Sprintf("%s:%.1f→%.1fMB", p.Input, p.InputMB, p.InterMB))
	}
	return fmt.Sprintf("%s[%s | out %.1fMB | %dm/%dr]",
		s.Name, strings.Join(parts, " "), s.OutputMB, s.MapTasks, s.ReduceTasks)
}

// Metrics are the four performance metrics of §5.1 accumulated over an
// MR program. Times are simulated seconds produced by internal/cluster;
// byte counts are measured by the engine.
type Metrics struct {
	NetTime   float64
	TotalTime float64
	InputMB   float64 // bytes read from hdfs over the entire plan
	CommMB    float64 // bytes transferred from mappers to reducers
	OutputMB  float64
	Jobs      int
	Rounds    int
}

// Add accumulates byte metrics of one job (times are set by the
// scheduler, not summed here).
func (m *Metrics) Add(s JobStats) {
	m.InputMB += s.InputMB()
	m.CommMB += s.InterMB()
	m.OutputMB += s.OutputMB
	m.Jobs++
}

func (m Metrics) String() string {
	return fmt.Sprintf("net %.0fs total %.0fs input %.2fGB comm %.2fGB (%d jobs, %d rounds)",
		m.NetTime, m.TotalTime, m.InputMB/1024, m.CommMB/1024, m.Jobs, m.Rounds)
}
