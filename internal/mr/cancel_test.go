package mr

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cost"
	"repro/internal/relation"
)

// countTaskGrants runs the program once, uninstrumented except for a
// counting fault hook, and returns the total number of task grants — a
// deterministic property of the program (every task unit is granted
// exactly once on an uncanceled run, at any width).
func countTaskGrants(t *testing.T, width int) int {
	t.Helper()
	var grants atomic.Int64
	restore := SetFaultHooks(FaultHooks{Grant: func(int) { grants.Add(1) }})
	defer restore()
	p, db := diamondProgram()
	e := NewEngine(cost.Default().Scaled(0.001))
	e.Parallelism = width
	if _, _, err := e.RunProgramCtx(context.Background(), p, db); err != nil {
		t.Fatalf("width %d: clean run failed: %v", width, err)
	}
	return int(grants.Load())
}

// oracleStats runs the golden program through runSequential — the
// engine's reference schedule — and indexes its per-job stats by name.
func oracleStats(t *testing.T) map[string]JobStats {
	t.Helper()
	p, db := diamondProgram()
	e := NewEngine(cost.Default().Scaled(0.001))
	e.Parallelism = 1
	working := relation.NewDatabase()
	for _, r := range db.Relations() {
		working.Put(r)
	}
	results, err := e.runSequential(p, working)
	if err != nil {
		t.Fatalf("oracle run failed: %v", err)
	}
	oracle := make(map[string]JobStats, len(results))
	for _, res := range results {
		oracle[res.stats.Name] = res.stats
	}
	return oracle
}

// waitGoroutinesSettle waits for the goroutine count to return to (at
// most) baseline: the leak gate for the pool's worker and watcher
// goroutines. The runtime needs a beat to reap exited goroutines, so
// poll rather than assert instantly.
func waitGoroutinesSettle(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: %d now, baseline %d", runtime.NumGoroutine(), baseline)
		}
		runtime.Gosched()
		time.Sleep(2 * time.Millisecond)
	}
}

// dbSignature captures everything about the input database a canceled
// run could corrupt: relation names, arities and exact tuple order.
func dbSignature(db *relation.Database) string {
	sig := ""
	for _, name := range db.Names() {
		sig += db.Relation(name).Dump()
	}
	return sig
}

// TestCancelAtEveryTaskBoundary is the cancellation differential suite:
// for pool widths 1, 4 and GOMAXPROCS it cancels the golden diamond
// program at every task-grant index k and asserts, for each k:
//
//   - the run returns an error satisfying errors.Is(context.Canceled)
//     with a nil outputs database (no partial writes escape);
//   - task grants after the cancel are strictly bounded: at most one
//     per worker already past its context poll, so total ≤ k + width;
//   - every job the canceled run reports as completed has stats
//     bit-for-bit identical to the sequential oracle's for that job;
//   - the input database is untouched.
//
// Afterwards a clean re-run must still match the oracle exactly (no
// cross-run pollution) and the goroutine count must settle back to the
// pre-test baseline (no leaked worker or watcher goroutines).
func TestCancelAtEveryTaskBoundary(t *testing.T) {
	oracle := oracleStats(t)
	baseline := runtime.NumGoroutine()
	widths := []int{1, 4, runtime.GOMAXPROCS(0)}
	seen := map[int]bool{}
	for _, width := range widths {
		if width < 1 || seen[width] {
			continue
		}
		seen[width] = true
		grantsTotal := countTaskGrants(t, width)
		if grantsTotal == 0 {
			t.Fatalf("width %d: program granted no tasks", width)
		}
		for k := 0; k < grantsTotal; k++ {
			var grants atomic.Int64
			ctx, cancel := context.WithCancel(context.Background())
			restore := SetFaultHooks(FaultHooks{Grant: func(n int) {
				grants.Add(1)
				if n == k {
					cancel()
				}
			}})

			p, db := diamondProgram()
			before := dbSignature(db)
			e := NewEngine(cost.Default().Scaled(0.001))
			e.Parallelism = width
			outs, stats, err := e.RunProgramCtx(ctx, p, db)
			restore()
			cancel()

			if err == nil {
				t.Fatalf("width %d cancel@%d: run returned no error", width, k)
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("width %d cancel@%d: error %v does not wrap context.Canceled", width, k, err)
			}
			if outs != nil {
				t.Fatalf("width %d cancel@%d: canceled run returned an outputs database", width, k)
			}
			if g := int(grants.Load()); g > k+width {
				t.Errorf("width %d cancel@%d: %d tasks granted, want ≤ %d", width, k, g, k+width)
			}
			for _, st := range stats {
				want, ok := oracle[st.Name]
				if !ok {
					t.Fatalf("width %d cancel@%d: completed job %q unknown to the oracle", width, k, st.Name)
				}
				if !statsEqual(st, want) {
					t.Errorf("width %d cancel@%d: job %s stats diverge from oracle:\n%+v\nvs\n%+v",
						width, k, st.Name, st, want)
				}
			}
			if after := dbSignature(db); after != before {
				t.Fatalf("width %d cancel@%d: canceled run mutated the input database", width, k)
			}
		}
		// Clean re-run after the cancel storm: nothing leaked into
		// process-global state.
		p, db := diamondProgram()
		e := NewEngine(cost.Default().Scaled(0.001))
		e.Parallelism = width
		_, stats, err := e.RunProgram(p, db)
		if err != nil {
			t.Fatalf("width %d: clean re-run failed: %v", width, err)
		}
		if len(stats) != len(oracle) {
			t.Fatalf("width %d: clean re-run completed %d jobs, oracle has %d", width, len(stats), len(oracle))
		}
		for _, st := range stats {
			if !statsEqual(st, oracle[st.Name]) {
				t.Errorf("width %d: clean re-run job %s stats diverge from oracle", width, st.Name)
			}
		}
	}
	waitGoroutinesSettle(t, baseline)
}

// TestCancelBeforeStart pins the fast path: a context canceled before
// the run begins grants zero tasks and returns context.Canceled.
func TestCancelBeforeStart(t *testing.T) {
	var grants atomic.Int64
	restore := SetFaultHooks(FaultHooks{Grant: func(int) { grants.Add(1) }})
	defer restore()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p, db := diamondProgram()
	e := NewEngine(cost.Default().Scaled(0.001))
	if _, _, err := e.RunProgramCtx(ctx, p, db); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled run: err = %v, want context.Canceled", err)
	}
	if g := grants.Load(); g != 0 {
		t.Fatalf("pre-canceled run granted %d tasks, want 0", g)
	}
}

// TestRunJobCancel checks the single-job entry point honors its
// context: canceled mid-run it returns a nil database and an error
// wrapping context.Canceled, leaving the input untouched.
func TestRunJobCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	restore := SetFaultHooks(FaultHooks{Grant: func(n int) {
		if n == 1 {
			cancel()
		}
	}})
	defer restore()
	db := testDB()
	before := dbSignature(db)
	e := NewEngine(cost.Default().Scaled(0.001))
	e.Parallelism = 2
	outs, _, err := e.RunJobCtx(ctx, semijoinJob(false), db)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunJobCtx err = %v, want context.Canceled", err)
	}
	if outs != nil {
		t.Fatalf("canceled RunJobCtx returned an output database")
	}
	if dbSignature(db) != before {
		t.Fatalf("canceled RunJobCtx mutated the input database")
	}
}

// TestDeadlineExceeded checks an expired deadline surfaces as
// context.DeadlineExceeded: a fault hook parks the first task until
// the deadline has passed, so the run cannot finish in time.
func TestDeadlineExceeded(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	restore := SetFaultHooks(FaultHooks{Grant: func(n int) {
		if n == 0 {
			<-ctx.Done() // park until the deadline fires
		}
	}})
	defer restore()
	p, db := diamondProgram()
	e := NewEngine(cost.Default().Scaled(0.001))
	e.Parallelism = 4
	_, _, err := e.RunProgramCtx(ctx, p, db)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline run err = %v, want context.DeadlineExceeded", err)
	}
}

// TestProgressCounters checks the exported progress observer: after an
// uncanceled run every stage's done count equals its total, the totals
// agree with the run's own stats (map tasks, reduce tasks, one shuffle
// task per map task, one merge shard per declared output, one job per
// job), and a canceled run's snapshot never exceeds those totals.
func TestProgressCounters(t *testing.T) {
	p, db := diamondProgram()
	e := NewEngine(cost.Default().Scaled(0.001))
	e.Parallelism = 4
	var prog Progress
	_, stats, _, err := e.RunProgramObserved(context.Background(), p, db, &prog)
	if err != nil {
		t.Fatalf("observed run failed: %v", err)
	}
	snap := prog.Snapshot()
	wantMaps, wantReds, wantMerges := 0, 0, 0
	for i, st := range stats {
		wantMaps += st.MapTasks
		wantReds += st.ReduceTasks
		wantMerges += len(p.Jobs[i].Outputs)
	}
	if snap.MapTasksDone != wantMaps || snap.MapTasksTotal != wantMaps {
		t.Errorf("map counters %d/%d, want %d/%d", snap.MapTasksDone, snap.MapTasksTotal, wantMaps, wantMaps)
	}
	if snap.ShuffleTasksDone != wantMaps || snap.ShuffleTasksTotal != wantMaps {
		t.Errorf("shuffle counters %d/%d, want %d/%d (one per map task)",
			snap.ShuffleTasksDone, snap.ShuffleTasksTotal, wantMaps, wantMaps)
	}
	if snap.ReduceTasksDone != wantReds || snap.ReduceTasksTotal != wantReds {
		t.Errorf("reduce counters %d/%d, want %d/%d", snap.ReduceTasksDone, snap.ReduceTasksTotal, wantReds, wantReds)
	}
	if snap.MergeShardsDone != wantMerges || snap.MergeShardsTotal != wantMerges {
		t.Errorf("merge counters %d/%d, want %d/%d", snap.MergeShardsDone, snap.MergeShardsTotal, wantMerges, wantMerges)
	}
	if snap.JobsDone != len(p.Jobs) || snap.JobsTotal != len(p.Jobs) {
		t.Errorf("job counters %d/%d, want %d/%d", snap.JobsDone, snap.JobsTotal, len(p.Jobs), len(p.Jobs))
	}

	// Canceled run: the snapshot must stay within the full-run totals
	// and never report done > total within a stage.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	restore := SetFaultHooks(FaultHooks{Grant: func(n int) {
		if n == wantMaps/2 {
			cancel()
		}
	}})
	defer restore()
	p2, db2 := diamondProgram()
	var prog2 Progress
	if _, _, _, err := e.RunProgramObserved(ctx, p2, db2, &prog2); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled observed run err = %v, want context.Canceled", err)
	}
	s2 := prog2.Snapshot()
	if s2.MapTasksDone > s2.MapTasksTotal || s2.ShuffleTasksDone > s2.ShuffleTasksTotal ||
		s2.ReduceTasksDone > s2.ReduceTasksTotal || s2.MergeShardsDone > s2.MergeShardsTotal ||
		s2.JobsDone > s2.JobsTotal {
		t.Errorf("canceled snapshot has done > total: %+v", s2)
	}
	if s2.JobsTotal != len(p.Jobs) {
		t.Errorf("canceled snapshot JobsTotal = %d, want %d", s2.JobsTotal, len(p.Jobs))
	}
}

// TestPoolCancelQuiesces drives runTasks directly: canceling while
// tasks are queued must stop the pool promptly (bounded further
// grants), return ctx.Err(), and leave no goroutines behind.
func TestPoolCancelQuiesces(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for _, width := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		err := runTasks(ctx, width, func(c *poolCtx) {
			for i := 0; i < 64; i++ {
				c.spawn(func(c *poolCtx) { ran.Add(1) })
			}
			cancel()
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("width %d: runTasks err = %v, want context.Canceled", width, err)
		}
		// The seed canceled before returning: only tasks granted to
		// workers already past their poll may still run.
		if n := ran.Load(); n > int64(width) {
			t.Errorf("width %d: %d queued tasks ran after cancel, want ≤ %d", width, n, width)
		}
		cancel()
	}
	waitGoroutinesSettle(t, baseline)
}

// statsEqual compares two JobStats deeply (reflect-free wrapper kept
// for call-site readability).
func statsEqual(a, b JobStats) bool {
	if a.Name != b.Name || a.OutputMB != b.OutputMB || a.MapTasks != b.MapTasks ||
		a.ReduceTasks != b.ReduceTasks || a.Reducers != b.Reducers ||
		len(a.Parts) != len(b.Parts) || len(a.ReduceLoadMB) != len(b.ReduceLoadMB) {
		return false
	}
	for i := range a.Parts {
		if a.Parts[i] != b.Parts[i] {
			return false
		}
	}
	for i := range a.ReduceLoadMB {
		if a.ReduceLoadMB[i] != b.ReduceLoadMB[i] {
			return false
		}
	}
	return true
}
