package mr

import (
	"context"
	"fmt"

	"repro/internal/relation"
)

// progResult is the outcome of one scheduled job.
type progResult struct {
	outs   *relation.Database
	stats  JobStats
	timing JobTiming
	done   bool // job ran to completion
}

// consumerRef identifies one input part of one job: the unit the
// pipelined scheduler releases when the relation that part reads
// becomes available.
type consumerRef struct {
	job  int
	part int
}

// runPipelined executes jobs [0, limit) of the program as one unified
// task graph on a single work-stealing pool of `workers` goroutines.
// There are no job barriers: producer→consumer edges are wired at
// relation granularity from the jobs' declared read sets
// (Program.ReadSets) — a job's map tasks over an input spawn the moment
// that relation exists. Base-relation parts spawn at seed time, so a
// downstream job's map work over base inputs (e.g. an EVAL job
// re-reading its guard relations) overlaps with the upstream jobs still
// computing its other inputs; produced parts spawn from the upstream
// merge shard that publishes the relation. Reduce partitions of one job
// overlap with map tasks of independent jobs and of dependents whose
// other inputs are ready — whatever is runnable keeps the pool busy.
//
// Determinism: each merged relation is published into the shared
// working database before its consumers' map tasks are spawned (the
// spawn's queue handoff orders the writes), and every job reads exactly
// the relations it would read under sequential execution — each
// relation has a unique producer (Validate forbids overwrites) and a
// consumer part waits for precisely that producer's merge shard.
// Results and stats are therefore bit-for-bit identical to
// runSequential at every pool width; the caller folds them in declared
// job order.
//
// Cancellation stops the pool at the next task boundary (see
// runTasks): jobs whose done callback already fired are complete —
// their results slot is final and bit-for-bit identical to a full run
// — while every other job's partial state is simply dropped with the
// abandoned tasks. The returned error is ctx.Err() when the run was
// canceled, nil otherwise. prog, when non-nil, observes live task
// counters (one Progress per run).
func (e *Engine) runPipelined(ctx context.Context, p *Program, working *relation.Database, workers, limit int, prog *Progress, gov govern) ([]progResult, error) {
	results := make([]progResult, len(p.Jobs))
	prog.setJobsTotal(limit)
	if limit == 0 {
		return results, ctx.Err()
	}
	reads := p.ReadSets()
	// consumers[rel] lists the input parts reading a produced relation.
	// Jobs below limit only consume from producers below limit (a
	// producer always precedes its consumers), so the truncated graph is
	// closed and drains fully.
	consumers := make(map[string][]consumerRef)
	for i := 0; i < limit; i++ {
		for part, prod := range reads[i] {
			if prod >= 0 {
				name := p.Jobs[i].Inputs[part]
				consumers[name] = append(consumers[name], consumerRef{job: i, part: part})
			}
		}
	}
	runs := make([]*jobRun, limit)
	for i := 0; i < limit; i++ {
		i := i
		runs[i] = e.newJobRun(p.Jobs[i], gov,
			func(c *poolCtx, name string, rel *relation.Relation) {
				// Publish before releasing dependents: consumers spawned
				// below read the relation out of `working` or receive it
				// directly; either way the merge completed first.
				working.Put(rel)
				for _, cr := range consumers[name] {
					runs[cr.job].inputReady(c, cr.part, rel)
				}
			},
			func(c *poolCtx, jr *jobRun) {
				results[i] = progResult{outs: jr.outputDB(), stats: jr.stats, timing: jr.timing, done: true}
			})
		runs[i].progress = prog
	}
	err := runTasks(ctx, workers, func(c *poolCtx) {
		for i := 0; i < limit; i++ {
			runs[i].seed(c)
			for part, prod := range reads[i] {
				if prod < 0 {
					// Base relation: present from the start (Validate
					// checked the program against the base names).
					runs[i].inputReady(c, part, working.Relation(p.Jobs[i].Inputs[part]))
				}
			}
		}
	})
	return results, err
}

// runSequential executes the jobs strictly in declared order, one
// whole job at a time: the reference schedule the pipelined scheduler
// must match bit for bit (the differential tests compare against it).
func (e *Engine) runSequential(p *Program, working *relation.Database) ([]progResult, error) {
	results := make([]progResult, len(p.Jobs))
	for i, job := range p.Jobs {
		outs, st, err := e.RunJob(job, working)
		if err != nil {
			return results, fmt.Errorf("mr: job %s: %w", job.Name, err)
		}
		for _, r := range outs.Relations() {
			working.Put(r)
		}
		results[i] = progResult{outs: outs, stats: st, done: true}
	}
	return results, nil
}
