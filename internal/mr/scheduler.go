package mr

import (
	"fmt"
	"sync"

	"repro/internal/relation"
)

// progResult is the outcome of one scheduled job.
type progResult struct {
	outs  *relation.Database
	stats JobStats
	done  bool // job ran to completion
}

// runDAG executes the program's jobs respecting the dependency edges of
// p.Deps(), running up to `workers` dependency-satisfied jobs at a time.
// Outputs of finished jobs are published into the shared working
// database before any dependent starts, so every job reads exactly the
// inputs it would read under sequential execution; results and stats are
// therefore identical at every parallelism level.
//
// On failure no new jobs are scheduled, but already-queued jobs with a
// lower index than the recorded failure still run, so when several
// ready jobs fail the lowest-indexed one's error is reported regardless
// of goroutine scheduling. The results of completed jobs are returned
// alongside the error.
func (e *Engine) runDAG(p *Program, working *relation.Database, workers int) ([]progResult, error) {
	n := len(p.Jobs)
	results := make([]progResult, n)
	deps := p.Deps()
	dependents := make([][]int, n)
	remaining := make([]int, n)
	for i, ds := range deps {
		remaining[i] = len(ds)
		for _, d := range ds {
			dependents[d] = append(dependents[d], i)
		}
	}

	ready := make(chan int, n)
	var (
		mu       sync.Mutex
		enqueued int
		finished int
		failIdx  = -1
		failErr  error
	)
	// enqueue must be called with mu held.
	enqueue := func(i int) {
		enqueued++
		ready <- i
	}
	mu.Lock()
	for i := 0; i < n; i++ {
		if remaining[i] == 0 {
			enqueue(i)
		}
	}
	if enqueued == 0 {
		close(ready) // n == 0 (Validate rejects cyclic programs)
	}
	mu.Unlock()

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range ready {
				mu.Lock()
				// After a failure, skip queued jobs unless they could
				// supersede the recorded error with a lower index.
				aborted := failErr != nil && i > failIdx
				mu.Unlock()

				var (
					outs *relation.Database
					st   JobStats
					err  error
				)
				if !aborted {
					outs, st, err = e.RunJob(p.Jobs[i], working)
				}

				mu.Lock()
				switch {
				case aborted:
					// skipped: nothing to record
				case err != nil:
					if failErr == nil || i < failIdx {
						failIdx, failErr = i, err
					}
				default:
					// Publish outputs before releasing dependents: the
					// lock ordering makes the producer's writes visible
					// to every job it unblocks.
					for _, r := range outs.Relations() {
						working.Put(r)
					}
					results[i] = progResult{outs: outs, stats: st, done: true}
					for _, d := range dependents[i] {
						remaining[d]--
						if remaining[d] == 0 && failErr == nil {
							enqueue(d)
						}
					}
				}
				finished++
				if finished == enqueued {
					close(ready)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	if failErr != nil {
		return results, fmt.Errorf("mr: job %s: %w", p.Jobs[failIdx].Name, failErr)
	}
	return results, nil
}

// runSequential executes the jobs strictly in declared order: the
// reference schedule the DAG scheduler must match bit for bit.
func (e *Engine) runSequential(p *Program, working *relation.Database) ([]progResult, error) {
	results := make([]progResult, len(p.Jobs))
	for i, job := range p.Jobs {
		outs, st, err := e.RunJob(job, working)
		if err != nil {
			return results, fmt.Errorf("mr: job %s: %w", job.Name, err)
		}
		for _, r := range outs.Relations() {
			working.Put(r)
		}
		results[i] = progResult{outs: outs, stats: st, done: true}
	}
	return results, nil
}
