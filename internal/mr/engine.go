package mr

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/cost"
	"repro/internal/relation"
)

// Engine executes jobs. It is safe for concurrent use: RunJob and
// RunProgram only read the database they are given (relation.Database
// is internally locked), and all per-run state is private — each run
// builds its own task graph and worker pool.
//
// Execution is task-granular: a job is decomposed into map tasks,
// shuffle partition tasks, reduce partition tasks and output merge
// shards (see jobrun.go), all scheduled on one work-stealing pool of
// Parallelism workers (pool.go). RunProgram extends the same graph
// across jobs at relation granularity: a job's map tasks over an input
// start the moment the merge shard producing that relation completes
// (scheduler.go), so phases of dependent jobs overlap instead of
// meeting at per-job barriers. The cluster simulator still models the
// paper's per-job schedule; host scheduling only shortens wall-clock
// time.
//
// The per-record hot path is allocation-lean by design: record sizes are
// computed once at emit time, shuffle keys are byte slices carved from a
// grow-only per-map-task arena (a map task performs zero per-record key
// allocations), keys are hashed with an inlined FNV-1a (no hasher
// object), shuffle partitions are built with counted two-pass placement
// into one backing array per task, reduce-side grouping is sort-based
// with an MSD radix sort on the key bytes (see group.go and radix.go),
// and job outputs merge through a counted, pre-sized parallel merge
// (relation.Merge). None of this changes what the engine computes —
// outputs and stats are bit-for-bit identical at every parallelism
// setting and to the earlier barriered, phase-at-a-time engine.
type Engine struct {
	Cost cost.Config
	// Parallelism sizes the unified worker pool a run executes on: every
	// task of a job — and, under RunProgram, of the whole program —
	// shares these workers. 0 = GOMAXPROCS, 1 = strictly sequential.
	// Results and stats are bit-for-bit identical at every setting.
	// (Earlier engines split this into per-phase workers × concurrent
	// jobs; the task-graph scheduler has a single pool.)
	Parallelism int
	SampleEvery int // stride for Sample; 0 = 100

	// SpillThreshold enables shuffle spill-to-disk: a map task's shuffle
	// partition whose modelled bytes reach the threshold is written to a
	// temp file and streamed back by the reduce stage (see spill.go);
	// outputs and stats are bit-for-bit identical either way. 0 reads
	// the GUMBO_SPILL_THRESHOLD environment variable (bytes; unset or
	// invalid = spill off), negative disables spill unconditionally,
	// positive is the threshold in bytes.
	SpillThreshold int64
	// SpillDir is where spill files are created ("" = os.TempDir).
	SpillDir string

	// SplitThreshold enables runtime skew splitting: after shuffle, a
	// reduce partition whose modelled bytes exceed SplitThreshold × the
	// mean partition load is split at sketch-derived heavy-key
	// boundaries into sub-range reduce tasks scheduled independently
	// (see split.go); outputs and stats are bit-for-bit identical
	// either way. 0 reads the GUMBO_SKEW_SPLIT environment variable (a
	// ratio; unset or invalid = splitting off), negative disables
	// splitting unconditionally, positive is the ratio (1.5 is a
	// reasonable start: split anything half again heavier than the
	// mean).
	SplitThreshold float64
}

// govern bundles one run's resource-governance state: the byte budget
// the run charges (nil = unaccounted), the spill configuration, and
// the skew-split ratio (0 = splitting off).
type govern struct {
	budget    *Budget
	spill     *spillSet // nil = spill off
	threshold int64
	split     float64
}

// newGovern resolves the engine's spill and skew-split knobs for one
// run.
func (e *Engine) newGovern(b *Budget) govern {
	g := govern{budget: b, split: e.resolveSkewSplit()}
	t := e.SpillThreshold
	if t == 0 {
		t = envSpillThreshold()
	}
	if t > 0 {
		g.spill = newSpillSet(e.SpillDir)
		g.threshold = t
	}
	return g
}

// resolveSkewSplit returns the effective skew-split ratio (0 = off),
// applying the SplitThreshold zero-reads-environment convention.
func (e *Engine) resolveSkewSplit() float64 {
	s := e.SplitThreshold
	if s == 0 {
		s = envSkewSplit()
	}
	if s <= 0 {
		return 0
	}
	return s
}

// SkewSplitEnabled reports whether runtime skew splitting is active
// for this engine's runs — the signal plan-time skew handling
// (internal/core's static salting) uses to stand down.
func (e *Engine) SkewSplitEnabled() bool { return e.resolveSkewSplit() > 0 }

// envSkewSplit reads GUMBO_SKEW_SPLIT, the environment hook for
// enabling runtime skew splitting suite-wide (the CI skew gate's
// lever, mirroring GUMBO_SPILL_THRESHOLD).
func envSkewSplit() float64 {
	v := os.Getenv("GUMBO_SKEW_SPLIT")
	if v == "" {
		return 0
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil || f <= 0 {
		return 0
	}
	return f
}

// envSpillThreshold reads GUMBO_SPILL_THRESHOLD, the CI spill gate's
// hook for re-running the whole suite with every partition spilling.
func envSpillThreshold() int64 {
	v := os.Getenv("GUMBO_SPILL_THRESHOLD")
	if v == "" {
		return 0
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// NewEngine returns an engine with the given cost configuration.
func NewEngine(c cost.Config) *Engine { return &Engine{Cost: c} }

func (e *Engine) workers() int {
	if e.Parallelism > 0 {
		return e.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// mapTaskResult is the output of one map task.
type mapTaskResult struct {
	records []record
	bytes   int64 // modelled record bytes (keys + payloads)
}

// keyArena is the grow-only byte arena holding one map task's shuffle
// keys. Emitted keys are copied into the current chunk and referenced as
// sub-slices; when a chunk fills, a fresh one is started and the full
// chunk stays alive through the records that point into it. Emitting a
// record therefore allocates nothing per key — only one chunk per
// ~keyArenaChunk bytes of key data. Chunks are charged to the run's
// budget (nil = unaccounted) before use: the arena is one of the three
// accounted allocation sites of the memory-governance contract.
type keyArena struct {
	buf    []byte // current chunk; len grows monotonically within a chunk
	budget *Budget
}

const keyArenaChunk = 1 << 16

// hold copies key into the arena and returns the arena-backed copy,
// capped so later appends cannot clobber neighbouring keys.
func (a *keyArena) hold(key []byte) []byte {
	if len(a.buf)+len(key) > cap(a.buf) {
		n := keyArenaChunk
		if len(key) > n {
			n = len(key)
		}
		a.buf = grabBytes(a.budget, n)[:0]
	}
	start := len(a.buf)
	a.buf = append(a.buf, key...)
	return a.buf[start:len(a.buf):len(a.buf)]
}

// emitInto builds the engine's map-task emit function: the key is copied
// into the task arena (the Emit key-ownership contract) and the record's
// modelled size is computed once. Factored out of the map task so the
// zero-allocation guarantee is testable on the exact production path
// (TestEmitPathZeroKeyAllocs).
func emitInto(arena *keyArena, recs *[]record) Emit {
	return func(key []byte, msg Message) {
		k := arena.hold(key)
		*recs = append(*recs, record{key: k, msg: msg, size: KeyBytes(k) + msg.SizeBytes()})
	}
}

// RunJob executes the job against db and returns its output relations
// and measured statistics. The job runs as its own task graph on a
// pool of Parallelism workers; RunProgram schedules many jobs onto one
// shared pool instead of calling RunJob per job.
func (e *Engine) RunJob(job *Job, db *relation.Database) (*relation.Database, JobStats, error) {
	//lint:ignore ctxpass RunJob is the documented no-cancellation entry point (and runSequential's oracle path); callers below the API layer use RunJobCtx
	return e.RunJobCtx(context.Background(), job, db)
}

// RunJobCtx is RunJob honoring ctx. On cancellation the job's task
// graph stops at the next task boundary, the returned database is nil,
// and the error wraps ctx.Err() (context.Canceled or
// context.DeadlineExceeded via errors.Is). The input database is never
// modified either way.
func (e *Engine) RunJobCtx(ctx context.Context, job *Job, db *relation.Database) (*relation.Database, JobStats, error) {
	if err := job.validate(); err != nil {
		return nil, JobStats{}, err
	}
	rels := make([]*relation.Relation, len(job.Inputs))
	for i, name := range job.Inputs {
		rel := db.Relation(name)
		if rel == nil {
			return nil, JobStats{}, fmt.Errorf("mr: job %s: unknown input relation %q", job.Name, name)
		}
		rels[i] = rel
	}
	gov := e.newGovern(nil)
	defer gov.spill.cleanup()
	jr := e.newJobRun(job, gov, nil, nil)
	err := runTasks(ctx, e.workers(), func(c *poolCtx) {
		jr.seed(c)
		for part, rel := range rels {
			jr.inputReady(c, part, rel)
		}
	})
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, JobStats{}, fmt.Errorf("mr: job %s canceled: %w", job.Name, err)
		}
		return nil, JobStats{}, fmt.Errorf("mr: job %s aborted: %w", job.Name, err)
	}
	return jr.outputDB(), jr.stats, nil
}

// outputOrder returns declared output names sorted for determinism.
func outputOrder(outputs map[string]int) []string {
	names := make([]string, 0, len(outputs))
	for n := range outputs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// hashKey is FNV-1a over the key bytes, inlined so hashing a record
// costs no hasher object. It is bit-identical to hash/fnv's New32a over
// the same bytes, which earlier engine versions used (first via a hasher
// object, then inlined over string keys): shuffle partition assignments
// — and therefore per-reducer loads — are unchanged.
func hashKey(key []byte) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return h
}

// parallelFor runs fn(0..n-1) on up to `workers` goroutines. Indices are
// handed out as contiguous chunks through a single atomic counter — no
// mutex on the hot path, and chunking keeps tiny per-index bodies from
// thrashing the counter. On error the remaining chunks are abandoned and
// the lowest-indexed recorded error is returned.
//
// The engine's stages run on the task pool (pool.go); parallelFor
// remains the fan-out primitive for fine-grained work nested inside one
// task, such as the parallel top radix level (radix.go).
func parallelFor(workers, n int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	chunk := n / (workers * 8)
	if chunk < 1 {
		chunk = 1
	}
	var (
		next   atomic.Int64
		failed atomic.Bool
		mu     sync.Mutex
		errIdx int
		err    error
	)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		//lint:ignore rawgo parallelFor is a sanctioned concurrency primitive: helpers are wg-joined before return and panics surface via the barrier
		go func() {
			defer wg.Done()
			for !failed.Load() {
				start := int(next.Add(int64(chunk))) - chunk
				if start >= n {
					return
				}
				end := start + chunk
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					if e := fn(i); e != nil {
						mu.Lock()
						if err == nil || i < errIdx {
							err, errIdx = e, i
						}
						mu.Unlock()
						failed.Store(true)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	return err
}

// Sample runs the job's mapper over every SampleEvery-th tuple of each
// input and extrapolates the intermediate size per input: the sampling
// step Gumbo uses to estimate M_i before running a job (§5.1 opt (3)).
// Sampling only counts — it never materializes records, so it allocates
// nothing beyond what the mapper itself emits. The running record and
// byte counters are shared by one emit closure across inputs and reset
// per input: each returned PartStats reflects exactly one input.
func (e *Engine) Sample(job *Job, db *relation.Database) ([]PartStats, error) {
	stride := e.SampleEvery
	if stride <= 0 {
		stride = 100
	}
	parts := make([]PartStats, 0, len(job.Inputs))
	var records int64
	var bytes int64
	emit := func(key []byte, msg Message) {
		records++
		bytes += KeyBytes(key) + msg.SizeBytes()
	}
	for _, name := range job.Inputs {
		rel := db.Relation(name)
		if rel == nil {
			return nil, fmt.Errorf("mr: sample: unknown input relation %q", name)
		}
		records, bytes = 0, 0 // counters are per input
		sampled := 0
		for i := 0; i < rel.Size(); i += stride {
			job.Mapper.Map(name, i, rel.Tuple(i), emit)
			sampled++
		}
		scale := 0.0
		if sampled > 0 {
			scale = float64(rel.Size()) / float64(sampled)
		}
		inputMB := mbOf(rel.Bytes())
		parts = append(parts, PartStats{
			Input:   name,
			InputMB: inputMB,
			InterMB: mbOf(bytes) * scale,
			Records: int64(float64(records) * scale),
			Mappers: e.Cost.Mappers(inputMB),
		})
	}
	return parts, nil
}
