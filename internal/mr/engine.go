package mr

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/cost"
	"repro/internal/relation"
)

// Engine executes jobs. It is safe for concurrent use by independent
// jobs: RunJob only reads the database it is given (relation.Database is
// internally locked), and all per-job state is private. RunProgram
// exploits this by scheduling dependency-independent jobs of a program
// concurrently on the host (the cluster simulator still models parallel
// net time; host concurrency only shortens wall-clock time).
//
// The per-record hot path is allocation-lean by design: record sizes are
// computed once at emit time, shuffle keys are byte slices carved from a
// grow-only per-map-task arena (a map task performs zero per-record key
// allocations), keys are hashed with an inlined FNV-1a (no hasher
// object), shuffle partitions are built with counted two-pass placement
// into one backing array per task, reduce-side grouping is sort-based
// with an MSD radix sort on the key bytes (see group.go and radix.go),
// and job outputs merge through a counted, pre-sized parallel merge
// (relation.Merge). None of this changes what the engine computes —
// outputs and stats are bit-for-bit identical at every parallelism
// setting and to the earlier string-keyed, hash-grouping engine.
type Engine struct {
	Cost        cost.Config
	Parallelism int // worker goroutines per phase; 0 = GOMAXPROCS
	// JobParallelism bounds how many dependency-satisfied jobs RunProgram
	// executes concurrently; 0 = GOMAXPROCS (same convention as
	// Parallelism), 1 = strictly sequential. Results and stats are
	// bit-for-bit identical at every setting.
	JobParallelism int
	SampleEvery    int // stride for Sample; 0 = 100
}

// NewEngine returns an engine with the given cost configuration.
func NewEngine(c cost.Config) *Engine { return &Engine{Cost: c} }

func (e *Engine) workers() int {
	if e.Parallelism > 0 {
		return e.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

func (e *Engine) jobWorkers() int {
	if e.JobParallelism > 0 {
		return e.JobParallelism
	}
	return runtime.GOMAXPROCS(0)
}

// mapTaskResult is the output of one map task.
type mapTaskResult struct {
	records []record
	bytes   int64 // modelled record bytes (keys + payloads)
}

// keyArena is the grow-only byte arena holding one map task's shuffle
// keys. Emitted keys are copied into the current chunk and referenced as
// sub-slices; when a chunk fills, a fresh one is started and the full
// chunk stays alive through the records that point into it. Emitting a
// record therefore allocates nothing per key — only one chunk per
// ~keyArenaChunk bytes of key data.
type keyArena struct {
	buf []byte // current chunk; len grows monotonically within a chunk
}

const keyArenaChunk = 1 << 16

// hold copies key into the arena and returns the arena-backed copy,
// capped so later appends cannot clobber neighbouring keys.
func (a *keyArena) hold(key []byte) []byte {
	if len(a.buf)+len(key) > cap(a.buf) {
		n := keyArenaChunk
		if len(key) > n {
			n = len(key)
		}
		a.buf = make([]byte, 0, n)
	}
	start := len(a.buf)
	a.buf = append(a.buf, key...)
	return a.buf[start:len(a.buf):len(a.buf)]
}

// emitInto builds the engine's map-task emit function: the key is copied
// into the task arena (the Emit key-ownership contract) and the record's
// modelled size is computed once. Factored out of RunJob so the
// zero-allocation guarantee is testable on the exact production path
// (TestEmitPathZeroKeyAllocs).
func emitInto(arena *keyArena, recs *[]record) Emit {
	return func(key []byte, msg Message) {
		k := arena.hold(key)
		*recs = append(*recs, record{key: k, msg: msg, size: KeyBytes(k) + msg.SizeBytes()})
	}
}

// RunJob executes the job against db and returns its output relations
// and measured statistics.
func (e *Engine) RunJob(job *Job, db *relation.Database) (*relation.Database, JobStats, error) {
	if job.Mapper == nil || job.Reducer == nil {
		return nil, JobStats{}, fmt.Errorf("mr: job %s lacks a mapper or reducer", job.Name)
	}
	inflate := job.InflateIntermediate
	if inflate <= 0 {
		inflate = 1.0
	}
	stats := JobStats{Name: job.Name}

	// ---- Map phase ----
	type taskSpec struct {
		input    string
		partIdx  int
		rel      *relation.Relation
		from, to int // tuple range
	}
	var tasks []taskSpec
	for _, name := range job.Inputs {
		rel := db.Relation(name)
		if rel == nil {
			return nil, JobStats{}, fmt.Errorf("mr: job %s: unknown input relation %q", job.Name, name)
		}
		inputMB := mbOf(rel.Bytes())
		m := e.Cost.Mappers(inputMB)
		if m > rel.Size() && rel.Size() > 0 {
			m = rel.Size()
		}
		if rel.Size() == 0 {
			m = 1
		}
		partIdx := len(stats.Parts)
		stats.Parts = append(stats.Parts, PartStats{Input: name, InputMB: inputMB, Mappers: m})
		n := rel.Size()
		for t := 0; t < m; t++ {
			from := n * t / m
			to := n * (t + 1) / m
			tasks = append(tasks, taskSpec{input: name, partIdx: partIdx, rel: rel, from: from, to: to})
		}
	}
	// recsPerKTuples[part] is a running estimate of map output records
	// per 1024 input tuples, published by finished tasks and used to
	// pre-size later tasks' record buffers. Gumbo's mappers are near
	// uniform per input (the same property Engine.Sample relies on to
	// extrapolate M_i from a strided sample), so the estimate converges
	// after the part's first task; the first task falls back to one
	// record per tuple, the common case for request/assert mappers. The
	// estimate only sets capacity — results never depend on it.
	recsPerKTuples := make([]atomic.Int64, len(stats.Parts))
	results := make([]mapTaskResult, len(tasks))
	if err := parallelFor(e.workers(), len(tasks), func(ti int) error {
		ts := tasks[ti]
		n := ts.to - ts.from
		capHint := n
		if est := recsPerKTuples[ts.partIdx].Load(); est > 0 {
			capHint = int(est*int64(n)/1024) + 8
		}
		recs := make([]record, 0, capHint)
		var arena keyArena
		emit := emitInto(&arena, &recs)
		for i := ts.from; i < ts.to; i++ {
			job.Mapper.Map(ts.input, i, ts.rel.Tuple(i), emit)
		}
		if n > 0 {
			recsPerKTuples[ts.partIdx].Store(int64(len(recs)) * 1024 / int64(n))
		}
		if job.Packing {
			recs = packRecords(recs)
		}
		var bytes int64
		for _, r := range recs {
			bytes += r.size
		}
		results[ti] = mapTaskResult{records: recs, bytes: bytes}
		return nil
	}); err != nil {
		return nil, JobStats{}, err
	}
	for ti, ts := range tasks {
		p := &stats.Parts[ts.partIdx]
		p.InterMB += mbOf(results[ti].bytes) * inflate
		p.Records += int64(len(results[ti].records))
	}
	stats.MapTasks = len(tasks)

	// ---- Reducer count (§5.1 optimization (3)) ----
	reducers := job.Reducers
	if reducers <= 0 {
		perReducer := e.Cost.ReducerDataMB
		if job.ReducerInputMB > 0 {
			// ReducerInputMB is expressed at full scale (Pig's 1 GB of
			// map input per reducer); convert to the running scale.
			scale := e.Cost.Scale
			if scale <= 0 {
				scale = 1
			}
			perReducer = job.ReducerInputMB * scale
		}
		basis := stats.InterMB()
		if job.ReducersFromInput {
			basis = stats.InputMB()
		}
		if perReducer <= 0 {
			reducers = 1
		} else {
			tmp := e.Cost
			tmp.ReducerDataMB = perReducer
			reducers = tmp.Reducers(basis)
		}
	}
	if reducers < 1 {
		reducers = 1
	}
	stats.Reducers = reducers
	stats.ReduceTasks = reducers

	// ---- Shuffle: partition records by key hash, in map-task order ----
	// Each map task partitions its own output independently; per-reducer
	// slices are then concatenated in task order, so the records each
	// reducer sees — and the measured loads — are identical to a serial
	// pass over the tasks. Placement is a counted two-pass: count each
	// reducer's records, then carve per-reducer sub-slices out of one
	// backing array, so a task allocates three slices regardless of the
	// reducer count instead of growing `reducers` appends.
	type taskPartition struct {
		parts [][]record
		loads []int64
	}
	taskParts := make([]taskPartition, len(results))
	if err := parallelFor(e.workers(), len(results), func(ti int) error {
		recs := results[ti].records
		tp := taskPartition{
			parts: make([][]record, reducers),
			loads: make([]int64, reducers),
		}
		if len(recs) > 0 {
			tc := make([]int32, len(recs)+reducers) // targets and counts, one allocation
			target, counts := tc[:len(recs)], tc[len(recs):]
			for i, r := range recs {
				p := int32(hashKey(r.key) % uint32(reducers))
				target[i] = p
				counts[p]++
				tp.loads[p] += r.size
			}
			buf := make([]record, len(recs))
			off := 0
			for p := 0; p < reducers; p++ {
				c := int(counts[p])
				tp.parts[p] = buf[off : off : off+c]
				off += c
			}
			for i, r := range recs {
				p := target[i]
				tp.parts[p] = append(tp.parts[p], r)
			}
		}
		taskParts[ti] = tp
		return nil
	}); err != nil {
		return nil, JobStats{}, err
	}
	partitions := make([][]record, reducers)
	loads := make([]int64, reducers)
	if err := parallelFor(e.workers(), reducers, func(p int) error {
		n := 0
		for ti := range taskParts {
			n += len(taskParts[ti].parts[p])
		}
		part := make([]record, 0, n)
		var load int64
		for ti := range taskParts {
			part = append(part, taskParts[ti].parts[p]...)
			load += taskParts[ti].loads[p]
		}
		partitions[p] = part
		loads[p] = load
		return nil
	}); err != nil {
		return nil, JobStats{}, err
	}
	stats.ReduceLoadMB = make([]float64, reducers)
	for i, l := range loads {
		stats.ReduceLoadMB[i] = mbOf(l) * inflate
	}

	// ---- Reduce phase: sort each partition by key, walk key runs ----
	// When there are fewer reduce partitions than phase workers, the
	// spare workers parallelize each partition's key sort (the top radix
	// level fans out across them); the sorted order — and everything
	// downstream — is identical either way.
	sortWorkers := 1
	if w := e.workers(); w > reducers {
		sortWorkers = w / reducers
	}
	outs := make([]*Output, reducers)
	if err := parallelFor(e.workers(), reducers, func(ri int) error {
		out := newOutput(job.Outputs)
		outs[ri] = out
		part := partitions[ri]
		forEachGroupIdx(part, sortIndexByKey(part, sortWorkers), func(key []byte, msgs []Message) {
			job.Reducer.Reduce(key, msgs, out)
		})
		return nil
	}); err != nil {
		return nil, JobStats{}, err
	}

	// ---- Merge outputs deterministically, compute K ----
	// Reduce-task outputs are unioned in reducer index order with
	// first-occurrence dedup — bit-for-bit the order a serial
	// Relation.Add loop would produce — by relation.Merge, which counts,
	// pre-sizes and parallelizes the union so the job epilogue is no
	// longer a serial per-tuple map walk.
	outDB := relation.NewDatabase()
	srcs := make([]*relation.Relation, 0, len(outs))
	for _, name := range outputOrder(job.Outputs) {
		srcs = srcs[:0]
		for _, o := range outs {
			if r := o.rels[name]; r != nil {
				srcs = append(srcs, r)
			}
		}
		merged := relation.Merge(name, job.Outputs[name], srcs, e.workers())
		outDB.Put(merged)
		stats.OutputMB += mbOf(merged.Bytes())
	}
	return outDB, stats, nil
}

// outputOrder returns declared output names sorted for determinism.
func outputOrder(outputs map[string]int) []string {
	names := make([]string, 0, len(outputs))
	for n := range outputs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// hashKey is FNV-1a over the key bytes, inlined so hashing a record
// costs no hasher object. It is bit-identical to hash/fnv's New32a over
// the same bytes, which earlier engine versions used (first via a hasher
// object, then inlined over string keys): shuffle partition assignments
// — and therefore per-reducer loads — are unchanged.
func hashKey(key []byte) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return h
}

// parallelFor runs fn(0..n-1) on up to `workers` goroutines. Indices are
// handed out as contiguous chunks through a single atomic counter — no
// mutex on the hot path, and chunking keeps tiny per-index bodies from
// thrashing the counter. On error the remaining chunks are abandoned and
// the lowest-indexed recorded error is returned.
func parallelFor(workers, n int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	chunk := n / (workers * 8)
	if chunk < 1 {
		chunk = 1
	}
	var (
		next   atomic.Int64
		failed atomic.Bool
		mu     sync.Mutex
		errIdx int
		err    error
	)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for !failed.Load() {
				start := int(next.Add(int64(chunk))) - chunk
				if start >= n {
					return
				}
				end := start + chunk
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					if e := fn(i); e != nil {
						mu.Lock()
						if err == nil || i < errIdx {
							err, errIdx = e, i
						}
						mu.Unlock()
						failed.Store(true)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	return err
}

// Sample runs the job's mapper over every SampleEvery-th tuple of each
// input and extrapolates the intermediate size per input: the sampling
// step Gumbo uses to estimate M_i before running a job (§5.1 opt (3)).
// Sampling only counts — it never materializes records, so it allocates
// nothing beyond what the mapper itself emits. The running record and
// byte counters are shared by one emit closure across inputs and reset
// per input: each returned PartStats reflects exactly one input.
func (e *Engine) Sample(job *Job, db *relation.Database) ([]PartStats, error) {
	stride := e.SampleEvery
	if stride <= 0 {
		stride = 100
	}
	parts := make([]PartStats, 0, len(job.Inputs))
	var records int64
	var bytes int64
	emit := func(key []byte, msg Message) {
		records++
		bytes += KeyBytes(key) + msg.SizeBytes()
	}
	for _, name := range job.Inputs {
		rel := db.Relation(name)
		if rel == nil {
			return nil, fmt.Errorf("mr: sample: unknown input relation %q", name)
		}
		records, bytes = 0, 0 // counters are per input
		sampled := 0
		for i := 0; i < rel.Size(); i += stride {
			job.Mapper.Map(name, i, rel.Tuple(i), emit)
			sampled++
		}
		scale := 0.0
		if sampled > 0 {
			scale = float64(rel.Size()) / float64(sampled)
		}
		inputMB := mbOf(rel.Bytes())
		parts = append(parts, PartStats{
			Input:   name,
			InputMB: inputMB,
			InterMB: mbOf(bytes) * scale,
			Records: int64(float64(records) * scale),
			Mappers: e.Cost.Mappers(inputMB),
		})
	}
	return parts, nil
}
