package mr

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"sync"

	"repro/internal/cost"
	"repro/internal/relation"
)

// Engine executes jobs. It is safe for concurrent use by independent
// jobs: RunJob only reads the database it is given (relation.Database is
// internally locked), and all per-job state is private. RunProgram
// exploits this by scheduling dependency-independent jobs of a program
// concurrently on the host (the cluster simulator still models parallel
// net time; host concurrency only shortens wall-clock time).
type Engine struct {
	Cost        cost.Config
	Parallelism int // worker goroutines per phase; 0 = GOMAXPROCS
	// JobParallelism bounds how many dependency-satisfied jobs RunProgram
	// executes concurrently; 0 = GOMAXPROCS (same convention as
	// Parallelism), 1 = strictly sequential. Results and stats are
	// bit-for-bit identical at every setting.
	JobParallelism int
	SampleEvery    int // stride for Sample; 0 = 100
}

// NewEngine returns an engine with the given cost configuration.
func NewEngine(c cost.Config) *Engine { return &Engine{Cost: c} }

func (e *Engine) workers() int {
	if e.Parallelism > 0 {
		return e.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

func (e *Engine) jobWorkers() int {
	if e.JobParallelism > 0 {
		return e.JobParallelism
	}
	return runtime.GOMAXPROCS(0)
}

// record is one map output record: a key and a (possibly packed) message.
type record struct {
	key string
	msg Message
}

// mapTaskResult is the output of one map task.
type mapTaskResult struct {
	records []record
	bytes   int64 // modelled record bytes (keys + payloads)
}

// RunJob executes the job against db and returns its output relations
// and measured statistics.
func (e *Engine) RunJob(job *Job, db *relation.Database) (*relation.Database, JobStats, error) {
	if job.Mapper == nil || job.Reducer == nil {
		return nil, JobStats{}, fmt.Errorf("mr: job %s lacks a mapper or reducer", job.Name)
	}
	inflate := job.InflateIntermediate
	if inflate <= 0 {
		inflate = 1.0
	}
	stats := JobStats{Name: job.Name}

	// ---- Map phase ----
	type taskSpec struct {
		input    string
		partIdx  int
		rel      *relation.Relation
		from, to int // tuple range
	}
	var tasks []taskSpec
	for _, name := range job.Inputs {
		rel := db.Relation(name)
		if rel == nil {
			return nil, JobStats{}, fmt.Errorf("mr: job %s: unknown input relation %q", job.Name, name)
		}
		inputMB := float64(rel.Bytes()) / MB
		m := e.Cost.Mappers(inputMB)
		if m > rel.Size() && rel.Size() > 0 {
			m = rel.Size()
		}
		if rel.Size() == 0 {
			m = 1
		}
		partIdx := len(stats.Parts)
		stats.Parts = append(stats.Parts, PartStats{Input: name, InputMB: inputMB, Mappers: m})
		n := rel.Size()
		for t := 0; t < m; t++ {
			from := n * t / m
			to := n * (t + 1) / m
			tasks = append(tasks, taskSpec{input: name, partIdx: partIdx, rel: rel, from: from, to: to})
		}
	}
	results := make([]mapTaskResult, len(tasks))
	if err := parallelFor(e.workers(), len(tasks), func(ti int) error {
		ts := tasks[ti]
		var recs []record
		emit := func(key string, msg Message) {
			recs = append(recs, record{key: key, msg: msg})
		}
		for i := ts.from; i < ts.to; i++ {
			job.Mapper.Map(ts.input, i, ts.rel.Tuple(i), emit)
		}
		if job.Packing {
			recs = packRecords(recs)
		}
		var bytes int64
		for _, r := range recs {
			bytes += KeyBytes(r.key) + r.msg.SizeBytes()
		}
		results[ti] = mapTaskResult{records: recs, bytes: bytes}
		return nil
	}); err != nil {
		return nil, JobStats{}, err
	}
	for ti, ts := range tasks {
		p := &stats.Parts[ts.partIdx]
		p.InterMB += float64(results[ti].bytes) / MB * inflate
		p.Records += int64(len(results[ti].records))
	}
	stats.MapTasks = len(tasks)

	// ---- Reducer count (§5.1 optimization (3)) ----
	reducers := job.Reducers
	if reducers <= 0 {
		perReducer := e.Cost.ReducerDataMB
		if job.ReducerInputMB > 0 {
			// ReducerInputMB is expressed at full scale (Pig's 1 GB of
			// map input per reducer); convert to the running scale.
			scale := e.Cost.Scale
			if scale <= 0 {
				scale = 1
			}
			perReducer = job.ReducerInputMB * scale
		}
		basis := stats.InterMB()
		if job.ReducersFromInput {
			basis = stats.InputMB()
		}
		if perReducer <= 0 {
			reducers = 1
		} else {
			tmp := e.Cost
			tmp.ReducerDataMB = perReducer
			reducers = tmp.Reducers(basis)
		}
	}
	if reducers < 1 {
		reducers = 1
	}
	stats.Reducers = reducers
	stats.ReduceTasks = reducers

	// ---- Shuffle: partition records by key hash, in map-task order ----
	// Each map task partitions its own output independently; per-reducer
	// slices are then concatenated in task order, so the records each
	// reducer sees — and the measured loads — are identical to a serial
	// pass over the tasks.
	type taskPartition struct {
		parts [][]record
		loads []int64
	}
	taskParts := make([]taskPartition, len(results))
	if err := parallelFor(e.workers(), len(results), func(ti int) error {
		tp := taskPartition{
			parts: make([][]record, reducers),
			loads: make([]int64, reducers),
		}
		for _, r := range results[ti].records {
			p := int(hashKey(r.key) % uint32(reducers))
			tp.parts[p] = append(tp.parts[p], r)
			tp.loads[p] += KeyBytes(r.key) + r.msg.SizeBytes()
		}
		taskParts[ti] = tp
		return nil
	}); err != nil {
		return nil, JobStats{}, err
	}
	partitions := make([][]record, reducers)
	loads := make([]int64, reducers)
	if err := parallelFor(e.workers(), reducers, func(p int) error {
		n := 0
		for ti := range taskParts {
			n += len(taskParts[ti].parts[p])
		}
		part := make([]record, 0, n)
		var load int64
		for ti := range taskParts {
			part = append(part, taskParts[ti].parts[p]...)
			load += taskParts[ti].loads[p]
		}
		partitions[p] = part
		loads[p] = load
		return nil
	}); err != nil {
		return nil, JobStats{}, err
	}
	stats.ReduceLoadMB = make([]float64, reducers)
	for i, l := range loads {
		stats.ReduceLoadMB[i] = float64(l) / MB * inflate
	}

	// ---- Reduce phase ----
	outs := make([]*Output, reducers)
	if err := parallelFor(e.workers(), reducers, func(ri int) error {
		out := newOutput(job.Outputs)
		outs[ri] = out
		groups := make(map[string][]Message)
		var keys []string
		for _, r := range partitions[ri] {
			msgs, seen := groups[r.key]
			if !seen {
				keys = append(keys, r.key)
			}
			if packed, ok := r.msg.(Packed); ok {
				msgs = append(msgs, packed.Msgs...)
			} else {
				msgs = append(msgs, r.msg)
			}
			groups[r.key] = msgs
		}
		sort.Strings(keys)
		for _, k := range keys {
			job.Reducer.Reduce(k, groups[k], out)
		}
		return nil
	}); err != nil {
		return nil, JobStats{}, err
	}

	// ---- Merge outputs deterministically, compute K ----
	outDB := relation.NewDatabase()
	for _, name := range outputOrder(job.Outputs) {
		merged := relation.New(name, job.Outputs[name])
		for _, o := range outs {
			if r := o.rels[name]; r != nil {
				for _, t := range r.Tuples() {
					merged.Add(t)
				}
			}
		}
		outDB.Put(merged)
		stats.OutputMB += float64(merged.Bytes()) / MB
	}
	return outDB, stats, nil
}

// outputOrder returns declared output names sorted for determinism.
func outputOrder(outputs map[string]int) []string {
	names := make([]string, 0, len(outputs))
	for n := range outputs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// packRecords groups same-key records of one map task into single packed
// records, preserving first-occurrence key order.
func packRecords(recs []record) []record {
	groups := make(map[string][]Message, len(recs))
	var order []string
	for _, r := range recs {
		if _, seen := groups[r.key]; !seen {
			order = append(order, r.key)
		}
		groups[r.key] = append(groups[r.key], r.msg)
	}
	out := make([]record, 0, len(order))
	for _, k := range order {
		msgs := groups[k]
		if len(msgs) == 1 {
			out = append(out, record{key: k, msg: msgs[0]})
		} else {
			out = append(out, record{key: k, msg: Packed{Msgs: msgs}})
		}
	}
	return out
}

func hashKey(key string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(key))
	return h.Sum32()
}

// parallelFor runs fn(0..n-1) on up to `workers` goroutines and returns
// the first error.
func parallelFor(workers, n int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		next int
		err  error
	)
	worker := func() {
		defer wg.Done()
		for {
			mu.Lock()
			if err != nil || next >= n {
				mu.Unlock()
				return
			}
			i := next
			next++
			mu.Unlock()
			if e := fn(i); e != nil {
				mu.Lock()
				if err == nil {
					err = e
				}
				mu.Unlock()
				return
			}
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go worker()
	}
	wg.Wait()
	return err
}

// Sample runs the job's mapper over every SampleEvery-th tuple of each
// input and extrapolates the intermediate size per input: the sampling
// step Gumbo uses to estimate M_i before running a job (§5.1 opt (3)).
func (e *Engine) Sample(job *Job, db *relation.Database) ([]PartStats, error) {
	stride := e.SampleEvery
	if stride <= 0 {
		stride = 100
	}
	var parts []PartStats
	for _, name := range job.Inputs {
		rel := db.Relation(name)
		if rel == nil {
			return nil, fmt.Errorf("mr: sample: unknown input relation %q", name)
		}
		var recs []record
		emit := func(key string, msg Message) { recs = append(recs, record{key, msg}) }
		sampled := 0
		for i := 0; i < rel.Size(); i += stride {
			job.Mapper.Map(name, i, rel.Tuple(i), emit)
			sampled++
		}
		var bytes int64
		for _, r := range recs {
			bytes += KeyBytes(r.key) + r.msg.SizeBytes()
		}
		scale := 0.0
		if sampled > 0 {
			scale = float64(rel.Size()) / float64(sampled)
		}
		inputMB := float64(rel.Bytes()) / MB
		parts = append(parts, PartStats{
			Input:   name,
			InputMB: inputMB,
			InterMB: float64(bytes) / MB * scale,
			Records: int64(float64(len(recs)) * scale),
			Mappers: e.Cost.Mappers(inputMB),
		})
	}
	return parts, nil
}
