package mr

import (
	"context"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

// TestPoolRunsEveryTask checks quiescence over a recursive spawn tree:
// runTasks must not return before every transitively spawned task ran.
func TestPoolRunsEveryTask(t *testing.T) {
	for _, workers := range []int{1, 2, 8, runtime.GOMAXPROCS(0)} {
		var ran atomic.Int64
		var spawnTree func(c *poolCtx, depth int)
		spawnTree = func(c *poolCtx, depth int) {
			ran.Add(1)
			if depth == 0 {
				return
			}
			for k := 0; k < 3; k++ {
				d := depth - 1
				c.spawn(func(c *poolCtx) { spawnTree(c, d) })
			}
		}
		runTasks(context.Background(), workers, func(c *poolCtx) { spawnTree(c, 5) })
		// Nodes of a 3-ary tree of depth 5: (3^6 - 1) / 2.
		if want := int64(364); ran.Load() != want {
			t.Errorf("workers=%d: ran %d tasks, want %d", workers, ran.Load(), want)
		}
	}
}

// TestPoolStealing proves idle workers steal queued work: a task that
// blocks until a sibling task runs can only finish if another worker
// takes the sibling from the first worker's deque.
func TestPoolStealing(t *testing.T) {
	release := make(chan struct{})
	runTasks(context.Background(), 2, func(c *poolCtx) {
		c.spawn(func(c *poolCtx) { close(release) }) // stolen by the idle worker
		c.spawn(func(c *poolCtx) {})                 // keeps LIFO pop busy
		<-release                                    //lint:ignore taskblock the deliberate block IS the test: it deadlocks unless the idle worker steals the sibling task
	})
}

// TestPoolPanicPropagates checks a task panic is re-raised on the
// runTasks caller, as the engine's panic contract requires.
func TestPoolPanicPropagates(t *testing.T) {
	defer func() {
		if v := recover(); v != "boom" {
			t.Fatalf("recovered %v, want boom", v)
		}
	}()
	runTasks(context.Background(), 4, func(c *poolCtx) {
		for i := 0; i < 8; i++ {
			c.spawn(func(c *poolCtx) {})
		}
		panic("boom")
	})
}

// TestPoolPanicAbandonsQueuedTasks pins the abort contract: after a
// task panic, queued tasks are abandoned, not drained. With a single
// worker this is deterministic — the seed panics before any spawned
// task can run, so none may execute.
func TestPoolPanicAbandonsQueuedTasks(t *testing.T) {
	var ran atomic.Int64
	func() {
		defer func() { recover() }()
		runTasks(context.Background(), 1, func(c *poolCtx) {
			for i := 0; i < 8; i++ {
				c.spawn(func(c *poolCtx) { ran.Add(1) })
			}
			panic("boom")
		})
	}()
	if ran.Load() != 0 {
		t.Errorf("%d queued tasks ran after the pool aborted", ran.Load())
	}
}

// TestPoolPanicValueAcrossSteal pins re-raise fidelity: the value a
// stolen task panics with reaches the runTasks caller unwrapped — the
// identical value, not a copy or a formatted rendering — even though
// the panic crosses from the thief worker to the caller's goroutine.
func TestPoolPanicValueAcrossSteal(t *testing.T) {
	type boom struct{ code int }
	val := &boom{code: 42}
	var started atomic.Bool
	defer func() {
		if v := recover(); v != val {
			t.Fatalf("recovered %#v, want the original panic value %p", v, val)
		}
	}()
	runTasks(context.Background(), 2, func(c *poolCtx) {
		c.spawn(func(c *poolCtx) {
			started.Store(true)
			panic(val)
		})
		// Spin (no blocking ops in a pool task) until the sibling runs:
		// this worker is busy, so only a thief can have started it.
		for !started.Load() {
			runtime.Gosched()
		}
	})
	t.Fatal("runTasks returned without re-raising the task panic")
}

// TestPoolSpawnAfterQuiescencePanics pins misuse detection: a poolCtx
// retained past its runTasks call must not queue work onto the dead
// pool silently — the workers are gone and the task would never run.
func TestPoolSpawnAfterQuiescencePanics(t *testing.T) {
	var leaked *poolCtx
	runTasks(context.Background(), 2, func(c *poolCtx) { leaked = c })
	defer func() {
		v := recover()
		s, ok := v.(string)
		if !ok || !strings.Contains(s, "spawn after quiescence") {
			t.Fatalf("recovered %#v, want the spawn-after-quiescence panic", v)
		}
	}()
	leaked.spawn(func(c *poolCtx) {})
	t.Fatal("spawn on a quiescent pool returned normally")
}
