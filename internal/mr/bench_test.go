package mr

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/relation"
)

// benchShuffleDB builds a semi-join input large enough that RunJob's
// map/shuffle/reduce hot path dominates: 50k guard tuples over 509 join
// keys plus a small, selective conditional relation (8 matching keys, so
// reducer output stays tiny and the measurement tracks record flow, not
// output-relation construction).
func benchShuffleDB() *relation.Database {
	tuples := make([]relation.Tuple, 0, 50000)
	for i := int64(0); i < 50000; i++ {
		tuples = append(tuples, tup(i, i%509))
	}
	cond := make([]relation.Tuple, 0, 8)
	for i := int64(0); i < 8; i++ {
		cond = append(cond, tup(i*11))
	}
	db := relation.NewDatabase()
	db.Put(relation.FromTuples("R", 2, tuples))
	db.Put(relation.FromTuples("S", 1, cond))
	return db
}

// benchShuffleJob is semijoinJob with the mapper's shuffle keys
// precomputed per join value and the reducer's output tuple
// preconstructed: emitting allocates nothing on either side, so the
// benchmark isolates the engine's per-record work (record handling,
// packing, shuffle partitioning, grouping, output dedup, accounting)
// from key and tuple construction, which BenchmarkMSJJob at the repo
// root covers.
func benchShuffleJob(packing bool) *Job {
	keys := make([][]byte, 509)
	for v := range keys {
		keys[v] = []byte(tup(int64(v)).Key())
	}
	// Preconstructed messages and output tuple: emitting boxes no
	// interface value and reducing builds no tuples, so allocs/op counts
	// only what the engine itself does per record.
	var req Message = intMsg(1000)
	var assert Message = intMsg(-1)
	zOut := tup(0, 0)
	job := semijoinJob(packing)
	job.Mapper = MapperFunc(func(input string, id int, t relation.Tuple, emit Emit) {
		switch input {
		case "R":
			emit(keys[t[1]], req)
		case "S":
			emit(keys[t[0]], assert)
		}
	})
	job.Reducer = ReducerFunc(func(key []byte, msgs []Message, out *Output) {
		hasAssert := false
		for _, m := range msgs {
			if m.(intMsg) == -1 {
				hasAssert = true
				break
			}
		}
		if !hasAssert {
			return
		}
		for _, m := range msgs {
			if m.(intMsg) >= 1000 {
				out.Add("Z", zOut)
			}
		}
	})
	return job
}

// BenchmarkRunJobShuffle measures one full packed semi-join job — map,
// pack, shuffle partitioning, sort-based reduce, merge — end to end.
// allocs/op is the headline number: the engine's hot path should stay
// allocation-lean as records flow through every phase.
func BenchmarkRunJobShuffle(b *testing.B) {
	db := benchShuffleDB()
	e := NewEngine(cost.Default().Scaled(0.001))
	job := benchShuffleJob(true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.RunJob(job, db); err != nil {
			b.Fatal(err)
		}
	}
}

// benchPartition builds one reduce partition: n records spread over k
// distinct keys, every eighth record packed (as the packing optimization
// produces), in round-robin key order.
func benchPartition(n, k int) []record {
	keys := make([][]byte, k)
	for i := range keys {
		keys[i] = []byte(relation.Tuple{relation.Value(i)}.Key())
	}
	recs := make([]record, 0, n)
	for i := 0; i < n; i++ {
		var msg Message = intMsg(i)
		if i%8 == 0 {
			msg = Packed{Msgs: []Message{intMsg(i), intMsg(i + 1)}}
		}
		recs = append(recs, record{key: keys[i%k], msg: msg})
	}
	return recs
}

// BenchmarkReduceGrouping measures grouping one reduce partition by key
// (the per-reducer work between shuffle and the user Reducer), isolated
// from the rest of the engine.
func BenchmarkReduceGrouping(b *testing.B) {
	recs := benchPartition(1<<16, 1<<10)
	want := len(recs) + len(recs)/8 // packed records carry two messages
	if len(recs)%8 != 0 {
		want++
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		forEachGroup(recs, func(key []byte, msgs []Message) { n += len(msgs) })
		if n != want {
			b.Fatalf("flattened %d messages, want %d", n, want)
		}
	}
}
