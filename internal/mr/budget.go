package mr

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// Memory governance for one query run. A Budget is an atomic byte
// ledger charged at the engine's bulk allocation sites — arena chunks
// (keyArena.hold), shuffle partitions (shuffleTask), merge shards
// (mergeTask) and spill read-back buffers — before the memory is used.
//
// Charges are cumulative and never released mid-run: the total charged
// over a run is a function of the plan and the data alone (each site
// charges a modelled or actual byte count that does not depend on task
// interleaving), so whether a run exceeds its limit is deterministic at
// every pool width — unlike a high-water-mark check, which would trip
// or not depending on how many tasks happened to overlap. The whole
// ledger is released at once when the query ends and the run's state
// becomes garbage. Spilling a shuffle partition reduces resident
// memory, not the charged total: the budget bounds how much memory a
// query asks for over its lifetime, the spill threshold bounds how much
// of it is resident at once.

// ErrBudgetExceeded is the sentinel matched (via errors.Is) by every
// budget-exhaustion error the engine returns.
var ErrBudgetExceeded = errors.New("mr: memory budget exceeded")

// BudgetExceededError is the typed error for a run that charged past
// its byte budget. It matches ErrBudgetExceeded via errors.Is.
type BudgetExceededError struct {
	Limit     int64 // the budget's byte limit
	Charged   int64 // cumulative bytes charged, including the failing charge
	Requested int64 // the charge that crossed the limit
}

func (e *BudgetExceededError) Error() string {
	return fmt.Sprintf("mr: memory budget exceeded: charged %d bytes of a %d-byte budget (failing charge %d)", e.Charged, e.Limit, e.Requested)
}

// Is reports that a BudgetExceededError matches the ErrBudgetExceeded
// sentinel.
func (e *BudgetExceededError) Is(target error) bool { return target == ErrBudgetExceeded }

// Budget is the per-query byte ledger. The zero limit means unlimited:
// the ledger still counts (so MemStats are available) but never aborts.
// A nil *Budget is valid everywhere and observes nothing. Safe for
// concurrent use.
type Budget struct {
	limit        int64
	charged      atomic.Int64
	spilledBytes atomic.Int64
	spilledParts atomic.Int64
}

// NewBudget returns a budget aborting runs that charge more than limit
// bytes; limit <= 0 means count-only (never abort).
func NewBudget(limit int64) *Budget {
	if limit < 0 {
		limit = 0
	}
	return &Budget{limit: limit}
}

// charge adds n bytes to the ledger. Crossing the limit panics with a
// taskAbort carrying a BudgetExceededError: charges happen inside pool
// tasks, whose runner converts the panic into a deterministic run
// failure on the cancellation path (see taskPool.runOne).
func (b *Budget) charge(n int64) {
	if b == nil || n <= 0 {
		return
	}
	total := b.charged.Add(n)
	if b.limit > 0 && total > b.limit {
		panic(taskAbort{err: &BudgetExceededError{Limit: b.limit, Charged: total, Requested: n}})
	}
}

// noteSpill records one spilled shuffle partition of n file bytes.
func (b *Budget) noteSpill(n int64) {
	if b == nil {
		return
	}
	b.spilledBytes.Add(n)
	b.spilledParts.Add(1)
}

// MemStats is the memory accounting of one run, surfaced next to
// JobTimings by exec and gumbo. ChargedBytes, SpilledBytes and
// SpilledParts are modelled quantities, bit-for-bit identical at every
// pool width (the charge sites charge schedule-independent amounts).
type MemStats struct {
	// ChargedBytes is the cumulative bytes charged over the run's
	// lifetime: arena chunks, shuffle partitions, merge shards, spill
	// buffers. It is not a high-water mark — see Budget.
	ChargedBytes int64
	// LimitBytes is the budget's limit (0 = unlimited).
	LimitBytes int64
	// SpilledBytes counts shuffle bytes written to spill files.
	SpilledBytes int64
	// SpilledParts counts shuffle partitions that spilled to disk.
	SpilledParts int64
}

// Stats returns a snapshot of the ledger. Nil-safe.
func (b *Budget) Stats() MemStats {
	if b == nil {
		return MemStats{}
	}
	return MemStats{
		ChargedBytes: b.charged.Load(),
		LimitBytes:   b.limit,
		SpilledBytes: b.spilledBytes.Load(),
		SpilledParts: b.spilledParts.Load(),
	}
}

// grabBytes is the engine's accounted byte-slice allocator: every bulk
// []byte the engine allocates is charged to the run's budget before
// use (the accounting contract, docs/INVARIANTS.md). Direct
// make([]byte, ...) in this package is forbidden by the memcharge
// analyzer; this helper is the sanctioned site.
func grabBytes(b *Budget, n int) []byte {
	b.charge(int64(n))
	return make([]byte, n)
}
