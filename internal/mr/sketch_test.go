package mr

import (
	"bytes"
	"fmt"
	"testing"
)

// TestSkewSketchHeavyKey: the space-saving guarantee splitting relies
// on — a key carrying more than 1/sketchEntries of the observed bytes
// is present, stored in full, and its volume never underestimates.
func TestSkewSketchHeavyKey(t *testing.T) {
	s := newKeySketch(nil)
	hot := []byte("hot-key")
	var hotBytes int64
	for i := 0; i < 1000; i++ {
		s.observe(hot, 3, 10)
		hotBytes += 10
		// 100 distinct cold keys churn the remaining entries.
		s.observe([]byte(fmt.Sprintf("cold-%03d", i%100)), 1, 1)
	}
	found := false
	for i := 0; i < s.n; i++ {
		e := &s.entries[i]
		if bytes.Equal(s.slot(i), hot) {
			found = true
			if !e.full {
				t.Errorf("hot key stored truncated")
			}
			if e.red != 3 {
				t.Errorf("hot key reducer = %d, want 3", e.red)
			}
			if e.vol < hotBytes {
				t.Errorf("hot key volume %d underestimates true %d", e.vol, hotBytes)
			}
		}
	}
	if !found {
		t.Fatalf("dominant key absent from sketch")
	}
}

// TestSkewSketchBoundaries: splitBoundaries isolates a fully-stored
// key as the exact range [key, key·0x00) — ascending, deduplicated
// boundaries that own their bytes.
func TestSkewSketchBoundaries(t *testing.T) {
	s := newKeySketch(nil)
	s.observe([]byte("bb"), 0, 100)
	s.observe([]byte("aa"), 0, 50)
	s.observe([]byte("zz"), 1, 999) // other reducer: must not appear
	bounds := s.splitBoundaries(0, nil)
	want := []string{"aa", "aa\x00", "bb", "bb\x00"}
	if len(bounds) != len(want) {
		t.Fatalf("boundaries = %q, want %q", bounds, want)
	}
	for i, b := range bounds {
		if string(b) != want[i] {
			t.Fatalf("boundaries = %q, want %q", bounds, want)
		}
	}
	// The derived ranges put exactly the key between its two bounds.
	if !keyInRange([]byte("aa"), bounds[0], bounds[1]) {
		t.Errorf("aa not in [aa, aa\\x00)")
	}
	for _, k := range []string{"a", "aaX", "ab"} {
		if keyInRange([]byte(k), bounds[0], bounds[1]) {
			t.Errorf("%q leaked into [aa, aa\\x00)", k)
		}
	}
	if s.splitBoundaries(2, nil) != nil {
		t.Errorf("reducer with no sketched keys produced boundaries")
	}
}

// TestSkewSketchBoundariesCap: at most splitMaxKeys keys are isolated
// per reducer, picked by volume.
func TestSkewSketchBoundariesCap(t *testing.T) {
	s := newKeySketch(nil)
	for i := 0; i < 10; i++ {
		s.observe([]byte{byte('a' + i)}, 0, int64(100-i)) // 'a' heaviest
	}
	bounds := s.splitBoundaries(0, nil)
	if len(bounds) != 2*splitMaxKeys {
		t.Fatalf("%d boundaries, want %d", len(bounds), 2*splitMaxKeys)
	}
	if string(bounds[0]) != "a" || string(bounds[len(bounds)-2]) != string(byte('a'+splitMaxKeys-1)) {
		t.Errorf("picks not the heaviest keys: %q", bounds)
	}
}

// TestSkewSketchLongKeyPrefix: a key longer than sketchKeyBytes is
// tracked by prefix and contributes only the prefix as a cut point —
// no successor bound, since the range [prefix, next) would otherwise
// cut inside the key's group.
func TestSkewSketchLongKeyPrefix(t *testing.T) {
	long := bytes.Repeat([]byte("k"), sketchKeyBytes+10)
	s := newKeySketch(nil)
	s.observe(long, 0, 100)
	bounds := s.splitBoundaries(0, nil)
	if len(bounds) != 1 {
		t.Fatalf("%d boundaries for a truncated key, want 1", len(bounds))
	}
	if !bytes.Equal(bounds[0], long[:sketchKeyBytes]) {
		t.Errorf("boundary %q is not the stored prefix", bounds[0])
	}
}

// TestSkewSketchAbsorb: merging per-task sketches in a fixed order
// yields one deterministic combined sketch with summed volumes.
func TestSkewSketchAbsorb(t *testing.T) {
	a, b := newKeySketch(nil), newKeySketch(nil)
	a.observe([]byte("x"), 0, 10)
	b.observe([]byte("x"), 0, 20)
	b.observe([]byte("y"), 1, 5)
	a.absorb(b)
	if a.n != 2 {
		t.Fatalf("merged sketch has %d entries, want 2", a.n)
	}
	if !bytes.Equal(a.slot(0), []byte("x")) || a.entries[0].vol != 30 {
		t.Errorf("entry 0 = %q vol %d, want x vol 30", a.slot(0), a.entries[0].vol)
	}
	if !bytes.Equal(a.slot(1), []byte("y")) || a.entries[1].vol != 5 || a.entries[1].red != 1 {
		t.Errorf("entry 1 = %q vol %d red %d, want y vol 5 red 1",
			a.slot(1), a.entries[1].vol, a.entries[1].red)
	}
}

// TestSkewSketchBudgetCharged: sketch key arenas and boundary copies
// go through grabBytes, so their bytes land in the run's ledger.
func TestSkewSketchBudgetCharged(t *testing.T) {
	b := NewBudget(0)
	s := newKeySketch(b)
	if got := b.Stats().ChargedBytes; got != sketchEntries*sketchKeyBytes {
		t.Fatalf("sketch arena charged %d bytes, want %d", got, sketchEntries*sketchKeyBytes)
	}
	s.observe([]byte("kk"), 0, 1)
	before := b.Stats().ChargedBytes
	s.splitBoundaries(0, b)
	if got := b.Stats().ChargedBytes - before; got != 2+3 { // "kk" + "kk\x00"
		t.Errorf("boundaries charged %d bytes, want 5", got)
	}
}

// TestSkewKeyInRange pins the half-open range semantics sub-range
// slots filter with.
func TestSkewKeyInRange(t *testing.T) {
	cases := []struct {
		key, lo, hi string
		noLo, noHi  bool
		want        bool
	}{
		{key: "m", noLo: true, noHi: true, want: true},
		{key: "m", lo: "m", noHi: true, want: true},  // lo inclusive
		{key: "m", noLo: true, hi: "m", want: false}, // hi exclusive
		{key: "a", lo: "b", hi: "d", want: false},
		{key: "c", lo: "b", hi: "d", want: true},
		{key: "", noLo: true, hi: "a", want: true}, // empty key sorts first
		{key: "", lo: "a", noHi: true, want: false},
	}
	for _, c := range cases {
		var lo, hi []byte
		if !c.noLo {
			lo = []byte(c.lo)
		}
		if !c.noHi {
			hi = []byte(c.hi)
		}
		if got := keyInRange([]byte(c.key), lo, hi); got != c.want {
			t.Errorf("keyInRange(%q, %q, %q) = %v, want %v", c.key, lo, hi, got, c.want)
		}
	}
}
