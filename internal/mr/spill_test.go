package mr

import (
	"context"
	"encoding/binary"
	"errors"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/cost"
	"repro/internal/relation"
)

// Spill support for the test message type: intMsg travels under tag 250
// as a varint. Registered at package init exactly like production
// message types (internal/core registers its tags the same way) — which
// also makes the whole mr test suite spill-capable under the CI spill
// gate's GUMBO_SPILL_THRESHOLD override, so every golden and
// differential test in the package re-runs with partitions spilling.
const spillTagIntMsg = 250

func (m intMsg) SpillTag() byte { return spillTagIntMsg }

func (m intMsg) AppendSpill(dst []byte) []byte {
	return binary.AppendVarint(dst, int64(m))
}

func init() {
	RegisterSpillDecoder(spillTagIntMsg, func(b []byte) (Message, []byte, error) {
		v, w := binary.Varint(b)
		if w <= 0 {
			return nil, nil, errSpillCorrupt
		}
		return intMsg(v), b[w:], nil
	})
}

// spillFilesIn lists the spill temp files currently present in dir.
func spillFilesIn(t *testing.T, dir string) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "gumbo-spill-*"))
	if err != nil {
		t.Fatalf("glob spill dir: %v", err)
	}
	names := make([]string, 0, len(matches))
	for _, m := range matches {
		names = append(names, filepath.Base(m))
	}
	return names
}

// TestSpillDifferential is the spill correctness contract: with a
// 1-byte threshold (every non-empty spillable partition goes to disk)
// the golden diamond program's outputs and deep per-job stats are
// bit-for-bit identical to a spill-disabled run, at pool widths 1, 4
// and GOMAXPROCS — and the run actually spilled, with all temp files
// retired by the time it returns.
func TestSpillDifferential(t *testing.T) {
	p, db := diamondProgram()
	oracle := NewEngine(cost.Default().Scaled(0.001))
	oracle.Parallelism = 1
	oracle.SpillThreshold = -1 // spill off even under the CI gate's env override
	wantOuts, wantStats, err := oracle.RunProgram(p, db)
	if err != nil {
		t.Fatalf("oracle run failed: %v", err)
	}
	wantSig := programSignature(t, wantOuts)

	seen := map[int]bool{}
	for _, width := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		if width < 1 || seen[width] {
			continue
		}
		seen[width] = true
		dir := t.TempDir()
		e := NewEngine(cost.Default().Scaled(0.001))
		e.Parallelism = width
		e.SpillThreshold = 1
		e.SpillDir = dir
		budget := NewBudget(0) // count-only: MemStats without a limit
		outs, stats, _, err := e.RunProgramGoverned(context.Background(), p, db, nil, budget)
		if err != nil {
			t.Fatalf("width %d: spill run failed: %v", width, err)
		}
		if sig := programSignature(t, outs); sig != wantSig {
			t.Errorf("width %d: spilled outputs differ from in-memory run", width)
		}
		if !reflect.DeepEqual(stats, wantStats) {
			t.Errorf("width %d: spilled stats differ:\n%+v\nvs\n%+v", width, stats, wantStats)
		}
		mem := budget.Stats()
		if mem.SpilledParts == 0 {
			t.Errorf("width %d: threshold 1 spilled no partitions", width)
		}
		if mem.SpilledBytes <= 0 {
			t.Errorf("width %d: spilled %d partitions but 0 bytes", width, mem.SpilledParts)
		}
		if mem.ChargedBytes <= 0 {
			t.Errorf("width %d: run charged no bytes", width)
		}
		// Consumed spill files are dropped the moment the reduce stage
		// finishes with them — a completed run leaves nothing behind.
		if files := spillFilesIn(t, dir); len(files) != 0 {
			t.Errorf("width %d: completed run left spill files %v", width, files)
		}
	}
}

// TestSpillRecordRoundTrip pins the record wire form directly: single,
// engine-packed and Packed-message records survive encode → decode
// bit-for-bit, and a truncated buffer is rejected rather than
// misdecoded.
func TestSpillRecordRoundTrip(t *testing.T) {
	rs := []record{
		{key: []byte("a"), msg: intMsg(7), size: 9},
		{key: []byte("bee"), msg: Packed{Msgs: []Message{intMsg(1), intMsg(-2), intMsg(1 << 40)}}, size: 27},
		{key: []byte{}, packed: []Message{intMsg(3), intMsg(-4)}, size: 16},
	}
	var buf []byte
	boundaries := map[int]bool{0: true}
	for i := range rs {
		buf = appendSpillRecord(buf, &rs[i])
		boundaries[len(buf)] = true
	}
	rest := buf
	for i := range rs {
		r, after, err := decodeSpillRecord(rest)
		if err != nil {
			t.Fatalf("record %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(r, rs[i]) {
			t.Errorf("record %d round-tripped to %+v, want %+v", i, r, rs[i])
		}
		rest = after
	}
	if len(rest) != 0 {
		t.Fatalf("%d bytes left after decoding all records", len(rest))
	}
	for cut := 1; cut < len(buf); cut++ {
		if boundaries[len(buf)-cut] {
			continue // a whole-record prefix decodes cleanly by design
		}
		if _, _, err := decodeAll(buf[:len(buf)-cut]); err == nil {
			t.Errorf("truncating %d bytes decoded cleanly", cut)
		}
	}
}

// decodeAll decodes records until the buffer is exhausted or corrupt.
func decodeAll(b []byte) ([]record, []byte, error) {
	var rs []record
	for len(b) > 0 {
		r, rest, err := decodeSpillRecord(b)
		if err != nil {
			return nil, nil, err
		}
		rs = append(rs, r)
		b = rest
	}
	return rs, b, nil
}

// TestNonSpillablePartitionStaysInMemory: spilling is opt-in per
// message type. A job whose messages do not implement SpillMessage
// runs correctly under a 1-byte threshold — its partitions simply stay
// in memory (SpilledParts 0), with outputs identical to a
// spill-disabled run.
func TestNonSpillablePartitionStaysInMemory(t *testing.T) {
	mkJob := func() *Job {
		return &Job{
			Name:    "opaque",
			Inputs:  []string{"R"},
			Outputs: map[string]int{"O": 2},
			Mapper: MapperFunc(func(input string, id int, tpl relation.Tuple, emit Emit) {
				var kb [32]byte
				emit(tpl.AppendKey(kb[:0]), opaqueMsg(int64(id)))
			}),
			Reducer: ReducerFunc(func(key []byte, msgs []Message, o *Output) {
				o.Add("O", relation.TupleFromKeyBytes(key))
			}),
		}
	}
	db := testDB()
	ref := NewEngine(cost.Default().Scaled(0.001))
	ref.SpillThreshold = -1
	wantOuts, wantStats, _, err := ref.RunProgramGoverned(context.Background(),
		&Program{Jobs: []*Job{mkJob()}}, db, nil, nil)
	if err != nil {
		t.Fatalf("reference run failed: %v", err)
	}

	dir := t.TempDir()
	e := NewEngine(cost.Default().Scaled(0.001))
	e.Parallelism = 4
	e.SpillThreshold = 1
	e.SpillDir = dir
	budget := NewBudget(0)
	outs, stats, _, err := e.RunProgramGoverned(context.Background(),
		&Program{Jobs: []*Job{mkJob()}}, db, nil, budget)
	if err != nil {
		t.Fatalf("non-spillable run failed: %v", err)
	}
	if !outs.Relation("O").Equal(wantOuts.Relation("O")) {
		t.Errorf("outputs differ from spill-disabled run")
	}
	if !reflect.DeepEqual(stats, wantStats) {
		t.Errorf("stats differ:\n%+v\nvs\n%+v", stats, wantStats)
	}
	if mem := budget.Stats(); mem.SpilledParts != 0 {
		t.Errorf("non-spillable messages spilled %d partitions", mem.SpilledParts)
	}
	if files := spillFilesIn(t, dir); len(files) != 0 {
		t.Errorf("non-spillable run left spill files %v", files)
	}
}

// opaqueMsg deliberately does not implement SpillMessage.
type opaqueMsg int64

func (m opaqueMsg) SizeBytes() int64 { return 8 }

// TestSpillAbortLeavesNoTempFiles is the crash-safety contract: runs
// that end early — canceled at a task boundary, or aborted by an
// exhausted budget — remove every spill file on the unwind (the run
// entry points defer spillSet.cleanup).
func TestSpillAbortLeavesNoTempFiles(t *testing.T) {
	// Measure a clean spill-on run's total charge so the budget case can
	// pick a limit that is guaranteed to trip mid-run.
	p, db := diamondProgram()
	probe := NewEngine(cost.Default().Scaled(0.001))
	probe.Parallelism = 4
	probe.SpillThreshold = 1
	probe.SpillDir = t.TempDir()
	budget := NewBudget(0)
	if _, _, _, err := probe.RunProgramGoverned(context.Background(), p, db, nil, budget); err != nil {
		t.Fatalf("probe run failed: %v", err)
	}
	charged := budget.Stats().ChargedBytes
	if charged < 2 {
		t.Fatalf("probe run charged only %d bytes", charged)
	}

	t.Run("budget", func(t *testing.T) {
		dir := t.TempDir()
		e := NewEngine(cost.Default().Scaled(0.001))
		e.Parallelism = 4
		e.SpillThreshold = 1
		e.SpillDir = dir
		p, db := diamondProgram()
		outs, _, _, err := e.RunProgramGoverned(context.Background(), p, db, nil, NewBudget(charged/2))
		if !errors.Is(err, ErrBudgetExceeded) {
			t.Fatalf("err = %v, want ErrBudgetExceeded", err)
		}
		if outs != nil {
			t.Fatalf("over-budget run returned an outputs database")
		}
		if files := spillFilesIn(t, dir); len(files) != 0 {
			t.Errorf("over-budget run left spill files %v", files)
		}
	})

	t.Run("cancel", func(t *testing.T) {
		dir := t.TempDir()
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		restore := SetFaultHooks(FaultHooks{Grant: func(n int) {
			if n == 5 {
				cancel()
			}
		}})
		defer restore()
		e := NewEngine(cost.Default().Scaled(0.001))
		e.Parallelism = 4
		e.SpillThreshold = 1
		e.SpillDir = dir
		p, db := diamondProgram()
		outs, _, _, err := e.RunProgramGoverned(ctx, p, db, nil, nil)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if outs != nil {
			t.Fatalf("canceled run returned an outputs database")
		}
		if files := spillFilesIn(t, dir); len(files) != 0 {
			t.Errorf("canceled run left spill files %v", files)
		}
	})
}

// TestSpillEnvThreshold pins the CI gate's hook: SpillThreshold 0 reads
// GUMBO_SPILL_THRESHOLD, a negative threshold wins over the
// environment, and an unset/garbage variable leaves spill off.
func TestSpillEnvThreshold(t *testing.T) {
	t.Setenv("GUMBO_SPILL_THRESHOLD", "123")
	e := NewEngine(cost.Default())
	if gov := e.newGovern(nil); gov.spill == nil || gov.threshold != 123 {
		t.Errorf("env threshold not honored: %+v", gov)
	}
	e.SpillThreshold = -1
	if gov := e.newGovern(nil); gov.spill != nil {
		t.Errorf("negative threshold did not disable spill")
	}
	t.Setenv("GUMBO_SPILL_THRESHOLD", "nope")
	e.SpillThreshold = 0
	if gov := e.newGovern(nil); gov.spill != nil {
		t.Errorf("garbage env value enabled spill")
	}
}
