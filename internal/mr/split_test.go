package mr

import (
	"context"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/cost"
	"repro/internal/relation"
)

// skewedProgram builds a one-job program with one dominant key: 40% of
// R's tuples share join value 7, the rest spread over 0..96, so one
// reduce partition carries several times the mean load and the runtime
// splitter has something real to cut. Reducers is fixed so the skew
// ratio doesn't depend on the cost model's reducer derivation.
func skewedProgram() (*Program, *relation.Database) {
	var tuples []relation.Tuple
	for i := int64(0); i < 2000; i++ {
		v := i % 97
		if i%5 < 2 { // 40% hot
			v = 7
		}
		tuples = append(tuples, tup(i, v))
	}
	db := relation.NewDatabase()
	db.Put(relation.FromTuples("R", 2, tuples))
	db.Put(relation.FromTuples("S", 1, []relation.Tuple{
		tup(7), tup(11), tup(42),
	}))
	sj := semijoinJob(false)
	sj.Reducers = 8
	return &Program{Jobs: []*Job{sj}}, db
}

// TestSkewSplitDifferential is the tentpole contract: with runtime
// splitting on, the skewed program's outputs and deep per-job stats
// are bit-for-bit identical to a split-disabled sequential oracle at
// pool widths 1, 4 and GOMAXPROCS — up to the split observability
// fields, which StripSplitInfo removes and which must themselves be
// identical at every width. The "spill" subtest re-runs the same
// differential with a 1-byte spill threshold so split sub-range tasks
// stream their share back through appendSegmentRange.
func TestSkewSplitDifferential(t *testing.T) {
	for _, mode := range []struct {
		name  string
		spill int64
	}{{"memory", -1}, {"spill", 1}} {
		t.Run(mode.name, func(t *testing.T) {
			p, db := skewedProgram()
			oracle := NewEngine(cost.Default().Scaled(0.001))
			oracle.Parallelism = 1
			oracle.SplitThreshold = -1 // splitting off even under the CI gate's env override
			oracle.SpillThreshold = -1
			wantOuts, wantStats, err := oracle.RunProgram(p, db)
			if err != nil {
				t.Fatalf("oracle run failed: %v", err)
			}
			wantSig := programSignature(t, wantOuts)
			if n := wantStats[0].SplitReduceTasks; n != 0 {
				t.Fatalf("oracle split %d tasks with splitting off", n)
			}

			seen := map[int]bool{}
			splitTasks := -1
			for _, width := range []int{1, 4, runtime.GOMAXPROCS(0)} {
				if width < 1 || seen[width] {
					continue
				}
				seen[width] = true
				e := NewEngine(cost.Default().Scaled(0.001))
				e.Parallelism = width
				e.SplitThreshold = 1.3
				e.SpillThreshold = mode.spill
				e.SpillDir = t.TempDir()
				budget := NewBudget(0)
				outs, stats, _, err := e.RunProgramGoverned(context.Background(), p, db, nil, budget)
				if err != nil {
					t.Fatalf("width %d: split run failed: %v", width, err)
				}
				if sig := programSignature(t, outs); sig != wantSig {
					t.Errorf("width %d: split outputs differ from unsplit oracle", width)
				}
				got, want := stats[0].StripSplitInfo(), wantStats[0].StripSplitInfo()
				if !reflect.DeepEqual(got, want) {
					t.Errorf("width %d: split stats differ:\n%+v\nvs\n%+v", width, got, want)
				}
				s := stats[0]
				if s.SplitReduceTasks < 2 {
					t.Errorf("width %d: SplitReduceTasks = %d, want >= 2", width, s.SplitReduceTasks)
				}
				if splitTasks == -1 {
					splitTasks = s.SplitReduceTasks
				} else if s.SplitReduceTasks != splitTasks {
					t.Errorf("width %d: SplitReduceTasks = %d, differs from %d at another width",
						width, s.SplitReduceTasks, splitTasks)
				}
				if s.MaxReduceTaskMB >= s.MaxReduceLoadMB() {
					t.Errorf("width %d: MaxReduceTaskMB %.4f did not drop below MaxReduceLoadMB %.4f",
						width, s.MaxReduceTaskMB, s.MaxReduceLoadMB())
				}
				if budget.Stats().ChargedBytes <= 0 {
					t.Errorf("width %d: split run charged no bytes", width)
				}
				if mode.spill > 0 && budget.Stats().SpilledParts == 0 {
					t.Errorf("width %d: spill threshold 1 spilled no partitions", width)
				}
			}
		})
	}
}

// TestSkewSplitOffMatchesLoads pins the splitting-off invariant the
// differential relies on: MaxReduceTaskMB equals MaxReduceLoadMB
// exactly (every slot is a whole partition) and no tasks are split.
func TestSkewSplitOffMatchesLoads(t *testing.T) {
	p, db := skewedProgram()
	e := NewEngine(cost.Default().Scaled(0.001))
	e.SplitThreshold = -1
	_, stats, err := e.RunProgram(p, db)
	if err != nil {
		t.Fatal(err)
	}
	s := stats[0]
	if s.SplitReduceTasks != 0 {
		t.Errorf("SplitReduceTasks = %d with splitting off", s.SplitReduceTasks)
	}
	if s.MaxReduceTaskMB != s.MaxReduceLoadMB() {
		t.Errorf("MaxReduceTaskMB %.6f != MaxReduceLoadMB %.6f with splitting off",
			s.MaxReduceTaskMB, s.MaxReduceLoadMB())
	}
}

// TestSkewSplitTiming: split sub-task time is recorded as a subset of
// reduce time, leaving TotalSeconds the sum of the four task kinds.
func TestSkewSplitTiming(t *testing.T) {
	p, db := skewedProgram()
	e := NewEngine(cost.Default().Scaled(0.001))
	e.SplitThreshold = 1.3
	_, stats, timings, err := e.RunProgramTimed(p, db)
	if err != nil {
		t.Fatal(err)
	}
	if stats[0].SplitReduceTasks < 2 {
		t.Fatalf("program did not split (SplitReduceTasks = %d)", stats[0].SplitReduceTasks)
	}
	tm := timings[0]
	if tm.SplitSeconds <= 0 {
		t.Errorf("SplitSeconds = %v after a split run", tm.SplitSeconds)
	}
	if tm.SplitSeconds > tm.ReduceSeconds {
		t.Errorf("SplitSeconds %v exceeds ReduceSeconds %v (must be a subset)",
			tm.SplitSeconds, tm.ReduceSeconds)
	}
	want := tm.MapSeconds + tm.ShuffleSeconds + tm.ReduceSeconds + tm.MergeSeconds
	if tm.TotalSeconds() != want {
		t.Errorf("TotalSeconds %v != sum of kinds %v", tm.TotalSeconds(), want)
	}
}

// TestSkewSplitEnvKnob pins the CI gate's hook: SplitThreshold 0 reads
// GUMBO_SKEW_SPLIT, a negative threshold wins over the environment,
// and an unset/garbage/non-positive variable leaves splitting off.
func TestSkewSplitEnvKnob(t *testing.T) {
	t.Setenv("GUMBO_SKEW_SPLIT", "1.7")
	e := NewEngine(cost.Default())
	if gov := e.newGovern(nil); gov.split != 1.7 {
		t.Errorf("env ratio not honored: split = %v", gov.split)
	}
	if !e.SkewSplitEnabled() {
		t.Errorf("SkewSplitEnabled() = false with env ratio set")
	}
	e.SplitThreshold = -1
	if gov := e.newGovern(nil); gov.split != 0 {
		t.Errorf("negative threshold did not disable splitting: %v", gov.split)
	}
	if e.SkewSplitEnabled() {
		t.Errorf("SkewSplitEnabled() = true with negative threshold")
	}
	e.SplitThreshold = 0
	for _, v := range []string{"nope", "-2", "0"} {
		t.Setenv("GUMBO_SKEW_SPLIT", v)
		if gov := e.newGovern(nil); gov.split != 0 {
			t.Errorf("env %q enabled splitting: %v", v, gov.split)
		}
	}
}

// TestSkewSplitPlanLayout unit-tests planReduceSlots' slot geometry
// directly: slots are reducer-major, a split partition's sub-ranges
// are ascending and contiguous (each slot's hi is the next slot's lo,
// with unbounded outer edges), and light partitions stay whole.
func TestSkewSplitPlanLayout(t *testing.T) {
	p, db := skewedProgram()
	e := NewEngine(cost.Default().Scaled(0.001))
	e.SplitThreshold = 1.3
	gov := e.newGovern(nil)
	var slots []reduceSlot
	jr := e.newJobRun(p.Jobs[0], gov, nil, func(c *poolCtx, jr *jobRun) {
		slots = jr.slots
	})
	err := runTasks(context.Background(), 4, func(c *poolCtx) {
		jr.seed(c)
		for part, name := range p.Jobs[0].Inputs {
			jr.inputReady(c, part, db.Relation(name))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(slots) <= jr.reducers {
		t.Fatalf("%d slots for %d reducers: nothing split", len(slots), jr.reducers)
	}
	prevRi := -1
	for si := 0; si < len(slots); si++ {
		s := slots[si]
		if s.ri < prevRi {
			t.Fatalf("slot %d: reducer %d after %d (not reducer-major)", si, s.ri, prevRi)
		}
		if s.ri != prevRi {
			// First slot of a partition: unbounded low edge.
			if s.lo != nil {
				t.Errorf("slot %d: partition %d starts at lo %q, want unbounded", si, s.ri, s.lo)
			}
		}
		last := si+1 == len(slots) || slots[si+1].ri != s.ri
		if last {
			if s.hi != nil {
				t.Errorf("slot %d: partition %d ends at hi %q, want unbounded", si, s.ri, s.hi)
			}
			if !s.split && s.lo != nil {
				t.Errorf("slot %d: unsplit slot has a bound", si)
			}
		} else {
			if !s.split || !slots[si+1].split {
				t.Errorf("slot %d: multi-slot partition %d has unsplit slots", si, s.ri)
			}
			if string(slots[si+1].lo) != string(s.hi) || s.hi == nil {
				t.Errorf("slot %d: hi %q does not chain to next lo %q", si, s.hi, slots[si+1].lo)
			}
		}
		prevRi = s.ri
	}
}
