package mr

import (
	"context"
	"sync"
	"sync/atomic"
)

// The engine's unified work-stealing executor. One taskPool runs every
// schedulable unit of a job or a whole program — map tasks, shuffle
// partition tasks, reduce partition tasks, output merge shards — on a
// fixed set of worker goroutines. There is no per-phase or per-job
// fan-out/fan-in: a worker that finishes a reduce partition of one job
// immediately picks up whatever is runnable, typically a map task of a
// downstream or independent job. This is what lets the partition-level
// program scheduler (scheduler.go) overlap phases of dependent jobs
// instead of idling workers at job barriers.
//
// Scheduling policy: each worker owns a private deque. Tasks spawned
// while running on a worker push onto that worker's deque; the owner
// pops newest-first (LIFO, cache-friendly for the stage that spawned
// them), while idle workers steal oldest-first (FIFO) from siblings, so
// stolen work is the coarsest available (the classic work-stealing
// discipline). Task execution order is therefore schedule-dependent —
// everything built on the pool writes results into pre-indexed slots
// and joins phases with counters, so observable results never depend on
// the order (see jobrun.go and the determinism tests).

// poolTask is one unit of schedulable work. The context identifies the
// executing worker so the task can spawn follow-up work onto the local
// deque.
type poolTask func(c *poolCtx)

// poolCtx is the execution context handed to every task.
type poolCtx struct {
	pool *taskPool
	id   int // worker index owning the local deque
}

// spawn schedules fn onto the current worker's deque.
func (c *poolCtx) spawn(fn poolTask) {
	c.pool.spawn(c.id, fn)
}

// spare returns 1 + the number of currently parked workers: the width
// a task may use for nested fine-grained fan-out (the radix sort's top
// level, relation.Merge's shards) without oversubscribing the pool.
// With other jobs' tasks runnable the pool is busy and spare is 1 —
// nested work stays serial; a lone reduce partition on an otherwise
// idle pool gets the whole width, as the barriered engine gave it. The
// count is an instantaneous hint, not a reservation (overlapping tasks
// may observe the same idle workers); results never depend on it.
func (c *poolCtx) spare() int {
	p := c.pool
	p.mu.Lock()
	n := p.idle
	p.mu.Unlock()
	return n + 1
}

// taskDeque is one worker's task queue. A plain mutex-guarded slice:
// pool tasks are coarse (thousands of records each), so queue traffic
// is far too low for the lock to matter.
type taskDeque struct {
	mu sync.Mutex
	q  []poolTask
}

func (d *taskDeque) push(t poolTask) {
	d.mu.Lock()
	d.q = append(d.q, t)
	d.mu.Unlock()
}

// pop removes the newest task (owner side, LIFO).
func (d *taskDeque) pop() poolTask {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.q)
	if n == 0 {
		return nil
	}
	t := d.q[n-1]
	d.q[n-1] = nil
	d.q = d.q[:n-1]
	return t
}

// steal removes the oldest task (thief side, FIFO).
func (d *taskDeque) steal() poolTask {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.q) == 0 {
		return nil
	}
	t := d.q[0]
	d.q[0] = nil
	d.q = d.q[1:]
	return t
}

// taskPool runs tasks to quiescence: runTasks returns when every
// spawned task — including tasks spawned by tasks — has finished, or
// until the run's context is canceled (queued tasks are then abandoned
// at the next task boundary, exactly like the abort path).
type taskPool struct {
	deques []taskDeque
	// ctx is the run's context. next polls it directly on every grant
	// (on top of the async watcher that wakes parked workers), so the
	// number of tasks granted after a cancel is strictly bounded: at
	// most one per worker already past its poll.
	ctx context.Context

	mu   sync.Mutex // guards idle, panicked, cancelErr and the wakeup protocol
	cond *sync.Cond
	idle int
	// stopped flips once, on quiescence, abort or cancellation. It is
	// atomic so the dequeue fast path can observe a stop without taking
	// mu: after a task panic or a context cancellation, workers must
	// abandon queued tasks promptly, not drain them.
	stopped atomic.Bool

	pendingMu sync.Mutex
	pending   int   // spawned but unfinished tasks
	panicked  any   // first task panic, re-raised on the runTasks caller
	cancelErr error // context error that stopped the pool, under mu
	failErr   error // first task-raised abort error (taskAbort), under mu

	// hooks is the fault-injection seam installed via SetFaultHooks,
	// captured once at pool construction; grants numbers the task grants
	// it observes. Both are test-only instrumentation.
	hooks  *FaultHooks
	grants atomic.Int64
}

// FaultHooks instruments the task pool for fault-injection tests. The
// zero value observes nothing. Hooks run on worker goroutines on the
// task-grant path, so they can delay (sleep), park (block on a
// channel), or cancel (cancel the run's context) at chosen task
// indices; see SetFaultHooks.
type FaultHooks struct {
	// Grant, when non-nil, is called immediately before a granted task
	// executes, with the pool-wide 0-based grant index (the order in
	// which workers were handed tasks — schedule-dependent, but its
	// range is deterministic: a full run grants every task exactly
	// once). Blocking stalls that worker; canceling the run's context
	// from inside the hook stops the pool at the next task boundary.
	Grant func(n int)
}

// poolHooks holds the installed fault seam; nil means uninstrumented
// (the production state). An atomic pointer so installing hooks in a
// test cannot race with a pool being constructed elsewhere.
var poolHooks atomic.Pointer[FaultHooks]

// SetFaultHooks installs h as the fault-injection seam observed by
// every subsequently created pool, returning a function that restores
// the previous seam. Test-only: callers own serializing their use of
// the process-wide seam (tests that install hooks must not run in
// parallel with other pool-running tests).
func SetFaultHooks(h FaultHooks) (restore func()) {
	prev := poolHooks.Swap(&h)
	return func() { poolHooks.Store(prev) }
}

// spawn schedules fn onto worker `from`'s deque and wakes a sleeper if
// one is parked. The pending count is raised before the task becomes
// visible, so the pool cannot reach quiescence with fn still queued.
//
// Spawning on a quiescent pool — a poolCtx retained past runTasks — is
// misuse: the workers are gone and fn would sit queued forever. It
// panics rather than losing the task silently. (Detection is
// best-effort: it cannot race with a legitimate spawn, because those
// happen inside a running task, which holds pending > 0.)
func (p *taskPool) spawn(from int, fn poolTask) {
	p.pendingMu.Lock()
	if p.pending == 0 && p.stopped.Load() {
		p.pendingMu.Unlock()
		panic("mr: taskPool.spawn after quiescence: poolCtx used outside its runTasks call")
	}
	p.pending++
	p.pendingMu.Unlock()
	p.deques[from].push(fn)
	p.mu.Lock()
	if p.idle > 0 {
		p.cond.Signal()
	}
	p.mu.Unlock()
}

// finish records one task completion; the last completion stops the
// pool and releases every parked worker.
func (p *taskPool) finish() {
	p.pendingMu.Lock()
	p.pending--
	done := p.pending == 0
	p.pendingMu.Unlock()
	if done {
		p.mu.Lock()
		p.stopped.Store(true)
		p.cond.Broadcast()
		p.mu.Unlock()
	}
}

// next returns a runnable task for worker id, or nil when the pool has
// stopped. The fast path pops the local deque, then steals; the slow
// path re-scans every deque under p.mu and parks. Spawners signal under
// the same lock after pushing, so a task pushed after the scan wakes
// the parked worker — no lost wakeups.
func (p *taskPool) next(id int) poolTask {
	if p.stopped.Load() || p.canceled() {
		// Quiescence (queues empty), abort (queued tasks abandoned,
		// panic pending re-raise) or cancellation: either way, stop
		// taking work.
		return nil
	}
	if t := p.deques[id].pop(); t != nil {
		return t
	}
	if t := p.stealFrom(id); t != nil {
		return t
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.stopped.Load() || p.canceled() {
			return nil
		}
		if t := p.deques[id].pop(); t != nil {
			return t
		}
		if t := p.stealFrom(id); t != nil {
			return t
		}
		p.idle++
		p.cond.Wait()
		p.idle--
	}
}

// canceled reports whether the run's context is already canceled: the
// synchronous half of the cancellation protocol (the watcher goroutine
// in runTasks is the asynchronous half, waking parked workers). Polled
// once per task grant — pool tasks are coarse, so the check is noise.
func (p *taskPool) canceled() bool {
	return p.ctx != nil && p.ctx.Err() != nil
}

// stealFrom scans the other deques round-robin starting after id.
func (p *taskPool) stealFrom(id int) poolTask {
	n := len(p.deques)
	for k := 1; k < n; k++ {
		if t := p.deques[(id+k)%n].steal(); t != nil {
			return t
		}
	}
	return nil
}

// abort records a task panic and stops the pool: workers finish their
// current task and exit, queued tasks are abandoned. The first panic
// wins.
func (p *taskPool) abort(v any) {
	p.mu.Lock()
	if p.panicked == nil {
		p.panicked = v
	}
	p.stopped.Store(true)
	p.cond.Broadcast()
	p.mu.Unlock()
}

// taskAbort is the panic payload a task raises to fail the whole run
// with an error instead of a programming-bug panic: the budget's
// over-limit charge and the spill path's I/O failures use it. runOne
// recognizes it and routes it to fail rather than abort, so runTasks
// returns err to its caller instead of re-panicking.
type taskAbort struct{ err error }

// fail records a task-raised run error and stops the pool exactly like
// cancel: workers finish their current task and exit at the next task
// boundary, queued tasks are abandoned. The first error wins.
func (p *taskPool) fail(err error) {
	p.mu.Lock()
	if p.failErr == nil {
		p.failErr = err
	}
	p.stopped.Store(true)
	p.cond.Broadcast()
	p.mu.Unlock()
}

// cancel stops the pool on context cancellation, mirroring abort:
// workers finish their current task and exit at the next task boundary
// (never mid-task, so a task's writes into its pre-indexed slot are
// either complete or never started), queued tasks are abandoned.
func (p *taskPool) cancel(err error) {
	p.mu.Lock()
	if p.cancelErr == nil {
		p.cancelErr = err
	}
	p.stopped.Store(true)
	p.cond.Broadcast()
	p.mu.Unlock()
}

// runOne executes t, converting a task panic into an abort so the
// panic can be re-raised on the runTasks caller's goroutine — except a
// taskAbort payload, which fails the run with its error through the
// cancellation machinery instead (budget exhaustion, spill I/O). The
// Grant fault hook fires inside the recovered scope, so an injected
// hook panic behaves exactly like a panic of the granted task itself.
func (p *taskPool) runOne(c *poolCtx, t poolTask) {
	defer func() {
		if v := recover(); v != nil {
			if ta, ok := v.(taskAbort); ok {
				p.fail(ta.err)
			} else {
				p.abort(v)
			}
			return
		}
		p.finish()
	}()
	if h := p.hooks; h != nil && h.Grant != nil {
		h.Grant(int(p.grants.Add(1) - 1))
	}
	t(c)
}

// runTasks creates a pool of `workers` goroutines, runs seed as the
// first task, and returns once the pool is quiescent (seed and every
// transitively spawned task finished) or ctx is canceled. A panic in
// any task aborts the pool and is re-raised on the caller's goroutine,
// so user map/reduce panics surface to the RunJob/RunProgram caller
// exactly as they did when phases ran inline.
//
// Cancellation is task-boundary-granular: a watcher goroutine (joined
// before return — runTasks leaks nothing) stops the pool when
// ctx.Done() fires, in-flight tasks run to completion, and queued
// tasks are abandoned, so at most `workers` further tasks are granted
// after the cancel. A canceled ctx always yields a non-nil return —
// ctx.Err(), i.e. context.Canceled or context.DeadlineExceeded — even
// when the pool raced to quiescence first, so callers observe a
// deterministic error for a canceled run.
func runTasks(ctx context.Context, workers int, seed poolTask) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if workers < 1 {
		workers = 1
	}
	p := &taskPool{deques: make([]taskDeque, workers), ctx: ctx, hooks: poolHooks.Load()}
	p.cond = sync.NewCond(&p.mu)
	stopWatch := make(chan struct{})
	var watch sync.WaitGroup
	if done := ctx.Done(); done != nil {
		watch.Add(1)
		//lint:ignore rawgo the pool's cancellation watcher: wg-joined below via close(stopWatch), it only signals the pool's own stop protocol
		go func() {
			defer watch.Done()
			select {
			case <-done:
				p.cancel(ctx.Err())
			case <-stopWatch:
			}
		}()
	}
	p.spawn(0, seed)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		//lint:ignore rawgo runTasks IS the sanctioned primitive: these are the pool's worker loops, wg-joined below, with task panics re-raised by the abort path
		go func(id int) {
			defer wg.Done()
			c := &poolCtx{pool: p, id: id}
			for {
				t := p.next(id)
				if t == nil {
					return
				}
				p.runOne(c, t)
			}
		}(w)
	}
	wg.Wait()
	close(stopWatch)
	watch.Wait()
	if p.panicked != nil {
		panic(p.panicked)
	}
	if p.failErr != nil {
		// A task-raised run failure (budget exhaustion, spill I/O) wins
		// over a concurrent cancel: the typed error is what the caller
		// acts on, and the failure is what actually stopped the run.
		return p.failErr
	}
	return ctx.Err()
}
