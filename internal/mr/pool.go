package mr

import (
	"sync"
	"sync/atomic"
)

// The engine's unified work-stealing executor. One taskPool runs every
// schedulable unit of a job or a whole program — map tasks, shuffle
// partition tasks, reduce partition tasks, output merge shards — on a
// fixed set of worker goroutines. There is no per-phase or per-job
// fan-out/fan-in: a worker that finishes a reduce partition of one job
// immediately picks up whatever is runnable, typically a map task of a
// downstream or independent job. This is what lets the partition-level
// program scheduler (scheduler.go) overlap phases of dependent jobs
// instead of idling workers at job barriers.
//
// Scheduling policy: each worker owns a private deque. Tasks spawned
// while running on a worker push onto that worker's deque; the owner
// pops newest-first (LIFO, cache-friendly for the stage that spawned
// them), while idle workers steal oldest-first (FIFO) from siblings, so
// stolen work is the coarsest available (the classic work-stealing
// discipline). Task execution order is therefore schedule-dependent —
// everything built on the pool writes results into pre-indexed slots
// and joins phases with counters, so observable results never depend on
// the order (see jobrun.go and the determinism tests).

// poolTask is one unit of schedulable work. The context identifies the
// executing worker so the task can spawn follow-up work onto the local
// deque.
type poolTask func(c *poolCtx)

// poolCtx is the execution context handed to every task.
type poolCtx struct {
	pool *taskPool
	id   int // worker index owning the local deque
}

// spawn schedules fn onto the current worker's deque.
func (c *poolCtx) spawn(fn poolTask) {
	c.pool.spawn(c.id, fn)
}

// spare returns 1 + the number of currently parked workers: the width
// a task may use for nested fine-grained fan-out (the radix sort's top
// level, relation.Merge's shards) without oversubscribing the pool.
// With other jobs' tasks runnable the pool is busy and spare is 1 —
// nested work stays serial; a lone reduce partition on an otherwise
// idle pool gets the whole width, as the barriered engine gave it. The
// count is an instantaneous hint, not a reservation (overlapping tasks
// may observe the same idle workers); results never depend on it.
func (c *poolCtx) spare() int {
	p := c.pool
	p.mu.Lock()
	n := p.idle
	p.mu.Unlock()
	return n + 1
}

// taskDeque is one worker's task queue. A plain mutex-guarded slice:
// pool tasks are coarse (thousands of records each), so queue traffic
// is far too low for the lock to matter.
type taskDeque struct {
	mu sync.Mutex
	q  []poolTask
}

func (d *taskDeque) push(t poolTask) {
	d.mu.Lock()
	d.q = append(d.q, t)
	d.mu.Unlock()
}

// pop removes the newest task (owner side, LIFO).
func (d *taskDeque) pop() poolTask {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.q)
	if n == 0 {
		return nil
	}
	t := d.q[n-1]
	d.q[n-1] = nil
	d.q = d.q[:n-1]
	return t
}

// steal removes the oldest task (thief side, FIFO).
func (d *taskDeque) steal() poolTask {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.q) == 0 {
		return nil
	}
	t := d.q[0]
	d.q[0] = nil
	d.q = d.q[1:]
	return t
}

// taskPool runs tasks to quiescence: runTasks returns when every
// spawned task — including tasks spawned by tasks — has finished.
type taskPool struct {
	deques []taskDeque

	mu   sync.Mutex // guards idle, panicked and the wakeup protocol
	cond *sync.Cond
	idle int
	// stopped flips once, on quiescence or abort. It is atomic so the
	// dequeue fast path can observe an abort without taking mu: after a
	// task panic, workers must abandon queued tasks promptly, not drain
	// them.
	stopped atomic.Bool

	pendingMu sync.Mutex
	pending   int // spawned but unfinished tasks
	panicked  any // first task panic, re-raised on the runTasks caller
}

// spawn schedules fn onto worker `from`'s deque and wakes a sleeper if
// one is parked. The pending count is raised before the task becomes
// visible, so the pool cannot reach quiescence with fn still queued.
//
// Spawning on a quiescent pool — a poolCtx retained past runTasks — is
// misuse: the workers are gone and fn would sit queued forever. It
// panics rather than losing the task silently. (Detection is
// best-effort: it cannot race with a legitimate spawn, because those
// happen inside a running task, which holds pending > 0.)
func (p *taskPool) spawn(from int, fn poolTask) {
	p.pendingMu.Lock()
	if p.pending == 0 && p.stopped.Load() {
		p.pendingMu.Unlock()
		panic("mr: taskPool.spawn after quiescence: poolCtx used outside its runTasks call")
	}
	p.pending++
	p.pendingMu.Unlock()
	p.deques[from].push(fn)
	p.mu.Lock()
	if p.idle > 0 {
		p.cond.Signal()
	}
	p.mu.Unlock()
}

// finish records one task completion; the last completion stops the
// pool and releases every parked worker.
func (p *taskPool) finish() {
	p.pendingMu.Lock()
	p.pending--
	done := p.pending == 0
	p.pendingMu.Unlock()
	if done {
		p.mu.Lock()
		p.stopped.Store(true)
		p.cond.Broadcast()
		p.mu.Unlock()
	}
}

// next returns a runnable task for worker id, or nil when the pool has
// stopped. The fast path pops the local deque, then steals; the slow
// path re-scans every deque under p.mu and parks. Spawners signal under
// the same lock after pushing, so a task pushed after the scan wakes
// the parked worker — no lost wakeups.
func (p *taskPool) next(id int) poolTask {
	if p.stopped.Load() {
		// Quiescence (queues empty) or abort (queued tasks abandoned,
		// panic pending re-raise): either way, stop taking work.
		return nil
	}
	if t := p.deques[id].pop(); t != nil {
		return t
	}
	if t := p.stealFrom(id); t != nil {
		return t
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.stopped.Load() {
			return nil
		}
		if t := p.deques[id].pop(); t != nil {
			return t
		}
		if t := p.stealFrom(id); t != nil {
			return t
		}
		p.idle++
		p.cond.Wait()
		p.idle--
	}
}

// stealFrom scans the other deques round-robin starting after id.
func (p *taskPool) stealFrom(id int) poolTask {
	n := len(p.deques)
	for k := 1; k < n; k++ {
		if t := p.deques[(id+k)%n].steal(); t != nil {
			return t
		}
	}
	return nil
}

// abort records a task panic and stops the pool: workers finish their
// current task and exit, queued tasks are abandoned. The first panic
// wins.
func (p *taskPool) abort(v any) {
	p.mu.Lock()
	if p.panicked == nil {
		p.panicked = v
	}
	p.stopped.Store(true)
	p.cond.Broadcast()
	p.mu.Unlock()
}

// runOne executes t, converting a task panic into an abort so the
// panic can be re-raised on the runTasks caller's goroutine.
func (p *taskPool) runOne(c *poolCtx, t poolTask) {
	defer func() {
		if v := recover(); v != nil {
			p.abort(v)
			return
		}
		p.finish()
	}()
	t(c)
}

// runTasks creates a pool of `workers` goroutines, runs seed as the
// first task, and returns once the pool is quiescent (seed and every
// transitively spawned task finished). A panic in any task aborts the
// pool and is re-raised on the caller's goroutine, so user map/reduce
// panics surface to the RunJob/RunProgram caller exactly as they did
// when phases ran inline.
func runTasks(workers int, seed poolTask) {
	if workers < 1 {
		workers = 1
	}
	p := &taskPool{deques: make([]taskDeque, workers)}
	p.cond = sync.NewCond(&p.mu)
	p.spawn(0, seed)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		//lint:ignore rawgo runTasks IS the sanctioned primitive: these are the pool's worker loops, wg-joined below, with task panics re-raised by the abort path
		go func(id int) {
			defer wg.Done()
			c := &poolCtx{pool: p, id: id}
			for {
				t := p.next(id)
				if t == nil {
					return
				}
				p.runOne(c, t)
			}
		}(w)
	}
	wg.Wait()
	if p.panicked != nil {
		panic(p.panicked)
	}
}
