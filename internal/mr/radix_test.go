package mr

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"testing"
)

// genAdversarialKeys builds shuffle keys that stress every branch of the
// key order: empty keys, keys straddling the packed 8-byte prefix
// (lengths 7, 8 and 9+), long shared prefixes that differ only past the
// prefix, zero bytes that collide with the prefix's right-padding, and
// heavy duplication (the small suffix alphabet guarantees repeats).
func genAdversarialKeys(rng *rand.Rand, n int) [][]byte {
	prefixes := [][]byte{
		nil, // empty / suffix-only keys
		{0x00},
		{0x00, 0x00},
		[]byte("shared"), // 6 bytes
		{0x80, 0xff, 0x00, 0x01, 0x7f, 0xfe, 0x02},       // 7 bytes
		{0x80, 0xff, 0x00, 0x01, 0x7f, 0xfe, 0x02, 0x81}, // exactly 8
		[]byte("shared-prefix-longer-than-8"),
	}
	alphabet := []byte{0x00, 0x01, 0x7f, 0x80, 0xff}
	keys := make([][]byte, n)
	for i := range keys {
		k := append([]byte(nil), prefixes[rng.Intn(len(prefixes))]...)
		for j := rng.Intn(4); j > 0; j-- {
			k = append(k, alphabet[rng.Intn(len(alphabet))])
		}
		keys[i] = k
	}
	return keys
}

func recsFromKeys(keys [][]byte) []record {
	recs := make([]record, len(keys))
	for i, k := range keys {
		recs[i] = record{key: k, msg: intMsg(i), size: KeyBytes(k) + 8}
	}
	return recs
}

// TestRadixMatchesComparisonSort is the old-vs-new differential for the
// sort itself: the radix path (serial and parallel) must visit keys in
// exactly the order of the string-key implementation it replaced —
// plain lexicographic order, pinned here by sort.Strings — and must be
// a permutation of the input.
func TestRadixMatchesComparisonSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		// Mix sizes straddling radixMinLen so both entry paths run.
		n := rng.Intn(radixMinLen * 4)
		keys := genAdversarialKeys(rng, n)
		recs := recsFromKeys(keys)

		want := make([]string, n)
		for i, k := range keys {
			want[i] = string(k)
		}
		sort.Strings(want)

		// Worker counts above sqrt(n) cover the empty-trailing-chunk
		// case in msdRadixParallel (chunk rounding used to leave chunks
		// whose lower bound fell past the end of refs).
		for _, workers := range []int{1, 4, 16, 100, radixMinLen * 5} {
			idx := sortIndexByKey(recs, workers)
			if len(idx) != n {
				t.Fatalf("trial %d workers %d: index len %d, want %d", trial, workers, len(idx), n)
			}
			seen := make([]bool, n)
			for pos, id := range idx {
				if seen[id] {
					t.Fatalf("trial %d workers %d: index %d visited twice", trial, workers, id)
				}
				seen[id] = true
				if got := string(recs[id].key); got != want[pos] {
					t.Fatalf("trial %d workers %d: key %d = %q, want %q",
						trial, workers, pos, got, want[pos])
				}
			}
		}
	}
}

// TestForEachGroupBoundariesAdversarialKeys extends the grouping
// differential to the adversarial key mix: run boundaries, key order and
// per-key message arrival order must match the map-based string-key
// oracle on empty keys, 8-byte-boundary lengths and shared prefixes, at
// sizes that engage the radix sorter.
func TestForEachGroupBoundariesAdversarialKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 15; trial++ {
		n := radixMinLen + rng.Intn(radixMinLen*2)
		keys := genAdversarialKeys(rng, n)
		recs := make([]record, n)
		for i, k := range keys {
			var msg Message = intMsg(i)
			if rng.Intn(5) == 0 {
				msg = Packed{Msgs: []Message{intMsg(1000 * i), intMsg(1000*i + 1)}}
			}
			recs[i] = record{key: k, msg: msg, size: KeyBytes(k) + 8}
		}
		want := groupTrace(refGroup, append([]record(nil), recs...))
		got := groupTrace(forEachGroup, append([]record(nil), recs...))
		if got != want {
			t.Fatalf("trial %d: serial grouping diverged:\n got %s\nwant %s", trial, got, want)
		}
		// The engine's parallel-sort path must walk identical runs.
		parallel := append([]record(nil), recs...)
		var ptrace string
		forEachGroupIdx(parallel, sortIndexByKey(parallel, 8), func(key []byte, msgs []Message) {
			ptrace += fmt.Sprintf("%q:", key)
			for _, m := range msgs {
				ptrace += fmt.Sprintf("%v,", m)
			}
			ptrace += ";"
		})
		if ptrace != want {
			t.Fatalf("trial %d: parallel grouping diverged:\n got %s\nwant %s", trial, ptrace, want)
		}
	}
}

// TestHashKeyPartitionMatchesStringImpl pins shuffle partition
// assignment across the string→[]byte key migration: FNV-1a over the
// key bytes — and therefore hash%reducers for every reducer count —
// must match the string-key implementation (hash/fnv over the same
// bytes) on the adversarial key mix.
func TestHashKeyPartitionMatchesStringImpl(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	keys := genAdversarialKeys(rng, 2000)
	keys = append(keys, nil, []byte{}, bytes.Repeat([]byte{0xff}, 40))
	for _, k := range keys {
		h := fnv.New32a()
		h.Write(k)
		want := h.Sum32()
		if got := hashKey(k); got != want {
			t.Fatalf("hashKey(%q) = %d, want %d", k, got, want)
		}
		for _, reducers := range []uint32{1, 2, 7, 33, 509} {
			if hashKey(k)%reducers != want%reducers {
				t.Fatalf("partition of %q drifted at r=%d", k, reducers)
			}
		}
	}
}

// TestEmitPathZeroKeyAllocs is the allocation regression guard for the
// tentpole: emitting a record on the engine's production emit path
// (emitInto — arena key copy, sized record append) must allocate
// nothing per record once the task's arena chunk and record buffer
// exist.
func TestEmitPathZeroKeyAllocs(t *testing.T) {
	var arena keyArena
	recs := make([]record, 0, 4)
	emit := emitInto(&arena, &recs)
	var msg Message = intMsg(7)
	key := []byte(tup(42, 7).Key())
	emit(key, msg) // warm: allocates the first arena chunk
	recs = recs[:0]
	allocs := testing.AllocsPerRun(5000, func() {
		recs = recs[:0]
		emit(key, msg)
	})
	if allocs != 0 {
		t.Errorf("emit path allocates %v per record, want 0", allocs)
	}
}

// TestKeyArenaIsolation guards the arena's chunk-rollover contract:
// keys handed out earlier must stay intact when later keys force new
// chunks, and held keys must be capped so appends cannot clobber a
// neighbour.
func TestKeyArenaIsolation(t *testing.T) {
	var arena keyArena
	first := arena.hold([]byte("first-key"))
	// Force several chunk rollovers with large keys.
	big := bytes.Repeat([]byte{0xab}, keyArenaChunk/2+1)
	for i := 0; i < 5; i++ {
		if got := arena.hold(big); !bytes.Equal(got, big) {
			t.Fatalf("rollover %d corrupted the held key", i)
		}
	}
	if string(first) != "first-key" {
		t.Fatalf("chunk rollover corrupted an earlier key: %q", first)
	}
	a := arena.hold([]byte("aa"))
	_ = append(a, 'X') // must not touch the next key's bytes
	b := arena.hold([]byte("bb"))
	if string(b) != "bb" {
		t.Fatalf("append through a held key clobbered its neighbour: %q", b)
	}
	// A key larger than the chunk size gets its own chunk.
	huge := bytes.Repeat([]byte{0x01}, keyArenaChunk+17)
	if got := arena.hold(huge); !bytes.Equal(got, huge) {
		t.Fatal("oversized key corrupted")
	}
}
