package cost

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// synthSpecs builds a diverse set of job specs: varying partition
// counts, input/intermediate/output sizes, with enough large
// intermediates that the merge-volume feature is exercised.
func synthSpecs(rng *rand.Rand, n int) []JobSpec {
	specs := make([]JobSpec, n)
	for i := range specs {
		parts := 1 + rng.Intn(3)
		j := JobSpec{OutputMB: rng.Float64() * 500}
		for p := 0; p < parts; p++ {
			j.Partitions = append(j.Partitions, Partition{
				Name:    fmt.Sprintf("P%d", p),
				InputMB: 1 + rng.Float64()*2000,
				InterMB: rng.Float64() * 3000,
				Records: rng.Int63n(1 << 20),
			})
		}
		specs[i] = j
	}
	return specs
}

func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	if m := math.Max(math.Abs(a), math.Abs(b)); m > 1 {
		return d / m
	}
	return d
}

// TestFeaturesDecomposition pins the exact linear decomposition the
// calibration relies on: JobCost(Gumbo) = Coeffs · Features.
func TestFeaturesDecomposition(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cfg := Default()
	for _, j := range synthSpecs(rng, 50) {
		want := cfg.JobCost(Gumbo, j)
		f := cfg.Features(j)
		co := cfg.Coeffs()
		got := 0.0
		for k := range f {
			got += co[k] * f[k]
		}
		if relDiff(got, want) > 1e-12 {
			t.Fatalf("Coeffs·Features = %v, JobCost = %v", got, want)
		}
	}
}

// TestJobCostMonotonePinnedTasks: with mapper and reducer counts pinned,
// growing any measured size (input, intermediate, records, output) never
// makes the job cheaper, under either model. (Task counts must be pinned:
// a derived mapper-count jump can legitimately drop merge passes.)
func TestJobCostMonotonePinnedTasks(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		cfg := Default()
		cfg.LocalRead = rng.Float64()
		cfg.LocalWrite = rng.Float64()
		cfg.HDFSRead = rng.Float64()
		cfg.HDFSWrite = rng.Float64()
		cfg.Transfer = rng.Float64()
		cfg.BufMapMB = 10 + rng.Float64()*500
		cfg.BufRedMB = 10 + rng.Float64()*500

		base := JobSpec{
			Partitions: []Partition{{
				InputMB: rng.Float64() * 1000,
				InterMB: rng.Float64() * 2000,
				Records: rng.Int63n(1 << 20),
				Mappers: 1 + rng.Intn(8),
			}},
			OutputMB: rng.Float64() * 300,
			Reducers: 1 + rng.Intn(6),
		}
		grow := func(name string, f func(j JobSpec) JobSpec) {
			bigger := f(base)
			for _, m := range []Model{Gumbo, Wang} {
				lo, hi := cfg.JobCost(m, base), cfg.JobCost(m, bigger)
				if hi < lo-1e-9 {
					t.Fatalf("trial %d: growing %s made %v job cheaper: %v -> %v", trial, name, m, lo, hi)
				}
			}
		}
		grow("InputMB", func(j JobSpec) JobSpec {
			j.Partitions = append([]Partition(nil), j.Partitions...)
			j.Partitions[0].InputMB += 1 + rng.Float64()*500
			return j
		})
		grow("InterMB", func(j JobSpec) JobSpec {
			j.Partitions = append([]Partition(nil), j.Partitions...)
			j.Partitions[0].InterMB += 1 + rng.Float64()*500
			return j
		})
		grow("Records", func(j JobSpec) JobSpec {
			j.Partitions = append([]Partition(nil), j.Partitions...)
			j.Partitions[0].Records += rng.Int63n(1 << 20)
			return j
		})
		grow("OutputMB", func(j JobSpec) JobSpec {
			j.OutputMB += 1 + rng.Float64()*300
			return j
		})
	}
}

// TestFitRoundTrip: observations generated from a known config are
// fitted starting from the (different) default constants; the fit must
// recover the true lumped coefficients and predict held-out jobs.
func TestFitRoundTrip(t *testing.T) {
	truth := Default()
	truth.LocalRead = 0.011
	truth.LocalWrite = 0.044
	truth.HDFSRead = 0.21
	truth.HDFSWrite = 0.37
	truth.Transfer = 0.009
	truth.JobOverhead = 3.5

	rng := rand.New(rand.NewSource(99))
	var obs []Observation
	for _, j := range synthSpecs(rng, 60) {
		obs = append(obs, Observation{Spec: j, Seconds: truth.JobCost(Gumbo, j)})
	}
	res, err := Fit(Default(), obs)
	if err != nil {
		t.Fatal(err)
	}
	wantCo := truth.Coeffs()
	for k, got := range res.Coeffs {
		if !res.Fitted[k] {
			t.Fatalf("coefficient %s unexpectedly unidentifiable", coeffNames[k])
		}
		if relDiff(got, wantCo[k]) > 1e-4 {
			t.Errorf("coefficient %s = %v, want %v", coeffNames[k], got, wantCo[k])
		}
	}
	for _, j := range synthSpecs(rng, 20) { // held out
		if d := relDiff(res.Config.JobCost(Gumbo, j), truth.JobCost(Gumbo, j)); d > 1e-4 {
			t.Errorf("held-out prediction off by %v", d)
		}
	}
	if fitted, def := res.Config.MeanAbsRelError(obs), Default().MeanAbsRelError(obs); fitted >= def {
		t.Errorf("fitted error %v not below default error %v", fitted, def)
	}
}

// TestFitDegenerateColumn: when no observation exercises a feature (here
// K: no job writes output), its coefficient is unidentifiable and must
// keep the base value.
func TestFitDegenerateColumn(t *testing.T) {
	truth := Default()
	truth.HDFSRead = 0.5
	rng := rand.New(rand.NewSource(3))
	var obs []Observation
	for _, j := range synthSpecs(rng, 30) {
		j.OutputMB = 0
		obs = append(obs, Observation{Spec: j, Seconds: truth.JobCost(Gumbo, j)})
	}
	base := Default()
	res, err := Fit(base, obs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fitted[4] {
		t.Error("hw marked fitted with no output data")
	}
	if res.Config.HDFSWrite != base.HDFSWrite {
		t.Errorf("hw = %v, want base %v", res.Config.HDFSWrite, base.HDFSWrite)
	}
	if relDiff(res.Config.HDFSRead, truth.HDFSRead) > 1e-4 {
		t.Errorf("hr = %v, want %v", res.Config.HDFSRead, truth.HDFSRead)
	}
}

// TestFitSplitPreservesSums: however lw+t and lr+lw are split into
// individual constants, the fitted config's lumped coefficients equal
// the fitted coefficients — predictions are independent of the split.
func TestFitSplitPreservesSums(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	truth := Default()
	truth.LocalWrite = 0.002 // force the lw cap path: lr+lw fits below base split of lw+t
	truth.LocalRead = 0.001
	truth.Transfer = 0.9
	var obs []Observation
	for _, j := range synthSpecs(rng, 40) {
		obs = append(obs, Observation{Spec: j, Seconds: truth.JobCost(Gumbo, j)})
	}
	res, err := Fit(Default(), obs)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []float64{res.Config.LocalRead, res.Config.LocalWrite, res.Config.Transfer} {
		if c < 0 {
			t.Fatalf("negative constant after split: lr=%v lw=%v t=%v",
				res.Config.LocalRead, res.Config.LocalWrite, res.Config.Transfer)
		}
	}
	if got, want := res.Config.LocalWrite+res.Config.Transfer, truth.LocalWrite+truth.Transfer; relDiff(got, want) > 1e-4 {
		t.Errorf("lw+t = %v, want %v", got, want)
	}
	if got, want := res.Config.LocalRead+res.Config.LocalWrite, truth.LocalRead+truth.LocalWrite; relDiff(got, want) > 1e-4 {
		t.Errorf("lr+lw = %v, want %v", got, want)
	}
}

func TestFitNoObservations(t *testing.T) {
	if _, err := Fit(Default(), nil); err == nil {
		t.Error("Fit with no observations did not error")
	}
}
