// Package cost implements the MapReduce I/O cost model of §3.3: the
// per-input-partition model introduced by the paper (Eq. 2, "cost_gumbo")
// and the aggregate model of Wang et al. / MRShare (Eq. 3, "cost_wang").
//
// All sizes are in MB and all costs are in simulated seconds (the
// constants of Table 5 are seconds per MB). The same model produces both
// job totals (for the optimizers) and per-task durations (for the cluster
// simulator that derives net time).
package cost

import (
	"fmt"
	"math"
)

// Model selects the cost model variant.
type Model int

const (
	// Gumbo is the paper's per-partition model (Eq. 2): each uniform
	// input part contributes its own map and merge cost.
	Gumbo Model = iota
	// Wang is the MRShare/Wang et al. model (Eq. 3): map cost is computed
	// once from aggregate input and intermediate sizes.
	Wang
)

// String returns the model's paper name: "gumbo" (Eq. 2) or "wang"
// (Eq. 3).
func (m Model) String() string {
	switch m {
	case Gumbo:
		return "gumbo"
	case Wang:
		return "wang"
	}
	return fmt.Sprintf("Model(%d)", int(m))
}

// Config holds the cost-model constants of Table 1 with the measured
// values of Table 5, plus the engine settings they interact with.
type Config struct {
	LocalRead  float64 // lr: local disk read cost per MB
	LocalWrite float64 // lw: local disk write cost per MB
	HDFSRead   float64 // hr: hdfs read cost per MB
	HDFSWrite  float64 // hw: hdfs write cost per MB
	Transfer   float64 // t: map->reduce transfer cost per MB

	MergeFactor int     // D: external sort merge factor
	BufMapMB    float64 // buf_map: map task buffer limit (MB)
	BufRedMB    float64 // buf_red: reduce task buffer limit (MB)

	JobOverhead  float64 // cost_h: fixed cost of starting one MR job (s)
	TaskOverhead float64 // fixed startup time per task (s), net-time model

	SplitMB       float64 // input split size; mappers per part = ceil(N_i/SplitMB)
	ReducerDataMB float64 // intermediate MB allocated per reducer (§5.1: 256MB)

	MetaPerRecordBytes int // per-record map output metadata (16 bytes in Hadoop)

	// Scale records the factor applied by Scaled (1 = paper scale). It
	// converts absolute full-scale settings (e.g. Pig's 1 GB-per-reducer
	// input allocation, baseline job overheads) into scaled units.
	Scale float64
}

// Default returns the constants measured on the paper's cluster
// (Table 5) together with standard Hadoop settings from Appendix B.
func Default() Config {
	return Config{
		LocalRead:          0.03,
		LocalWrite:         0.085,
		HDFSRead:           0.15,
		HDFSWrite:          0.25,
		Transfer:           0.017,
		MergeFactor:        10,
		BufMapMB:           409,
		BufRedMB:           512,
		JobOverhead:        6.0,
		TaskOverhead:       1.0,
		SplitMB:            128,
		ReducerDataMB:      256,
		MetaPerRecordBytes: 16,
		Scale:              1,
	}
}

// Zero returns a configuration with every constant zero except those the
// caller sets afterwards; used by the Appendix A NP-hardness gadget
// ("all I/O constants equal to 0, except hr = 1").
func Zero() Config {
	return Config{MergeFactor: 10, BufMapMB: 1, BufRedMB: 1, SplitMB: 128, ReducerDataMB: 256, Scale: 1}
}

// Scaled returns a copy with every size-dependent setting (buffers,
// split size, reducer allocation) and every fixed overhead multiplied by
// f. Because all remaining cost terms are linear in data size and the
// merge-log arguments are ratios of scaled quantities, the cost of a
// workload scaled by f under Scaled(f) is exactly f times its full-scale
// cost: experiments at 1/1000 of the paper's data sizes reproduce
// full-scale behaviour precisely, and dividing simulated times by f
// recovers paper-equivalent seconds.
func (c Config) Scaled(f float64) Config {
	s := c
	s.BufMapMB *= f
	s.BufRedMB *= f
	s.SplitMB *= f
	s.ReducerDataMB *= f
	s.JobOverhead *= f
	s.TaskOverhead *= f
	if s.Scale == 0 {
		s.Scale = 1
	}
	s.Scale *= f
	return s
}

// mergePasses returns the merge factor log_D(⌈x⌉) for x initial sort
// runs, exactly as the paper's merge_map/merge_red formulas write it
// (a fractional quantity; zero when the data fits in one buffer). The
// fractional form is what lets the per-partition model price map-side
// merges that the aggregate model averages away (§5.2 "Cost Model").
func (c Config) mergePasses(x float64) float64 {
	runs := math.Ceil(x)
	if runs <= 1 || c.MergeFactor <= 1 {
		return 0
	}
	return math.Log(runs) / math.Log(float64(c.MergeFactor))
}

// Mappers returns m_i, the number of map tasks for an input part of the
// given size.
func (c Config) Mappers(inputMB float64) int {
	if c.SplitMB <= 0 {
		return 1
	}
	m := int(math.Ceil(inputMB / c.SplitMB))
	if m < 1 {
		m = 1
	}
	return m
}

// Reducers returns r derived from the intermediate data size per §5.1's
// optimization (3): one reducer per ReducerDataMB of intermediate data.
func (c Config) Reducers(interMB float64) int {
	if c.ReducerDataMB <= 0 {
		return 1
	}
	r := int(math.Ceil(interMB / c.ReducerDataMB))
	if r < 1 {
		r = 1
	}
	return r
}

// mapMergeVolume returns the map-side merge volume V_i = M_i ·
// merge-passes: the MB that flow through the external sort's local
// read+write during the map phase. MergeMap prices it at lr+lw per MB;
// the calibration fit (Fit) uses the volume directly as the feature the
// lumped lr+lw coefficient multiplies.
func (c Config) mapMergeVolume(mi, mhat float64, mappers int) float64 {
	if mi <= 0 || c.BufMapMB <= 0 {
		return 0
	}
	perMapper := (mi + mhat) / float64(mappers)
	runs := math.Ceil(perMapper / c.BufMapMB)
	return mi * c.mergePasses(runs)
}

// MergeMap computes merge_map(M_i): the sort/merge cost in the map phase
// for intermediate size mi produced by `mappers` map tasks with metadata
// size mhat (all MB).
func (c Config) MergeMap(mi, mhat float64, mappers int) float64 {
	return (c.LocalRead + c.LocalWrite) * c.mapMergeVolume(mi, mhat, mappers)
}

// MapCost computes cost_map(N_i, M_i) = hr·N_i + merge_map(M_i) + lw·M_i.
func (c Config) MapCost(ni, mi, mhat float64, mappers int) float64 {
	return c.HDFSRead*ni + c.MergeMap(mi, mhat, mappers) + c.LocalWrite*mi
}

// redMergeVolume returns the reduce-side merge volume (see
// mapMergeVolume) for total intermediate size m over r reducers.
func (c Config) redMergeVolume(m float64, reducers int) float64 {
	if m <= 0 || c.BufRedMB <= 0 || reducers < 1 {
		return 0
	}
	perReducer := m / float64(reducers)
	runs := math.Ceil(perReducer / c.BufRedMB)
	return m * c.mergePasses(runs)
}

// MergeRed computes merge_red(M) for total intermediate size m spread
// over r reducers.
func (c Config) MergeRed(m float64, reducers int) float64 {
	return (c.LocalRead + c.LocalWrite) * c.redMergeVolume(m, reducers)
}

// RedCost computes cost_red(M, K) = t·M + merge_red(M) + hw·K.
func (c Config) RedCost(m, k float64, reducers int) float64 {
	return c.Transfer*m + c.MergeRed(m, reducers) + c.HDFSWrite*k
}

// Partition describes one uniform part I_i of a job's input: the mapper
// emits the same number of key-value pairs for every tuple of the part
// (§3.3). In practice a part is (a subset of) one input relation.
type Partition struct {
	Name    string
	InputMB float64 // N_i
	InterMB float64 // M_i
	Records int64   // map output records from this part (drives M̂_i)
	Mappers int     // m_i; 0 means derive from InputMB via Config.Mappers
}

// MetaMB returns M̂_i, the map output metadata size.
func (p Partition) MetaMB(c Config) float64 {
	return float64(p.Records) * float64(c.MetaPerRecordBytes) / (1 << 20)
}

// JobSpec carries everything needed to price one MR job.
type JobSpec struct {
	Partitions []Partition
	OutputMB   float64 // K
	Reducers   int     // r; 0 means derive from intermediate size
}

// InterMB returns M = Σ M_i.
func (j JobSpec) InterMB() float64 {
	var m float64
	for _, p := range j.Partitions {
		m += p.InterMB
	}
	return m
}

// InputMB returns Σ N_i.
func (j JobSpec) InputMB() float64 {
	var n float64
	for _, p := range j.Partitions {
		n += p.InputMB
	}
	return n
}

// records returns total map output records.
func (j JobSpec) records() int64 {
	var r int64
	for _, p := range j.Partitions {
		r += p.Records
	}
	return r
}

// mappersFor resolves m_i.
func (c Config) mappersFor(p Partition) int {
	if p.Mappers > 0 {
		return p.Mappers
	}
	return c.Mappers(p.InputMB)
}

// reducersFor resolves r.
func (c Config) reducersFor(j JobSpec) int {
	if j.Reducers > 0 {
		return j.Reducers
	}
	return c.Reducers(j.InterMB())
}

// JobCost prices the whole job under the chosen model:
//
//	cost_h + Σ_i cost_map(N_i, M_i) + cost_red(M, K)   (Gumbo, Eq. 2)
//	cost_h + cost_map(ΣN_i, ΣM_i)   + cost_red(M, K)   (Wang, Eq. 3)
func (c Config) JobCost(m Model, j JobSpec) float64 {
	total := c.JobOverhead
	switch m {
	case Gumbo:
		for _, p := range j.Partitions {
			total += c.MapCost(p.InputMB, p.InterMB, p.MetaMB(c), c.mappersFor(p))
		}
	case Wang:
		var n, mi float64
		var records int64
		mappers := 0
		for _, p := range j.Partitions {
			n += p.InputMB
			mi += p.InterMB
			records += p.Records
			mappers += c.mappersFor(p)
		}
		if mappers < 1 {
			mappers = 1
		}
		mhat := float64(records) * float64(c.MetaPerRecordBytes) / (1 << 20)
		total += c.MapCost(n, mi, mhat, mappers)
	default:
		panic(fmt.Sprintf("cost: unknown model %v", m))
	}
	total += c.RedCost(j.InterMB(), j.OutputMB, c.reducersFor(j))
	return total
}

// TaskPlan is the job broken into individual task durations for the
// cluster simulator. Map tasks are grouped per input partition.
type TaskPlan struct {
	MapTasks    []float64 // one duration per map task
	ReduceTasks []float64 // one duration per reduce task
	Overhead    float64   // job startup (cost_h)
}

// Tasks converts a job spec into per-task durations. The per-task cost is
// the partition (resp. reduce) cost divided evenly across its tasks, plus
// the fixed task overhead; this is the granularity at which the cluster
// simulator schedules waves.
func (c Config) Tasks(j JobSpec) TaskPlan {
	return c.TasksLoaded(j, nil)
}

// TasksLoaded is Tasks with measured per-reducer loads: the total reduce
// cost is apportioned proportionally to each reducer's shuffled bytes, so
// key skew stretches the reduce wave exactly as it would on a real
// cluster. A nil or mismatching loads slice falls back to even division.
func (c Config) TasksLoaded(j JobSpec, reduceLoadsMB []float64) TaskPlan {
	plan := TaskPlan{Overhead: c.JobOverhead}
	for _, p := range j.Partitions {
		m := c.mappersFor(p)
		per := c.MapCost(p.InputMB, p.InterMB, p.MetaMB(c), m) / float64(m)
		for i := 0; i < m; i++ {
			plan.MapTasks = append(plan.MapTasks, per+c.TaskOverhead)
		}
	}
	r := c.reducersFor(j)
	total := c.RedCost(j.InterMB(), j.OutputMB, r)
	shares := make([]float64, r)
	even := true
	if len(reduceLoadsMB) == r {
		var sum float64
		for _, l := range reduceLoadsMB {
			sum += l
		}
		if sum > 0 {
			even = false
			for i, l := range reduceLoadsMB {
				shares[i] = l / sum
			}
		}
	}
	for i := 0; i < r; i++ {
		share := 1 / float64(r)
		if !even {
			share = shares[i]
		}
		plan.ReduceTasks = append(plan.ReduceTasks, total*share+c.TaskOverhead)
	}
	return plan
}
