package cost

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestDefaultMatchesTable5(t *testing.T) {
	c := Default()
	if c.LocalRead != 0.03 || c.LocalWrite != 0.085 || c.HDFSRead != 0.15 ||
		c.HDFSWrite != 0.25 || c.Transfer != 0.017 || c.MergeFactor != 10 ||
		c.BufMapMB != 409 || c.BufRedMB != 512 {
		t.Errorf("Default() deviates from Table 5: %+v", c)
	}
}

func TestMergePasses(t *testing.T) {
	c := Default()
	cases := []struct {
		runs float64
		want float64
	}{
		{0.5, 0}, {1, 0}, {2, math.Log10(2)}, {10, 1}, {100, 2}, {40.2, math.Log10(41)},
	}
	for _, cse := range cases {
		if got := c.mergePasses(cse.runs); !almostEq(got, cse.want) {
			t.Errorf("mergePasses(%v) = %v, want %v", cse.runs, got, cse.want)
		}
	}
}

func TestMapCostNoMergeWhenFitsInBuffer(t *testing.T) {
	c := Default()
	// 100MB input, 100MB intermediate, 1 mapper: fits in 409MB buffer.
	got := c.MapCost(100, 100, 0, 1)
	want := c.HDFSRead*100 + c.LocalWrite*100
	if !almostEq(got, want) {
		t.Errorf("MapCost = %v, want %v", got, want)
	}
}

func TestMapCostWithMergePass(t *testing.T) {
	c := Default()
	// One mapper, 5000MB intermediate: ceil(5000/409)=13 runs, so the
	// merge factor is log_10(13).
	got := c.MergeMap(5000, 0, 1)
	want := (c.LocalRead + c.LocalWrite) * 5000 * (math.Log(13) / math.Log(10))
	if !almostEq(got, want) {
		t.Errorf("MergeMap = %v, want %v", got, want)
	}
	// Spreading over 13 mappers removes the merge cost entirely.
	if got := c.MergeMap(5000, 0, 13); got != 0 {
		t.Errorf("MergeMap with many mappers = %v, want 0", got)
	}
}

func TestMetadataIncreasesMergeCost(t *testing.T) {
	c := Default()
	// Right at the buffer boundary, metadata tips it into a merge pass.
	base := c.MergeMap(409, 0, 1)
	withMeta := c.MergeMap(409, 10, 1)
	if base != 0 {
		t.Errorf("base merge = %v, want 0", base)
	}
	if withMeta <= 0 {
		t.Errorf("metadata did not trigger a merge pass: %v", withMeta)
	}
}

func TestRedCost(t *testing.T) {
	c := Default()
	got := c.RedCost(1000, 200, 4)
	// 1000/4 = 250MB per reducer < 512 buffer: no merge.
	want := c.Transfer*1000 + c.HDFSWrite*200
	if !almostEq(got, want) {
		t.Errorf("RedCost = %v, want %v", got, want)
	}
}

func TestMappersAndReducers(t *testing.T) {
	c := Default()
	if got := c.Mappers(0); got != 1 {
		t.Errorf("Mappers(0) = %d", got)
	}
	if got := c.Mappers(129); got != 2 {
		t.Errorf("Mappers(129) = %d", got)
	}
	if got := c.Reducers(0); got != 1 {
		t.Errorf("Reducers(0) = %d", got)
	}
	if got := c.Reducers(257); got != 2 {
		t.Errorf("Reducers(257) = %d", got)
	}
}

func TestGumboVsWangDivergence(t *testing.T) {
	// The motivating example of §3.3: one relation whose map output is
	// large and one that filters everything. The aggregate (Wang) model
	// averages the intermediate data over all mappers, missing the
	// map-side merges of the expanding part.
	c := Default()
	job := JobSpec{
		Partitions: []Partition{
			// Small input exploding to 4000MB from 1 mapper.
			{Name: "R", InputMB: 100, InterMB: 4000, Records: 4e6, Mappers: 1},
			// Large input filtered to nothing across many mappers.
			{Name: "S", InputMB: 4000, InterMB: 0, Records: 0, Mappers: 32},
		},
		OutputMB: 10,
	}
	gumbo := c.JobCost(Gumbo, job)
	wang := c.JobCost(Wang, job)
	if gumbo <= wang {
		t.Errorf("expected per-partition model to price the merge: gumbo=%v wang=%v", gumbo, wang)
	}
}

func TestModelsAgreeOnSinglePartition(t *testing.T) {
	c := Default()
	f := func(nRaw, mRaw uint16) bool {
		n := float64(nRaw%2000) + 1
		m := float64(mRaw % 4000)
		job := JobSpec{
			Partitions: []Partition{{Name: "R", InputMB: n, InterMB: m, Records: int64(m * 100)}},
			OutputMB:   n / 2,
		}
		return almostEq(c.JobCost(Gumbo, job), c.JobCost(Wang, job))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJobCostMonotoneInInput(t *testing.T) {
	c := Default()
	f := func(nRaw uint16, extra uint8) bool {
		n := float64(nRaw) + 1
		base := JobSpec{Partitions: []Partition{{InputMB: n, InterMB: n, Records: int64(n)}}}
		more := JobSpec{Partitions: []Partition{{InputMB: n + float64(extra), InterMB: n + float64(extra), Records: int64(n) + int64(extra)}}}
		return c.JobCost(Gumbo, more) >= c.JobCost(Gumbo, base)-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAppendixAGadgetCosts(t *testing.T) {
	// Appendix A: all constants 0 except hr = 1; then the cost of a job
	// with input a_i MB equals cost_h + a_i = a_i.
	c := Zero()
	c.HDFSRead = 1
	job := JobSpec{
		Partitions: []Partition{{Name: "S1", InputMB: 42, InterMB: 42, Records: 42}},
		OutputMB:   42,
	}
	if got := c.JobCost(Gumbo, job); !almostEq(got, 42) {
		t.Errorf("gadget job cost = %v, want 42", got)
	}
}

func TestScaled(t *testing.T) {
	c := Default().Scaled(0.01)
	if !almostEq(c.BufMapMB, 4.09) || !almostEq(c.SplitMB, 1.28) || !almostEq(c.ReducerDataMB, 2.56) {
		t.Errorf("Scaled wrong: %+v", c)
	}
	// I/O constants unchanged.
	if c.HDFSRead != 0.15 {
		t.Errorf("Scaled changed I/O constants")
	}
}

func TestTasksSumToJobCost(t *testing.T) {
	c := Default()
	c.TaskOverhead = 0
	job := JobSpec{
		Partitions: []Partition{
			{Name: "R", InputMB: 500, InterMB: 700, Records: 1e6},
			{Name: "S", InputMB: 300, InterMB: 100, Records: 2e5},
		},
		OutputMB: 50,
	}
	plan := c.Tasks(job)
	var sum float64
	for _, d := range plan.MapTasks {
		sum += d
	}
	for _, d := range plan.ReduceTasks {
		sum += d
	}
	sum += plan.Overhead
	if !almostEq(sum, c.JobCost(Gumbo, job)) {
		t.Errorf("task sum %v != job cost %v", sum, c.JobCost(Gumbo, job))
	}
	if len(plan.MapTasks) != c.Mappers(500)+c.Mappers(300) {
		t.Errorf("map task count = %d", len(plan.MapTasks))
	}
}

func TestTaskOverheadAdds(t *testing.T) {
	c := Default()
	job := JobSpec{Partitions: []Partition{{InputMB: 1, InterMB: 1, Records: 10}}}
	plan := c.Tasks(job)
	if len(plan.MapTasks) != 1 || len(plan.ReduceTasks) != 1 {
		t.Fatalf("task counts: %d maps %d reds", len(plan.MapTasks), len(plan.ReduceTasks))
	}
	if plan.MapTasks[0] < c.TaskOverhead {
		t.Error("task overhead missing")
	}
}
