// Calibration: fit the cost model's linear constants to measured job
// times by least squares.
//
// The Gumbo job cost (Eq. 2) is linear in five lumped coefficients.
// Expanding JobCost(Gumbo, j) with N = ΣN_i, M = ΣM_i, merge volume
// V = Σ mapMergeVolume_i + redMergeVolume, and output K:
//
//	cost = cost_h·1 + hr·N + (lw+t)·M + (lr+lw)·V + hw·K
//
// lw, t and lr never appear alone — only the sums lw+t (every
// intermediate MB is written by a mapper and transferred to a reducer)
// and lr+lw (every merged MB is read and rewritten) are identifiable
// from job-level measurements. Fit therefore solves for the five lumped
// coefficients [cost_h, hr, lw+t, lr+lw, hw] and splits the sums back
// into individual constants in the base config's proportions, so the
// fitted Config reproduces the least-squares predictions exactly.
package cost

import (
	"fmt"
	"math"
)

// Observation pairs one executed job's measured size spec with its
// measured cost in seconds (for the in-process engine: the summed
// per-task wall-clock, mr.JobTiming.TotalSeconds).
type Observation struct {
	Spec    JobSpec
	Seconds float64
}

// nFeatures is the number of lumped coefficients of the Gumbo model.
const nFeatures = 5

// Features returns the job's feature vector [1, N, M, V, K] under the
// config's size-dependent settings (splits, buffers, merge factor):
// the quantities the lumped coefficients multiply. The decomposition is
// exact: JobCost(Gumbo, j) = Coeffs()·Features(j).
func (c Config) Features(j JobSpec) [nFeatures]float64 {
	var f [nFeatures]float64
	f[0] = 1
	for _, p := range j.Partitions {
		f[1] += p.InputMB
		f[3] += c.mapMergeVolume(p.InterMB, p.MetaMB(c), c.mappersFor(p))
	}
	m := j.InterMB()
	f[2] = m
	f[3] += c.redMergeVolume(m, c.reducersFor(j))
	f[4] = j.OutputMB
	return f
}

// Coeffs returns the config's lumped coefficient vector
// [cost_h, hr, lw+t, lr+lw, hw] (see Features).
func (c Config) Coeffs() [nFeatures]float64 {
	return [nFeatures]float64{
		c.JobOverhead,
		c.HDFSRead,
		c.LocalWrite + c.Transfer,
		c.LocalRead + c.LocalWrite,
		c.HDFSWrite,
	}
}

// coeffNames labels the lumped coefficients in reports.
var coeffNames = [nFeatures]string{"cost_h", "hr", "lw+t", "lr+lw", "hw"}

// FitResult is the outcome of one calibration.
type FitResult struct {
	// Config is the base config with the fitted constants substituted:
	// JobOverhead, HDFSRead, HDFSWrite directly; LocalWrite, Transfer and
	// LocalRead split from the fitted lw+t and lr+lw in the base config's
	// proportions. All size-dependent settings (buffers, splits, merge
	// factor, reducer allocation) are kept from the base, so the fitted
	// config prices exactly the feature vectors it was fitted on.
	Config Config
	// Coeffs are the fitted lumped coefficients [cost_h, hr, lw+t, lr+lw, hw],
	// equal to Config.Coeffs().
	Coeffs [nFeatures]float64
	// Fitted marks which coefficients were estimated; a coefficient whose
	// feature column is zero across all observations (e.g. no job ever
	// merged) is unidentifiable and keeps the base config's value.
	Fitted [nFeatures]bool
	// N is the number of observations used.
	N int
}

// CoeffString renders the fitted coefficients for reports, marking the
// unidentifiable ones.
func (r FitResult) CoeffString() string {
	s := ""
	for k := 0; k < nFeatures; k++ {
		if k > 0 {
			s += " "
		}
		tag := ""
		if !r.Fitted[k] {
			tag = "*"
		}
		s += fmt.Sprintf("%s=%.6g%s", coeffNames[k], r.Coeffs[k], tag)
	}
	return s
}

// Fit estimates the lumped cost coefficients from measured jobs by
// ridge-regularized least squares and returns them embedded in a
// Config. The base config supplies the size-dependent settings used to
// compute features, the values of unidentifiable coefficients, and the
// proportions for splitting lw+t and lr+lw. Negative estimates are
// clamped to zero (the constants are physical prices). At least one
// observation is required.
func Fit(base Config, obs []Observation) (FitResult, error) {
	if len(obs) == 0 {
		return FitResult{}, fmt.Errorf("cost: Fit needs at least one observation")
	}
	X := make([][nFeatures]float64, len(obs))
	y := make([]float64, len(obs))
	for i, o := range obs {
		X[i] = base.Features(o.Spec)
		y[i] = o.Seconds
	}

	// A feature column that is zero over every observation carries no
	// information about its coefficient: drop it and keep the base value.
	var active [nFeatures]bool
	nActive := 0
	for k := 0; k < nFeatures; k++ {
		for i := range X {
			if math.Abs(X[i][k]) > 1e-12 {
				active[k] = true
				nActive++
				break
			}
		}
	}

	coeffs := base.Coeffs()
	if nActive > 0 {
		// Normal equations over the active columns, with a tiny ridge so
		// nearly collinear scenario sets still solve.
		idx := make([]int, 0, nActive)
		for k := 0; k < nFeatures; k++ {
			if active[k] {
				idx = append(idx, k)
			}
		}
		// Columns span very different magnitudes (the intercept is 1, an
		// input column can be thousands of MB): normalize each active
		// column to unit Euclidean norm so the ridge biases them equally
		// and the normal equations stay well conditioned, then unscale
		// the solution.
		scale := make([]float64, nActive)
		for a, k := range idx {
			s := 0.0
			for i := range X {
				s += X[i][k] * X[i][k]
			}
			scale[a] = math.Sqrt(s)
		}
		ata := make([][]float64, nActive)
		atb := make([]float64, nActive)
		for a := range ata {
			ata[a] = make([]float64, nActive)
		}
		for i := range X {
			for a, ka := range idx {
				atb[a] += X[i][ka] / scale[a] * y[i]
				for b, kb := range idx {
					ata[a][b] += X[i][ka] / scale[a] * X[i][kb] / scale[b]
				}
			}
		}
		const ridge = 1e-10 // diagonals are 1 after normalization
		for a := range ata {
			ata[a][a] += ridge
		}
		sol, err := solveLinear(ata, atb)
		if err != nil {
			return FitResult{}, fmt.Errorf("cost: Fit: %w", err)
		}
		for a, k := range idx {
			coeffs[k] = sol[a] / scale[a]
			if coeffs[k] < 0 {
				coeffs[k] = 0
			}
		}
	}

	cfg := base
	cfg.JobOverhead = coeffs[0]
	cfg.HDFSRead = coeffs[1]
	cfg.HDFSWrite = coeffs[4]
	// Split lw+t and lr+lw into individual constants in the base
	// proportions. lw is shared by both sums; cap it at both so every
	// constant stays non-negative while the sums are reproduced exactly.
	split := 0.5
	if d := base.LocalWrite + base.Transfer; d > 0 {
		split = base.LocalWrite / d
	}
	lw := split * coeffs[2]
	if lw > coeffs[3] {
		lw = coeffs[3]
	}
	cfg.LocalWrite = lw
	cfg.Transfer = coeffs[2] - lw
	cfg.LocalRead = coeffs[3] - lw
	return FitResult{Config: cfg, Coeffs: cfg.Coeffs(), Fitted: active, N: len(obs)}, nil
}

// solveLinear solves a·x = b by Gaussian elimination with partial
// pivoting. a and b are overwritten.
func solveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	for col := 0; col < n; col++ {
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-15 {
			return nil, fmt.Errorf("singular normal equations (column %d)", col)
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			for k := col; k < n; k++ {
				a[r][k] -= f * a[col][k]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for k := r + 1; k < n; k++ {
			s -= a[r][k] * x[k]
		}
		x[r] = s / a[r][r]
	}
	return x, nil
}

// MeanAbsRelError reports the mean |predicted − measured| / measured of
// JobCost(Gumbo) over the observations: the estimation-vs-actual error
// metric of the calibration report. Observations measured at (near)
// zero seconds are compared on absolute error against a 1µs floor.
func (c Config) MeanAbsRelError(obs []Observation) float64 {
	if len(obs) == 0 {
		return 0
	}
	total := 0.0
	for _, o := range obs {
		pred := c.JobCost(Gumbo, o.Spec)
		denom := o.Seconds
		if denom < 1e-6 {
			denom = 1e-6
		}
		total += math.Abs(pred-o.Seconds) / denom
	}
	return total / float64(len(obs))
}
