package cost

import (
	"math"
	"testing"
)

func TestModelString(t *testing.T) {
	if Gumbo.String() != "gumbo" || Wang.String() != "wang" {
		t.Errorf("Model strings: %s %s", Gumbo, Wang)
	}
	if Model(9).String() == "" {
		t.Error("unknown model string empty")
	}
}

func TestJobCostPanicsOnUnknownModel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Default().JobCost(Model(9), JobSpec{})
}

func TestZeroConfig(t *testing.T) {
	c := Zero()
	if got := c.JobCost(Gumbo, JobSpec{Partitions: []Partition{{InputMB: 10, InterMB: 10}}}); got != 0 {
		t.Errorf("zero config cost = %v", got)
	}
	if c.Scale != 1 {
		t.Errorf("zero config scale = %v", c.Scale)
	}
}

func TestTasksLoadedSkew(t *testing.T) {
	c := Default()
	c.TaskOverhead = 0
	job := JobSpec{
		Partitions: []Partition{{InputMB: 100, InterMB: 100, Records: 1000}},
		Reducers:   4,
	}
	even := c.TasksLoaded(job, nil)
	skewed := c.TasksLoaded(job, []float64{70, 10, 10, 10})
	var evenSum, skewSum, evenMax, skewMax float64
	for i := range even.ReduceTasks {
		evenSum += even.ReduceTasks[i]
		skewSum += skewed.ReduceTasks[i]
		if even.ReduceTasks[i] > evenMax {
			evenMax = even.ReduceTasks[i]
		}
		if skewed.ReduceTasks[i] > skewMax {
			skewMax = skewed.ReduceTasks[i]
		}
	}
	if math.Abs(evenSum-skewSum) > 1e-9 {
		t.Errorf("loads changed total reduce time: %v vs %v", evenSum, skewSum)
	}
	if skewMax <= evenMax {
		t.Errorf("skewed max %v not above even max %v", skewMax, evenMax)
	}
	// Mismatched load slice falls back to even division.
	fallback := c.TasksLoaded(job, []float64{1, 2})
	if math.Abs(fallback.ReduceTasks[0]-even.ReduceTasks[0]) > 1e-9 {
		t.Error("mismatched loads did not fall back to even shares")
	}
	// All-zero loads fall back too.
	zeros := c.TasksLoaded(job, []float64{0, 0, 0, 0})
	if math.Abs(zeros.ReduceTasks[0]-even.ReduceTasks[0]) > 1e-9 {
		t.Error("zero loads did not fall back to even shares")
	}
}

func TestMergeRedEdgeCases(t *testing.T) {
	c := Default()
	if c.MergeRed(0, 4) != 0 {
		t.Error("MergeRed(0) != 0")
	}
	if c.MergeRed(100, 0) != 0 {
		t.Error("MergeRed with 0 reducers != 0")
	}
	// Large per-reducer data triggers a merge factor.
	if c.MergeRed(100000, 4) <= 0 {
		t.Error("large MergeRed not positive")
	}
}

func TestMappersEdge(t *testing.T) {
	c := Default()
	c.SplitMB = 0
	if c.Mappers(1000) != 1 {
		t.Error("SplitMB=0 should give 1 mapper")
	}
	c2 := Default()
	c2.ReducerDataMB = 0
	if c2.Reducers(1000) != 1 {
		t.Error("ReducerDataMB=0 should give 1 reducer")
	}
}

func TestScaledIdempotentScaleTracking(t *testing.T) {
	c := Default().Scaled(0.1).Scaled(0.1)
	if math.Abs(c.Scale-0.01) > 1e-12 {
		t.Errorf("Scale = %v, want 0.01", c.Scale)
	}
	// A config built without Default (zero Scale) still tracks.
	var raw Config
	raw.MergeFactor = 10
	s := raw.Scaled(0.5)
	if s.Scale != 0.5 {
		t.Errorf("Scale from zero config = %v", s.Scale)
	}
}

func TestScaleInvarianceOfJobCost(t *testing.T) {
	// The heart of the paper-equivalent reporting: scaling a job's sizes
	// and the config by f scales its cost by exactly f.
	base := Default()
	job := JobSpec{
		Partitions: []Partition{
			{Name: "R", InputMB: 4000, InterMB: 9000, Records: 5e7},
			{Name: "S", InputMB: 1000, InterMB: 800, Records: 1e7},
		},
		OutputMB: 1200,
	}
	full := base.JobCost(Gumbo, job)
	for _, f := range []float64{0.1, 0.01, 0.001} {
		scaledJob := JobSpec{OutputMB: job.OutputMB * f}
		for _, p := range job.Partitions {
			scaledJob.Partitions = append(scaledJob.Partitions, Partition{
				Name:    p.Name,
				InputMB: p.InputMB * f,
				InterMB: p.InterMB * f,
				Records: int64(float64(p.Records) * f),
			})
		}
		got := base.Scaled(f).JobCost(Gumbo, scaledJob) / f
		if math.Abs(got-full)/full > 0.001 {
			t.Errorf("scale %v: paper-equivalent cost %v vs full-scale %v", f, got, full)
		}
	}
}
