package taskblock_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/taskblock"
)

func TestTaskBlock(t *testing.T) {
	analysistest.Run(t, "../testdata", taskblock.Analyzer, "lintest/taskblock")
}
