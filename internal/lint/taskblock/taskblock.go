// Package taskblock flags blocking operations inside taskPool task
// closures.
//
// The engine's work-stealing pool (internal/mr/pool.go) detects
// quiescence by counting task completions on a fixed set of worker
// goroutines. A task that blocks — a channel send or receive, a
// select with no default, sync.WaitGroup.Wait or sync.Cond.Wait —
// parks a worker without returning it to the scheduler; if the work it
// waits for is itself queued pool work, the pool deadlocks (all
// workers parked, runnable tasks never picked up). Tasks must instead
// join sub-work with counters and spawn follow-ups (see jobrun.go's
// counter-joined phases). Spawning while holding a mutex is flagged
// too: a stolen task contending on that mutex serializes the pool
// behind the spawner.
//
// Task closures are identified by signature: any function whose single
// parameter is a *poolCtx (the poolTask shape).
package taskblock

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "taskblock",
	Doc:  "flags blocking operations (channel ops, WaitGroup.Wait, mutex-held spawn) inside taskPool task closures",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var ftype *ast.FuncType
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				ftype, body = fn.Type, fn.Body
			case *ast.FuncLit:
				ftype, body = fn.Type, fn.Body
			default:
				return true
			}
			if body != nil && isTaskShaped(pass, ftype) {
				checkTask(pass, body)
			}
			return true
		})
	}
	return nil
}

// isTaskShaped reports whether ftype has the poolTask signature: one
// parameter of type *poolCtx.
func isTaskShaped(pass *analysis.Pass, ftype *ast.FuncType) bool {
	if ftype.Params == nil || len(ftype.Params.List) != 1 {
		return false
	}
	field := ftype.Params.List[0]
	if len(field.Names) > 1 {
		return false
	}
	t := pass.TypesInfo.Types[field.Type].Type
	return t != nil && lintutil.PtrToNamed(t, "mr", "poolCtx")
}

// checkTask walks one task body. Function literals are only descended
// when invoked inline: a literal handed to `go` or stored for later
// runs on its own goroutine and may block freely.
func checkTask(pass *analysis.Pass, body *ast.BlockStmt) {
	held := newHeldLocks()
	// Comm statements of a select are the select's blocking points,
	// reported (or excused by a default case) at the select itself,
	// not as individual channel operations.
	commStmts := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if commStmts[n] {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			// The goroutine body may block; only the task itself must
			// not park its worker.
			return false
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send inside a pool task blocks a worker: the pool's quiescence detection counts only returning tasks; join sub-work with counters and spawn follow-ups instead")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pass.Reportf(n.Pos(), "channel receive inside a pool task blocks a worker: the pool's quiescence detection counts only returning tasks; join sub-work with counters and spawn follow-ups instead")
			}
		case *ast.SelectStmt:
			if !hasDefault(n) {
				pass.Reportf(n.Pos(), "select without default inside a pool task blocks a worker; use a non-blocking poll (default case) or counter joins")
			}
			for _, clause := range n.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok && cc.Comm != nil {
					commStmts[cc.Comm] = true
				}
			}
		case *ast.CallExpr:
			f := lintutil.FuncObj(pass.TypesInfo, n)
			switch {
			case lintutil.IsMethodOn(f, "sync", "WaitGroup", "Wait"),
				lintutil.IsMethodOn(f, "sync", "Cond", "Wait"):
				pass.Reportf(n.Pos(), "sync.%s.Wait inside a pool task parks a worker outside the scheduler; if the awaited work is pool work this deadlocks quiescence — join with counters and spawn instead", recvName(f))
			case f != nil && f.Name() == "spawn" && held.any():
				pass.Reportf(n.Pos(), "spawn while holding %s: a stolen task contending on the lock serializes the pool behind this worker; release the lock before spawning", held.first())
			}
			held.observe(pass, n)
		}
		return true
	})
}

// heldLocks tracks mutexes locked lexically earlier in the walk and
// not yet unlocked. Lock/Unlock pairing is approximated textually on
// the receiver expression, which matches the straight-line critical
// sections task code uses; a deferred Unlock leaves the lock held for
// the rest of the walk, as it is at run time.
type heldLocks struct {
	order []string
	held  map[string]bool
}

func newHeldLocks() *heldLocks { return &heldLocks{held: make(map[string]bool)} }

func (h *heldLocks) any() bool { return len(h.order) > 0 }

func (h *heldLocks) first() string {
	if len(h.order) == 0 {
		return ""
	}
	return h.order[0]
}

// observe updates the held set when call is a Lock/Unlock on a sync
// mutex.
func (h *heldLocks) observe(pass *analysis.Pass, call *ast.CallExpr) {
	f := lintutil.FuncObj(pass.TypesInfo, call)
	if f == nil {
		return
	}
	locking := false
	switch f.Name() {
	case "Lock", "RLock":
		locking = true
	case "Unlock", "RUnlock":
	default:
		return
	}
	if !isMutexMethod(f) {
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	recv := types.ExprString(sel.X)
	if locking {
		if !h.held[recv] {
			h.held[recv] = true
			h.order = append(h.order, recv)
		}
		return
	}
	if h.held[recv] {
		delete(h.held, recv)
		for i, r := range h.order {
			if r == recv {
				h.order = append(h.order[:i:i], h.order[i+1:]...)
				break
			}
		}
	}
}

func isMutexMethod(f *types.Func) bool {
	return lintutil.IsMethodOn(f, "sync", "Mutex", f.Name()) ||
		lintutil.IsMethodOn(f, "sync", "RWMutex", f.Name())
}

func hasDefault(sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// recvName names f's receiver type for diagnostics.
func recvName(f *types.Func) string {
	sig := f.Type().(*types.Signature)
	rt := sig.Recv().Type()
	if ptr, ok := types.Unalias(rt).(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	if named, ok := types.Unalias(rt).(*types.Named); ok {
		return named.Obj().Name()
	}
	return rt.String()
}
