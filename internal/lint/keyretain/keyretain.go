// Package keyretain flags reducer and emit callbacks that retain the
// engine-owned key []byte or the reused msgs []Message beyond the
// callback.
//
// Contract (see docs/INVARIANTS.md and the mr.Reducer/mr.Emit godoc):
// the key bytes live in a per-task engine arena and the msgs slice is
// reused across Reduce calls, so neither may be stored past the
// callback's return without an explicit copy — string(key),
// append([]byte(nil), key...), bytes.Clone — while individual Message
// values are immutable after emission and may be retained freely.
//
// The analyzer identifies callbacks by signature: any function or
// literal with parameters ([]byte, []mr.Message, *mr.Output) is
// reducer-shaped, and any with ([]byte, mr.Message) outside the engine
// package itself is emit-shaped (a mapper-side emit wrapper; the
// engine's own implementation owns the arena and is exempt). Within a
// callback it taints the owned parameters and every local alias, then
// reports stores that outlive the call: assignment to a captured,
// package-level, receiver-field or otherwise non-local location,
// append of an uncopied alias into a non-local slice, goroutine
// capture, and channel sends.
package keyretain

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "keyretain",
	Doc:  "flags reducer/emit callbacks that retain the arena-owned key or reused msgs slice beyond the callback",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var ftype *ast.FuncType
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				ftype, body = fn.Type, fn.Body
			case *ast.FuncLit:
				ftype, body = fn.Type, fn.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			if owned := ownedParams(pass, ftype); len(owned) > 0 {
				checkCallback(pass, body, owned)
			}
			return true
		})
	}
	return nil
}

// ownedParams returns the engine-owned parameters of a callback-shaped
// function type: {key, msgs} for reducer shapes, {key} for emit
// shapes, nil for everything else. The map value names the parameter
// in diagnostics.
func ownedParams(pass *analysis.Pass, ftype *ast.FuncType) map[types.Object]string {
	var params []*ast.Ident
	var ptypes []types.Type
	if ftype.Params == nil {
		return nil
	}
	for _, field := range ftype.Params.List {
		t := pass.TypesInfo.Types[field.Type].Type
		if t == nil {
			return nil
		}
		if len(field.Names) == 0 {
			params = append(params, nil)
			ptypes = append(ptypes, t)
		}
		for _, name := range field.Names {
			params = append(params, name)
			ptypes = append(ptypes, t)
		}
	}
	reducerShaped := len(ptypes) == 3 &&
		lintutil.IsByteSlice(ptypes[0]) &&
		lintutil.SliceOfNamed(ptypes[1], "mr", "Message") &&
		lintutil.PtrToNamed(ptypes[2], "mr", "Output")
	emitShaped := len(ptypes) == 2 &&
		lintutil.IsByteSlice(ptypes[0]) &&
		lintutil.NamedType(ptypes[1], "mr", "Message") &&
		pass.Pkg.Name() != "mr" // the engine implements Emit and owns the arena
	if !reducerShaped && !emitShaped {
		return nil
	}
	owned := make(map[types.Object]string)
	add := func(id *ast.Ident, label string) {
		if id == nil || id.Name == "_" {
			return
		}
		if obj := pass.TypesInfo.Defs[id]; obj != nil {
			owned[obj] = label
		}
	}
	add(params[0], "key")
	if reducerShaped {
		add(params[1], "msgs")
	}
	return owned
}

// checker tracks the taint state for one callback body.
type checker struct {
	pass  *analysis.Pass
	body  *ast.BlockStmt
	taint map[types.Object]string // tainted object → owned-param label it aliases
}

func checkCallback(pass *analysis.Pass, body *ast.BlockStmt, owned map[types.Object]string) {
	c := &checker{pass: pass, body: body, taint: make(map[types.Object]string)}
	for obj, label := range owned {
		c.taint[obj] = label
	}
	// Pass 1 propagates taint through local aliases (run twice so a
	// loop-carried alias assigned below its first use is still seen);
	// pass 2 reports escaping stores.
	c.scan(false)
	c.scan(false)
	c.scan(true)
}

func (c *checker) scan(report bool) {
	ast.Inspect(c.body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.FuncLit:
			// Nested literals run synchronously unless launched by a
			// go statement (handled at the GoStmt below); don't
			// descend — their own reducer/emit shapes are matched
			// independently by run.
			return false
		case *ast.AssignStmt:
			c.assign(stmt, report)
		case *ast.GoStmt:
			if report {
				c.goStmt(stmt)
			}
			return false
		case *ast.SendStmt:
			if label := c.taintLabel(stmt.Value); report && label != "" {
				c.escape(stmt.Value.Pos(), label, "sent on a channel")
			}
		case *ast.ReturnStmt:
			for _, r := range stmt.Results {
				if label := c.taintLabel(r); report && label != "" {
					c.escape(r.Pos(), label, "returned")
				}
			}
		}
		return true
	})
}

// assign handles one assignment statement: propagating taint into
// local variables and reporting stores into locations that outlive
// the callback.
func (c *checker) assign(stmt *ast.AssignStmt, report bool) {
	if len(stmt.Lhs) != len(stmt.Rhs) {
		return // multi-value call results are never tainted
	}
	for i, lhs := range stmt.Lhs {
		label := c.taintLabel(stmt.Rhs[i])
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			obj := c.pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = c.pass.TypesInfo.Uses[id]
			}
			if obj == nil {
				continue
			}
			if c.localVar(obj) || c.taint[obj] != "" {
				// Local (or re-assigned owned param): track.
				if label != "" {
					c.taint[obj] = label
				} else {
					delete(c.taint, obj)
				}
				continue
			}
			if label != "" && report {
				c.escape(stmt.Pos(), label, "assigned to a variable that outlives the callback")
			}
			continue
		}
		if label == "" {
			continue
		}
		if report && !c.localStore(lhs) {
			c.escape(stmt.Pos(), label, "stored in a location that outlives the callback")
		}
	}
}

// goStmt reports owned slices crossing into a goroutine, which
// outlives (or races with) the callback's buffer reuse.
func (c *checker) goStmt(stmt *ast.GoStmt) {
	if lit, ok := ast.Unparen(stmt.Call.Fun).(*ast.FuncLit); ok {
		free := lintutil.FreeObjects(c.pass.TypesInfo, lit, func(o types.Object) bool {
			return c.taint[o] != ""
		})
		for obj, ids := range free {
			c.escape(ids[0].Pos(), c.taint[obj], "captured by a goroutine")
		}
	}
	for _, arg := range stmt.Call.Args {
		if label := c.taintLabel(arg); label != "" {
			c.escape(arg.Pos(), label, "passed to a goroutine")
		}
	}
}

// taintLabel reports which owned parameter (if any) expression e still
// aliases. Copies break the alias: string conversions, element reads,
// and spread-appends produce fresh memory and return "".
func (c *checker) taintLabel(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := c.pass.TypesInfo.Uses[e]; obj != nil {
			return c.taint[obj]
		}
	case *ast.SliceExpr:
		return c.taintLabel(e.X) // key[1:] still points into the arena
	case *ast.UnaryExpr:
		if e.Op.String() == "&" {
			return c.taintLabel(e.X)
		}
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			if label := c.taintLabel(elt); label != "" {
				return label
			}
		}
	case *ast.CallExpr:
		// append(dst, alias) keeps the alias; append(dst, alias...)
		// copies the elements and is the sanctioned idiom.
		if b, ok := c.pass.TypesInfo.Uses[builtinIdent(e.Fun)].(*types.Builtin); ok && b.Name() == "append" {
			if !e.Ellipsis.IsValid() {
				for _, arg := range e.Args[1:] {
					if label := c.taintLabel(arg); label != "" {
						return label
					}
				}
			}
			// The backing array of dst may itself be tainted.
			if len(e.Args) > 0 {
				return c.taintLabel(e.Args[0])
			}
		}
	}
	return ""
}

// builtinIdent unwraps fun to an identifier for builtin resolution
// (nil-safe: Uses lookups on nil return nothing).
func builtinIdent(fun ast.Expr) *ast.Ident {
	id, _ := ast.Unparen(fun).(*ast.Ident)
	return id
}

// localStore reports whether lvalue lhs writes through a variable
// declared inside the callback body (so the store cannot outlive it at
// this analysis depth).
func (c *checker) localStore(lhs ast.Expr) bool {
	for {
		switch e := ast.Unparen(lhs).(type) {
		case *ast.SelectorExpr:
			lhs = e.X
		case *ast.IndexExpr:
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		case *ast.Ident:
			obj := c.pass.TypesInfo.Uses[e]
			if obj == nil {
				obj = c.pass.TypesInfo.Defs[e]
			}
			return obj != nil && c.localVar(obj)
		default:
			return false
		}
	}
}

// localVar reports whether obj is declared inside the callback body —
// note a method receiver or captured variable is not, which is exactly
// what makes `r.last = key` the classic violation.
func (c *checker) localVar(obj types.Object) bool {
	return obj.Pos().IsValid() && c.body.Pos() <= obj.Pos() && obj.Pos() < c.body.End()
}

func (c *checker) escape(pos token.Pos, label, how string) {
	what := "the arena-owned key []byte"
	fix := "copy it first (string(key) or append([]byte(nil), key...))"
	if label == "msgs" {
		what = "the reused msgs []Message slice"
		fix = "copy the slice (append([]Message(nil), msgs...)); individual Message values may be retained"
	}
	c.pass.Reportf(pos, "%s %s: it is engine-owned and reused after the callback returns; %s", what, how, fix)
}
