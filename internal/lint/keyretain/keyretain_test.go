package keyretain_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/keyretain"
)

func TestKeyRetain(t *testing.T) {
	analysistest.Run(t, "../testdata", keyretain.Analyzer, "lintest/keyretain")
}
