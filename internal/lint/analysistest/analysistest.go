// Package analysistest runs an analyzer over a testdata package and
// checks its diagnostics against expectations written in the source,
// mirroring golang.org/x/tools/go/analysis/analysistest on top of the
// in-repo framework.
//
// Expectations are trailing comments of the form
//
//	emit(k, v) // want `escapes the callback`
//	x, y // want `first` `second`
//
// Each backquoted string is a regular expression that must match the
// message of a distinct diagnostic reported on that line, in order;
// lines with no want comment must produce no diagnostics. Suppressed
// diagnostics (//lint:ignore) never reach matching, so a test line can
// pin the suppression machinery by carrying a directive and no want.
package analysistest

import (
	"regexp"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// Run loads the packages matching patterns in module directory dir,
// applies the analyzer, and reports mismatches between diagnostics and
// // want comments through t.Errorf.
func Run(t *testing.T, dir string, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	pkgs, err := load.Load(dir, patterns...)
	if err != nil {
		t.Fatalf("loading %v: %v", patterns, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no packages matched %v", patterns)
	}
	for _, pkg := range pkgs {
		diags, err := analysis.Run([]*analysis.Analyzer{a}, pkg.Fset, pkg.Files, pkg.Types, pkg.Info, pkg.ReportFiles)
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, pkg.ImportPath, err)
		}
		checkWants(t, pkg, diags)
	}
}

// wantKey identifies one source line.
type wantKey struct {
	file string
	line int
}

var wantRE = regexp.MustCompile("// want((?: +`[^`]*`)+)[ \t]*$")

// checkWants compares diagnostics with the package's want comments.
func checkWants(t *testing.T, pkg *load.Package, diags []analysis.Diagnostic) {
	t.Helper()
	wants := make(map[wantKey][]*regexp.Regexp)
	for _, f := range pkg.Files {
		tf := pkg.Fset.File(f.Pos())
		if pkg.ReportFiles != nil && !pkg.ReportFiles[tf.Name()] {
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					if strings.Contains(c.Text, "// want") {
						pos := pkg.Fset.Position(c.Pos())
						t.Errorf("%s: malformed want comment %q (want // want `re` ...)", pos, c.Text)
					}
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := wantKey{pos.Filename, pos.Line}
				for _, part := range strings.Split(strings.TrimSpace(m[1]), "`") {
					part = strings.TrimSpace(part)
					if part == "" {
						continue
					}
					re, err := regexp.Compile(part)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", pos, part, err)
						continue
					}
					wants[key] = append(wants[key], re)
				}
			}
		}
	}

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		key := wantKey{pos.Filename, pos.Line}
		res := wants[key]
		matched := false
		for i, re := range res {
			if re.MatchString(d.Message) {
				wants[key] = append(res[:i:i], res[i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: [%s] %s", pos, d.Analyzer.Name, d.Message)
		}
	}
	for key, res := range wants {
		for _, re := range res {
			t.Errorf("%s:%d: no diagnostic matching %q", key.file, key.line, re)
		}
	}
}
