package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	file   string // absolute filename
	line   int    // line the directive suppresses (its own line, or the one below for standalone comments)
	names  map[string]bool
	reason string
	pos    token.Pos
}

// ignoreSet indexes directives by file and suppressed line.
type ignoreSet struct {
	byLine map[string]map[int][]*ignoreDirective
	bad    []*ignoreDirective // directives without a reason
}

// IgnoreAnalyzer is the synthetic analyzer under which malformed
// //lint:ignore directives are reported (a suppression without a
// reason is itself a finding — the reason is the documentation the
// next reader gets instead of the warning).
var IgnoreAnalyzer = &Analyzer{
	Name: "lintdirective",
	Doc:  "reports malformed //lint:ignore directives (missing analyzer name or reason)",
	Run:  func(*Pass) error { return nil },
}

// collectIgnores scans every comment in files for //lint:ignore
// directives. A directive suppresses matching diagnostics on its own
// line; a comment that is the only thing on its line suppresses the
// line below instead (the conventional "directive above the flagged
// statement" placement).
func collectIgnores(fset *token.FileSet, files []*ast.File) *ignoreSet {
	set := &ignoreSet{byLine: make(map[string]map[int][]*ignoreDirective)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				d := &ignoreDirective{
					file:  pos.Filename,
					line:  pos.Line,
					names: make(map[string]bool),
					pos:   c.Pos(),
				}
				fields := strings.Fields(text)
				if len(fields) >= 1 {
					for _, name := range strings.Split(fields[0], ",") {
						d.names[name] = true
					}
				}
				if len(fields) >= 2 {
					d.reason = strings.Join(fields[1:], " ")
				}
				// A comment starting at column 1..indentation with no
				// code before it on the line suppresses the next line.
				if pos.Column == 1 || onlyCommentOnLine(fset, f, c) {
					d.line = pos.Line + 1
				}
				if len(d.names) == 0 || d.reason == "" {
					set.bad = append(set.bad, d)
					continue
				}
				m := set.byLine[d.file]
				if m == nil {
					m = make(map[int][]*ignoreDirective)
					set.byLine[d.file] = m
				}
				m[d.line] = append(m[d.line], d)
			}
		}
	}
	return set
}

// onlyCommentOnLine reports whether comment c is the first token on its
// line (no statement shares the line before it).
func onlyCommentOnLine(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	cPos := fset.Position(c.Pos())
	only := true
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || !only {
			return false
		}
		if n.Pos().IsValid() && n != ast.Node(f) {
			p := fset.Position(n.Pos())
			if p.Filename == cPos.Filename && p.Line == cPos.Line && p.Column < cPos.Column {
				only = false
				return false
			}
		}
		return true
	})
	return only
}

// suppresses reports whether a directive covers diagnostic d.
func (s *ignoreSet) suppresses(fset *token.FileSet, d Diagnostic) bool {
	pos := fset.Position(d.Pos)
	for _, dir := range s.byLine[pos.Filename][pos.Line] {
		if dir.names[d.Analyzer.Name] || dir.names["all"] {
			return true
		}
	}
	return false
}

// malformed returns diagnostics for directives missing a name or
// reason, honoring the pass-level file restriction.
func (s *ignoreSet) malformed(reportFiles map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, d := range s.bad {
		if reportFiles != nil && !reportFiles[d.file] {
			continue
		}
		out = append(out, Diagnostic{
			Pos:      d.pos,
			Message:  "malformed //lint:ignore directive: want //lint:ignore <analyzer> <reason>",
			Analyzer: IgnoreAnalyzer,
		})
	}
	return out
}
