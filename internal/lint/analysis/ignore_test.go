package analysis_test

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"repro/internal/lint/analysis"
)

const ignoreSrc = `package p

func f() {
	a := 1 //lint:ignore dummy covered: inline directive on the flagged line
	b := 2 //lint:ignore dummy
	//lint:ignore dummy covered: standalone directive above the flagged line
	c := 3
	d := 4
	_, _, _, _ = a, b, c, d
}
`

// TestIgnoreDirectives pins the suppression machinery: an inline
// directive suppresses its own line, a standalone directive suppresses
// the next line, and a directive without a reason is itself reported
// (and suppresses nothing).
func TestIgnoreDirectives(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "ignoredata.go", ignoreSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := (&types.Config{}).Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}

	dummy := &analysis.Analyzer{
		Name: "dummy",
		Doc:  "reports every short variable declaration",
		Run: func(pass *analysis.Pass) error {
			for _, f := range pass.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					if as, ok := n.(*ast.AssignStmt); ok && as.Tok == token.DEFINE {
						pass.Reportf(as.Pos(), "short variable declaration")
					}
					return true
				})
			}
			return nil
		},
	}

	diags, err := analysis.Run([]*analysis.Analyzer{dummy}, fset, []*ast.File{f}, pkg, info, nil)
	if err != nil {
		t.Fatal(err)
	}

	var got []string
	for _, d := range diags {
		got = append(got, fmt.Sprintf("%d:%s", fset.Position(d.Pos).Line, d.Analyzer.Name))
	}
	// Line 4 (a) is inline-suppressed; line 7 (c) is suppressed by the
	// standalone directive on line 6. Line 5's directive has no reason:
	// it is reported as lintdirective and b's finding survives.
	want := []string{"5:dummy", "5:lintdirective", "8:dummy"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("diagnostics = %v, want %v", got, want)
	}
}
