// Package analysis is a self-contained miniature of the
// golang.org/x/tools/go/analysis framework, carrying exactly the subset
// the gumbo-lint suite needs: an Analyzer is a named check with a Run
// function, a Pass hands it one type-checked package, and diagnostics
// are plain positioned messages. The x/tools module is deliberately not
// a dependency — the repo builds offline from the standard library
// alone — but the shapes mirror it closely enough that an analyzer
// written here ports to the real framework by changing one import.
//
// Beyond the x/tools subset, the driver honors suppression directives:
// a comment of the form
//
//	//lint:ignore <analyzer-name> <reason>
//
// on the flagged line, or alone on the line immediately above it,
// silences that analyzer there (see ignore.go). Every suppression must
// carry a reason; bare directives are themselves reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer is one static check. Run inspects the Pass's package and
// reports findings through Pass.Report; the returned error aborts the
// whole lint run (reserved for internal failures, not findings).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore directives. By convention lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description: first line is a summary,
	// the rest explains the contract being enforced.
	Doc string
	// Run performs the check on one package.
	Run func(*Pass) error
}

// A Pass is one (analyzer, package) unit of work. The same package is
// handed to every analyzer; passes share no state.
type Pass struct {
	Analyzer *Analyzer

	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// ReportFiles, when non-nil, restricts reporting to the named
	// files (base-resolved absolute paths): the loader uses it so a
	// test-augmented package variant reports only on its _test.go
	// files, not a second time on the files the plain variant already
	// covered.
	ReportFiles map[string]bool

	// report receives each diagnostic; installed by the driver.
	report func(Diagnostic)
}

// A Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer *Analyzer
}

// Report records a finding. Findings outside the pass's ReportFiles
// restriction (when set) are dropped.
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer
	if p.ReportFiles != nil {
		if file := p.Fset.File(d.Pos); file == nil || !p.ReportFiles[file.Name()] {
			return
		}
	}
	p.report(d)
}

// Reportf reports a formatted finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Run applies every analyzer to the package described by pass-level
// inputs and returns the surviving diagnostics (suppressions applied)
// in source order. It is the single driver used by the command, the
// vettool mode and the test harness.
func Run(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, reportFiles map[string]bool) ([]Diagnostic, error) {
	ignores := collectIgnores(fset, files)
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:    a,
			Fset:        fset,
			Files:       files,
			Pkg:         pkg,
			TypesInfo:   info,
			ReportFiles: reportFiles,
			report: func(d Diagnostic) {
				if !ignores.suppresses(fset, d) {
					diags = append(diags, d)
				}
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %v", a.Name, err)
		}
	}
	diags = append(diags, ignores.malformed(reportFiles)...)
	sortDiagnostics(fset, diags)
	return diags, nil
}

// sortDiagnostics orders diags by file, line, column, then analyzer
// name, so output is deterministic regardless of analyzer order.
func sortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	positionLess := func(a, b Diagnostic) bool {
		pa, pb := fset.Position(a.Pos), fset.Position(b.Pos)
		if pa.Filename != pb.Filename {
			return pa.Filename < pb.Filename
		}
		if pa.Line != pb.Line {
			return pa.Line < pb.Line
		}
		if pa.Column != pb.Column {
			return pa.Column < pb.Column
		}
		return a.Analyzer.Name < b.Analyzer.Name
	}
	// Insertion sort keeps this dependency-free; diagnostic counts are
	// tiny.
	for i := 1; i < len(diags); i++ {
		for j := i; j > 0 && positionLess(diags[j], diags[j-1]); j-- {
			diags[j], diags[j-1] = diags[j-1], diags[j]
		}
	}
}
