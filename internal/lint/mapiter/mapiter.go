// Package mapiter flags iteration over a map whose loop body reaches
// an order-sensitive sink.
//
// Go randomizes map iteration order, and the engine's bit-for-bit
// determinism contract (same outputs and stats at every pool width;
// docs/ARCHITECTURE.md "Determinism contract") requires every
// order-sensitive fold to run in a declared order. A `range` over a
// map that feeds mr.Emit, mr.Output.Add, relation.Relation.Add/AddAll,
// or a JobStats/PartStats accumulation therefore silently breaks the
// reproducibility guarantee — the #1 historical cause. The fix recipe
// (docs/INVARIANTS.md): collect the keys, sort them, then iterate the
// sorted slice.
//
// Function literals inside the loop body are skipped: a closure
// collected during iteration and invoked after a sort is the sanctioned
// pattern, and flagging it would punish the fix.
package mapiter

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "mapiter",
	Doc:  "flags range-over-map loops whose body reaches an order-sensitive sink (Emit, Output.Add, Relation.Add, stats folds)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.Types[rng.X].Type
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkBody(pass, rng)
			return true
		})
	}
	return nil
}

// checkBody reports each order-sensitive sink lexically reached inside
// the map-range body (descending through nested statements but not
// function literals).
func checkBody(pass *analysis.Pass, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if sink := callSink(pass, n); sink != "" {
				pass.Reportf(n.Pos(), "%s inside range over a map: iteration order is randomized and this sink is order-sensitive, breaking bit-for-bit determinism; collect and sort the keys, then iterate the slice", sink)
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if sink := statsSink(pass, lhs); sink != "" {
					pass.Reportf(n.Pos(), "%s inside range over a map: iteration order is randomized and stats folds must run in declared order; collect and sort the keys, then iterate the slice", sink)
				}
			}
		case *ast.IncDecStmt:
			if sink := statsSink(pass, n.X); sink != "" {
				pass.Reportf(n.Pos(), "%s inside range over a map: iteration order is randomized and stats folds must run in declared order; collect and sort the keys, then iterate the slice", sink)
			}
		}
		return true
	})
}

// callSink classifies call as an order-sensitive output call, returning
// a description or "".
func callSink(pass *analysis.Pass, call *ast.CallExpr) string {
	// emit(key, msg): a call through a value of the named func type
	// mr.Emit.
	if t := pass.TypesInfo.Types[call.Fun].Type; t != nil && lintutil.NamedType(t, "mr", "Emit") {
		return "map-ordered emit"
	}
	f := lintutil.FuncObj(pass.TypesInfo, call)
	switch {
	case lintutil.IsMethodOn(f, "mr", "Output", "Add"):
		return "map-ordered Output.Add"
	case lintutil.IsMethodOn(f, "relation", "Relation", "Add"),
		lintutil.IsMethodOn(f, "relation", "Relation", "AddAll"):
		return "map-ordered Relation." + f.Name()
	}
	return ""
}

// statsSink reports whether lvalue writes a field of the measurement
// structs whose folds are order-declared (JobStats, PartStats).
func statsSink(pass *analysis.Pass, lhs ast.Expr) string {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	t := pass.TypesInfo.Types[sel.X].Type
	if t == nil {
		return ""
	}
	if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if lintutil.NamedType(t, "mr", "JobStats") || lintutil.NamedType(t, "mr", "PartStats") {
		return "map-ordered stats fold (" + sel.Sel.Name + ")"
	}
	return ""
}
