package mapiter_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/mapiter"
)

func TestMapIter(t *testing.T) {
	analysistest.Run(t, "../testdata", mapiter.Analyzer, "lintest/mapiter")
}
