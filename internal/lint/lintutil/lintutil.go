// Package lintutil holds the type-matching helpers the gumbo-lint
// analyzers share.
//
// Analyzers match engine types by package *name* plus type name
// ("mr".Message, "relation".Relation) rather than full import path, so
// the same analyzer runs unchanged against the real repro/internal
// packages and against the small stub packages in
// internal/lint/testdata. Within this repository the names are
// unambiguous; the testdata suites pin exactly what each matcher
// accepts.
package lintutil

import (
	"go/ast"
	"go/types"
)

// NamedType reports whether t (after pointer stripping when ptr) is a
// defined type typeName declared in a package named pkgName.
func NamedType(t types.Type, pkgName, typeName string) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && obj.Pkg().Name() == pkgName
}

// PtrToNamed reports whether t is *P for a defined type P named
// typeName in a package named pkgName.
func PtrToNamed(t types.Type, pkgName, typeName string) bool {
	ptr, ok := types.Unalias(t).(*types.Pointer)
	return ok && NamedType(ptr.Elem(), pkgName, typeName)
}

// SliceOfNamed reports whether t is []E for defined type E named
// typeName in a package named pkgName.
func SliceOfNamed(t types.Type, pkgName, typeName string) bool {
	sl, ok := t.Underlying().(*types.Slice)
	return ok && NamedType(sl.Elem(), pkgName, typeName)
}

// IsByteSlice reports whether t's underlying type is []byte.
func IsByteSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// FuncObj resolves the called function or method object of a call
// expression, or nil (calls through func values, conversions).
func FuncObj(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
		}
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// IsMethodOn reports whether f is a method named methodName whose
// receiver (after pointer stripping) is defined type typeName in a
// package named pkgName.
func IsMethodOn(f *types.Func, pkgName, typeName, methodName string) bool {
	if f == nil || f.Name() != methodName {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if ptr, ok := rt.(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	return NamedType(rt, pkgName, typeName)
}

// FreeObjects collects the objects used inside node that are declared
// outside it: the closure's captures plus package-level references.
// keep filters which objects are recorded.
func FreeObjects(info *types.Info, node ast.Node, keep func(types.Object) bool) map[types.Object][]*ast.Ident {
	free := make(map[types.Object][]*ast.Ident)
	ast.Inspect(node, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil || !keep(obj) {
			return true
		}
		if obj.Pos().IsValid() && node.Pos() <= obj.Pos() && obj.Pos() < node.End() {
			return true // declared inside node
		}
		free[obj] = append(free[obj], id)
		return true
	})
	return free
}
