// Testdata for the memcharge analyzer. The package is named mr because
// the check is scoped to the engine package.
package mr

import "bytes"

type budget struct{}

func (b *budget) charge(n int64) {}

// grabBytes is the sanctioned accounting seam: exempt by name.
func grabBytes(b *budget, n int) []byte {
	b.charge(int64(n))
	return make([]byte, n)
}

func growArena(n int) []byte {
	return make([]byte, n) // want `unaccounted \[\]byte allocation`
}

func growWithCap(n int) []byte {
	buf := make([]byte, 0, n) // want `unaccounted \[\]byte allocation`
	return buf
}

type chunk []byte

func namedByteSlice(n int) chunk {
	return make(chunk, n) // want `unaccounted \[\]byte allocation`
}

func notBytes(n int) []int {
	return make([]int, n)
}

func accounted(b *budget, n int) []byte {
	return grabBytes(b, n)
}

func sanctionedSmall() []byte {
	//lint:ignore memcharge testdata: pins that suppression covers the next line
	return make([]byte, 8)
}

func stringConversion(s string) []byte {
	return []byte(s) // want `unaccounted \[\]byte\(string\) conversion`
}

type keyAlias string

func namedStringConversion(s keyAlias) chunk {
	return chunk(s) // want `unaccounted \[\]byte\(string\) conversion`
}

func cloned(b []byte) []byte {
	return bytes.Clone(b) // want `unaccounted bytes\.Clone`
}

func stringRoundTrip(b []byte) string {
	return string(b) // the string copy is transient; only []byte buffers persist
}
