// Testdata for the ctxpass analyzer. The package is named mr like the
// engine package: the runTasks rule matches the pool entry point by
// package name + function name, and runTasks is unexported there.
package mr

import "context"

type poolCtx struct{}

func runTasks(ctx context.Context, workers int, seed func(*poolCtx)) error { return ctx.Err() }

// propagates: has ctx, threads it through. Legal.
func runProgram(ctx context.Context) error {
	return runTasks(ctx, 4, func(c *poolCtx) {})
}

// detached: spawns pool work without accepting a context — both the
// manufactured root context and the missing parameter are flagged.
func runDetached() error {
	return runTasks(context.Background(), 4, func(c *poolCtx) {}) // want `context.Background\(\) below the API layer` `calls runTasks but takes no context.Context`
}

// shadowed: receives ctx but manufactures a fresh one anyway.
func shadowed(ctx context.Context) error {
	return runTasks(context.TODO(), 4, func(c *poolCtx) {}) // want `context.TODO\(\) inside a function that already receives`
}

// closure: a literal inside a ctx-receiving function may use the
// captured ctx; manufacturing one inside the literal is still flagged.
func viaClosure(ctx context.Context) error {
	run := func() error {
		return runTasks(ctx, 2, func(c *poolCtx) {})
	}
	bad := func() {
		_ = context.Background() // want `context.Background\(\) inside a function that already receives`
	}
	bad()
	return run()
}

// literalWithOwnCtx: a literal declaring its own ctx param is a valid
// propagation layer.
func literalWithOwnCtx() func(context.Context) error {
	return func(ctx context.Context) error {
		return runTasks(ctx, 2, func(c *poolCtx) {})
	}
}

// bareLiteral: a literal in a ctx-less function spawning pool work is
// flagged like its parent would be.
func bareLiteral() func() {
	return func() {
		_ = runTasks(context.TODO(), 1, func(c *poolCtx) {}) // want `context.TODO\(\) below the API layer` `calls runTasks but takes no context.Context`
	}
}

// suppressed: the documented no-cancellation entry-point pattern.
func legacyEntryPoint() error {
	//lint:ignore ctxpass testdata: pins that the entry-point suppression silences both findings
	return runTasks(context.Background(), 1, func(c *poolCtx) {})
}

// usesCtxValues: plain context use (values, derivation from the given
// ctx) is not the analyzer's business.
func usesCtxValues(ctx context.Context) context.Context {
	child, cancel := context.WithCancel(ctx)
	cancel()
	return child
}
