// Package mr is a miniature of repro/internal/mr carrying exactly the
// shapes the gumbo-lint analyzers match on (package name + type names
// + signatures). The analyzers are tested against these stubs so the
// suites stay hermetic and fast; the real engine types must keep these
// shapes or the matchers drift (TestLintRepo dogfoods the real tree).
package mr

import "lintest/relation"

type Message interface{ SizeBytes() int64 }

type Emit func(key []byte, msg Message)

type Output struct{}

func (o *Output) Add(name string, t relation.Tuple) {}

type Mapper interface {
	Map(input string, id int, t relation.Tuple, emit Emit)
}

type MapperFunc func(input string, id int, t relation.Tuple, emit Emit)

func (f MapperFunc) Map(input string, id int, t relation.Tuple, emit Emit) { f(input, id, t, emit) }

type Reducer interface {
	Reduce(key []byte, msgs []Message, out *Output)
}

type ReducerFunc func(key []byte, msgs []Message, out *Output)

func (f ReducerFunc) Reduce(key []byte, msgs []Message, out *Output) { f(key, msgs, out) }

type Job struct {
	Name    string
	Inputs  []string
	Outputs map[string]int
	Mapper  Mapper
	Reducer Reducer
}

type PartStats struct {
	Input   string
	InterMB float64
	Records int64
}

type JobStats struct {
	Name     string
	Parts    []PartStats
	OutputMB float64
	Reducers int
}
