module lintest

go 1.24
