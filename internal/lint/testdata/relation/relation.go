// Package relation is a miniature of repro/internal/relation for the
// analyzer test suites (see lintest/mr).
package relation

type Value int64

type Tuple []Value

type Relation struct {
	name   string
	tuples []Tuple
}

func New(name string, arity int) *Relation { return &Relation{name: name} }

func (r *Relation) Add(t Tuple) { r.tuples = append(r.tuples, t) }

func (r *Relation) AddAll(o *Relation) { r.tuples = append(r.tuples, o.tuples...) }

func (r *Relation) Contains(t Tuple) bool { return false }

type Database struct {
	rels map[string]*Relation
}

func (db *Database) Get(name string) *Relation { return db.rels[name] }
