// Testdata for the mapiter analyzer: range-over-map loops reaching
// order-sensitive sinks.
package mapiter

import (
	"sort"

	"lintest/mr"
	"lintest/relation"
)

func sinks(m map[string]relation.Tuple, out *mr.Output, emit mr.Emit, rel *relation.Relation, other *relation.Relation, stats *mr.JobStats) {
	for k, t := range m {
		out.Add(k, t)        // want `map-ordered Output.Add`
		emit([]byte(k), nil) // want `map-ordered emit`
		rel.Add(t)           // want `map-ordered Relation.Add`
		rel.AddAll(other)    // want `map-ordered Relation.AddAll`
		stats.OutputMB += 1  // want `map-ordered stats fold \(OutputMB\)`
		if len(t) > 0 {
			out.Add(k, t) // want `map-ordered Output.Add`
		}
	}

	// The fix recipe: collect the keys, sort, iterate the slice.
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) // collection only: no sink
	}
	sort.Strings(keys)
	for _, k := range keys {
		out.Add(k, m[k]) // slice iteration: deterministic
	}

	// Closures built during iteration run later (after a sort) and are
	// not flagged.
	var emitters []func()
	for k := range m {
		emitters = append(emitters, func() { out.Add(k, m[k]) })
	}
	for _, e := range emitters {
		e()
	}

	// Order-insensitive work inside a map range stays legal.
	var records int64
	for _, ps := range statsByName(stats) {
		records += ps.Records
	}
	_ = records
}

func statsByName(stats *mr.JobStats) map[string]mr.PartStats {
	byName := make(map[string]mr.PartStats)
	for _, ps := range stats.Parts {
		byName[ps.Input] = ps
	}
	return byName
}

func suppressedSink(m map[string]relation.Tuple, rel *relation.Relation) {
	for _, t := range m {
		rel.Add(t) //lint:ignore mapiter testdata: pins that suppression silences the finding
	}
}
