// Testdata for the keyretain analyzer: reducer- and emit-shaped
// callbacks retaining the engine-owned key/msgs slices.
package keyretain

import "lintest/mr"

type sink struct {
	last []byte
	msgs []mr.Message
	keys [][]byte
	byID map[string][]byte
}

// Reduce has the reducer shape: ([]byte, []mr.Message, *mr.Output).
func (s *sink) Reduce(key []byte, msgs []mr.Message, out *mr.Output) {
	s.last = key                         // want `arena-owned key \[\]byte stored`
	s.msgs = msgs                        // want `reused msgs \[\]Message slice stored`
	s.keys = append(s.keys, key)         // want `arena-owned key \[\]byte stored`
	s.last = append([]byte(nil), key...) // copies: the sanctioned idiom
	s.msgs = append([]mr.Message(nil), msgs...)
	s.byID[string(key)] = append([]byte(nil), key...) // string(key) copies too

	k2 := key[1:] // a slice of the key still aliases the arena
	s.last = k2   // want `arena-owned key \[\]byte stored`

	one := msgs[0] // individual messages are immutable and retainable
	_ = one

	go logKey(key)           // want `arena-owned key \[\]byte passed to a goroutine`
	go func() { use(key) }() // want `arena-owned key \[\]byte captured by a goroutine`

	ch := make(chan []byte, 1)
	ch <- key // want `arena-owned key \[\]byte sent on a channel`

	local := map[string][]byte{}
	local[string(key)] = key // local map dies with the callback
	use(local[""])
}

// reducerFuncLit exercises the ReducerFunc literal form.
var reducerFuncLit = mr.ReducerFunc(func(key []byte, msgs []mr.Message, out *mr.Output) {
	retained = key // want `arena-owned key \[\]byte assigned`
	use(string(key))
})

var retained []byte

// wrapEmit exercises the emit shape ([]byte, mr.Message): a mapper-side
// emit wrapper may not retain the caller's reused key buffer.
func wrapEmit(emit mr.Emit, seen *[][]byte) mr.Emit {
	return func(key []byte, msg mr.Message) {
		*seen = append(*seen, key) // want `arena-owned key \[\]byte stored`
		emit(key, msg)             // synchronous passthrough is fine
	}
}

// suppressed pins the //lint:ignore machinery: no want comment, so an
// unsuppressed diagnostic here fails the suite.
var suppressed = mr.ReducerFunc(func(key []byte, msgs []mr.Message, out *mr.Output) {
	retained = key //lint:ignore keyretain testdata: pins that suppression silences the finding
})

func use(any) {}

func logKey([]byte) {}
