// Testdata for the readset analyzer: mr.Job construction whose mapper
// reads are not covered by the declared Inputs.
package readset

import (
	"lintest/mr"
	"lintest/relation"
)

func passThrough(input string, id int, t relation.Tuple, emit mr.Emit) {}

func noInputs() mr.Job {
	return mr.Job{ // want `mr.Job declares a Mapper but no Inputs`
		Name:   "q1",
		Mapper: mr.MapperFunc(passThrough),
	}
}

func emptyInputs() mr.Job {
	return mr.Job{ // want `mr.Job declares a Mapper but no Inputs`
		Name:   "q2",
		Inputs: []string{},
		Mapper: mr.MapperFunc(passThrough),
	}
}

// Reduce-only jobs have no map tasks to schedule early; Inputs may be
// empty.
func reduceOnly(r mr.Reducer) mr.Job {
	return mr.Job{Name: "fold", Reducer: r}
}

func capturesRelation(guard *relation.Relation) mr.Job {
	return mr.Job{
		Name:   "q3",
		Inputs: []string{"R"},
		Mapper: mr.MapperFunc(func(input string, id int, t relation.Tuple, emit mr.Emit) {
			if guard.Contains(t) { // want `mapper/reducer closure captures relation "guard" at plan time`
				emit(nil, nil)
			}
		}),
	}
}

func capturesDatabase(db *relation.Database) mr.Job {
	return mr.Job{
		Name:   "q4",
		Inputs: []string{"R"},
		Reducer: mr.ReducerFunc(func(key []byte, msgs []mr.Message, out *mr.Output) {
			_ = db.Get("S") // want `mapper/reducer closure captures database "db" at plan time`
		}),
	}
}

// declared inputs plus a parameter-only mapper: the legal shape.
func good() mr.Job {
	return mr.Job{
		Name:   "q5",
		Inputs: []string{"R", "S"},
		Mapper: mr.MapperFunc(func(input string, id int, t relation.Tuple, emit mr.Emit) {
			emit([]byte(input), nil)
		}),
	}
}

func suppressed() mr.Job {
	return mr.Job{Mapper: mr.MapperFunc(passThrough)} //lint:ignore readset testdata: pins that suppression silences the finding
}
