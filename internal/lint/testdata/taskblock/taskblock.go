// Testdata for the taskblock analyzer. The package is named mr like
// the engine package because poolCtx is unexported there: task
// closures can only exist inside the package that defines the pool.
package mr

import "sync"

type poolCtx struct{ pool *taskPool }

func (c *poolCtx) spawn(fn func(*poolCtx)) {}

type taskPool struct {
	mu sync.Mutex
}

func buildTasks(ch chan int, wg *sync.WaitGroup, mu *sync.Mutex, done *int) func(*poolCtx) {
	return func(c *poolCtx) {
		ch <- 1   // want `channel send inside a pool task`
		<-ch      // want `channel receive inside a pool task`
		wg.Wait() // want `sync.WaitGroup.Wait inside a pool task`

		select { // want `select without default inside a pool task`
		case v := <-ch:
			_ = v
		}

		// Non-blocking poll: legal.
		select {
		case v := <-ch:
			_ = v
		default:
		}

		mu.Lock()
		c.spawn(func(c *poolCtx) {}) // want `spawn while holding mu`
		mu.Unlock()
		c.spawn(func(c *poolCtx) {}) // lock released: legal

		// A goroutine launched from a task owns its own stack and may
		// block; only the task itself must not.
		go func() { <-ch }()

		*done++
	}
}

// condWait is task-shaped via the named parameter form.
func condWait(c *poolCtx, cond *sync.Cond) {
	_ = func(c *poolCtx) {
		cond.Wait() // want `sync.Cond.Wait inside a pool task`
	}
}

// notTasks: blocking operations outside task closures are fine.
func notTasks(ch chan int, wg *sync.WaitGroup) {
	ch <- 1
	<-ch
	wg.Wait()
}

func suppressed(ch chan int) func(*poolCtx) {
	return func(c *poolCtx) {
		<-ch //lint:ignore taskblock testdata: pins that suppression silences the finding
	}
}
