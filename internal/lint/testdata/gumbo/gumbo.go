// Package gumbo is a miniature of the repro root package for the
// deprecatedknob analyzer tests (see lintest/mr).
package gumbo

type Option func()

func WithHostWorkers(workers int) Option { return func() {} }

// Deprecated: use WithHostWorkers.
func WithHostParallelism(phaseWorkers, concurrentJobs int) Option {
	return WithHostWorkers(phaseWorkers * concurrentJobs)
}
