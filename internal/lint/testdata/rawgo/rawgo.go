// Testdata for the rawgo analyzer. The package is named mr because the
// check is scoped to the engine package.
package mr

func worker(id int) {}

func fanOut() {
	for i := 0; i < 4; i++ {
		go worker(i) // want `raw goroutine in the engine package`
	}
}

func sanctioned() {
	//lint:ignore rawgo testdata: pins that suppression covers the next line
	go worker(0)
}
