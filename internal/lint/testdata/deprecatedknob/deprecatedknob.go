// Testdata for the deprecatedknob analyzer: retired knob surfaces and
// -jobs flag registrations.
package deprecatedknob

import (
	"flag"

	"lintest/gumbo"
)

func options() []gumbo.Option {
	return []gumbo.Option{
		gumbo.WithHostWorkers(8),
		gumbo.WithHostParallelism(4, 2), // want `WithHostParallelism is a deprecated knob`
	}
}

var jobs = flag.Int("jobs", 1, "old knob") // want `registering a -jobs flag`

var workers = flag.Int("workers", 1, "the knob")

func registerFlags(fs *flag.FlagSet) {
	var n int
	fs.IntVar(&n, "jobs", 1, "old knob")                                 // want `registering a -jobs flag`
	flag.StringVar(new(string), "jobs", "", "old knob even as a string") // want `registering a -jobs flag`
	fs.IntVar(&n, "workers", 1, "the knob")
}

// An unrelated local that happens to share a retired name is not a knob
// surface.
func unrelated() int {
	JobParallelism := 3
	return JobParallelism
}

func shimmed() gumbo.Option {
	return gumbo.WithHostParallelism(2, 2) //lint:ignore deprecatedknob testdata: pins that suppression silences the finding
}
