package memcharge_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/memcharge"
)

func TestMemCharge(t *testing.T) {
	analysistest.Run(t, "../testdata", memcharge.Analyzer, "lintest/memcharge")
}
