// Package memcharge flags direct []byte allocation in the engine
// package outside the accounted allocation helper.
//
// Contract (docs/INVARIANTS.md, "Memory accounting"): every bulk byte
// buffer the engine materializes for a run — arena chunks, spill encode
// scratch, spill read buffers — must be charged to the run's mr.Budget
// before use, so per-query budgets observe real allocation and
// over-budget aborts stay deterministic. The single sanctioned way to
// obtain such a buffer is grabBytes(budget, n) (budget.go), which
// charges first and allocates second. A raw make([]byte, ...) anywhere
// else in the engine is a buffer the budget cannot see.
//
// The check applies to non-test files of packages named "mr"; the
// grabBytes helper itself is exempt (it is the accounting seam), and
// genuinely unaccounted small allocations can carry
// //lint:ignore memcharge with a justification.
package memcharge

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "memcharge",
	Doc:  "flags raw make([]byte, ...) in the engine package: bulk buffers must be charged to the run's Budget via grabBytes",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() != "mr" {
		return nil
	}
	for _, f := range pass.Files {
		filename := pass.Fset.File(f.Pos()).Name()
		if strings.HasSuffix(filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if fn, ok := n.(*ast.FuncDecl); ok && fn.Recv == nil && fn.Name.Name == "grabBytes" {
				return false // the accounting seam: charges, then allocates
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isMake(pass, call) || len(call.Args) == 0 {
				return true
			}
			if t := pass.TypesInfo.Types[call.Args[0]].Type; t != nil && lintutil.IsByteSlice(t) {
				pass.Reportf(call.Pos(), "unaccounted []byte allocation in the engine package: use grabBytes(budget, n) so the run's memory budget observes it (genuinely unaccounted buffers carry //lint:ignore memcharge)")
			}
			return true
		})
	}
	return nil
}

// isMake reports whether call invokes the make builtin.
func isMake(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "make"
}
