// Package memcharge flags direct []byte allocation in the engine
// package outside the accounted allocation helper.
//
// Contract (docs/INVARIANTS.md, "Memory accounting"): every bulk byte
// buffer the engine materializes for a run — arena chunks, spill encode
// scratch, spill read buffers — must be charged to the run's mr.Budget
// before use, so per-query budgets observe real allocation and
// over-budget aborts stay deterministic. The single sanctioned way to
// obtain such a buffer is grabBytes(budget, n) (budget.go), which
// charges first and allocates second. A raw make([]byte, ...) anywhere
// else in the engine is a buffer the budget cannot see.
//
// Three allocation forms are flagged: make([]byte, ...), the
// []byte(string) conversion, and bytes.Clone — each materializes a
// fresh byte buffer the budget cannot see (the conversion and clone
// forms matter since the skew sketch and split boundaries copy keys
// that outlive their arenas; the copies must come from grabBytes like
// every other bulk buffer).
//
// The check applies to non-test files of packages named "mr"; the
// grabBytes helper itself is exempt (it is the accounting seam), and
// genuinely unaccounted small allocations can carry
// //lint:ignore memcharge with a justification.
package memcharge

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "memcharge",
	Doc:  "flags raw make([]byte, ...), []byte(string) conversions and bytes.Clone in the engine package: bulk buffers must be charged to the run's Budget via grabBytes",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() != "mr" {
		return nil
	}
	for _, f := range pass.Files {
		filename := pass.Fset.File(f.Pos()).Name()
		if strings.HasSuffix(filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if fn, ok := n.(*ast.FuncDecl); ok && fn.Recv == nil && fn.Name.Name == "grabBytes" {
				return false // the accounting seam: charges, then allocates
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch {
			case isMake(pass, call) && len(call.Args) > 0:
				if t := pass.TypesInfo.Types[call.Args[0]].Type; t != nil && lintutil.IsByteSlice(t) {
					pass.Reportf(call.Pos(), "unaccounted []byte allocation in the engine package: use grabBytes(budget, n) so the run's memory budget observes it (genuinely unaccounted buffers carry //lint:ignore memcharge)")
				}
			case isByteConversion(pass, call):
				pass.Reportf(call.Pos(), "unaccounted []byte(string) conversion in the engine package: the copy bypasses the run's memory budget; copy into grabBytes(budget, n) instead (genuinely unaccounted buffers carry //lint:ignore memcharge)")
			case isBytesClone(pass, call):
				pass.Reportf(call.Pos(), "unaccounted bytes.Clone in the engine package: the copy bypasses the run's memory budget; copy into grabBytes(budget, n) instead (genuinely unaccounted buffers carry //lint:ignore memcharge)")
			}
			return true
		})
	}
	return nil
}

// isMake reports whether call invokes the make builtin.
func isMake(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "make"
}

// isByteConversion reports whether call is a []byte(stringExpr)
// conversion — a fresh buffer sized by the string, allocated outside
// the budget.
func isByteConversion(pass *analysis.Pass, call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() || !lintutil.IsByteSlice(tv.Type) {
		return false
	}
	at := pass.TypesInfo.Types[call.Args[0]].Type
	if at == nil {
		return false
	}
	basic, ok := at.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

// isBytesClone reports whether call invokes bytes.Clone.
func isBytesClone(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok && fn.Name() == "Clone" && fn.Pkg() != nil && fn.Pkg().Path() == "bytes"
}
