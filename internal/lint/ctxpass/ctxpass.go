// Package ctxpass enforces context propagation through the engine's
// task-spawning layers.
//
// Cancellation in the engine is cooperative: runTasks polls its
// context at every task grant, so a canceled query stops within a
// bounded number of grants — but only if the context that reaches the
// pool is the caller's. A function below the API layer that
// manufactures its own root context (context.Background or
// context.TODO) detaches everything beneath it from client
// disconnects, per-query deadlines and the abort endpoint; the
// documented no-cancellation entry points (gumbo.Run, Engine.RunJob,
// ...) carry //lint:ignore directives recording why they are the
// exception. Two checks:
//
//   - No context.Background()/context.TODO() outside package main and
//     test files. If the enclosing function already receives a
//     context, the fix is to propagate it; otherwise the function
//     should grow a context parameter (or be wrapped by an entry
//     point that does).
//   - A function that calls runTasks (the pool entry point) must
//     itself take a context.Context parameter — the pool's
//     cancellation guarantee is only as good as the context thread
//     that reaches it.
package ctxpass

import (
	"go/ast"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "ctxpass",
	Doc:  "flags context.Background()/TODO() below the API layer and runTasks callers without a context.Context parameter",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil // the cmd layer is where root contexts are made
	}
	for _, f := range pass.Files {
		if tf := pass.Fset.File(f.Pos()); tf != nil && strings.HasSuffix(tf.Name(), "_test.go") {
			continue // tests own their run's lifetime
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd.Type, fd.Body, hasCtxParam(pass, fd.Type))
			}
		}
	}
	return nil
}

// checkFunc walks one function body. hasCtx reports whether this
// function or any enclosing one receives a context.Context; nested
// literals are walked with the union, since a literal can close over
// its parent's ctx.
func checkFunc(pass *analysis.Pass, ftype *ast.FuncType, body *ast.BlockStmt, hasCtx bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkFunc(pass, n.Type, n.Body, hasCtx || hasCtxParam(pass, n.Type))
			return false
		case *ast.CallExpr:
			f := lintutil.FuncObj(pass.TypesInfo, n)
			if f == nil {
				return true
			}
			if f.Pkg() != nil && f.Pkg().Path() == "context" && (f.Name() == "Background" || f.Name() == "TODO") {
				if hasCtx {
					pass.Reportf(n.Pos(), "context.%s() inside a function that already receives a context.Context: propagate the caller's ctx instead of detaching this call tree from cancellation", f.Name())
				} else {
					pass.Reportf(n.Pos(), "context.%s() below the API layer detaches this call tree from cancellation (client disconnects, deadlines, aborts); accept and propagate a context.Context instead", f.Name())
				}
			}
			if f.Name() == "runTasks" && f.Pkg() != nil && f.Pkg().Name() == "mr" && !hasCtx {
				pass.Reportf(n.Pos(), "calls runTasks but takes no context.Context: the pool's bounded-cancellation guarantee needs the caller's context threaded through every spawning layer")
			}
		}
		return true
	})
}

// hasCtxParam reports whether ftype declares a parameter of type
// context.Context.
func hasCtxParam(pass *analysis.Pass, ftype *ast.FuncType) bool {
	if ftype.Params == nil {
		return false
	}
	for _, field := range ftype.Params.List {
		if t := pass.TypesInfo.Types[field.Type].Type; t != nil && lintutil.NamedType(t, "context", "Context") {
			return true
		}
	}
	return false
}
