package ctxpass_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/ctxpass"
)

func TestCtxPass(t *testing.T) {
	analysistest.Run(t, "../testdata", ctxpass.Analyzer, "lintest/ctxpass")
}
