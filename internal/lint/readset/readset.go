// Package readset enforces the declared-read-set contract on job
// construction.
//
// The pipelined scheduler wires producer→consumer edges per input
// relation from each job's declared Inputs (mr.Program.ReadSets /
// core Plan.InputDeps): map tasks over input k start the moment
// relation k is merged, possibly while the job's other data still
// doesn't exist. A job whose mapper consults relation data that is not
// in its declared Inputs therefore races the schedule. Two statically
// visible violations:
//
//   - an mr.Job composite literal that installs a Mapper but declares
//     no Inputs — the scheduler would release its map tasks with no
//     producer edges at all;
//   - a Mapper/Reducer function literal that captures a
//     relation.Relation or relation.Database from the enclosing scope
//     at plan time — relation data must flow through declared Inputs,
//     not through closures (see the mr.Job.Inputs godoc).
//
// The transitive-containment test TestPlanDepsCoverInputDeps checks
// executed plans; this analyzer moves the same contract to lint time
// for every constructor, run or not.
package readset

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "readset",
	Doc:  "flags mr.Job construction whose mapper inputs are not covered by the declared read set (missing Inputs, plan-time relation captures)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			t := pass.TypesInfo.Types[lit].Type
			if t == nil || !lintutil.NamedType(t, "mr", "Job") {
				return true
			}
			checkJobLit(pass, lit)
			return true
		})
	}
	return nil
}

func checkJobLit(pass *analysis.Pass, lit *ast.CompositeLit) {
	var mapper, reducer, inputs ast.Expr
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue // positional Job literals don't occur; field rules need keys
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		switch key.Name {
		case "Mapper":
			mapper = kv.Value
		case "Reducer":
			reducer = kv.Value
		case "Inputs":
			inputs = kv.Value
		}
	}
	if mapper != nil && emptyInputs(inputs) {
		pass.Reportf(lit.Pos(), "mr.Job declares a Mapper but no Inputs: the scheduler derives producer edges from the declared read set, so an undeclared input races the pipeline; declare every relation the mapper reads")
	}
	for _, fn := range []ast.Expr{mapper, reducer} {
		if fn != nil {
			checkCapture(pass, fn)
		}
	}
}

// emptyInputs reports whether the Inputs field is absent or a
// statically empty slice literal.
func emptyInputs(inputs ast.Expr) bool {
	if inputs == nil {
		return true
	}
	if cl, ok := ast.Unparen(inputs).(*ast.CompositeLit); ok {
		return len(cl.Elts) == 0
	}
	return false
}

// checkCapture reports relation-typed free variables of a mapper or
// reducer function literal (unwrapping MapperFunc/ReducerFunc
// conversions).
func checkCapture(pass *analysis.Pass, fn ast.Expr) {
	fn = ast.Unparen(fn)
	if call, ok := fn.(*ast.CallExpr); ok && len(call.Args) == 1 {
		// MapperFunc(lit) / ReducerFunc(lit) conversions.
		if t := pass.TypesInfo.Types[call.Fun].Type; t != nil &&
			(lintutil.NamedType(t, "mr", "MapperFunc") || lintutil.NamedType(t, "mr", "ReducerFunc")) {
			fn = ast.Unparen(call.Args[0])
		}
	}
	lit, ok := fn.(*ast.FuncLit)
	if !ok {
		return
	}
	free := lintutil.FreeObjects(pass.TypesInfo, lit, func(o types.Object) bool {
		if _, isVar := o.(*types.Var); !isVar {
			return false
		}
		return isRelationData(o.Type())
	})
	for obj, ids := range free {
		pass.Reportf(ids[0].Pos(), "mapper/reducer closure captures %s %q at plan time: relation data must flow through the job's declared Inputs so the scheduler's producer edges cover every read (see mr.Job.Inputs)", typeLabel(obj.Type()), obj.Name())
	}
}

// isRelationData matches the relation-store types whose capture breaks
// the read-set contract.
func isRelationData(t types.Type) bool {
	return lintutil.NamedType(t, "relation", "Relation") ||
		lintutil.PtrToNamed(t, "relation", "Relation") ||
		lintutil.NamedType(t, "relation", "Database") ||
		lintutil.PtrToNamed(t, "relation", "Database")
}

func typeLabel(t types.Type) string {
	if lintutil.NamedType(t, "relation", "Database") || lintutil.PtrToNamed(t, "relation", "Database") {
		return "database"
	}
	return "relation"
}
