package readset_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/readset"
)

func TestReadSet(t *testing.T) {
	analysistest.Run(t, "../testdata", readset.Analyzer, "lintest/readset")
}
