// Package load turns `go list` package patterns into type-checked
// packages for the lint driver, using only the standard library and
// the go command.
//
// The usual tool for this is golang.org/x/tools/go/packages; this repo
// builds offline with no module dependencies, so load reimplements the
// slice it needs: one `go list -test -deps -export -json` invocation
// enumerates the target packages and every dependency in post-order
// (dependencies first), targets are parsed and type-checked from
// source, and dependencies resolve through the compiler export data
// the go command just produced (the Export field), read by the
// standard gc importer's lookup hook. Test variants come along for
// free: `-test` synthesizes the test-augmented package ("p [p.test]")
// and the external test package ("p_test [p.test]"), which are
// type-checked from source like any other target; the augmented
// variant restricts reporting to its _test.go files so the plain
// variant's files are not linted twice.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	ImportPath  string // as reported by go list, e.g. "repro/internal/mr [repro/internal/mr.test]"
	Name        string
	Fset        *token.FileSet
	Files       []*ast.File
	Types       *types.Package
	Info        *types.Info
	ReportFiles map[string]bool // nil = report everywhere; else restrict (test-augmented variants)
}

// listPackage is the subset of `go list -json` output the loader reads.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Export     string
	Standard   bool
	DepOnly    bool
	ForTest    string
	Incomplete bool
	Error      *struct{ Err string }
}

// Load lists patterns in module directory dir and returns the matched
// packages (including test variants) type-checked from source.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-test", "-deps", "-export",
		"-json=ImportPath,Name,Dir,GoFiles,Imports,ImportMap,Export,Standard,DepOnly,ForTest,Incomplete,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	var pkgs []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}

	ld := &loader{
		fset:    token.NewFileSet(),
		exports: make(map[string]string),
		checked: make(map[string]*types.Package),
	}
	ld.gcImporter = importer.ForCompiler(ld.fset, "gc", ld.lookupExport)

	var result []*Package
	for _, p := range pkgs {
		if p.Export != "" {
			ld.exports[p.ImportPath] = p.Export
		}
		if p.DepOnly || p.Standard {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("package %s: %s", p.ImportPath, p.Error.Err)
		}
		// Skip the synthesized test-main binary ("p.test"): its one
		// GoFile is a generated _testmain.go in the build cache.
		if strings.HasSuffix(p.ImportPath, ".test") && p.Name == "main" {
			continue
		}
		pkg, err := ld.check(p)
		if err != nil {
			return nil, err
		}
		result = append(result, pkg)
	}
	return result, nil
}

// loader type-checks listed packages in the dependency order go list
// emitted them, threading one FileSet and one gc importer so type
// identity is consistent across the whole load.
type loader struct {
	fset       *token.FileSet
	exports    map[string]string         // import path → export data file
	checked    map[string]*types.Package // go list ImportPath (incl. " [p.test]" variants) → package
	gcImporter types.Importer
}

// lookupExport feeds export data files to the gc importer.
func (ld *loader) lookupExport(path string) (io.ReadCloser, error) {
	file, ok := ld.exports[path]
	if !ok {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return os.Open(file)
}

// check parses and type-checks one listed package from source.
func (ld *loader) check(p *listPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range p.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(p.Dir, name)
		}
		f, err := parser.ParseFile(ld.fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("package %s: %v", p.ImportPath, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{
		Importer: &pkgImporter{ld: ld, importMap: p.ImportMap},
	}
	// The bracketed test-variant suffix is go list bookkeeping, not an
	// import path: the augmented "p [p.test]" type-checks as path p so
	// its external test package can import it under that name.
	path := p.ImportPath
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	tpkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("package %s: %v", p.ImportPath, err)
	}
	ld.checked[p.ImportPath] = tpkg

	pkg := &Package{
		ImportPath: p.ImportPath,
		Name:       p.Name,
		Fset:       ld.fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	// Test-augmented variants re-contain the plain variant's files;
	// restrict their reporting to the test files so diagnostics in
	// regular files appear exactly once (under the plain variant).
	if p.ForTest != "" && !strings.HasSuffix(p.Name, "_test") {
		pkg.ReportFiles = make(map[string]bool)
		for _, name := range p.GoFiles {
			if strings.HasSuffix(name, "_test.go") {
				abs := name
				if !filepath.IsAbs(abs) {
					abs = filepath.Join(p.Dir, name)
				}
				pkg.ReportFiles[abs] = true
			}
		}
	}
	return pkg, nil
}

// pkgImporter resolves one package's imports: source-checked packages
// first (honoring go list's ImportMap, which routes an external test
// package's import of "p" to the augmented "p [p.test]" variant), then
// compiler export data for everything else.
type pkgImporter struct {
	ld        *loader
	importMap map[string]string
}

func (im *pkgImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := im.importMap[path]; ok {
		path = mapped
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := im.ld.checked[path]; ok {
		return pkg, nil
	}
	return im.ld.gcImporter.Import(path)
}
