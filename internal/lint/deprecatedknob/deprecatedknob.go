// Package deprecatedknob flags internal use of retired configuration
// surfaces, keeping the PR 5 single-knob model (one unified worker
// pool, sized by WithHostWorkers / -workers) converged.
//
// Flagged:
//   - references to gumbo.WithHostParallelism (and any other identifier
//     in the retired table: JobParallelism, HostJobs) outside their own
//     declaration;
//   - registration of a command-line flag named "jobs" through the
//     flag package — the two-knob spelling must not grow new surfaces.
//
// The deliberate compatibility shims (gumbo-bench/-serve keep a -jobs
// flag; gumbo_test exercises the alias) carry //lint:ignore directives
// explaining themselves.
package deprecatedknob

import (
	"go/ast"
	"go/types"
	"strconv"

	"repro/internal/lint/analysis"
	"repro/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "deprecatedknob",
	Doc:  "flags use of deprecated parallelism knobs (WithHostParallelism, -jobs registrations) superseded by the single-knob model",
	Run:  run,
}

// retired maps identifier names of removed or deprecated knob surfaces
// to the replacement to name in the diagnostic.
var retired = map[string]string{
	"WithHostParallelism": "WithHostWorkers",
	"JobParallelism":      "Engine.Parallelism",
	"HostJobs":            "HostWorkers",
}

// flagFuncs maps flag-registration function names to the index of
// their name argument.
var flagFuncs = map[string]int{
	"Bool": 0, "BoolVar": 1,
	"Int": 0, "IntVar": 1,
	"Int64": 0, "Int64Var": 1,
	"Uint": 0, "UintVar": 1,
	"Uint64": 0, "Uint64Var": 1,
	"String": 0, "StringVar": 1,
	"Float64": 0, "Float64Var": 1,
	"Duration": 0, "DurationVar": 1,
	"Func": 0, "Var": 1, "TextVar": 1,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				obj := pass.TypesInfo.Uses[n]
				if obj == nil {
					return true
				}
				if repl, ok := retired[n.Name]; ok && isKnobObject(obj) {
					pass.Reportf(n.Pos(), "%s is a deprecated knob surface: the engine has one unified worker pool; use %s", n.Name, repl)
				}
			case *ast.CallExpr:
				checkFlagRegistration(pass, n)
			}
			return true
		})
	}
	return nil
}

// isKnobObject keeps the retired-name match honest: only functions and
// struct fields count, so an unrelated local variable that happens to
// share a name is not flagged.
func isKnobObject(obj types.Object) bool {
	switch o := obj.(type) {
	case *types.Func:
		return true
	case *types.Var:
		return o.IsField()
	}
	return false
}

// checkFlagRegistration reports flag definitions named "jobs".
func checkFlagRegistration(pass *analysis.Pass, call *ast.CallExpr) {
	f := lintutil.FuncObj(pass.TypesInfo, call)
	if f == nil || f.Pkg() == nil || f.Pkg().Name() != "flag" {
		return
	}
	argIdx, ok := flagFuncs[f.Name()]
	if !ok || len(call.Args) <= argIdx {
		return
	}
	lit, ok := ast.Unparen(call.Args[argIdx]).(*ast.BasicLit)
	if !ok {
		return
	}
	if name, err := strconv.Unquote(lit.Value); err == nil && name == "jobs" {
		pass.Reportf(call.Pos(), "registering a -jobs flag: the two-knob model is retired; expose -workers (one pool) instead")
	}
}
