package deprecatedknob_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/deprecatedknob"
)

func TestDeprecatedKnob(t *testing.T) {
	analysistest.Run(t, "../testdata", deprecatedknob.Analyzer, "lintest/deprecatedknob")
}
