// Package lint assembles the gumbo-lint analyzer suite: the
// project-specific static checks that machine-enforce the engine's
// documented ownership, determinism and scheduling contracts
// (docs/INVARIANTS.md maps each contract to its analyzer and fix
// recipe).
//
// The suite runs three ways, all over the same driver:
//
//	go run ./cmd/gumbo-lint ./...          # multichecker, CI gate
//	go vet -vettool=$(bin) ./...           # vet integration
//	go test ./internal/lint/...            # analysistest suites
package lint

import (
	"repro/internal/lint/analysis"
	"repro/internal/lint/ctxpass"
	"repro/internal/lint/deprecatedknob"
	"repro/internal/lint/keyretain"
	"repro/internal/lint/mapiter"
	"repro/internal/lint/memcharge"
	"repro/internal/lint/rawgo"
	"repro/internal/lint/readset"
	"repro/internal/lint/taskblock"
)

// Analyzers returns the full suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		ctxpass.Analyzer,
		deprecatedknob.Analyzer,
		keyretain.Analyzer,
		mapiter.Analyzer,
		memcharge.Analyzer,
		rawgo.Analyzer,
		readset.Analyzer,
		taskblock.Analyzer,
	}
}
