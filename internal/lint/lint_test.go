package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// TestLintRepo dogfoods the full suite over the real tree: the repo
// must stay finding-free so the CI gate (go run ./cmd/gumbo-lint ./...)
// never fires on merged code. Skipped under -short: loading every
// package with test variants typechecks the whole module.
func TestLintRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module load")
	}
	pkgs, err := load.Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading repo: %v", err)
	}
	analyzers := lint.Analyzers()
	for _, pkg := range pkgs {
		diags, err := analysis.Run(analyzers, pkg.Fset, pkg.Files, pkg.Types, pkg.Info, pkg.ReportFiles)
		if err != nil {
			t.Errorf("%s: %v", pkg.ImportPath, err)
			continue
		}
		for _, d := range diags {
			t.Errorf("%s: [%s] %s", pkg.Fset.Position(d.Pos), d.Analyzer.Name, d.Message)
		}
	}
}
