package rawgo_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/rawgo"
)

func TestRawGo(t *testing.T) {
	analysistest.Run(t, "../testdata", rawgo.Analyzer, "lintest/rawgo")
}
