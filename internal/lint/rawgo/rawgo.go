// Package rawgo flags raw `go` statements in the engine package.
//
// All engine concurrency must flow through the work-stealing taskPool
// (internal/mr/pool.go): the pool's quiescence detection counts
// spawned tasks, and its abort path re-raises the first task panic on
// the RunJob/RunProgram caller. A raw goroutine is invisible to both —
// work it performs can outlive the run (racing the next job's reuse of
// shared buffers) and a panic in it crashes the process instead of
// surfacing as an error. The two sanctioned primitives that *implement*
// structured concurrency for the pool (runTasks's worker loop,
// parallelFor's barriered helper) carry //lint:ignore directives.
//
// The check applies to non-test files of packages named "mr"; tests
// exercising the pool from outside may use goroutines freely.
package rawgo

import (
	"go/ast"
	"strings"

	"repro/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "rawgo",
	Doc:  "flags raw go statements in the engine package: concurrency must flow through taskPool so quiescence and panic propagation hold",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() != "mr" {
		return nil
	}
	for _, f := range pass.Files {
		filename := pass.Fset.File(f.Pos()).Name()
		if strings.HasSuffix(filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Pos(), "raw goroutine in the engine package: schedule work through taskPool.spawn so quiescence detection and panic propagation cover it (sanctioned primitives carry //lint:ignore rawgo)")
			}
			return true
		})
	}
	return nil
}
