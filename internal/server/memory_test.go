package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/mr"
)

// These tests pin the server's memory-governance degradation ladder
// (memory.go): per-query budgets abort with 413, a saturated global
// ledger sheds with 503 + Retry-After, and a panicking query fails
// alone with 500 while the server keeps serving. Tests installing
// mr.SetFaultHooks hold a process-wide seam and must not run in
// parallel.

// TestQueryPanicContainment injects a panic into the first engine task
// grant: the query must fail with 500 (the panic is recovered at the
// query boundary, not the process), the registry and admission slot
// must drain, and the very next query must succeed.
func TestQueryPanicContainment(t *testing.T) {
	_, c := newTestClient(t, Config{})
	c.loadBookstore("shop")

	restore := mr.SetFaultHooks(mr.FaultHooks{Grant: func(n int) {
		if n == 0 {
			panic("injected task fault")
		}
	}})
	defer restore()
	if code := c.do("POST", "/v1/db/shop/query", map[string]any{"query": queryZ}, nil); code != http.StatusInternalServerError {
		t.Fatalf("panicking query: status %d, want 500", code)
	}
	restore()

	pollUntil(t, "registry and slot to drain after the panic", func() bool {
		s := getStats(c)
		return statInt(t, s, "inflight_queries") == 0 && statInt(t, s, "active_runs") == 0
	})
	if got := statInt(t, getStats(c), "queries_panicked"); got != 1 {
		t.Errorf("queries_panicked %d, want 1", got)
	}
	// The server keeps serving: the panic failed only its own query.
	if code := c.do("POST", "/v1/db/shop/query", map[string]any{"query": queryZ}, nil); code != http.StatusOK {
		t.Fatalf("query after contained panic: status %d, want 200", code)
	}
	if got := statInt(t, getStats(c), "queries_panicked"); got != 1 {
		t.Errorf("queries_panicked %d after a clean query, want still 1", got)
	}
}

// TestQueryBudgetExceeded413: a one-byte per-query budget aborts every
// run deterministically with 413, the loaded data is untouched, and
// raising the budget lets the same query through.
func TestQueryBudgetExceeded413(t *testing.T) {
	_, c := newTestClient(t, Config{QueryMemBudget: 1})
	c.loadBookstore("shop")
	if code := c.do("POST", "/v1/db/shop/query", map[string]any{"query": queryZ}, nil); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("over-budget query: status %d, want 413", code)
	}
	stats := getStats(c)
	if got := statInt(t, stats, "query_mem_bytes"); got != 1 {
		t.Errorf("query_mem_bytes %d, want the configured 1", got)
	}
	pollUntil(t, "registry to drain after the abort", func() bool {
		s := getStats(c)
		return statInt(t, s, "inflight_queries") == 0 && statInt(t, s, "active_runs") == 0
	})
	// The abort left the database untouched.
	var info map[string]any
	if code := c.do("GET", "/v1/db/shop", nil, &info); code != http.StatusOK {
		t.Fatalf("info after abort: status %d", code)
	}
	if rels := info["relations"].([]any); len(rels) != 3 {
		t.Fatalf("relations after abort: %d, want 3", len(rels))
	}

	// An unbudgeted server runs the identical query fine.
	_, c2 := newTestClient(t, Config{})
	c2.loadBookstore("shop")
	if code := c2.do("POST", "/v1/db/shop/query", map[string]any{"query": queryZ}, nil); code != http.StatusOK {
		t.Fatalf("same query without a budget: status %d, want 200", code)
	}
}

// TestGlobalMemoryShed503 walks the load-shedding rung: a parked query
// holds its reservation against a saturated global ledger, so a second
// query is rejected with 503 and a Retry-After hint before any engine
// work; once the first finishes the ledger drains and queries are
// admitted again.
func TestGlobalMemoryShed503(t *testing.T) {
	_, c := newTestClient(t, Config{MemBudget: 1, ConcurrentJobs: 2})
	c.loadBookstore("shop")

	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	restore := mr.SetFaultHooks(mr.FaultHooks{Grant: func(int) {
		once.Do(func() { close(started) })
		<-release
	}})
	defer restore()
	defer func() {
		select {
		case <-release:
		default:
			close(release)
		}
	}()

	first := make(chan int, 1)
	go func() { first <- c.do("POST", "/v1/db/shop/query", map[string]any{"query": queryZ}, nil) }()
	// An empty ledger always admits one query (the first reservation is
	// never refused, so a tiny budget cannot starve the server); it is
	// now parked mid-engine, holding its reservation.
	<-started

	// Second query: its reservation cannot fit → shed with the header.
	body, err := json.Marshal(map[string]any{"query": queryW})
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := c.srv.Client().Post(c.srv.URL+"/v1/db/shop/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("second query: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second query: status %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got == "" {
		t.Errorf("503 response carries no Retry-After header")
	}
	stats := getStats(c)
	if got := statInt(t, stats, "queries_shed"); got != 1 {
		t.Errorf("queries_shed %d, want 1", got)
	}
	if got := statInt(t, stats, "mem_budget_bytes"); got != 1 {
		t.Errorf("mem_budget_bytes %d, want the configured 1", got)
	}
	if got := statInt(t, stats, "mem_committed"); got <= 0 {
		t.Errorf("mem_committed %d while a reservation is held, want > 0", got)
	}

	// Unpark: the first query completes normally (its reservation was a
	// prediction, not a cap) and its reservation is released.
	close(release)
	select {
	case code := <-first:
		if code != http.StatusOK {
			t.Fatalf("parked query: status %d, want 200", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("parked query did not return")
	}
	restore()
	pollUntil(t, "ledger to drain", func() bool {
		return statInt(t, getStats(c), "mem_committed") == 0
	})
	// With the ledger drained, admission works again.
	if code := c.do("POST", "/v1/db/shop/query", map[string]any{"query": queryW}, nil); code != http.StatusOK {
		t.Fatalf("query after drain: status %d, want 200", code)
	}
}

// TestMemLedgerUnit pins the ledger's admission rule directly: the cap
// disabled, the first-reservation exception, the fit check, and
// release symmetry.
func TestMemLedgerUnit(t *testing.T) {
	if l := newMemLedger(0); !l.reserve(1 << 40) {
		t.Fatalf("disabled ledger refused a reservation")
	}
	l := newMemLedger(100)
	if !l.reserve(1000) {
		t.Fatalf("empty ledger refused the first reservation (starvation guard)")
	}
	if l.reserve(1) {
		t.Fatalf("saturated ledger admitted a second reservation")
	}
	l.release(1000)
	if got := l.load(); got != 0 {
		t.Fatalf("committed %d after release, want 0", got)
	}
	if !l.reserve(60) || !l.reserve(40) {
		t.Fatalf("ledger refused reservations that fit the cap")
	}
	if l.reserve(1) {
		t.Fatalf("ledger admitted past the cap")
	}
	l.release(40)
	if !l.reserve(40) {
		t.Fatalf("ledger refused a reservation after an equal release")
	}
}
