package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"

	"repro/internal/server"
)

// Example drives the query service in-process, mirroring the curl
// session in docs/SERVER.md: create a database, bulk-load relations,
// and evaluate a query. This is the executable form of the service
// quick start.
func Example() {
	srv := httptest.NewServer(server.New(server.Config{}).Handler())
	defer srv.Close()
	client := srv.Client()

	must := func(resp *http.Response, err error) *http.Response {
		if err != nil {
			panic(err)
		}
		return resp
	}
	post := func(path, body string) map[string]any {
		resp := must(client.Post(srv.URL+path, "application/json", bytes.NewBufferString(body)))
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			panic(err)
		}
		if e, ok := out["error"]; ok {
			panic(e)
		}
		return out
	}

	req, _ := http.NewRequest(http.MethodPut, srv.URL+"/v1/db/shop", nil)
	must(client.Do(req)).Body.Close()

	post("/v1/db/shop/load", `{"relations": [
		{"name": "R", "arity": 2, "tuples": [[1, 2], [2, 3], [4, 5]]},
		{"name": "S", "arity": 1, "tuples": [[2], [5]]}
	]}`)

	out := post("/v1/db/shop/query", `{"query": "Z := SELECT x FROM R(x, y) WHERE S(y);"}`)
	fmt.Println("output:", out["output"])
	fmt.Println("tuples:", out["tuples"])
	fmt.Println("strategy:", out["strategy"])
	// Output:
	// output: Z
	// tuples: [[1] [4]]
	// strategy: 1-ROUND
}
