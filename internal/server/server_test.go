package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	gumbo "repro"
)

// testClient wraps an httptest server with JSON helpers.
type testClient struct {
	t   *testing.T
	srv *httptest.Server
}

func newTestClient(t *testing.T, cfg Config) (*Server, *testClient) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, &testClient{t: t, srv: ts}
}

// do issues a request and decodes the JSON response into out (ignored
// when out is nil). Returns the status code.
func (c *testClient) do(method, path string, body any, out any) int {
	c.t.Helper()
	var payload *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			c.t.Fatalf("marshal request: %v", err)
		}
		payload = bytes.NewReader(b)
	} else {
		payload = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, c.srv.URL+path, payload)
	if err != nil {
		c.t.Fatalf("new request: %v", err)
	}
	resp, err := c.srv.Client().Do(req)
	if err != nil {
		c.t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	if out != nil {
		dec := json.NewDecoder(resp.Body)
		dec.UseNumber()
		if err := dec.Decode(out); err != nil {
			c.t.Fatalf("%s %s: decode response: %v", method, path, err)
		}
	}
	return resp.StatusCode
}

// loadBookstore creates db and loads the three-relation example data.
func (c *testClient) loadBookstore(db string) {
	c.t.Helper()
	if code := c.do("PUT", "/v1/db/"+db, nil, nil); code != http.StatusCreated {
		c.t.Fatalf("create db: status %d", code)
	}
	load := map[string]any{"relations": []map[string]any{
		{"name": "R", "arity": 2, "tuples": [][]any{{1, 2}, {2, 3}, {4, 5}, {6, 7}}},
		{"name": "S", "arity": 2, "tuples": [][]any{{1, 2}, {3, 2}, {5, 4}}},
		{"name": "T", "arity": 2, "tuples": [][]any{{1, 100}, {2, 200}, {6, 300}}},
	}}
	if code := c.do("POST", "/v1/db/"+db+"/load", load, nil); code != http.StatusOK {
		c.t.Fatalf("load: status %d", code)
	}
}

// libDB builds the same database the loadBookstore payload describes.
func libDB() *gumbo.Database {
	db := gumbo.NewDatabase()
	db.Put(gumbo.FromTuples("R", 2, []gumbo.Tuple{
		{gumbo.Int(1), gumbo.Int(2)}, {gumbo.Int(2), gumbo.Int(3)},
		{gumbo.Int(4), gumbo.Int(5)}, {gumbo.Int(6), gumbo.Int(7)},
	}))
	db.Put(gumbo.FromTuples("S", 2, []gumbo.Tuple{
		{gumbo.Int(1), gumbo.Int(2)}, {gumbo.Int(3), gumbo.Int(2)}, {gumbo.Int(5), gumbo.Int(4)},
	}))
	db.Put(gumbo.FromTuples("T", 2, []gumbo.Tuple{
		{gumbo.Int(1), gumbo.Int(100)}, {gumbo.Int(2), gumbo.Int(200)}, {gumbo.Int(6), gumbo.Int(300)},
	}))
	return db
}

const (
	queryZ = `Z := SELECT x, y FROM R(x, y) WHERE (S(x, y) OR S(y, x)) AND T(x, z);`
	queryW = `W := SELECT x FROM R(x, y) WHERE T(x, z);`
)

// canonJSON is the bit-for-bit comparison form of a tuple list.
func canonJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(b)
}

// TestEndToEndConcurrentQueries is the acceptance test: load a database
// over HTTP, submit concurrent queries, and require each HTTP response's
// tuples to match — bit for bit — the canonical encoding of the relation
// a library-direct System.Run produces.
func TestEndToEndConcurrentQueries(t *testing.T) {
	s, c := newTestClient(t, Config{})
	c.loadBookstore("shop")

	queries := []string{queryZ, queryW, queryZ, queryW, queryZ, queryW}
	db := libDB()
	want := make([]string, len(queries))
	for i, src := range queries {
		q := gumbo.MustParse(src)
		res, err := s.System().Run(q, db, s.System().Auto(q))
		if err != nil {
			t.Fatalf("library run %d: %v", i, err)
		}
		want[i] = canonJSON(t, encodeTuples(res.Relation))
	}

	var wg sync.WaitGroup
	got := make([]string, len(queries))
	errs := make([]error, len(queries))
	for i, src := range queries {
		wg.Add(1)
		go func(i int, src string) {
			defer wg.Done()
			var resp queryResponse
			code := c.do("POST", "/v1/db/shop/query", map[string]any{"query": src}, &resp)
			if code != http.StatusOK {
				errs[i] = fmt.Errorf("status %d", code)
				return
			}
			got[i] = canonJSON(t, resp.Tuples)
			if resp.BatchSize != 1 {
				errs[i] = fmt.Errorf("unbatched query reported batch_size %d", resp.BatchSize)
			}
		}(i, src)
	}
	wg.Wait()
	for i := range queries {
		if errs[i] != nil {
			t.Fatalf("query %d: %v", i, errs[i])
		}
		if got[i] != want[i] {
			t.Errorf("query %d: HTTP tuples %s != library tuples %s", i, got[i], want[i])
		}
	}
}

// TestBatchingMergesQueries posts overlapping queries with batch=true
// and requires at least two of them to be answered by one merged run —
// visible in the returned batch size, the shared job metrics, and a job
// count below the sum of the individual plans.
func TestBatchingMergesQueries(t *testing.T) {
	// A long window and MaxBatch = number of queries: the batch flushes
	// the moment the last query arrives.
	s, c := newTestClient(t, Config{BatchWindow: 500 * time.Millisecond, MaxBatch: 4})
	c.loadBookstore("shop")

	srcs := []string{
		`Z1 := SELECT x, y FROM R(x, y) WHERE S(x, y) AND T(x, z);`,
		`Z2 := SELECT x FROM R(x, y) WHERE S(x, y);`,
		`Z3 := SELECT y FROM R(x, y) WHERE T(x, z);`,
		`Z4 := SELECT x, y FROM R(x, y) WHERE S(y, x);`,
	}

	db := libDB()
	sumJobs := 0
	want := make([]string, len(srcs))
	for i, src := range srcs {
		q := gumbo.MustParse(src)
		res, err := s.System().Run(q, db, s.System().Auto(q))
		if err != nil {
			t.Fatalf("library run %d: %v", i, err)
		}
		want[i] = canonJSON(t, encodeTuples(res.Relation))
		sumJobs += res.Plan.Jobs()
	}

	var wg sync.WaitGroup
	resps := make([]queryResponse, len(srcs))
	codes := make([]int, len(srcs))
	for i, src := range srcs {
		wg.Add(1)
		go func(i int, src string) {
			defer wg.Done()
			codes[i] = c.do("POST", "/v1/db/shop/query", map[string]any{"query": src, "batch": true}, &resps[i])
		}(i, src)
	}
	wg.Wait()

	maxBatch := 0
	for i := range srcs {
		if codes[i] != http.StatusOK {
			t.Fatalf("query %d: status %d", i, codes[i])
		}
		if got := canonJSON(t, resps[i].Tuples); got != want[i] {
			t.Errorf("query %d: batched tuples %s != library tuples %s", i, got, want[i])
		}
		if resps[i].BatchSize > maxBatch {
			maxBatch = resps[i].BatchSize
		}
	}
	if maxBatch < 2 {
		t.Fatalf("no micro-batch formed: batch sizes all 1")
	}
	// Responses from the merged run share one program: same job metrics,
	// fewer jobs than running each query alone.
	var merged []queryResponse
	for _, r := range resps {
		if r.BatchSize == maxBatch {
			merged = append(merged, r)
		}
	}
	if len(merged) < 2 {
		t.Fatalf("batch size %d reported by %d responses", maxBatch, len(merged))
	}
	first := merged[0]
	if len(first.BatchOutputs) != maxBatch {
		t.Errorf("batch_outputs %v, want %d names", first.BatchOutputs, maxBatch)
	}
	for _, r := range merged[1:] {
		if !reflect.DeepEqual(r.Jobs, first.Jobs) {
			t.Errorf("merged responses disagree on job metrics:\n%v\nvs\n%v", r.Jobs, first.Jobs)
		}
		if r.Metrics != first.Metrics {
			t.Errorf("merged responses disagree on metrics: %+v vs %+v", r.Metrics, first.Metrics)
		}
	}
	if maxBatch == len(srcs) && first.Plan.Jobs >= sumJobs {
		t.Errorf("merged plan has %d jobs, expected sharing to beat %d (sum of solo plans)", first.Plan.Jobs, sumJobs)
	}

	var stats map[string]any
	c.do("GET", "/v1/stats", nil, &stats)
	if n, _ := stats["batch_runs"].(json.Number).Int64(); n < 1 {
		t.Errorf("stats report %v batch runs, want >= 1", stats["batch_runs"])
	}
}

// TestPlanCacheHitMissInvalidation covers the cache lifecycle: first
// run misses, repeat hits, and loading data (a generation bump, i.e. a
// schema/content change) invalidates.
func TestPlanCacheHitMissInvalidation(t *testing.T) {
	_, c := newTestClient(t, Config{})
	c.loadBookstore("shop")

	run := func() queryResponse {
		var resp queryResponse
		if code := c.do("POST", "/v1/db/shop/query", map[string]any{"query": queryZ, "strategy": "GREEDY"}, &resp); code != http.StatusOK {
			t.Fatalf("query: status %d", code)
		}
		return resp
	}
	if got := run().Cache; got != "miss" {
		t.Fatalf("first run: cache %q, want miss", got)
	}
	if got := run().Cache; got != "hit" {
		t.Fatalf("second run: cache %q, want hit", got)
	}
	// Same text under a different strategy is a different plan.
	var other queryResponse
	c.do("POST", "/v1/db/shop/query", map[string]any{"query": queryZ, "strategy": "SEQ"}, &other)
	if other.Cache != "miss" {
		t.Fatalf("strategy change: cache %q, want miss", other.Cache)
	}
	// A load bumps the generation: cached plans for the old state no
	// longer match.
	load := map[string]any{"relations": []map[string]any{
		{"name": "S", "arity": 2, "tuples": [][]any{{7, 6}}},
	}}
	if code := c.do("POST", "/v1/db/shop/load", load, nil); code != http.StatusOK {
		t.Fatalf("incremental load failed")
	}
	after := run()
	if after.Cache != "miss" {
		t.Fatalf("post-load run: cache %q, want miss (generation invalidation)", after.Cache)
	}
	if got := run().Cache; got != "hit" {
		t.Fatalf("post-load repeat: cache %q, want hit", got)
	}
}

// TestQueryAgainstUpdatedData guards against the cache serving stale
// results: after a load, the same query text must reflect the new data.
func TestQueryAgainstUpdatedData(t *testing.T) {
	_, c := newTestClient(t, Config{})
	c.loadBookstore("shop")

	var before queryResponse
	c.do("POST", "/v1/db/shop/query", map[string]any{"query": queryW}, &before)
	// Give x=4 a T partner: W (x of R with a T partner) gains a tuple.
	load := map[string]any{"relations": []map[string]any{
		{"name": "T", "arity": 2, "tuples": [][]any{{4, 400}}},
	}}
	c.do("POST", "/v1/db/shop/load", load, nil)
	var after queryResponse
	c.do("POST", "/v1/db/shop/query", map[string]any{"query": queryW}, &after)
	if canonJSON(t, before.Tuples) == canonJSON(t, after.Tuples) {
		t.Fatalf("query result unchanged after load; stale plan/result served")
	}
}

func TestDatabaseLifecycleAndErrors(t *testing.T) {
	_, c := newTestClient(t, Config{})

	if code := c.do("PUT", "/v1/db/a", nil, nil); code != http.StatusCreated {
		t.Fatalf("create: %d", code)
	}
	if code := c.do("PUT", "/v1/db/a", nil, nil); code != http.StatusConflict {
		t.Fatalf("duplicate create: %d, want 409", code)
	}
	if code := c.do("PUT", "/v1/db/bad%20name", nil, nil); code != http.StatusBadRequest {
		t.Fatalf("invalid name: %d, want 400", code)
	}
	var dbs map[string]any
	c.do("GET", "/v1/dbs", nil, &dbs)
	if got := fmt.Sprint(dbs["dbs"]); got != "[a]" {
		t.Fatalf("list: %s", got)
	}
	if code := c.do("POST", "/v1/db/missing/query", map[string]any{"query": queryZ}, nil); code != http.StatusNotFound {
		t.Fatalf("query on missing db: %d, want 404", code)
	}
	if code := c.do("POST", "/v1/db/a/query", map[string]any{"query": "not sgf"}, nil); code != http.StatusBadRequest {
		t.Fatalf("bad query text: %d, want 400", code)
	}
	if code := c.do("POST", "/v1/db/a/query", map[string]any{"query": queryZ, "strategy": "BOGUS"}, nil); code != http.StatusBadRequest {
		t.Fatalf("bad strategy: %d, want 400", code)
	}
	// queryZ reads relations the empty database lacks.
	if code := c.do("POST", "/v1/db/a/query", map[string]any{"query": queryZ}, nil); code != http.StatusUnprocessableEntity {
		t.Fatalf("query over missing relations: %d, want 422", code)
	}
	if code := c.do("DELETE", "/v1/db/a", nil, nil); code != http.StatusNoContent {
		t.Fatalf("drop: %d", code)
	}
	if code := c.do("DELETE", "/v1/db/a", nil, nil); code != http.StatusNotFound {
		t.Fatalf("double drop: %d, want 404", code)
	}
}

func TestLoadValidation(t *testing.T) {
	_, c := newTestClient(t, Config{})
	c.loadBookstore("shop")

	// Arity mismatch with the existing relation.
	bad := map[string]any{"relations": []map[string]any{
		{"name": "R", "arity": 3, "tuples": [][]any{{1, 2, 3}}},
	}}
	if code := c.do("POST", "/v1/db/shop/load", bad, nil); code != http.StatusBadRequest {
		t.Fatalf("arity clash: %d, want 400", code)
	}
	// Tuple narrower than declared arity.
	bad = map[string]any{"relations": []map[string]any{
		{"name": "U", "arity": 2, "tuples": [][]any{{1}}},
	}}
	if code := c.do("POST", "/v1/db/shop/load", bad, nil); code != http.StatusBadRequest {
		t.Fatalf("short tuple: %d, want 400", code)
	}
	// Non-integral number.
	bad = map[string]any{"relations": []map[string]any{
		{"name": "U", "arity": 1, "tuples": [][]any{{1.5}}},
	}}
	if code := c.do("POST", "/v1/db/shop/load", bad, nil); code != http.StatusBadRequest {
		t.Fatalf("float value: %d, want 400", code)
	}
	// Negative integers cannot round-trip (they would come back as
	// strings) and are rejected.
	bad = map[string]any{"relations": []map[string]any{
		{"name": "U", "arity": 1, "tuples": [][]any{{-5}}},
	}}
	if code := c.do("POST", "/v1/db/shop/load", bad, nil); code != http.StatusBadRequest {
		t.Fatalf("negative value: %d, want 400", code)
	}
	// A failed load must not commit anything: the valid relation listed
	// before the bad one stays unpublished, and the generation is
	// unchanged.
	var info map[string]any
	c.do("GET", "/v1/db/shop", nil, &info)
	genBefore := info["generation"]
	bad = map[string]any{"relations": []map[string]any{
		{"name": "OK", "arity": 1, "tuples": [][]any{{1}}},
		{"name": "R", "arity": 3, "tuples": [][]any{{1, 2, 3}}}, // arity clash
	}}
	if code := c.do("POST", "/v1/db/shop/load", bad, nil); code != http.StatusBadRequest {
		t.Fatalf("partial load: %d, want 400", code)
	}
	c.do("GET", "/v1/db/shop", nil, &info)
	if info["generation"] != genBefore {
		t.Fatalf("failed load bumped generation %v -> %v; load is not atomic", genBefore, info["generation"])
	}
	for _, rel := range info["relations"].([]any) {
		if rel.(map[string]any)["name"] == "OK" {
			t.Fatal("failed load published relation OK; load is not atomic")
		}
	}
	// String values are fine and round-trip.
	good := map[string]any{"relations": []map[string]any{
		{"name": "Rated", "arity": 2, "tuples": [][]any{{"book", "bad"}, {"film", "good"}}},
	}}
	if code := c.do("POST", "/v1/db/shop/load", good, nil); code != http.StatusOK {
		t.Fatalf("string load: %d", code)
	}
	var resp queryResponse
	code := c.do("POST", "/v1/db/shop/query",
		map[string]any{"query": `Bad := SELECT x FROM Rated(x, "bad");`}, &resp)
	if code != http.StatusOK {
		t.Fatalf("string query: %d", code)
	}
	if got := canonJSON(t, resp.Tuples); got != `[["book"]]` {
		t.Fatalf("string round-trip: %s", got)
	}
}

// TestConcurrentMixedTraffic hammers one server with queries (batched
// and direct) from many goroutines; run under -race this doubles as the
// service-layer race test. Every response must match the library result.
func TestConcurrentMixedTraffic(t *testing.T) {
	s, c := newTestClient(t, Config{BatchWindow: time.Millisecond, PlanCacheSize: 8})
	c.loadBookstore("shop")

	db := libDB()
	type ref struct{ src, want string }
	mk := func(src string) ref {
		q := gumbo.MustParse(src)
		res, err := s.System().Run(q, db, s.System().Auto(q))
		if err != nil {
			t.Fatalf("library run: %v", err)
		}
		return ref{src: src, want: canonJSON(t, encodeTuples(res.Relation))}
	}
	refs := []ref{mk(queryZ), mk(queryW),
		mk(`V := SELECT y FROM S(x, y) WHERE R(x, y);`),
		mk(`U := SELECT x FROM T(x, y) WHERE NOT S(x, x);`),
	}

	const goroutines = 8
	const iters = 6
	var wg sync.WaitGroup
	errc := make(chan error, goroutines*iters)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r := refs[(g+i)%len(refs)]
				var resp queryResponse
				code := c.do("POST", "/v1/db/shop/query",
					map[string]any{"query": r.src, "batch": (g+i)%2 == 0}, &resp)
				if code != http.StatusOK {
					errc <- fmt.Errorf("goroutine %d iter %d: status %d", g, i, code)
					return
				}
				if got := canonJSON(t, resp.Tuples); got != r.want {
					errc <- fmt.Errorf("goroutine %d iter %d: %s != %s", g, i, got, r.want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestStringTupleOrderIsContentOnly: the wire order of string values
// must depend on relation contents only, not on process-global intern
// order (raw Value handles order by interning sequence, so a
// handle-sorted encoding would vary with unrelated earlier traffic).
func TestStringTupleOrderIsContentOnly(t *testing.T) {
	_, c := newTestClient(t, Config{})
	if code := c.do("PUT", "/v1/db/d", nil, nil); code != http.StatusCreated {
		t.Fatal("create failed")
	}
	// "zeta" is loaded (and thus interned) before "alpha"; the response
	// must still be lexicographic.
	load := map[string]any{"relations": []map[string]any{
		{"name": "Words", "arity": 1, "tuples": [][]any{{"zeta"}, {"alpha"}, {"mid"}}},
	}}
	if code := c.do("POST", "/v1/db/d/load", load, nil); code != http.StatusOK {
		t.Fatal("load failed")
	}
	var resp queryResponse
	if code := c.do("POST", "/v1/db/d/query", map[string]any{"query": `W := SELECT x FROM Words(x);`}, &resp); code != http.StatusOK {
		t.Fatalf("query failed: %d", code)
	}
	if got := canonJSON(t, resp.Tuples); got != `[["alpha"],["mid"],["zeta"]]` {
		t.Fatalf("string tuples not in content order: %s", got)
	}
}

// TestBatchingDeduplicatesIdenticalQueries: the hot case — many
// clients sending the same query text — must be answered by one shared
// run, not fall back to sequential individual runs.
func TestBatchingDeduplicatesIdenticalQueries(t *testing.T) {
	s, c := newTestClient(t, Config{BatchWindow: 500 * time.Millisecond, MaxBatch: 4})
	c.loadBookstore("shop")

	q := gumbo.MustParse(queryZ)
	libRes, err := s.System().Run(q, libDB(), s.System().Auto(q))
	if err != nil {
		t.Fatal(err)
	}
	want := canonJSON(t, encodeTuples(libRes.Relation))

	var wg sync.WaitGroup
	resps := make([]queryResponse, 4)
	for i := range resps {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if code := c.do("POST", "/v1/db/shop/query", map[string]any{"query": queryZ, "batch": true}, &resps[i]); code != http.StatusOK {
				t.Errorf("query %d: status %d", i, code)
			}
		}(i)
	}
	wg.Wait()
	shared := 0
	for i, r := range resps {
		if got := canonJSON(t, r.Tuples); got != want {
			t.Errorf("query %d: %s != %s", i, got, want)
		}
		if r.BatchSize >= 2 {
			shared++
			if len(r.BatchOutputs) != 1 || r.BatchOutputs[0] != "Z" {
				t.Errorf("query %d: batch_outputs %v, want [Z]", i, r.BatchOutputs)
			}
		}
	}
	if shared < 2 {
		t.Fatalf("identical queries were not answered by a shared run (batch sizes %v)", resps)
	}
}

// TestLoadSameRelationTwiceInOneRequest: a relation listed twice in one
// payload accumulates both entries' tuples.
func TestLoadSameRelationTwiceInOneRequest(t *testing.T) {
	_, c := newTestClient(t, Config{})
	if code := c.do("PUT", "/v1/db/d", nil, nil); code != http.StatusCreated {
		t.Fatal("create failed")
	}
	load := map[string]any{"relations": []map[string]any{
		{"name": "R", "arity": 1, "tuples": [][]any{{1}}},
		{"name": "R", "arity": 1, "tuples": [][]any{{2}}},
	}}
	if code := c.do("POST", "/v1/db/d/load", load, nil); code != http.StatusOK {
		t.Fatalf("load: status %d", code)
	}
	var info map[string]any
	c.do("GET", "/v1/db/d", nil, &info)
	rels := info["relations"].([]any)
	if len(rels) != 1 {
		t.Fatalf("relations: %v", rels)
	}
	if size, _ := rels[0].(map[string]any)["size"].(json.Number).Int64(); size != 2 {
		t.Fatalf("R has size %d after loading [1] and [2] in one request, want 2", size)
	}
}

// TestDBInfoEmptyRelationsArray: an empty database reports relations as
// [] (the documented array shape), not null.
func TestDBInfoEmptyRelationsArray(t *testing.T) {
	_, c := newTestClient(t, Config{})
	c.do("PUT", "/v1/db/empty", nil, nil)
	var info map[string]any
	c.do("GET", "/v1/db/empty", nil, &info)
	if rels, ok := info["relations"].([]any); !ok || rels == nil {
		t.Fatalf("relations = %v (%T), want empty array", info["relations"], info["relations"])
	}
}

// TestDropRecreateNoStaleCache: a recreated database must never hit
// plans cached for its dropped predecessor (cache keys use a unique
// per-creation instance id, not the name).
func TestDropRecreateNoStaleCache(t *testing.T) {
	_, c := newTestClient(t, Config{})
	c.loadBookstore("shop")

	var first queryResponse
	c.do("POST", "/v1/db/shop/query", map[string]any{"query": queryW}, &first)
	var warm queryResponse
	c.do("POST", "/v1/db/shop/query", map[string]any{"query": queryW}, &warm)
	if warm.Cache != "hit" {
		t.Fatalf("warm-up: cache %q, want hit", warm.Cache)
	}
	if code := c.do("DELETE", "/v1/db/shop", nil, nil); code != http.StatusNoContent {
		t.Fatalf("drop failed")
	}
	// Recreate with the same name and replay the same loads: the
	// generation reaches the same value as before, so a name-keyed cache
	// would serve the old plan as a hit.
	c.loadBookstore("shop")
	var fresh queryResponse
	if code := c.do("POST", "/v1/db/shop/query", map[string]any{"query": queryW}, &fresh); code != http.StatusOK {
		t.Fatalf("query on recreated db: status %d", code)
	}
	if fresh.Cache != "miss" {
		t.Fatalf("recreated db served cache %q, want miss", fresh.Cache)
	}
	if got, want := canonJSON(t, fresh.Tuples), canonJSON(t, first.Tuples); got != want {
		t.Fatalf("recreated db result %s != %s", got, want)
	}
}

func TestPlanCacheLRUAndPurge(t *testing.T) {
	cache := newPlanCache(2)
	plan := &gumbo.Plan{}
	ka := planKey("a", 1, gumbo.Greedy, "q1")
	kb := planKey("a", 1, gumbo.Greedy, "q2")
	kc := planKey("b", 1, gumbo.Greedy, "q1")
	cache.put(ka, plan)
	cache.put(kb, plan)
	if _, ok := cache.get(ka); !ok {
		t.Fatal("ka missing")
	}
	cache.put(kc, plan) // evicts kb (LRU; ka was just touched)
	if _, ok := cache.get(kb); ok {
		t.Fatal("kb should have been evicted")
	}
	if _, ok := cache.get(ka); !ok {
		t.Fatal("ka should have survived eviction")
	}
	cache.purgeDB("a")
	if _, ok := cache.get(ka); ok {
		t.Fatal("ka should have been purged with database a")
	}
	if _, ok := cache.get(kc); !ok {
		t.Fatal("kc belongs to database b and should survive the purge")
	}
	// Generation changes the key even for identical text.
	if planKey("a", 1, gumbo.Greedy, "q") == planKey("a", 2, gumbo.Greedy, "q") {
		t.Fatal("generation not part of the key")
	}
}
