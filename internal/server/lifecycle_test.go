package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/mr"
)

// These tests exercise the query lifecycle layer end to end over HTTP:
// the in-flight registry, the abort endpoint, the per-query deadline,
// and the read-only handlers (list/info/stats) the rest of the suite
// only touched in passing. Tests that install mr.SetFaultHooks hold a
// process-wide seam and must not run in parallel.

// queriesResponse mirrors the queries-endpoint wire shape.
type queriesResponse struct {
	DB      string         `json:"db"`
	Queries []inflightInfo `json:"queries"`
}

// getStats fetches /v1/stats into a generic map.
func getStats(c *testClient) map[string]any {
	var stats map[string]any
	c.do("GET", "/v1/stats", nil, &stats)
	return stats
}

// statInt reads one integer counter out of a stats response.
func statInt(t *testing.T, stats map[string]any, key string) int64 {
	t.Helper()
	num, ok := stats[key].(json.Number)
	if !ok {
		t.Fatalf("stats[%q] = %v (%T), want number", key, stats[key], stats[key])
	}
	n, err := num.Int64()
	if err != nil {
		t.Fatalf("stats[%q] = %v: %v", key, num, err)
	}
	return n
}

// pollUntil retries cond every few milliseconds until it holds or the
// deadline passes (lifecycle transitions — registration, slot release —
// complete asynchronously with respect to the requests that cause them).
func pollUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestListDBsSortedAndEmpty: the dbs endpoint reports [] (not null) on
// a fresh server and a sorted name list afterwards.
func TestListDBsSortedAndEmpty(t *testing.T) {
	_, c := newTestClient(t, Config{})
	var list map[string]any
	if code := c.do("GET", "/v1/dbs", nil, &list); code != http.StatusOK {
		t.Fatalf("list: status %d", code)
	}
	if dbs, ok := list["dbs"].([]any); !ok || dbs == nil || len(dbs) != 0 {
		t.Fatalf("fresh server dbs = %v (%T), want empty array", list["dbs"], list["dbs"])
	}
	for _, name := range []string{"zebra", "alpha", "mid"} {
		if code := c.do("PUT", "/v1/db/"+name, nil, nil); code != http.StatusCreated {
			t.Fatalf("create %s: status %d", name, code)
		}
	}
	c.do("GET", "/v1/dbs", nil, &list)
	if got := fmt.Sprint(list["dbs"]); got != "[alpha mid zebra]" {
		t.Fatalf("dbs not sorted: %s", got)
	}
}

// TestDBInfoContents: the info endpoint reports every loaded relation
// with its arity and size, plus the current generation.
func TestDBInfoContents(t *testing.T) {
	_, c := newTestClient(t, Config{})
	c.loadBookstore("shop")
	var info map[string]any
	if code := c.do("GET", "/v1/db/shop", nil, &info); code != http.StatusOK {
		t.Fatalf("info: status %d", code)
	}
	if info["db"] != "shop" {
		t.Fatalf("info db = %v", info["db"])
	}
	if gen := statInt(t, info, "generation"); gen < 1 {
		t.Fatalf("generation %d after a load, want >= 1", gen)
	}
	want := map[string][2]int64{"R": {2, 4}, "S": {2, 3}, "T": {2, 3}} // name → arity, size
	rels := info["relations"].([]any)
	if len(rels) != len(want) {
		t.Fatalf("info lists %d relations, want %d: %v", len(rels), len(want), rels)
	}
	for _, raw := range rels {
		rel := raw.(map[string]any)
		name := rel["name"].(string)
		w, ok := want[name]
		if !ok {
			t.Fatalf("unexpected relation %q", name)
		}
		if arity := statInt(t, rel, "arity"); arity != w[0] {
			t.Errorf("relation %s arity %d, want %d", name, arity, w[0])
		}
		if size := statInt(t, rel, "size"); size != w[1] {
			t.Errorf("relation %s size %d, want %d", name, size, w[1])
		}
	}
	if code := c.do("GET", "/v1/db/nope", nil, nil); code != http.StatusNotFound {
		t.Fatalf("info on missing db: status %d, want 404", code)
	}
}

// TestStatsCounters: the stats endpoint reflects configuration
// (admission capacity) and traffic (query and plan-cache counters).
func TestStatsCounters(t *testing.T) {
	_, c := newTestClient(t, Config{ConcurrentJobs: 3})
	stats := getStats(c)
	if got := statInt(t, stats, "admission_capacity"); got != 3 {
		t.Fatalf("admission_capacity %d, want the configured 3", got)
	}
	if got := statInt(t, stats, "databases"); got != 0 {
		t.Fatalf("databases %d on a fresh server", got)
	}
	c.loadBookstore("shop")
	for i := 0; i < 2; i++ {
		if code := c.do("POST", "/v1/db/shop/query", map[string]any{"query": queryW}, nil); code != http.StatusOK {
			t.Fatalf("query %d: status %d", i, code)
		}
	}
	stats = getStats(c)
	if got := statInt(t, stats, "databases"); got != 1 {
		t.Errorf("databases %d, want 1", got)
	}
	if got := statInt(t, stats, "queries"); got != 2 {
		t.Errorf("queries %d, want 2", got)
	}
	// Same text twice: first run misses the plan cache, second hits.
	if got := statInt(t, stats, "plan_cache_misses"); got != 1 {
		t.Errorf("plan_cache_misses %d, want 1", got)
	}
	if got := statInt(t, stats, "plan_cache_hits"); got != 1 {
		t.Errorf("plan_cache_hits %d, want 1", got)
	}
	if got := statInt(t, stats, "plan_cache_size"); got != 1 {
		t.Errorf("plan_cache_size %d, want 1", got)
	}
	if got := statInt(t, stats, "inflight_queries"); got != 0 {
		t.Errorf("inflight_queries %d with nothing running", got)
	}
	if got := statInt(t, stats, "active_runs"); got != 0 {
		t.Errorf("active_runs %d with nothing running", got)
	}
}

// TestInflightRegistryAndAbort walks the whole lifecycle with a real
// held query: a fault hook parks the engine so one query occupies the
// single admission slot, a second queues behind it, the queries
// endpoint shows both (running vs queued) with progress attached, the
// abort endpoint cancels each — promptly, even while the engine is
// parked — and once both unwind the slot is observably released.
func TestInflightRegistryAndAbort(t *testing.T) {
	_, c := newTestClient(t, Config{ConcurrentJobs: 1})
	c.loadBookstore("shop")

	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	restore := mr.SetFaultHooks(mr.FaultHooks{Grant: func(int) {
		once.Do(func() { close(started) })
		<-release
	}})
	defer restore()
	defer func() {
		select {
		case <-release:
		default:
			close(release)
		}
	}()

	post := func(src string) chan int {
		done := make(chan int, 1)
		go func() { done <- c.do("POST", "/v1/db/shop/query", map[string]any{"query": src}, nil) }()
		return done
	}
	running := post(queryZ)
	<-started // the first query holds the admission slot, parked mid-run
	queued := post(queryW)

	// Both queries must appear in the registry: one running, one still
	// waiting for admission.
	var rows queriesResponse
	pollUntil(t, "both queries registered", func() bool {
		if code := c.do("GET", "/v1/db/shop/queries", nil, &rows); code != http.StatusOK {
			t.Fatalf("queries endpoint: status %d", code)
		}
		return len(rows.Queries) == 2
	})
	states := map[string]*inflightInfo{}
	for i := range rows.Queries {
		states[rows.Queries[i].State] = &rows.Queries[i]
	}
	run, ok := states["running"]
	if !ok {
		t.Fatalf("no running query in %+v", rows.Queries)
	}
	que, ok := states["queued"]
	if !ok {
		t.Fatalf("no queued query in %+v", rows.Queries)
	}
	if run.ID >= que.ID {
		t.Errorf("running query id %d >= queued id %d; ids not in start order", run.ID, que.ID)
	}
	if run.Progress.JobsTotal < 1 {
		t.Errorf("running query reports jobs_total %d, want >= 1", run.Progress.JobsTotal)
	}
	stats := getStats(c)
	if got := statInt(t, stats, "inflight_queries"); got != 2 {
		t.Errorf("inflight_queries %d, want 2", got)
	}
	if got := statInt(t, stats, "active_runs"); got != 1 {
		t.Errorf("active_runs %d, want 1 (second query is admission-queued)", got)
	}

	// Abort the queued query: it has no engine run to unwind, so its
	// request must fail promptly with 499 even though the engine is
	// still parked.
	if code := c.do("DELETE", fmt.Sprintf("/v1/db/shop/query/%d", que.ID), nil, nil); code != http.StatusOK {
		t.Fatalf("abort queued query: status %d", code)
	}
	select {
	case code := <-queued:
		if code != statusClientClosedRequest {
			t.Fatalf("aborted queued query: status %d, want %d", code, statusClientClosedRequest)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("aborted queued query did not return")
	}

	// Abort the running query, then release the engine: the run unwinds
	// at its next task boundary and the request fails with 499.
	if code := c.do("DELETE", fmt.Sprintf("/v1/db/shop/query/%d", run.ID), nil, nil); code != http.StatusOK {
		t.Fatalf("abort running query: status %d", code)
	}
	close(release)
	select {
	case code := <-running:
		if code != statusClientClosedRequest {
			t.Fatalf("aborted running query: status %d, want %d", code, statusClientClosedRequest)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("aborted running query did not return")
	}
	restore()

	// The slot and registry entries are released...
	pollUntil(t, "registry to drain", func() bool {
		s := getStats(c)
		return statInt(t, s, "inflight_queries") == 0 && statInt(t, s, "active_runs") == 0
	})
	if got := statInt(t, getStats(c), "queries_aborted"); got != 2 {
		t.Errorf("queries_aborted %d, want 2", got)
	}
	// ...and a fresh query reuses the freed slot normally.
	if code := c.do("POST", "/v1/db/shop/query", map[string]any{"query": queryW}, nil); code != http.StatusOK {
		t.Fatalf("query after aborts: status %d, want 200", code)
	}

	// Abort-endpoint error paths.
	if code := c.do("DELETE", fmt.Sprintf("/v1/db/shop/query/%d", run.ID), nil, nil); code != http.StatusNotFound {
		t.Errorf("abort of finished query: status %d, want 404", code)
	}
	if code := c.do("DELETE", "/v1/db/shop/query/xyz", nil, nil); code != http.StatusBadRequest {
		t.Errorf("abort with bad id: status %d, want 400", code)
	}
	if code := c.do("DELETE", "/v1/db/nope/query/1", nil, nil); code != http.StatusNotFound {
		t.Errorf("abort on missing db: status %d, want 404", code)
	}
	if code := c.do("GET", "/v1/db/nope/queries", nil, nil); code != http.StatusNotFound {
		t.Errorf("queries on missing db: status %d, want 404", code)
	}
}

// TestQueryTimeoutGatewayTimeout: with a per-query deadline configured,
// a query that cannot be admitted in time fails with 504 — the
// deadline covers the admission wait, so this path is deterministic
// (no reliance on how fast the engine executes).
func TestQueryTimeoutGatewayTimeout(t *testing.T) {
	_, c := newTestClient(t, Config{ConcurrentJobs: 1, QueryTimeout: 75 * time.Millisecond})
	c.loadBookstore("shop")

	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	restore := mr.SetFaultHooks(mr.FaultHooks{Grant: func(int) {
		once.Do(func() { close(started) })
		<-release
	}})
	defer restore()
	defer func() {
		select {
		case <-release:
		default:
			close(release)
		}
	}()

	first := make(chan int, 1)
	go func() { first <- c.do("POST", "/v1/db/shop/query", map[string]any{"query": queryZ}, nil) }()
	<-started

	// The slot is held: the second query waits in admission until its
	// 75ms deadline expires.
	if code := c.do("POST", "/v1/db/shop/query", map[string]any{"query": queryW}, nil); code != http.StatusGatewayTimeout {
		t.Fatalf("admission-starved query: status %d, want 504", code)
	}
	close(release)
	// The parked query's own deadline expired while it was held; its
	// run unwinds to 504 as well.
	select {
	case code := <-first:
		if code != http.StatusGatewayTimeout {
			t.Fatalf("expired running query: status %d, want 504", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("expired query did not return")
	}
}
