package server

import (
	"context"
	"sync"
	"time"

	gumbo "repro"
)

// batcher micro-batches concurrently arriving queries against one
// database. Submissions collect for at most window; when the window
// closes (or maxBatch submissions are waiting) the whole batch is merged
// into a single SGF program with gumbo.Merge and evaluated as one run, so
// the paper's §4.7 multi-query sharing (Greedy-BSGF grouping of
// overlapping semi-join atoms across queries) applies to live traffic and
// the batch consumes a single admission slot.
//
// Submissions with identical canonical query text are deduplicated
// before merging — the hot case of many clients asking the same
// question is answered by a single run — since gumbo.Merge itself
// requires pairwise-distinct output relation names (and no base/output
// collisions) across the batch. When the remaining distinct queries
// cannot be merged, or the merged run fails, the batch degrades to one
// run per distinct query, executed concurrently. Batched queries always
// run under the Auto strategy (individual strategy requests do not
// compose across a merge).
type batcher struct {
	srv      *Server
	dbe      *dbEntry
	window   time.Duration
	maxBatch int

	mu      sync.Mutex
	pending []*submission
}

// submission is one query waiting in a micro-batch.
type submission struct {
	q    *gumbo.Query
	done chan batchOutcome // buffered; receives exactly one outcome
}

// batchOutcome is what a flushed batch delivers to each submission.
type batchOutcome struct {
	res       *gumbo.Result
	cacheHit  bool
	batchSize int      // client queries answered by the run this outcome came from
	outputs   []string // distinct output names evaluated by that run
	err       error
}

func newBatcher(srv *Server, dbe *dbEntry, window time.Duration, maxBatch int) *batcher {
	if maxBatch < 2 {
		maxBatch = 2
	}
	return &batcher{srv: srv, dbe: dbe, window: window, maxBatch: maxBatch}
}

// submit enqueues q and blocks until its batch has run.
func (b *batcher) submit(q *gumbo.Query) batchOutcome {
	sub := &submission{q: q, done: make(chan batchOutcome, 1)}
	b.mu.Lock()
	b.pending = append(b.pending, sub)
	full := len(b.pending) >= b.maxBatch
	first := len(b.pending) == 1
	b.mu.Unlock()
	if full {
		b.flush()
	} else if first {
		time.AfterFunc(b.window, b.flush)
	}
	return <-sub.done
}

// flush runs whatever is pending. Safe to call concurrently and when
// nothing is pending (a size-triggered flush may leave a later
// timer-triggered flush with an empty batch).
func (b *batcher) flush() {
	b.mu.Lock()
	batch := b.pending
	b.pending = nil
	b.mu.Unlock()
	if len(batch) == 0 {
		return
	}
	// Group submissions by canonical query text: many clients asking the
	// identical question share one run (and one cached plan) instead of
	// defeating the merge with duplicate output names.
	type group struct {
		q    *gumbo.Query
		subs []*submission
	}
	var groups []*group
	index := make(map[string]int)
	for _, sub := range batch {
		key := sub.q.String()
		if gi, ok := index[key]; ok {
			groups[gi].subs = append(groups[gi].subs, sub)
			continue
		}
		index[key] = len(groups)
		groups = append(groups, &group{q: sub.q, subs: []*submission{sub}})
	}

	deliver := func(g *group, res *gumbo.Result, hit bool, size int, outputs []string, err error) {
		if err == nil && size >= 2 {
			b.srv.batchedQueries.Add(uint64(len(g.subs)))
		}
		for _, sub := range g.subs {
			sub.done <- batchOutcome{res: res, cacheHit: hit, batchSize: size, outputs: outputs, err: err}
		}
	}
	// A batch outlives any single submitter (one run answers many
	// requests, and submitters may disconnect at different times), so
	// the run executes under a server-owned context rather than any one
	// request's: batch=true queries are not canceled by client
	// disconnects, only by the per-query deadline and the abort
	// endpoint, both of which runQuery applies itself.
	//lint:ignore ctxpass a merged batch run is shared by many requests; no single request context can own it (see comment above)
	ctx := context.Background()

	// runGroup evaluates one distinct query on behalf of all of its
	// submissions.
	runGroup := func(g *group) {
		res, hit, err := b.srv.runQuery(ctx, b.dbe, g.q, strategyAuto)
		if err == nil && len(g.subs) >= 2 {
			b.srv.batchRuns.Add(1)
		}
		deliver(g, res, hit, len(g.subs), []string{g.q.Name()}, err)
	}

	if len(groups) == 1 {
		runGroup(groups[0])
		return
	}
	queries := make([]*gumbo.Query, len(groups))
	outputs := make([]string, len(groups))
	for i, g := range groups {
		queries[i] = g.q
		outputs[i] = g.q.Name()
	}
	if merged, err := gumbo.Merge(queries...); err == nil {
		res, hit, rerr := b.srv.runQuery(ctx, b.dbe, merged, strategyAuto)
		if rerr == nil {
			b.srv.batchRuns.Add(1)
			for _, g := range groups {
				deliver(g, res, hit, len(batch), outputs, nil)
			}
			return
		}
		// A merged failure (e.g. one query references a missing relation)
		// cannot be attributed to a single submission; fall through so
		// healthy queries still succeed and the faulty one gets its own
		// error.
	}
	// The batch cannot run as one program (e.g. two distinct queries
	// chose the same output name) or the merged run failed: degrade to
	// one concurrent run per distinct query (admission control still
	// bounds actual engine concurrency).
	b.srv.mergeFallbacks.Add(1)
	var wg sync.WaitGroup
	for _, g := range groups {
		wg.Add(1)
		go func(g *group) {
			defer wg.Done()
			runGroup(g)
		}(g)
	}
	wg.Wait()
}
