// Package server implements the gumbo query service: a long-running,
// concurrent HTTP JSON front end over the gumbo library (the paper's
// batch system operationalized for live traffic, cf. docs/SERVER.md).
//
// The server manages named in-memory databases, bulk-loads relations
// into them, and evaluates SGF queries against them on one shared
// gumbo.System. Three mechanisms turn the library into a service:
//
//   - Admission control: a semaphore (Config.ConcurrentJobs) bounds how
//     many plan executions run at once; excess requests queue instead of
//     oversubscribing the host. Each admitted plan executes on its own
//     work-stealing worker pool of Config.PhaseWorkers goroutines
//     (gumbo.WithHostWorkers), so the engine's total worker count is
//     bounded by PhaseWorkers × admitted plans.
//   - Plan caching: parsed-and-planned queries are kept in an LRU cache
//     keyed by database instance, Database.Generation, strategy and
//     canonical query text, so repeated query text skips parsing,
//     validation and cost-model sampling. Any load or drop bumps the
//     generation and thereby invalidates the database's cached plans.
//   - Micro-batching: requests that opt in (batch=true) are collected
//     for a short window and merged into a single SGF program
//     (gumbo.Merge, §4.7), so overlapping semi-join atoms of concurrent
//     queries are evaluated once (Greedy-BSGF grouping) and the whole
//     batch consumes one admission slot.
//
// Determinism contract: query responses list output tuples in sorted
// order, so a response is bit-for-bit identical to encoding the relation
// a direct library call (System.Run / gumbo.Eval) produces — regardless
// of server concurrency, batching, or plan-cache state.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	gumbo "repro"
)

// strategyAuto asks runQuery to resolve the strategy with System.Auto.
const strategyAuto gumbo.Strategy = "auto"

// strategies maps the wire names accepted by the query endpoint.
var strategies = map[string]gumbo.Strategy{
	"SEQ":        gumbo.SEQ,
	"PAR":        gumbo.PAR,
	"GREEDY":     gumbo.Greedy,
	"OPT":        gumbo.Opt,
	"1-ROUND":    gumbo.OneRound,
	"SEQUNIT":    gumbo.SeqUnit,
	"PARUNIT":    gumbo.ParUnit,
	"GREEDY-SGF": gumbo.GreedySGF,
	"HPAR":       gumbo.HPAR,
	"HPARS":      gumbo.HPARS,
	"PPAR":       gumbo.PPAR,
}

// Config configures a Server.
type Config struct {
	// PhaseWorkers sizes the worker pool each plan execution runs on
	// (gumbo.WithHostWorkers; 0 = GOMAXPROCS): every task of that plan
	// — across all of its jobs — shares those goroutines.
	// ConcurrentJobs sizes the admission-control semaphore
	// (0 = GOMAXPROCS): at most that many plan executions run at once;
	// further requests queue. Total engine workers are therefore
	// bounded by PhaseWorkers × ConcurrentJobs; size the pair to the
	// host together.
	PhaseWorkers   int
	ConcurrentJobs int
	// PlanCacheSize bounds the LRU plan cache (entries; 0 = 128).
	PlanCacheSize int
	// BatchWindow is how long a micro-batch collects queries before it
	// runs (0 = 2ms; negative disables batching even for batch=true
	// requests).
	BatchWindow time.Duration
	// MaxBatch flushes a micro-batch early once this many queries wait
	// (0 = 16).
	MaxBatch int
	// MaxBodyBytes caps the size of a request body (0 = 32 MiB): one
	// oversized load must not be able to exhaust the daemon's memory
	// before validation even starts.
	MaxBodyBytes int64
	// QueryTimeout bounds each query execution (admission wait included):
	// a run past the deadline stops at its next task boundary and the
	// request fails with HTTP 504. 0 disables the deadline. Queries are
	// also canceled when the client disconnects or an abort is requested
	// via the query registry (DELETE /v1/db/{db}/query/{id}).
	QueryTimeout time.Duration
	// MemBudget is the server-wide memory budget in bytes (0 =
	// unlimited). Each admitted query commits its cost-model-predicted
	// bytes against it before running; a query whose reservation does
	// not fit is rejected with 503 + Retry-After instead of executed
	// (see memory.go for the full degradation ladder).
	MemBudget int64
	// QueryMemBudget caps the bytes one query's execution may charge
	// (0 = unlimited). A run that charges past the cap aborts
	// deterministically with HTTP 413, database untouched
	// (gumbo.ErrBudgetExceeded). It also clamps the per-query
	// reservation taken against MemBudget.
	QueryMemBudget int64
	// SpillThreshold and SpillDir configure shuffle spill-to-disk on
	// the shared System (gumbo.WithSpill): partitions whose modelled
	// bytes reach the threshold go to temp files under SpillDir.
	SpillThreshold int64
	SpillDir       string
	// SkewSplit configures runtime skew splitting on the shared System
	// (gumbo.WithSkewSplit): reduce partitions heavier than the ratio ×
	// the mean are split into independently scheduled sub-tasks. 0 =
	// GUMBO_SKEW_SPLIT env, negative = off.
	SkewSplit float64
	// Options are applied to the shared gumbo.System after
	// WithHostWorkers (e.g. gumbo.WithScale for scaled-down costs).
	Options []gumbo.Option
}

// Server is the concurrent query service. Create one with New and mount
// Handler on an http.Server; all methods are safe for concurrent use.
type Server struct {
	sys      *gumbo.System
	cache    *planCache
	sem      chan struct{}
	window   time.Duration
	maxBatch int
	maxBody  int64
	timeout  time.Duration // per-query deadline (Config.QueryTimeout)
	mem      *memLedger    // global memory budget (Config.MemBudget)
	queryMem int64         // per-query byte budget (Config.QueryMemBudget)

	mu    sync.RWMutex
	dbs   map[string]*dbEntry
	dbSeq atomic.Uint64 // dbEntry id allocator

	// inflight is the registry of currently executing (or
	// admission-queued) plan runs, keyed by a server-lifetime query id:
	// the progress endpoint lists it, the abort endpoint cancels through
	// it. Entries live exactly as long as their runQuery call.
	qmu      sync.Mutex
	inflight map[uint64]*queryInfo
	qSeq     atomic.Uint64 // query id allocator

	queries        atomic.Uint64 // client queries received
	batchRuns      atomic.Uint64 // merged multi-query runs
	batchedQueries atomic.Uint64 // client queries answered by merged runs
	mergeFallbacks atomic.Uint64 // batches that could not run merged
	aborted        atomic.Uint64 // queries canceled via the abort endpoint
	shed           atomic.Uint64 // queries rejected by the memory ledger (503)
	panicked       atomic.Uint64 // queries failed by a recovered panic (500)
	active         atomic.Int64  // plan executions currently admitted
}

// dbEntry is one named database session. id is unique per creation
// (name plus a server-lifetime sequence number) and keys the plan
// cache, so a dropped-and-recreated database can never hit plans cached
// for its predecessor — even if an in-flight query re-inserts a plan
// after the drop's purge, the stale entry is unreachable under the new
// id and simply ages out of the LRU.
type dbEntry struct {
	name    string
	id      string
	db      *gumbo.Database
	loadMu  sync.Mutex // serializes read-modify-write bulk loads
	batcher *batcher
}

// New returns a Server with its own gumbo.System.
func New(cfg Config) *Server {
	admit := cfg.ConcurrentJobs
	if admit <= 0 {
		admit = runtime.GOMAXPROCS(0)
	}
	window := cfg.BatchWindow
	if window == 0 {
		window = 2 * time.Millisecond
	}
	maxBatch := cfg.MaxBatch
	if maxBatch <= 0 {
		maxBatch = 16
	}
	maxBody := cfg.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = 32 << 20
	}
	opts := append([]gumbo.Option{
		gumbo.WithHostWorkers(cfg.PhaseWorkers),
		gumbo.WithSpill(cfg.SpillThreshold, cfg.SpillDir),
		gumbo.WithSkewSplit(cfg.SkewSplit),
	}, cfg.Options...)
	queryMem := cfg.QueryMemBudget
	if queryMem < 0 {
		queryMem = 0
	}
	return &Server{
		sys:      gumbo.New(opts...),
		cache:    newPlanCache(cfg.PlanCacheSize),
		sem:      make(chan struct{}, admit),
		window:   window,
		maxBatch: maxBatch,
		maxBody:  maxBody,
		timeout:  cfg.QueryTimeout,
		mem:      newMemLedger(cfg.MemBudget),
		queryMem: queryMem,
		dbs:      make(map[string]*dbEntry),
		inflight: make(map[uint64]*queryInfo),
	}
}

// System returns the shared gumbo.System (for tests comparing service
// responses with direct library runs under identical configuration).
func (s *Server) System() *gumbo.System { return s.sys }

// Handler returns the HTTP API (see docs/SERVER.md for the reference):
//
//	GET    /healthz              liveness
//	GET    /v1/stats             service counters
//	GET    /v1/dbs               list databases
//	PUT    /v1/db/{db}           create a database
//	GET    /v1/db/{db}           database info (relations, generation)
//	DELETE /v1/db/{db}           drop a database
//	POST   /v1/db/{db}/load      bulk-load relations
//	POST   /v1/db/{db}/query     evaluate an SGF query
//	GET    /v1/db/{db}/queries   list in-flight queries with progress
//	DELETE /v1/db/{db}/query/{id} abort an in-flight query
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
	})
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/dbs", s.handleListDBs)
	mux.HandleFunc("PUT /v1/db/{db}", s.handleCreateDB)
	mux.HandleFunc("GET /v1/db/{db}", s.handleDBInfo)
	mux.HandleFunc("DELETE /v1/db/{db}", s.handleDropDB)
	mux.HandleFunc("POST /v1/db/{db}/load", s.handleLoad)
	mux.HandleFunc("POST /v1/db/{db}/query", s.handleQuery)
	mux.HandleFunc("GET /v1/db/{db}/queries", s.handleListQueries)
	mux.HandleFunc("DELETE /v1/db/{db}/query/{id}", s.handleAbortQuery)
	return mux
}

// runQuery plans (through the LRU cache) and executes q against the
// entry's database under the admission semaphore. strategyAuto resolves
// via System.Auto. Returns the result and whether the plan was a cache
// hit.
//
// Lifecycle: the run is registered in the in-flight query registry for
// its whole duration (admission wait included), so it is visible to
// the queries endpoint and abortable through the abort endpoint. ctx
// cancellation — client disconnect, the per-query deadline
// (Config.QueryTimeout), or an abort — unblocks the admission wait and
// stops an executing run at its next task boundary; the admission slot
// is released either way.
//
// The generation is read once, before the cache lookup: a load that
// lands between the read and the run may or may not be visible to the
// run (the same holds for a direct library call), but the cache key is
// consistent — a plan is only ever reused for the exact generation it
// was stored under.
//
// Memory governance (see memory.go): once the plan is known, the query
// reserves its predicted bytes against the global ledger — a
// reservation that does not fit is rejected with errServerBusy (503)
// before any engine work — and the run itself is charged against a
// fresh per-query budget, aborting with gumbo.ErrBudgetExceeded (413)
// if it outgrows the cap.
//
// Panic containment: runQuery is the query boundary — a panic escaping
// the engine (or the planner) is recovered here, after the pool has
// joined its workers and the run entry points have removed the run's
// spill files, and converted into errQueryPanicked (500). The deferred
// unregister, admission release and ledger release all run on the
// unwind, so a panicking query leaks nothing and the server keeps
// serving. The recover lives here rather than in the HTTP handler
// because batched queries execute on the batcher's flush goroutine,
// where an unwinding panic would kill the process.
func (s *Server) runQuery(ctx context.Context, dbe *dbEntry, q *gumbo.Query, strategy gumbo.Strategy) (res *gumbo.Result, hit bool, err error) {
	defer func() {
		if v := recover(); v != nil {
			s.panicked.Add(1)
			res, hit, err = nil, false, fmt.Errorf("%w: %v", errQueryPanicked, v)
		}
	}()
	if strategy == strategyAuto {
		strategy = s.sys.Auto(q)
	}
	if s.timeout > 0 {
		var cancelTimeout context.CancelFunc
		ctx, cancelTimeout = context.WithTimeout(ctx, s.timeout)
		defer cancelTimeout()
	}
	ctx, qi := s.register(ctx, dbe.name, q, strategy)
	defer s.unregister(qi)
	// The admission slot covers planning too: on a cache miss,
	// cost-based planning samples the database (real engine work that
	// must not run unbounded). A canceled query gives up its place in
	// the admission queue immediately.
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
	s.active.Add(1)
	qi.markRunning()
	defer func() {
		s.active.Add(-1)
		<-s.sem
	}()
	gen := dbe.db.Generation()
	key := planKey(dbe.id, gen, strategy, q.String())
	plan, hit := s.cache.get(key)
	if !hit {
		plan, err = s.sys.Plan(q, dbe.db, strategy)
		if err != nil {
			return nil, false, err
		}
		s.cache.put(key, plan)
	}
	if s.mem.cap > 0 {
		need := s.sys.PredictBytes(plan, dbe.db)
		if s.queryMem > 0 && need > s.queryMem {
			// The per-query budget would abort the run before it could
			// charge more than this anyway.
			need = s.queryMem
		}
		if !s.mem.reserve(need) {
			s.shed.Add(1)
			return nil, false, errServerBusy
		}
		defer s.mem.release(need)
	}
	res, err = s.sys.RunPlanGoverned(ctx, plan, dbe.db, qi.progress, gumbo.NewBudget(s.queryMem))
	return res, hit, err
}

func (s *Server) lookup(name string) *dbEntry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.dbs[name]
}

// ---- handlers ----

func (s *Server) handleCreateDB(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("db")
	if !validDBName(name) {
		writeError(w, http.StatusBadRequest, "invalid database name %q (want 1-64 chars of [A-Za-z0-9_.-])", name)
		return
	}
	s.mu.Lock()
	if _, exists := s.dbs[name]; exists {
		s.mu.Unlock()
		writeError(w, http.StatusConflict, "database %q already exists", name)
		return
	}
	dbe := &dbEntry{
		name: name,
		id:   fmt.Sprintf("%s#%d", name, s.dbSeq.Add(1)),
		db:   gumbo.NewDatabase(),
	}
	dbe.batcher = newBatcher(s, dbe, s.window, s.maxBatch)
	s.dbs[name] = dbe
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, map[string]any{"db": name})
}

func (s *Server) handleDropDB(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("db")
	s.mu.Lock()
	dbe, exists := s.dbs[name]
	delete(s.dbs, name)
	s.mu.Unlock()
	if !exists {
		writeError(w, http.StatusNotFound, "database %q not found", name)
		return
	}
	s.cache.purgeDB(dbe.id)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleListDBs(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	names := make([]string, 0, len(s.dbs))
	for n := range s.dbs {
		names = append(names, n)
	}
	s.mu.RUnlock()
	sort.Strings(names)
	writeJSON(w, http.StatusOK, map[string]any{"dbs": names})
}

// relationInfo describes one relation in info/load responses.
type relationInfo struct {
	Name  string `json:"name"`
	Arity int    `json:"arity"`
	Size  int    `json:"size"`
	Added int    `json:"added,omitempty"`
}

func (s *Server) handleDBInfo(w http.ResponseWriter, r *http.Request) {
	dbe := s.lookup(r.PathValue("db"))
	if dbe == nil {
		writeError(w, http.StatusNotFound, "database %q not found", r.PathValue("db"))
		return
	}
	relations := dbe.db.Relations()
	rels := make([]relationInfo, 0, len(relations)) // non-nil: empty db encodes as []
	for _, rel := range relations {
		rels = append(rels, relationInfo{Name: rel.Name(), Arity: rel.Arity(), Size: rel.Size()})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"db":         dbe.name,
		"generation": dbe.db.Generation(),
		"relations":  rels,
	})
}

// loadRequest is the bulk-load payload. Tuple values are JSON numbers
// (integers) or strings.
type loadRequest struct {
	Relations []struct {
		Name   string  `json:"name"`
		Arity  int     `json:"arity"`
		Tuples [][]any `json:"tuples"`
	} `json:"relations"`
}

func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	dbe := s.lookup(r.PathValue("db"))
	if dbe == nil {
		writeError(w, http.StatusNotFound, "database %q not found", r.PathValue("db"))
		return
	}
	var req loadRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad load request: %v", err)
		return
	}
	if len(req.Relations) == 0 {
		writeError(w, http.StatusBadRequest, "load request names no relations")
		return
	}
	// Loads into one database are serialized: loading appends to a copy
	// of the current relation and republishes it (relations are immutable
	// once in a database), which would lose tuples under a concurrent
	// read-modify-write.
	dbe.loadMu.Lock()
	defer dbe.loadMu.Unlock()
	// Two passes make the request atomic: decode and validate everything
	// first, publish only if the whole payload is good — a 400 response
	// guarantees the database is untouched. pending accumulates per name
	// so a relation listed twice in one request merges instead of the
	// later entry overwriting the earlier one.
	pending := make(map[string]*gumbo.Relation, len(req.Relations))
	var order []string
	infos := make([]relationInfo, 0, len(req.Relations))
	for _, rp := range req.Relations {
		if rp.Name == "" || rp.Arity <= 0 {
			writeError(w, http.StatusBadRequest, "relation needs a name and a positive arity (got %q/%d)", rp.Name, rp.Arity)
			return
		}
		rel, seen := pending[rp.Name]
		if seen {
			if rel.Arity() != rp.Arity {
				writeError(w, http.StatusBadRequest, "relation %s listed twice with arities %d and %d", rp.Name, rel.Arity(), rp.Arity)
				return
			}
		} else {
			rel = gumbo.NewRelation(rp.Name, rp.Arity)
			if old := dbe.db.Relation(rp.Name); old != nil {
				if old.Arity() != rp.Arity {
					writeError(w, http.StatusBadRequest, "relation %s exists with arity %d, load says %d", rp.Name, old.Arity(), rp.Arity)
					return
				}
				for _, t := range old.Tuples() {
					rel.Add(t)
				}
			}
			pending[rp.Name] = rel
			order = append(order, rp.Name)
		}
		added := 0
		for ti, raw := range rp.Tuples {
			t, err := decodeTuple(raw, rp.Arity)
			if err != nil {
				writeError(w, http.StatusBadRequest, "relation %s tuple %d: %v", rp.Name, ti, err)
				return
			}
			if rel.Add(t) {
				added++
			}
		}
		infos = append(infos, relationInfo{Name: rp.Name, Arity: rp.Arity, Size: rel.Size(), Added: added})
	}
	for _, name := range order {
		dbe.db.Put(pending[name])
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"db":         dbe.name,
		"generation": dbe.db.Generation(),
		"relations":  infos,
	})
}

// queryRequest is the query payload. Strategy is one of the names in the
// strategy cheat-sheet ("GREEDY", "GREEDY-SGF", ...) or "auto"/empty for
// System.Auto. Batch opts the request into micro-batching (batched
// queries always run under auto; see batcher).
type queryRequest struct {
	Query    string `json:"query"`
	Strategy string `json:"strategy"`
	Batch    bool   `json:"batch"`
}

// queryResponse is the query result. Tuples are in sorted order — the
// canonical rendering, identical to a direct library run.
type queryResponse struct {
	Output       string      `json:"output"`
	Arity        int         `json:"arity"`
	Tuples       [][]any     `json:"tuples"`
	Strategy     string      `json:"strategy"`
	Plan         planInfo    `json:"plan"`
	Metrics      metricsInfo `json:"metrics"`
	Jobs         []jobInfo   `json:"jobs"`
	Cache        string      `json:"cache"` // "hit" | "miss"
	BatchSize    int         `json:"batch_size"`
	BatchOutputs []string    `json:"batch_outputs,omitempty"`
	Fingerprint  string      `json:"fingerprint"`
}

// planInfo summarizes the executed plan.
type planInfo struct {
	Jobs   int `json:"jobs"`
	Rounds int `json:"rounds"`
}

// metricsInfo mirrors gumbo.Metrics on the wire.
type metricsInfo struct {
	NetTimeSec   float64 `json:"net_time_s"`
	TotalTimeSec float64 `json:"total_time_s"`
	InputMB      float64 `json:"input_mb"`
	CommMB       float64 `json:"comm_mb"`
	OutputMB     float64 `json:"output_mb"`
	Jobs         int     `json:"jobs"`
	Rounds       int     `json:"rounds"`
}

// jobInfo mirrors one gumbo.JobStats on the wire (per-job metrics).
type jobInfo struct {
	Name        string  `json:"name"`
	InputMB     float64 `json:"input_mb"`
	InterMB     float64 `json:"inter_mb"`
	OutputMB    float64 `json:"output_mb"`
	Records     int64   `json:"records"`
	MapTasks    int     `json:"map_tasks"`
	ReduceTasks int     `json:"reduce_tasks"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	dbe := s.lookup(r.PathValue("db"))
	if dbe == nil {
		writeError(w, http.StatusNotFound, "database %q not found", r.PathValue("db"))
		return
	}
	var req queryRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad query request: %v", err)
		return
	}
	q, err := gumbo.Parse(req.Query)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	strategy := strategyAuto
	if req.Strategy != "" && req.Strategy != "auto" {
		st, ok := strategies[req.Strategy]
		if !ok {
			writeError(w, http.StatusBadRequest, "unknown strategy %q", req.Strategy)
			return
		}
		strategy = st
	}
	s.queries.Add(1)

	var out batchOutcome
	if req.Batch && s.window > 0 {
		out = dbe.batcher.submit(q)
	} else {
		res, hit, err := s.runQuery(r.Context(), dbe, q, strategy)
		out = batchOutcome{res: res, cacheHit: hit, batchSize: 1, outputs: []string{q.Name()}, err: err}
	}
	if out.err != nil {
		status := queryErrorStatus(out.err)
		if status == http.StatusServiceUnavailable {
			// Shed load is transient: committed reservations drain as
			// running queries finish.
			w.Header().Set("Retry-After", "1")
		}
		writeError(w, status, "%v", out.err)
		return
	}
	rel := out.res.Outputs.Relation(q.Name())
	if rel == nil {
		writeError(w, http.StatusInternalServerError, "run produced no relation %q", q.Name())
		return
	}
	cache := "miss"
	if out.cacheHit {
		cache = "hit"
	}
	resp := queryResponse{
		Output:      q.Name(),
		Arity:       rel.Arity(),
		Tuples:      encodeTuples(rel),
		Strategy:    string(out.res.Plan.Strategy()),
		Plan:        planInfo{Jobs: out.res.Plan.Jobs(), Rounds: out.res.Plan.Rounds()},
		Metrics:     encodeMetrics(out.res.Metrics),
		Jobs:        encodeJobs(out.res.JobStats),
		Cache:       cache,
		BatchSize:   out.batchSize,
		Fingerprint: fmt.Sprintf("%016x", q.Fingerprint()),
	}
	if out.batchSize > 1 {
		resp.BatchOutputs = out.outputs
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	hits, misses, size := s.cache.counters()
	s.mu.RLock()
	ndbs := len(s.dbs)
	s.mu.RUnlock()
	s.qmu.Lock()
	nflight := len(s.inflight)
	s.qmu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"databases":          ndbs,
		"queries":            s.queries.Load(),
		"batch_runs":         s.batchRuns.Load(),
		"batched_queries":    s.batchedQueries.Load(),
		"merge_fallbacks":    s.mergeFallbacks.Load(),
		"plan_cache_hits":    hits,
		"plan_cache_misses":  misses,
		"plan_cache_size":    size,
		"active_runs":        s.active.Load(),
		"admission_capacity": cap(s.sem),
		"inflight_queries":   nflight,
		"queries_aborted":    s.aborted.Load(),
		"queries_shed":       s.shed.Load(),
		"queries_panicked":   s.panicked.Load(),
		"mem_budget_bytes":   s.mem.cap,
		"mem_committed":      s.mem.load(),
		"query_mem_bytes":    s.queryMem,
	})
}

// ---- encoding helpers ----

// encodeTuples renders a relation's tuples in sorted order: integers as
// JSON numbers, interned strings as JSON strings. Rows are sorted by
// their encoded values (integers before strings per column, integers
// numerically, strings lexicographically) — NOT by raw Value handles,
// whose string portion depends on process-global intern order — so the
// wire form is canonical: a function of relation contents only,
// independent of insertion order, scheduling, batching, caching, and of
// what other requests the process served earlier.
func encodeTuples(rel *gumbo.Relation) [][]any {
	tuples := rel.Tuples()
	out := make([][]any, len(tuples))
	for i, t := range tuples {
		row := make([]any, len(t))
		for j, v := range t {
			if v.IsString() {
				row[j] = v.Text()
			} else {
				row[j] = int64(v)
			}
		}
		out[i] = row
	}
	sort.Slice(out, func(i, j int) bool { return compareRows(out[i], out[j]) < 0 })
	return out
}

// compareRows orders encoded rows column by column: int64 before
// string, ints numerically, strings lexicographically.
func compareRows(a, b []any) int {
	for i := range a {
		if i >= len(b) {
			return 1
		}
		ai, aInt := a[i].(int64)
		bi, bInt := b[i].(int64)
		switch {
		case aInt && bInt:
			if ai != bi {
				if ai < bi {
					return -1
				}
				return 1
			}
		case aInt:
			return -1 // ints sort before strings
		case bInt:
			return 1
		default:
			as, bs := a[i].(string), b[i].(string)
			if as != bs {
				if as < bs {
					return -1
				}
				return 1
			}
		}
	}
	if len(a) < len(b) {
		return -1
	}
	return 0
}

// decodeTuple converts a JSON row into a Tuple: non-negative integral
// numbers map to integer values, strings to interned strings. Negative
// numbers are rejected rather than silently interned as strings
// (relation.Value reserves negative handles for interned text, so a
// negative integer could not round-trip back as a JSON number).
func decodeTuple(raw []any, arity int) (gumbo.Tuple, error) {
	if len(raw) != arity {
		return nil, fmt.Errorf("got %d values, want %d", len(raw), arity)
	}
	t := make(gumbo.Tuple, arity)
	for i, v := range raw {
		switch x := v.(type) {
		case string:
			t[i] = gumbo.Str(x)
		case json.Number:
			n, err := x.Int64()
			if err != nil {
				return nil, fmt.Errorf("value %d: %q is not an integer", i, x.String())
			}
			if n < 0 {
				return nil, fmt.Errorf("value %d: negative integer %d is not representable; send it as a string", i, n)
			}
			t[i] = gumbo.Int(n)
		default:
			return nil, fmt.Errorf("value %d: unsupported JSON type %T (want integer or string)", i, v)
		}
	}
	return t, nil
}

func encodeMetrics(m gumbo.Metrics) metricsInfo {
	return metricsInfo{
		NetTimeSec:   m.NetTime,
		TotalTimeSec: m.TotalTime,
		InputMB:      m.InputMB,
		CommMB:       m.CommMB,
		OutputMB:     m.OutputMB,
		Jobs:         m.Jobs,
		Rounds:       m.Rounds,
	}
}

func encodeJobs(stats []gumbo.JobStats) []jobInfo {
	out := make([]jobInfo, len(stats))
	for i, st := range stats {
		out[i] = jobInfo{
			Name:        st.Name,
			InputMB:     st.InputMB(),
			InterMB:     st.InterMB(),
			OutputMB:    st.OutputMB,
			Records:     st.Records(),
			MapTasks:    st.MapTasks,
			ReduceTasks: st.ReduceTasks,
		}
	}
	return out
}

// decodeJSON decodes the request body into dst, capped at the server's
// body limit (an over-limit body fails decoding with a "request body
// too large" error rather than being materialized).
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody))
	dec.UseNumber()
	return dec.Decode(dst)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]any{"error": fmt.Sprintf(format, args...)})
}

func validDBName(name string) bool {
	if name == "" || len(name) > 64 {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-', r == '.':
		default:
			return false
		}
	}
	return true
}
