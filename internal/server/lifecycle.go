package server

import (
	"context"
	"errors"
	"net/http"
	"strconv"
	"sync"
	"time"

	gumbo "repro"
)

// The query lifecycle layer: every plan execution is registered in the
// server's in-flight registry from before its admission wait until its
// result is final, carrying a live gumbo.Progress observer and a cancel
// hook. Two endpoints expose it:
//
//	GET    /v1/db/{db}/queries    list that database's in-flight queries
//	DELETE /v1/db/{db}/query/{id} cancel one (the run stops at its next
//	                              task boundary; the request gets 499)
//
// Cancellation, however triggered — client disconnect, the per-query
// deadline, or the abort endpoint — releases the admission slot and
// never leaves partial output visible: the engine drops canceled runs'
// state wholesale (see mr.RunProgramObserved).

// statusClientClosedRequest is the de-facto status (nginx's 499) for a
// run whose context was canceled — by the client going away or by an
// explicit abort — as opposed to 504 for an expired deadline.
const statusClientClosedRequest = 499

// queryInfo is one registry entry. Immutable after registration except
// for state, which flips queued → running under the registry lock.
type queryInfo struct {
	id       uint64
	db       string
	query    string
	strategy string
	started  time.Time
	progress *gumbo.Progress
	cancel   context.CancelFunc

	mu      sync.Mutex
	running bool
}

func (qi *queryInfo) markRunning() {
	qi.mu.Lock()
	qi.running = true
	qi.mu.Unlock()
}

func (qi *queryInfo) state() string {
	qi.mu.Lock()
	defer qi.mu.Unlock()
	if qi.running {
		return "running"
	}
	return "queued"
}

// register allocates a query id, wraps ctx so the abort endpoint can
// cancel the run, and publishes the entry. The caller must unregister
// it (runQuery defers this) — entries never outlive their run.
func (s *Server) register(ctx context.Context, db string, q *gumbo.Query, strategy gumbo.Strategy) (context.Context, *queryInfo) {
	ctx, cancel := context.WithCancel(ctx)
	qi := &queryInfo{
		id:       s.qSeq.Add(1),
		db:       db,
		query:    q.String(),
		strategy: string(strategy),
		started:  time.Now(),
		progress: &gumbo.Progress{},
		cancel:   cancel,
	}
	s.qmu.Lock()
	s.inflight[qi.id] = qi
	s.qmu.Unlock()
	return ctx, qi
}

func (s *Server) unregister(qi *queryInfo) {
	s.qmu.Lock()
	delete(s.inflight, qi.id)
	s.qmu.Unlock()
	// Release the ctx wrapper's resources even when the run completed
	// normally (calling a CancelFunc after the fact is a no-op for the
	// finished run).
	qi.cancel()
}

// queryErrorStatus maps a run error to its HTTP status: a query that
// outgrew its memory budget asked for too much (413), a query shed at
// admission hit a transient capacity limit (503, with Retry-After set
// by the handler), a recovered execution panic is the server's fault
// (500), an expired per-query deadline is the gateway's (504), an
// aborted or disconnected client is the client's (499), anything else
// is a query the engine rejected (422). The memory/panic cases are
// checked first: they are definite diagnoses, while a context error
// can co-occur with them on the same run.
func queryErrorStatus(err error) int {
	switch {
	case errors.Is(err, gumbo.ErrBudgetExceeded):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, errServerBusy):
		return http.StatusServiceUnavailable
	case errors.Is(err, errQueryPanicked):
		return http.StatusInternalServerError
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return statusClientClosedRequest
	default:
		return http.StatusUnprocessableEntity
	}
}

// inflightInfo is one queries-endpoint row.
type inflightInfo struct {
	ID       uint64       `json:"id"`
	Query    string       `json:"query"`
	Strategy string       `json:"strategy"`
	State    string       `json:"state"` // "queued" (admission wait) | "running"
	Seconds  float64      `json:"seconds"`
	Progress progressInfo `json:"progress"`
}

// progressInfo mirrors gumbo.ProgressSnapshot on the wire.
type progressInfo struct {
	MapTasksDone      int `json:"map_tasks_done"`
	MapTasksTotal     int `json:"map_tasks_total"`
	ShuffleTasksDone  int `json:"shuffle_tasks_done"`
	ShuffleTasksTotal int `json:"shuffle_tasks_total"`
	ReduceTasksDone   int `json:"reduce_tasks_done"`
	ReduceTasksTotal  int `json:"reduce_tasks_total"`
	MergeShardsDone   int `json:"merge_shards_done"`
	MergeShardsTotal  int `json:"merge_shards_total"`
	JobsDone          int `json:"jobs_done"`
	JobsTotal         int `json:"jobs_total"`
}

func encodeProgress(ps gumbo.ProgressSnapshot) progressInfo {
	return progressInfo{
		MapTasksDone: ps.MapTasksDone, MapTasksTotal: ps.MapTasksTotal,
		ShuffleTasksDone: ps.ShuffleTasksDone, ShuffleTasksTotal: ps.ShuffleTasksTotal,
		ReduceTasksDone: ps.ReduceTasksDone, ReduceTasksTotal: ps.ReduceTasksTotal,
		MergeShardsDone: ps.MergeShardsDone, MergeShardsTotal: ps.MergeShardsTotal,
		JobsDone: ps.JobsDone, JobsTotal: ps.JobsTotal,
	}
}

// handleListQueries lists the database's in-flight queries with live
// progress snapshots, oldest first (ids are allocated in start order).
func (s *Server) handleListQueries(w http.ResponseWriter, r *http.Request) {
	dbe := s.lookup(r.PathValue("db"))
	if dbe == nil {
		writeError(w, http.StatusNotFound, "database %q not found", r.PathValue("db"))
		return
	}
	now := time.Now()
	s.qmu.Lock()
	rows := make([]inflightInfo, 0, len(s.inflight))
	for _, qi := range s.inflight {
		if qi.db != dbe.name {
			continue
		}
		rows = append(rows, inflightInfo{
			ID:       qi.id,
			Query:    qi.query,
			Strategy: qi.strategy,
			State:    qi.state(),
			Seconds:  now.Sub(qi.started).Seconds(),
			Progress: encodeProgress(qi.progress.Snapshot()),
		})
	}
	s.qmu.Unlock()
	// Map iteration order is random; present a stable listing.
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0 && rows[j].ID < rows[j-1].ID; j-- {
			rows[j], rows[j-1] = rows[j-1], rows[j]
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"db": dbe.name, "queries": rows})
}

// handleAbortQuery cancels one in-flight query. The canceled run's own
// request fails with 499; the abort request itself gets 200 once the
// cancel is delivered (the run unwinds asynchronously at its next task
// boundary — poll /v1/stats or the queries endpoint to watch the slot
// free up).
func (s *Server) handleAbortQuery(w http.ResponseWriter, r *http.Request) {
	dbe := s.lookup(r.PathValue("db"))
	if dbe == nil {
		writeError(w, http.StatusNotFound, "database %q not found", r.PathValue("db"))
		return
	}
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid query id %q", r.PathValue("id"))
		return
	}
	s.qmu.Lock()
	qi := s.inflight[id]
	if qi != nil && qi.db != dbe.name {
		qi = nil
	}
	s.qmu.Unlock()
	if qi == nil {
		writeError(w, http.StatusNotFound, "no in-flight query %d in database %q", id, dbe.name)
		return
	}
	qi.cancel()
	s.aborted.Add(1)
	writeJSON(w, http.StatusOK, map[string]any{"aborted": id})
}
