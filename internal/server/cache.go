package server

import (
	"container/list"
	"strings"
	"sync"

	gumbo "repro"
)

// planCache is an LRU cache of built plans. Keys are composed by
// planKey from the database instance id (unique per creation — see
// dbEntry), the database generation, the strategy and the query's
// canonical text, so any load or drop into a database (which bumps
// Database.Generation) makes all of its cached plans unreachable; stale
// entries age out through normal LRU eviction, and dropping a whole
// database purges its entries eagerly (purgeDB).
type planCache struct {
	mu      sync.Mutex
	cap     int
	lru     *list.List // front = most recently used; values are *cacheEntry
	entries map[string]*list.Element
	hits    uint64
	misses  uint64
}

type cacheEntry struct {
	key  string
	plan *gumbo.Plan
}

func newPlanCache(capacity int) *planCache {
	if capacity <= 0 {
		capacity = 128
	}
	return &planCache{
		cap:     capacity,
		lru:     list.New(),
		entries: make(map[string]*list.Element),
	}
}

// planKey builds the cache key. The generation stands in for a
// schema-and-content fingerprint: plans (including the data-dependent
// grouping of cost-based strategies) are only reused against the exact
// database state they were built on.
func planKey(dbID string, generation uint64, strategy gumbo.Strategy, queryText string) string {
	var sb strings.Builder
	sb.Grow(len(dbID) + len(queryText) + 32)
	sb.WriteString(dbID)
	sb.WriteByte(0)
	for i := 0; i < 8; i++ {
		sb.WriteByte(byte(generation >> (8 * i)))
	}
	sb.WriteByte(0)
	sb.WriteString(string(strategy))
	sb.WriteByte(0)
	sb.WriteString(queryText)
	return sb.String()
}

func (c *planCache) get(key string) (*gumbo.Plan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.hits++
	return el.Value.(*cacheEntry).plan, true
}

func (c *planCache) put(key string, plan *gumbo.Plan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).plan = plan
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, plan: plan})
	for c.lru.Len() > c.cap {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// purgeDB removes every entry cached for the database instance.
func (c *planCache) purgeDB(dbID string) {
	prefix := dbID + "\x00"
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, el := range c.entries {
		if strings.HasPrefix(key, prefix) {
			c.lru.Remove(el)
			delete(c.entries, key)
		}
	}
}

// counters returns (hits, misses, size).
func (c *planCache) counters() (uint64, uint64, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.lru.Len()
}
