package server

import (
	"errors"
	"sync"
)

// The server's degradation ladder (docs/SERVER.md, "Memory governance"):
// rather than letting concurrent queries allocate until the process
// dies, the server sheds load in stages. Each admitted query reserves
// its cost-model-predicted bytes against a global ledger before it
// runs; when the ledger is saturated, new queries are rejected with 503
// and a Retry-After hint instead of being executed. Each run is then
// governed by a per-query byte budget (gumbo.RunPlanGoverned): a query
// whose actual charges outgrow its budget is aborted deterministically
// with 413, leaving the database untouched. Spill-to-disk (configured
// on the System) lowers resident memory pressure underneath both.

// errServerBusy rejects a query at admission when the global memory
// ledger cannot fit its predicted reservation. Mapped to 503 with a
// Retry-After header: the condition is transient — slots free as
// running queries finish.
var errServerBusy = errors.New("server busy: global memory budget saturated, retry later")

// errQueryPanicked wraps a panic recovered at the query boundary.
// Mapped to 500; the panic fails only its own query — the pool joins
// its workers and the run's registry entry, admission slot, memory
// reservation and spill files are all released on the unwind — so the
// server keeps serving.
var errQueryPanicked = errors.New("internal error: query execution panicked")

// memLedger tracks the per-query byte reservations committed against
// the server-wide memory budget.
type memLedger struct {
	cap int64 // 0 = unlimited (ledger disabled)

	mu        sync.Mutex
	committed int64
}

func newMemLedger(cap int64) *memLedger {
	if cap < 0 {
		cap = 0
	}
	return &memLedger{cap: cap}
}

// reserve commits n bytes, reporting whether the reservation fits. The
// first query is always admitted, even when its prediction alone
// exceeds the cap: an over-cap prediction must degrade to
// one-query-at-a-time service (or a per-query 413 during the run), not
// starve the query forever.
func (l *memLedger) reserve(n int64) bool {
	if l.cap <= 0 {
		return true
	}
	if n < 0 {
		n = 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.committed > 0 && l.committed+n > l.cap {
		return false
	}
	l.committed += n
	return true
}

// release returns a reservation to the ledger.
func (l *memLedger) release(n int64) {
	if l.cap <= 0 {
		return
	}
	if n < 0 {
		n = 0
	}
	l.mu.Lock()
	l.committed -= n
	l.mu.Unlock()
}

// load returns the currently committed bytes (stats endpoint).
func (l *memLedger) load() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.committed
}
