package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// testConfig returns the standard test configuration, skipping the
// calling test under -short: regenerating the full set of paper
// artifacts takes ~45s, which TestSmoke covers in miniature instead.
func testConfig(t *testing.T) Config {
	t.Helper()
	if testing.Short() {
		t.Skip("full artifact regeneration skipped in -short mode (see TestSmoke)")
	}
	return TestConfig()
}

// TestSmoke runs one complete experiment end to end — planning, the MR
// engine, the cluster simulator and reference verification — at a
// minimal scale, so -short runs still cover the whole pipeline.
func TestSmoke(t *testing.T) {
	tbl, err := AblationPacking(SmokeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	on, off := tbl.Rows[0], tbl.Rows[1]
	if cell(t, on[3]) >= cell(t, off[3]) {
		t.Errorf("packing did not cut comm: %s vs %s", on[3], off[3])
	}
}

// cell parses a numeric cell like "32s", "53%", "1.23GB".
func cell(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(s, "s"), "%"), "GB")
	s = strings.TrimPrefix(s, "+")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("bad cell %q: %v", s, err)
	}
	return v
}

// rowLookup indexes table rows by the first n columns.
func rowLookup(tbl *Table, n int) map[string][]string {
	out := make(map[string][]string)
	for _, row := range tbl.Rows {
		out[strings.Join(row[:n], "|")] = row
	}
	return out
}

func TestFigure3Shape(t *testing.T) {
	cfg := testConfig(t)
	tbl, err := Figure3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows := rowLookup(tbl, 2)
	for _, q := range []string{"A1", "A2", "A3", "A4", "A5"} {
		seq := rows[q+"|SEQ"]
		par := rows[q+"|PAR"]
		greedy := rows[q+"|GREEDY"]
		if seq == nil || par == nil || greedy == nil {
			t.Fatalf("%s rows missing", q)
		}
		// PAR and GREEDY beat SEQ on net time (paper: 39%/31% average
		// improvement).
		if cell(t, par[2]) >= cell(t, seq[2]) {
			t.Errorf("%s: PAR net %s !< SEQ net %s", q, par[2], seq[2])
		}
		if cell(t, greedy[2]) >= cell(t, seq[2]) {
			t.Errorf("%s: GREEDY net %s !< SEQ net %s", q, greedy[2], seq[2])
		}
		// GREEDY's total time beats PAR's (grouping pays).
		if cell(t, greedy[3]) >= cell(t, par[3]) {
			t.Errorf("%s: GREEDY total %s !< PAR total %s", q, greedy[3], par[3])
		}
		// PAR reads more input than SEQ (no filtering between rounds).
		if cell(t, par[8]) <= 100 {
			t.Errorf("%s: PAR input%%seq = %s, want > 100%%", q, par[8])
		}
	}
	// 1-ROUND exists for A3 only and wins everything there.
	oneround := rows["A3|1-ROUND"]
	if oneround == nil {
		t.Fatal("A3 1-ROUND row missing")
	}
	for _, q := range []string{"A1", "A2", "A4", "A5"} {
		if rows[q+"|1-ROUND"] != nil {
			t.Errorf("%s unexpectedly has a 1-ROUND row", q)
		}
	}
	a3greedy := rows["A3|GREEDY"]
	if cell(t, oneround[2]) >= cell(t, a3greedy[2]) || cell(t, oneround[3]) >= cell(t, a3greedy[3]) {
		t.Errorf("A3 1-ROUND (%s net, %s tot) should beat GREEDY (%s, %s)",
			oneround[2], oneround[3], a3greedy[2], a3greedy[3])
	}
}

func TestFigure4Shape(t *testing.T) {
	cfg := testConfig(t)
	tbl, err := Figure4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows := rowLookup(tbl, 2)
	// B1: deep sequential plan -> PAR slashes net time drastically
	// (paper: 22% of SEQ) while SEQ total is competitive.
	b1seq, b1par, b1greedy := rows["B1|SEQ"], rows["B1|PAR"], rows["B1|GREEDY"]
	if cell(t, b1par[2]) >= 0.6*cell(t, b1seq[2]) {
		t.Errorf("B1: PAR net %s not ≪ SEQ net %s", b1par[2], b1seq[2])
	}
	if cell(t, b1greedy[3]) >= cell(t, b1par[3]) {
		t.Errorf("B1: GREEDY total %s !< PAR total %s", b1greedy[3], b1par[3])
	}
	// B2: 1-ROUND applies and beats everything (paper: 18% of SEQ).
	b2or := rows["B2|1-ROUND"]
	if b2or == nil {
		t.Fatal("B2 1-ROUND row missing")
	}
	b2seq := rows["B2|SEQ"]
	if cell(t, b2or[2]) >= cell(t, b2seq[2]) || cell(t, b2or[3]) >= cell(t, b2seq[3]) {
		t.Errorf("B2: 1-ROUND (%s, %s) should beat SEQ (%s, %s)",
			b2or[2], b2or[3], b2seq[2], b2seq[3])
	}
}

func TestFigure5Shape(t *testing.T) {
	cfg := testConfig(t)
	tbl, err := Figure5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows := rowLookup(tbl, 2)
	for _, q := range []string{"C1", "C2", "C3", "C4"} {
		par := rows[q+"|PARUNIT"]
		greedy := rows[q+"|GREEDY-SGF"]
		if par == nil || greedy == nil {
			t.Fatalf("%s rows missing", q)
		}
		// PARUNIT cuts net time vs SEQUNIT (paper: 55% lower on average).
		if cell(t, par[2]) >= 100 {
			t.Errorf("%s: PARUNIT net%% = %s, want < 100%%", q, par[2])
		}
		// GREEDY-SGF cuts total time vs SEQUNIT (paper: 27% down).
		if cell(t, greedy[3]) > 105 {
			t.Errorf("%s: GREEDY-SGF total%% = %s, want ≤ ~100%%", q, greedy[3])
		}
	}
}

func TestFigure7aShape(t *testing.T) {
	cfg := testConfig(t)
	tbl, err := Figure7a(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows := rowLookup(tbl, 2)
	// Total time grows with data for every strategy; 1-ROUND stays best.
	for _, strat := range []string{"SEQ", "PAR", "GREEDY", "1-ROUND"} {
		small := rows["200M|"+strat]
		big := rows["1600M|"+strat]
		if small == nil || big == nil {
			t.Fatalf("%s rows missing", strat)
		}
		if cell(t, big[3]) <= cell(t, small[3]) {
			t.Errorf("%s: total did not grow with data (%s -> %s)", strat, small[3], big[3])
		}
	}
	for _, size := range []string{"200M", "1600M"} {
		or := rows[size+"|1-ROUND"]
		for _, strat := range []string{"SEQ", "PAR", "GREEDY"} {
			if cell(t, or[2]) > cell(t, rows[size+"|"+strat][2]) {
				t.Errorf("%s: 1-ROUND net %s not best vs %s %s", size, or[2], strat, rows[size+"|"+strat][2])
			}
		}
	}
}

func TestFigure7bShape(t *testing.T) {
	cfg := testConfig(t)
	tbl, err := Figure7b(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows := rowLookup(tbl, 2)
	// More nodes never hurt net time; they help PAR markedly.
	for _, strat := range []string{"PAR", "GREEDY", "1-ROUND", "SEQ"} {
		five := rows["5|"+strat]
		twenty := rows["20|"+strat]
		if cell(t, twenty[2]) > cell(t, five[2])+1e-9 {
			t.Errorf("%s: net grew with nodes (%s -> %s)", strat, five[2], twenty[2])
		}
	}
}

func TestFigure8Shape(t *testing.T) {
	cfg := testConfig(t)
	tbl, err := Figure8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows := rowLookup(tbl, 2)
	// SEQ's net grows with the atom count; 1-ROUND's stays flat-ish.
	seq2, seq16 := rows["2|SEQ"], rows["16|SEQ"]
	if cell(t, seq16[2]) < 2*cell(t, seq2[2]) {
		t.Errorf("SEQ net should grow strongly with atoms: %s -> %s", seq2[2], seq16[2])
	}
	or2, or16 := rows["2|1-ROUND"], rows["16|1-ROUND"]
	if cell(t, or16[2]) > 2.5*cell(t, or2[2]) {
		t.Errorf("1-ROUND net grew too much: %s -> %s", or2[2], or16[2])
	}
	// PAR's communication exceeds 1-ROUND's at 16 atoms (no packing).
	if cell(t, rows["16|PAR"][4]) <= cell(t, rows["16|1-ROUND"][4]) {
		t.Errorf("PAR comm %s should exceed 1-ROUND %s at 16 atoms",
			rows["16|PAR"][4], rows["16|1-ROUND"][4])
	}
}

func TestTable3Shape(t *testing.T) {
	cfg := testConfig(t)
	tbl, err := Table3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Selectivity growth must not decrease SEQ's total time (more data
	// survives each filtering step).
	for _, row := range tbl.Rows {
		if row[0] != "SEQ" {
			continue
		}
		for _, c := range row[4:7] {
			if cell(t, c) < 0 {
				t.Errorf("SEQ total decreased with lower selectivity: %v", row)
			}
		}
	}
}

func TestCostModelExperimentShape(t *testing.T) {
	cfg := testConfig(t)
	tbl, err := CostModelExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	gumboTotal := cell(t, tbl.Rows[0][3])
	wangTotal := cell(t, tbl.Rows[1][3])
	if gumboTotal > wangTotal {
		t.Errorf("cost_gumbo-planned total %v should not exceed cost_wang-planned %v",
			gumboTotal, wangTotal)
	}
}

func TestRankingAccuracyShape(t *testing.T) {
	cfg := testConfig(t)
	cfg.Verify = false
	tbl, err := RankingAccuracy(cfg, 10)
	if err != nil {
		t.Fatal(err)
	}
	g := cell(t, tbl.Rows[0][2])
	w := cell(t, tbl.Rows[1][2])
	if g < w {
		t.Errorf("gumbo accuracy %v%% below wang %v%%", g, w)
	}
	if g < 60 {
		t.Errorf("gumbo accuracy %v%% implausibly low", g)
	}
}

func TestOptimalVsGreedyShape(t *testing.T) {
	cfg := testConfig(t)
	tbl, err := OptimalVsGreedy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if cell(t, row[4]) > 1.25 {
			t.Errorf("%s: greedy/opt ratio %s too high", row[0], row[4])
		}
	}
}

func TestBuildPlanUnknownStrategy(t *testing.T) {
	cfg := testConfig(t)
	wl := workload.A1()
	db := wl.Build(cfg.Scale)
	if _, err := BuildPlan(cfg, core.Strategy("NOPE"), wl, db); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{ID: "X", Title: "demo", Header: []string{"a", "bb"}}
	tbl.AddRow("1", "2")
	tbl.AddNote("n=%d", 1)
	var buf bytes.Buffer
	tbl.Render(&buf)
	out := buf.String()
	for _, want := range []string{"X — demo", "a", "bb", "note: n=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestExperimentRegistry(t *testing.T) {
	if len(All()) != 12 {
		t.Errorf("registry has %d experiments", len(All()))
	}
	if ByID("E1") == nil || ByID("NOPE") != nil {
		t.Error("ByID lookup wrong")
	}
}
