package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result: the rows/series of one paper
// artifact.
type Table struct {
	ID     string // experiment id, e.g. "E1"
	Title  string // paper artifact, e.g. "Figure 3: BSGF strategies"
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a free-form note line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// fmtSecs renders simulated seconds.
func fmtSecs(s float64) string { return fmt.Sprintf("%.0fs", s) }

// fmtGB renders MB as GB with enough precision for scaled-down runs.
func fmtGB(mb float64) string {
	gb := mb / 1024
	if gb >= 10 {
		return fmt.Sprintf("%.1fGB", gb)
	}
	if gb >= 0.1 {
		return fmt.Sprintf("%.2fGB", gb)
	}
	return fmt.Sprintf("%.4fGB", gb)
}

// fmtRel renders a ratio as a percentage relative to a base.
func fmtRel(v, base float64) string {
	if base == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.0f%%", 100*v/base)
}

// fmtPct renders a fraction as a percentage.
func fmtPct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }
