// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) on the in-process MapReduce engine and cluster
// simulator. Each experiment has a runner returning a Table with the
// same rows/series the paper reports; cmd/gumbo-bench drives the full
// set and bench_test.go exposes one benchmark per artifact.
//
// Experiments run at a configurable fraction of the paper's data sizes
// (DESIGN.md §1): cost-model buffers, split sizes and per-reducer
// allocations are scaled by the same factor, so merge passes and task
// waves behave as at full scale.
package experiments

import (
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/mr"
	"repro/internal/refeval"
	"repro/internal/relation"
	"repro/internal/workload"
)

// Config parameterizes an experiment run.
type Config struct {
	// Scale multiplies the paper's data cardinalities (1.0 = 100M-tuple
	// guards). The cost configuration must be scaled consistently; use
	// At().
	Scale   float64
	CostCfg cost.Config
	Cluster cluster.Config
	// Verify cross-checks every strategy's output against the reference
	// evaluator (slower; on by default at small scales).
	Verify bool
	// HostWorkers sizes the engine's unified worker pool: every task of
	// a plan, across all of its jobs, shares these goroutines
	// (0 = GOMAXPROCS, 1 = strictly sequential). Simulated results are
	// identical at every setting; only wall-clock time changes.
	HostWorkers int
	// Progress, when non-nil, receives one line per run.
	Progress io.Writer
}

// At returns the standard configuration at the given scale.
func At(scale float64) Config {
	return Config{
		Scale:   scale,
		CostCfg: cost.Default().Scaled(scale),
		Cluster: cluster.DefaultConfig(),
		Verify:  scale <= 0.002,
	}
}

// DefaultConfig runs at 1/1000 of the paper's data sizes.
func DefaultConfig() Config { return At(0.001) }

// TestConfig is a fast configuration for unit tests.
func TestConfig() Config { return At(0.0001) }

// SmokeConfig is a minimal configuration for quick end-to-end smoke
// checks (e.g. `go test -short`): tiny data, reference verification on.
func SmokeConfig() Config { return At(0.00005) }

func (c Config) runner() *exec.Runner {
	return exec.NewRunner(c.CostCfg, c.Cluster).WithHostWorkers(c.HostWorkers)
}

func (c Config) logf(format string, args ...any) {
	if c.Progress != nil {
		fmt.Fprintf(c.Progress, format+"\n", args...)
	}
}

// runResult couples a strategy with its measured metrics.
type runResult struct {
	Strategy core.Strategy
	Metrics  mr.Metrics
}

// paperSeconds converts simulated seconds at the configured scale into
// paper-equivalent seconds: the cost model is exactly scale-invariant
// (cost.Config.Scaled), so dividing by the scale recovers the times the
// configuration would produce at the paper's full data sizes.
func (c Config) paperSeconds(simulated float64) float64 {
	if c.Scale <= 0 {
		return simulated
	}
	return simulated / c.Scale
}

// paperMetrics rescales a metrics record to paper-equivalent units
// (times divided by scale, byte volumes divided by scale).
func (c Config) paperMetrics(m mr.Metrics) mr.Metrics {
	if c.Scale <= 0 {
		return m
	}
	m.NetTime /= c.Scale
	m.TotalTime /= c.Scale
	m.InputMB /= c.Scale
	m.CommMB /= c.Scale
	m.OutputMB /= c.Scale
	return m
}

// runStrategies executes the given strategies on one workload database,
// verifying outputs against the reference evaluator when configured.
func (c Config) runStrategies(wl workload.Workload, db *relation.Database, strategies []core.Strategy) ([]runResult, error) {
	var want *relation.Database
	if c.Verify {
		var err error
		want, err = refeval.EvalProgram(wl.Program, db)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: reference evaluation: %w", wl.Name, err)
		}
	}
	runner := c.runner()
	out := make([]runResult, 0, len(strategies))
	for _, strat := range strategies {
		plan, err := BuildPlan(c, strat, wl, db)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s/%s: %w", wl.Name, strat, err)
		}
		res, err := runner.Run(plan, db)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s/%s: %w", wl.Name, strat, err)
		}
		if want != nil {
			for _, q := range wl.Program.Queries {
				got := res.Outputs.Relation(q.Name)
				if got == nil || !got.Equal(want.Relation(q.Name)) {
					return nil, fmt.Errorf("experiments: %s/%s: output %s deviates from reference",
						wl.Name, strat, q.Name)
				}
			}
		}
		c.logf("%-10s %-10s %s", wl.Name, strat, res.Metrics)
		out = append(out, runResult{Strategy: strat, Metrics: c.paperMetrics(res.Metrics)})
	}
	return out, nil
}
