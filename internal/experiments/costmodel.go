package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/workload"
)

// CostModelExperiment reproduces the §5.2 "Cost Model" comparison: the
// adversarial 48-atom filtering query is planned by Greedy-BSGF once
// under the per-partition model (cost_gumbo) and once under the
// aggregate model (cost_wang); both plans are executed and their
// measured times compared. The paper reports cost_gumbo's plan saving
// 43% total and 71% net time.
func CostModelExperiment(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E9",
		Title:  "§5.2 Cost Model: GREEDY planned under cost_gumbo vs cost_wang",
		Header: []string{"planner model", "msj jobs", "net", "total", "comm"},
	}
	wl := workload.CostModel()
	db := wl.Build(cfg.Scale)
	runner := cfg.runner()
	type planned struct {
		model cost.Model
		net   float64
		total float64
	}
	var outcomes []planned
	for _, model := range []cost.Model{cost.Gumbo, cost.Wang} {
		est := core.NewEstimator(cfg.CostCfg, model, db, wl.Program)
		plan, err := est.GreedyPlan(fmt.Sprintf("%s-%v", wl.Name, model), wl.Program.Queries)
		if err != nil {
			return nil, err
		}
		res, err := runner.Run(plan, db)
		if err != nil {
			return nil, err
		}
		m := cfg.paperMetrics(res.Metrics)
		t.AddRow(model.String(), fmt.Sprint(len(plan.Jobs)-1),
			fmtSecs(m.NetTime), fmtSecs(m.TotalTime), fmtGB(m.CommMB))
		outcomes = append(outcomes, planned{model, m.NetTime, m.TotalTime})
		cfg.logf("%-10s %-10v %s", wl.Name, model, m)
	}
	g, w := outcomes[0], outcomes[1]
	if w.total > 0 && w.net > 0 {
		t.AddNote("cost_gumbo plan vs cost_wang plan: total %+.0f%%, net %+.0f%% (paper: -43%% total, -71%% net)",
			100*(g.total-w.total)/w.total, 100*(g.net-w.net)/w.net)
	}
	return t, nil
}

// RankingAccuracy reproduces the §5.2 job-ranking comparison: "when
// comparing two random jobs, the cost models correctly identify the
// highest cost job in 72.28% (cost_gumbo) and 69.37% (cost_wang) of the
// cases". Candidate MSJ jobs are random equation groups drawn from the
// A-queries; each model's *estimated* cost (from sampled sizes) ranks
// job pairs, scored against the measured cost of the executed jobs.
func RankingAccuracy(cfg Config, jobCount int) (*Table, error) {
	if jobCount <= 1 {
		jobCount = 24
	}
	t := &Table{
		ID:     "E9b",
		Title:  "§5.2 Cost Model: pairwise job-ranking accuracy",
		Header: []string{"model", "correct pairs", "accuracy"},
	}
	rng := rand.New(rand.NewSource(7))
	runner := cfg.runner()

	type job struct {
		gumboEst, wangEst, actual float64
	}
	var jobs []job
	// The pool mixes the proportional A/B queries (where the paper notes
	// both models behave similarly) with the non-proportional §5.2
	// adversarial query (where they diverge).
	wls := append(workload.AQueries(), workload.B1(), workload.CostModel(), workload.CostModel())
	for len(jobs) < jobCount {
		wl := wls[rng.Intn(len(wls))]
		db := wl.Build(cfg.Scale * (0.5 + rng.Float64()))
		gumboEst := core.NewEstimator(cfg.CostCfg, cost.Gumbo, db, wl.Program)
		wangEst := core.NewEstimator(cfg.CostCfg, cost.Wang, db, wl.Program)
		eqs := core.ExtractEquations(wl.Program.Queries)
		// Random non-empty equation group.
		var group []int
		for i := range eqs {
			if rng.Intn(2) == 0 {
				group = append(group, i)
			}
		}
		if len(group) == 0 {
			group = []int{rng.Intn(len(eqs))}
		}
		sub := make([]core.Equation, len(group))
		for i, gi := range group {
			sub[i] = eqs[gi]
		}
		mjob, err := core.NewMSJJob(fmt.Sprintf("rank-%d", len(jobs)), sub)
		if err != nil {
			return nil, err
		}
		_, stats, err := runner.Engine.RunJob(mjob, db)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, job{
			gumboEst: gumboEst.MSJCost(eqs, group),
			wangEst:  wangEst.MSJCost(eqs, group),
			actual:   cfg.CostCfg.JobCost(cost.Gumbo, stats.CostSpec()),
		})
		cfg.logf("rank job %d: est g=%.1f w=%.1f actual=%.1f", len(jobs), jobs[len(jobs)-1].gumboEst, jobs[len(jobs)-1].wangEst, jobs[len(jobs)-1].actual)
	}
	// Pairs of wildly different jobs are ranked correctly by any model;
	// the models' quality shows on close pairs (actual costs within 2×),
	// which are also the pairs that decide groupings.
	var pairs, gumboOK, wangOK int
	var closePairs, gumboCloseOK, wangCloseOK int
	for i := 0; i < len(jobs); i++ {
		for j := i + 1; j < len(jobs); j++ {
			if jobs[i].actual == jobs[j].actual {
				continue
			}
			pairs++
			actualGreater := jobs[i].actual > jobs[j].actual
			gOK := (jobs[i].gumboEst > jobs[j].gumboEst) == actualGreater
			wOK := (jobs[i].wangEst > jobs[j].wangEst) == actualGreater
			if gOK {
				gumboOK++
			}
			if wOK {
				wangOK++
			}
			hi, lo := jobs[i].actual, jobs[j].actual
			if lo > hi {
				hi, lo = lo, hi
			}
			if lo > 0 && hi/lo < 2 {
				closePairs++
				if gOK {
					gumboCloseOK++
				}
				if wOK {
					wangCloseOK++
				}
			}
		}
	}
	if pairs == 0 {
		return nil, fmt.Errorf("experiments: no comparable job pairs")
	}
	pct := func(ok, n int) string {
		if n == 0 {
			return "n/a"
		}
		return fmtPct(float64(ok) / float64(n))
	}
	t.Header = []string{"model", "all pairs", "accuracy", "close pairs (<2x)", "accuracy"}
	t.AddRow("cost_gumbo", fmt.Sprintf("%d/%d", gumboOK, pairs), pct(gumboOK, pairs),
		fmt.Sprintf("%d/%d", gumboCloseOK, closePairs), pct(gumboCloseOK, closePairs))
	t.AddRow("cost_wang", fmt.Sprintf("%d/%d", wangOK, pairs), pct(wangOK, pairs),
		fmt.Sprintf("%d/%d", wangCloseOK, closePairs), pct(wangCloseOK, closePairs))
	t.AddNote("paper: 72.28%% (gumbo) vs 69.37%% (wang); ground truth here is the measured-size job cost, see EXPERIMENTS.md")
	return t, nil
}

// OptimalVsGreedy reproduces the E10 check: on the A-queries the greedy
// partitions and multiway sorts are compared against brute-force optima
// (Theorems 1 and 2 make the exact problems NP-hard; the instances here
// are small enough to enumerate).
func OptimalVsGreedy(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E10",
		Title:  "Greedy-BSGF vs brute-force OPT (estimated plan cost)",
		Header: []string{"query", "greedy partition", "greedy cost", "opt cost", "ratio"},
	}
	for _, wl := range workload.AQueries() {
		db := wl.Build(cfg.Scale)
		est := core.NewEstimator(cfg.CostCfg, cost.Gumbo, db, wl.Program)
		eqs := core.ExtractEquations(wl.Program.Queries)
		greedyPart := est.GreedyBSGF(eqs)
		greedyCost := est.PartitionCost(eqs, greedyPart)
		_, optCost := est.BruteForceBSGF(eqs)
		ratio := 1.0
		if optCost > 0 {
			ratio = greedyCost / optCost
		}
		t.AddRow(wl.Name, core.PartitionString(greedyPart),
			fmt.Sprintf("%.1f", greedyCost), fmt.Sprintf("%.1f", optCost),
			fmt.Sprintf("%.3f", ratio))
	}
	t.AddNote("ratio 1.000 means the greedy heuristic found an optimal grouping")
	return t, nil
}
