package experiments

import (
	"fmt"

	"repro/internal/workload"
)

// paperSizeLabel renders a sweep multiplier as the paper's tuple-count
// label (the base workload is 100M tuples).
func paperSizeLabel(mult float64) string {
	return fmt.Sprintf("%.0fM", 100*mult)
}

// Figure7a reproduces Figure 7a: query A3 with growing data size
// (200M–1600M paper tuples) on the 10-node cluster.
func Figure7a(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E4",
		Title:  "Figure 7a: A3, varying data size (10 nodes)",
		Header: []string{"size", "strategy", "net", "total", "input", "comm"},
	}
	for _, mult := range []float64{2, 4, 8, 16} {
		wl := workload.A3()
		db := wl.Build(cfg.Scale * mult)
		sub := cfg
		sub.Verify = cfg.Verify && mult <= 4
		results, err := sub.runStrategies(wl, db, scalingStrategies())
		if err != nil {
			return nil, err
		}
		for _, r := range results {
			m := r.Metrics
			t.AddRow(paperSizeLabel(mult), string(r.Strategy),
				fmtSecs(m.NetTime), fmtSecs(m.TotalTime), fmtGB(m.InputMB), fmtGB(m.CommMB))
		}
	}
	t.AddNote("PAR's ungrouped map demand grows fastest; once it exceeds the slot pool its net time jumps (paper obs. 2)")
	return t, nil
}

// Figure7b reproduces Figure 7b: A3 at 800M paper tuples with cluster
// sizes 5, 10 and 20 nodes.
func Figure7b(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E5",
		Title:  "Figure 7b: A3, varying cluster size (800M tuples)",
		Header: []string{"nodes", "strategy", "net", "total"},
	}
	wl := workload.A3()
	db := wl.Build(cfg.Scale * 8)
	for _, nodes := range []int{5, 10, 20} {
		sub := cfg
		sub.Cluster.Nodes = nodes
		sub.Verify = false
		results, err := sub.runStrategies(wl, db, scalingStrategies())
		if err != nil {
			return nil, err
		}
		for _, r := range results {
			t.AddRow(fmt.Sprint(nodes), string(r.Strategy),
				fmtSecs(r.Metrics.NetTime), fmtSecs(r.Metrics.TotalTime))
		}
	}
	t.AddNote("adding nodes helps the parallel strategies' net time; SEQ saturates (paper obs. 3)")
	return t, nil
}

// Figure7c reproduces Figure 7c: joint data and cluster scaling
// (200M/5, 400M/10, 800M/20).
func Figure7c(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E6",
		Title:  "Figure 7c: A3, joint data and cluster scaling",
		Header: []string{"size/nodes", "strategy", "net", "total"},
	}
	for _, p := range []struct {
		mult  float64
		nodes int
	}{{2, 5}, {4, 10}, {8, 20}} {
		wl := workload.A3()
		db := wl.Build(cfg.Scale * p.mult)
		sub := cfg
		sub.Cluster.Nodes = p.nodes
		sub.Verify = cfg.Verify && p.mult <= 4
		results, err := sub.runStrategies(wl, db, scalingStrategies())
		if err != nil {
			return nil, err
		}
		for _, r := range results {
			t.AddRow(fmt.Sprintf("%s/%d", paperSizeLabel(p.mult), p.nodes), string(r.Strategy),
				fmtSecs(r.Metrics.NetTime), fmtSecs(r.Metrics.TotalTime))
		}
	}
	t.AddNote("net times stay roughly flat under joint scaling while total time grows (paper obs. 4)")
	return t, nil
}

// Figure8 reproduces Figure 8: A3-like queries with 2–16 conditional
// atoms.
func Figure8(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E7",
		Title:  "Figure 8: varying the number of conditional atoms (A3-like)",
		Header: []string{"atoms", "strategy", "net", "total", "comm"},
	}
	for _, k := range []int{2, 4, 6, 8, 10, 12, 14, 16} {
		wl := workload.A3K(k)
		db := wl.Build(cfg.Scale)
		results, err := cfg.runStrategies(wl, db, scalingStrategies())
		if err != nil {
			return nil, err
		}
		for _, r := range results {
			t.AddRow(fmt.Sprint(k), string(r.Strategy),
				fmtSecs(r.Metrics.NetTime), fmtSecs(r.Metrics.TotalTime), fmtGB(r.Metrics.CommMB))
		}
	}
	t.AddNote("SEQ's net time grows with query width; the parallel strategies stay nearly flat; PAR's total grows fastest (no packing)")
	return t, nil
}

// Table3 reproduces Table 3: the increase in net and total time when
// the selectivity rate moves from 0.1 to 0.9 on A1–A3 for SEQ, PAR and
// GREEDY.
func Table3(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E8",
		Title:  "Table 3: net/total increase from selectivity 0.1 to 0.9",
		Header: []string{"strategy", "net A1", "net A2", "net A3", "tot A1", "tot A2", "tot A3"},
	}
	strategies := scalingStrategies()[:3] // SEQ, PAR, GREEDY
	type key struct {
		wl    string
		strat string
	}
	lo := make(map[key]runResult)
	hi := make(map[key]runResult)
	for _, sel := range []float64{0.1, 0.9} {
		for _, base := range workload.AQueries()[:3] {
			wl := base.WithSelectivity(sel)
			db := wl.Build(cfg.Scale)
			results, err := cfg.runStrategies(wl, db, strategies)
			if err != nil {
				return nil, err
			}
			for _, r := range results {
				k := key{base.Name, string(r.Strategy)}
				if sel == 0.1 {
					lo[k] = r
				} else {
					hi[k] = r
				}
			}
		}
	}
	inc := func(wl, strat string, total bool) string {
		l, h := lo[key{wl, strat}].Metrics, hi[key{wl, strat}].Metrics
		a, b := l.NetTime, h.NetTime
		if total {
			a, b = l.TotalTime, h.TotalTime
		}
		if a == 0 {
			return "n/a"
		}
		return fmt.Sprintf("%+.0f%%", 100*(b-a)/a)
	}
	for _, strat := range strategies {
		s := string(strat)
		t.AddRow(s,
			inc("A1", s, false), inc("A2", s, false), inc("A3", s, false),
			inc("A1", s, true), inc("A2", s, true), inc("A3", s, true))
	}
	t.AddNote("paper: selectivity moves the net time of PAR/GREEDY most and the total time of SEQ most; GREEDY's A3 stays low (packing)")
	return t, nil
}
