package experiments

import (
	"fmt"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/relation"
	"repro/internal/workload"
)

// BuildPlan constructs the plan for a named strategy over a workload.
// Gumbo strategies that need cost estimates (GREEDY, GREEDY-SGF) sample
// the database exactly as §5.1's optimization (3) describes.
func BuildPlan(cfg Config, strat core.Strategy, wl workload.Workload, db *relation.Database) (*core.Plan, error) {
	queries := wl.Program.Queries
	name := fmt.Sprintf("%s-%s", wl.Name, strat)
	est := func() *core.Estimator {
		return core.NewEstimator(cfg.CostCfg, cost.Gumbo, db, wl.Program)
	}
	switch strat {
	case core.StrategySEQ:
		return core.SeqPlanMulti(name, queries)
	case core.StrategyPAR:
		return core.ParPlan(name, queries)
	case core.StrategyGreedy:
		return est().GreedyPlan(name, queries)
	case core.StrategyOpt:
		return est().OptPlan(name, queries)
	case core.StrategyOneRound:
		return core.OneRoundPlan(name, queries)
	case core.StrategySeqUnit:
		return core.SeqUnitPlan(name, wl.Program)
	case core.StrategyParUnit:
		return core.ParUnitPlan(name, wl.Program)
	case core.StrategyGreedySGF:
		return est().GreedySGFPlan(name, wl.Program)
	case baselines.StrategyHPAR:
		return baselines.HParPlan(name, queries)
	case baselines.StrategyHPARS:
		return baselines.HParSPlan(name, queries)
	case baselines.StrategyPPAR:
		return baselines.PParPlan(name, queries)
	default:
		return nil, fmt.Errorf("experiments: unknown strategy %q", strat)
	}
}

// bsgfStrategies are the §5.2 contenders (1-ROUND added per workload
// when applicable).
func bsgfStrategies(wl workload.Workload) []core.Strategy {
	s := []core.Strategy{
		core.StrategySEQ,
		core.StrategyPAR,
		core.StrategyGreedy,
		baselines.StrategyHPAR,
		baselines.StrategyHPARS,
		baselines.StrategyPPAR,
	}
	applicable := true
	for _, q := range wl.Program.Queries {
		if core.OneRoundApplicable(q) == core.OneRoundInapplicable {
			applicable = false
		}
	}
	if applicable {
		s = append(s, core.StrategyOneRound)
	}
	return s
}

// sgfStrategies are the §5.3 contenders.
func sgfStrategies() []core.Strategy {
	return []core.Strategy{core.StrategySeqUnit, core.StrategyParUnit, core.StrategyGreedySGF}
}

// scalingStrategies are the §5.4 contenders.
func scalingStrategies() []core.Strategy {
	return []core.Strategy{core.StrategySEQ, core.StrategyPAR, core.StrategyGreedy, core.StrategyOneRound}
}
