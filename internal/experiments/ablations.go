package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/mr"
	"repro/internal/relation"
	"repro/internal/sgf"
	"repro/internal/workload"
)

// AblationPacking isolates §5.1 optimization (1): the same GREEDY plan
// for A3 (all atoms share a join key, the best case for packing) with
// message packing enabled vs disabled.
func AblationPacking(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E11a",
		Title:  "Ablation: message packing (A3, grouped MSJ)",
		Header: []string{"packing", "net", "total", "comm", "records"},
	}
	wl := workload.A3()
	db := wl.Build(cfg.Scale)
	runner := cfg.runner()
	est := core.NewEstimator(cfg.CostCfg, cost.Gumbo, db, wl.Program)
	for _, packing := range []bool{true, false} {
		plan, err := est.GreedyPlan(fmt.Sprintf("pack=%v", packing), wl.Program.Queries)
		if err != nil {
			return nil, err
		}
		for _, j := range plan.Jobs {
			j.Packing = packing
		}
		res, err := runner.Run(plan, db)
		if err != nil {
			return nil, err
		}
		var records int64
		for _, st := range res.JobStats {
			records += st.Records()
		}
		m := cfg.paperMetrics(res.Metrics)
		t.AddRow(fmt.Sprint(packing), fmtSecs(m.NetTime), fmtSecs(m.TotalTime),
			fmtGB(m.CommMB), fmt.Sprint(records))
	}
	t.AddNote("packing collapses same-key request/assert messages of one map task into one record")
	return t, nil
}

// AblationTupleID isolates §5.1 optimization (2): MSJ outputs as guard
// tuple ids (with a guard re-read in EVAL) vs full-tuple semi-join
// outputs combined on whole tuples (the unoptimized shape, here built
// from the baseline building blocks with all engine handicaps removed).
func AblationTupleID(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E11b",
		Title:  "Ablation: tuple-id references vs full-tuple shuffles (A1, PAR shape)",
		Header: []string{"mode", "net", "total", "comm"},
	}
	wl := workload.A1()
	db := wl.Build(cfg.Scale)
	runner := cfg.runner()

	idPlan, err := core.ParPlan("ids", wl.Program.Queries)
	if err != nil {
		return nil, err
	}
	fullPlan, err := baselines.FullTuplePlan("full", wl.Program.Queries)
	if err != nil {
		return nil, err
	}
	for _, c := range []struct {
		name string
		plan *core.Plan
	}{{"tuple ids", idPlan}, {"full tuples", fullPlan}} {
		res, err := runner.Run(c.plan, db)
		if err != nil {
			return nil, err
		}
		m := cfg.paperMetrics(res.Metrics)
		t.AddRow(c.name, fmtSecs(m.NetTime), fmtSecs(m.TotalTime), fmtGB(m.CommMB))
	}
	t.AddNote("ids shuffle 12-byte references and re-read the guard in EVAL; full tuples shuffle whole facts and join on them")
	return t, nil
}

// AblationReducerAllocation isolates §5.1 optimization (3):
// intermediate-size-based reducer counts vs Pig-style input-based
// allocation, on the same Gumbo GREEDY plan.
func AblationReducerAllocation(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E11c",
		Title:  "Ablation: reducer allocation policy (A1, GREEDY plan)",
		Header: []string{"policy", "net", "total", "reducers"},
	}
	wl := workload.A1()
	db := wl.Build(cfg.Scale)
	runner := cfg.runner()
	est := core.NewEstimator(cfg.CostCfg, cost.Gumbo, db, wl.Program)
	for _, c := range []struct {
		name      string
		fromInput bool
	}{{"intermediate-based (Gumbo)", false}, {"input-based 1GB (Pig)", true}} {
		plan, err := est.GreedyPlan(c.name, wl.Program.Queries)
		if err != nil {
			return nil, err
		}
		for _, j := range plan.Jobs {
			j.ReducersFromInput = c.fromInput
			if c.fromInput {
				j.ReducerInputMB = 1024
			}
		}
		res, err := runner.Run(plan, db)
		if err != nil {
			return nil, err
		}
		reducers := 0
		for _, st := range res.JobStats {
			reducers += st.Reducers
		}
		m := cfg.paperMetrics(res.Metrics)
		t.AddRow(c.name, fmtSecs(m.NetTime), fmtSecs(m.TotalTime), fmt.Sprint(reducers))
	}
	return t, nil
}

// AblationSkew exercises the §6 skew extension: a guard with one heavy
// join value evaluated by the plain MSJ plan vs the heavy-hitter-aware
// salted plan. The per-reducer load accounting makes the hot reducer
// visible in net time.
func AblationSkew(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E11d",
		Title:  "Ablation: heavy-hitter mitigation (skewed guard, 40% hot key)",
		Header: []string{"mode", "net", "total", "max reducer load", "imbalance"},
	}
	db := skewedDatabase(int(float64(workload.PaperGuardTuples)*cfg.Scale), 0.4, 11)
	prog := sgf.MustParse(`Z := SELECT x, y FROM R(x, y) WHERE S(x);`)
	eqs := core.ExtractEquations(prog.Queries)
	runner := cfg.runner()
	plain, err := core.BasicPlan("plain", core.StrategyGreedy, prog.Queries, eqs, core.OneGroup(len(eqs)))
	if err != nil {
		return nil, err
	}
	// When the runner's engine performs runtime skew splitting, static
	// salting defers to it (RuntimeSplit) — the "salted" row then shows
	// the runtime splitter's balance instead of double-mitigating.
	skCfg := core.DefaultSkewConfig()
	skCfg.RuntimeSplit = runner.Engine.SkewSplitEnabled()
	salted, err := core.SkewAwareBasicPlan("salted", core.StrategyGreedy, prog.Queries, eqs,
		core.OneGroup(len(eqs)), db, skCfg)
	if err != nil {
		return nil, err
	}
	for _, c := range []struct {
		name string
		plan *core.Plan
	}{{"plain MSJ", plain}, {"salted MSJ", salted}} {
		res, err := runner.Run(c.plan, db)
		if err != nil {
			return nil, err
		}
		msj := res.JobStats[0]
		m := cfg.paperMetrics(res.Metrics)
		t.AddRow(c.name, fmtSecs(m.NetTime), fmtSecs(m.TotalTime),
			fmt.Sprintf("%.1fMB", msj.MaxReduceLoadMB()),
			fmt.Sprintf("%.2fx", msj.ReduceImbalance()))
	}
	t.AddNote("salting spreads a heavy key's requests over sub-keys and replicates the small asserts (§6)")
	return t, nil
}

// AblationDynamic compares static Greedy-SGF planning against the
// dynamic re-planning strategy of §4.6's closing note on the C2 query
// set.
func AblationDynamic(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E11e",
		Title:  "Ablation: static Greedy-SGF vs dynamic re-planning (C2)",
		Header: []string{"mode", "net", "total", "jobs"},
	}
	wl := workload.C2()
	db := wl.Build(cfg.Scale)
	runner := cfg.runner()
	est := core.NewEstimator(cfg.CostCfg, cost.Gumbo, db, wl.Program)
	static, err := est.GreedySGFPlan("static", wl.Program)
	if err != nil {
		return nil, err
	}
	sres, err := runner.Run(static, db)
	if err != nil {
		return nil, err
	}
	dres, err := runner.RunDynamicSGF(wl.Program, db)
	if err != nil {
		return nil, err
	}
	for _, c := range []struct {
		name string
		m    mr.Metrics
		jobs int
	}{
		{"static GREEDY-SGF", sres.Metrics, len(sres.JobStats)},
		{"dynamic re-planning", dres.Metrics, len(dres.JobStats)},
	} {
		m := cfg.paperMetrics(c.m)
		t.AddRow(c.name, fmtSecs(m.NetTime), fmtSecs(m.TotalTime), fmt.Sprint(c.jobs))
	}
	t.AddNote("dynamic planning re-runs Greedy-SGF after each group against materialized intermediate sizes")
	return t, nil
}

// skewedDatabase builds the skewed guard + conditional pair used by the
// skew ablation.
func skewedDatabase(n int, hotShare float64, seed int64) *relation.Database {
	rng := rand.New(rand.NewSource(seed))
	guard := relation.New("R", 2)
	hot := relation.Value(7)
	id := int64(0)
	for guard.Size() < n {
		id++
		x := hot
		if rng.Float64() >= hotShare {
			x = relation.Value(100 + rng.Int63n(int64(n)*4))
		}
		guard.Add(relation.Tuple{x, relation.Value(id)})
	}
	cond := relation.New("S", 1)
	cond.Add(relation.Tuple{hot})
	for cond.Size() < n/10+1 {
		cond.Add(relation.Tuple{relation.Value(100 + rng.Int63n(int64(n)*4))})
	}
	db := relation.NewDatabase()
	db.Put(guard)
	db.Put(cond)
	return db
}

// Ablations runs all ablation tables and concatenates them.
func Ablations(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E11",
		Title:  "Ablations of Gumbo's design choices",
		Header: []string{"ablation", "variant", "net", "total", "detail"},
	}
	type runner func(Config) (*Table, error)
	for _, sub := range []runner{AblationPacking, AblationTupleID, AblationReducerAllocation, AblationSkew, AblationDynamic} {
		st, err := sub(cfg)
		if err != nil {
			return nil, err
		}
		for _, row := range st.Rows {
			detail := ""
			if len(row) > 3 {
				detail = row[len(row)-1]
			}
			t.AddRow(st.ID, row[0], row[1], row[2], detail)
		}
		t.Notes = append(t.Notes, st.ID+": "+st.Title)
	}
	return t, nil
}
