package experiments

import (
	"strings"
	"testing"
)

func TestAblationPacking(t *testing.T) {
	tbl, err := AblationPacking(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	on, off := tbl.Rows[0], tbl.Rows[1]
	if cell(t, on[3]) >= cell(t, off[3]) {
		t.Errorf("packing did not cut comm: %s vs %s", on[3], off[3])
	}
	if cell(t, on[4]) >= cell(t, off[4]) {
		t.Errorf("packing did not cut records: %s vs %s", on[4], off[4])
	}
}

func TestAblationTupleID(t *testing.T) {
	tbl, err := AblationTupleID(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	ids, full := tbl.Rows[0], tbl.Rows[1]
	if cell(t, ids[3]) >= cell(t, full[3]) {
		t.Errorf("tuple ids did not cut comm: %s vs %s", ids[3], full[3])
	}
}

func TestAblationReducerAllocation(t *testing.T) {
	tbl, err := AblationReducerAllocation(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	gumboRow, pigRow := tbl.Rows[0], tbl.Rows[1]
	if cell(t, gumboRow[1]) > cell(t, pigRow[1]) {
		t.Errorf("intermediate-based allocation net %s should not exceed input-based %s",
			gumboRow[1], pigRow[1])
	}
}

func TestAblationSkew(t *testing.T) {
	tbl, err := AblationSkew(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	plain, salted := tbl.Rows[0], tbl.Rows[1]
	pi := strings.TrimSuffix(plain[4], "x")
	si := strings.TrimSuffix(salted[4], "x")
	if cell(t, si) >= cell(t, pi) {
		t.Errorf("salting did not improve imbalance: %s vs %s", salted[4], plain[4])
	}
	if cell(t, salted[1]) > cell(t, plain[1]) {
		t.Errorf("salting raised net time: %s vs %s", salted[1], plain[1])
	}
}

func TestAblationDynamic(t *testing.T) {
	tbl, err := AblationDynamic(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	static, dyn := tbl.Rows[0], tbl.Rows[1]
	if cell(t, dyn[2]) > 1.5*cell(t, static[2]) {
		t.Errorf("dynamic total %s far above static %s", dyn[2], static[2])
	}
}

func TestAblationsCombined(t *testing.T) {
	tbl, err := Ablations(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < 10 {
		t.Errorf("combined ablations rows = %d", len(tbl.Rows))
	}
}
