package experiments

import (
	"fmt"
	"io"
	"time"
)

// Experiment couples an id with its runner.
type Experiment struct {
	ID   string
	Name string
	Run  func(Config) (*Table, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"E1", "Figure 3 (BSGF strategies)", Figure3},
		{"E2", "Figure 4 (large BSGF queries)", Figure4},
		{"E3", "Figure 5 (SGF strategies)", Figure5},
		{"E4", "Figure 7a (data size)", Figure7a},
		{"E5", "Figure 7b (cluster size)", Figure7b},
		{"E6", "Figure 7c (joint scaling)", Figure7c},
		{"E7", "Figure 8 (query size)", Figure8},
		{"E8", "Table 3 (selectivity)", Table3},
		{"E9", "§5.2 cost model comparison", CostModelExperiment},
		{"E9b", "§5.2 ranking accuracy", func(c Config) (*Table, error) { return RankingAccuracy(c, 0) }},
		{"E10", "greedy vs optimal", OptimalVsGreedy},
		{"E11", "ablations (packing, tuple-ids, reducer allocation, skew, dynamic)", Ablations},
	}
}

// ByID returns the experiment with the given id, or nil.
func ByID(id string) *Experiment {
	for _, e := range All() {
		if e.ID == id {
			e := e
			return &e
		}
	}
	return nil
}

// RunAll executes every experiment and renders the tables to w.
func RunAll(cfg Config, w io.Writer) error {
	fmt.Fprintf(w, "Gumbo-Go experiment suite — scale %g, cluster %d×%d slots\n\n",
		cfg.Scale, cfg.Cluster.Nodes, cfg.Cluster.SlotsPerNode)
	for _, e := range All() {
		start := time.Now()
		table, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		table.AddNote("experiment wall time: %.1fs", time.Since(start).Seconds())
		table.Render(w)
	}
	return nil
}
